(* Protocol zoo: one workload, every protocol in the repository.

   A mixed-type workload (registers, counters, accounts, sets, queues,
   keyed stores) is run under each concurrency-control/recovery
   protocol; each behavior is then verified by the proof technique
   that applies to it:

   - Moss' read/write locking (registers only), commutativity-based
     locking, and undo logging serialize by completion order: the
     serialization-graph checker (Theorems 8/19);
   - multiversion timestamp ordering (registers only) serializes by
     pseudotime: the Serializability Theorem with the index order
     (Theorem 2);
   - the serial scheduler is the specification itself;
   - the no-control strawman demonstrates a rejection.

   Run with: dune exec examples/protocol_zoo.exe *)

open Core

let seed = 11

let verify_sg schema trace =
  if Checker.serially_correct schema trace then "OK (Thm 19)" else "REJECTED"

let verify_thm2 schema trace =
  let order = Sibling_order.index_order (Trace.serial trace) in
  if Theorem2.holds schema order trace then "OK (Thm 2)" else "REJECTED"

let () =
  let mixed_forest, mixed_schema =
    Gen.forest_and_schema Gen.mixed ~seed
      { Gen.default with n_top = 8; depth = 2; n_objects = 6 }
  in
  let rw_forest, rw_schema =
    Gen.forest_and_schema Gen.registers ~seed
      { Gen.default with n_top = 8; depth = 2; n_objects = 3 }
  in
  let run name (forest, schema) factory verify =
    let r =
      Runtime.run ~policy:Runtime.Bsp_rounds ~seed schema factory forest
    in
    Format.printf "%-24s rounds %4d  blocked %5d  victims %2d  %s@." name
      r.Runtime.stats.rounds r.Runtime.stats.blocked_attempts
      r.Runtime.stats.deadlock_aborts
      (verify schema r.Runtime.trace)
  in
  Format.printf "mixed data types (%d objects):@." 6;
  run "  commutativity locking" (mixed_forest, mixed_schema)
    Commlock_object.factory verify_sg;
  run "  undo logging" (mixed_forest, mixed_schema) Undo_object.factory
    verify_sg;
  let serial = Serial_exec.run mixed_schema mixed_forest in
  Format.printf "%-24s events %4d  %s@." "  serial scheduler"
    (Trace.length serial)
    (verify_sg mixed_schema serial);
  Format.printf "@.registers only (%d objects):@." 3;
  run "  Moss read/write locks" (rw_forest, rw_schema) Moss_object.factory
    verify_sg;
  run "  commutativity locking" (rw_forest, rw_schema) Commlock_object.factory
    verify_sg;
  run "  multiversion (MVTS)" (rw_forest, rw_schema) Mvts_object.factory
    verify_thm2;
  run "  no concurrency control" (rw_forest, rw_schema) Broken.no_control
    verify_sg
