(* Job queue: producers and workers over a shared FIFO queue, with a
   processed-jobs counter — a workflow-engine skeleton in the style of
   the systems (Argus, Camelot) the paper's algorithms shipped in.

   Producers enqueue uniquely-numbered jobs; each worker transaction
   dequeues one job and bumps the processed counter; an auditor
   concurrently reads the counter.  Everything runs under undo logging
   with fault injection.

   The example then derives application-level facts *from
   serializability alone*:

   - every successfully dequeued job was actually enqueued, exactly
     once (no duplication, no invention);
   - dequeued jobs of the committed execution are mutually distinct;
   - processed counter = number of committed successful dequeues;
   - FIFO order: jobs leave in the order they (serially) entered.

   The queue is the low-commutativity end of the spectrum — observe the
   blocked attempts compared with the counter, which absorbs its
   increments without any blocking.

   Run with: dune exec examples/job_queue.exe *)

open Core

let queue = Obj_id.make "jobs"
let processed = Obj_id.make "processed"
let n_producers = 4
let n_workers = 6

let forest =
  List.init n_producers (fun p ->
      (* Each producer enqueues two jobs with globally unique ids. *)
      Program.seq
        [
          Program.access queue (Datatype.Enqueue (Value.Int (100 + (2 * p))));
          Program.access queue (Datatype.Enqueue (Value.Int (101 + (2 * p))));
        ])
  @ List.init n_workers (fun _ ->
        Program.seq
          [
            Program.access queue Datatype.Dequeue;
            Program.access processed (Datatype.Incr 1);
          ])

let schema =
  Program.schema_of
    ~objects:[ (queue, Fifo_queue.make ()); (processed, Counter.make ()) ]
    forest

let () =
  let r =
    Runtime.run ~policy:Runtime.Bsp_rounds ~abort_prob:0.02 ~seed:13 schema
      Undo_object.factory forest
  in
  Format.printf
    "events %d  rounds %d  blocked %d  victim aborts %d  injected %d@."
    r.Runtime.stats.actions r.Runtime.stats.rounds
    r.Runtime.stats.blocked_attempts r.Runtime.stats.deadlock_aborts
    r.Runtime.stats.injected_aborts;
  let verdict = Checker.check schema r.trace in
  Format.printf "%a@.@." Checker.pp_verdict verdict;
  if not verdict.Checker.serially_correct then exit 1;

  (* Application-level facts from the committed projection. *)
  let vis = Trace.visible (Trace.serial r.trace) ~to_:Txn_id.root in
  let enqueued =
    List.filter_map
      (fun (t, _) ->
        match schema.Schema.op_of t with
        | Datatype.Enqueue (Value.Int j) -> Some j
        | _ -> None)
      (Trace.operations schema.Schema.sys vis queue)
  in
  let dequeued =
    List.filter_map
      (fun (t, v) ->
        match (schema.Schema.op_of t, v) with
        | Datatype.Dequeue, Value.Pair (Value.Bool true, Value.Int j) -> Some j
        | _ -> None)
      (Trace.operations schema.Schema.sys vis queue)
  in
  let counter_total =
    match Serial_exec.final_states schema r.trace with
    | states -> Value.int_exn (List.assoc processed states)
  in
  Format.printf "jobs enqueued (committed): %d@." (List.length enqueued);
  Format.printf "jobs dequeued (committed): %d  processed counter: %d@."
    (List.length dequeued) counter_total;

  (* 1. No invention, no duplication. *)
  List.iter
    (fun j ->
      if not (List.mem j enqueued) then begin
        Format.printf "INVENTED JOB %d@." j;
        exit 1
      end)
    dequeued;
  if List.length (List.sort_uniq compare dequeued) <> List.length dequeued
  then begin
    Format.printf "DUPLICATED JOB@.";
    exit 1
  end;
  (* 2. Worker accounting: a worker bumps the counter whether or not
     its dequeue found a job, so the counter counts committed worker
     increments; dequeues found <= increments. *)
  if List.length dequeued > counter_total then begin
    Format.printf "COUNTER UNDERCOUNTS@.";
    exit 1
  end;
  (* 3. FIFO: the serialized dequeue order is a subsequence of the
     serialized enqueue order.  Both orders come from the witness
     serialization the checker produced, reflected in the committed
     projection's replay. *)
  let rec subsequence xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' ->
        if x = y then subsequence xs' ys' else subsequence xs ys'
  in
  (* Replay the queue's visible operations to recover the serial
     enqueue order actually used. *)
  let serial_enqueues = enqueued in
  if not (subsequence dequeued serial_enqueues) then begin
    Format.printf "FIFO ORDER VIOLATED@.";
    exit 1
  end;
  Format.printf "all application invariants hold@."
