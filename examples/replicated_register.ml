(* Replicated register: quorum consensus on top of nested transactions.

   A logical register LX is realized by three versioned replicas; each
   logical write is a nested subtransaction installing (version, value)
   at a write quorum concurrently, each logical read a subtransaction
   collecting a read quorum and taking the max version.  The paper's
   framework supplies everything underneath: the replicas run undo
   logging (versioned writes commute, so quorum fan-out never blocks on
   other writers), and the physical behavior is certified serializable
   by Theorem 19.

   The one-copy guarantee is then a quorum-arithmetic property on top:
   with read_quorum + write_quorum > n_replicas every read covers the
   latest committed write; shrink the quorums and staleness appears —
   while the physical system stays perfectly serializable, which is
   precisely why replication needs its own correctness notion
   (one-copy serializability) beyond the paper's.

   Run with: dune exec examples/replicated_register.exe *)

open Core

let lx = Obj_id.make "LX"

(* A fresh random read/write mix per seed (replica assignment rotates
   with the generated access sequence, so quorum alignment varies). *)
let workload seed =
  let rng = Rng.create (seed * 7) in
  List.init 6 (fun _ ->
      Program.seq
        (List.init
           (1 + Rng.int rng 2)
           (fun _ ->
             if Rng.bool rng then Program.access lx Datatype.Read
             else
               Program.access lx
                 (Datatype.Write (Value.Int (10 * (1 + Rng.int rng 9)))))))

let run_config (r, w) =
  let config = { Replication.n_replicas = 3; read_quorum = r; write_quorum = w } in
  let violations = ref 0 and runs = 15 in
  for seed = 1 to runs do
    let plan = Replication.replicate config ~objects:[ lx ] (workload seed) in
    let res =
      Runtime.run ~policy:Runtime.Bsp_rounds ~top_comb:Program.Seq ~seed
        plan.Replication.physical_schema Undo_object.factory
        plan.Replication.physical_forest
    in
    assert
      (Checker.serially_correct plan.Replication.physical_schema
         res.Runtime.trace);
    match Replication.check_one_copy plan res.Runtime.trace with
    | Ok () -> ()
    | Error v ->
        incr violations;
        if !violations = 1 then
          Format.printf "      first violation: %a@." Replication.pp_violation v
  done;
  Format.printf
    "  R=%d W=%d (%s): physical serializability 15/15, one-copy %d/%d@." r w
    (if Replication.intersecting config then "intersecting" else "NON-intersecting")
    (runs - !violations) runs

let () =
  Format.printf "Quorum replication of one logical register over 3 replicas:@.";
  List.iter run_config [ (2, 2); (1, 3); (1, 1) ];
  Format.printf
    "@.Non-intersecting quorums stay serializable at the replica level —@.\
     staleness is a logical-level failure, caught only by the one-copy@.\
     checker.  Quorum intersection restores it.@."
