(* Banking: concurrent nested transfers over bank-account objects under
   the undo-logging protocol, with fault injection.

   Each transfer is the nested transaction the paper's introduction
   motivates: an auditing subtransaction (two concurrent balance reads,
   modelling simultaneous RPCs) followed by a withdraw and a deposit.

   The example demonstrates two distinct notions:

   - *serial correctness* (the paper's guarantee): whatever the
     interleaving, aborts and deadlock-victim choices, the behavior is
     serially correct for T0 — verified by the Theorem 19 checker;
   - *application atomicity* (NOT implied): our transfer programs do
     not react to child failures, so a transfer whose withdraw was
     aborted as a deadlock victim while its deposit committed is
     "partial" and legitimately creates money in a serializable way.
     The example detects partial transfers from committed reports and
     reconciles the final balances exactly.

   Run with: dune exec examples/banking.exe *)

open Core

let n_accounts = 6
let n_transfers = 12
let initial_balance = 100

(* A committed transfer reports
   List [audit_summary; withdraw_summary; deposit_summary]; each
   summary is Pair (Bool committed, value).  Returns the transfer's net
   effect on the total money supply. *)
let net_effect = function
  | Value.List [ _; Value.Pair (wc, wv); Value.Pair (dc, _dv) ] ->
      let withdrawn =
        match (wc, wv) with Value.Bool true, Value.Bool true -> true | _ -> false
      in
      let deposited = match dc with Value.Bool true -> true | _ -> false in
      (withdrawn, deposited)
  | v -> invalid_arg ("unexpected transfer report: " ^ Value.to_string v)

let () =
  let forest, schema = Scenario.banking ~n_accounts ~n_transfers ~seed:7 in
  Format.printf "Running %d nested transfers over %d accounts...@."
    n_transfers n_accounts;
  let result =
    Runtime.run ~abort_prob:0.04 ~seed:7 schema Undo_object.factory forest
  in
  Format.printf
    "events: %d  committed transfers: %d  aborted transfers: %d@."
    result.Runtime.stats.actions result.Runtime.committed_top
    result.Runtime.aborted_top;
  Format.printf
    "blocked attempts: %d  deadlock aborts: %d  injected aborts: %d@."
    result.Runtime.stats.blocked_attempts result.Runtime.stats.deadlock_aborts
    result.Runtime.stats.injected_aborts;

  (* The paper's guarantee: serial correctness for T0 (Theorem 19). *)
  let verdict = Checker.check schema result.trace in
  Format.printf "@.%a@.@." Checker.pp_verdict verdict;

  (* Application-level accounting: classify committed transfers. *)
  let atomic = ref 0 and partial = ref 0 in
  Array.iter
    (fun a ->
      match a with
      | Action.Report_commit (t, v) when Txn_id.depth t = 1 -> (
          match net_effect v with
          | true, true | false, false -> incr atomic
          | _ -> incr partial)
      | _ -> ())
    result.trace;
  Format.printf "committed transfers: %d atomic, %d partial@." !atomic !partial;

  let finals = Serial_exec.final_states schema result.trace in
  let total =
    List.fold_left (fun acc (_, v) -> acc + Value.int_exn v) 0 finals
  in
  List.iter
    (fun (x, v) ->
      Format.printf "%-8s balance %3d@." (Obj_id.name x) (Value.int_exn v))
    finals;
  Format.printf "total %d (initial %d)@." total (n_accounts * initial_balance);
  if !partial = 0 && total <> n_accounts * initial_balance then begin
    (* With only atomic transfers, serializability does imply
       conservation; a discrepancy here would be a real bug. *)
    Format.printf "CONSERVATION VIOLATED WITHOUT PARTIAL TRANSFERS@.";
    exit 1
  end;
  if !partial > 0 then
    Format.printf
      "(partial transfers explain any drift: serializability alone does@.\
      \ not give application atomicity when programs ignore child aborts)@.";
  if not verdict.Checker.serially_correct then exit 1;
  Format.printf "OK@."
