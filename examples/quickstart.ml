(* Quickstart: define a nested transaction workload, execute it under
   Moss' read/write locking, and verify serial correctness with the
   serialization-graph checker.

   Run with: dune exec examples/quickstart.exe *)

open Core

let () =
  (* 1. Declare objects: two registers. *)
  let x = Obj_id.make "x" and y = Obj_id.make "y" in
  let objects = [ (x, Register.make ()); (y, Register.make ()) ] in

  (* 2. Write nested transaction programs.  T1 copies x into y via a
     read followed by a write; T2 concurrently overwrites x.  Each
     top-level transaction is a tree: [seq]/[par] nodes create
     subtransactions, leaves access objects. *)
  let t1 =
    Program.seq
      [
        Program.access x Datatype.Read;
        Program.access y (Datatype.Write (Value.Int 1));
      ]
  in
  let t2 = Program.seq [ Program.access x (Datatype.Write (Value.Int 7)) ] in
  let forest = [ t1; t2 ] in

  (* 3. Derive the schema (system type + serial specifications). *)
  let schema = Program.schema_of ~objects forest in

  (* 4. Execute under the generic system with Moss' locking objects.
     The seed makes the interleaving reproducible. *)
  let result = Runtime.run ~seed:2024 schema Moss_object.factory forest in
  Format.printf "=== trace (%d events) ===@." (Trace.length result.trace);
  Format.printf "%a@." Trace.pp result.trace;

  (* 5. Check the Theorem 8 hypotheses and conclusion. *)
  let verdict = Checker.check schema result.trace in
  Format.printf "=== verdict ===@.%a@." Checker.pp_verdict verdict;

  (* 6. Compare with a serial execution of the same forest. *)
  let serial_trace = Serial_exec.run schema forest in
  Format.printf "=== serial baseline: %d events, correct=%b ===@."
    (Trace.length serial_trace)
    (Checker.serially_correct schema serial_trace);
  if not verdict.Checker.serially_correct then exit 1
