(* Monitor: using the serialization-graph construction as a runtime
   correctness monitor.

   A storage implementor replaces the concurrency control of an object
   (as Argus and Camelot permitted) with a "faster" one that skips
   locking.  The checker, run over the system's behavior, detects the
   bug and produces a concrete witness: either a cycle in SG(beta) — a
   pair of transactions each of which must precede the other — or an
   access whose return value no serial execution could produce.

   Run with: dune exec examples/monitor.exe *)

open Core

let find_bad_seed schema forest =
  let rec go seed =
    if seed > 500 then None
    else
      let r = Runtime.run ~seed schema Broken.no_control forest in
      let v = Checker.check schema r.Runtime.trace in
      if v.Checker.serially_correct then go (seed + 1) else Some (seed, r, v)
  in
  go 1

let () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 6; depth = 1; n_objects = 1; read_ratio = 0.4 }
  in
  Format.printf
    "Deploying a buggy no-locking object under a hot register workload...@.";
  match find_bad_seed schema forest with
  | None ->
      Format.printf "no violation surfaced in 500 runs (unexpected)@.";
      exit 1
  | Some (seed, result, verdict) ->
      Format.printf "seed %d produced a violating behavior (%d events)@.@."
        seed
        (Trace.length result.Runtime.trace);
      Format.printf "%a@.@." Checker.pp_verdict verdict;
      (match verdict.Checker.cycle with
      | Some cycle ->
          Format.printf "witness cycle in SG(beta):@.";
          List.iter
            (fun t -> Format.printf "  %s must be serialized before the next@."
                (Txn_id.to_string t))
            cycle;
          Format.printf
            "...and the last must precede the first: no serial order exists.@."
      | None ->
          (match Return_values.violating_object schema
                   (Trace.serial result.Runtime.trace)
           with
          | Some x ->
              Format.printf
                "object %s returned a value no serial execution produces@."
                (Obj_id.name x)
          | None -> ()));
      (* The same workload under Moss' algorithm passes. *)
      let ok = Runtime.run ~seed schema Moss_object.factory forest in
      Format.printf "@.same seed under Moss' locking: correct=%b@."
        (Checker.serially_correct schema ok.Runtime.trace)
