(* Commutativity: why Section 6 generalizes the construction beyond
   reads and writes.

   The same logical workload — concurrent increments of shared
   counters — is run twice:

   - as genuine counter [Incr] operations under undo logging, where
     increments commute backward and nothing ever blocks;
   - as read-modify-write register pairs under Moss' locking, where
     every pair of transactions conflicts on the hot register.

   The run statistics show the gap: blocking and deadlock aborts on the
   read/write side, none on the counter side, with both executions
   serially correct.

   Run with: dune exec examples/commutativity.exe *)

open Core

let n_txns = 12
let theta = 0.9

let run name (forest, schema) factory =
  let result =
    Runtime.run ~policy:Runtime.Bsp_rounds ~seed:5 schema factory forest
  in
  let correct = Checker.serially_correct schema result.Runtime.trace in
  Format.printf
    "%-22s rounds %4d  blocked %4d  deadlock-aborts %2d  committed %2d/%d  \
     correct %b@."
    name result.Runtime.stats.rounds result.Runtime.stats.blocked_attempts
    result.Runtime.stats.deadlock_aborts result.Runtime.committed_top n_txns
    correct;
  result

let () =
  Format.printf
    "Hot counter workload, two encodings (%d transactions, zipf %.1f):@.@."
    n_txns theta;
  let counters = Scenario.hotspot_counter ~n_txns ~n_counters:2 ~theta ~seed:3 in
  let registers =
    Scenario.rw_equivalent_counter ~n_txns ~n_counters:2 ~theta ~seed:3
  in
  let c = run "counters + undo log" counters Undo_object.factory in
  let r = run "registers + locking" registers Moss_object.factory in
  Format.printf
    "@.Counter increments commute backward, so the undo-logging object@.\
     admits them all concurrently (%d blocked attempts); the read/write@.\
     encoding serializes every transaction through the hot register@.\
     (%d blocked attempts, %d victim aborts).@."
    c.Runtime.stats.blocked_attempts r.Runtime.stats.blocked_attempts
    r.Runtime.stats.deadlock_aborts;
  if c.Runtime.stats.blocked_attempts > 0 then begin
    Format.printf "unexpected blocking on commuting operations@.";
    exit 1
  end
