(* User-defined concurrency control — the paper's original motivation:
   "the possibility of user-defined concurrency control in a system
   leads one to seek proof methods" (Section 1).  Argus and Camelot let
   object implementors replace the stock protocol; this example plays
   that implementor.

   Two home-made generic objects for counters:

   - [exclusive]: a single exclusive lock per object, held from an
     access's response until the access's *top-level* ancestor is
     informed committed or any holder ancestor aborts.  Coarse but
     correct: every behavior passes the Theorem 19 checker.

   - [eager_release]: the same, except the lock is released as soon as
     the access itself commits (a classic early-release bug: the
     surrounding transaction can still abort, and by then others have
     read its effects).  The checker and the online monitor catch it.

   Run with: dune exec examples/user_defined_cc.exe *)

open Core

(* A tiny lock-table generic object.  [release_early] is the bug
   switch. *)
let homemade ~release_early : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  (* The log of applied operations (for computing return values), plus
     the current lock holder: the access that responded last and whose
     release condition has not yet been met. *)
  let log = ref [] (* newest first: (access, op) *) in
  let holder = ref None in
  let created = ref Txn_id.Set.empty in
  let responded = ref Txn_id.Set.empty in
  let replay () =
    List.fold_left
      (fun s op -> fst (dt.Datatype.apply s op))
      dt.Datatype.init
      (List.rev_map snd !log)
  in
  {
    Gobj.obj = x;
    create = (fun t -> created := Txn_id.Set.add t !created);
    inform_commit =
      (fun t ->
        match !holder with
        | Some h ->
            let release =
              if release_early then Txn_id.equal t h
              else
                (* Correct variant: wait for the top-level ancestor. *)
                Txn_id.depth t = 1 && Txn_id.is_ancestor t h
            in
            if release then holder := None
        | None -> ());
    inform_abort =
      (fun t ->
        (* Undo the aborted subtree's operations and free the lock. *)
        log := List.filter (fun (a, _) -> not (Txn_id.is_descendant a t)) !log;
        match !holder with
        | Some h when Txn_id.is_descendant h t -> holder := None
        | _ -> ());
    try_respond =
      (fun t ->
        if
          (not (Txn_id.Set.mem t !created))
          || Txn_id.Set.mem t !responded
        then None
        else
          match !holder with
          | Some h when not (Txn_id.is_ancestor h t || Txn_id.is_descendant h t)
            ->
              None (* locked by a stranger *)
          | _ ->
              let op = schema.Schema.op_of t in
              let _, v = dt.Datatype.apply (replay ()) op in
              log := (t, op) :: !log;
              holder := Some t;
              responded := Txn_id.Set.add t !responded;
              Some v)
    ;
    waiting_on =
      (fun _ ->
        match !holder with
        | Some h -> [ (h, Gobj.Other "exclusive") ]
        | None -> []);
  }

let () =
  let forest, schema =
    Gen.forest_and_schema Gen.counters ~seed:3
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.4 }
  in
  Format.printf "verifying the careful exclusive-lock object...@.";
  let ok = ref 0 in
  for seed = 1 to 25 do
    let r =
      Runtime.run ~abort_prob:0.05 ~seed schema
        (homemade ~release_early:false)
        forest
    in
    if Checker.serially_correct schema r.Runtime.trace then incr ok
  done;
  Format.printf "  %d/25 behaviors certified serially correct@." !ok;
  if !ok < 25 then exit 1;

  Format.printf "@.verifying the eager-release variant...@.";
  let caught = ref 0 in
  let first_report = ref None in
  for seed = 1 to 80 do
    let r =
      Runtime.run ~abort_prob:0.15 ~seed schema
        (homemade ~release_early:true)
        forest
    in
    if not (Checker.serially_correct schema r.Runtime.trace) then begin
      incr caught;
      if !first_report = None then
        first_report := Some (Checker.explain schema r.Runtime.trace)
    end
  done;
  Format.printf "  rejected on %d/80 runs@." !caught;
  (match !first_report with
  | Some report -> Format.printf "@.first diagnosis:@.%s@." report
  | None -> ());
  if !caught = 0 then exit 1;
  Format.printf
    "@.The proof obligations of the paper - appropriate return values and@.\
     an acyclic serialization graph - are exactly what a storage@.\
     implementor must re-establish after swapping the protocol; the@.\
     checker mechanizes them.@."
