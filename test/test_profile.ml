(* Tests for the attribution layer and the ntprof pipeline: registry
   merging, the JSONL parse/roundtrip of telemetry events, Chrome
   exporter escaping, wait-streak reconstruction, profile merging, the
   monitor's per-edge provenance, and DOT edge labels. *)
open Core
open Util

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Metrics.merge ---------------------------------------------------- *)

let t_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter a "c");
  Metrics.incr ~by:4 (Metrics.counter b "c");
  Metrics.incr ~by:7 (Metrics.counter b "only_src");
  Metrics.set (Metrics.gauge a "g") 1.0;
  Metrics.set (Metrics.gauge b "g") 2.5;
  List.iter (Metrics.observe (Metrics.histogram a "h")) [ 1; 5 ];
  List.iter (Metrics.observe (Metrics.histogram b "h")) [ 5; 100 ];
  Metrics.merge a b;
  check_int "counters add" 7
    (Metrics.counter_value (Metrics.counter a "c"));
  check_int "src-only counters appear" 7
    (Metrics.counter_value (Metrics.counter a "only_src"));
  check_bool "gauges take src" true
    (Metrics.gauge_value (Metrics.gauge a "g") = 2.5);
  let s = Metrics.histogram_stats (Metrics.histogram a "h") in
  check_int "histogram count" 4 s.Metrics.count;
  check_int "histogram sum" 111 s.Metrics.sum;
  check_int "histogram min" 1 s.Metrics.min;
  check_int "histogram max" 100 s.Metrics.max;
  (* merge is not destructive on the source *)
  check_int "src unchanged" 4 (Metrics.counter_value (Metrics.counter b "c"));
  (* a name cannot change kind across registries *)
  let c = Metrics.create () in
  Metrics.set (Metrics.gauge c "c") 9.0;
  check_bool "kind clash raises" true
    (try
       Metrics.merge a c;
       false
     with Invalid_argument _ -> true)

(* --- JSONL parse and event roundtrip ---------------------------------- *)

let roundtrip e =
  let s = Obs_json.to_string (Obs_event.to_json e) in
  match Obs_json.parse s with
  | Error err -> Alcotest.failf "parse %s: %s" s err
  | Ok j -> (
      match Obs_event.of_json j with
      | Error err -> Alcotest.failf "of_json %s: %s" s err
      | Ok e' -> check_bool ("roundtrip " ^ s) true (e = e'))

let t_event_roundtrip () =
  List.iter roundtrip
    [
      Obs_event.Begin { txn = txn [ 0; 1 ]; ts = 3 };
      Obs_event.End
        { txn = txn [ 0 ]; ts = 9; outcome = Obs_event.Committed; dur = 6 };
      Obs_event.End
        { txn = txn [ 2 ]; ts = 4; outcome = Obs_event.Aborted; dur = 1 };
      Obs_event.Instant { name = "deadlock.victim"; txn = Some (txn [ 1 ]);
                          obj = Some (Obj_id.make "x0"); ts = 5 };
      Obs_event.Instant { name = "plain"; txn = None; obj = None; ts = 0 };
      Obs_event.Counter { name = "sg.edges"; value = 12; ts = 7 };
      Obs_event.Wait
        {
          txn = txn [ 0; 1 ];
          obj = Obj_id.make "c0";
          holders = [ (txn [ 2 ], "write"); (txn [ 3; 0 ], "read") ];
          ts = 11;
          waited = 4;
        };
      Obs_event.Wait
        { txn = txn [ 1 ]; obj = Obj_id.make "y"; holders = []; ts = 1;
          waited = 0 };
      Obs_event.Edge
        {
          src = txn [ 0 ];
          dst = txn [ 1 ];
          kind = "conflict";
          obj = Some (Obj_id.make "x");
          w1 = txn [ 0; 2 ];
          w1_ts = 5;
          w2 = txn [ 1; 0 ];
          w2_ts = 9;
          ts = 10;
        };
      Obs_event.Edge
        {
          src = txn [ 2; 0 ];
          dst = txn [ 2; 1 ];
          kind = "precedes";
          obj = None;
          w1 = txn [ 2; 0 ];
          w1_ts = 3;
          w2 = txn [ 2; 1 ];
          w2_ts = 8;
          ts = 8;
        };
    ]

let t_json_parse () =
  (* escapes, incl. \u and a surrogate pair *)
  (match Obs_json.parse {|{"s":"a\"b\\c\ndA😀"}|} with
  | Ok j -> (
      match Obs_json.member "s" j with
      | Some (Obs_json.Str s) ->
          check_bool "escapes decode" true
            (s = "a\"b\\c\ndA\xf0\x9f\x98\x80")
      | _ -> Alcotest.fail "missing member")
  | Error e -> Alcotest.failf "parse: %s" e);
  (* numbers: int vs float *)
  (match Obs_json.parse {|[1, -2, 3.5, 1e2, true, false, null]|} with
  | Ok (Obs_json.Arr [ Obs_json.Int 1; Obs_json.Int (-2); Obs_json.Float _;
                       Obs_json.Float _; Obs_json.Bool true;
                       Obs_json.Bool false; Obs_json.Null ]) -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "parse: %s" e);
  (* malformed inputs are errors, not exceptions *)
  List.iter
    (fun s ->
      match Obs_json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{} trailing" ]

let t_txn_id_of_string () =
  List.iter
    (fun path ->
      let t = txn path in
      match Txn_id.of_string (Txn_id.to_string t) with
      | Some t' -> check_bool "roundtrip" true (Txn_id.equal t t')
      | None -> Alcotest.failf "of_string %s" (Txn_id.to_string t))
    [ []; [ 0 ]; [ 3; 1; 4 ] ];
  List.iter
    (fun s -> check_bool ("reject " ^ s) true (Txn_id.of_string s = None))
    [ ""; "X"; "T0."; "T0.a"; "T0.-1"; "0.1" ]

(* --- Chrome exporter escaping ----------------------------------------- *)

let t_chrome_escaping () =
  let path = Filename.temp_file "nested_sg_prof" ".json" in
  let o = Obs.create ~sink:(Chrome_trace.sink_file path) () in
  Obs.instant ~ts:1 o "quote\"back\\slash";
  Obs.instant ~ts:2 o "ctrl\x01\ttab\nnewline";
  Obs.instant ~ts:3 o "caf\xc3\xa9";
  (* non-ASCII UTF-8 *)
  Obs.close o;
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_bool "quote escaped" true (contains body {|quote\"back\\slash|});
  check_bool "control escaped" true (contains body {|ctrl\u0001\ttab\nnewline|});
  check_bool "utf8 passthrough" true (contains body "caf\xc3\xa9");
  (* the body must survive a JSON parse: every control char was handled *)
  match Obs_json.parse body with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome output is not valid JSON: %s" e

(* --- wait-streak reconstruction --------------------------------------- *)

let wait ~txn:t ~obj ~waited ts =
  Obs_event.Wait
    { txn = t; obj = Obj_id.make obj; holders = [ (txn [ 9 ], "write") ];
      ts; waited }

let t_wait_streaks () =
  let p = Profile.create () in
  (* one txn, one object: a streak of 3 refusals, then a fresh streak
     of 2 (waited drops), then the trace ends *)
  List.iteri
    (fun i w -> Profile.feed p (wait ~txn:(txn [ 0 ]) ~obj:"a" ~waited:w i))
    [ 1; 2; 3; 1; 2 ];
  (* an independent blocked access on another object, still open *)
  Profile.feed p (wait ~txn:(txn [ 1 ]) ~obj:"b" ~waited:5 9);
  Profile.finish p;
  let tops = Profile.top_objects p 10 in
  check_int "two objects" 2 (List.length tops);
  let a = List.assoc "a" tops and b = List.assoc "b" tops in
  check_int "a streaks" 2 a.Profile.waits;
  check_int "a refusals" 5 a.Profile.wait_events;
  check_int "a total" 5 a.Profile.total_waited;
  check_int "a max" 3 a.Profile.max_waited;
  check_int "b streaks" 1 b.Profile.waits;
  check_int "b total" 5 b.Profile.total_waited;
  let h =
    Metrics.histogram_stats (Metrics.histogram (Profile.metrics p) "wait.ticks.a")
  in
  check_int "a histogram count" 2 h.Metrics.count;
  check_int "a histogram sum" 5 h.Metrics.sum

(* --- end-to-end: runtime -> jsonl -> ntprof pipeline ------------------ *)

let run_to_jsonl ~seed path =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed
      { Gen.default with n_top = 8; depth = 2; n_objects = 2; theta = 0.9 }
  in
  let o = Obs.create ~sink:(Obs_sink.jsonl_file path) () in
  let r =
    Runtime.run ~policy:Runtime.Random_step ~abort_prob:0.05 ~obs:o ~seed
      schema Commlock_object.factory forest
  in
  Obs.close o;
  r

let t_profile_load_and_merge () =
  let p1 = Filename.temp_file "nested_sg_prof" ".jsonl" in
  let p2 = Filename.temp_file "nested_sg_prof" ".jsonl" in
  let r1 = run_to_jsonl ~seed:3 p1 and r2 = run_to_jsonl ~seed:4 p2 in
  let a = Profile.create () and b = Profile.create () in
  check_bool "p1 clean" true (Profile.load a p1 = []);
  check_bool "p2 clean" true (Profile.load b p2 = []);
  Sys.remove p1;
  Sys.remove p2;
  let created p = Metrics.counter_value (Metrics.counter (Profile.metrics p) "txn.created") in
  let created_a = created a and created_b = created b in
  check_bool "events parsed" true (Profile.events a > 0);
  Profile.merge a b;
  check_int "created adds up" (created_a + created_b) (created a);
  let blocked =
    r1.Runtime.stats.Runtime.blocked_attempts
    + r2.Runtime.stats.Runtime.blocked_attempts
  in
  let refusals =
    List.fold_left
      (fun acc (_, s) -> acc + s.Profile.wait_events)
      0 (Profile.top_objects a 100)
  in
  check_int "every refusal attributed to an object" blocked refusals;
  (* the report and the prometheus exposition both render *)
  let report = Format.asprintf "%a" (Profile.report ~top:5) a in
  check_bool "report has summary" true (contains report "== summary ==");
  check_bool "report has top objects" true
    (contains report "contended objects");
  let prom = Profile.prometheus a in
  check_bool "prometheus counter" true (contains prom "txn_created");
  check_bool "prometheus quantile" true (contains prom "quantile=\"0.99\"")

let t_profile_bad_lines () =
  let path = Filename.temp_file "nested_sg_prof" ".jsonl" in
  let oc = open_out path in
  output_string oc
    "{\"ev\":\"begin\",\"txn\":\"T0.0\",\"ts\":1}\n\
     not json at all\n\
     {\"ev\":\"mystery\",\"ts\":2}\n\
     \n\
     {\"ev\":\"end\",\"txn\":\"T0.0\",\"ts\":3,\"outcome\":\"commit\",\"dur\":2}\n";
  close_out oc;
  let p = Profile.create () in
  let errs = Profile.load p path in
  Sys.remove path;
  check_int "two bad lines" 2 (Profile.bad_lines p);
  check_int "two errors reported" 2 (List.length errs);
  check_bool "line numbers in errors" true
    (List.exists (fun e -> contains e ":2:") errs);
  check_int "good lines still fed" 2 (Profile.events p)

(* --- monitor provenance ----------------------------------------------- *)

(* Find broken executions whose monitor trips a cycle alarm and check
   that every edge of the reported cycle carries a witness: the two
   actions (with feed timestamps) whose visibility inserted it. *)
let t_monitor_provenance () =
  let hits = ref 0 in
  for seed = 1 to 12 do
    let forest, schema =
      Gen.forest_and_schema Gen.registers ~seed
        { Gen.default with n_top = 8; depth = 1; n_objects = 1;
          read_ratio = 0.3 }
    in
    let r = run_protocol ~seed schema Broken.no_control forest in
    let m = Monitor.create schema in
    let alarms = Monitor.feed_trace m r.Runtime.trace in
    List.iter
      (fun (_, a) ->
        match a with
        | Monitor.Inappropriate _ -> ()
        | Monitor.Cycle cycle ->
            incr hits;
            let witness = Monitor.cycle_witness m cycle in
            check_int "one witness per edge" (List.length cycle)
              (List.length witness);
            List.iter
              (fun (a, b, prov) ->
                match prov with
                | None ->
                    Alcotest.failf "edge %s -> %s has no provenance"
                      (Txn_id.to_string a) (Txn_id.to_string b)
                | Some p ->
                    (* the witnesses are actions of descendants of the
                       edge's endpoints, in feed order *)
                    check_bool "before is a's descendant" true
                      (Txn_id.is_descendant p.Monitor.before.Monitor.who a);
                    check_bool "after is b's descendant" true
                      (Txn_id.is_descendant p.Monitor.after.Monitor.who b);
                    check_bool "feed order" true
                      (p.Monitor.before.Monitor.at
                       < p.Monitor.after.Monitor.at);
                    if p.Monitor.kind = Monitor.Conflict then
                      check_bool "conflicts name the object" true
                        (p.Monitor.before.Monitor.where <> None))
              witness;
            (* the textual explanation names every edge *)
            let text = Monitor.explain_cycle m cycle in
            List.iter
              (fun (a, b, _) ->
                check_bool "edge in explanation" true
                  (contains text
                     (Printf.sprintf "%s -> %s" (Txn_id.to_string a)
                        (Txn_id.to_string b))))
              witness;
            (* the DOT render highlights the first cycle and labels edges *)
            let dot = Monitor.dot m in
            check_bool "cycle highlighted" true (contains dot "color=red");
            check_bool "edges labelled" true (contains dot "label=\""))
      alarms
  done;
  check_bool "found cycle alarms to check" true (!hits > 0)

(* --- DOT edge labels --------------------------------------------------- *)

let t_dot_edge_labels () =
  let g = Graph.create () in
  let a = txn [ 0 ] and b = txn [ 1 ] in
  Graph.add_edge g a b;
  let label u v =
    if Txn_id.equal u a && Txn_id.equal v b then
      Some "x \"quoted\"\nline2\\end"
    else None
  in
  let dot = Dot.of_graph ~edge_label:label g in
  check_bool "label present and escaped" true
    (contains dot {|label="x \"quoted\"\nline2\\end"|});
  let plain = Dot.of_graph g in
  check_bool "no edge label without callback" true
    (not (contains plain "quoted"))

(* --- runtime attribution metrics --------------------------------------- *)

let t_runtime_attribution () =
  (* a contended workload with injected aborts: the cause taxonomy must
     partition the observed aborts, and every refusal must emit a Wait
     event with non-ancestral holders *)
  let forest, schema =
    Gen.forest_and_schema Gen.counters ~seed:3
      { Gen.default with n_top = 10; depth = 2; n_objects = 2; theta = 0.9 }
  in
  let sink, events = Obs_sink.memory () in
  let o = Obs.create ~sink () in
  let r =
    Runtime.run ~policy:Runtime.Random_step ~abort_prob:0.03 ~obs:o ~seed:3
      schema Commlock_object.factory forest
  in
  Obs.close o;
  let m = Obs.metrics o in
  let cv n = Metrics.counter_value (Metrics.counter m n) in
  check_int "lock-conflict causes = deadlock victims"
    r.Runtime.stats.Runtime.deadlock_aborts
    (cv "abort.cause.lock_conflict");
  check_int "every abort has a cause"
    (cv "txn.aborted")
    (cv "abort.cause.lock_conflict" + cv "abort.cause.parent"
    + cv "abort.cause.injected");
  let n_waits = ref 0 in
  List.iter
    (function
      | Obs_event.Wait { txn = blocked; holders; waited; ts; _ } ->
          incr n_waits;
          check_bool "holders known" true (holders <> []);
          check_bool "waited sane" true (waited >= 0 && waited <= ts);
          List.iter
            (fun (h, kind) ->
              check_bool "holder is not an ancestor" true
                (not (Txn_id.is_ancestor h blocked));
              check_bool "kind named" true (kind <> ""))
            holders
      | _ -> ())
    (events ());
  check_int "one Wait event per refusal"
    r.Runtime.stats.Runtime.blocked_attempts !n_waits;
  check_bool "wait-for edges observed" true (cv "runtime.waitfor.edges" >= 0)

let suite =
  ( "profile",
    [
      Alcotest.test_case "Metrics.merge" `Quick t_metrics_merge;
      Alcotest.test_case "event JSON roundtrip" `Quick t_event_roundtrip;
      Alcotest.test_case "JSON parser" `Quick t_json_parse;
      Alcotest.test_case "Txn_id.of_string" `Quick t_txn_id_of_string;
      Alcotest.test_case "chrome exporter escaping" `Quick t_chrome_escaping;
      Alcotest.test_case "wait-streak reconstruction" `Quick t_wait_streaks;
      Alcotest.test_case "profile load and merge" `Quick
        t_profile_load_and_merge;
      Alcotest.test_case "malformed trace lines" `Quick t_profile_bad_lines;
      Alcotest.test_case "monitor cycle provenance" `Quick
        t_monitor_provenance;
      Alcotest.test_case "dot edge labels" `Quick t_dot_edge_labels;
      Alcotest.test_case "runtime attribution metrics" `Quick
        t_runtime_attribution;
    ] )
