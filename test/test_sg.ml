open Core
open Util

(* Two top-level transactions, each with one access to x; T1 writes, T2
   reads, and both commit fully.  Conflict edge must be T1 -> T2 when
   the write responds first. *)
let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]
let t2 = txn [ 1 ]
let a2 = txn [ 1; 0 ]

let schema () =
  Program.schema_of
    ~objects:[ (x0, Register.make ()) ]
    [
      Program.seq [ Program.access x0 (Datatype.Write (Value.Int 1)) ];
      Program.seq [ Program.access x0 Datatype.Read ];
    ]

let committed_trace =
  trace_of
    [
      open_txn t1;
      open_txn t2;
      open_txn a1;
      open_txn a2;
      commit_txn a1 Value.Ok;
      commit_txn ~report:false t1 Value.Unit;
      commit_txn a2 (Value.Int 1);
      commit_txn ~report:false t2 Value.Unit;
      [ Action.Report_commit (t1, Value.Unit);
        Action.Report_commit (t2, Value.Unit) ];
    ]

let t_conflict_relation () =
  let rel = Conflict.relation Conflict.Access_level (schema ()) committed_trace in
  check_int "one conflict pair" 1 (List.length rel);
  let a, b = List.hd rel in
  Alcotest.check txn_testable "edge source" t1 a;
  Alcotest.check txn_testable "edge target" t2 b

let t_conflict_needs_visibility () =
  (* Without COMMIT(t1) the write's parent chain is not committed, so a1
     is not visible to T0 and there is no conflict edge. *)
  let tr =
    Trace.filter
      (fun a -> a <> Action.Commit t1 && a <> Action.Report_commit (t1, Value.Unit))
      committed_trace
  in
  check_int "no visible conflict" 0
    (List.length (Conflict.relation Conflict.Access_level (schema ()) tr))

let t_conflict_modes () =
  (* Two writes of the SAME value conflict at access level but not at
     operation level. *)
  let schema2 =
    Program.schema_of
      ~objects:[ (x0, Register.make ()) ]
      [
        Program.seq [ Program.access x0 (Datatype.Write (Value.Int 7)) ];
        Program.seq [ Program.access x0 (Datatype.Write (Value.Int 7)) ];
      ]
  in
  let tr =
    trace_of
      [
        open_txn t1; open_txn a1;
        commit_txn ~report:false a1 Value.Ok; [ Action.Commit t1 ];
        open_txn t2; open_txn a2;
        commit_txn ~report:false a2 Value.Ok; [ Action.Commit t2 ];
      ]
  in
  check_int "access level sees conflict" 1
    (List.length (Conflict.relation Conflict.Access_level schema2 tr));
  check_int "operation level sees none" 0
    (List.length (Conflict.relation Conflict.Operation_level schema2 tr))

let t_precedes_relation () =
  (* T1 reported before REQUEST_CREATE(T2): a precedes edge. *)
  let tr = trace_of [ leaf_txn t1 Value.Unit; leaf_txn t2 Value.Unit ] in
  let rel = Precedes.relation tr in
  check_int "one precedes pair" 1 (List.length rel);
  let a, b = List.hd rel in
  Alcotest.check txn_testable "before" t1 a;
  Alcotest.check txn_testable "after" t2 b;
  (* Concurrent issue order produces no precedes edge. *)
  let tr2 =
    trace_of
      [
        [ Action.Request_create t1; Action.Request_create t2;
          Action.Create t1; Action.Create t2 ];
        commit_txn t1 Value.Unit;
        commit_txn t2 Value.Unit;
      ]
  in
  check_int "no precedes" 0 (List.length (Precedes.relation tr2))

let t_sg_build () =
  let g = Sg.build Sg.Access_level (schema ()) committed_trace in
  check_bool "conflict edge present" true (Graph.mem_edge g t1 t2);
  check_bool "acyclic" true (Graph.is_acyclic g);
  (* Nodes include accesses (lowtransactions of visible events). *)
  check_bool "access node" true (List.exists (Txn_id.equal a1) (Graph.nodes g))

let t_sg_cycle_detected () =
  (* Force a cycle: T1 writes then T2 writes (conflict T1->T2), and T2's
     report precedes T1's REQUEST_CREATE... impossible in one trace; use
     two objects instead: on x, a1 before a2; on y, b2 before b1. *)
  let schema2 =
    Program.schema_of
      ~objects:[ (x0, Register.make ()); (y0, Register.make ()) ]
      [
        Program.par
          [
            Program.access x0 (Datatype.Write (Value.Int 1));
            Program.access y0 (Datatype.Write (Value.Int 1));
          ];
        Program.par
          [
            Program.access x0 (Datatype.Write (Value.Int 2));
            Program.access y0 (Datatype.Write (Value.Int 2));
          ];
      ]
  in
  let b1 = txn [ 0; 1 ] and b2 = txn [ 1; 1 ] in
  let tr =
    trace_of
      [
        open_txn t1; open_txn t2;
        open_txn a1; open_txn b1; open_txn a2; open_txn b2;
        [ Action.Request_commit (a1, Value.Ok);
          Action.Request_commit (b2, Value.Ok);
          Action.Request_commit (a2, Value.Ok);
          Action.Request_commit (b1, Value.Ok);
          Action.Commit a1; Action.Commit b1;
          Action.Commit a2; Action.Commit b2 ];
        commit_txn ~report:false t1 Value.Unit;
        commit_txn ~report:false t2 Value.Unit;
      ]
  in
  let g = Sg.build Sg.Access_level schema2 tr in
  check_bool "t1 -> t2 on x" true (Graph.mem_edge g t1 t2);
  check_bool "t2 -> t1 on y" true (Graph.mem_edge g t2 t1);
  check_bool "cyclic" false (Graph.is_acyclic g);
  check_bool "no witness order" true (Sg.witness_order g = None)

let t_witness_order_and_view () =
  let g = Sg.build Sg.Access_level (schema ()) committed_trace in
  match Sg.witness_order g with
  | None -> Alcotest.fail "expected witness order"
  | Some r ->
      check_bool "t1 before t2" true (Sibling_order.mem r t1 t2);
      check_bool "suitable" true
        (Suitability.is_suitable committed_trace ~to_:Txn_id.root r);
      let view = View.view (schema ()) committed_trace ~to_:Txn_id.root r x0 in
      check_int "two operations in view" 2 (List.length view);
      let ops = View.view_ops (schema ()) committed_trace ~to_:Txn_id.root r x0 in
      check_bool "view replays" true
        (Serial_spec.legal (Register.make ()) ops)

let t_suitability_unordered () =
  (* An empty order cannot order the sibling lowtransactions. *)
  match Suitability.check committed_trace ~to_:Txn_id.root Sibling_order.empty with
  | Error (Suitability.Unordered_siblings _) -> ()
  | _ -> Alcotest.fail "expected unordered siblings failure"

let t_suitability_event_cycle () =
  (* Order t2 before t1, but t1's report affects REQUEST_CREATE(t2)
     (both have transaction T0) in a sequential trace: R_event then
     contradicts affects. *)
  let tr = trace_of [ leaf_txn t1 Value.Unit; leaf_txn t2 Value.Unit ] in
  let bad = Sibling_order.of_chains [ [ t2; t1 ] ] in
  (match Suitability.check tr ~to_:Txn_id.root bad with
  | Error (Suitability.Event_cycle _) -> ()
  | Ok () -> Alcotest.fail "expected event cycle"
  | Error (Suitability.Unordered_siblings _) ->
      Alcotest.fail "expected event cycle, got unordered");
  let good = Sibling_order.of_chains [ [ t1; t2 ] ] in
  check_bool "correct order suitable" true
    (Suitability.is_suitable tr ~to_:Txn_id.root good)

let suite =
  ( "sg",
    [
      Alcotest.test_case "conflict relation" `Quick t_conflict_relation;
      Alcotest.test_case "conflict needs visibility" `Quick
        t_conflict_needs_visibility;
      Alcotest.test_case "conflict modes" `Quick t_conflict_modes;
      Alcotest.test_case "precedes relation" `Quick t_precedes_relation;
      Alcotest.test_case "sg build" `Quick t_sg_build;
      Alcotest.test_case "sg cycle detected" `Quick t_sg_cycle_detected;
      Alcotest.test_case "witness order and view" `Quick t_witness_order_and_view;
      Alcotest.test_case "suitability: unordered" `Quick t_suitability_unordered;
      Alcotest.test_case "suitability: event cycle" `Quick
        t_suitability_event_cycle;
    ] )
