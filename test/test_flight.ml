(* Stage spans, the flight recorder, GC-pause attribution, and the
   dump-analysis pipeline (Flight). *)

open Core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let span ?req ?txn ?(conn = 1) stage t0 t1 =
  { Stage.sp_stage = stage; sp_req = req; sp_txn = txn; sp_conn = conn;
    sp_t0 = t0; sp_t1 = t1 }

(* ----- span JSON ----- *)

let t_span_roundtrip () =
  let spans =
    [
      span "read" 0.25 0.5;
      span ~req:"c1-7" ~txn:"T0.3" "execute" 1.0 2.5;
      span ~req:"we\"ird\\id\n" ~conn:(-1) "gc.pause" 0.125 0.25;
    ]
  in
  List.iter
    (fun sp ->
      match Stage.span_of_json (Stage.span_to_json sp) with
      | Ok sp' ->
          check_string "stage" sp.Stage.sp_stage sp'.Stage.sp_stage;
          check_bool "req" true (sp.Stage.sp_req = sp'.Stage.sp_req);
          check_bool "txn" true (sp.Stage.sp_txn = sp'.Stage.sp_txn);
          check_int "conn" sp.Stage.sp_conn sp'.Stage.sp_conn;
          check_bool "t0" true (sp.Stage.sp_t0 = sp'.Stage.sp_t0);
          check_bool "t1" true (sp.Stage.sp_t1 = sp'.Stage.sp_t1)
      | Error e -> Alcotest.failf "span_of_json: %s" e)
    spans;
  check_int "dur_us rounds" 250000 (Stage.dur_us (span "read" 0.25 0.5));
  check_int "dur_us clamps" 0 (Stage.dur_us (span "read" 0.5 0.25))

(* ----- ring wrap-around ----- *)

let t_ring_wraparound () =
  let r = Stage.Recorder.create ~capacity:4 in
  check_int "capacity" 4 (Stage.Recorder.capacity r);
  check_int "empty size" 0 (Stage.Recorder.size r);
  check_bool "empty spans" true (Stage.Recorder.spans r = []);
  for i = 1 to 10 do
    Stage.Recorder.record r (span ~req:(Printf.sprintf "r%d" i) "read"
                               (float_of_int i) (float_of_int i +. 0.5))
  done;
  check_int "size capped" 4 (Stage.Recorder.size r);
  check_int "total" 10 (Stage.Recorder.total r);
  check_int "dropped" 6 (Stage.Recorder.dropped r);
  (* oldest-first: r7 r8 r9 r10 survive *)
  let reqs =
    List.map
      (fun sp -> Option.get sp.Stage.sp_req)
      (Stage.Recorder.spans r)
  in
  Alcotest.(check (list string)) "oldest first" [ "r7"; "r8"; "r9"; "r10" ]
    reqs;
  Stage.Recorder.clear r;
  check_int "cleared" 0 (Stage.Recorder.size r);
  check_int "total survives clear" 10 (Stage.Recorder.total r);
  (* capacity floor *)
  let tiny = Stage.Recorder.create ~capacity:0 in
  Stage.Recorder.record tiny (span "read" 0. 1.);
  Stage.Recorder.record tiny (span "decode" 1. 2.);
  check_int "min capacity 1" 1 (Stage.Recorder.size tiny)

(* ----- dump determinism under a fixed clock ----- *)

let dump_to_string dump r =
  let path = Filename.temp_file "flight" ".jsonl" in
  let oc = open_out path in
  ignore (dump r ~reason:"test" ~now:4.5 oc);
  close_out oc;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  s

let t_dump_deterministic () =
  let r = Stage.Recorder.create ~capacity:8 in
  for i = 1 to 12 do
    Stage.Recorder.record r
      (span ~req:(Printf.sprintf "c0-%d" i) ~txn:(Printf.sprintf "T0.%d" i)
         "execute"
         (float_of_int i /. 8.)
         ((float_of_int i /. 8.) +. 0.125))
  done;
  let a = dump_to_string Stage.Recorder.dump_jsonl r in
  let b = dump_to_string Stage.Recorder.dump_jsonl r in
  check_string "jsonl deterministic" a b;
  let ca = dump_to_string Stage.Recorder.dump_chrome r in
  let cb = dump_to_string Stage.Recorder.dump_chrome r in
  check_string "chrome deterministic" ca cb;
  (* the header carries the drop count *)
  check_bool "header dropped" true
    (Astring_like.contains a "\"dropped\":4");
  (* every line parses *)
  String.split_on_char '\n' a
  |> List.filter (fun l -> String.trim l <> "")
  |> List.iter (fun l ->
         match Obs_json.parse l with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "bad dump line %S: %s" l e)


(* ----- chrome escaping of hostile names ----- *)

let t_chrome_escaping () =
  let r = Stage.Recorder.create ~capacity:8 in
  Stage.Recorder.record r
    (span ~req:"evil\"req\\<>\n" ~txn:"T0.\t1" "sta\"ge\\" 0.5 1.0);
  Stage.Recorder.record r (span ~req:"\x01control\x1f" "read" 1.0 1.5);
  let s = dump_to_string Stage.Recorder.dump_chrome r in
  (match Obs_json.parse (String.trim s) with
  | Ok (Obs_json.Arr events) ->
      check_bool "several events" true (List.length events >= 2)
  | Ok _ -> Alcotest.fail "chrome dump is not an array"
  | Error e -> Alcotest.failf "chrome dump does not parse: %s" e);
  (* jsonl side survives the same names *)
  let j = dump_to_string Stage.Recorder.dump_jsonl r in
  let f = Flight.create () in
  String.split_on_char '\n' j
  |> List.filter (fun l -> String.trim l <> "")
  |> List.iter (fun l ->
         match Flight.feed_line f l with
         | Ok () -> ()
         | Error e -> Alcotest.failf "feed_line %S: %s" l e);
  match Flight.spans f with
  | [ a; _ ] ->
      check_bool "hostile req survives" true
        (a.Stage.sp_req = Some "evil\"req\\<>\n")
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* ----- flight analysis: chains, exclusive time, folded stacks ----- *)

(* One request with the full server shape: read/decode ahead,
   validate/admit, execute containing gate and a gc pause, reply after.
   Times in seconds; exclusive accounting must give the chain sums. *)
let seven_stage_spans =
  [
    span ~req:"c1-1" "read" 1.000 1.001;
    span ~req:"c1-1" "decode" 1.001 1.002;
    span ~req:"c1-1" ~txn:"T0.4" "validate" 1.002 1.004;
    span ~req:"c1-1" ~txn:"T0.4" "admit" 1.004 1.006;
    span ~req:"c1-1" ~txn:"T0.4" "execute" 1.006 1.046;
    span ~req:"c1-1" ~txn:"T0.4" "gate" 1.040 1.044;
    span ~req:"c1-1" ~txn:"T0.4" "gc.pause" 1.010 1.015;
    span ~req:"c1-1" ~txn:"T0.4" "reply" 1.046 1.048;
  ]

let load_flight spans =
  let f = Flight.create () in
  (match
     Flight.feed_line f
       "{\"ev\":\"flight\",\"reason\":\"slow\",\"t\":2.0,\"spans\":8,\"dropped\":3}"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "header: %s" e);
  List.iter
    (fun sp ->
      match Flight.feed_line f (Obs_json.to_string (Stage.span_to_json sp)) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "span line: %s" e)
    spans;
  f

let t_chain_exclusive () =
  let f = load_flight seven_stage_spans in
  check_bool "reason" true (Flight.reason f = Some "slow");
  check_int "dropped" 3 (Flight.dropped f);
  let c =
    match Flight.chain f "c1-1" with
    | Some c -> c
    | None -> Alcotest.fail "chain c1-1 missing"
  in
  check_bool "txn" true (c.Flight.c_txn = Some "T0.4");
  check_bool "complete" true (c.Flight.c_missing = []);
  let get s = List.assoc s c.Flight.c_stages in
  check_int "read" 1000 (get "read");
  check_int "decode" 1000 (get "decode");
  check_int "validate" 2000 (get "validate");
  check_int "admit" 2000 (get "admit");
  (* execute is 40ms minus the nested gate (4ms) and gc (5ms) *)
  check_int "execute exclusive" 31000 (get "execute");
  check_int "gate" 4000 (get "gate");
  check_int "gc" 5000 (get "gc.pause");
  check_int "reply" 2000 (get "reply");
  (* the acceptance criterion: stage sums within 5% of e2e *)
  let e2e = int_of_float (((c.Flight.c_t1 -. c.Flight.c_t0) *. 1e6) +. 0.5) in
  let sum = List.fold_left (fun a (_, us) -> a + us) 0 c.Flight.c_stages in
  check_bool "sums to e2e" true
    (abs (sum - e2e) * 100 <= 5 * e2e);
  (* canonical ordering, extras after *)
  Alcotest.(check (list string)) "stage order"
    [ "read"; "decode"; "validate"; "admit"; "gate"; "execute"; "reply";
      "gc.pause" ]
    (List.map fst c.Flight.c_stages);
  (* folded stacks name the nesting *)
  let folded = Flight.folded f in
  check_bool "nested gate stack" true
    (Astring_like.contains folded "ntserved;execute;gate 4000");
  check_bool "top-level read stack" true
    (Astring_like.contains folded "ntserved;read 1000");
  (* critical path: execute dominates *)
  match Flight.critical f with
  | (top, us, pct) :: _ ->
      check_string "critical top" "execute" top;
      check_int "critical us" 31000 us;
      check_bool "critical pct" true (pct > 50.0)
  | [] -> Alcotest.fail "no critical path"

let t_incomplete_chain () =
  let partial =
    List.filter
      (fun sp -> sp.Stage.sp_stage <> "reply" && sp.Stage.sp_stage <> "gate")
      seven_stage_spans
  in
  let f = load_flight partial in
  match Flight.chains f with
  | [ c ] ->
      Alcotest.(check (list string)) "missing lists absent canonical stages"
        [ "gate"; "reply" ]
        (List.sort compare c.Flight.c_missing)
  | l -> Alcotest.failf "expected 1 chain, got %d" (List.length l)

(* ----- span <-> audit linkage through a served engine ----- *)

(* Drive the real Engine with a clock and check that stage_times gives
   a plausible execute/gate interval for the transaction the completion
   hook names — the linkage ntserved relies on to emit execute/gate
   spans carrying the audited request id. *)
let t_engine_stage_times () =
  let objects = [ (Obj_id.make "x", Register.make ()) ] in
  let t = ref 0.0 in
  let clock () =
    t := !t +. 0.001;
    !t
  in
  let seen = ref [] in
  let eng_cell = ref None in
  let eng =
    Engine.create ~policy:Runtime.Bsp_rounds ~admission:true ~clock
      ~on_top_complete:(fun u outcome ->
        let eng = Option.get !eng_cell in
        match Engine.stage_times eng u with
        | None -> Alcotest.fail "stage_times missing in completion hook"
        | Some st ->
            seen := (u, outcome, st.Engine.st_submit, st.Engine.st_start,
                     st.Engine.st_gate, st.Engine.st_gates,
                     st.Engine.st_complete)
                    :: !seen)
      ~seed:7 objects Moss_object.factory
  in
  eng_cell := Some eng;
  let x = Obj_id.make "x" in
  let prog =
    Program.seq
      [
        Program.access x Datatype.Read;
        Program.access x (Datatype.Write (Value.Int 1));
      ]
  in
  let txn =
    match Engine.submit eng prog with
    | Ok u -> u
    | Error e -> Alcotest.failf "submit: %s" e
  in
  (match Engine.drain eng with
  | `Quiescent -> ()
  | _ -> Alcotest.fail "no quiesce");
  (match !seen with
  | [ (u, `Committed, submit, start, gate, gates, complete) ] ->
      check_bool "same txn" true (Txn_id.equal u txn);
      check_bool "submit stamped" true (submit > 0.0);
      check_bool "start after submit" true (start >= submit);
      check_bool "complete after start" true (complete > start);
      check_bool "gate time accrued" true (gate > 0.0);
      check_bool "gate consulted" true (gates >= 1);
      check_bool "gate within execute" true (gate <= complete -. start)
  | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l));
  (* retired after completion *)
  check_bool "times retired" true (Engine.stage_times eng txn = None);
  ignore (Engine.finish eng)

(* ----- gcmon ----- *)

let t_gcmon_poll () =
  match Gcmon.start () with
  | None -> () (* tracing unavailable in this runtime: nothing to check *)
  | Some g ->
      (* churn the minor heap so at least the fallback counters move *)
      let junk = ref [] in
      for i = 0 to 200_000 do
        junk := (i, string_of_int i) :: !junk;
        if i mod 50_000 = 0 then junk := []
      done;
      Gc.minor ();
      let now = 42.0 in
      let pauses = Gcmon.poll g ~now in
      List.iter
        (fun (p : Gcmon.pause) ->
          check_bool "kind named" true (String.length p.Gcmon.gc_kind > 0);
          check_bool "ordered" true (p.Gcmon.gc_t1 >= p.Gcmon.gc_t0);
          check_bool "clamped to now" true (p.Gcmon.gc_t1 <= now))
        pauses;
      check_bool "pauses counted" true (Gcmon.total g >= List.length pauses);
      if Gcmon.precise then
        check_bool "runtime events saw the collections" true
          (Gcmon.total g > 0);
      Gcmon.stop g

let suite =
  ( "flight",
    [
      Alcotest.test_case "span json roundtrip" `Quick t_span_roundtrip;
      Alcotest.test_case "ring wrap-around" `Quick t_ring_wraparound;
      Alcotest.test_case "dump determinism" `Quick t_dump_deterministic;
      Alcotest.test_case "chrome escaping" `Quick t_chrome_escaping;
      Alcotest.test_case "chain exclusive accounting" `Quick t_chain_exclusive;
      Alcotest.test_case "incomplete chain" `Quick t_incomplete_chain;
      Alcotest.test_case "engine stage times" `Quick t_engine_stage_times;
      Alcotest.test_case "gcmon poll" `Quick t_gcmon_poll;
    ] )
