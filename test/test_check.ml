(* The property-based checking engine (lib/check): oracles on seed
   scenarios, campaign determinism, detection of the broken subjects,
   shrinking to small deterministic counterexamples, bundle roundtrip. *)
open Core
open Util

(* Scenario generation is a pure function of the RNG: same seed, same
   scenario (modulo closures — compare the printable projection). *)
let t_gen_deterministic () =
  let render sc =
    Format.asprintf "%d|%d|%s"
      sc.Check.sched_seed
      (Shrink.n_accesses sc.Check.forest)
      (String.concat ","
         (List.map (fun (x, _) -> Obj_id.name x) sc.Check.objects))
  in
  List.iter
    (fun backend ->
      let sc1 = Check.gen_scenario backend (Rng.create 42) in
      let sc2 = Check.gen_scenario backend (Rng.create 42) in
      check_bool "same scenario from same seed" true (render sc1 = render sc2))
    (Check.correct_backends @ Check.broken_backends)

(* Small campaigns over every verified backend must report zero oracle
   failures, and replaying any generated scenario is deterministic. *)
let t_correct_backends_pass () =
  List.iter
    (fun backend ->
      let r = Check.campaign backend ~seed:11 ~runs:8 in
      Alcotest.(check int)
        (Check.backend_name backend ^ " failures")
        0
        (List.length r.Check.failures);
      check_int (Check.backend_name backend ^ " runs") 8 r.Check.runs)
    Check.correct_backends

(* Oracle agreement on curated workloads: run the banking and queue
   scenarios under a verified protocol and judge them — the checker
   and the differential oracle must both accept. *)
let t_oracles_on_seed_scenarios () =
  List.iter
    (fun (forest, schema) ->
      let objects =
        List.map
          (fun x -> (x, schema.Schema.dtype_of x))
          schema.Schema.objects
      in
      let sc =
        {
          Check.forest;
          objects;
          sched_seed = 5;
          policy = Runtime.Random_step;
          inform_policy = Runtime.Eager;
          abort_prob = 0.0;
          family = None;
        }
      in
      let o = Check.run_scenario Check.Undo sc in
      check_bool "curated scenario passes all oracles" true
        (o.Check.failure = None))
    [
      Scenario.banking ~n_accounts:3 ~n_transfers:5 ~seed:2;
      Scenario.queue_producers_consumers ~n_producers:2 ~n_consumers:2 ~seed:2;
    ]

(* Every broken subject is detected within a modest campaign. *)
let t_broken_detected () =
  List.iter
    (fun backend ->
      let r = Check.campaign backend ~seed:3 ~runs:100 in
      check_bool
        (Check.backend_name backend ^ " caught")
        true
        (r.Check.failures <> []))
    Check.broken_backends

let first_failure backend ~seed ~runs =
  let r = Check.campaign backend ~seed ~runs in
  match r.Check.failures with
  | (_, sc, _) :: _ -> sc
  | [] -> Alcotest.fail (Check.backend_name backend ^ ": no failure found")

(* A no-control violation shrinks to a tiny counterexample that still
   fails, deterministically. *)
let t_shrink_small () =
  let sc = first_failure Check.No_control ~seed:3 ~runs:100 in
  match Shrink.minimize Check.No_control sc with
  | None -> Alcotest.fail "minimize lost the failure"
  | Some m ->
      check_bool "minimal counterexample has at most 6 accesses" true
        (Shrink.n_accesses m.Shrink.scenario.Check.forest <= 6);
      check_bool "determinism re-verified" true m.Shrink.deterministic;
      (* The minimized scenario still fails on a fresh run. *)
      let o = Check.run_scenario Check.No_control m.Shrink.scenario in
      check_bool "still failing" true (o.Check.failure <> None)

(* Shrinking twice from the same failing scenario yields the same
   minimal counterexample (the whole pipeline is seed-deterministic). *)
let t_shrink_deterministic () =
  let sc = first_failure Check.No_control ~seed:3 ~runs:100 in
  match
    (Shrink.minimize Check.No_control sc, Shrink.minimize Check.No_control sc)
  with
  | Some m1, Some m2 ->
      check_bool "same size" true
        (Shrink.n_accesses m1.Shrink.scenario.Check.forest
        = Shrink.n_accesses m2.Shrink.scenario.Check.forest);
      check_bool "same failure" true (m1.Shrink.failure = m2.Shrink.failure);
      check_bool "same rendered bundle" true
        (Bundle.to_string Check.No_control m1.Shrink.scenario
        = Bundle.to_string Check.No_control m2.Shrink.scenario)
  | _ -> Alcotest.fail "minimize lost the failure"

(* Bundles roundtrip: save a shrunk counterexample, load it back, and
   the replayed run reproduces the same failure tag. *)
let t_bundle_roundtrip () =
  let sc = first_failure Check.No_control ~seed:3 ~runs:100 in
  let m =
    match Shrink.minimize Check.No_control sc with
    | Some m -> m
    | None -> Alcotest.fail "minimize lost the failure"
  in
  let s =
    Bundle.to_string ~failure:m.Shrink.failure Check.No_control
      m.Shrink.scenario
  in
  match Bundle.of_string s with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check_bool "backend survives" true (b.Bundle.backend = Check.No_control);
      check_bool "failure tag recorded" true
        (b.Bundle.failure_tag = Some (Check.failure_tag m.Shrink.failure));
      check_int "sched seed survives" m.Shrink.scenario.Check.sched_seed
        b.Bundle.scenario.Check.sched_seed;
      let o = Check.run_scenario b.Bundle.backend b.Bundle.scenario in
      (match o.Check.failure with
      | None -> Alcotest.fail "replayed bundle no longer fails"
      | Some f ->
          check_bool "same failure tag on replay" true
            (Check.failure_tag f = Check.failure_tag m.Shrink.failure))

(* Oracle equivalence: on generated scenarios — verified and broken
   backends alike — the incremental batch checker, the online
   incremental monitor, and the from-scratch DFS reference must return
   the same SG-acyclicity verdict, and running the monitor twice over
   the same trace must report identical alarm counts.  (Replication is
   excluded: its physical schema differs from the scenario's logical
   one.) *)
let t_sg_oracle_equivalence () =
  List.iter
    (fun backend ->
      let master = Rng.create 19 in
      for _ = 1 to 5 do
        let rng = Rng.split master in
        let sc = Check.gen_scenario backend rng in
        let o = Check.run_scenario backend sc in
        if not o.Check.truncated then begin
          let schema = Check.schema_of_scenario sc in
          let a = Check.sg_agreement schema o.Check.trace in
          check_bool
            (Check.backend_name backend ^ " verdicts agree")
            true (Check.sg_agrees a);
          let a' = Check.sg_agreement schema o.Check.trace in
          check_bool
            (Check.backend_name backend ^ " alarm counts deterministic")
            true (a = a')
        end
      done)
    [
      Check.Moss;
      Check.Commlock;
      Check.Undo;
      Check.Mvts;
      Check.No_control;
      Check.Unsafe_read;
      Check.No_undo;
    ]

(* On a scenario the cycle-prone broken subject fails, the three
   detectors must also agree on the *cyclic* side: replay the first
   sg-cycle failure's trace and require a unanimous rejection. *)
let t_sg_oracle_equivalence_on_cycle () =
  let r = Check.campaign Check.No_control ~seed:3 ~runs:100 ~stop_at_first:false in
  let cyclic =
    List.filter_map
      (fun (_, sc, f) ->
        match f with Check.Sg_cycle _ -> Some sc | _ -> None)
      r.Check.failures
  in
  check_bool "campaign produced an sg-cycle failure" true (cyclic <> []);
  List.iter
    (fun sc ->
      let o = Check.run_scenario Check.No_control sc in
      let a = Check.sg_agreement (Check.schema_of_scenario sc) o.Check.trace in
      check_bool "all three detectors reject" true
        (Check.sg_agrees a && not a.Check.checker_acyclic);
      check_bool "monitor alarmed with a cycle" true (a.Check.cycle_alarms > 0))
    cyclic

(* Campaign outcomes flow into the Nt_obs metrics registry. *)
let t_campaign_metrics () =
  let obs = Obs.create () in
  let r = Check.campaign ~obs Check.Undo ~seed:11 ~runs:5 in
  let get name = Metrics.counter_value (Metrics.counter (Obs.metrics obs) name) in
  check_int "check.runs counted" r.Check.runs (get "check.runs");
  check_int "check.pass counted" r.Check.passed (get "check.pass");
  check_int "no check.fail" 0 (get "check.fail");
  let obs_fail = Obs.create () in
  let rf = Check.campaign ~obs:obs_fail Check.No_control ~seed:3 ~runs:100 in
  check_bool "failure campaign failed" true (rf.Check.failures <> []);
  let getf name = Metrics.counter_value (Metrics.counter (Obs.metrics obs_fail) name) in
  check_int "check.fail counted" (List.length rf.Check.failures)
    (getf "check.fail")

(* ----- backend/grammar name registries and the weak adversaries ----- *)

(* The name registry is total and involutive: every backend has a
   unique name that parses back to it, and the unknown-name diagnostic
   lists every valid name — so the CLI error can never drift out of
   sync with the backend list. *)
let t_backend_names_sync () =
  check_int "one name per backend" (List.length Check.all_backends)
    (List.length Check.backend_names);
  check_int "names unique"
    (List.length (List.sort_uniq compare Check.backend_names))
    (List.length Check.backend_names);
  List.iter
    (fun b ->
      match Check.backend_of_name (Check.backend_name b) with
      | Some b' ->
          check_bool (Check.backend_name b ^ " roundtrips") true (b = b')
      | None ->
          Alcotest.fail (Check.backend_name b ^ " does not parse back"))
    Check.all_backends;
  check_bool "unknown name rejected" true
    (Check.backend_of_name "bogus" = None);
  let msg = Check.unknown_backend_message "bogus" in
  check_bool "message names the offender" true
    (Astring.String.is_infix ~affix:"bogus" msg);
  List.iter
    (fun name ->
      check_bool ("message lists " ^ name) true
        (Astring.String.is_infix ~affix:name msg))
    Check.backend_names

(* Same for the grammar registry. *)
let t_grammar_names_sync () =
  List.iter
    (fun g ->
      match Check.grammar_of_name (Check.grammar_name g) with
      | Some g' ->
          check_bool (Check.grammar_name g ^ " roundtrips") true (g = g')
      | None -> Alcotest.fail (Check.grammar_name g ^ " does not parse back"))
    [ Check.Rw; Check.Counters; Check.Mixed; Check.Weighted; Check.Smallbank ];
  check_bool "unknown grammar rejected" true
    (Check.grammar_of_name "bogus" = None)

(* [grammar_allowed] is exactly the rw-only restriction: the
   register-encoded grammars pass everywhere, the datatype-drawing
   ones only where the backend is not register-only — and the
   conflict diagnostic names the offending pair plus every
   register-only backend, so the CLI refusal explains itself. *)
let t_grammar_allowed () =
  List.iter
    (fun b ->
      List.iter
        (fun g ->
          let expect =
            match g with
            | Check.Rw | Check.Smallbank -> true
            | _ -> not (Check.rw_only b)
          in
          check_bool
            (Check.backend_name b ^ "/" ^ Check.grammar_name g)
            expect
            (Check.grammar_allowed b g))
        [ Check.Rw; Check.Counters; Check.Mixed; Check.Weighted;
          Check.Smallbank ])
    Check.all_backends;
  let msg = Check.grammar_conflict_message Check.Moss Check.Counters in
  check_bool "message names the grammar" true
    (Astring.String.is_infix ~affix:"counters" msg);
  check_bool "message names the backend" true
    (Astring.String.is_infix ~affix:"moss" msg);
  List.iter
    (fun b ->
      if Check.rw_only b then
        check_bool ("message lists " ^ Check.backend_name b) true
          (Astring.String.is_infix ~affix:(Check.backend_name b) msg))
    Check.all_backends;
  check_bool "message offers the register-only grammars" true
    (Astring.String.is_infix ~affix:"smallbank" msg)

(* The weak-isolation adversaries under the contended SmallBank
   grammar: detected, shrunk to a replayable counterexample, and the
   bundle reproduces the same failure tag — the full pipeline the
   nightly fuzz job relies on. *)
let t_weak_backends_shrink_and_replay () =
  List.iter
    (fun backend ->
      let r =
        Check.campaign ~grammar:Check.Smallbank backend ~seed:3 ~runs:40
          ~stop_at_first:true
      in
      match r.Check.failures with
      | [] ->
          Alcotest.fail (Check.backend_name backend ^ ": not detected")
      | (_, sc, f) :: _ -> (
          check_bool "failure scenario tagged with its family" true
            (sc.Check.family = Some "smallbank");
          match Shrink.minimize backend sc with
          | None ->
              Alcotest.fail (Check.backend_name backend ^ ": shrink lost it")
          | Some m ->
              let text =
                Bundle.to_string ~failure:m.Shrink.failure backend
                  m.Shrink.scenario
              in
              (match Bundle.of_string text with
              | Error e -> Alcotest.fail e
              | Ok b -> (
                  check_bool "bundle backend survives" true
                    (b.Bundle.backend = backend);
                  check_bool "bundle family survives" true
                    (b.Bundle.scenario.Check.family
                    = m.Shrink.scenario.Check.family);
                  let o = Check.run_scenario b.Bundle.backend b.Bundle.scenario in
                  match o.Check.failure with
                  | None -> Alcotest.fail "replayed bundle no longer fails"
                  | Some f' ->
                      check_bool "same failure tag on replay" true
                        (Check.failure_tag f' = Check.failure_tag m.Shrink.failure)));
              ignore f))
    [ Check.Causal_only; Check.Prefix_consistent; Check.Snapshot_read ]

(* Scenario generation stamps the workload family, and it survives the
   bundle text format even without a failure. *)
let t_family_recorded_and_preserved () =
  List.iter
    (fun (grammar, expect) ->
      let sc =
        Check.gen_scenario ~grammar Check.Undo (Rng.create 8)
      in
      check_bool (expect ^ " recorded") true (sc.Check.family = Some expect);
      match Bundle.of_string (Bundle.to_string Check.Undo sc) with
      | Error e -> Alcotest.fail e
      | Ok b ->
          check_bool (expect ^ " survives the bundle") true
            (b.Bundle.scenario.Check.family = Some expect))
    [ (Check.Rw, "rw"); (Check.Smallbank, "smallbank") ]

(* The essn failure class has a stable tag for bundles and logs. *)
let t_essn_failure_tag () =
  Alcotest.(check string)
    "essn tag" "essn"
    (Check.failure_tag (Check.Essn_rejected "stale read"))

(* The weak adversaries only claim to support read/write registers;
   the generator must respect that whatever the requested grammar. *)
let t_weak_backends_register_only () =
  List.iter
    (fun backend ->
      let master = Rng.create 51 in
      for _ = 1 to 5 do
        let sc = Check.gen_scenario backend (Rng.split master) in
        List.iter
          (fun (_, dt) ->
            Alcotest.(check string) "register objects only" "register"
              dt.Datatype.dt_name)
          sc.Check.objects
      done)
    [ Check.Causal_only; Check.Prefix_consistent; Check.Snapshot_read ]

let suite =
  ( "check",
    [
      Alcotest.test_case "scenario generation deterministic" `Quick
        t_gen_deterministic;
      Alcotest.test_case "verified backends pass campaigns" `Slow
        t_correct_backends_pass;
      Alcotest.test_case "oracles accept curated scenarios" `Quick
        t_oracles_on_seed_scenarios;
      Alcotest.test_case "broken subjects detected" `Quick t_broken_detected;
      Alcotest.test_case "shrinks to <= 6 accesses" `Quick t_shrink_small;
      Alcotest.test_case "shrinking is deterministic" `Quick
        t_shrink_deterministic;
      Alcotest.test_case "bundle roundtrip" `Quick t_bundle_roundtrip;
      Alcotest.test_case "sg oracle equivalence" `Quick
        t_sg_oracle_equivalence;
      Alcotest.test_case "sg oracle equivalence on a cycle" `Quick
        t_sg_oracle_equivalence_on_cycle;
      Alcotest.test_case "campaign metrics" `Quick t_campaign_metrics;
      Alcotest.test_case "backend name registry in sync" `Quick
        t_backend_names_sync;
      Alcotest.test_case "grammar name registry in sync" `Quick
        t_grammar_names_sync;
      Alcotest.test_case "grammar/backend conflicts refused loudly" `Quick
        t_grammar_allowed;
      Alcotest.test_case "weak backends shrink and replay" `Quick
        t_weak_backends_shrink_and_replay;
      Alcotest.test_case "workload family recorded and preserved" `Quick
        t_family_recorded_and_preserved;
      Alcotest.test_case "essn failure tag" `Quick t_essn_failure_tag;
      Alcotest.test_case "weak backends are register-only" `Quick
        t_weak_backends_register_only;
    ] )
