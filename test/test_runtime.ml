open Core
open Util

let t_quiescence_and_counts () =
  (* Contention-free workload (disjoint objects): exact counts hold. *)
  let z0 = Obj_id.make "z" in
  let forest =
    [
      Program.seq
        [ Program.access x0 Datatype.Read; Program.access x0 (Datatype.Write (Value.Int 1)) ];
      Program.seq [ Program.access y0 Datatype.Read ];
      Program.seq
        [ Program.access z0 (Datatype.Write (Value.Int 3)); Program.access z0 Datatype.Read ];
    ]
  in
  let schema =
    Program.schema_of
      ~objects:
        [ (x0, Register.make ()); (y0, Register.make ()); (z0, Register.make ()) ]
      forest
  in
  let r = run_protocol ~seed:1 schema Moss_object.factory forest in
  check_bool "not truncated" false r.Runtime.stats.truncated;
  check_int "all top committed" 3 r.Runtime.committed_top;
  check_int "none aborted" 0 r.Runtime.aborted_top;
  check_int "no deadlock aborts" 0 r.Runtime.stats.deadlock_aborts;
  check_int "trace length = actions" r.Runtime.stats.actions
    (Trace.length r.Runtime.trace);
  (* Every access response appears exactly once. *)
  let responses =
    Array.to_list r.Runtime.trace
    |> List.filter (fun a ->
           match a with
           | Action.Request_commit (t, _) -> System_type.is_access schema.Schema.sys t
           | _ -> false)
  in
  check_int "five accesses" 5 (List.length responses)

let t_determinism () =
  let forest, schema = rw_pair () in
  let r1 = run_protocol ~seed:7 schema Moss_object.factory forest in
  let r2 = run_protocol ~seed:7 schema Moss_object.factory forest in
  check_bool "same seed, same trace" true
    (Trace.to_list r1.Runtime.trace = Trace.to_list r2.Runtime.trace);
  let r3 = run_protocol ~seed:8 schema Moss_object.factory forest in
  check_bool "different seed, different trace (very likely)" true
    (Trace.to_list r1.Runtime.trace <> Trace.to_list r3.Runtime.trace)

let t_bsp_fewer_rounds () =
  (* BSP rounds exploit concurrency: rounds are far fewer than actions. *)
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:3
      { Gen.default with n_top = 8; depth = 1; n_objects = 8; read_ratio = 1.0 }
  in
  let r = run_protocol ~policy:Runtime.Bsp_rounds ~seed:3 schema Moss_object.factory forest in
  check_bool "rounds < actions / 2" true
    (r.Runtime.stats.rounds * 2 < r.Runtime.stats.actions);
  check_bool "still correct" true (Checker.serially_correct schema r.Runtime.trace)

let t_deadlock_broken () =
  (* Two transactions that write x,y in opposite orders under Moss can
     deadlock; the runtime must always terminate, aborting victims as
     needed, and stay serially correct. *)
  let forest =
    [
      Program.seq
        [
          Program.access x0 (Datatype.Write (Value.Int 1));
          Program.access y0 (Datatype.Write (Value.Int 1));
        ];
      Program.seq
        [
          Program.access y0 (Datatype.Write (Value.Int 2));
          Program.access x0 (Datatype.Write (Value.Int 2));
        ];
    ]
  in
  let schema =
    Program.schema_of
      ~objects:[ (x0, Register.make ()); (y0, Register.make ()) ]
      forest
  in
  let saw_deadlock = ref false and saw_cycle = ref false in
  for seed = 1 to 40 do
    let r = run_protocol ~seed schema Moss_object.factory forest in
    check_bool "terminates" false r.Runtime.stats.truncated;
    if r.Runtime.stats.deadlock_aborts > 0 then saw_deadlock := true;
    if r.Runtime.stats.deadlock_cycles > 0 then saw_cycle := true;
    check_bool "cycles bounded by aborts" true
      (r.Runtime.stats.deadlock_cycles <= r.Runtime.stats.deadlock_aborts);
    check_bool "correct despite deadlock handling" true
      (Checker.serially_correct schema r.Runtime.trace)
  done;
  check_bool "deadlock actually exercised" true !saw_deadlock;
  check_bool "waits-for cycle actually detected" true !saw_cycle

let t_abort_injection () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:5
      { Gen.default with n_top = 6; depth = 2 }
  in
  let r = run_protocol ~abort_prob:0.2 ~seed:5 schema Moss_object.factory forest in
  check_bool "aborts injected" true (r.Runtime.stats.injected_aborts > 0);
  check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys r.Runtime.trace);
  check_bool "correct" true (Checker.serially_correct schema r.Runtime.trace)

let t_top_seq_mode () =
  (* Sequential top level: T0 requests children one at a time; the
     precedes relation then totally orders top-level transactions. *)
  let forest, schema = rw_pair () in
  let r =
    Runtime.run ~top_comb:Program.Seq ~seed:2 schema Moss_object.factory forest
  in
  let beta = Trace.serial r.Runtime.trace in
  let rel = Precedes.relation beta in
  check_bool "precedes edge exists" true
    (List.exists
       (fun (a, b) -> Txn_id.equal a (txn [ 0 ]) && Txn_id.equal b (txn [ 1 ]))
       rel);
  check_bool "correct" true (Checker.serially_correct schema r.Runtime.trace)

let t_max_steps_truncation () =
  let forest, schema = rw_pair () in
  let r = Runtime.run ~max_steps:5 ~seed:1 schema Moss_object.factory forest in
  check_bool "truncated" true r.Runtime.stats.truncated

let t_undo_no_deadlock_on_counters () =
  (* Increment-only counter workloads never block under undo logging. *)
  let forest, schema =
    Scenario.hotspot_counter ~n_txns:8 ~n_counters:1 ~theta:0.0 ~seed:4
  in
  let r = run_protocol ~seed:4 schema Undo_object.factory forest in
  check_int "no blocking" 0 r.Runtime.stats.blocked_attempts;
  check_int "no deadlock aborts" 0 r.Runtime.stats.deadlock_aborts;
  check_bool "correct" true (Checker.serially_correct schema r.Runtime.trace)

let suite =
  ( "runtime",
    [
      Alcotest.test_case "quiescence and counts" `Quick t_quiescence_and_counts;
      Alcotest.test_case "determinism by seed" `Quick t_determinism;
      Alcotest.test_case "bsp rounds exploit concurrency" `Quick t_bsp_fewer_rounds;
      Alcotest.test_case "deadlock broken" `Quick t_deadlock_broken;
      Alcotest.test_case "abort injection" `Quick t_abort_injection;
      Alcotest.test_case "sequential top level" `Quick t_top_seq_mode;
      Alcotest.test_case "max steps truncation" `Quick t_max_steps_truncation;
      Alcotest.test_case "undo never blocks on commuting ops" `Quick
        t_undo_no_deadlock_on_counters;
    ] )
