open Core
open Util

(* Order: children of root 0 < 1 < 2; children of [0]: [0;1] < [0;0]. *)
let order () =
  Sibling_order.of_chains
    [ [ txn [ 0 ]; txn [ 1 ]; txn [ 2 ] ]; [ txn [ 0; 1 ]; txn [ 0; 0 ] ] ]

let t_mem () =
  let r = order () in
  check_bool "0 < 1" true (Sibling_order.mem r (txn [ 0 ]) (txn [ 1 ]));
  check_bool "1 < 2" true (Sibling_order.mem r (txn [ 1 ]) (txn [ 2 ]));
  check_bool "0 < 2" true (Sibling_order.mem r (txn [ 0 ]) (txn [ 2 ]));
  check_bool "not reversed" false (Sibling_order.mem r (txn [ 1 ]) (txn [ 0 ]));
  check_bool "irreflexive" false (Sibling_order.mem r (txn [ 0 ]) (txn [ 0 ]));
  check_bool "nested chain" true (Sibling_order.mem r (txn [ 0; 1 ]) (txn [ 0; 0 ]));
  check_bool "unranked sibling" false (Sibling_order.mem r (txn [ 0 ]) (txn [ 7 ]));
  check_bool "orders_pair" true (Sibling_order.orders_pair r (txn [ 2 ]) (txn [ 0 ]))

let t_trans () =
  let r = order () in
  (* Descendants inherit the order of their ancestors. *)
  check_bool "descendants ordered" true
    (Sibling_order.trans_mem r (txn [ 0; 5; 5 ]) (txn [ 1; 9 ]));
  check_bool "reverse false" false
    (Sibling_order.trans_mem r (txn [ 1; 9 ]) (txn [ 0; 5; 5 ]));
  (* Related names are never R_trans ordered. *)
  check_bool "ancestor unordered" false
    (Sibling_order.trans_mem r (txn [ 0 ]) (txn [ 0; 0 ]));
  check_bool "self unordered" false
    (Sibling_order.trans_mem r (txn [ 0 ]) (txn [ 0 ]));
  (* Nested chain decides cousins below [0]. *)
  check_bool "nested cousins" true
    (Sibling_order.trans_mem r (txn [ 0; 1; 3 ]) (txn [ 0; 0; 8 ]));
  check_bool "compare -1" true
    (Sibling_order.compare_trans r (txn [ 0 ]) (txn [ 1 ]) = Some (-1));
  check_bool "compare +1" true
    (Sibling_order.compare_trans r (txn [ 1 ]) (txn [ 0 ]) = Some 1);
  check_bool "compare unordered" true
    (Sibling_order.compare_trans r (txn [ 0 ]) (txn [ 7 ]) = None)

let t_event_mem () =
  let r = order () in
  let phi = Action.Commit (txn [ 0; 3 ]) in
  (* lowtransaction of COMMIT is the transaction itself: [0;3] vs [1]. *)
  let pi = Action.Create (txn [ 1 ]) in
  check_bool "event ordered" true (Sibling_order.event_mem r phi pi);
  check_bool "event reversed" false (Sibling_order.event_mem r pi phi);
  check_bool "inform never ordered" false
    (Sibling_order.event_mem r (Action.Inform_commit (x0, txn [ 0 ])) pi)

let t_children_parents () =
  let r = order () in
  Alcotest.(check (list txn_testable)) "ordered children of root"
    [ txn [ 0 ]; txn [ 1 ]; txn [ 2 ] ]
    (Sibling_order.ordered_children r Txn_id.root);
  Alcotest.(check (list txn_testable)) "ordered children of [0]"
    [ txn [ 0; 1 ]; txn [ 0; 0 ] ]
    (Sibling_order.ordered_children r (txn [ 0 ]));
  check_int "two parents" 2 (List.length (Sibling_order.parents r));
  Alcotest.(check (list txn_testable)) "no children elsewhere" []
    (Sibling_order.ordered_children r (txn [ 5 ]))

let t_add_chain () =
  let r = Sibling_order.add_chain (order ()) [ txn [ 7 ]; txn [ 8 ] ] in
  check_bool "extended" true (Sibling_order.mem r (txn [ 7 ]) (txn [ 8 ]));
  (* Ranks continue after existing children: 2 < 7 holds because 7 was
     appended after the first chain. *)
  check_bool "appended after" true (Sibling_order.mem r (txn [ 2 ]) (txn [ 7 ]))

let t_invalid_chains () =
  Alcotest.check_raises "mixed parents"
    (Invalid_argument "Sibling_order: chain mixes parents")
    (fun () ->
      ignore (Sibling_order.of_chains [ [ txn [ 0 ]; txn [ 1; 1 ] ] ]));
  Alcotest.check_raises "root in chain"
    (Invalid_argument "Sibling_order: root cannot be ranked")
    (fun () -> ignore (Sibling_order.of_chains [ [ Txn_id.root ] ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Sibling_order: duplicate child in chain")
    (fun () ->
      ignore (Sibling_order.of_chains [ [ txn [ 0 ]; txn [ 0 ] ] ]))

let suite =
  ( "sibling_order",
    [
      Alcotest.test_case "mem" `Quick t_mem;
      Alcotest.test_case "trans" `Quick t_trans;
      Alcotest.test_case "event_mem" `Quick t_event_mem;
      Alcotest.test_case "children/parents" `Quick t_children_parents;
      Alcotest.test_case "add_chain" `Quick t_add_chain;
      Alcotest.test_case "invalid chains" `Quick t_invalid_chains;
    ] )
