open Core
open Util

let n i = txn [ i ]

let t_empty () =
  let g = Graph.create () in
  check_bool "empty acyclic" true (Graph.is_acyclic g);
  check_int "no nodes" 0 (Graph.n_nodes g);
  check_bool "topo of empty" true (Graph.topological_sort g = Some [])

let t_basic () =
  let g = Graph.create () in
  Graph.add_edge g (n 0) (n 1);
  Graph.add_edge g (n 1) (n 2);
  Graph.add_node g (n 3);
  check_int "nodes" 4 (Graph.n_nodes g);
  check_int "edges" 2 (Graph.n_edges g);
  check_bool "mem" true (Graph.mem_edge g (n 0) (n 1));
  check_bool "not mem" false (Graph.mem_edge g (n 1) (n 0));
  check_bool "acyclic" true (Graph.is_acyclic g);
  Graph.add_edge g (n 0) (n 1);
  check_int "duplicate edge ignored" 2 (Graph.n_edges g)

let t_cycle () =
  let g = Graph.create () in
  Graph.add_edge g (n 0) (n 1);
  Graph.add_edge g (n 1) (n 2);
  Graph.add_edge g (n 2) (n 0);
  check_bool "cyclic" false (Graph.is_acyclic g);
  (match Graph.find_cycle g with
  | Some cyc ->
      check_int "cycle length" 3 (List.length cyc);
      (* Each consecutive pair (and the wrap-around) is an edge. *)
      let arr = Array.of_list cyc in
      Array.iteri
        (fun i u ->
          let v = arr.((i + 1) mod Array.length arr) in
          check_bool "cycle edge" true (Graph.mem_edge g u v))
        arr
  | None -> Alcotest.fail "no cycle found");
  check_bool "no topo" true (Graph.topological_sort g = None)

let t_self_loop () =
  let g = Graph.create () in
  Graph.add_edge g (n 5) (n 5);
  check_bool "self loop is a cycle" false (Graph.is_acyclic g)

let t_topo_respects_edges () =
  let g = Graph.create () in
  Graph.add_edge g (n 3) (n 1);
  Graph.add_edge g (n 1) (n 0);
  Graph.add_edge g (n 3) (n 0);
  Graph.add_edge g (n 2) (n 0);
  match Graph.topological_sort g with
  | None -> Alcotest.fail "should be acyclic"
  | Some order ->
      let pos t =
        let rec go i = function
          | [] -> Alcotest.fail "missing node"
          | u :: rest -> if Txn_id.equal u t then i else go (i + 1) rest
        in
        go 0 order
      in
      List.iter
        (fun (a, b) ->
          check_bool "edge respected" true (pos a < pos b))
        (Graph.edges g)

(* Random DAG: edges only from lower to higher index => acyclic, and
   the topological sort respects all edges.  Random digraph with a
   known back edge => cyclic. *)
let prop_random_dag =
  QCheck.Test.make ~name:"random DAGs are acyclic with valid topo sort"
    ~count:200
    QCheck.(pair (int_bound 1000) (int_range 2 12))
    (fun (seed, size) ->
      let rng = Rng.create seed in
      let g = Graph.create () in
      for _ = 0 to 2 * size do
        let i = Rng.int rng (size - 1) in
        let j = i + 1 + Rng.int rng (size - i - 1) in
        Graph.add_edge g (n i) (n j)
      done;
      Graph.is_acyclic g
      &&
      match Graph.topological_sort g with
      | None -> false
      | Some order ->
          let pos = Hashtbl.create 16 in
          List.iteri (fun i t -> Hashtbl.replace pos t i) order;
          List.for_all
            (fun (a, b) -> Hashtbl.find pos a < Hashtbl.find pos b)
            (Graph.edges g))

let prop_cycle_detected =
  QCheck.Test.make ~name:"planted cycles are found" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 3 10))
    (fun (seed, size) ->
      let rng = Rng.create seed in
      let g = Graph.create () in
      (* Random forward edges plus a planted directed cycle. *)
      for _ = 0 to size do
        let i = Rng.int rng (size - 1) in
        let j = i + 1 + Rng.int rng (size - i - 1) in
        Graph.add_edge g (n i) (n j)
      done;
      let k = 2 + Rng.int rng (size - 2) in
      for i = 0 to k - 1 do
        Graph.add_edge g (n i) (n ((i + 1) mod k))
      done;
      (not (Graph.is_acyclic g)) && Graph.find_cycle g <> None)

let suite =
  ( "graph",
    [
      Alcotest.test_case "empty" `Quick t_empty;
      Alcotest.test_case "basic" `Quick t_basic;
      Alcotest.test_case "cycle" `Quick t_cycle;
      Alcotest.test_case "self loop" `Quick t_self_loop;
      Alcotest.test_case "topo respects edges" `Quick t_topo_respects_edges;
      QCheck_alcotest.to_alcotest prop_random_dag;
      QCheck_alcotest.to_alcotest prop_cycle_detected;
    ] )
