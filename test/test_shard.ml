(* The multicore sharding subsystem: partitioning, static footprints,
   program splitting, the cross-shard spine gate, the deterministic
   cluster harness, the live domain service, and the sharded
   differential sweep against the single-shard gate. *)

open Core
open Util

let obj = Obj_id.make
let registers names = List.map (fun n -> (obj n, Register.make ())) names
let numbered prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

(* ----- partitioning ----- *)

let t_partition_total_and_stable () =
  let objects = registers (numbered "o" 16) in
  let part = Partition.create ~shards:4 objects in
  List.iter
    (fun (x, _) ->
      let s = Partition.shard_of part x in
      check_bool "in range" true (s >= 0 && s < 4);
      check_int "stable" s (Partition.shard_of part x);
      check_bool "declared on its shard" true
        (List.exists
           (fun (y, _) -> Obj_id.equal x y)
           (Partition.objects_of part s)))
    objects;
  let total = List.concat (List.init 4 (Partition.objects_of part)) in
  check_int "partition covers the table" (List.length objects)
    (List.length total);
  check_int "shards accessor" 4 (Partition.shards part)

let t_partition_cosharding () =
  (* Replica names group by their logical object: every quorum subtree
     lands on one shard, whatever the shard count. *)
  let objects = registers [ "x#0"; "x#1"; "x#2"; "a#b#0"; "a#b#1"; "y#0" ] in
  List.iter
    (fun shards ->
      let part = Partition.create ~shards objects in
      let s = Partition.shard_of part (obj "x#0") in
      check_int "x replicas co-shard" s (Partition.shard_of part (obj "x#1"));
      check_int "x replicas co-shard" s (Partition.shard_of part (obj "x#2"));
      check_int "key strips only the last #"
        (Partition.shard_of part (obj "a#b#0"))
        (Partition.shard_of part (obj "a#b#1")))
    [ 2; 3; 5 ];
  check_bool "default key strips the suffix" true
    (Partition.default_key (obj "x#12") = "x"
    && Partition.default_key (obj "a#b#0") = "a#b"
    && Partition.default_key (obj "plain") = "plain")

(* ----- static footprints ----- *)

let t_footprint_extraction () =
  let p =
    Program.seq
      [
        Program.access x0 Datatype.Read;
        Program.par
          [
            Program.access y0 (Datatype.Write (Value.Int 1));
            Program.access x0 (Datatype.Write (Value.Int 2));
          ];
        Program.access y0 Datatype.Read;
      ]
  in
  let names = List.map Obj_id.name (Footprint.objects p) in
  Alcotest.(check (list string))
    "distinct, first-access order" [ "x"; "y" ] names;
  let part1 = Partition.create ~shards:1 [ (x0, Register.make ()); (y0, Register.make ()) ] in
  check_bool "one shard always local" true
    (Footprint.classify part1 p = Footprint.Local 0)

(* The satellite property: every object a program touches at runtime
   resolves to a leaf recorded in its static footprint — across every
   grammar (smallbank included) and the adversarial nested-abort
   shapes, whose mid-flight aborts exercise partially-executed
   subtrees. *)
let t_footprint_covers_runtime () =
  let grammars =
    [ Check.Rw; Check.Counters; Check.Mixed; Check.Weighted; Check.Smallbank ]
  in
  let shapes =
    [ Check.Default; Check.Lock_heavy; Check.Deep_nesting; Check.Abort_storm ]
  in
  List.iter
    (fun grammar ->
      List.iter
        (fun shape ->
          let rng =
            Rng.create
              (0xF007 + Hashtbl.hash (Check.grammar_name grammar) + Hashtbl.hash shape)
          in
          for _ = 1 to 5 do
            let sc = Check.gen_scenario ~grammar ~shape Check.Undo rng in
            let schema = Check.schema_of_scenario sc in
            let r =
              Runtime.run ~policy:sc.Check.policy
                ~inform_policy:sc.Check.inform_policy
                ~abort_prob:sc.Check.abort_prob ~seed:sc.Check.sched_seed
                schema
                (Check.factory_of Check.Undo)
                sc.Check.forest
            in
            let feet = List.map Footprint.objects sc.Check.forest in
            List.iter
              (fun a ->
                let t = Action.subject a in
                match Txn_id.path t with
                | [] -> ()
                | j :: _ -> (
                    match Program.subprogram sc.Check.forest t with
                    | Some (Program.Access (x, _)) ->
                        check_bool
                          (Printf.sprintf "%s/%s: %s in footprint"
                             (Check.grammar_name grammar)
                             (Obj_id.name x) (Action.to_string a))
                          true
                          (List.exists (Obj_id.equal x) (List.nth feet j))
                    | _ -> ()))
              (Trace.to_list r.Runtime.trace)
          done)
        shapes)
    grammars

(* ----- splitting ----- *)

let t_split_pieces () =
  let objects = registers (numbered "s" 12) in
  let part = Partition.create ~shards:3 objects in
  let prog =
    Program.seq
      (List.mapi
         (fun i (x, _) ->
           if i mod 2 = 0 then Program.access x Datatype.Read
           else
             Program.par
               [
                 Program.access x (Datatype.Write (Value.Int i));
                 Program.access x Datatype.Read;
               ])
         objects)
  in
  let pieces = Split.pieces part prog in
  let shards_of = List.map fst pieces in
  check_bool "ascending distinct shards" true
    (List.sort_uniq compare shards_of = shards_of);
  List.iter
    (fun (s, p) ->
      List.iter
        (fun x -> check_int "piece is shard-pure" s (Partition.shard_of part x))
        (Footprint.objects p))
    pieces;
  let multiset p =
    List.map (fun (x, op) -> (Obj_id.name x, op)) (Program.accesses p)
    |> List.sort compare
  in
  check_bool "accesses preserved by split + merge" true
    (multiset prog = multiset (Split.merged (List.map snd pieces)));
  check_bool "shard-pure program projects whole" true
    (match Footprint.classify part prog with
    | Footprint.Local _ -> false
    | Footprint.Cross ss -> List.length ss = List.length pieces)

(* ----- the spine gate ----- *)

let t_spine_rail_veto () =
  let sp = Spine.create () in
  let g0 = Spine.register sp in
  let g1 = Spine.register sp in
  Spine.note_submit sp g0 ~seq:(Spine.stamp sp);
  Spine.note_complete sp g0 ~seq:(Spine.stamp sp);
  Spine.note_submit sp g1 ~seq:(Spine.stamp sp);
  (* g0 reported before g1 was requested: the time rail runs g0 -> g1,
     so an explicit g1 -> g0 conflict edge closes a cycle. *)
  (match Spine.gate sp ~top:g1 ~edges:[ (g1, g0, "w(x) conflict") ] with
  | Spine.Vetoed { cycle; witness } ->
      check_bool "cycle names both tops" true
        (List.exists (Txn_id.equal (Txn_id.of_path [ g0 ])) cycle
        && List.exists (Txn_id.equal (Txn_id.of_path [ g1 ])) cycle);
      check_bool "witness explains the rail edge" true
        (Astring_like.contains witness "rail");
      check_bool "witness carries the conflict" true
        (Astring_like.contains witness "w(x) conflict")
  | Spine.Admitted -> Alcotest.fail "rail cycle admitted");
  check_int "veto installs nothing" 0 (Spine.edge_count sp);
  (* The agreeing direction is fine. *)
  (match Spine.gate sp ~top:g1 ~edges:[ (g0, g1, "w(x) conflict") ] with
  | Spine.Admitted -> ()
  | Spine.Vetoed _ -> Alcotest.fail "rail-consistent edge vetoed");
  check_int "edge installed" 1 (Spine.edge_count sp);
  check_int "two decisions" 2 (Spine.checks sp);
  check_int "one veto" 1 (Spine.vetoes sp)

let t_spine_explicit_cycle () =
  let sp = Spine.create () in
  let a = Spine.register sp in
  let b = Spine.register sp in
  let c = Spine.register sp in
  Spine.note_submit sp a ~seq:(Spine.stamp sp);
  Spine.note_submit sp b ~seq:(Spine.stamp sp);
  Spine.note_submit sp c ~seq:(Spine.stamp sp);
  (* All three overlap in time: no rail edges, only explicit ones. *)
  (match Spine.gate sp ~top:a ~edges:[ (a, b, "e1") ] with
  | Spine.Admitted -> ()
  | Spine.Vetoed _ -> Alcotest.fail "a->b vetoed");
  (match Spine.gate sp ~top:b ~edges:[ (b, c, "e2") ] with
  | Spine.Admitted -> ()
  | Spine.Vetoed _ -> Alcotest.fail "b->c vetoed");
  match Spine.gate sp ~top:c ~edges:[ (c, a, "e3") ] with
  | Spine.Vetoed { cycle; witness } ->
      check_int "three-top cycle" 3 (List.length cycle);
      check_bool "witness chains the edges" true
        (Astring_like.contains witness "e1"
        && Astring_like.contains witness "e2"
        && Astring_like.contains witness "e3")
  | Spine.Admitted -> Alcotest.fail "explicit 3-cycle admitted"

(* ----- the deterministic sharded harness ----- *)

let t_sharded_deterministic () =
  let sc = Check.gen_scenario ~grammar:Check.Mixed Check.Undo (Rng.create 7) in
  let run () = Check.serve_sharded ~shards:3 ~seed:99 Check.Undo sc in
  let r1 = run () in
  let r2 = run () in
  check_bool "same merged trace" true
    (List.equal Action.equal
       (Trace.to_list r1.Check.sh_report.Check.s_trace)
       (Trace.to_list r2.Check.sh_report.Check.s_trace));
  check_int "same commits" r1.Check.sh_report.Check.s_committed
    r2.Check.sh_report.Check.s_committed;
  check_int "same spine decisions" r1.Check.sh_spine_checks
    r2.Check.sh_spine_checks;
  check_int "routing accounted" r1.Check.sh_report.Check.s_submitted
    (r1.Check.sh_local + r1.Check.sh_cross)

(* The acceptance sweep: 200 generated scenarios across the verified
   backends, each served through the single-shard gate and the 4-shard
   ensemble, compared at failure-tag granularity.  Vetoes may differ
   (the sharded local gates are conservative about piece-adjacent
   ordering), but a verified backend must never fail an oracle either
   way. *)
let t_sharded_differential_sweep () =
  let tag = function None -> "pass" | Some f -> Check.failure_tag f in
  List.iter
    (fun backend ->
      let rng = Rng.create (0xD1FF + Hashtbl.hash (Check.backend_name backend)) in
      for i = 1 to 40 do
        let sc = Check.gen_scenario backend (Rng.split rng) in
        let seed = 1000 + i in
        let single = Check.serve ~seed backend sc in
        let sharded = Check.serve_sharded ~shards:4 ~seed backend sc in
        Alcotest.(check string)
          (Printf.sprintf "%s run %d" (Check.backend_name backend) i)
          (tag single.Check.s_failure)
          (tag sharded.Check.sh_report.Check.s_failure)
      done)
    Check.correct_backends

(* Soundness of the gates: even under the negative-control object (no
   concurrency control at all), the local gates plus the spine never
   admit a serialization cycle into the merged history, and the
   monitors raise no cycle alarm. *)
let t_sharded_gating_sound () =
  for seed = 1 to 30 do
    let sc =
      Check.gen_scenario ~grammar:Check.Rw Check.No_control (Rng.create seed)
    in
    let r = Check.serve_sharded ~shards:2 ~seed Check.No_control sc in
    (match r.Check.sh_report.Check.s_failure with
    | Some (Check.Sg_cycle _) ->
        Alcotest.fail (Printf.sprintf "cycle admitted at seed %d" seed)
    | _ -> ());
    check_int
      (Printf.sprintf "no cycle alarms at seed %d" seed)
      0 r.Check.sh_report.Check.s_cycle_alarms
  done

(* Completeness of the offline judge: with the gates off, the ungated
   ensemble admits cycles, and within a bounded seed search one of them
   spans shards — caught by the SG oracle on the merged history with a
   cycle whose transactions touched at least two shards. *)
let t_sharded_ungated_cross_cycle () =
  let shard_sets sc (r : Check.sharded_report) cycle =
    let part = Partition.create ~shards:2 sc.Check.objects in
    let touched top =
      List.filter_map
        (fun a ->
          match a with
          | Action.Inform_commit (x, u) | Action.Inform_abort (x, u) -> (
              match (Txn_id.path u, Txn_id.path top) with
              | ju :: _, jt :: _ when ju = jt ->
                  Some (Partition.shard_of part x)
              | _ -> None)
          | _ -> None)
        (Trace.to_list r.Check.sh_report.Check.s_trace)
      |> List.sort_uniq compare
    in
    List.concat_map touched cycle |> List.sort_uniq compare
  in
  let cycle, spanned =
    find_seed ~max_seed:200 "no admitted cross-shard cycle found" (fun seed ->
        let sc =
          Check.gen_scenario ~grammar:Check.Rw Check.No_control
            (Rng.create (7000 + seed))
        in
        let r =
          Check.serve_sharded ~gating:false ~shards:2 ~seed Check.No_control sc
        in
        match r.Check.sh_report.Check.s_failure with
        | Some (Check.Sg_cycle cycle) ->
            let spanned = shard_sets sc r cycle in
            if List.length spanned >= 2 then Some (cycle, spanned) else None
        | _ -> None)
  in
  check_bool "cycle witness non-trivial" true (List.length cycle >= 2);
  check_int "cycle spans both shards" 2 (List.length spanned)

(* ----- the live service ----- *)

let t_service_live () =
  let objects = registers (numbered "k" 8) in
  let srv =
    Shard_service.start ~shards:2 ~seed:42 objects
      (Check.factory_of Check.Undo)
  in
  let gs =
    List.init 20 (fun i ->
        let x = fst (List.nth objects (i mod 8)) in
        let y = fst (List.nth objects ((i + 3) mod 8)) in
        let prog =
          Program.seq
            [
              Program.access x Datatype.Read;
              Program.access y (Datatype.Write (Value.Int i));
            ]
        in
        match Shard_service.submit srv prog with
        | Ok g -> g
        | Error e -> Alcotest.fail e)
  in
  let rec wait n =
    if Shard_service.pending srv = 0 then ()
    else if n = 0 then Alcotest.fail "service did not quiesce"
    else begin
      Thread.yield ();
      wait (n - 1)
    end
  in
  wait 2_000_000;
  List.iter
    (fun g ->
      match Shard_service.result srv g with
      | Shard_router.Pending -> Alcotest.fail "pending result after quiesce"
      | Shard_router.Committed _ | Shard_router.Aborted _ -> ())
    gs;
  Shard_service.stop srv;
  Shard_service.stop srv;
  (* idempotent *)
  let r, _forest, schema = Shard_service.finish srv in
  check_int "all submissions completed" 20
    (r.Runtime.committed_top + r.Runtime.aborted_top);
  let ag = Check.sg_agreement schema r.Runtime.trace in
  check_bool "merged history passes the SG oracle" true
    (Check.sg_agrees ag && ag.Check.checker_acyclic)

let suite =
  ( "shard",
    [
      Alcotest.test_case "partition total and stable" `Quick
        t_partition_total_and_stable;
      Alcotest.test_case "replica co-sharding" `Quick t_partition_cosharding;
      Alcotest.test_case "footprint extraction" `Quick t_footprint_extraction;
      Alcotest.test_case "footprint covers runtime (all grammars)" `Slow
        t_footprint_covers_runtime;
      Alcotest.test_case "split into shard-pure pieces" `Quick t_split_pieces;
      Alcotest.test_case "spine rail veto" `Quick t_spine_rail_veto;
      Alcotest.test_case "spine explicit cycle" `Quick t_spine_explicit_cycle;
      Alcotest.test_case "sharded serving deterministic" `Quick
        t_sharded_deterministic;
      Alcotest.test_case "sharded differential sweep (200 runs)" `Slow
        t_sharded_differential_sweep;
      Alcotest.test_case "gated ensemble admits no cycle" `Slow
        t_sharded_gating_sound;
      Alcotest.test_case "ungated cross-shard cycle caught" `Slow
        t_sharded_ungated_cross_cycle;
      Alcotest.test_case "live service: submit, quiesce, judge" `Quick
        t_service_live;
    ] )
