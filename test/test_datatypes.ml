open Core
open Util

let apply dt s op = (dt : Datatype.t).apply s op

let t_register_semantics () =
  let dt = Register.make ~init:(Value.Int 0) () in
  let s, v = apply dt dt.init Datatype.Read in
  Alcotest.check value_testable "read initial" (Value.Int 0) v;
  Alcotest.check value_testable "read keeps state" dt.init s;
  let s, v = apply dt dt.init (Datatype.Write (Value.Int 9)) in
  Alcotest.check value_testable "write returns OK" Value.Ok v;
  Alcotest.check value_testable "write stores" (Value.Int 9) s;
  Alcotest.check_raises "foreign op" (Datatype.Unsupported Datatype.Get)
    (fun () -> ignore (apply dt dt.init Datatype.Get))

let t_counter_semantics () =
  let dt = Counter.make ~init:3 () in
  let s, _ = apply dt dt.init (Datatype.Incr 4) in
  let s, _ = apply dt s (Datatype.Decr 2) in
  let _, v = apply dt s Datatype.Get in
  Alcotest.check value_testable "3+4-2" (Value.Int 5) v

let t_account_semantics () =
  let dt = Bank_account.make ~init:10 () in
  let s, v = apply dt dt.init (Datatype.Withdraw 4) in
  Alcotest.check value_testable "withdraw ok" (Value.Bool true) v;
  let s, v = apply dt s (Datatype.Withdraw 7) in
  Alcotest.check value_testable "withdraw insufficient" (Value.Bool false) v;
  let _, v = apply dt s Datatype.Balance in
  Alcotest.check value_testable "balance" (Value.Int 6) v;
  let s, _ = apply dt s (Datatype.Deposit 1) in
  let _, v = apply dt s (Datatype.Withdraw 7) in
  Alcotest.check value_testable "now sufficient" (Value.Bool true) v

let t_set_semantics () =
  let dt = Rset.make () in
  let s, _ = apply dt dt.init (Datatype.Insert (Value.Int 1)) in
  let s, _ = apply dt s (Datatype.Insert (Value.Int 1)) in
  let _, v = apply dt s Datatype.Size in
  Alcotest.check value_testable "idempotent insert" (Value.Int 1) v;
  let _, v = apply dt s (Datatype.Member (Value.Int 1)) in
  Alcotest.check value_testable "member" (Value.Bool true) v;
  let s, _ = apply dt s (Datatype.Remove (Value.Int 1)) in
  let _, v = apply dt s (Datatype.Member (Value.Int 1)) in
  Alcotest.check value_testable "removed" (Value.Bool false) v

let t_queue_semantics () =
  let dt = Fifo_queue.make () in
  let _, v = apply dt dt.init Datatype.Dequeue in
  Alcotest.check value_testable "empty dequeue"
    (Value.Pair (Value.Bool false, Value.Unit))
    v;
  let s, _ = apply dt dt.init (Datatype.Enqueue (Value.Int 1)) in
  let s, _ = apply dt s (Datatype.Enqueue (Value.Int 2)) in
  let s, v = apply dt s Datatype.Dequeue in
  Alcotest.check value_testable "fifo order"
    (Value.Pair (Value.Bool true, Value.Int 1))
    v;
  let _, v = apply dt s Datatype.Dequeue in
  Alcotest.check value_testable "fifo order 2"
    (Value.Pair (Value.Bool true, Value.Int 2))
    v

(* Oracle soundness: whenever the algebraic oracle claims a pair of
   operations commutes backward, the semantic (definitional) check must
   agree on every probe state.  This is checked exhaustively over the
   realizable operation universe of each type. *)
let t_oracle_sound () =
  List.iter
    (fun (dt : Datatype.t) ->
      let ops = realizable_operations dt in
      List.iter
        (fun o1 ->
          List.iter
            (fun o2 ->
              if dt.commutes o1 o2 then
                if not (Serial_spec.commutes_backward_semantic dt o1 o2) then
                  Alcotest.failf "%s: oracle claims %s/%s commute, semantics disagrees"
                    dt.dt_name
                    (Datatype.op_to_string (fst o1))
                    (Datatype.op_to_string (fst o2)))
            ops)
        ops)
    (datatypes ())

(* Oracle symmetry, as asserted by the paper. *)
let t_oracle_symmetric () =
  List.iter
    (fun (dt : Datatype.t) ->
      let ops = realizable_operations dt in
      List.iter
        (fun o1 ->
          List.iter
            (fun o2 ->
              check_bool "symmetric" (dt.commutes o1 o2) (dt.commutes o2 o1))
            ops)
        ops)
    (datatypes ())

(* Key precision cases the experiments rely on. *)
let t_oracle_precision () =
  let c = Counter.make () in
  check_bool "incr/incr commute" true
    (c.commutes (Datatype.Incr 1, Value.Ok) (Datatype.Incr 2, Value.Ok));
  check_bool "incr/decr commute" true
    (c.commutes (Datatype.Incr 1, Value.Ok) (Datatype.Decr 2, Value.Ok));
  check_bool "get/incr conflict" false
    (c.commutes (Datatype.Get, Value.Int 0) (Datatype.Incr 1, Value.Ok));
  let b = Bank_account.make () in
  check_bool "two successful withdrawals commute" true
    (b.commutes
       (Datatype.Withdraw 1, Value.Bool true)
       (Datatype.Withdraw 2, Value.Bool true));
  check_bool "mixed withdrawals conflict" false
    (b.commutes
       (Datatype.Withdraw 1, Value.Bool true)
       (Datatype.Withdraw 2, Value.Bool false));
  check_bool "deposit/withdraw conflict" false
    (b.commutes (Datatype.Deposit 1, Value.Ok) (Datatype.Withdraw 1, Value.Bool true));
  let r = Register.make () in
  check_bool "same-value writes commute" true
    (r.commutes
       (Datatype.Write (Value.Int 3), Value.Ok)
       (Datatype.Write (Value.Int 3), Value.Ok));
  check_bool "different writes conflict" false
    (r.commutes
       (Datatype.Write (Value.Int 3), Value.Ok)
       (Datatype.Write (Value.Int 4), Value.Ok));
  let q = Fifo_queue.make () in
  check_bool "enqueues of distinct values conflict" false
    (q.commutes
       (Datatype.Enqueue (Value.Int 1), Value.Ok)
       (Datatype.Enqueue (Value.Int 2), Value.Ok));
  let s = Rset.make () in
  check_bool "blind inserts commute" true
    (s.commutes
       (Datatype.Insert (Value.Int 1), Value.Ok)
       (Datatype.Insert (Value.Int 1), Value.Ok));
  check_bool "insert/remove same elem conflict" false
    (s.commutes
       (Datatype.Insert (Value.Int 1), Value.Ok)
       (Datatype.Remove (Value.Int 1), Value.Ok))

(* The access-level conflict relation of a register must reproduce the
   Section 4 table: conflict unless both are reads. *)
let t_register_access_conflicts () =
  let dt = Register.make () in
  let r = Datatype.Read in
  let w1 = Datatype.Write (Value.Int 1) and w2 = Datatype.Write (Value.Int 2) in
  check_bool "read/read" false (Datatype.accesses_conflict dt r r);
  check_bool "read/write" true (Datatype.accesses_conflict dt r w1);
  check_bool "write/read" true (Datatype.accesses_conflict dt w1 r);
  check_bool "write/write distinct" true (Datatype.accesses_conflict dt w1 w2);
  (* Same-value writes commute at every value, so at the access level
     two identical write accesses do not conflict under the
     operation-derived relation; the Section 4 construction is run in
     Access_level mode only for the conservative edge set. *)
  ignore (Datatype.accesses_conflict dt w1 w1)

let t_sample_ops_in_signature () =
  let rng = Rng.create 99 in
  List.iter
    (fun (dt : Datatype.t) ->
      for _ = 1 to 200 do
        let op = dt.sample_ops rng in
        (* Applying a sampled op must never raise Unsupported. *)
        List.iter (fun s -> ignore (dt.apply s op)) dt.probe_states
      done)
    (datatypes ())

let t_keyed_store_semantics () =
  let dt = Keyed_store.make () in
  let k0 = Value.Int 0 and k1 = Value.Int 1 in
  let _, v = apply dt dt.init (Datatype.Kread k0) in
  Alcotest.check value_testable "absent key" Value.Unit v;
  let s, _ = apply dt dt.init (Datatype.Kwrite (k0, Value.Int 5)) in
  let s, _ = apply dt s (Datatype.Kwrite (k1, Value.Int 7)) in
  let _, v = apply dt s (Datatype.Kread k0) in
  Alcotest.check value_testable "read back" (Value.Int 5) v;
  let s, _ = apply dt s (Datatype.Kwrite (k0, Value.Int 9)) in
  let _, v = apply dt s (Datatype.Kread k0) in
  Alcotest.check value_testable "overwrite" (Value.Int 9) v;
  let _, v = apply dt s (Datatype.Kread k1) in
  Alcotest.check value_testable "other key untouched" (Value.Int 7) v

let t_keyed_store_commutes () =
  let dt = Keyed_store.make () in
  let k0 = Value.Int 0 and k1 = Value.Int 1 in
  check_bool "distinct keys commute" true
    (dt.commutes
       (Datatype.Kwrite (k0, Value.Int 1), Value.Ok)
       (Datatype.Kread k1, Value.Unit));
  check_bool "same key read/write conflict" false
    (dt.commutes
       (Datatype.Kwrite (k0, Value.Int 1), Value.Ok)
       (Datatype.Kread k0, Value.Int 1));
  check_bool "same key same value writes commute" true
    (dt.commutes
       (Datatype.Kwrite (k0, Value.Int 1), Value.Ok)
       (Datatype.Kwrite (k0, Value.Int 1), Value.Ok))


let suite =
  ( "datatypes",
    [
      Alcotest.test_case "register semantics" `Quick t_register_semantics;
      Alcotest.test_case "counter semantics" `Quick t_counter_semantics;
      Alcotest.test_case "account semantics" `Quick t_account_semantics;
      Alcotest.test_case "set semantics" `Quick t_set_semantics;
      Alcotest.test_case "queue semantics" `Quick t_queue_semantics;
      Alcotest.test_case "oracle soundness (exhaustive)" `Quick t_oracle_sound;
      Alcotest.test_case "oracle symmetry" `Quick t_oracle_symmetric;
      Alcotest.test_case "oracle precision" `Quick t_oracle_precision;
      Alcotest.test_case "register access conflicts" `Quick
        t_register_access_conflicts;
      Alcotest.test_case "sampled ops stay in signature" `Quick
        t_sample_ops_in_signature;
      Alcotest.test_case "keyed store semantics" `Quick t_keyed_store_semantics;
      Alcotest.test_case "keyed store commutativity" `Quick
        t_keyed_store_commutes;
    ] )
