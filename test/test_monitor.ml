open Core
open Util

(* The monitor must stay silent on every correct protocol's behavior. *)
let t_silent_on_correct () =
  List.iter
    (fun (factory, name, gen) ->
      List.iter
        (fun seed ->
          let forest, schema =
            Gen.forest_and_schema gen ~seed
              { Gen.default with n_top = 6; depth = 2; n_objects = 3 }
          in
          let r = run_protocol ~abort_prob:0.05 ~seed schema factory forest in
          let m = Monitor.create schema in
          let alarms = Monitor.feed_trace m r.Runtime.trace in
          if alarms <> [] then
            Alcotest.failf "%s seed %d: unexpected alarms (%d)" name seed
              (List.length alarms);
          check_bool "not alarmed" false (Monitor.alarmed m))
        (List.init 6 (fun i -> i + 1)))
    [
      (Moss_object.factory, "moss", Gen.registers);
      (Undo_object.factory, "undo", Gen.mixed);
      (Commlock_object.factory, "commlock", Gen.counters);
    ]

(* Agreement with the offline construction: same edges at end of
   trace, and an alarm iff the offline graph is cyclic or returns are
   inappropriate. *)
let t_agrees_with_offline () =
  List.iter
    (fun (factory, abort_prob) ->
      List.iter
        (fun seed ->
          let forest, schema =
            Gen.forest_and_schema Gen.registers ~seed
              { Gen.default with n_top = 7; depth = 1; n_objects = 2;
                read_ratio = 0.4 }
          in
          let r = run_protocol ~abort_prob ~seed schema factory forest in
          let beta = Trace.serial r.Runtime.trace in
          let offline = Sg.build Sg.Access_level schema beta in
          let m = Monitor.create ~mode:Sg.Access_level schema in
          let alarms = Monitor.feed_trace m r.Runtime.trace in
          let sorted_edges g =
            List.sort compare
              (List.map
                 (fun (a, b) -> (Txn_id.to_string a, Txn_id.to_string b))
                 (Graph.edges g))
          in
          check_bool "same edges" true
            (sorted_edges offline = sorted_edges (Monitor.graph m));
          (* The incremental visible-operation sequences agree with the
             offline definition at end of trace. *)
          let vis = Trace.visible beta ~to_:Txn_id.root in
          List.iter
            (fun x ->
              check_bool "visible ops agree" true
                (Trace.operations schema.Schema.sys vis x
                = Monitor.visible_operations m x))
            schema.Schema.objects;
          let offline_cyclic = not (Graph.is_acyclic offline) in
          let online_cycle =
            List.exists (fun (_, a) -> match a with Monitor.Cycle _ -> true | _ -> false) alarms
          in
          check_bool "cycle agreement" offline_cyclic online_cycle;
          (* Return-value monitoring is per-prefix, hence stricter than
             the end-of-trace check on broken protocols (a dirty read
             can be "legalized" by its writer committing later): the
             end-of-trace violation must be caught online, and every
             online alarm must be justified by its own prefix. *)
          let offline_inappropriate =
            not (Return_values.appropriate_general schema beta)
          in
          let online_inappropriate =
            List.exists
              (fun (_, a) -> match a with Monitor.Inappropriate _ -> true | _ -> false)
              alarms
          in
          if offline_inappropriate then
            check_bool "offline violation caught online" true online_inappropriate;
          List.iter
            (fun (i, a) ->
              match a with
              | Monitor.Inappropriate _ ->
                  check_bool "alarm justified by its prefix" false
                    (Return_values.appropriate_general schema
                       (Trace.serial (Trace.prefix r.Runtime.trace (i + 1))))
              | Monitor.Cycle _ -> ())
            alarms)
        (List.init 10 (fun i -> i + 1)))
    [ (Moss_object.factory, 0.05); (Broken.no_control, 0.0);
      (Broken.no_control, 0.1); (Broken.unsafe_read, 0.1) ]

(* The alarm fires before the end: its index is a strict prefix
   position, and feeding only that prefix to the offline checker
   already shows the violation. *)
let t_early_detection () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:3
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.4 }
  in
  let i, trace =
    find_seed "no violating run found" (fun seed ->
        let r = run_protocol ~seed schema Broken.no_control forest in
        let m = Monitor.create schema in
        match Monitor.feed_trace m r.Runtime.trace with
        | [] -> None
        | (i, _) :: _ -> Some (i, r.Runtime.trace))
  in
  check_bool "alarm strictly inside trace" true (i < Trace.length trace);
  (* The offline verdict on the prefix ending at the alarm is already
     negative. *)
  let prefix = Trace.prefix trace (i + 1) in
  check_bool "offline agrees on prefix" false
    (Checker.serially_correct schema prefix)

let t_cycle_witness_is_a_cycle () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.3 }
  in
  let c, g =
    find_seed "no cycle found" (fun seed ->
        let r = run_protocol ~seed schema Broken.no_control forest in
        let m = Monitor.create schema in
        let cycles =
          List.filter_map
            (fun (_, a) -> match a with Monitor.Cycle c -> Some c | _ -> None)
            (Monitor.feed_trace m r.Runtime.trace)
        in
        match cycles with
        | [] -> None
        | c :: _ -> Some (c, Monitor.graph m))
  in
  let arr = Array.of_list c in
  Array.iteri
    (fun i a ->
      let b = arr.((i + 1) mod Array.length arr) in
      check_bool "cycle edge in graph" true (Graph.mem_edge g a b))
    arr

(* The cumulative counters must agree with what the monitor actually
   did: feeds = trace length, edges = the graph's edge count, and the
   alarm tallies = the alarms returned by [feed]. *)
let t_counters () =
  List.iter
    (fun (factory, name) ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed:5
          { Gen.default with n_top = 6; depth = 1; n_objects = 2;
            read_ratio = 0.4 }
      in
      let r = run_protocol ~seed:5 schema factory forest in
      let m = Monitor.create schema in
      let cycles = ref 0 and inapps = ref 0 in
      Array.iter
        (fun a ->
          List.iter
            (function
              | Monitor.Cycle _ -> incr cycles
              | Monitor.Inappropriate _ -> incr inapps)
            (Monitor.feed m a))
        r.Runtime.trace;
      let c = Monitor.counters m in
      check_int (name ^ " feeds") (Trace.length r.Runtime.trace)
        c.Monitor.feeds;
      check_int (name ^ " edges") (Graph.n_edges (Monitor.graph m))
        c.Monitor.edges;
      check_int (name ^ " cycle alarms") !cycles c.Monitor.cycle_alarms;
      check_int (name ^ " inappropriate alarms") !inapps
        c.Monitor.inappropriate_alarms;
      check_bool (name ^ " operations seen") true (c.Monitor.operations > 0);
      check_bool (name ^ " alarmed agrees") (!cycles + !inapps > 0)
        (Monitor.alarmed m))
    [ (Moss_object.factory, "moss"); (Broken.no_control, "broken") ]

(* [feed_batch] is verdict-equivalent to feeding one action at a
   time: same final graph, same alarmed verdict, same cumulative
   counters — on correct and broken runs alike, across batch sizes
   (including a batch whose last action's edge closes the cycle). *)
let t_feed_batch_equivalent () =
  List.iter
    (fun (factory, name) ->
      List.iter
        (fun batch_size ->
          let forest, schema =
            Gen.forest_and_schema Gen.registers ~seed:7
              { Gen.default with n_top = 6; depth = 1; n_objects = 2;
                read_ratio = 0.4 }
          in
          let r = run_protocol ~seed:7 schema factory forest in
          let actions = Array.to_list r.Runtime.trace in
          let m1 = Monitor.create schema in
          let a1 = List.concat_map (Monitor.feed m1) actions in
          let m2 = Monitor.create schema in
          let rec chunks = function
            | [] -> []
            | l ->
                let rec take k = function
                  | x :: r when k > 0 ->
                      let h, t = take (k - 1) r in
                      (x :: h, t)
                  | r -> ([], r)
                in
                let h, t = take batch_size l in
                h :: chunks t
          in
          let a2 =
            List.concat_map (Monitor.feed_batch m2) (chunks actions)
          in
          let tag = Printf.sprintf "%s/batch=%d" name batch_size in
          let sorted_edges m =
            List.sort compare
              (List.map
                 (fun (a, b) -> (Txn_id.to_string a, Txn_id.to_string b))
                 (Graph.edges (Monitor.graph m)))
          in
          check_bool (tag ^ " same edges") true
            (sorted_edges m1 = sorted_edges m2);
          check_bool (tag ^ " same alarmed verdict") (Monitor.alarmed m1)
            (Monitor.alarmed m2);
          let cycle = function Monitor.Cycle _ -> true | _ -> false in
          check_bool (tag ^ " same cycle verdict")
            (List.exists cycle a1) (List.exists cycle a2);
          let c1 = Monitor.counters m1 and c2 = Monitor.counters m2 in
          check_int (tag ^ " same feeds") c1.Monitor.feeds c2.Monitor.feeds;
          check_int (tag ^ " same edges count") c1.Monitor.edges
            c2.Monitor.edges;
          check_int (tag ^ " same inappropriate alarms")
            c1.Monitor.inappropriate_alarms c2.Monitor.inappropriate_alarms)
        [ 1; 3; 16; 1000 ])
    [ (Moss_object.factory, "moss"); (Broken.no_control, "broken");
      (Broken.unsafe_read, "unsafe-read") ]

(* The witness order read off the maintained topological order is a
   real Theorem-8 witness on alarm-free runs: defined, it orders the
   endpoints of every SG edge (all edges relate siblings), and it is
   suitable for T0. *)
let t_witness_order () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:9
      { Gen.default with n_top = 6; depth = 2; n_objects = 3 }
  in
  let r = run_protocol ~abort_prob:0.05 ~seed:9 schema Moss_object.factory forest in
  let m = Monitor.create schema in
  let alarms = Monitor.feed_trace m r.Runtime.trace in
  check_bool "no alarms" true (alarms = []);
  match Monitor.witness_order m with
  | None -> Alcotest.fail "alarm-free monitor has no witness order"
  | Some order ->
      Graph.iter_edges (Monitor.graph m) (fun a b ->
          check_bool "witness order respects every SG edge" true
            (Sibling_order.mem order a b));
      check_bool "witness order is suitable for T0" true
        (Suitability.is_suitable
           (Trace.serial r.Runtime.trace)
           ~to_:Txn_id.root order)

(* Once a cycle alarm fires, there is no witness order to read. *)
let t_witness_order_gone_on_cycle () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.3 }
  in
  let m =
    find_seed "no cycle found" (fun seed ->
        let r = run_protocol ~seed schema Broken.no_control forest in
        let m = Monitor.create schema in
        let cycles =
          List.filter
            (fun (_, a) -> match a with Monitor.Cycle _ -> true | _ -> false)
            (Monitor.feed_trace m r.Runtime.trace)
        in
        if cycles = [] then None else Some m)
  in
  check_bool "no witness order after a cycle" true
    (Monitor.witness_order m = None)

let t_counters_fresh () =
  let _, schema = Gen.forest_and_schema Gen.registers ~seed:1 Gen.default in
  let c = Monitor.counters (Monitor.create schema) in
  check_int "no feeds" 0 c.Monitor.feeds;
  check_int "no operations" 0 c.Monitor.operations;
  check_int "no edges" 0 c.Monitor.edges;
  check_int "no alarms" 0 (c.Monitor.cycle_alarms + c.Monitor.inappropriate_alarms)

let suite =
  ( "monitor",
    [
      Alcotest.test_case "silent on correct protocols" `Slow t_silent_on_correct;
      Alcotest.test_case "agrees with offline construction" `Slow
        t_agrees_with_offline;
      Alcotest.test_case "early detection" `Quick t_early_detection;
      Alcotest.test_case "cycle witness is a cycle" `Quick
        t_cycle_witness_is_a_cycle;
      Alcotest.test_case "counters agree with activity" `Quick t_counters;
      Alcotest.test_case "feed_batch is verdict-equivalent" `Quick
        t_feed_batch_equivalent;
      Alcotest.test_case "witness order from the maintained order" `Quick
        t_witness_order;
      Alcotest.test_case "witness order gone on cycle" `Quick
        t_witness_order_gone_on_cycle;
      Alcotest.test_case "counters start at zero" `Quick t_counters_fresh;
    ] )
