(* The serial system as a composition of I/O automata: its random
   executions are the specification family of serial behaviors. *)
open Core
open Util

let t_quiescent_run () =
  let forest, schema = rw_pair () in
  let tr = Nt_serial.Serial_system.run ~seed:1 schema forest in
  check_bool "nonempty" true (Trace.length tr > 0);
  check_bool "well-formed" true (Simple_db.is_well_formed schema.Schema.sys tr);
  check_bool "serially correct" true (Checker.serially_correct schema tr);
  (* Both top-level transactions committed. *)
  check_bool "t0.0 committed" true
    (Txn_id.Set.mem (txn [ 0 ]) (Trace.committed tr));
  check_bool "t0.1 committed" true
    (Txn_id.Set.mem (txn [ 1 ]) (Trace.committed tr))

(* Siblings never overlap: between CREATE(T) and the completion of T,
   no sibling of T is created. *)
let siblings_serial tr =
  let open_set = ref Txn_id.Set.empty in
  Array.for_all
    (fun a ->
      match a with
      | Action.Create t ->
          let ok =
            not (Txn_id.Set.exists (fun u -> Txn_id.siblings t u) !open_set)
          in
          open_set := Txn_id.Set.add t !open_set;
          ok
      | Action.Commit t | Action.Abort t ->
          open_set := Txn_id.Set.remove t !open_set;
          true
      | _ -> true)
    tr

let t_siblings_never_overlap () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2 }
      in
      let tr = Nt_serial.Serial_system.run ~seed schema forest in
      check_bool "siblings serial" true (siblings_serial tr);
      check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
      check_bool "correct" true (Checker.serially_correct schema tr))
    (List.init 10 (fun i -> i + 1))

let t_nondeterministic_aborts () =
  let forest, schema = rw_pair () in
  (* Allow aborting the second top-level transaction; over seeds, both
     outcomes (created vs aborted) must occur, and all runs stay
     correct. *)
  let abortable t = Txn_id.equal t (txn [ 1 ]) in
  let aborted_runs = ref 0 and created_runs = ref 0 in
  for seed = 1 to 20 do
    let tr =
      Nt_serial.Serial_system.run ~allow_abort:abortable ~seed schema forest
    in
    check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
    check_bool "correct" true (Checker.serially_correct schema tr);
    if Txn_id.Set.mem (txn [ 1 ]) (Trace.aborted tr) then begin
      incr aborted_runs;
      check_bool "aborted txn never created" true
        (Trace.find_first (fun a -> a = Action.Create (txn [ 1 ])) tr = None)
    end
    else incr created_runs
  done;
  check_bool "both outcomes explored" true (!aborted_runs > 0 && !created_runs > 0)

let t_matches_canonical_semantics () =
  (* Without aborts, the final object states agree with the canonical
     depth-first executor whenever the top level runs in requested
     order...  The serial scheduler may run top-level transactions in
     any *requested* order; since T0 requests sequentially (awaiting
     each report), the order is fixed and states must match. *)
  let forest, schema = rw_pair () in
  let canonical = Serial_exec.run schema forest in
  let auto =
    Nt_serial.Serial_system.run ~top_comb:Program.Seq ~seed:5 schema forest
  in
  let s1 = Serial_exec.final_states schema canonical in
  let s2 = Serial_exec.final_states schema auto in
  List.iter2
    (fun (x1, v1) (x2, v2) ->
      check_bool "same object" true (Obj_id.equal x1 x2);
      Alcotest.check value_testable "same final state" v1 v2)
    s1 s2

let t_mixed_types () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 4; depth = 2; n_objects = 5 }
      in
      let tr = Nt_serial.Serial_system.run ~seed schema forest in
      check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
      check_bool "correct" true (Checker.serially_correct schema tr))
    [ 2; 4; 6 ]

let t_fire_unknown_action () =
  let forest, schema = rw_pair () in
  let auto = Nt_serial.Serial_system.make schema forest in
  Alcotest.check_raises "foreign output rejected"
    (Invalid_argument
       "Automaton.fire: no component outputs INFORM_COMMIT_AT(x)OF(T0.0)")
    (fun () ->
      ignore
        (Nt_iosim.Automaton.fire auto (Action.Inform_commit (x0, txn [ 0 ]))))


(* Random serial-system executions with nondeterministic aborts across
   many seeds form a broad specification family; each is certified by
   the checker and by Theorem 2 with the index order. *)
let t_broad_serial_family () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 4; depth = 2; n_objects = 4 }
      in
      let tr =
        Nt_serial.Serial_system.run ~allow_abort:(fun _ -> true) ~seed schema
          forest
      in
      check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
      check_bool "checker certifies" true (Checker.serially_correct schema tr);
      check_bool "theorem 2 certifies" true
        (Theorem2.holds schema (Sibling_order.index_order tr) tr))
    (List.init 10 (fun i -> i + 21))


let suite =
  ( "serial_system",
    [
      Alcotest.test_case "quiescent run" `Quick t_quiescent_run;
      Alcotest.test_case "siblings never overlap" `Quick
        t_siblings_never_overlap;
      Alcotest.test_case "nondeterministic aborts" `Quick
        t_nondeterministic_aborts;
      Alcotest.test_case "matches canonical executor" `Quick
        t_matches_canonical_semantics;
      Alcotest.test_case "mixed data types" `Quick t_mixed_types;
      Alcotest.test_case "foreign action rejected" `Quick t_fire_unknown_action;
      Alcotest.test_case "broad serial family certified" `Slow
        t_broad_serial_family;
    ] )
