open Core
open Util

let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]
let a2 = txn [ 1; 0 ]
let reg = Register.make ()
let ctr = Counter.make ()
let acct = Bank_account.make ~init:10 ()

let t_register_reduces_to_moss () =
  (* Read/read shared, read/write conflicting. *)
  let s = Commlock_object.initial in
  let s = Commlock_object.create s a1 in
  let s = Commlock_object.create s a2 in
  let s, v = Option.get (Commlock_object.request_commit reg s a1 Datatype.Read) in
  Alcotest.check value_testable "read init" (Value.Int 0) v;
  (match Commlock_object.request_commit reg s a2 Datatype.Read with
  | Some (s', _) -> (
      (* Now a write by a third party is blocked by both read locks. *)
      let a3 = txn [ 2; 0 ] in
      let s' = Commlock_object.create s' a3 in
      match
        Commlock_object.request_commit reg s' a3 (Datatype.Write (Value.Int 1))
      with
      | Some _ -> Alcotest.fail "write through read locks"
      | None ->
          check_int "two blockers" 2
            (List.length
               (Commlock_object.blockers reg s' a3 (Datatype.Write (Value.Int 1)))))
  | None -> Alcotest.fail "shared reads should both fire")

let t_refines_moss_on_same_value_writes () =
  (* M_X admits concurrent writes of the same datum; M1_X would not. *)
  let s = Commlock_object.initial in
  let s = Commlock_object.create s a1 in
  let s = Commlock_object.create s a2 in
  let w = Datatype.Write (Value.Int 5) in
  let s, _ = Option.get (Commlock_object.request_commit reg s a1 w) in
  match Commlock_object.request_commit reg s a2 w with
  | Some _ -> ()
  | None -> Alcotest.fail "same-value writes commute and should interleave"

let t_counter_increments_interleave () =
  let s = Commlock_object.initial in
  let s = Commlock_object.create s a1 in
  let s = Commlock_object.create s a2 in
  let s, _ = Option.get (Commlock_object.request_commit ctr s a1 (Datatype.Incr 2)) in
  (match Commlock_object.request_commit ctr s a2 (Datatype.Incr 3) with
  | Some (s', _) -> (
      (* A Get from a third party is blocked by both updates... *)
      let a3 = txn [ 2; 0 ] in
      let s' = Commlock_object.create s' a3 in
      match Commlock_object.request_commit ctr s' a3 Datatype.Get with
      | Some _ -> Alcotest.fail "get through update locks"
      | None -> ())
  | None -> Alcotest.fail "increments should interleave")

let t_ancestor_entries_visible () =
  (* A sibling can read after the first sibling's entry is promoted to
     the common parent. *)
  let w = txn [ 0; 0 ] and r = txn [ 0; 1 ] in
  let s = Commlock_object.initial in
  let s = Commlock_object.create s w in
  let s, _ =
    Option.get (Commlock_object.request_commit ctr s w (Datatype.Incr 4))
  in
  let s = Commlock_object.create s r in
  check_bool "blocked before promote" true
    (Commlock_object.request_commit ctr s r Datatype.Get = None);
  let s = Commlock_object.inform_commit s w in
  match Commlock_object.request_commit ctr s r Datatype.Get with
  | Some (_, v) -> Alcotest.check value_testable "sees promoted" (Value.Int 4) v
  | None -> Alcotest.fail "should fire after promote"

let t_abort_discards () =
  let s = Commlock_object.initial in
  let s = Commlock_object.create s a1 in
  let s, _ = Option.get (Commlock_object.request_commit acct s a1 (Datatype.Deposit 5)) in
  let s = Commlock_object.inform_abort s t1 in
  check_int "purged" 0 (List.length s.Commlock_object.log);
  let s = Commlock_object.create s a2 in
  match Commlock_object.request_commit acct s a2 Datatype.Balance with
  | Some (_, v) -> Alcotest.check value_testable "back to init" (Value.Int 10) v
  | None -> Alcotest.fail "balance should fire on empty log"

(* Model checking: Theorem 19 on generated executions over every data
   type, with aborts. *)
let t_serially_correct () =
  List.iter
    (fun (gen, name) ->
      List.iter
        (fun seed ->
          let forest, schema =
            Gen.forest_and_schema gen ~seed
              { Gen.default with n_top = 5; depth = 2; n_objects = 4 }
          in
          let r =
            run_protocol ~abort_prob:0.05 ~seed schema Commlock_object.factory
              forest
          in
          check_bool (name ^ " wf") true
            (Simple_db.is_well_formed schema.Schema.sys r.Runtime.trace);
          if not (Checker.serially_correct schema r.Runtime.trace) then
            Alcotest.failf "%s seed %d: commlock verdict failed" name seed)
        (List.init 8 (fun i -> i + 1)))
    [ (Gen.registers, "registers"); (Gen.counters, "counters"); (Gen.mixed, "mixed") ]

(* Refinement: every response M1_X admits, M_X admits too (with the
   same value), on register schemas — replay Moss-produced projected
   traces through M_X. *)
let t_refinement_of_m1x () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 2 }
      in
      let r = run_protocol ~seed schema Moss_object.factory forest in
      List.iter
        (fun x ->
          let proj = Moss_invariants.project schema x r.Runtime.trace in
          let dt = schema.Schema.dtype_of x in
          let n = Trace.length proj in
          let rec go s i =
            if i >= n then ()
            else
              match Trace.get proj i with
              | Action.Create t -> go (Commlock_object.create s t) (i + 1)
              | Action.Inform_commit (_, t) ->
                  go (Commlock_object.inform_commit s t) (i + 1)
              | Action.Inform_abort (_, t) ->
                  go (Commlock_object.inform_abort s t) (i + 1)
              | Action.Request_commit (t, v) -> (
                  match
                    Commlock_object.request_commit dt s t (schema.Schema.op_of t)
                  with
                  | Some (s', v') ->
                      if not (Value.equal v v') then
                        Alcotest.failf "value mismatch at %d" i;
                      go s' (i + 1)
                  | None -> Alcotest.failf "M_X refused a Moss-legal response at %d" i)
              | _ -> go s (i + 1)
          in
          go Commlock_object.initial 0)
        schema.Schema.objects)
    (List.init 6 (fun i -> i + 11))


(* The paper's lock-visible vs locally-visible distinction (Section
   6.3): lock promotion is a *stepwise* walk up the tree, so informs
   that arrive out of leaf-to-root order strand the lock below the
   committed frontier; undo logging's visibility is a *set* condition
   and does not care about order.  Both remain correct — the locking
   object just loses permissiveness. *)
let t_inform_order_sensitivity () =
  let w = txn [ 0; 0 ] and outsider = txn [ 1; 0 ] in
  (* Commlock: inform parent BEFORE child; the entry stays held at the
     access and never reaches an ancestor of the outsider. *)
  let s = Commlock_object.initial in
  let s = Commlock_object.create s w in
  let s, _ = Option.get (Commlock_object.request_commit ctr s w (Datatype.Incr 1)) in
  let s = Commlock_object.inform_commit s t1 (* parent first *) in
  let s = Commlock_object.inform_commit s w (* child second *) in
  let s = Commlock_object.create s outsider in
  check_bool "commlock stranded below the frontier" true
    (Commlock_object.request_commit ctr s outsider Datatype.Get = None);
  (* Undo logging under the same inform order proceeds. *)
  let u = Undo_object.initial in
  let u = Undo_object.create u w in
  let u, _ = Option.get (Undo_object.request_commit ctr u w (Datatype.Incr 1)) in
  let u = Undo_object.inform_commit u t1 in
  let u = Undo_object.inform_commit u w in
  let u = Undo_object.create u outsider in
  match Undo_object.request_commit ctr u outsider Datatype.Get with
  | Some (_, v) ->
      Alcotest.check value_testable "undo unaffected by order" (Value.Int 1) v
  | None -> Alcotest.fail "undo should not be order-sensitive"

let suite =
  ( "commlock",
    [
      Alcotest.test_case "register locking" `Quick t_register_reduces_to_moss;
      Alcotest.test_case "same-value writes refine Moss" `Quick
        t_refines_moss_on_same_value_writes;
      Alcotest.test_case "counter increments interleave" `Quick
        t_counter_increments_interleave;
      Alcotest.test_case "promotion makes entries visible" `Quick
        t_ancestor_entries_visible;
      Alcotest.test_case "abort discards" `Quick t_abort_discards;
      Alcotest.test_case "serially correct (Thm 19)" `Slow t_serially_correct;
      Alcotest.test_case "refines M1_X on registers" `Slow t_refinement_of_m1x;
      Alcotest.test_case "inform-order sensitivity (lock- vs locally-visible)"
        `Quick t_inform_order_sensitivity;
    ] )
