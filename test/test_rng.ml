open Core
open Util

let t_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let t_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let da = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let db = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check_bool "different seeds differ" true (da <> db)

let t_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let t_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let t_copy_split () =
  let a = Rng.create 5 in
  let b = Rng.copy a in
  check_int "copy same next" (Rng.int a 1000) (Rng.int b 1000);
  let c = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int c 1000) in
  check_bool "split independent" true (xs <> ys)

let t_pick_shuffle () =
  let rng = Rng.create 11 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    check_bool "pick member" true (Array.mem (Rng.pick rng arr) arr)
  done;
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  Array.sort compare a;
  check_bool "shuffle is a permutation" true (a = Array.init 50 Fun.id);
  check_bool "pick_list member" true (List.mem (Rng.pick_list rng [ 9; 8 ]) [ 9; 8 ])

let t_zipf () =
  let rng = Rng.create 3 in
  let n = 10 in
  let counts = Array.make n 0 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let i = Rng.zipf rng ~n ~theta:1.0 in
    if i < 0 || i >= n then Alcotest.failf "zipf out of bounds: %d" i;
    counts.(i) <- counts.(i) + 1
  done;
  (* Skewed: the hottest item should dominate the coldest clearly. *)
  check_bool "zipf skew" true (counts.(0) > 3 * counts.(n - 1));
  (* theta = 0 is uniform-ish. *)
  let u = Array.make n 0 in
  for _ = 1 to samples do
    let i = Rng.zipf rng ~n ~theta:0.0 in
    u.(i) <- u.(i) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "uniform within 30%" true
        (abs (c - (samples / n)) < samples * 3 / 10))
    u

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick t_determinism;
      Alcotest.test_case "seed sensitivity" `Quick t_seed_sensitivity;
      Alcotest.test_case "bounds" `Quick t_bounds;
      Alcotest.test_case "bad bound" `Quick t_bad_bound;
      Alcotest.test_case "copy/split" `Quick t_copy_split;
      Alcotest.test_case "pick/shuffle" `Quick t_pick_shuffle;
      Alcotest.test_case "zipf" `Quick t_zipf;
    ] )
