open Core
open Util

let t_index_order () =
  let tr =
    Trace.of_list
      Action.
        [
          Request_create (txn [ 2 ]); Create (txn [ 2 ]);
          Request_create (txn [ 0 ]);
          Request_create (txn [ 2; 1 ]); Request_create (txn [ 2; 0 ]);
        ]
  in
  let r = Sibling_order.index_order tr in
  check_bool "top level by index" true (Sibling_order.mem r (txn [ 0 ]) (txn [ 2 ]));
  check_bool "nested by index" true
    (Sibling_order.mem r (txn [ 2; 0 ]) (txn [ 2; 1 ]));
  check_bool "not by appearance" false
    (Sibling_order.mem r (txn [ 2 ]) (txn [ 0 ]))

let t_certifies_serial () =
  let forest, schema = rw_pair () in
  let tr = Serial_exec.run schema forest in
  let order = Sibling_order.index_order tr in
  check_bool "holds" true (Theorem2.holds schema order tr)

let t_rejects_wrong_order () =
  (* Reverse top-level order on a sequentially dependent execution:
     either suitability (affects vs R_event) or view replay fails. *)
  let forest, schema = rw_pair () in
  let tr = Serial_exec.run schema forest in
  let reversed = Sibling_order.of_chains [ [ txn [ 1 ]; txn [ 0 ] ] ] in
  (* Extend with index order below each top-level transaction so the
     views are totally ordered and the failure is meaningful. *)
  let reversed =
    List.fold_left
      (fun acc parent ->
        if Txn_id.is_root parent then acc
        else
          Sibling_order.add_chain acc
            (Sibling_order.ordered_children
               (Sibling_order.index_order tr) parent))
      reversed
      (Sibling_order.parents (Sibling_order.index_order tr))
  in
  match Theorem2.check schema reversed tr with
  | Ok () -> Alcotest.fail "reversed order should not certify"
  | Error f ->
      (* Any failure kind is acceptable; exercise the printer. *)
      check_bool "printable" true
        (String.length (Format.asprintf "%a" Theorem2.pp_failure f) > 0)

let t_rejects_bad_returns () =
  (* A trace with an impossible read value fails view replay for every
     order. *)
  let t1 = txn [ 0 ] and r1 = txn [ 0; 0 ] in
  let schema =
    Program.schema_of
      ~objects:[ (x0, Register.make ()) ]
      [ Program.seq [ Program.access x0 Datatype.Read ] ]
  in
  let tr =
    Trace.of_list
      Action.
        [
          Request_create t1; Create t1; Request_create r1; Create r1;
          Request_commit (r1, Value.Int 42); Commit r1;
          Report_commit (r1, Value.Int 42);
          Request_commit (t1, Value.Unit); Commit t1;
          Report_commit (t1, Value.Unit);
        ]
  in
  let order = Sibling_order.index_order tr in
  match Theorem2.check schema order tr with
  | Error (Theorem2.View_illegal x) ->
      check_bool "names the object" true (Obj_id.equal x x0)
  | Error f ->
      Alcotest.failf "wrong failure: %a" Theorem2.pp_failure f
  | Ok () -> Alcotest.fail "should fail"

(* Agreement: whenever the SG checker certifies, Theorem 2 with the
   extracted witness order certifies too (the checker already
   re-verifies this internally; here we drive the public API). *)
let t_agrees_with_checker () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2 }
      in
      let r = run_protocol ~seed schema Moss_object.factory forest in
      let v = Checker.check schema r.Runtime.trace in
      match v.Checker.order with
      | Some order ->
          check_bool "theorem 2 with the SG witness" true
            (Theorem2.holds schema order r.Runtime.trace)
      | None -> Alcotest.fail "moss run should be acyclic")
    [ 3; 5; 7 ]

let suite =
  ( "theorem2",
    [
      Alcotest.test_case "index order" `Quick t_index_order;
      Alcotest.test_case "certifies serial executions" `Quick t_certifies_serial;
      Alcotest.test_case "rejects wrong order" `Quick t_rejects_wrong_order;
      Alcotest.test_case "rejects bad returns" `Quick t_rejects_bad_returns;
      Alcotest.test_case "agrees with the SG checker" `Quick
        t_agrees_with_checker;
    ] )
