(* Robustness: the analysis functions are total on arbitrary action
   sequences — even ill-formed ones — because the paper defines its
   sequence machinery "for arbitrary sequences of actions" (footnote
   5).  Random, unconstrained traces must never crash the checker, the
   monitor, the relations, or the serializers. *)
open Core
open Util

let schema () =
  Program.schema_of
    ~objects:[ (x0, Register.make ()); (y0, Register.make ()) ]
    [
      Program.seq
        [ Program.access x0 Datatype.Read; Program.access y0 (Datatype.Write (Value.Int 1)) ];
      Program.par
        [ Program.access x0 (Datatype.Write (Value.Int 2)); Program.access y0 Datatype.Read ];
      Program.access x0 Datatype.Read;
    ]

let gen_txn =
  QCheck.Gen.(
    oneof
      [
        return (txn [ 0 ]); return (txn [ 1 ]); return (txn [ 2 ]);
        return (txn [ 0; 0 ]); return (txn [ 0; 1 ]); return (txn [ 1; 0 ]);
        return (txn [ 1; 1 ]); return Txn_id.root; return (txn [ 7 ]);
      ])

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Ok; return Value.Unit;
        map (fun n -> Value.Int n) (int_bound 4);
        return (Value.Bool true);
      ])

let gen_action =
  QCheck.Gen.(
    gen_txn >>= fun t ->
    gen_value >>= fun v ->
    oneofl
      [
        Action.Request_create t; Action.Create t;
        Action.Request_commit (t, v); Action.Commit t; Action.Abort t;
        Action.Report_commit (t, v); Action.Report_abort t;
        Action.Inform_commit (x0, t); Action.Inform_abort (y0, t);
      ])

let gen_trace = QCheck.Gen.(list_size (int_bound 40) gen_action >|= Trace.of_list)

let arb_trace =
  QCheck.make
    ~print:(fun tr -> Format.asprintf "%a" Trace.pp tr)
    gen_trace

let prop_checker_total =
  QCheck.Test.make ~name:"checker total on arbitrary traces" ~count:300
    arb_trace
    (fun tr ->
      let s = schema () in
      let v = Checker.check s tr in
      (* The verdict is internally consistent. *)
      (v.Checker.acyclic = (v.Checker.cycle = None))
      && (v.Checker.serially_correct
          = (v.Checker.appropriate && v.Checker.acyclic
            && v.Checker.suitable = Some true
            && v.Checker.views_legal = Some true)))

let prop_monitor_total =
  QCheck.Test.make ~name:"monitor total on arbitrary traces" ~count:300
    arb_trace
    (fun tr ->
      let s = schema () in
      let m = Monitor.create s in
      ignore (Monitor.feed_trace m tr);
      true)

let prop_relations_total =
  QCheck.Test.make ~name:"relations total and within visibility" ~count:300
    arb_trace
    (fun tr ->
      let s = schema () in
      let conf = Conflict.relation Conflict.Access_level s tr in
      let prec = Precedes.relation tr in
      List.for_all (fun (a, b) -> Txn_id.siblings a b) (conf @ prec))

let prop_trace_io_total =
  QCheck.Test.make ~name:"trace io round trips arbitrary traces" ~count:300
    arb_trace
    (fun tr ->
      match Trace_io.of_string (Trace_io.to_string tr) with
      | Ok tr' -> Trace.to_list tr = Trace.to_list tr'
      | Error _ -> false)

let prop_visible_subset =
  QCheck.Test.make ~name:"visible and clean are subsequences of serial"
    ~count:300 arb_trace
    (fun tr ->
      let serial_len = Trace.length (Trace.serial tr) in
      Trace.length (Trace.visible tr ~to_:Txn_id.root) <= serial_len
      && Trace.length (Trace.clean tr) <= serial_len)

let prop_wf_decision_total =
  QCheck.Test.make ~name:"well-formedness decision total" ~count:300 arb_trace
    (fun tr ->
      let s = schema () in
      match Simple_db.well_formed s.Schema.sys tr with
      | Ok () | Error _ -> true)

(* Prefix monotonicity of the graph: edges only ever accumulate. *)
let prop_graph_monotone =
  QCheck.Test.make ~name:"SG edges accumulate along prefixes" ~count:100
    arb_trace
    (fun tr ->
      let s = schema () in
      let n = Trace.length tr in
      let edge_count k =
        Graph.n_edges (Sg.build Sg.Access_level s (Trace.prefix tr k))
      in
      let rec go k prev =
        if k > n then true
        else
          let e = edge_count k in
          e >= prev && go (k + 1) e
      in
      go 0 0)


(* Inform actions never influence the verdict: they are invisible to
   serial(beta). *)
let prop_informs_inert =
  QCheck.Test.make ~name:"verdict invariant under appended informs" ~count:150
    arb_trace
    (fun tr ->
      let s = schema () in
      let with_informs =
        Trace.concat tr
          (Trace.of_list
             [ Action.Inform_commit (x0, txn [ 0 ]);
               Action.Inform_abort (y0, txn [ 1 ]) ])
      in
      Checker.serially_correct s tr
      = Checker.serially_correct s with_informs)


let suite =
  ( "robustness",
    [
      QCheck_alcotest.to_alcotest prop_checker_total;
      QCheck_alcotest.to_alcotest prop_monitor_total;
      QCheck_alcotest.to_alcotest prop_relations_total;
      QCheck_alcotest.to_alcotest prop_trace_io_total;
      QCheck_alcotest.to_alcotest prop_visible_subset;
      QCheck_alcotest.to_alcotest prop_wf_decision_total;
      QCheck_alcotest.to_alcotest prop_graph_monotone;
      QCheck_alcotest.to_alcotest prop_informs_inert;
    ] )
