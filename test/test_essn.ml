(* The ESSN-style refined serializability criterion (lib/sg/essn.ml):
   acceptance on every verified backend, differential agreement with
   the single-order Theorem 2 check on single-version behaviors,
   soundness of the certifying order, rejection (with a classified
   multiversion anomaly) of the weak-isolation adversaries — including
   behaviors the cycle-alarm oracle alone cannot flag. *)
open Core
open Util

(* The schema a scenario's trace is over — physical for replication
   (mirrors ntcheck's trace_schema). *)
let trace_schema backend (sc : Check.scenario) =
  match backend with
  | Check.Replication ->
      let plan =
        Replication.replicate Check.replication_config
          ~objects:(List.map fst sc.Check.objects)
          sc.Check.forest
      in
      plan.Replication.physical_schema
  | _ -> Check.schema_of_scenario sc

(* Collect (schema, trace) pairs from completed runs of a backend. *)
let completed_runs ?grammar backend ~seed ~runs =
  let master = Rng.create seed in
  let out = ref [] in
  for _ = 1 to runs do
    let rng = Rng.split master in
    let sc = Check.gen_scenario ?grammar backend rng in
    let o = Check.run_scenario backend sc in
    if not o.Check.truncated then
      out := (trace_schema backend sc, o.Check.trace) :: !out
  done;
  List.rev !out

(* Curated workloads under a verified protocol certify, and by the
   pseudotime candidate (the serial replay order is the index order). *)
let t_accepts_curated () =
  List.iter
    (fun (forest, schema) ->
      let r = run_protocol ~seed:7 schema Undo_object.factory forest in
      let v = Essn.check schema r.Runtime.trace in
      check_bool "curated scenario certified" true v.Essn.essn_ok;
      check_bool "an order is returned" true (v.Essn.order <> None);
      check_bool "no anomaly on acceptance" true (v.Essn.anomaly = None))
    [
      Scenario.banking ~n_accounts:3 ~n_transfers:5 ~seed:2;
      Scenario.queue_producers_consumers ~n_producers:2 ~n_consumers:2 ~seed:2;
    ]

(* Every verified backend — the multiversion and replicated ones
   included — produces only ESSN-certified behaviors. *)
let t_accepts_verified_backends () =
  List.iter
    (fun backend ->
      let rs = completed_runs backend ~seed:21 ~runs:10 in
      check_bool
        (Check.backend_name backend ^ " produced runs")
        true (rs <> []);
      List.iter
        (fun (schema, trace) ->
          let v = Essn.check schema trace in
          if not v.Essn.essn_ok then
            Alcotest.fail
              (Check.backend_name backend
              ^ " rejected by essn: " ^ Essn.describe v))
        rs)
    Check.correct_backends

(* Differential agreement on single-version behaviors: whenever the
   single-order Theorem 2 check (under the pseudotime index order)
   accepts, ESSN must accept — it strictly extends that check. *)
let t_agrees_with_theorem2 () =
  List.iter
    (fun backend ->
      List.iter
        (fun (schema, trace) ->
          let beta = Trace.serial trace in
          let index_ok =
            Theorem2.check schema (Sibling_order.index_order beta) trace
            |> Result.is_ok
          in
          let v = Essn.check schema trace in
          if index_ok then
            check_bool
              (Check.backend_name backend ^ ": essn extends theorem 2")
              true v.Essn.essn_ok)
        (completed_runs backend ~seed:33 ~runs:8))
    [ Check.Moss; Check.Commlock; Check.Undo; Check.No_control;
      Check.Unsafe_read; Check.No_undo ]

(* Soundness of the certificate: the order an acceptance returns is a
   full Theorem 2 witness — re-checking it independently passes. *)
let t_certifying_order_is_a_witness () =
  List.iter
    (fun backend ->
      List.iter
        (fun (schema, trace) ->
          let v = Essn.check schema trace in
          match (v.Essn.essn_ok, v.Essn.order) with
          | true, Some order ->
              check_bool "returned order re-certifies" true
                (Theorem2.check schema order trace |> Result.is_ok)
          | true, None -> Alcotest.fail "acceptance without an order"
          | false, _ -> ())
        (completed_runs backend ~seed:5 ~runs:6))
    [ Check.Undo; Check.Mvts; Check.Snapshot_read ]

(* The weak-isolation adversaries are rejected at a nonzero rate, and
   every rejection explains itself: per-candidate failures plus a
   classified multiversion anomaly. *)
let t_flags_weak_isolation () =
  List.iter
    (fun backend ->
      let rejected = ref 0 in
      List.iter
        (fun (schema, trace) ->
          let v = Essn.check schema trace in
          if not v.Essn.essn_ok then begin
            incr rejected;
            check_bool "both candidates report failures" true
              (List.length v.Essn.failures = 2);
            check_bool "rejection is classified" true
              (v.Essn.anomaly <> None)
          end)
        (completed_runs ~grammar:Check.Smallbank backend ~seed:3 ~runs:40);
      check_bool
        (Check.backend_name backend ^ " rejected at a nonzero rate")
        true (!rejected > 0))
    [ Check.Causal_only; Check.Prefix_consistent; Check.Snapshot_read ]

(* The anomaly class cycle alarms alone miss: a stale read under a
   frozen snapshot keeps the completion-order SG acyclic (the three
   cycle detectors all stay quiet) yet the behavior is not serially
   correct — ESSN rejects it and names the stale read. *)
let t_catches_what_cycle_alarms_miss () =
  let found = ref 0 in
  List.iter
    (fun (schema, trace) ->
      let v = Essn.check schema trace in
      if not v.Essn.essn_ok then begin
        let a = Check.sg_agreement schema trace in
        if a.Check.checker_acyclic && a.Check.cycle_alarms = 0 then begin
          incr found;
          check_bool "silent-SG rejection is classified" true
            (v.Essn.anomaly <> None)
        end
      end)
    (completed_runs Check.Snapshot_read ~seed:3 ~runs:60);
  check_bool "found anomalies with an acyclic, alarm-free SG" true
    (!found > 0)

(* The verdict is a pure function of the behavior. *)
let t_deterministic () =
  List.iter
    (fun (schema, trace) ->
      let v1 = Essn.check schema trace in
      let v2 = Essn.check schema trace in
      check_bool "same acceptance" true (v1.Essn.essn_ok = v2.Essn.essn_ok);
      check_bool "same description" true
        (Essn.describe v1 = Essn.describe v2))
    (completed_runs Check.Snapshot_read ~seed:11 ~runs:10)

(* Stable names: bundle tags and log lines key on these strings. *)
let t_names_stable () =
  Alcotest.(check string)
    "pseudotime" "pseudotime"
    (Essn.candidate_name Essn.Pseudotime);
  Alcotest.(check string)
    "completion" "completion"
    (Essn.candidate_name Essn.Completion);
  let x = Obj_id.make "x" in
  let stale =
    Essn.Stale_read
      { obj = x; reader = txn [ 0 ]; got = Value.Int 1; expected = Value.Int 2 }
  in
  Alcotest.(check string) "stale-read" "stale-read" (Essn.anomaly_tag stale);
  Alcotest.(check string)
    "mv-cycle" "mv-cycle"
    (Essn.anomaly_tag (Essn.Mv_cycle [ txn [ 0 ]; txn [ 1 ] ]));
  Alcotest.(check string)
    "unordered" "unordered"
    (Essn.anomaly_tag (Essn.Unordered x));
  check_bool "anomalies render" true
    (String.length (Format.asprintf "%a" Essn.pp_anomaly stale) > 0)

(* [holds] is the boolean projection of [check], on acceptances and
   rejections alike, and [describe] is non-empty either way. *)
let t_holds_agrees () =
  List.iter
    (fun backend ->
      List.iter
        (fun (schema, trace) ->
          let v = Essn.check schema trace in
          check_bool "holds agrees with check" true
            (Essn.holds schema trace = v.Essn.essn_ok);
          check_bool "describe non-empty" true
            (String.length (Essn.describe v) > 0))
        (completed_runs backend ~seed:17 ~runs:6))
    [ Check.Undo; Check.Snapshot_read ]

(* End to end through the judge: mvts campaigns — now judged by ESSN
   instead of cycle alarms alone — still pass clean, under the default
   grammars and under the contended SmallBank family. *)
let t_mvts_judged_by_essn () =
  let r = Check.campaign Check.Mvts ~seed:13 ~runs:30 in
  Alcotest.(check int) "mvts failures" 0 (List.length r.Check.failures);
  let r2 =
    Check.campaign ~grammar:Check.Smallbank Check.Mvts ~seed:13 ~runs:30
  in
  Alcotest.(check int) "mvts smallbank failures" 0
    (List.length r2.Check.failures)

let suite =
  ( "essn",
    [
      Alcotest.test_case "accepts curated scenarios" `Quick t_accepts_curated;
      Alcotest.test_case "accepts verified backends" `Quick
        t_accepts_verified_backends;
      Alcotest.test_case "agrees with theorem 2 on single-version runs"
        `Quick t_agrees_with_theorem2;
      Alcotest.test_case "certifying order is a theorem-2 witness" `Quick
        t_certifying_order_is_a_witness;
      Alcotest.test_case "flags weak-isolation backends" `Quick
        t_flags_weak_isolation;
      Alcotest.test_case "catches anomalies cycle alarms miss" `Quick
        t_catches_what_cycle_alarms_miss;
      Alcotest.test_case "verdict deterministic" `Quick t_deterministic;
      Alcotest.test_case "names stable" `Quick t_names_stable;
      Alcotest.test_case "holds agrees with check" `Quick t_holds_agrees;
      Alcotest.test_case "mvts judged by essn end to end" `Quick
        t_mvts_judged_by_essn;
    ] )
