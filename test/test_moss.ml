open Core
open Util

let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]
let t2 = txn [ 1 ]
let a2 = txn [ 1; 0 ]

let init () = Moss_object.initial (Value.Int 0)

let t_initial () =
  let s = init () in
  check_bool "T0 holds write lock" true
    (Txn_id.Map.mem Txn_id.root s.Moss_object.write_lockholders);
  Alcotest.check txn_testable "least is T0" Txn_id.root
    (Moss_object.least_write_lockholder s)

let t_read_then_write_conflict () =
  let s = init () in
  let s = Moss_object.create s a1 in
  let s = Moss_object.create s a2 in
  (* a1 reads: fine, gets initial value. *)
  let s, v =
    match Moss_object.request_commit s a1 `Read with
    | Some r -> r
    | None -> Alcotest.fail "read should fire"
  in
  Alcotest.check value_testable "read initial" (Value.Int 0) v;
  (* a2 writes: blocked by a1's read lock (a1 is no ancestor of a2). *)
  check_bool "write blocked" true
    (Moss_object.request_commit s a2 (`Write (Value.Int 9)) = None);
  Alcotest.(check (list txn_testable)) "blocker is a1" [ a1 ]
    (Moss_object.blockers s a2 (`Write (Value.Int 9)));
  (* After a1 and t1 commit (informs), the lock moves to T0 and a2 can
     write. *)
  let s = Moss_object.inform_commit s a1 in
  let s = Moss_object.inform_commit s t1 in
  (match Moss_object.request_commit s a2 (`Write (Value.Int 9)) with
  | Some (s', v) ->
      Alcotest.check value_testable "write ack" Value.Ok v;
      Alcotest.check txn_testable "least holder is writer" a2
        (Moss_object.least_write_lockholder s')
  | None -> Alcotest.fail "write should fire after informs")

let t_write_read_visibility () =
  (* a1 writes 7; a2 may read only after the lock is hoisted above it,
     and then it reads 7 from the hoisted version. *)
  let s = init () in
  let s = Moss_object.create s a1 in
  let s, _ = Option.get (Moss_object.request_commit s a1 (`Write (Value.Int 7))) in
  let s = Moss_object.create s a2 in
  check_bool "read blocked by writer" true
    (Moss_object.request_commit s a2 `Read = None);
  let s = Moss_object.inform_commit s a1 in
  check_bool "still blocked (t1 live)" true
    (Moss_object.request_commit s a2 `Read = None);
  let s = Moss_object.inform_commit s t1 in
  match Moss_object.request_commit s a2 `Read with
  | Some (_, v) -> Alcotest.check value_testable "reads committed write" (Value.Int 7) v
  | None -> Alcotest.fail "read should fire"

let t_abort_discards () =
  let s = init () in
  let s = Moss_object.create s a1 in
  let s, _ = Option.get (Moss_object.request_commit s a1 (`Write (Value.Int 7))) in
  (* Abort t1: descendants' locks vanish; value is restored to T0's. *)
  let s = Moss_object.inform_abort s t1 in
  check_bool "lock gone" false (Txn_id.Map.mem a1 s.Moss_object.write_lockholders);
  let s = Moss_object.create s a2 in
  match Moss_object.request_commit s a2 `Read with
  | Some (_, v) -> Alcotest.check value_testable "reads initial" (Value.Int 0) v
  | None -> Alcotest.fail "read should fire after abort"

let t_sibling_sees_committed_sibling_write () =
  (* Two sibling accesses under t1: the second may read the first's
     write as soon as the first's lock is hoisted to their common
     parent — no top-level commit needed.  This is the intra-transaction
     visibility that makes nesting useful. *)
  let w = txn [ 0; 0 ] and r = txn [ 0; 1 ] in
  let s = init () in
  let s = Moss_object.create s w in
  let s, _ = Option.get (Moss_object.request_commit s w (`Write (Value.Int 3))) in
  let s = Moss_object.create s r in
  check_bool "sibling blocked before hoist" true
    (Moss_object.request_commit s r `Read = None);
  let s = Moss_object.inform_commit s w in
  match Moss_object.request_commit s r `Read with
  | Some (_, v) ->
      Alcotest.check value_testable "sibling sees hoisted version"
        (Value.Int 3) v
  | None -> Alcotest.fail "sibling read should fire after hoist"

let t_no_duplicate_response () =
  let s = init () in
  let s = Moss_object.create s a1 in
  let s, _ = Option.get (Moss_object.request_commit s a1 `Read) in
  check_bool "no second response" true (Moss_object.request_commit s a1 `Read = None)

let t_uncreated_never_responds () =
  check_bool "uncreated blocked" true
    (Moss_object.request_commit (init ()) a1 `Read = None)

(* Lemma invariants over generated executions (per sampled prefix). *)
let t_lemmas_on_generated () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 2 }
      in
      let r = run_protocol ~abort_prob:0.05 ~seed schema Moss_object.factory forest in
      List.iter
        (fun x ->
          let proj = Moss_invariants.project schema x r.Runtime.trace in
          (match Moss_invariants.replay schema x proj with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "replay failed: %s" e);
          List.iter
            (fun prefix ->
              check_bool "lemma 9" true (Moss_invariants.lemma9 schema x prefix);
              check_bool "lemma 10" true (Moss_invariants.lemma10 schema x prefix);
              check_bool "lemma 12/13" true
                (Moss_invariants.lemma12_13 schema x prefix))
            (sampled_prefixes ~stride:5 proj))
        schema.Schema.objects)
    (List.init 8 (fun i -> i + 1))

(* Lemma 14 consequences: every visible read in a Moss execution is
   current and safe in serial(beta). *)
let t_reads_current_safe () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 2; n_objects = 2; theta = 0.8 }
      in
      let r = run_protocol ~abort_prob:0.05 ~seed schema Moss_object.factory forest in
      check_bool "lemma 6 conditions" true
        (Return_values.lemma6_conditions schema (Trace.serial r.Runtime.trace)))
    (List.init 8 (fun i -> i + 50))

let suite =
  ( "moss",
    [
      Alcotest.test_case "initial state" `Quick t_initial;
      Alcotest.test_case "read blocks conflicting write" `Quick
        t_read_then_write_conflict;
      Alcotest.test_case "write/read visibility" `Quick t_write_read_visibility;
      Alcotest.test_case "abort discards locks" `Quick t_abort_discards;
      Alcotest.test_case "sibling sees committed sibling write" `Quick
        t_sibling_sees_committed_sibling_write;
      Alcotest.test_case "no duplicate response" `Quick t_no_duplicate_response;
      Alcotest.test_case "uncreated never responds" `Quick
        t_uncreated_never_responds;
      Alcotest.test_case "lemmas 9/10/12/13 on generated" `Slow
        t_lemmas_on_generated;
      Alcotest.test_case "reads current and safe (Lemma 14)" `Slow
        t_reads_current_safe;
    ] )
