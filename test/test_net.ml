(* The serving stack: wire codec, open-loop engine, orphan cleanup,
   online admission control, and the served-traffic oracle sweep. *)

open Core
open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- wire ----- *)

let sample_requests =
  [
    Wire.Hello { client = "c1" };
    Wire.Submit { program = "(txn (seq (access x read)))"; req = None };
    Wire.Submit { program = "(txn (seq (access x read)))"; req = Some "c1-42" };
    Wire.Status (Txn_id.of_path [ 3 ]);
    Wire.Metrics;
    Wire.Subscribe;
    Wire.Ping;
    Wire.Dump;
    Wire.Quiesce;
    Wire.Shutdown;
  ]

let sample_hist =
  {
    Wire.h_count = 7;
    h_sum = 1234;
    h_min = 3;
    h_max = 700;
    h_p50 = 127;
    h_p99 = 700;
    h_p999 = 700;
    h_buckets = [ (2, 1); (7, 4); (10, 2) ];
  }

let sample_telemetry =
  {
    Wire.seq = 3;
    t_mono = 2.125;
    interval_s = 1.0;
    w_requests = 41;
    w_submitted = 12;
    w_committed = 9;
    w_aborted = 2;
    w_vetoed = 1;
    w_orphans = 0;
    w_alarms = 0;
    w_latency = sample_hist;
    o_live = 4;
    o_doomed = 1;
    o_conns = 3;
    o_subscribers = 2;
    c_submitted = 120;
    c_committed = 100;
    c_aborted = 16;
    c_vetoed = 5;
    c_alarms = 0;
    sg_nodes = 44;
    sg_edges = 71;
    sg_reorders = 2;
    hot = [ ("r3", 17); ("r0", 4) ];
    stages =
      [
        ("decode", { sample_hist with Wire.h_count = 41 });
        ("execute", sample_hist);
      ];
    gc_pause = { sample_hist with Wire.h_count = 2; h_sum = 900 };
    gc_pct = 1.25;
    per_shard = [];
  }

let sample_responses =
  [
    Wire.Welcome
      {
        server = "ntserved";
        version = Version.string;
        backend = "undo";
        objects = [ ("x", "(register 0)"); ("c", "(counter 3)") ];
        status = Wire.Fresh;
        shards = 1;
      };
    Wire.Welcome
      {
        server = "ntserved";
        version = Version.string;
        backend = "moss";
        objects = [];
        status = Wire.Recovering { replayed = 12; total = 40 };
        shards = 4;
      };
    Wire.Accepted { txn = Txn_id.of_path [ 7 ]; req = None };
    Wire.Accepted { txn = Txn_id.of_path [ 8 ]; req = Some "c1-42" };
    Wire.Rejected { why = "line 2: unexpected )"; req = Some "c1-43" };
    Wire.State { txn = Txn_id.of_path [ 0 ]; state = Wire.Pending; req = None };
    Wire.State
      { txn = Txn_id.of_path [ 1 ]; state = Wire.Running; req = Some "c2-1" };
    Wire.State
      {
        txn = Txn_id.of_path [ 2 ];
        state = Wire.Committed "[(true, ok)]";
        req = None;
      };
    Wire.State
      { txn = Txn_id.of_path [ 3 ]; state = Wire.Aborted None; req = None };
    Wire.State
      {
        txn = Txn_id.of_path [ 4 ];
        state = Wire.Aborted (Some "T0.1 -> T0.2 ...");
        req = Some "c9-0";
      };
    Wire.Metrics_dump (Obs_json.Obj [ ("served.requests", Obs_json.Int 4) ]);
    Wire.Telemetry sample_telemetry;
    Wire.Telemetry
      { sample_telemetry with Wire.seq = 4; hot = []; stages = [] };
    Wire.Telemetry
      {
        sample_telemetry with
        Wire.seq = 5;
        per_shard =
          [
            { Wire.r_shard = 0; r_submitted = 7; r_committed = 5;
              r_aborted = 1; r_vetoed = 0; r_live = 1 };
            { Wire.r_shard = 1; r_submitted = 5; r_committed = 4;
              r_aborted = 1; r_vetoed = 1; r_live = 0 };
          ];
      };
    Wire.Pong
      {
        t_mono = 12.5;
        live = 3;
        doomed = 1;
        conns = 2;
        status = Wire.Recovered { replayed = 40; torn = true };
      };
    Wire.Dumped
      {
        spans = 41;
        dropped = 7;
        jsonl = "flight-001-request.jsonl";
        chrome = "flight-001-request.trace.json";
      };
    Wire.Quiesced
      { committed = 5; aborted = 2; vetoed = 1; alarms = 0; per_shard = [] };
    Wire.Quiesced
      {
        committed = 5;
        aborted = 2;
        vetoed = 1;
        alarms = 0;
        per_shard =
          [
            { Wire.r_shard = 0; r_submitted = 4; r_committed = 3;
              r_aborted = 1; r_vetoed = 1; r_live = 0 };
          ];
      };
    Wire.Goodbye;
    Wire.Error_msg "bad frame header";
  ]

let req_repr r = Obs_json.to_string (Wire.request_to_json r)
let resp_repr r = Obs_json.to_string (Wire.response_to_json r)

let t_wire_roundtrip () =
  List.iter
    (fun req ->
      let r = Wire.Reader.create () in
      Wire.Reader.feed r (Wire.encode_request req);
      match Wire.Reader.next r with
      | Ok (Some payload) -> (
          match Wire.decode_request payload with
          | Ok req' ->
              Alcotest.(check string) "request roundtrips" (req_repr req)
                (req_repr req');
              check_bool "drained" true (Wire.Reader.next r = Ok None)
          | Error e -> Alcotest.failf "decode_request: %s" e)
      | _ -> Alcotest.fail "expected one frame")
    sample_requests;
  List.iter
    (fun resp ->
      match Wire.decode_response (resp_repr resp) with
      | Ok resp' ->
          Alcotest.(check string) "response roundtrips" (resp_repr resp)
            (resp_repr resp')
      | Error e -> Alcotest.failf "decode_response: %s" e)
    sample_responses

let t_wire_reassembly () =
  (* all frames concatenated, fed one byte at a time *)
  let blob = String.concat "" (List.map Wire.encode_request sample_requests) in
  let r = Wire.Reader.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Wire.Reader.feed r (String.make 1 c);
      let rec drain () =
        match Wire.Reader.next r with
        | Ok (Some p) ->
            got := Result.get_ok (Wire.decode_request p) :: !got;
            drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "reader error: %s" e
      in
      drain ())
    blob;
  check_bool "all frames recovered" true
    (List.map req_repr (List.rev !got) = List.map req_repr sample_requests)

let t_wire_errors () =
  let poison s =
    let r = Wire.Reader.create () in
    Wire.Reader.feed r s;
    match Wire.Reader.next r with
    | Error e -> Some e
    | Ok _ -> None
  in
  let poisoned s = poison s <> None in
  check_bool "negative" true (poisoned "-1\nx");
  check_bool "garbage header" true (poisoned "zzz\n");
  check_bool "oversized" true (poisoned (string_of_int (Wire.max_frame + 1) ^ "\n"));
  check_bool "unterminated header" true (poisoned (String.make 64 '1'));
  check_bool "bad json" true (Result.is_error (Wire.decode_request "{"));
  check_bool "unknown type" true
    (Result.is_error (Wire.decode_request "{\"type\":\"warp\"}"));
  (* the error names what poisoned the stream: the claimed size for an
     oversized frame, the offending bytes for a garbage header *)
  (match poison (string_of_int (Wire.max_frame + 1) ^ "\n") with
  | Some e ->
      check_bool "oversized error reports the claimed size" true
        (Astring_like.contains e (string_of_int (Wire.max_frame + 1)));
      check_bool "oversized error reports the limit" true
        (Astring_like.contains e (string_of_int Wire.max_frame))
  | None -> Alcotest.fail "oversized frame accepted");
  (match poison "zzz\n" with
  | Some e ->
      check_bool "garbage error reports the prefix" true
        (Astring_like.contains e "zzz")
  | None -> Alcotest.fail "garbage header accepted");
  (match poison "-1\nx" with
  | Some e ->
      check_bool "negative error reports the size" true
        (Astring_like.contains e "-1")
  | None -> Alcotest.fail "negative size accepted")

(* The reader distinguishes a peer that closed at a frame boundary
   from one that vanished mid-frame — the signature of a crashed
   writer, which the crash-recovery tooling keys on. *)
let t_wire_eof () =
  let drain r =
    let rec go () =
      match Wire.Reader.next r with
      | Ok (Some _) -> go ()
      | Ok None -> ()
      | Error e -> Alcotest.failf "reader error: %s" e
    in
    go ()
  in
  let r = Wire.Reader.create () in
  check_bool "fresh stream ends clean" true (Wire.Reader.eof r = Clean);
  Wire.Reader.feed r (Wire.encode_request Wire.Ping);
  drain r;
  check_bool "frame-boundary close is clean" true (Wire.Reader.eof r = Clean);
  (* cut inside the payload: the declared length is already known *)
  let f = Wire.encode_request (Wire.Hello { client = "durable" }) in
  let nl = String.index f '\n' in
  let declared = int_of_string (String.sub f 0 nl) in
  let cut = nl + 1 + 3 in
  let r = Wire.Reader.create () in
  Wire.Reader.feed r (String.sub f 0 cut);
  drain r;
  (match Wire.Reader.eof r with
  | Torn { buffered; expected = Some len } ->
      check_int "torn: buffered bytes" cut buffered;
      check_int "torn: declared payload length" declared len
  | e -> Alcotest.failf "expected mid-payload Torn, got %s"
           (Wire.Reader.describe_eof e));
  (* cut inside the header itself: no declared length yet *)
  let r = Wire.Reader.create () in
  Wire.Reader.feed r (String.sub f 0 (min 2 nl));
  drain r;
  (match Wire.Reader.eof r with
  | Torn { expected = None; _ } -> ()
  | e -> Alcotest.failf "expected mid-header Torn, got %s"
           (Wire.Reader.describe_eof e));
  check_bool "describe_eof names the payload size" true
    (Astring_like.contains
       (Wire.Reader.describe_eof
          (Torn { buffered = 7; expected = Some 99 }))
       "99")

(* Responses from a pre-durability server carry no status field; the
   decoder must default to Fresh rather than reject the peer. *)
let t_wire_status_compat () =
  let welcome =
    "{\"type\":\"welcome\",\"server\":\"old\",\"version\":\"0.9\",\
     \"protocol\":3,\"backend\":\"undo\",\"objects\":[]}"
  in
  (match Wire.decode_response welcome with
  | Ok (Wire.Welcome { status; _ }) ->
      check_bool "status-less welcome defaults Fresh" true
        (status = Wire.Fresh)
  | Ok _ -> Alcotest.fail "decoded to a non-Welcome response"
  | Error e -> Alcotest.failf "welcome rejected: %s" e);
  let pong =
    "{\"type\":\"pong\",\"t\":1.5,\"live\":2,\"doomed\":0,\"conns\":1}"
  in
  (match Wire.decode_response pong with
  | Ok (Wire.Pong { status; _ }) ->
      check_bool "status-less pong defaults Fresh" true (status = Wire.Fresh)
  | Ok _ -> Alcotest.fail "decoded to a non-Pong response"
  | Error e -> Alcotest.failf "pong rejected: %s" e);
  (match
     Wire.decode_response
       "{\"type\":\"pong\",\"t\":1.5,\"live\":2,\"doomed\":0,\"conns\":1,\
        \"status\":\"warp\"}"
   with
  | Error e ->
      check_bool "unknown status is named" true
        (Astring_like.contains e "warp")
  | Ok _ -> Alcotest.fail "unknown status accepted")

(* ----- telemetry frames ----- *)

(* A full Telemetry frame survives the wire exactly, including the
   raw histogram buckets and the hot-object list. *)
let t_wire_telemetry_roundtrip () =
  let enc = Wire.encode_response (Wire.Telemetry sample_telemetry) in
  let r = Wire.Reader.create () in
  Wire.Reader.feed r enc;
  match Wire.Reader.next r with
  | Ok (Some payload) -> (
      match Wire.decode_response payload with
      | Ok (Wire.Telemetry f) ->
          check_int "seq" sample_telemetry.Wire.seq f.Wire.seq;
          check_int "w_requests" sample_telemetry.Wire.w_requests
            f.Wire.w_requests;
          check_int "latency count" sample_hist.Wire.h_count
            f.Wire.w_latency.Wire.h_count;
          check_bool "buckets survive" true
            (f.Wire.w_latency.Wire.h_buckets = sample_hist.Wire.h_buckets);
          check_bool "hot survives, ordered" true
            (f.Wire.hot = sample_telemetry.Wire.hot);
          check_bool "mono time survives" true
            (abs_float (f.Wire.t_mono -. sample_telemetry.Wire.t_mono) < 1e-9)
      | Ok _ -> Alcotest.fail "decoded to a different response"
      | Error e -> Alcotest.failf "decode: %s" e)
  | _ -> Alcotest.fail "expected one frame"

(* Telemetry frames fed byte-at-a-time through the reader — a slow or
   fragmented subscriber connection — reassemble intact and in order. *)
let t_wire_telemetry_partial_frames () =
  let frames =
    List.init 5 (fun i ->
        Wire.Telemetry { sample_telemetry with Wire.seq = i + 1 })
  in
  let blob = String.concat "" (List.map Wire.encode_response frames) in
  let r = Wire.Reader.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Wire.Reader.feed r (String.make 1 c);
      let rec drain () =
        match Wire.Reader.next r with
        | Ok (Some p) -> (
            match Wire.decode_response p with
            | Ok (Wire.Telemetry f) ->
                got := f.Wire.seq :: !got;
                drain ()
            | _ -> Alcotest.fail "expected a telemetry frame")
        | Ok None -> ()
        | Error e -> Alcotest.failf "reader error: %s" e
      in
      drain ())
    blob;
  check_bool "all frames, in order" true (List.rev !got = [ 1; 2; 3; 4; 5 ])

(* Two subscribers receiving the same frame stream in different
   fragmentations (one byte-at-a-time, one in uneven chunks) both
   recover the identical, monotonically-sequenced stream. *)
let t_wire_interleaved_subscribers () =
  let frames =
    List.init 4 (fun i ->
        Wire.encode_response
          (Wire.Telemetry { sample_telemetry with Wire.seq = i + 1 }))
  in
  let blob = String.concat "" frames in
  let drain_seqs r =
    let acc = ref [] in
    let rec go () =
      match Wire.Reader.next r with
      | Ok (Some p) -> (
          match Wire.decode_response p with
          | Ok (Wire.Telemetry f) ->
              acc := f.Wire.seq :: !acc;
              go ()
          | _ -> Alcotest.fail "expected a telemetry frame")
      | Ok None -> ()
      | Error e -> Alcotest.failf "reader error: %s" e
    in
    go ();
    List.rev !acc
  in
  let r1 = Wire.Reader.create () and r2 = Wire.Reader.create () in
  let s1 = ref [] and s2 = ref [] in
  (* interleave: r1 gets single bytes, r2 gets chunks of 7, delivery
     alternating between the two connections *)
  let n = String.length blob in
  let i1 = ref 0 and i2 = ref 0 in
  while !i1 < n || !i2 < n do
    if !i1 < n then begin
      Wire.Reader.feed r1 (String.sub blob !i1 1);
      incr i1;
      s1 := !s1 @ drain_seqs r1
    end;
    if !i2 < n then begin
      let len = min 7 (n - !i2) in
      Wire.Reader.feed r2 (String.sub blob !i2 len);
      i2 := !i2 + len;
      s2 := !s2 @ drain_seqs r2
    end
  done;
  let monotone l = List.sort compare l = l && List.length l = 4 in
  check_bool "subscriber 1 saw the full monotone stream" true (monotone !s1);
  check_bool "subscriber 2 saw the full monotone stream" true (monotone !s2);
  check_bool "identical streams" true (!s1 = !s2)

(* The hub end of the stream: frames cut from a live engine carry
   strictly increasing sequence numbers, window deltas that sum to the
   cumulative totals, and a hot-object ranking fed by the runtime's
   per-object refused-access counters. *)
let t_hub_frames () =
  let metrics = Metrics.create () in
  let hub = Telemetry.Hub.create ~interval_s:1.0 metrics in
  let obs = Obs.create ~metrics () in
  let eng =
    Engine.create ~seed:3 ~obs
      [ (Obj_id.make "x0", Register.make ()); (Obj_id.make "y0", Register.make ()) ]
      Moss_object.factory
  in
  let x = Program.access (Obj_id.make "x0") (Datatype.Write (Value.Int 1)) in
  let y = Program.access (Obj_id.make "y0") Datatype.Read in
  let frames = ref [] in
  let cut () =
    frames :=
      Telemetry.Hub.cut hub ~eng ~alarms:0 ~conns:1 ~subscribers:1 ~now:0.0
      :: !frames
  in
  for _ = 1 to 6 do
    (* contending writers of x0: Moss write locks force refusals *)
    ignore (Result.get_ok (Engine.submit eng (Program.seq [ x; x; y ])));
    ignore (Result.get_ok (Engine.submit eng (Program.seq [ x; y ])));
    ignore (Engine.step eng);
    cut ()
  done;
  (match Engine.drain eng with `Quiescent -> () | _ -> Alcotest.fail "drain");
  cut ();
  let frames = List.rev !frames in
  let seqs = List.map (fun f -> f.Wire.seq) frames in
  check_bool "seq strictly increases" true
    (List.for_all2 ( = ) seqs (List.init (List.length seqs) (fun i -> i + 1)));
  let last = List.nth frames (List.length frames - 1) in
  check_int "window submissions sum to cumulative" last.Wire.c_submitted
    (List.fold_left (fun a f -> a + f.Wire.w_submitted) 0 frames);
  check_int "window commits sum to cumulative" last.Wire.c_committed
    (List.fold_left (fun a f -> a + f.Wire.w_committed) 0 frames);
  check_bool "contended object surfaced as hot" true
    (List.exists
       (fun f -> List.mem_assoc "x0" f.Wire.hot)
       frames)

(* ----- engine ----- *)

let rw_objects () = [ (x0, Register.make ()); (y0, Register.make ()) ]

let wr x v = Program.access x (Datatype.Write (Value.Int v))
let rd x = Program.access x Datatype.Read

let quiesce eng =
  match Engine.drain eng with
  | `Quiescent -> ()
  | `Truncated -> Alcotest.fail "engine truncated"
  | `Progress -> Alcotest.fail "drain returned Progress without a burst"

let t_engine_basic () =
  let eng =
    Engine.create ~seed:3 (rw_objects ()) Undo_object.factory
  in
  check_bool "fresh engine quiescent" true (Engine.step eng = `Quiescent);
  let t1 = Result.get_ok (Engine.submit eng (Program.seq [ wr x0 1; rd y0 ])) in
  check_bool "pending before any step" true (Engine.state eng t1 = Engine.Pending);
  quiesce eng;
  (match Engine.state eng t1 with
  | Engine.Committed _ -> ()
  | _ -> Alcotest.fail "t1 should commit");
  (* arrivals while running: submit, step a little, submit again *)
  let t2 = Result.get_ok (Engine.submit eng (Program.seq [ rd x0; wr y0 2 ])) in
  ignore (Engine.step eng);
  let t3 = Result.get_ok (Engine.submit eng (Program.par [ rd x0; rd y0 ])) in
  quiesce eng;
  List.iter
    (fun t ->
      match Engine.state eng t with
      | Engine.Committed _ -> ()
      | _ -> Alcotest.failf "%s should commit" (Txn_id.to_string t))
    [ t2; t3 ];
  check_int "submitted" 3 (Engine.submitted eng);
  check_int "committed" 3 (Engine.committed_top eng);
  check_int "alarms" 0 (Engine.alarms eng);
  let r = Engine.finish eng in
  check_int "finish agrees" 3 r.Runtime.committed_top;
  check_int "forest grew" 3 (List.length (Engine.forest eng))

let t_engine_validation () =
  let eng = Engine.create ~seed:1 ~max_program:10 (rw_objects ()) Undo_object.factory in
  let bad_obj = Program.access (Obj_id.make "nope") Datatype.Read in
  check_bool "undeclared object rejected" true
    (Result.is_error (Engine.submit eng bad_obj));
  let bad_op = Program.access x0 (Datatype.Incr 1) in
  check_bool "foreign operation rejected" true
    (Result.is_error (Engine.submit eng bad_op));
  let huge = Program.par (List.init 11 (fun _ -> rd x0)) in
  check_bool "oversized program rejected" true
    (Result.is_error (Engine.submit eng huge));
  check_int "nothing was attached" 0 (Engine.submitted eng);
  check_bool "still quiescent" true (Engine.step eng = `Quiescent)

(* Orphan cleanup: a client that vanishes mid-transaction must leave no
   live locks behind — later transactions on the same objects commit,
   and the monitor stays silent. *)
let t_orphan_mid_transaction () =
  List.iter
    (fun seed ->
      let eng = Engine.create ~seed (rw_objects ()) Moss_object.factory in
      let victim =
        Result.get_ok
          (Engine.submit eng
             (Program.seq (List.init 8 (fun i -> wr x0 i) @ [ rd y0 ])))
      in
      (* run it partway: a Moss write lock on x is held mid-flight *)
      let rec until_running n =
        if n = 0 then ()
        else
          match Engine.state eng victim with
          | Engine.Running -> ignore (Engine.step eng); ignore (Engine.step eng)
          | _ ->
              ignore (Engine.step eng);
              until_running (n - 1)
      in
      until_running 50;
      (match Engine.kill eng victim with
      | `Aborted | `Doomed -> ()
      | `Already_complete -> ()
      | `Unknown -> Alcotest.fail "victim should be known");
      quiesce eng;
      (match Engine.state eng victim with
      | Engine.Aborted _ | Engine.Committed _ -> ()
      | _ -> Alcotest.fail "victim should be complete after drain");
      (* the locks are gone: a new writer of x commits *)
      let after = Result.get_ok (Engine.submit eng (Program.seq [ wr x0 99; rd x0 ])) in
      quiesce eng;
      (match Engine.state eng after with
      | Engine.Committed _ -> ()
      | _ -> Alcotest.fail "post-orphan transaction should commit");
      check_int "no alarms" 0 (Engine.alarms eng);
      check_int "nothing left doomed" 0 (Engine.doomed_count eng))
    (List.init 8 (fun i -> i + 1))

(* Death between Submit and the first op: the kill lands while the
   transaction is still Pending (REQUEST_CREATE not fired), is deferred
   as doomed, and the sweep retires it without it ever touching data. *)
let t_orphan_before_first_op () =
  List.iter
    (fun seed ->
      let eng = Engine.create ~seed (rw_objects ()) Moss_object.factory in
      let victim = Result.get_ok (Engine.submit eng (Program.seq [ wr x0 1 ])) in
      check_bool "still pending" true (Engine.state eng victim = Engine.Pending);
      (match Engine.kill eng victim with
      | `Doomed | `Aborted -> ()
      | _ -> Alcotest.fail "kill of a pending txn should doom or abort");
      quiesce eng;
      (match Engine.state eng victim with
      | Engine.Aborted _ -> ()
      | Engine.Committed _ -> Alcotest.fail "doomed txn must not commit"
      | _ -> Alcotest.fail "doomed txn should be retired at quiescence");
      check_int "doomed set drained" 0 (Engine.doomed_count eng);
      let after = Result.get_ok (Engine.submit eng (Program.seq [ rd x0 ])) in
      quiesce eng;
      (match Engine.state eng after with
      | Engine.Committed _ -> ()
      | _ -> Alcotest.fail "object should be free after orphan cleanup");
      check_int "no alarms" 0 (Engine.alarms eng))
    (List.init 8 (fun i -> i + 1))

(* ----- admission ----- *)

(* Under a broken backend the gate must veto every cycle-closing commit:
   gated runs never raise a cycle alarm (zero false negatives), and on
   workloads where the ungated engine does alarm, the gate is provably
   load-bearing. *)
let t_admission_no_false_negatives () =
  let conflict_forest () =
    [
      Program.seq [ rd x0; wr y0 1 ];
      Program.seq [ rd y0; wr x0 2 ];
      Program.seq [ wr x0 3; wr y0 3 ];
      Program.seq [ rd x0; rd y0; wr x0 4 ];
    ]
  in
  let run ~admission seed =
    let eng =
      Engine.create ~seed ~admission (rw_objects ()) Broken.no_control
    in
    List.iter
      (fun p -> ignore (Result.get_ok (Engine.submit eng p)))
      (conflict_forest ());
    (match Engine.drain eng with `Truncated -> Alcotest.fail "truncated" | _ -> ());
    let mc = Monitor.counters (Admission.monitor (Engine.admission eng)) in
    (mc.Monitor.cycle_alarms, Engine.vetoed eng)
  in
  let seeds = List.init 40 (fun i -> i + 1) in
  let gate_used = ref 0 and ungated_cycles = ref 0 in
  List.iter
    (fun seed ->
      let cycles, vetoed = run ~admission:true seed in
      check_int (Printf.sprintf "seed %d: gated cycle alarms" seed) 0 cycles;
      if vetoed > 0 then incr gate_used;
      let cycles', _ = run ~admission:false seed in
      if cycles' > 0 then incr ungated_cycles)
    seeds;
  check_bool "gate vetoed something across the sweep" true (!gate_used > 0);
  check_bool "ungated runs do alarm on this workload" true (!ungated_cycles > 0)

let t_admission_veto_witness () =
  (* find a seed where a veto fires and check its explanation names the
     vetoed transaction and parses as a chain of edges *)
  let rec hunt seed =
    if seed > 200 then Alcotest.fail "no veto found in 200 seeds"
    else begin
      let eng = Engine.create ~seed (rw_objects ()) Broken.no_control in
      let ts =
        List.map
          (fun p -> Result.get_ok (Engine.submit eng p))
          [
            Program.seq [ rd x0; wr y0 1 ];
            Program.seq [ rd y0; wr x0 2 ];
          ]
      in
      ignore (Engine.drain eng);
      match
        List.find_map
          (fun t ->
            match Engine.state eng t with
            | Engine.Aborted (Some veto) -> Some (t, veto)
            | _ -> None)
          ts
      with
      | Some (t, veto) ->
          check_bool "witness mentions an edge" true
            (String.length veto.Admission.witness > 0);
          check_bool "cycle is non-trivial" true
            (List.length veto.Admission.cycle >= 1);
          check_bool "veto is filed under the top-level ancestor" true
            (Txn_id.equal t
               (match Txn_id.path veto.Admission.node with
               | i :: _ -> Txn_id.child Txn_id.root i
               | [] -> veto.Admission.node))
      | None -> hunt (seed + 1)
    end
  in
  hunt 1

(* ----- served-traffic sweep (the acceptance criterion) ----- *)

(* 200 served runs across the five verified backends, with disconnect
   injection: every oracle passes and no alarm fires.  Determinism is
   asserted on a sample. *)
let t_serve_sweep_correct () =
  let runs_per_backend = 40 in
  List.iter
    (fun backend ->
      let master = Rng.create 20260806 in
      for i = 1 to runs_per_backend do
        let rng = Rng.split master in
        let sc = Check.gen_scenario backend rng in
        let rep =
          Check.serve ~max_steps:400_000 ~drop_prob:0.1 ~seed:(i * 31)
            backend sc
        in
        (match rep.Check.s_failure with
        | None -> ()
        | Some f ->
            Alcotest.failf "%s run %d: %a" (Check.backend_name backend) i
              Check.pp_failure f);
        if not rep.Check.s_truncated then begin
          check_int
            (Printf.sprintf "%s run %d: cycle alarms" (Check.backend_name backend) i)
            0 rep.Check.s_cycle_alarms;
          (* mvts legitimately trips the completion-order monitor's
             return-value replay (it serializes by pseudotime); every
             other backend must keep the monitor fully silent *)
          if backend <> Check.Mvts then
            check_int
              (Printf.sprintf "%s run %d: alarms" (Check.backend_name backend) i)
              0 rep.Check.s_alarms;
          check_int
            (Printf.sprintf "%s run %d: all submitted" (Check.backend_name backend) i)
            (List.length sc.Check.forest)
            rep.Check.s_submitted
        end
      done)
    Check.correct_backends

let t_serve_deterministic () =
  let sc = Check.gen_scenario Check.Undo (Rng.create 99) in
  let r1 = Check.serve ~drop_prob:0.2 ~seed:5 Check.Undo sc in
  let r2 = Check.serve ~drop_prob:0.2 ~seed:5 Check.Undo sc in
  check_int "same trace length" (Trace.length r1.Check.s_trace)
    (Trace.length r2.Check.s_trace);
  check_bool "identical traces" true
    (List.for_all2 Action.equal
       (Trace.to_list r1.Check.s_trace)
       (Trace.to_list r2.Check.s_trace));
  check_int "same commits" r1.Check.s_committed r2.Check.s_committed;
  check_int "same drops" r1.Check.s_dropped r2.Check.s_dropped;
  check_int "same orphans" r1.Check.s_orphans r2.Check.s_orphans

(* Gated serving of a broken backend: the offline checker must never
   report an SG cycle (the gate pre-empts every one), and the online
   monitor must never raise a cycle alarm. *)
let t_serve_gated_broken () =
  let master = Rng.create 7 in
  let vetoes = ref 0 in
  for i = 1 to 25 do
    let rng = Rng.split master in
    let sc = Check.gen_scenario Check.No_control rng in
    let rep =
      Check.serve ~max_steps:400_000 ~seed:(i * 17) ~admission:true
        Check.No_control sc
    in
    check_int (Printf.sprintf "run %d: cycle alarms" i) 0 rep.Check.s_cycle_alarms;
    (match rep.Check.s_failure with
    | Some (Check.Sg_cycle _) ->
        Alcotest.failf "run %d: offline cycle despite gating" i
    | _ -> ());
    vetoes := !vetoes + rep.Check.s_vetoed
  done;
  check_bool "the gate fired somewhere in the sweep" true (!vetoes > 0)

(* ----- bundle loader ----- *)

let t_load_program () =
  let good = Filename.temp_file "ntnet_good" ".nt" in
  let oc = open_out good in
  output_string oc
    "; a comment\n(objects (x (register 0)))\n(txn (seq (access x read)))\n";
  close_out oc;
  (match Bundle.load_program good with
  | Ok (forest, _) -> check_int "one txn" 1 (List.length forest)
  | Error e -> Alcotest.failf "good file rejected: %s" e);
  let bad = Filename.temp_file "ntnet_bad" ".nt" in
  let oc = open_out bad in
  output_string oc "(objects (x (register 0)))\n(txn (seq (access x read))\n";
  close_out oc;
  (match Bundle.load_program bad with
  | Ok _ -> Alcotest.fail "bad file accepted"
  | Error e ->
      check_bool "error names the path" true
        (Astring_like.contains e (Filename.basename bad));
      check_bool "error carries a line number" true
        (Astring_like.contains e "line"));
  Sys.remove good;
  Sys.remove bad

let suite =
  ( "net",
    [
      Alcotest.test_case "wire roundtrip" `Quick t_wire_roundtrip;
      Alcotest.test_case "wire reassembly" `Quick t_wire_reassembly;
      Alcotest.test_case "wire errors" `Quick t_wire_errors;
      Alcotest.test_case "wire eof diagnosis" `Quick t_wire_eof;
      Alcotest.test_case "wire status back-compat" `Quick t_wire_status_compat;
      Alcotest.test_case "telemetry roundtrip" `Quick t_wire_telemetry_roundtrip;
      Alcotest.test_case "telemetry partial frames" `Quick
        t_wire_telemetry_partial_frames;
      Alcotest.test_case "interleaved subscribers" `Quick
        t_wire_interleaved_subscribers;
      Alcotest.test_case "telemetry hub frames" `Quick t_hub_frames;
      Alcotest.test_case "engine basic" `Quick t_engine_basic;
      Alcotest.test_case "engine validation" `Quick t_engine_validation;
      Alcotest.test_case "orphan mid-transaction" `Quick t_orphan_mid_transaction;
      Alcotest.test_case "orphan before first op" `Quick t_orphan_before_first_op;
      Alcotest.test_case "admission: no false negatives" `Quick
        t_admission_no_false_negatives;
      Alcotest.test_case "admission: veto witness" `Quick t_admission_veto_witness;
      Alcotest.test_case "serve sweep (correct backends)" `Slow
        t_serve_sweep_correct;
      Alcotest.test_case "serve determinism" `Quick t_serve_deterministic;
      Alcotest.test_case "serve gated broken backend" `Slow t_serve_gated_broken;
      Alcotest.test_case "bundle load_program" `Quick t_load_program;
    ] )
