open Core
open Util

let forest () =
  [
    Program.seq
      [
        Program.access x0 Datatype.Read;
        Program.par
          [
            Program.access y0 (Datatype.Write (Value.Int 1));
            Program.access x0 (Datatype.Write (Value.Int 2));
          ];
      ];
    Program.access y0 Datatype.Read;
  ]

let schema () =
  Program.schema_of
    ~objects:[ (x0, Register.make ()); (y0, Register.make ()) ]
    (forest ())

let t_subprogram () =
  let f = forest () in
  check_bool "root has no subprogram" true (Program.subprogram f Txn_id.root = None);
  (match Program.subprogram f (txn [ 0 ]) with
  | Some (Program.Node (Program.Seq, [ _; _ ])) -> ()
  | _ -> Alcotest.fail "expected seq node");
  (match Program.subprogram f (txn [ 0; 1; 0 ]) with
  | Some (Program.Access (y, Datatype.Write (Value.Int 1))) ->
      check_bool "object" true (Obj_id.equal y y0)
  | _ -> Alcotest.fail "expected access");
  check_bool "out of range" true (Program.subprogram f (txn [ 5 ]) = None);
  check_bool "below access" true (Program.subprogram f (txn [ 1; 0 ]) = None)

let t_schema_classification () =
  let s = schema () in
  check_bool "inner" true (System_type.kind s.Schema.sys (txn [ 0 ]) = System_type.Inner);
  check_bool "access" true
    (System_type.kind s.Schema.sys (txn [ 0; 0 ]) = System_type.Access x0);
  check_bool "nested access" true
    (System_type.kind s.Schema.sys (txn [ 0; 1; 1 ]) = System_type.Access x0);
  check_bool "top access" true
    (System_type.kind s.Schema.sys (txn [ 1 ]) = System_type.Access y0);
  check_bool "unknown names are inner" true
    (System_type.kind s.Schema.sys (txn [ 9; 9 ]) = System_type.Inner);
  check_bool "root inner" true
    (System_type.kind s.Schema.sys Txn_id.root = System_type.Inner)

let t_schema_ops () =
  let s = schema () in
  check_bool "op_of read" true (s.Schema.op_of (txn [ 0; 0 ]) = Datatype.Read);
  check_bool "op_of write" true
    (s.Schema.op_of (txn [ 0; 1; 0 ]) = Datatype.Write (Value.Int 1));
  check_bool "all_read_write" true (Schema.all_read_write s)

let t_undeclared_object () =
  Alcotest.check_raises "undeclared"
    (Invalid_argument "Program.schema_of: undeclared object z")
    (fun () ->
      ignore
        (Program.schema_of ~objects:[]
           [ Program.access (Obj_id.make "z") Datatype.Read ]))

let t_size_accesses () =
  let f = forest () in
  check_int "size of first" 5 (Program.size (List.hd f));
  check_int "accesses of first" 3 (List.length (Program.accesses (List.hd f)));
  check_int "accesses of second" 1 (List.length (Program.accesses (List.nth f 1)))

let t_combinators () =
  (match Program.seq [] with
  | Program.Node (Program.Seq, []) -> ()
  | _ -> Alcotest.fail "seq");
  (match Program.par [ Program.access x0 Datatype.Read ] with
  | Program.Node (Program.Par, [ _ ]) -> ()
  | _ -> Alcotest.fail "par");
  match Program.access x0 Datatype.Read with
  | Program.Access (x, Datatype.Read) -> check_bool "access" true (Obj_id.equal x x0)
  | _ -> Alcotest.fail "access"

let suite =
  ( "program",
    [
      Alcotest.test_case "subprogram" `Quick t_subprogram;
      Alcotest.test_case "schema classification" `Quick t_schema_classification;
      Alcotest.test_case "schema ops" `Quick t_schema_ops;
      Alcotest.test_case "undeclared object" `Quick t_undeclared_object;
      Alcotest.test_case "size/accesses" `Quick t_size_accesses;
      Alcotest.test_case "combinators" `Quick t_combinators;
    ] )
