open Core
open Util

let feq name a b = Alcotest.(check (float 1e-9)) name a b

let t_mean () =
  feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  feq "empty" 0.0 (Stats.mean []);
  feq "sum" 6.0 (Stats.sum [ 1.0; 2.0; 3.0 ])

let t_stddev () =
  feq "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  feq "singleton" 0.0 (Stats.stddev [ 5.0 ]);
  feq "spread" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let t_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  feq "p50" 50.0 (Stats.percentile 50.0 xs);
  feq "p99" 99.0 (Stats.percentile 99.0 xs);
  feq "p100" 100.0 (Stats.percentile 100.0 xs);
  feq "median alias" (Stats.median xs) (Stats.percentile 50.0 xs);
  feq "unsorted input" 3.0 (Stats.median [ 5.0; 1.0; 3.0; 2.0; 4.0 ]);
  feq "empty" 0.0 (Stats.percentile 50.0 [])

let t_min_max_ratio () =
  feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  feq "ratio" 2.0 (Stats.ratio 4.0 2.0);
  feq "ratio by zero" 0.0 (Stats.ratio 4.0 0.0)

let t_table () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "long header"; "c" ] in
  Table.add_row t [ "1"; "2"; "3" ];
  Table.add_row t [ "wide cell"; "x"; Table.cell_f 1.5 ];
  let s = Table.render t in
  check_bool "title present" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  check_bool "cell rendered" true
    (Astring_like.contains s "wide cell" && Astring_like.contains s "1.50");
  Alcotest.check_raises "width mismatch" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "too"; "few" ])

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean/sum" `Quick t_mean;
      Alcotest.test_case "stddev" `Quick t_stddev;
      Alcotest.test_case "percentile" `Quick t_percentile;
      Alcotest.test_case "min/max/ratio" `Quick t_min_max_ratio;
      Alcotest.test_case "table" `Quick t_table;
    ] )
