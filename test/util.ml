(* Shared helpers for the test suite. *)
open Core

let txn = Txn_id.of_path
let x0 = Obj_id.make "x"
let y0 = Obj_id.make "y"

(* A two-register schema with two simple conflicting programs. *)
let rw_pair () =
  let forest =
    [
      Program.seq
        [
          Program.access x0 Datatype.Read;
          Program.access x0 (Datatype.Write (Value.Int 1));
          Program.access y0 (Datatype.Write (Value.Int 10));
        ];
      Program.seq
        [
          Program.access y0 Datatype.Read;
          Program.access x0 (Datatype.Write (Value.Int 2));
        ];
    ]
  in
  let schema =
    Program.schema_of
      ~objects:[ (x0, Register.make ()); (y0, Register.make ()) ]
      forest
  in
  (forest, schema)

let run_protocol ?(abort_prob = 0.0) ?(policy = Runtime.Random_step) ~seed
    schema factory forest =
  Runtime.run ~policy ~abort_prob ~seed schema factory forest

let all_prefixes trace =
  List.init (Trace.length trace + 1) (fun n -> Trace.prefix trace n)

(* Sampled prefixes for expensive per-prefix invariants. *)
let sampled_prefixes ?(stride = 7) trace =
  let n = Trace.length trace in
  let rec go i acc = if i > n then acc else go (i + stride) (Trace.prefix trace i :: acc) in
  go 0 [ trace ]

(* Trace-builder helpers: the action bursts that open, commit and
   abort a transaction, so hand-written expected traces read as a list
   of lifecycle fragments instead of raw action lists. *)
let open_txn t = [ Action.Request_create t; Action.Create t ]

let commit_txn ?(report = true) t v =
  [ Action.Request_commit (t, v); Action.Commit t ]
  @ if report then [ Action.Report_commit (t, v) ] else []

(* A leaf access's whole life: created, then committed with value [v]. *)
let leaf_txn ?report t v = open_txn t @ commit_txn ?report t v

let trace_of fragments = Trace.of_list (List.concat fragments)

(* Search seeds [1..max_seed] for one where [f seed] yields a witness;
   fail the test with [msg] when none does. *)
let find_seed ?(max_seed = 100) msg f =
  let rec go seed =
    if seed > max_seed then Alcotest.fail msg
    else match f seed with Some x -> x | None -> go (seed + 1)
  in
  go 1

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let value_testable = Alcotest.testable Value.pp Value.equal
let txn_testable = Alcotest.testable Txn_id.pp Txn_id.equal

let datatypes () =
  [
    Register.make ();
    Counter.make ();
    Bank_account.make ~init:5 ();
    Rset.make ();
    Fifo_queue.make ();
    Keyed_store.make ();
  ]

(* Exhaustive small operation universes per data type, for oracle
   validation. *)
let op_universe (dt : Datatype.t) : Datatype.op list =
  match dt.dt_name with
  | "register" ->
      [ Datatype.Read; Datatype.Write (Value.Int 1); Datatype.Write (Value.Int 2) ]
  | "counter" ->
      [ Datatype.Get; Datatype.Incr 0; Datatype.Incr 1; Datatype.Incr 2;
        Datatype.Decr 1 ]
  | "account" ->
      [ Datatype.Balance; Datatype.Deposit 0; Datatype.Deposit 2;
        Datatype.Withdraw 0; Datatype.Withdraw 1; Datatype.Withdraw 4 ]
  | "set" ->
      [ Datatype.Size; Datatype.Insert (Value.Int 1); Datatype.Insert (Value.Int 2);
        Datatype.Remove (Value.Int 1); Datatype.Remove (Value.Int 2);
        Datatype.Member (Value.Int 1); Datatype.Member (Value.Int 2) ]
  | "queue" ->
      [ Datatype.Enqueue (Value.Int 1); Datatype.Enqueue (Value.Int 2);
        Datatype.Dequeue ]
  | "keyed_store" ->
      [ Datatype.Kread (Value.Int 0); Datatype.Kread (Value.Int 1);
        Datatype.Kwrite (Value.Int 0, Value.Int 5);
        Datatype.Kwrite (Value.Int 0, Value.Int 6);
        Datatype.Kwrite (Value.Int 1, Value.Int 5) ]
  | name -> invalid_arg ("op_universe: " ^ name)

(* All (op, value) operations realizable from the probe states. *)
let realizable_operations (dt : Datatype.t) =
  List.concat_map
    (fun op ->
      List.map (fun s -> (op, snd (dt.apply s op))) dt.probe_states
      |> List.sort_uniq Stdlib.compare)
    (op_universe dt)
  |> List.sort_uniq Stdlib.compare
