open Core
open Util

(* A naive reference for suitability condition (2): build the full
   R_event edge set between visible events (all pairs) plus the affects
   adjacency, and DFS for a cycle.  The production implementation uses
   a rank-chain gadget instead; they must agree. *)
let reference_consistent trace ~to_ order =
  let comm = Trace.committed trace in
  let visible u =
    List.for_all
      (fun a -> Txn_id.Set.mem a comm)
      (Txn_id.ancestors_upto u ~upto:to_)
  in
  let n = Trace.length trace in
  let vis =
    List.filter
      (fun i ->
        let a = Trace.get trace i in
        Action.is_serial a
        &&
        match Action.hightransaction a with
        | Some u -> visible u
        | None -> false)
      (List.init n Fun.id)
  in
  let adj = Trace.affects_adjacency trace in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if
            i <> j
            && Sibling_order.event_mem order (Trace.get trace i)
                 (Trace.get trace j)
          then adj.(i) <- j :: adj.(i))
        vis)
    vis;
  let color = Array.make n 0 in
  let cyclic = ref false in
  let rec visit i =
    match color.(i) with
    | 2 -> ()
    | 1 -> cyclic := true
    | _ ->
        color.(i) <- 1;
        List.iter (fun j -> if not !cyclic then visit j) adj.(i);
        color.(i) <- 2
  in
  for i = 0 to n - 1 do
    if not !cyclic then visit i
  done;
  not !cyclic

(* Random traces from protocols and random sibling orders: the gadget
   agrees with the reference on condition (2) whenever condition (1)
   holds (unordered siblings short-circuit both implementations
   differently, so restrict to orders that pass it). *)
let t_gadget_agrees_with_reference () =
  let cases = ref 0 in
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 4; depth = 2; n_objects = 2 }
      in
      let factory =
        if seed mod 2 = 0 then Moss_object.factory else Broken.no_control
      in
      let r = run_protocol ~abort_prob:0.05 ~seed schema factory forest in
      let beta = Trace.serial r.Runtime.trace in
      (* Candidate orders: the index order, and index order with the
         top-level chain reversed. *)
      let index = Sibling_order.index_order beta in
      let reversed =
        let tops = Sibling_order.ordered_children index Txn_id.root in
        List.fold_left
          (fun acc p ->
            if Txn_id.is_root p then acc
            else Sibling_order.add_chain acc (Sibling_order.ordered_children index p))
          (Sibling_order.of_chains [ List.rev tops ])
          (List.filter
             (fun p -> not (Txn_id.is_root p))
             (Sibling_order.parents index))
      in
      List.iter
        (fun order ->
          match Suitability.check beta ~to_:Txn_id.root order with
          | Error (Suitability.Unordered_siblings _) -> ()
          | verdict ->
              incr cases;
              let gadget_ok = verdict = Ok () in
              let reference_ok =
                reference_consistent beta ~to_:Txn_id.root order
              in
              if gadget_ok <> reference_ok then
                Alcotest.failf
                  "seed %d: gadget %b but reference %b" seed gadget_ok
                  reference_ok)
        [ index; reversed ])
    (List.init 20 (fun i -> i + 1));
  check_bool "exercised both outcomes meaningfully" true (!cases > 20)

(* The reversed order must actually be rejected somewhere (the gadget
   can find cycles, not just confirm consistency). *)
let t_gadget_finds_cycles () =
  let rejected = ref 0 in
  List.iter
    (fun seed ->
      let forest, schema = rw_pair () in
      ignore schema;
      let schema =
        Program.schema_of
          ~objects:[ (x0, Register.make ()); (y0, Register.make ()) ]
          forest
      in
      let r = Runtime.run ~top_comb:Program.Seq ~seed schema Moss_object.factory forest in
      let beta = Trace.serial r.Runtime.trace in
      let bad = Sibling_order.of_chains [ [ txn [ 1 ]; txn [ 0 ] ] ] in
      let bad =
        List.fold_left
          (fun acc p ->
            if Txn_id.is_root p then acc
            else
              Sibling_order.add_chain acc
                (Sibling_order.ordered_children
                   (Sibling_order.index_order beta)
                   p))
          bad
          (Sibling_order.parents (Sibling_order.index_order beta))
      in
      match Suitability.check beta ~to_:Txn_id.root bad with
      | Error (Suitability.Event_cycle _) -> incr rejected
      | _ -> ())
    (List.init 5 (fun i -> i + 1));
  (* With a sequential top level, T0.0 reports before T0.1 is
     requested, so reversing them always contradicts affects. *)
  check_int "always rejected" 5 !rejected

let suite =
  ( "suitability",
    [
      Alcotest.test_case "gadget agrees with naive reference" `Slow
        t_gadget_agrees_with_reference;
      Alcotest.test_case "gadget finds cycles" `Quick t_gadget_finds_cycles;
    ] )
