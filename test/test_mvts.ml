open Core
open Util

(* Accesses of two top-level transactions; pseudotime order is the
   path (dfs) order: a1 = T0.0.0 < a2 = T0.1.0. *)
let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]
let a2 = txn [ 1; 0 ]

let init () = Mvts_object.initial (Value.Int 0)

let t_initial_read () =
  let s = init () in
  let s = Mvts_object.create s a1 in
  match Mvts_object.request_commit s a1 `Read with
  | Some (_, v) -> Alcotest.check value_testable "reads init" (Value.Int 0) v
  | None -> Alcotest.fail "read of initial version should fire"

let t_read_waits_for_uncommitted_writer () =
  let s = init () in
  let s = Mvts_object.create s a1 in
  let s, _ = Option.get (Mvts_object.request_commit s a1 (`Write (Value.Int 7))) in
  let s = Mvts_object.create s a2 in
  (* a2's predecessor version is a1's, whose chain is uncommitted. *)
  check_bool "read blocked on pending writer" true
    (Mvts_object.request_commit s a2 `Read = None);
  Alcotest.(check (list txn_testable)) "blocker is writer" [ a1 ]
    (Mvts_object.blockers s a2 `Read);
  let s = Mvts_object.inform_commit s a1 in
  let s = Mvts_object.inform_commit s t1 in
  match Mvts_object.request_commit s a2 `Read with
  | Some (_, v) -> Alcotest.check value_testable "reads version" (Value.Int 7) v
  | None -> Alcotest.fail "read should fire once writer visible"

let t_write_too_late_blocks () =
  (* a2 (larger ts) reads the initial version; then a1 (smaller ts)
     tries to write: it would invalidate a2's read. *)
  let s = init () in
  let s = Mvts_object.create s a2 in
  let s, v = Option.get (Mvts_object.request_commit s a2 `Read) in
  Alcotest.check value_testable "read init" (Value.Int 0) v;
  let s = Mvts_object.create s a1 in
  check_bool "late write blocked" true
    (Mvts_object.request_commit s a1 (`Write (Value.Int 9)) = None);
  Alcotest.(check (list txn_testable)) "blocker is reader" [ a2 ]
    (Mvts_object.blockers s a1 (`Write (Value.Int 9)))

let t_out_of_order_writes_ok () =
  (* Writes at different pseudotimes may respond in either real-time
     order: versions coexist. *)
  let s = init () in
  let s = Mvts_object.create s a2 in
  let s, _ = Option.get (Mvts_object.request_commit s a2 (`Write (Value.Int 2))) in
  let s = Mvts_object.create s a1 in
  match Mvts_object.request_commit s a1 (`Write (Value.Int 1)) with
  | Some (s', _) ->
      (* Version list is ordered by pseudotime: init, a1, a2. *)
      let writers = List.map (fun v -> v.Mvts_object.writer) s'.Mvts_object.versions in
      Alcotest.(check (list txn_testable)) "version order"
        [ Txn_id.root; a1; a2 ] writers
  | None -> Alcotest.fail "out-of-order write should fire"

let t_abort_purges () =
  let s = init () in
  let s = Mvts_object.create s a1 in
  let s, _ = Option.get (Mvts_object.request_commit s a1 (`Write (Value.Int 7))) in
  let s = Mvts_object.inform_abort s t1 in
  check_int "version purged" 1 (List.length s.Mvts_object.versions);
  let s = Mvts_object.create s a2 in
  match Mvts_object.request_commit s a2 `Read with
  | Some (_, v) -> Alcotest.check value_testable "reads init again" (Value.Int 0) v
  | None -> Alcotest.fail "read should fire after purge"

(* The boundary demonstration: generated MVTS behaviors are certified
   by Theorem 2 with the pseudotime order, even when the serialization
   graph is cyclic and return values are not "appropriate" in the
   update-in-place sense. *)
let t_theorem2_certifies () =
  let saw_cycle = ref false and saw_inappropriate = ref false in
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 2; n_objects = 2;
            read_ratio = 0.5 }
      in
      let r =
        run_protocol ~abort_prob:0.03 ~seed schema Mvts_object.factory forest
      in
      check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys r.Runtime.trace);
      let beta = Trace.serial r.Runtime.trace in
      let order = Sibling_order.index_order beta in
      (match Theorem2.check schema order r.Runtime.trace with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "Theorem 2 failed on seed %d: %a" seed
            Theorem2.pp_failure f);
      let g = Sg.build Sg.Access_level schema beta in
      if not (Graph.is_acyclic g) then saw_cycle := true;
      if not (Return_values.appropriate_general schema beta) then
        saw_inappropriate := true)
    (List.init 25 (fun i -> i + 1));
  check_bool "some SG was cyclic (completion order is not the right order)"
    true !saw_cycle;
  check_bool "some behavior violated update-in-place return values" true
    !saw_inappropriate

(* Control: the same Theorem-2 check with the pseudotime order also
   certifies Moss behaviors?  No — Moss serializes by completion
   order, which need not match pseudotime; the check may fail.  But it
   must certify serial executions (which run in index order). *)
let t_theorem2_on_serial () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2 }
      in
      let tr = Serial_exec.run schema forest in
      let order = Sibling_order.index_order tr in
      check_bool "serial certified by index order" true
        (Theorem2.holds schema order tr))
    [ 1; 2; 3; 4; 5 ]

let suite =
  ( "mvts",
    [
      Alcotest.test_case "initial read" `Quick t_initial_read;
      Alcotest.test_case "read waits for uncommitted writer" `Quick
        t_read_waits_for_uncommitted_writer;
      Alcotest.test_case "write too late blocks" `Quick t_write_too_late_blocks;
      Alcotest.test_case "out-of-order writes coexist" `Quick
        t_out_of_order_writes_ok;
      Alcotest.test_case "abort purges" `Quick t_abort_purges;
      Alcotest.test_case "Theorem 2 certifies generated behaviors" `Slow
        t_theorem2_certifies;
      Alcotest.test_case "Theorem 2 on serial executions" `Quick
        t_theorem2_on_serial;
    ] )
