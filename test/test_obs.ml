(* Tests for the observability layer: the metrics registry, the span
   derivation (both the generic [on_action] path and the runtime's
   timestamp-passing path), the streaming sinks, and the Chrome
   exporter's output shape. *)
open Core
open Util

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- metrics registry ------------------------------------------------ *)

let t_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter" 5 (Metrics.counter_value c);
  (* get-or-create returns the same instrument *)
  Metrics.incr (Metrics.counter m "a");
  check_int "shared" 6 (Metrics.counter_value c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  check_bool "gauge" true (Metrics.gauge_value g = 2.5);
  (* a name cannot change kind *)
  check_bool "kind clash" true
    (try
       ignore (Metrics.histogram m "a");
       false
     with Invalid_argument _ -> true);
  Metrics.reset m;
  check_int "reset" 0 (Metrics.counter_value c)

let t_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 7; 100 ];
  let s = Metrics.histogram_stats h in
  check_int "count" 5 s.Metrics.count;
  check_int "sum" 109 s.Metrics.sum;
  check_int "min" 0 s.Metrics.min;
  check_int "max" 100 s.Metrics.max;
  check_bool "p50 bounds median" true (s.Metrics.p50 >= 1);
  check_bool "p99 bounds max" true (s.Metrics.p99 >= 100)

(* Boundary cases the hstats documentation promises: empty histograms
   are all-zero, a single observation is reported exactly (quantiles
   clamp to the raw max), and the top bucket clamps instead of
   overflowing. *)
let t_metrics_histogram_boundaries () =
  let m = Metrics.create () in
  let empty = Metrics.histogram_stats (Metrics.histogram m "empty") in
  check_int "empty count" 0 empty.Metrics.count;
  check_int "empty min" 0 empty.Metrics.min;
  check_int "empty max" 0 empty.Metrics.max;
  check_int "empty p50" 0 empty.Metrics.p50;
  check_int "empty p999" 0 empty.Metrics.p999;
  let h1 = Metrics.histogram m "single" in
  Metrics.observe h1 37;
  let s1 = Metrics.histogram_stats h1 in
  check_int "single min" 37 s1.Metrics.min;
  check_int "single max" 37 s1.Metrics.max;
  check_int "single p50 = the observation" 37 s1.Metrics.p50;
  check_int "single p99 = the observation" 37 s1.Metrics.p99;
  check_int "single p999 = the observation" 37 s1.Metrics.p999;
  (* max_int lands in the top bucket; stats stay exact for min/max and
     the quantile clamps to the raw max rather than 2^63-ish garbage *)
  let h2 = Metrics.histogram m "huge" in
  Metrics.observe h2 max_int;
  Metrics.observe h2 1;
  let s2 = Metrics.histogram_stats h2 in
  check_int "clamp max" max_int s2.Metrics.max;
  check_int "clamp min" 1 s2.Metrics.min;
  check_int "p99 clamps to raw max" max_int s2.Metrics.p99;
  (* p999 rank: 998 observations of 1 and two of 8 put rank 999 of
     1000 into the tail bucket, while p50 stays in the body *)
  let h3 = Metrics.histogram m "tail" in
  for _ = 1 to 998 do
    Metrics.observe h3 1
  done;
  Metrics.observe h3 8;
  Metrics.observe h3 8;
  let s3 = Metrics.histogram_stats h3 in
  check_int "p50 stays in the body" 1 s3.Metrics.p50;
  check_bool "p999 reaches the tail" true (s3.Metrics.p999 >= 8);
  (* negative observations clamp to bucket 0 *)
  let h4 = Metrics.histogram m "neg" in
  Metrics.observe h4 (-5);
  let s4 = Metrics.histogram_stats h4 in
  check_int "negative clamps to 0" 0 s4.Metrics.max;
  (* bucket bound helpers agree with the bucketing *)
  check_int "bucket 0 lower" 0 (Metrics.bucket_lower 0);
  check_int "bucket 0 upper" 0 (Metrics.bucket_upper 0);
  check_int "bucket 3 lower" 4 (Metrics.bucket_lower 3);
  check_int "bucket 3 upper" 7 (Metrics.bucket_upper 3)

let t_metrics_json () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "n");
  Metrics.observe (Metrics.histogram m "lat") 4;
  let s = Obs_json.to_string (Metrics.to_json m) in
  check_bool "has counter" true (contains s "\"n\":3");
  check_bool "has histogram" true (contains s "\"lat\"");
  check_bool "has count" true (contains s "\"count\":1")

(* --- windows and snapshots ------------------------------------------- *)

(* The property behind every per-interval readout: feeding the same
   stream into a windowed instrument and a cumulative one, the sum of
   the per-interval window readings equals the cumulative delta over
   the same span — counters and histograms alike, whatever the
   tick pattern. *)
let t_window_sum_is_cumulative_delta () =
  let rng = Rng.create 42 in
  let win = Obs_window.create ~slots:4 () in
  let m = Metrics.create () in
  let wc = Obs_window.counter win "ops" and cc = Metrics.counter m "ops" in
  let wh = Obs_window.histogram win "lat" and ch = Metrics.histogram m "lat" in
  let base = Obs_snapshot.capture m in
  (* per-interval tallies reconstructed from the window as we go *)
  let intervals_c = ref [] and intervals_h = ref [] in
  for _interval = 1 to 10 do
    let n = 1 + Rng.int rng 50 in
    for _ = 1 to n do
      Obs_window.incr wc;
      Metrics.incr cc;
      let v = Rng.int rng 10_000 in
      Obs_window.observe wh v;
      Metrics.observe ch v
    done;
    intervals_c := Obs_window.counter_current wc :: !intervals_c;
    intervals_h := (Obs_window.histogram_current wh).Obs_window.count :: !intervals_h;
    Obs_window.tick win
  done;
  let delta, _ = Obs_snapshot.delta ~prev:base (Obs_snapshot.capture m) in
  let d_ops = Metrics.counter_value (Metrics.counter delta "ops") in
  check_int "sum of window counters = cumulative delta" d_ops
    (List.fold_left ( + ) 0 !intervals_c);
  let d_lat = Metrics.histogram_stats (Metrics.histogram delta "lat") in
  check_int "sum of window histogram counts = cumulative delta"
    d_lat.Metrics.count
    (List.fold_left ( + ) 0 !intervals_h);
  (* the ring only retains [slots] intervals: totals cover exactly the
     live slots, never more *)
  check_bool "window total bounded by ring size" true
    (Obs_window.counter_total wc <= d_ops)

(* Obs_snapshot.delta subtracts instrument-wise and treats instruments
   born after the snapshot as starting from zero. *)
let t_snapshot_delta () =
  let m = Metrics.create () in
  Metrics.incr ~by:5 (Metrics.counter m "old");
  Metrics.observe (Metrics.histogram m "h") 16;
  let s0 = Obs_snapshot.capture m in
  Metrics.incr ~by:2 (Metrics.counter m "old");
  Metrics.incr ~by:9 (Metrics.counter m "new");
  Metrics.observe (Metrics.histogram m "h") 16;
  Metrics.observe (Metrics.histogram m "h") 300;
  let d, _ = Obs_snapshot.delta ~prev:s0 (Obs_snapshot.capture m) in
  check_int "existing counter subtracts" 2
    (Metrics.counter_value (Metrics.counter d "old"));
  check_int "new counter from zero" 9
    (Metrics.counter_value (Metrics.counter d "new"));
  let hs = Metrics.histogram_stats (Metrics.histogram d "h") in
  check_int "histogram delta count" 2 hs.Metrics.count;
  check_int "histogram delta sum" 316 hs.Metrics.sum;
  (* the interval moved the cumulative max, so it is exact *)
  check_int "delta max exact" 300 hs.Metrics.max

(* A recorder without a sink emits nothing, but still maintains the
   metrics side — and reports its event interests accordingly. *)
let t_obs_interest () =
  let m = Metrics.create () in
  let quiet = Obs.create ~metrics:m () in
  check_bool "enabled" true (Obs.enabled quiet);
  check_bool "not emitting" false (Obs.emitting quiet);
  check_bool "no wait interest" false (Obs.emitting_waits quiet);
  check_bool "no edge interest" false (Obs.emitting_edges quiet);
  let sink, _events = Obs_sink.memory () in
  let waits = Obs.create ~metrics:m ~sink ~events:Obs.waits_only () in
  check_bool "waits interest" true (Obs.emitting_waits waits);
  check_bool "waits_only excludes edges" false (Obs.emitting_edges waits);
  let full = Obs.create ~metrics:m ~sink () in
  check_bool "full interest: waits" true (Obs.emitting_waits full);
  check_bool "full interest: edges" true (Obs.emitting_edges full)

(* --- span derivation from an action stream --------------------------- *)

let t_span_from_actions () =
  let sink, events = Obs_sink.memory () in
  let o = Obs.create ~sink () in
  List.iter
    (Obs.on_action o)
    [
      Action.Create (txn [ 0 ]);
      Action.Create (txn [ 0; 0 ]);
      Action.Request_commit (txn [ 0; 0 ], Value.Int 1);
      Action.Commit (txn [ 0; 0 ]);
      Action.Request_commit (txn [ 0 ], Value.Int 0);
      Action.Abort (txn [ 0 ]);
    ];
  Obs.close o;
  check_int "clock" 6 (Obs.now o);
  (match events () with
  | [
   Obs_event.Begin { txn = a; ts = 1 };
   Obs_event.Begin { txn = b; ts = 2 };
   Obs_event.End { txn = c; ts = 4; outcome = Obs_event.Committed; dur = 2 };
   Obs_event.End { txn = d; ts = 6; outcome = Obs_event.Aborted; dur = 5 };
  ] ->
      check_bool "span txns" true
        (Txn_id.equal a (txn [ 0 ])
        && Txn_id.equal b (txn [ 0; 0 ])
        && Txn_id.equal c (txn [ 0; 0 ])
        && Txn_id.equal d (txn [ 0 ]))
  | evs -> Alcotest.failf "unexpected events (%d)" (List.length evs));
  let m = Obs.metrics o in
  check_int "created" 2 (Metrics.counter_value (Metrics.counter m "txn.created"));
  check_int "committed" 1
    (Metrics.counter_value (Metrics.counter m "txn.committed"));
  check_int "aborted" 1 (Metrics.counter_value (Metrics.counter m "txn.aborted"));
  check_int "actions" 6 (Metrics.counter_value (Metrics.counter m "actions"))

let t_null_is_inert () =
  check_bool "disabled" false (Obs.enabled Obs.null);
  Obs.on_action Obs.null (Action.Create (txn [ 0 ]));
  Obs.instant Obs.null "nothing";
  check_int "clock untouched" 0 (Obs.now Obs.null)

(* --- the runtime's timestamp-passing path ---------------------------- *)

(* Replaying the produced trace through [on_action] must yield the
   same span events (same ticks, outcomes, durations) the runtime
   emitted live, and the metrics the runtime settles must match the
   trace profile. *)
let t_runtime_spans () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2; fanout = 2; n_objects = 3 }
      in
      let sink, events = Obs_sink.memory () in
      let o = Obs.create ~sink () in
      let r =
        Runtime.run ~policy:Runtime.Bsp_rounds ~obs:o ~seed schema
          Moss_object.factory forest
      in
      Obs.close o;
      let live =
        List.filter
          (function
            | Obs_event.Begin _ | Obs_event.End _ -> true | _ -> false)
          (events ())
      in
      let sink2, events2 = Obs_sink.memory () in
      let o2 = Obs.create ~sink:sink2 () in
      Trace.to_list r.Runtime.trace |> List.iter (Obs.on_action o2);
      Obs.close o2;
      let replay =
        List.filter
          (function
            | Obs_event.Begin _ | Obs_event.End _ -> true | _ -> false)
          (events2 ())
      in
      check_int "same span count" (List.length replay) (List.length live);
      List.iter2
        (fun a b ->
          check_bool "span event equal" true
            (match (a, b) with
            | ( Obs_event.Begin { txn = t1; ts = s1 },
                Obs_event.Begin { txn = t2; ts = s2 } ) ->
                Txn_id.equal t1 t2 && s1 = s2
            | ( Obs_event.End { txn = t1; ts = s1; outcome = o1; dur = d1 },
                Obs_event.End { txn = t2; ts = s2; outcome = o2; dur = d2 } )
              ->
                Txn_id.equal t1 t2 && s1 = s2 && o1 = o2 && d1 = d2
            | _ -> false))
        live replay;
      (* nesting: a child's span begins after its parent's *)
      let begins = Txn_id.Tbl.create 32 in
      List.iter
        (function
          | Obs_event.Begin { txn; ts } -> Txn_id.Tbl.replace begins txn ts
          | _ -> ())
        live;
      Txn_id.Tbl.iter
        (fun t ts ->
          if Txn_id.depth t > 1 then
            match Txn_id.Tbl.find_opt begins (Txn_id.parent_exn t) with
            | Some pts -> check_bool "parent began first" true (pts < ts)
            | None -> Alcotest.failf "child %s has no parent span"
                        (Txn_id.to_string t))
        begins;
      (* settled metrics agree with the trace profile *)
      let s = Trace_stats.of_trace r.Runtime.trace in
      let m = Obs.metrics o in
      let cv n = Metrics.counter_value (Metrics.counter m n) in
      check_int "actions" s.Trace_stats.events (cv "actions");
      check_int "created" s.Trace_stats.creates (cv "txn.created");
      check_int "committed" s.Trace_stats.commits (cv "txn.committed");
      check_int "aborted" s.Trace_stats.aborts (cv "txn.aborted");
      check_int "clock = events" s.Trace_stats.events (Obs.now o))
    [ 1; 2; 3; 4 ]

(* --- streaming sinks -------------------------------------------------- *)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let t_jsonl_streams () =
  let path = Filename.temp_file "nested_sg_obs" ".jsonl" in
  let sink = Obs_sink.jsonl_file path in
  let o = Obs.create ~sink () in
  Obs.on_action o (Action.Create (txn [ 0 ]));
  Obs.on_action o (Action.Create (txn [ 1 ]));
  sink.Obs_sink.flush ();
  (* visible mid-stream, before close: nothing is being retained *)
  check_int "streamed" 2 (count_lines path);
  Obs.on_action o (Action.Commit (txn [ 0 ]));
  Obs.on_action o (Action.Abort (txn [ 1 ]));
  Obs.close o;
  check_int "complete" 4 (count_lines path);
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  check_bool "line shape" true
    (contains first "\"ev\":\"begin\"" && contains first "\"ts\":1");
  Sys.remove path

(* --- Chrome exporter -------------------------------------------------- *)

let occurrences needle hay =
  let n = String.length needle and h = String.length hay in
  let count = ref 0 in
  for i = 0 to h - n do
    if String.sub hay i n = needle then incr count
  done;
  !count

let t_chrome_export () =
  let seed = 7 in
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed
      { Gen.default with n_top = 4; depth = 2; fanout = 2; n_objects = 3 }
  in
  let path = Filename.temp_file "nested_sg_obs" ".json" in
  let o = Obs.create ~sink:(Chrome_trace.sink_file path) () in
  let r =
    Runtime.run ~policy:Runtime.Bsp_rounds ~obs:o ~seed schema
      Moss_object.factory forest
  in
  Obs.close o;
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  let trimmed = String.trim body in
  check_bool "is a JSON array" true
    (String.length trimmed > 2
    && trimmed.[0] = '['
    && trimmed.[String.length trimmed - 1] = ']');
  let s = Trace_stats.of_trace r.Runtime.trace in
  check_bool "deep workload" true (s.Trace_stats.max_depth >= 2);
  check_int "one B per create" s.Trace_stats.creates
    (occurrences "\"ph\":\"B\"" body);
  check_int "one E per completion"
    (s.Trace_stats.commits + s.Trace_stats.aborts)
    (occurrences "\"ph\":\"E\"" body);
  check_bool "thread metadata" true (occurrences "\"ph\":\"M\"" body > 0);
  check_bool "no trailing comma" true (not (contains body ",]"))

let suite =
  ( "obs",
    [
      Alcotest.test_case "metrics counters and gauges" `Quick t_metrics_counters;
      Alcotest.test_case "metrics histogram stats" `Quick t_metrics_histogram;
      Alcotest.test_case "histogram boundary cases" `Quick
        t_metrics_histogram_boundaries;
      Alcotest.test_case "metrics JSON export" `Quick t_metrics_json;
      Alcotest.test_case "window sum = cumulative delta" `Quick
        t_window_sum_is_cumulative_delta;
      Alcotest.test_case "snapshot delta" `Quick t_snapshot_delta;
      Alcotest.test_case "recorder event interests" `Quick t_obs_interest;
      Alcotest.test_case "span derivation from actions" `Quick
        t_span_from_actions;
      Alcotest.test_case "null recorder is inert" `Quick t_null_is_inert;
      Alcotest.test_case "runtime spans match trace replay" `Quick
        t_runtime_spans;
      Alcotest.test_case "jsonl sink streams" `Quick t_jsonl_streams;
      Alcotest.test_case "chrome export shape" `Quick t_chrome_export;
    ] )
