open Core
open Util

let t_well_formed_and_correct () =
  let forest, schema = rw_pair () in
  let tr = Serial_exec.run schema forest in
  check_bool "well formed" true (Simple_db.is_well_formed schema.Schema.sys tr);
  let v = Checker.check schema tr in
  check_bool "appropriate" true v.Checker.appropriate;
  check_bool "acyclic" true v.Checker.acyclic;
  check_bool "serially correct" true v.Checker.serially_correct

let t_values_flow () =
  (* Program reads its own write through the serial object. *)
  let p =
    Program.seq
      [
        Program.access x0 (Datatype.Write (Value.Int 42));
        Program.access x0 Datatype.Read;
      ]
  in
  let schema = Program.schema_of ~objects:[ (x0, Register.make ()) ] [ p ] in
  let tr = Serial_exec.run schema [ p ] in
  (* The read access T0.0.1 must return 42. *)
  let read_value =
    Array.to_list tr
    |> List.find_map (fun a ->
           match a with
           | Action.Request_commit (t, v) when Txn_id.equal t (txn [ 0; 1 ]) ->
               Some v
           | _ -> None)
  in
  Alcotest.check (Alcotest.option value_testable) "read own write"
    (Some (Value.Int 42)) read_value

let t_aborts () =
  let forest, schema = rw_pair () in
  (* Abort the second top-level transaction before creation. *)
  let tr =
    Serial_exec.run ~should_abort:(fun t -> Txn_id.equal t (txn [ 1 ])) schema
      forest
  in
  check_bool "well formed with aborts" true
    (Simple_db.is_well_formed schema.Schema.sys tr);
  check_bool "abort recorded" true
    (Trace.find_first (fun a -> a = Action.Abort (txn [ 1 ])) tr <> None);
  check_bool "aborted txn never created" true
    (Trace.find_first (fun a -> a = Action.Create (txn [ 1 ])) tr = None);
  check_bool "still serially correct" true (Checker.serially_correct schema tr)

let t_abort_subtransaction () =
  (* Abort a nested child: the parent must still commit, with the
     aborted child summarized as failed. *)
  let p =
    Program.seq
      [
        Program.access x0 (Datatype.Write (Value.Int 1));
        Program.access x0 Datatype.Read;
      ]
  in
  let schema = Program.schema_of ~objects:[ (x0, Register.make ()) ] [ p ] in
  let tr =
    Serial_exec.run ~should_abort:(fun t -> Txn_id.equal t (txn [ 0; 0 ])) schema
      [ p ]
  in
  check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
  check_bool "parent committed" true
    (Trace.find_first (fun a -> a = Action.Commit (txn [ 0 ])) tr <> None);
  (* The read now sees the initial value, not 1. *)
  let read_value =
    Array.to_list tr
    |> List.find_map (fun a ->
           match a with
           | Action.Request_commit (t, v) when Txn_id.equal t (txn [ 0; 1 ]) ->
               Some v
           | _ -> None)
  in
  Alcotest.check (Alcotest.option value_testable) "read initial"
    (Some (Value.Int 0)) read_value;
  check_bool "correct" true (Checker.serially_correct schema tr)

let t_final_states () =
  let forest, schema = rw_pair () in
  let tr = Serial_exec.run schema forest in
  let states = Serial_exec.final_states schema tr in
  (* Program 2 writes x last in serial order: x = 2; y = 10. *)
  let find x = List.assoc x states in
  Alcotest.check value_testable "x final" (Value.Int 2) (find x0);
  Alcotest.check value_testable "y final" (Value.Int 10) (find y0)

(* Serial executions of random workloads are always serially correct. *)
let t_random_workloads () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2 }
      in
      let tr = Serial_exec.run schema forest in
      check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
      check_bool "correct" true (Checker.serially_correct schema tr))
    [ 1; 2; 3; 4; 5 ]

let t_random_mixed_workloads () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 5 }
      in
      let tr = Serial_exec.run schema forest in
      check_bool "wf" true (Simple_db.is_well_formed schema.Schema.sys tr);
      check_bool "correct" true (Checker.serially_correct schema tr))
    [ 10; 11; 12; 13; 14 ]

let suite =
  ( "serial_exec",
    [
      Alcotest.test_case "well formed and correct" `Quick t_well_formed_and_correct;
      Alcotest.test_case "values flow" `Quick t_values_flow;
      Alcotest.test_case "aborts before creation" `Quick t_aborts;
      Alcotest.test_case "abort subtransaction" `Quick t_abort_subtransaction;
      Alcotest.test_case "final states" `Quick t_final_states;
      Alcotest.test_case "random rw workloads" `Quick t_random_workloads;
      Alcotest.test_case "random mixed workloads" `Quick t_random_mixed_workloads;
    ] )
