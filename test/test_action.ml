open Core
open Util

let t = txn [ 2 ]
let c = txn [ 2; 1 ]

let t_classification () =
  check_bool "serial" true (Action.is_serial (Action.Commit t));
  check_bool "inform not serial" false
    (Action.is_serial (Action.Inform_commit (x0, t)));
  check_bool "completion" true (Action.is_completion (Action.Abort t));
  check_bool "create not completion" false (Action.is_completion (Action.Create t))

let opt_txn = Alcotest.option txn_testable

let t_transaction () =
  Alcotest.check opt_txn "create" (Some t) (Action.transaction (Action.Create t));
  Alcotest.check opt_txn "request_commit" (Some t)
    (Action.transaction (Action.Request_commit (t, Value.Ok)));
  Alcotest.check opt_txn "request_create at parent" (Some t)
    (Action.transaction (Action.Request_create c));
  Alcotest.check opt_txn "report_commit at parent" (Some t)
    (Action.transaction (Action.Report_commit (c, Value.Ok)));
  Alcotest.check opt_txn "report_abort at parent" (Some t)
    (Action.transaction (Action.Report_abort c));
  Alcotest.check opt_txn "commit undefined" None
    (Action.transaction (Action.Commit t));
  Alcotest.check opt_txn "inform undefined" None
    (Action.transaction (Action.Inform_commit (x0, t)))

let t_high_low () =
  Alcotest.check opt_txn "high of commit is parent" (Some t)
    (Action.hightransaction (Action.Commit c));
  Alcotest.check opt_txn "low of commit is self" (Some c)
    (Action.lowtransaction (Action.Commit c));
  Alcotest.check opt_txn "high = transaction otherwise" (Some t)
    (Action.hightransaction (Action.Create t));
  Alcotest.check opt_txn "low = transaction otherwise" (Some t)
    (Action.lowtransaction (Action.Create t));
  Alcotest.check opt_txn "high of root commit" None
    (Action.hightransaction (Action.Commit Txn_id.root))

let t_object_of () =
  let schema =
    Program.schema_of
      ~objects:[ (x0, Register.make ()) ]
      [ Program.seq [ Program.access x0 Datatype.Read ] ]
  in
  let a = txn [ 0; 0 ] in
  check_bool "access create has object" true
    (Action.object_of schema.Schema.sys (Action.Create a) = Some x0);
  check_bool "non-access create has none" true
    (Action.object_of schema.Schema.sys (Action.Create (txn [ 0 ])) = None);
  check_bool "commit has none" true
    (Action.object_of schema.Schema.sys (Action.Commit a) = None)

let t_value_projections () =
  check_int "int_exn" 7 (Value.int_exn (Value.Int 7));
  check_bool "bool_exn" true (Value.bool_exn (Value.Bool true));
  Alcotest.check_raises "int_exn bad" (Invalid_argument "Value.int_exn: OK")
    (fun () -> ignore (Value.int_exn Value.Ok));
  check_bool "equal structural" true
    (Value.equal
       (Value.Pair (Value.Int 1, Value.List [ Value.Ok ]))
       (Value.Pair (Value.Int 1, Value.List [ Value.Ok ])));
  check_bool "compare distinguishes" true
    (Value.compare (Value.Int 1) (Value.Int 2) <> 0)

let t_pp () =
  Alcotest.(check string) "action pp" "COMMIT(T0.2)"
    (Action.to_string (Action.Commit t));
  Alcotest.(check string) "nested txn pp" "T0.2.1" (Txn_id.to_string c);
  Alcotest.(check string) "root pp" "T0" (Txn_id.to_string Txn_id.root);
  Alcotest.(check string) "value pp" "(1, [OK; true])"
    (Value.to_string (Value.Pair (Value.Int 1, Value.List [ Value.Ok; Value.Bool true ])))

let suite =
  ( "action",
    [
      Alcotest.test_case "classification" `Quick t_classification;
      Alcotest.test_case "transaction" `Quick t_transaction;
      Alcotest.test_case "high/low transaction" `Quick t_high_low;
      Alcotest.test_case "object_of" `Quick t_object_of;
      Alcotest.test_case "value projections" `Quick t_value_projections;
      Alcotest.test_case "pretty printing" `Quick t_pp;
    ] )
