(* Differential property tests for the incremental cycle detector
   (Pearce-Kelly maintained topological order, lib/sg/graph.ml):
   against the from-scratch three-color DFS it replaced, on random
   edge streams and on the adversarial shapes that exercise each
   branch of the limited two-way search. *)
open Core
open Util

let n i = txn [ i ]

(* Every consecutive pair of the reported cycle (wrapping) is an edge
   of the graph. *)
let genuine_cycle g cyc =
  cyc <> []
  &&
  let arr = Array.of_list cyc in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      if not (Graph.mem_edge g a arr.((i + 1) mod Array.length arr)) then
        ok := false)
    arr;
  !ok

(* [order] lists every node exactly once and puts each edge forward. *)
let valid_topo g order =
  List.length order = Graph.n_nodes g
  &&
  let pos = Txn_id.Tbl.create 16 in
  List.iteri (fun i t -> Txn_id.Tbl.replace pos t i) order;
  Txn_id.Tbl.length pos = Graph.n_nodes g
  && Graph.fold_edges g
       (fun acc a b ->
         acc && Txn_id.Tbl.find pos a < Txn_id.Tbl.find pos b)
       true

(* One random stream, checked at every prefix: (a) verdict agreement
   with the from-scratch DFS, (b) validity of the maintained order,
   (c) genuineness of every reported cycle.  Streams draw endpoint
   pairs uniformly, so they plant self-loops, duplicates, forward and
   back edges in random proportions. *)
let stream_ok ~seed ~size ~len =
  let rng = Rng.create seed in
  let g = Graph.create () in
  let ok = ref true in
  let insist b = if not b then ok := false in
  for _ = 1 to len do
    let a = Rng.int rng size and b = Rng.int rng size in
    (match Graph.add_edge_checked g (n a) (n b) with
    | Graph.Ok moved -> insist (moved >= 0)
    | Graph.Cycle c -> insist (genuine_cycle g c));
    let scratch = Graph.find_cycle_scratch g in
    (* (a) the O(1) incremental verdict vs the full DFS. *)
    insist (Graph.is_acyclic g = (scratch = None));
    (match Graph.find_cycle g with
    | None -> insist (scratch = None)
    | Some c -> insist (genuine_cycle g c));
    (* (b) while acyclic, the maintained order is a topological order;
       once cyclic it is gone for good. *)
    match Graph.order g with
    | Some order -> insist (Graph.is_acyclic g && valid_topo g order)
    | None -> insist (not (Graph.is_acyclic g))
  done;
  !ok

let prop_differential =
  QCheck.Test.make ~name:"incremental = from-scratch at every prefix"
    ~count:120
    QCheck.(pair (int_bound 100_000) (int_range 2 14))
    (fun (seed, size) -> stream_ok ~seed ~size ~len:(3 * size))

(* Pure DAG streams (edges only from lower to higher index): no
   insertion may ever report a cycle, the order stays valid
   throughout, and the O(1) acyclicity verdict never flips. *)
let prop_dag_stays_acyclic =
  QCheck.Test.make ~name:"DAG streams never trip the detector" ~count:120
    QCheck.(pair (int_bound 100_000) (int_range 2 12))
    (fun (seed, size) ->
      let rng = Rng.create seed in
      let g = Graph.create () in
      let ok = ref true in
      for _ = 0 to 3 * size do
        let i = Rng.int rng (size - 1) in
        let j = i + 1 + Rng.int rng (size - i - 1) in
        (match Graph.add_edge_checked g (n i) (n j) with
        | Graph.Ok _ -> ()
        | Graph.Cycle _ -> ok := false);
        if not (Graph.is_acyclic g) then ok := false;
        match Graph.order g with
        | Some order -> if not (valid_topo g order) then ok := false
        | None -> ok := false
      done;
      !ok && Graph.find_cycle_scratch g = None)

(* Insert a chain in reverse (each edge lands against the maintained
   order, forcing a reorder of the affected region), then close the
   cycle: the back edge is found by the limited search inside the
   region it just reordered. *)
let t_back_edge_in_reorder_region () =
  let g = Graph.create () in
  List.iter
    (fun (a, b) ->
      match Graph.add_edge_checked g (n a) (n b) with
      | Graph.Ok _ -> ()
      | Graph.Cycle _ -> Alcotest.fail "chain edge reported as cycle")
    [ (3, 4); (2, 3); (1, 2); (0, 1) ];
  check_bool "reverse insertion forced reorders" true (Graph.reorders g > 0);
  (match Graph.order g with
  | Some order ->
      check_bool "order valid after reorders" true (valid_topo g order)
  | None -> Alcotest.fail "order lost while acyclic");
  (match Graph.add_edge_checked g (n 4) (n 0) with
  | Graph.Cycle c ->
      check_int "full chain cycle" 5 (List.length c);
      check_bool "genuine" true (genuine_cycle g c)
  | Graph.Ok _ -> Alcotest.fail "closing edge not detected");
  check_bool "edge kept" true (Graph.mem_edge g (n 4) (n 0));
  check_bool "order gone" true (Graph.order g = None);
  check_bool "scratch agrees" true (Graph.find_cycle_scratch g <> None)

let t_self_loop () =
  let g = Graph.create () in
  Graph.add_edge g (n 0) (n 1);
  (match Graph.add_edge_checked g (n 1) (n 1) with
  | Graph.Cycle [ t ] -> check_bool "loop witness" true (Txn_id.equal t (n 1))
  | _ -> Alcotest.fail "self-loop not reported as unit cycle");
  check_bool "cyclic" false (Graph.is_acyclic g);
  check_int "loop edge counted once" 2 (Graph.n_edges g);
  (* Duplicate self-loop: ignored, verdict unchanged. *)
  check_bool "dup self-loop ignored" true
    (Graph.add_edge_checked g (n 1) (n 1) = Graph.Ok 0);
  check_int "edges stable" 2 (Graph.n_edges g)

(* Satellite regression: the cached counters are pinned after
   duplicate insertions and agree with the materialized lists the hot
   paths no longer build. *)
let t_duplicate_edge_counters () =
  let g = Graph.create () in
  Graph.add_edge g (n 0) (n 1);
  Graph.add_edge g (n 1) (n 2);
  let order_before = Graph.order g in
  for _ = 1 to 5 do
    check_bool "duplicate is Ok 0" true
      (Graph.add_edge_checked g (n 0) (n 1) = Graph.Ok 0)
  done;
  check_int "n_edges pinned" 2 (Graph.n_edges g);
  check_int "n_nodes pinned" 3 (Graph.n_nodes g);
  check_int "n_edges agrees with edges list" 2 (List.length (Graph.edges g));
  check_int "n_nodes agrees with nodes list" 3 (List.length (Graph.nodes g));
  check_bool "order untouched by duplicates" true
    (Graph.order g = order_before);
  (* Fold-based iteration sees exactly the deduplicated edges. *)
  check_int "fold_edges count" 2 (Graph.fold_edges g (fun k _ _ -> k + 1) 0);
  check_int "fold_nodes count" 3 (Graph.fold_nodes g (fun k _ -> k + 1) 0)

(* A stream whose very last edge closes the only cycle: every prefix
   is acyclic (verdict and order agree with scratch), the final edge
   trips all detectors at once. *)
let t_cycle_closed_by_last_edge () =
  let g = Graph.create () in
  let chain = [ (0, 1); (1, 2); (2, 3); (0, 3); (1, 3) ] in
  List.iter
    (fun (a, b) ->
      (match Graph.add_edge_checked g (n a) (n b) with
      | Graph.Ok _ -> ()
      | Graph.Cycle _ -> Alcotest.fail "premature cycle");
      check_bool "prefix acyclic" true
        (Graph.is_acyclic g && Graph.find_cycle_scratch g = None))
    chain;
  match Graph.add_edge_checked g (n 3) (n 0) with
  | Graph.Cycle c ->
      check_bool "genuine" true (genuine_cycle g c);
      check_bool "incremental verdict flipped" false (Graph.is_acyclic g);
      check_bool "scratch verdict flipped" true
        (Graph.find_cycle_scratch g <> None)
  | Graph.Ok _ -> Alcotest.fail "last edge not detected"

(* After the first cycle the detector degrades to plain reachability:
   later cycle-closing edges are still reported, later safe edges are
   not, and the from-scratch verdict keeps agreeing. *)
let t_detection_after_first_cycle () =
  let g = Graph.create () in
  Graph.add_edge g (n 0) (n 1);
  (match Graph.add_edge_checked g (n 1) (n 0) with
  | Graph.Cycle _ -> ()
  | Graph.Ok _ -> Alcotest.fail "first cycle missed");
  (* A disjoint safe edge. *)
  (match Graph.add_edge_checked g (n 2) (n 3) with
  | Graph.Ok _ -> ()
  | Graph.Cycle _ -> Alcotest.fail "safe edge misreported");
  (* A second, disjoint cycle. *)
  (match Graph.add_edge_checked g (n 3) (n 2) with
  | Graph.Cycle c -> check_bool "second cycle genuine" true (genuine_cycle g c)
  | Graph.Ok _ -> Alcotest.fail "second cycle missed");
  check_bool "scratch still agrees" true (Graph.find_cycle_scratch g <> None)

(* The maintained order of a monitor-shaped insertion pattern matches
   what a final Kahn sort would certify: both are valid, though not
   necessarily equal. *)
let t_order_vs_topological_sort () =
  let rng = Rng.create 77 in
  let g = Graph.create () in
  for _ = 0 to 40 do
    let i = Rng.int rng 11 in
    let j = i + 1 + Rng.int rng (12 - i - 1) in
    Graph.add_edge g (n i) (n j)
  done;
  match (Graph.order g, Graph.topological_sort g) with
  | Some o, Some k ->
      check_bool "maintained order valid" true (valid_topo g o);
      check_bool "kahn order valid" true (valid_topo g k)
  | _ -> Alcotest.fail "acyclic graph lost an order"

let suite =
  ( "graph-incremental",
    [
      QCheck_alcotest.to_alcotest prop_differential;
      QCheck_alcotest.to_alcotest prop_dag_stays_acyclic;
      Alcotest.test_case "back edge inside a reorder region" `Quick
        t_back_edge_in_reorder_region;
      Alcotest.test_case "self loop" `Quick t_self_loop;
      Alcotest.test_case "duplicate edges pin the counters" `Quick
        t_duplicate_edge_counters;
      Alcotest.test_case "cycle closed by the last edge" `Quick
        t_cycle_closed_by_last_edge;
      Alcotest.test_case "detection survives the first cycle" `Quick
        t_detection_after_first_cycle;
      Alcotest.test_case "maintained order vs final sort" `Quick
        t_order_vs_topological_sort;
    ] )
