open Core
open Util

let rec max_depth = function
  | Program.Access _ -> 0
  | Program.Node (_, children) ->
      1 + List.fold_left (fun m p -> max m (max_depth p)) 0 children

let rec max_fanout = function
  | Program.Access _ -> 0
  | Program.Node (_, children) ->
      List.fold_left
        (fun m p -> max m (max_fanout p))
        (List.length children) children

let t_shape_bounds () =
  List.iter
    (fun seed ->
      let p = { Gen.default with n_top = 7; depth = 3; fanout = 4 } in
      let forest, _ = Gen.forest_and_schema Gen.registers ~seed p in
      check_int "n_top" 7 (List.length forest);
      List.iter
        (fun prog ->
          check_bool "depth bound" true (max_depth prog <= p.Gen.depth);
          check_bool "fanout bound" true (max_fanout prog <= p.Gen.fanout))
        forest)
    [ 1; 2; 3 ]

let t_objects_declared () =
  List.iter
    (fun (gen, name) ->
      let forest, schema =
        Gen.forest_and_schema gen ~seed:11 { Gen.default with n_objects = 3 }
      in
      check_int (name ^ " object count") 3 (List.length schema.Schema.objects);
      List.iter
        (fun prog ->
          List.iter
            (fun (x, _) ->
              check_bool (name ^ " access hits declared object") true
                (List.exists (Obj_id.equal x) schema.Schema.objects))
            (Program.accesses prog))
        forest)
    [ (Gen.registers, "registers"); (Gen.counters, "counters"); (Gen.mixed, "mixed") ]

let t_determinism () =
  let p = Gen.default in
  let f1, _ = Gen.forest_and_schema Gen.registers ~seed:42 p in
  let f2, _ = Gen.forest_and_schema Gen.registers ~seed:42 p in
  check_bool "same seed same forest" true (f1 = f2);
  let f3, _ = Gen.forest_and_schema Gen.registers ~seed:43 p in
  check_bool "different seeds differ" true (f1 <> f3)

let t_read_ratio () =
  let count_kind forest =
    let reads = ref 0 and writes = ref 0 in
    List.iter
      (fun prog ->
        List.iter
          (fun (_, op) ->
            match op with
            | Datatype.Read -> incr reads
            | Datatype.Write _ -> incr writes
            | _ -> ())
          (Program.accesses prog))
      forest;
    (!reads, !writes)
  in
  let f_reads, _ =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 30; read_ratio = 1.0 }
  in
  let r, w = count_kind f_reads in
  check_bool "all reads" true (r > 0 && w = 0);
  let f_writes, _ =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 30; read_ratio = 0.0 }
  in
  let r, w = count_kind f_writes in
  check_bool "all writes" true (w > 0 && r = 0)

let t_scenarios_run () =
  let check_scenario name (forest, schema) factory =
    let r = run_protocol ~seed:9 schema factory forest in
    check_bool (name ^ " wf") true
      (Simple_db.is_well_formed schema.Schema.sys r.Runtime.trace);
    check_bool (name ^ " correct") true
      (Checker.serially_correct schema r.Runtime.trace)
  in
  check_scenario "banking"
    (Scenario.banking ~n_accounts:4 ~n_transfers:5 ~seed:1)
    Undo_object.factory;
  check_scenario "hotspot"
    (Scenario.hotspot_counter ~n_txns:6 ~n_counters:2 ~theta:0.9 ~seed:2)
    Undo_object.factory;
  check_scenario "rw-equivalent"
    (Scenario.rw_equivalent_counter ~n_txns:6 ~n_counters:2 ~theta:0.9 ~seed:3)
    Moss_object.factory;
  check_scenario "queue"
    (Scenario.queue_producers_consumers ~n_producers:3 ~n_consumers:3 ~seed:4)
    Undo_object.factory

let t_zipf_concentrates () =
  (* With high skew, most accesses hit object 0. *)
  let forest, _ =
    Gen.forest_and_schema Gen.registers ~seed:5
      { Gen.default with n_top = 150; depth = 1; n_objects = 8; theta = 1.2 }
  in
  let hits = Hashtbl.create 8 in
  List.iter
    (fun prog ->
      List.iter
        (fun (x, _) ->
          Hashtbl.replace hits x (1 + Option.value ~default:0 (Hashtbl.find_opt hits x)))
        (Program.accesses prog))
    forest;
  let hot = Option.value ~default:0 (Hashtbl.find_opt hits (Obj_id.indexed "x" 0)) in
  let total = Hashtbl.fold (fun _ c acc -> acc + c) hits 0 in
  check_bool "hot object dominates" true (hot * 3 > total)

let suite =
  ( "workload",
    [
      Alcotest.test_case "shape bounds" `Quick t_shape_bounds;
      Alcotest.test_case "objects declared" `Quick t_objects_declared;
      Alcotest.test_case "determinism" `Quick t_determinism;
      Alcotest.test_case "read ratio extremes" `Quick t_read_ratio;
      Alcotest.test_case "scenarios run correctly" `Quick t_scenarios_run;
      Alcotest.test_case "zipf concentrates" `Quick t_zipf_concentrates;
    ] )
