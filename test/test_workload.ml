open Core
open Util

let rec max_depth = function
  | Program.Access _ -> 0
  | Program.Node (_, children) ->
      1 + List.fold_left (fun m p -> max m (max_depth p)) 0 children

let rec max_fanout = function
  | Program.Access _ -> 0
  | Program.Node (_, children) ->
      List.fold_left
        (fun m p -> max m (max_fanout p))
        (List.length children) children

let t_shape_bounds () =
  List.iter
    (fun seed ->
      let p = { Gen.default with n_top = 7; depth = 3; fanout = 4 } in
      let forest, _ = Gen.forest_and_schema Gen.registers ~seed p in
      check_int "n_top" 7 (List.length forest);
      List.iter
        (fun prog ->
          check_bool "depth bound" true (max_depth prog <= p.Gen.depth);
          check_bool "fanout bound" true (max_fanout prog <= p.Gen.fanout))
        forest)
    [ 1; 2; 3 ]

let t_objects_declared () =
  List.iter
    (fun (gen, name) ->
      let forest, schema =
        Gen.forest_and_schema gen ~seed:11 { Gen.default with n_objects = 3 }
      in
      check_int (name ^ " object count") 3 (List.length schema.Schema.objects);
      List.iter
        (fun prog ->
          List.iter
            (fun (x, _) ->
              check_bool (name ^ " access hits declared object") true
                (List.exists (Obj_id.equal x) schema.Schema.objects))
            (Program.accesses prog))
        forest)
    [ (Gen.registers, "registers"); (Gen.counters, "counters"); (Gen.mixed, "mixed") ]

let t_determinism () =
  let p = Gen.default in
  let f1, _ = Gen.forest_and_schema Gen.registers ~seed:42 p in
  let f2, _ = Gen.forest_and_schema Gen.registers ~seed:42 p in
  check_bool "same seed same forest" true (f1 = f2);
  let f3, _ = Gen.forest_and_schema Gen.registers ~seed:43 p in
  check_bool "different seeds differ" true (f1 <> f3)

let t_read_ratio () =
  let count_kind forest =
    let reads = ref 0 and writes = ref 0 in
    List.iter
      (fun prog ->
        List.iter
          (fun (_, op) ->
            match op with
            | Datatype.Read -> incr reads
            | Datatype.Write _ -> incr writes
            | _ -> ())
          (Program.accesses prog))
      forest;
    (!reads, !writes)
  in
  let f_reads, _ =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 30; read_ratio = 1.0 }
  in
  let r, w = count_kind f_reads in
  check_bool "all reads" true (r > 0 && w = 0);
  let f_writes, _ =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 30; read_ratio = 0.0 }
  in
  let r, w = count_kind f_writes in
  check_bool "all writes" true (w > 0 && r = 0)

let t_scenarios_run () =
  let check_scenario name (forest, schema) factory =
    let r = run_protocol ~seed:9 schema factory forest in
    check_bool (name ^ " wf") true
      (Simple_db.is_well_formed schema.Schema.sys r.Runtime.trace);
    check_bool (name ^ " correct") true
      (Checker.serially_correct schema r.Runtime.trace)
  in
  check_scenario "banking"
    (Scenario.banking ~n_accounts:4 ~n_transfers:5 ~seed:1)
    Undo_object.factory;
  check_scenario "hotspot"
    (Scenario.hotspot_counter ~n_txns:6 ~n_counters:2 ~theta:0.9 ~seed:2)
    Undo_object.factory;
  check_scenario "rw-equivalent"
    (Scenario.rw_equivalent_counter ~n_txns:6 ~n_counters:2 ~theta:0.9 ~seed:3)
    Moss_object.factory;
  check_scenario "queue"
    (Scenario.queue_producers_consumers ~n_producers:3 ~n_consumers:3 ~seed:4)
    Undo_object.factory

let t_zipf_concentrates () =
  (* With high skew, most accesses hit object 0. *)
  let forest, _ =
    Gen.forest_and_schema Gen.registers ~seed:5
      { Gen.default with n_top = 150; depth = 1; n_objects = 8; theta = 1.2 }
  in
  let hits = Hashtbl.create 8 in
  List.iter
    (fun prog ->
      List.iter
        (fun (x, _) ->
          Hashtbl.replace hits x (1 + Option.value ~default:0 (Hashtbl.find_opt hits x)))
        (Program.accesses prog))
    forest;
  let hot = Option.value ~default:0 (Hashtbl.find_opt hits (Obj_id.indexed "x" 0)) in
  let total = Hashtbl.fold (fun _ c acc -> acc + c) hits 0 in
  check_bool "hot object dominates" true (hot * 3 > total)

(* ----- weighted grammar and shape presets ----- *)

let is_observer = function
  | Datatype.Read | Datatype.Get | Datatype.Balance | Datatype.Member _
  | Datatype.Size | Datatype.Kread _ | Datatype.Vread ->
      true
  | _ -> false

let weighted_accesses weights seed profile =
  let forest, objects = Gen.weighted ~weights (Rng.create seed) profile in
  let dt_name x =
    match List.find_opt (fun (y, _) -> Obj_id.equal x y) objects with
    | Some (_, dt) -> dt.Datatype.dt_name
    | None -> Alcotest.fail ("undeclared object " ^ Obj_id.name x)
  in
  List.concat_map
    (fun p -> List.map (fun (x, op) -> (dt_name x, op)) (Program.accesses p))
    forest

(* Pure-observer weights generate only observer operations — except on
   types with no observer in their signature (the queue), where the
   generator falls back to a supported class.  Contended weights are
   mutation-dominated. *)
let t_weighted_distribution () =
  let profile = { Gen.default with n_top = 40; n_objects = 6 } in
  let obs_ops = weighted_accesses Gen.observers 3 profile in
  check_bool "observer ops generated" true (obs_ops <> []);
  check_bool "observers weights yield only observers" true
    (List.for_all
       (fun (dt_name, op) -> dt_name = "queue" || is_observer op)
       obs_ops);
  let cont_ops = weighted_accesses Gen.contended 3 profile in
  let mutations =
    List.length (List.filter (fun (_, o) -> not (is_observer o)) cont_ops)
  in
  check_bool "contended weights mutation-dominated" true
    (2 * mutations > List.length cont_ops)

(* The weighted generator respects the profile's structural bounds and
   only touches declared objects, like the fixed-grammar generators. *)
let t_weighted_bounds () =
  List.iter
    (fun seed ->
      let profile = { Gen.default with n_top = 7; depth = 3; fanout = 4 } in
      let forest, objects = Gen.weighted (Rng.create seed) profile in
      check_int "weighted n_top" 7 (List.length forest);
      List.iter
        (fun prog ->
          check_bool "weighted depth bound" true
            (max_depth prog <= profile.Gen.depth);
          check_bool "weighted fanout bound" true
            (max_fanout prog <= profile.Gen.fanout);
          List.iter
            (fun (x, _) ->
              check_bool "weighted access hits declared object" true
                (List.exists (fun (y, _) -> Obj_id.equal x y) objects))
            (Program.accesses prog))
        forest)
    [ 1; 2; 3 ]

(* A weighted forest roundtrips through the Program_io text format:
   rendering with dtype_decl and parsing back preserves the forest and
   the objects' types. *)
let t_weighted_program_io_roundtrip () =
  let forest, objects =
    Gen.weighted (Rng.create 9) { Gen.default with n_top = 6; n_objects = 5 }
  in
  let text =
    Program_io.to_string
      ~objects:(List.map (fun (x, dt) -> (x, Program_io.dtype_decl dt)) objects)
      forest
  in
  match Program_io.parse text with
  | Error e -> Alcotest.fail e
  | Ok (forest', schema') ->
      check_bool "forest roundtrips" true (forest = forest');
      check_int "object count roundtrips" (List.length objects)
        (List.length schema'.Schema.objects);
      List.iter
        (fun (x, dt) ->
          let dt' = schema'.Schema.dtype_of x in
          check_bool
            ("type of " ^ Obj_id.name x ^ " roundtrips")
            true
            (dt.Datatype.dt_name = dt'.Datatype.dt_name
            && Value.equal dt.Datatype.init dt'.Datatype.init))
        objects

(* The adversarial shape presets hold their advertised structure. *)
let t_shape_presets () =
  check_int "lock-heavy is one hot object" 1 Gen.lock_heavy.Gen.n_objects;
  check_bool "lock-heavy is contention-biased" true
    (Gen.lock_heavy.Gen.read_ratio < 0.5);
  check_bool "deep-nesting nests deeper than default" true
    (Gen.deep_nesting.Gen.depth > Gen.default.Gen.depth);
  List.iter
    (fun (name, profile) ->
      let forest, _ = Gen.registers (Rng.create 4) profile in
      check_int (name ^ " n_top") profile.Gen.n_top (List.length forest);
      List.iter
        (fun prog ->
          check_bool (name ^ " depth bound") true
            (max_depth prog <= profile.Gen.depth))
        forest)
    [
      ("lock-heavy", Gen.lock_heavy);
      ("deep-nesting", Gen.deep_nesting);
      ("abort-storm", Gen.abort_storm);
    ]

(* ----- distribution properties: samplers match their nominal laws ----- *)

(* Empirical frequency of each outcome over [draws] trials. *)
let frequencies draws sample =
  let counts = Hashtbl.create 16 in
  for _ = 1 to draws do
    let k = sample () in
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  fun k ->
    float (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. float draws

(* Zipf draws follow the nominal law P(i) ∝ 1/(i+1)^θ within a small
   absolute tolerance (50k draws put the sampling error well below it). *)
let t_zipf_matches_nominal () =
  let n = 8 and theta = 0.9 and draws = 50_000 in
  let rng = Rng.create 17 in
  let freq = frequencies draws (fun () -> Rng.zipf rng ~n ~theta) in
  let h =
    List.fold_left ( +. ) 0.0
      (List.init n (fun i -> 1.0 /. (float (i + 1) ** theta)))
  in
  for i = 0 to n - 1 do
    let nominal = 1.0 /. (float (i + 1) ** theta) /. h in
    check_bool
      (Printf.sprintf "zipf rank %d near nominal %.3f (got %.3f)" i nominal
         (freq i))
      true
      (Float.abs (freq i -. nominal) < 0.015)
  done

(* At theta = 0 the Zipf sampler degenerates to the uniform law. *)
let t_zipf_uniform_at_zero () =
  let n = 6 and draws = 30_000 in
  let rng = Rng.create 23 in
  let freq = frequencies draws (fun () -> Rng.zipf rng ~n ~theta:0.0) in
  for i = 0 to n - 1 do
    check_bool
      (Printf.sprintf "uniform rank %d (got %.3f)" i (freq i))
      true
      (Float.abs (freq i -. (1.0 /. float n)) < 0.015)
  done

(* The weighted class sampler hits its nominal class distribution on a
   type supporting every drawn class directly (register: observe →
   Read, overwrite → Write; a 3:1 mix must come out 3/4 : 1/4). *)
let t_weighted_sampler_nominal () =
  let dt = Register.make () in
  let w = { Gen.w_observe = 3; w_update = 0; w_overwrite = 1; w_mutate = 0 } in
  let rng = Rng.create 29 in
  let draws = 40_000 in
  let freq =
    frequencies draws (fun () ->
        match Gen.sample_weighted rng w dt with
        | Datatype.Read -> "observe"
        | Datatype.Write _ -> "overwrite"
        | _ -> "other")
  in
  check_bool "no off-grammar register ops" true (freq "other" = 0.0);
  check_bool
    (Printf.sprintf "reads near 0.75 (got %.3f)" (freq "observe"))
    true
    (Float.abs (freq "observe" -. 0.75) < 0.015);
  check_bool
    (Printf.sprintf "writes near 0.25 (got %.3f)" (freq "overwrite"))
    true
    (Float.abs (freq "overwrite" -. 0.25) < 0.015)

(* The documented nearest-class fallback: a class the type lacks stays
   in-family (mutate-only on a register degrades to overwrites, pure
   observers on a queue degrade to queue mutators) and the sampler
   rejects an all-zero weight vector. *)
let t_weighted_sampler_fallback () =
  let rng = Rng.create 31 in
  let mutate_only =
    { Gen.w_observe = 0; w_update = 0; w_overwrite = 0; w_mutate = 1 }
  in
  for _ = 1 to 200 do
    match Gen.sample_weighted rng mutate_only (Register.make ()) with
    | Datatype.Write _ -> ()
    | op ->
        Alcotest.failf "register mutate fallback produced %s"
          (Format.asprintf "%a" Datatype.pp_op op)
  done;
  for _ = 1 to 200 do
    match Gen.sample_weighted rng Gen.observers (Fifo_queue.make ()) with
    | Datatype.Enqueue _ | Datatype.Dequeue -> ()
    | op ->
        Alcotest.failf "queue observer fallback produced %s"
          (Format.asprintf "%a" Datatype.pp_op op)
  done;
  let zero = { Gen.w_observe = 0; w_update = 0; w_overwrite = 0; w_mutate = 0 } in
  check_bool "zero weights rejected" true
    (match Gen.sample_weighted rng zero (Register.make ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The SmallBank kind sampler follows the mix weights, and an all-zero
   mix is rejected. *)
let t_smallbank_mix_nominal () =
  let m = Gen.smallbank_default in
  let total =
    float
      (m.Gen.m_balance + m.Gen.m_deposit + m.Gen.m_write_check
     + m.Gen.m_amalgamate + m.Gen.m_payment)
  in
  let rng = Rng.create 37 in
  let freq =
    frequencies 40_000 (fun () ->
        match Gen.sample_kind rng m with
        | Gen.Balance -> "balance"
        | Gen.Deposit -> "deposit"
        | Gen.Write_check -> "write-check"
        | Gen.Amalgamate -> "amalgamate"
        | Gen.Payment -> "payment")
  in
  List.iter
    (fun (name, weight) ->
      let nominal = float weight /. total in
      check_bool
        (Printf.sprintf "%s near %.3f (got %.3f)" name nominal (freq name))
        true
        (Float.abs (freq name -. nominal) < 0.015))
    [
      ("balance", m.Gen.m_balance);
      ("deposit", m.Gen.m_deposit);
      ("write-check", m.Gen.m_write_check);
      ("amalgamate", m.Gen.m_amalgamate);
      ("payment", m.Gen.m_payment);
    ];
  let zero =
    { Gen.m_balance = 0; m_deposit = 0; m_write_check = 0; m_amalgamate = 0;
      m_payment = 0 }
  in
  check_bool "zero mix rejected" true
    (match Gen.sample_kind rng zero with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* SmallBank structure: registers only, read/write accesses only, the
   account floor of two holds even when the profile asks for one
   object, n_top transactions, and every kind's shape fits the
   benchmark bounds (at most two distinct accounts, at most four
   accesses per transaction). *)
let t_smallbank_structure () =
  let p = { Gen.smallbank_profile with n_top = 20; n_objects = 1 } in
  let forest, objects = Gen.smallbank (Rng.create 41) p in
  check_int "smallbank n_top" 20 (List.length forest);
  check_int "account floor of two" 2 (List.length objects);
  List.iter
    (fun (_, dt) ->
      Alcotest.(check string) "accounts are registers" "register"
        dt.Datatype.dt_name)
    objects;
  List.iter
    (fun prog ->
      let accs = Program.accesses prog in
      check_bool "at most four accesses" true (List.length accs <= 4);
      let distinct =
        List.sort_uniq Obj_id.compare (List.map fst accs)
      in
      check_bool "at most two distinct accounts" true
        (List.length distinct <= 2);
      List.iter
        (fun (x, op) ->
          check_bool "access hits a declared account" true
            (List.exists (fun (y, _) -> Obj_id.equal x y) objects);
          match op with
          | Datatype.Read | Datatype.Write _ -> ()
          | op ->
              Alcotest.failf "smallbank produced %s"
                (Format.asprintf "%a" Datatype.pp_op op))
        accs)
    forest

(* SmallBank is seed-deterministic and, under its preset's Zipf skew,
   concentrates accesses on the hot account. *)
let t_smallbank_deterministic_and_skewed () =
  let p = { Gen.smallbank_profile with n_top = 120; n_objects = 8 } in
  let f1, o1 = Gen.smallbank (Rng.create 43) p in
  let f2, o2 = Gen.smallbank (Rng.create 43) p in
  check_bool "same seed same forest" true (f1 = f2 && List.map fst o1 = List.map fst o2);
  let f3, _ = Gen.smallbank (Rng.create 44) p in
  check_bool "different seeds differ" true (f1 <> f3);
  let hits = Hashtbl.create 8 in
  List.iter
    (fun prog ->
      List.iter
        (fun (x, _) ->
          Hashtbl.replace hits x
            (1 + Option.value ~default:0 (Hashtbl.find_opt hits x)))
        (Program.accesses prog))
    f1;
  let hot =
    Option.value ~default:0 (Hashtbl.find_opt hits (Obj_id.indexed "acct" 0))
  in
  let total = Hashtbl.fold (fun _ c acc -> acc + c) hits 0 in
  check_bool
    (Printf.sprintf "hot account dominates (hot=%d total=%d)" hot total)
    true
    (hot * 4 > total)

(* The contended family is adversarial for weak stores, not for
   verified protocols: a SmallBank forest under undo logging is
   well-formed and serially correct. *)
let t_smallbank_runs_correctly () =
  let forest, schema =
    Gen.forest_and_schema Gen.smallbank ~seed:6
      { Gen.smallbank_profile with n_top = 10 }
  in
  let r = run_protocol ~seed:9 schema Undo_object.factory forest in
  check_bool "smallbank wf" true
    (Simple_db.is_well_formed schema.Schema.sys r.Runtime.trace);
  check_bool "smallbank correct" true
    (Checker.serially_correct schema r.Runtime.trace)

let suite =
  ( "workload",
    [
      Alcotest.test_case "shape bounds" `Quick t_shape_bounds;
      Alcotest.test_case "objects declared" `Quick t_objects_declared;
      Alcotest.test_case "determinism" `Quick t_determinism;
      Alcotest.test_case "read ratio extremes" `Quick t_read_ratio;
      Alcotest.test_case "scenarios run correctly" `Quick t_scenarios_run;
      Alcotest.test_case "zipf concentrates" `Quick t_zipf_concentrates;
      Alcotest.test_case "weighted distribution" `Quick t_weighted_distribution;
      Alcotest.test_case "weighted bounds" `Quick t_weighted_bounds;
      Alcotest.test_case "weighted program_io roundtrip" `Quick
        t_weighted_program_io_roundtrip;
      Alcotest.test_case "shape presets" `Quick t_shape_presets;
      Alcotest.test_case "zipf matches nominal law" `Quick
        t_zipf_matches_nominal;
      Alcotest.test_case "zipf uniform at zero skew" `Quick
        t_zipf_uniform_at_zero;
      Alcotest.test_case "weighted sampler matches nominal" `Quick
        t_weighted_sampler_nominal;
      Alcotest.test_case "weighted sampler fallback" `Quick
        t_weighted_sampler_fallback;
      Alcotest.test_case "smallbank mix matches nominal" `Quick
        t_smallbank_mix_nominal;
      Alcotest.test_case "smallbank structure" `Quick t_smallbank_structure;
      Alcotest.test_case "smallbank deterministic and skewed" `Quick
        t_smallbank_deterministic_and_skewed;
      Alcotest.test_case "smallbank runs correctly when verified" `Quick
        t_smallbank_runs_correctly;
    ] )
