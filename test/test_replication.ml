open Core
open Util

let lx = Obj_id.make "LX"
let ly = Obj_id.make "LY"

let logical_forest seed n_txns =
  let rng = Rng.create seed in
  List.init n_txns (fun _ ->
      Program.seq
        (List.init
           (1 + Rng.int rng 3)
           (fun _ ->
             let x = if Rng.bool rng then lx else ly in
             if Rng.bool rng then Program.access x Datatype.Read
             else Program.access x (Datatype.Write (Value.Int (1 + Rng.int rng 9))))))

let cfg ~r ~w = { Replication.n_replicas = 3; read_quorum = r; write_quorum = w }

let t_transform_shape () =
  let forest = [ Program.access lx (Datatype.Write (Value.Int 5)) ] in
  let plan = Replication.replicate (cfg ~r:2 ~w:2) ~objects:[ lx ] forest in
  (* The write becomes a Par node with two replica accesses. *)
  (match plan.Replication.physical_forest with
  | [ Program.Node (Program.Par, children) ] ->
      check_int "write quorum size" 2 (List.length children);
      List.iter
        (fun c ->
          match c with
          | Program.Access (x, Datatype.Vwrite (1, Value.Int 5)) ->
              check_bool "replica name" true
                (String.length (Obj_id.name x) > 2)
          | _ -> Alcotest.fail "expected versioned write access")
        children
  | _ -> Alcotest.fail "expected transformed node");
  (* Bookkeeping maps the node back. *)
  match plan.Replication.logical_of (txn [ 0 ]) with
  | Some (x, Replication.L_write (1, Value.Int 5)) ->
      check_bool "logical object" true (Obj_id.equal x lx)
  | _ -> Alcotest.fail "logical_of missing"

let t_bad_config () =
  Alcotest.check_raises "quorum out of range"
    (Invalid_argument "Replication.replicate: quorums out of range")
    (fun () ->
      ignore (Replication.replicate (cfg ~r:4 ~w:1) ~objects:[ lx ] []));
  Alcotest.check_raises "foreign op"
    (Invalid_argument "Replication.replicate: not a read/write access: get")
    (fun () ->
      ignore
        (Replication.replicate (cfg ~r:1 ~w:1) ~objects:[ lx ]
           [ Program.access lx Datatype.Get ]))

(* Physical serializability + one-copy under intersecting quorums. *)
let t_intersecting_quorums_one_copy () =
  List.iter
    (fun (r, w) ->
      List.iter
        (fun seed ->
          let plan =
            Replication.replicate (cfg ~r ~w) ~objects:[ lx; ly ]
              (logical_forest seed 6)
          in
          let res =
            run_protocol ~seed plan.Replication.physical_schema
              Undo_object.factory plan.Replication.physical_forest
          in
          check_bool "physical serializability" true
            (Checker.serially_correct plan.Replication.physical_schema
               res.Runtime.trace);
          if res.Runtime.stats.deadlock_aborts = 0 then
            match Replication.check_one_copy plan res.Runtime.trace with
            | Ok () -> ()
            | Error v ->
                Alcotest.failf "one-copy violated (r=%d w=%d seed=%d): %a" r w
                  seed Replication.pp_violation v)
        (List.init 8 (fun i -> i + 1)))
    [ (2, 2); (1, 3); (3, 1) ]

(* Non-intersecting quorums must be caught violating one-copy on some
   seeds. *)
let t_non_intersecting_fails () =
  let violations = ref 0 in
  for seed = 1 to 25 do
    let plan =
      Replication.replicate (cfg ~r:1 ~w:1) ~objects:[ lx; ly ]
        (logical_forest seed 6)
    in
    (* Sequential top level maximizes reads-after-committed-writes,
       the situation where non-intersection shows. *)
    let res =
      Runtime.run ~policy:Runtime.Bsp_rounds ~top_comb:Program.Seq ~seed
        plan.Replication.physical_schema Undo_object.factory
        plan.Replication.physical_forest
    in
    (* Physical behavior is still serializable - the failure is purely
       at the logical (one-copy) level. *)
    check_bool "physical still serializable" true
      (Checker.serially_correct plan.Replication.physical_schema
         res.Runtime.trace);
    match Replication.check_one_copy plan res.Runtime.trace with
    | Error _ -> incr violations
    | Ok () -> ()
  done;
  check_bool "staleness observed" true (!violations > 0)

let t_read_result () =
  (* Serial execution: a write of 7 then a read; the read's logical
     result must be (1, 7). *)
  let forest =
    [
      Program.seq
        [
          Program.access lx (Datatype.Write (Value.Int 7));
          Program.access lx Datatype.Read;
        ];
    ]
  in
  let plan = Replication.replicate (cfg ~r:2 ~w:2) ~objects:[ lx ] forest in
  let tr =
    Serial_exec.run plan.Replication.physical_schema
      plan.Replication.physical_forest
  in
  (* The read node is T0.0.1. *)
  match Replication.read_result plan tr (txn [ 0; 1 ]) with
  | Some (1, Value.Int 7) -> ()
  | Some (ver, v) ->
      Alcotest.failf "wrong read result: (%d, %s)" ver (Value.to_string v)
  | None -> Alcotest.fail "no read result"

let t_vreg_oracle_cases () =
  let dt = Vreg.make () in
  check_bool "distinct-version writes commute" true
    (dt.Datatype.commutes
       (Datatype.Vwrite (1, Value.Int 5), Value.Ok)
       (Datatype.Vwrite (2, Value.Int 6), Value.Ok));
  check_bool "same-version distinct writes conflict" false
    (dt.Datatype.commutes
       (Datatype.Vwrite (1, Value.Int 5), Value.Ok)
       (Datatype.Vwrite (1, Value.Int 6), Value.Ok));
  check_bool "read/write conflict" false
    (dt.Datatype.commutes
       (Datatype.Vread, Value.Pair (Value.Int 0, Value.Int 0))
       (Datatype.Vwrite (1, Value.Int 5), Value.Ok));
  (* Thomas write rule semantics. *)
  let s, _ = dt.Datatype.apply dt.Datatype.init (Datatype.Vwrite (3, Value.Int 9)) in
  let s, _ = dt.Datatype.apply s (Datatype.Vwrite (2, Value.Int 1)) in
  let _, v = dt.Datatype.apply s Datatype.Vread in
  Alcotest.check value_testable "stale write ignored"
    (Value.Pair (Value.Int 3, Value.Int 9))
    v

let suite =
  ( "replication",
    [
      Alcotest.test_case "transform shape" `Quick t_transform_shape;
      Alcotest.test_case "bad config" `Quick t_bad_config;
      Alcotest.test_case "intersecting quorums: one-copy" `Slow
        t_intersecting_quorums_one_copy;
      Alcotest.test_case "non-intersecting quorums fail" `Quick
        t_non_intersecting_fails;
      Alcotest.test_case "read_result" `Quick t_read_result;
      Alcotest.test_case "vreg oracle" `Quick t_vreg_oracle_cases;
    ] )
