open Core
open Util

(* Tiny workloads so the search is exhaustive. *)
let tiny_profile = { Gen.default with n_top = 3; depth = 1; fanout = 2; n_objects = 1 }

let t_serial_trace_found () =
  let forest, schema = Gen.forest_and_schema Gen.registers ~seed:1 tiny_profile in
  let tr = Serial_exec.run schema forest in
  check_bool "serial behavior matches itself" true
    (Serial_search.exists_matching_serial schema forest tr = Serial_search.Found)

let t_impossible_projection () =
  (* A top-level report value no serial execution can produce. *)
  let forest, schema = Gen.forest_and_schema Gen.registers ~seed:1 tiny_profile in
  let t0 = txn [ 0 ] in
  let beta =
    Trace.of_list
      Action.
        [
          Request_create t0; Create t0;
          Request_commit (t0, Value.Str "impossible");
          Commit t0;
          Report_commit (t0, Value.Str "impossible");
        ]
  in
  check_bool "rejected" true
    (Serial_search.exists_matching_serial schema forest beta
    = Serial_search.Not_found)

(* The headline soundness test: every behavior the SG checker
   certifies has a serial witness, across protocols (including broken
   ones when they happen to pass).  Also: behaviors the ground truth
   rejects are never certified. *)
let t_checker_sound () =
  let protocols =
    [
      ("moss", Moss_object.factory, 0.0);
      ("moss+aborts", Moss_object.factory, 0.15);
      ("undo", Undo_object.factory, 0.1);
      ("commlock", Commlock_object.factory, 0.1);
      ("no_control", Broken.no_control, 0.0);
      ("no_control+aborts", Broken.no_control, 0.15);
      ("unsafe_read", Broken.unsafe_read, 0.1);
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun (name, factory, abort_prob) ->
      List.iter
        (fun seed ->
          let forest, schema =
            Gen.forest_and_schema Gen.registers ~seed tiny_profile
          in
          let r = run_protocol ~abort_prob ~seed schema factory forest in
          let verdict = Checker.serially_correct schema r.Runtime.trace in
          match
            Serial_search.serially_correct_ground_truth schema forest
              r.Runtime.trace
          with
          | Some truth ->
              incr checked;
              if verdict && not truth then
                Alcotest.failf
                  "%s seed %d: checker certified a behavior with no serial \
                   witness"
                  name seed
          | None -> ())
        (List.init 10 (fun i -> i + 1)))
    protocols;
  (* The experiment must actually have decided a sizeable majority. *)
  check_bool "ground truth mostly conclusive" true (!checked > 50)

(* MVTS soundness through Theorem 2: certified behaviors have serial
   witnesses too. *)
let t_theorem2_sound () =
  List.iter
    (fun seed ->
      let forest, schema = Gen.forest_and_schema Gen.registers ~seed tiny_profile in
      let r = run_protocol ~seed schema Mvts_object.factory forest in
      let order = Sibling_order.index_order (Trace.serial r.Runtime.trace) in
      if Theorem2.holds schema order r.Runtime.trace then
        match
          Serial_search.serially_correct_ground_truth schema forest
            r.Runtime.trace
        with
        | Some truth ->
            if not truth then
              Alcotest.failf "seed %d: Theorem 2 certified without witness" seed
        | None -> ())
    (List.init 10 (fun i -> i + 1))

(* Completeness is not claimed, but measure the gap: behaviors with a
   serial witness that the checker rejects must come only from
   rejected hypotheses, not from re-verification. *)
let t_incompleteness_is_hypothesis_side () =
  List.iter
    (fun seed ->
      let forest, schema = Gen.forest_and_schema Gen.registers ~seed tiny_profile in
      let r = run_protocol ~seed schema Broken.no_control forest in
      let v = Checker.check schema r.Runtime.trace in
      if (not v.Checker.serially_correct) && v.Checker.appropriate && v.Checker.acyclic
      then
        (* Hypotheses passed but re-verification failed: must not happen. *)
        Alcotest.failf "seed %d: re-verification diverged from the theorem" seed)
    (List.init 20 (fun i -> i + 1))


(* Serial correctness for arbitrary (non-root) transactions: the
   paper's guarantee to implementors of T.  Under Moss, every
   non-orphan top-level transaction's projection has a serial witness;
   the Theorem-2 checker with a per-T suitable order agrees. *)
let t_per_transaction_correctness () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed tiny_profile
      in
      let r =
        run_protocol ~abort_prob:0.1 ~seed schema Moss_object.factory forest
      in
      List.iteri
        (fun i _ ->
          let t = txn [ i ] in
          if not (Trace.is_orphan r.Runtime.trace t) then
            match
              Serial_search.serially_correct_ground_truth ~for_txn:t schema
                forest r.Runtime.trace
            with
            | Some truth ->
                if not truth then
                  Alcotest.failf
                    "seed %d: no serial witness for non-orphan %s" seed
                    (Txn_id.to_string t)
            | None -> ())
        forest)
    (List.init 8 (fun i -> i + 1))

let t_theorem2_orphan_rejected () =
  let forest, schema = Gen.forest_and_schema Gen.registers ~seed:1 tiny_profile in
  let tr =
    Trace.of_list
      Action.[ Request_create (txn [ 0 ]); Abort (txn [ 0 ]) ]
  in
  ignore forest;
  match
    Theorem2.check ~for_txn:(txn [ 0 ]) schema Sibling_order.empty tr
  with
  | Error Theorem2.Orphan -> ()
  | _ -> Alcotest.fail "expected orphan rejection"

let suite =
  ( "serial_search",
    [
      Alcotest.test_case "serial behavior matches itself" `Quick
        t_serial_trace_found;
      Alcotest.test_case "impossible projection rejected" `Quick
        t_impossible_projection;
      Alcotest.test_case "checker soundness vs ground truth" `Slow
        t_checker_sound;
      Alcotest.test_case "Theorem 2 soundness vs ground truth" `Slow
        t_theorem2_sound;
      Alcotest.test_case "incompleteness only from hypotheses" `Quick
        t_incompleteness_is_hypothesis_side;
      Alcotest.test_case "per-transaction serial correctness" `Slow
        t_per_transaction_correctness;
      Alcotest.test_case "Theorem 2 rejects orphans" `Quick
        t_theorem2_orphan_rejected;
    ] )
