open Core
open Util

let t_explain_accepted () =
  let forest, schema = rw_pair () in
  let r = run_protocol ~seed:1 schema Moss_object.factory forest in
  let report = Checker.explain schema r.Runtime.trace in
  check_bool "confirms" true (Astring_like.contains report "serially correct");
  check_bool "names a witness order" true
    (Astring_like.contains report "witness serialization")

let t_explain_cycle () =
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:2
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.4 }
  in
  let rec find seed =
    if seed > 200 then Alcotest.fail "no cyclic run found"
    else
      let r = run_protocol ~seed schema Broken.no_control forest in
      let v = Checker.check schema r.Runtime.trace in
      if v.Checker.cycle = None then find (seed + 1)
      else begin
        let report = Checker.explain schema r.Runtime.trace in
        check_bool "mentions cycle" true (Astring_like.contains report "cycle");
        check_bool "shows operation provenance" true
          (Astring_like.contains report "responded before")
      end
  in
  find 1

let t_explain_bad_values () =
  (* Unsafe reads + aborts: the first divergent operation is named. *)
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:1
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.5 }
  in
  let rec find seed =
    if seed > 200 then Alcotest.fail "no bad-values run found"
    else
      let r =
        run_protocol ~abort_prob:0.1 ~seed schema Broken.unsafe_read forest
      in
      let v = Checker.check schema r.Runtime.trace in
      if v.Checker.appropriate then find (seed + 1)
      else begin
        let report = Checker.explain schema r.Runtime.trace in
        check_bool "names the object" true
          (Astring_like.contains report "return values of object");
        check_bool "shows expected value" true
          (Astring_like.contains report "committed history implies")
      end
  in
  find 1

let t_conflict_witnesses_match_relation () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 2 }
      in
      let r = run_protocol ~seed schema Moss_object.factory forest in
      let beta = Trace.serial r.Runtime.trace in
      let rel = Conflict.relation Conflict.Access_level schema beta in
      let wit = Conflict.relation_with_witnesses Conflict.Access_level schema beta in
      check_int "same cardinality" (List.length rel) (List.length wit);
      List.iter
        (fun w ->
          (* The witness accesses descend from the edge endpoints and
             really conflict. *)
          check_bool "source access under source" true
            (Txn_id.is_descendant (fst w.Conflict.source_access) w.Conflict.source);
          check_bool "target access under target" true
            (Txn_id.is_descendant (fst w.Conflict.target_access) w.Conflict.target);
          check_bool "accesses conflict" true
            (Schema.accesses_conflict schema
               (fst w.Conflict.source_access)
               (fst w.Conflict.target_access)))
        wit)
    [ 1; 2; 3 ]

let suite =
  ( "explain",
    [
      Alcotest.test_case "accepted behaviors" `Quick t_explain_accepted;
      Alcotest.test_case "cycle provenance" `Quick t_explain_cycle;
      Alcotest.test_case "bad values diagnosis" `Quick t_explain_bad_values;
      Alcotest.test_case "witnesses match relation" `Quick
        t_conflict_witnesses_match_relation;
    ] )
