open Core
open Util

(* Schema: two top transactions, each a single write/read access to x. *)
let schema () =
  Program.schema_of
    ~objects:[ (x0, Register.make ()) ]
    [
      Program.seq
        [
          Program.access x0 (Datatype.Write (Value.Int 1));
          Program.access x0 (Datatype.Write (Value.Int 2));
          Program.access x0 Datatype.Read;
        ];
    ]

let w1 = txn [ 0; 0 ]
let w2 = txn [ 0; 1 ]
let r1 = txn [ 0; 2 ]

let trace_all =
  Trace.of_list
    Action.
      [
        Request_commit (w1, Value.Ok);
        Request_commit (w2, Value.Ok);
        Request_commit (r1, Value.Int 2);
      ]

let t_kind_of () =
  let s = schema () in
  check_bool "write kind" true (Rw.kind_of s w1 = Some (`Write (Value.Int 1)));
  check_bool "read kind" true (Rw.kind_of s r1 = Some `Read);
  check_bool "non access" true (Rw.kind_of s (txn [ 0 ]) = None)

let t_write_sequence () =
  let s = schema () in
  check_int "two writes" 2 (Trace.length (Rw.write_sequence s trace_all x0));
  Alcotest.check (Alcotest.option txn_testable) "last write" (Some w2)
    (Rw.last_write s trace_all x0);
  Alcotest.check value_testable "final value" (Value.Int 2)
    (Rw.final_value s trace_all x0)

let t_empty () =
  let s = schema () in
  Alcotest.check (Alcotest.option txn_testable) "no writes" None
    (Rw.last_write s Trace.empty x0);
  Alcotest.check value_testable "initial value" (Value.Int 0)
    (Rw.final_value s Trace.empty x0)

let t_clean_variants () =
  let s = schema () in
  (* Abort the parent of w2?  w2's parent is txn [0]; aborting it orphans
     every access.  Instead abort only w2 itself via a dedicated
     two-transaction trace. *)
  let tr =
    Trace.of_list
      Action.
        [
          Request_commit (w1, Value.Ok);
          Request_commit (w2, Value.Ok);
          Abort w2;
        ]
  in
  Alcotest.check (Alcotest.option txn_testable) "clean last write skips aborted"
    (Some w1)
    (Rw.clean_last_write s tr x0);
  Alcotest.check value_testable "clean final value" (Value.Int 1)
    (Rw.clean_final_value s tr x0);
  (* The unclean final value still sees w2. *)
  Alcotest.check value_testable "raw final value" (Value.Int 2)
    (Rw.final_value s tr x0);
  check_int "clean write sequence" 1
    (Trace.length (Rw.clean_write_sequence s tr x0))


(* Lemmas 3/4: a register sequence is a behavior of S_X exactly when
   writes ack OK and each read returns the final-value of its prefix. *)
let prop_lemma4 =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 10)
        (oneof
           [
             map (fun n -> (Datatype.Write (Value.Int n), Value.Ok)) (int_bound 3);
             map (fun n -> (Datatype.Read, Value.Int n)) (int_bound 3);
             return (Datatype.Write (Value.Int 1), Value.Unit) (* bad ack *);
           ]))
  in
  QCheck.Test.make ~name:"Lemma 4: register behaviors = final-value reads"
    ~count:500 (QCheck.make gen)
    (fun ops ->
      let dt = Register.make () in
      let legal = Serial_spec.legal dt ops in
      (* Independent characterization. *)
      let rec characterize current = function
        | [] -> true
        | (Datatype.Write v, ack) :: rest ->
            Value.equal ack Value.Ok && characterize v rest
        | (Datatype.Read, v) :: rest ->
            Value.equal v current && characterize current rest
        | _ -> false
      in
      legal = characterize (Value.Int 0) ops)


let suite =
  ( "rw",
    [
      Alcotest.test_case "kind_of" `Quick t_kind_of;
      Alcotest.test_case "write sequence/final value" `Quick t_write_sequence;
      Alcotest.test_case "empty trace" `Quick t_empty;
      Alcotest.test_case "clean variants" `Quick t_clean_variants;
      QCheck_alcotest.to_alcotest prop_lemma4;
    ] )
