open Core
open Util

let sample_actions =
  Action.
    [
      Request_create (txn [ 0 ]);
      Create (txn [ 0 ]);
      Request_commit (txn [ 0; 1 ], Value.Int (-3));
      Request_commit (txn [ 0 ], Value.Pair (Value.Bool true, Value.Str "a \"b\"\\c"));
      Commit (txn [ 0 ]);
      Abort (txn [ 2 ]);
      Report_commit (txn [ 0 ], Value.List [ Value.Ok; Value.Unit ]);
      Report_abort (txn [ 2 ]);
      Inform_commit (Obj_id.make "weird name (x)", txn [ 0 ]);
      Inform_abort (x0, txn [ 2 ]);
    ]

let t_roundtrip_actions () =
  List.iter
    (fun a ->
      match Trace_io.action_of_string (Trace_io.action_to_string a) with
      | Ok a' ->
          Alcotest.(check string) "round trip" (Action.to_string a)
            (Action.to_string a')
      | Error e ->
          Alcotest.failf "parse of %S failed: %s" (Trace_io.action_to_string a) e)
    sample_actions

let t_roundtrip_trace () =
  let tr = Trace.of_list sample_actions in
  match Trace_io.of_string (Trace_io.to_string tr) with
  | Ok tr' -> check_bool "trace equal" true (Trace.to_list tr = Trace.to_list tr')
  | Error e -> Alcotest.failf "parse failed: %s" e

let t_roundtrip_generated () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 4; n_objects = 5 }
      in
      let r = run_protocol ~abort_prob:0.05 ~seed schema Undo_object.factory forest in
      match Trace_io.of_string (Trace_io.to_string r.Runtime.trace) with
      | Ok tr' ->
          check_bool "generated trace round trips" true
            (Trace.to_list r.Runtime.trace = Trace.to_list tr');
          (* The checker verdict survives serialization. *)
          check_bool "verdict stable" true (Checker.serially_correct schema tr')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ 1; 2; 3 ]

let t_comments_and_blanks () =
  let text = "# a comment\n\nCREATE T0.1\n   \nCOMMIT T0.1\n" in
  match Trace_io.of_string text with
  | Ok tr -> check_int "two actions" 2 (Trace.length tr)
  | Error e -> Alcotest.failf "parse failed: %s" e

let t_errors () =
  let bad l =
    match Trace_io.of_string l with
    | Ok _ -> Alcotest.failf "expected failure on %S" l
    | Error _ -> ()
  in
  bad "FROB T0.1";
  bad "CREATE";
  bad "CREATE X9";
  bad "CREATE T1.2";
  bad "REQUEST_COMMIT T0.1 (int x)";
  bad "REQUEST_COMMIT T0.1 (pair ok)";
  bad "REQUEST_COMMIT T0.1 (list ok";
  bad "REQUEST_COMMIT T0.1 ok trailing";
  bad "INFORM_COMMIT x T0.1";
  bad "REQUEST_COMMIT T0.1 (str \"oops)"

let t_file_io () =
  let tr = Trace.of_list sample_actions in
  let path = Filename.temp_file "nested_sg" ".trace" in
  Trace_io.save path tr;
  (match Trace_io.load path with
  | Ok tr' -> check_bool "file round trip" true (Trace.to_list tr = Trace.to_list tr')
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let suite =
  ( "trace_io",
    [
      Alcotest.test_case "action round trips" `Quick t_roundtrip_actions;
      Alcotest.test_case "trace round trips" `Quick t_roundtrip_trace;
      Alcotest.test_case "generated traces round trip" `Quick
        t_roundtrip_generated;
      Alcotest.test_case "comments and blanks" `Quick t_comments_and_blanks;
      Alcotest.test_case "parse errors" `Quick t_errors;
      Alcotest.test_case "file io" `Quick t_file_io;
    ] )
