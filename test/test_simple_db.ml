open Core
open Util

let schema () =
  Program.schema_of
    ~objects:[ (x0, Register.make ()) ]
    [ Program.seq [ Program.access x0 Datatype.Read ] ]

let sys () = (schema ()).Schema.sys
let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]

let expect_ok tr =
  match Simple_db.well_formed (sys ()) (Trace.of_list tr) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected violation: %a" Simple_db.pp_violation v

let expect_err reason tr =
  match Simple_db.well_formed (sys ()) (Trace.of_list tr) with
  | Ok () -> Alcotest.failf "expected violation %S, got none" reason
  | Error v -> Alcotest.(check string) "reason" reason v.Simple_db.reason

let t_ok_sequence () =
  expect_ok
    Action.
      [
        Request_create t1;
        Create t1;
        Request_create a1;
        Create a1;
        Request_commit (a1, Value.Int 0);
        Commit a1;
        Report_commit (a1, Value.Int 0);
        Request_commit (t1, Value.Unit);
        Commit t1;
        Report_commit (t1, Value.Unit);
      ]

let t_violations () =
  expect_err "CREATE without request" Action.[ Create t1 ];
  expect_err "duplicate REQUEST_CREATE"
    Action.[ Request_create t1; Request_create t1 ];
  expect_err "parent not created"
    Action.[ Request_create a1 ];
  expect_err "REQUEST_CREATE of T0" Action.[ Request_create Txn_id.root ];
  expect_err "duplicate CREATE"
    Action.[ Request_create t1; Create t1; Create t1 ];
  expect_err "COMMIT without REQUEST_COMMIT"
    Action.[ Request_create t1; Create t1; Commit t1 ];
  expect_err "ABORT without REQUEST_CREATE" Action.[ Abort t1 ];
  expect_err "duplicate completion"
    Action.
      [ Request_create t1; Create t1; Request_commit (t1, Value.Unit);
        Commit t1; Abort t1 ];
  expect_err "REPORT_COMMIT without COMMIT"
    Action.[ Request_create t1; Report_commit (t1, Value.Unit) ];
  expect_err "REPORT_ABORT without ABORT"
    Action.[ Request_create t1; Report_abort t1 ];
  expect_err "REQUEST_COMMIT before CREATE"
    Action.[ Request_create t1; Request_commit (t1, Value.Unit) ];
  expect_err "REQUEST_COMMIT with unreported children"
    Action.
      [ Request_create t1; Create t1; Request_create a1;
        Request_commit (t1, Value.Unit) ];
  expect_err "REPORT_COMMIT value mismatch"
    Action.
      [ Request_create t1; Create t1; Request_commit (t1, Value.Unit);
        Commit t1; Report_commit (t1, Value.Int 3) ]

let t_abort_after_create_ok () =
  (* The generic controller may abort created transactions. *)
  expect_ok Action.[ Request_create t1; Create t1; Abort t1; Report_abort t1 ]

let t_informs_ignored () =
  expect_ok
    Action.
      [
        Request_create t1; Create t1; Request_commit (t1, Value.Unit); Commit t1;
        Inform_commit (x0, t1); Inform_abort (x0, txn [ 9 ]);
      ]

let suite =
  ( "simple_db",
    [
      Alcotest.test_case "accepting run" `Quick t_ok_sequence;
      Alcotest.test_case "violations" `Quick t_violations;
      Alcotest.test_case "abort after create" `Quick t_abort_after_create_ok;
      Alcotest.test_case "informs ignored" `Quick t_informs_ignored;
    ] )
