open Core
open Util

let t_root () =
  check_bool "root is root" true (Txn_id.is_root Txn_id.root);
  check_int "root depth" 0 (Txn_id.depth Txn_id.root);
  check_bool "root has no parent" true (Txn_id.parent Txn_id.root = None);
  Alcotest.check txn_testable "of_path []" Txn_id.root (txn [])

let t_child_parent () =
  let c = Txn_id.child Txn_id.root 3 in
  Alcotest.check txn_testable "parent of child" Txn_id.root (Txn_id.parent_exn c);
  check_int "depth" 1 (Txn_id.depth c);
  check_bool "last index" true (Txn_id.last_index c = Some 3);
  let gc = Txn_id.child c 0 in
  Alcotest.check txn_testable "grandchild parent" c (Txn_id.parent_exn gc);
  Alcotest.check txn_testable "path round trip" gc (txn [ 3; 0 ]);
  Alcotest.(check (list int)) "path" [ 3; 0 ] (Txn_id.path gc)

let t_child_negative () =
  Alcotest.check_raises "negative index" (Invalid_argument "Txn_id.child: negative index")
    (fun () -> ignore (Txn_id.child Txn_id.root (-1)))

let t_ancestors () =
  let t = txn [ 1; 2; 3 ] in
  Alcotest.(check (list txn_testable))
    "ancestors leaf to root"
    [ txn [ 1; 2; 3 ]; txn [ 1; 2 ]; txn [ 1 ]; Txn_id.root ]
    (Txn_id.ancestors t);
  check_int "proper ancestors" 3 (List.length (Txn_id.proper_ancestors t))

let t_ancestor_tests () =
  let a = txn [ 0 ] and b = txn [ 0; 1 ] and c = txn [ 1 ] in
  check_bool "self ancestor" true (Txn_id.is_ancestor a a);
  check_bool "parent ancestor" true (Txn_id.is_ancestor a b);
  check_bool "not ancestor" false (Txn_id.is_ancestor b a);
  check_bool "unrelated" false (Txn_id.is_ancestor a c);
  check_bool "descendant" true (Txn_id.is_descendant b a);
  check_bool "related sym" true (Txn_id.related b a && Txn_id.related a b);
  check_bool "proper" true (Txn_id.is_proper_ancestor a b);
  check_bool "not proper self" false (Txn_id.is_proper_ancestor a a);
  check_bool "root ancestor of all" true (Txn_id.is_ancestor Txn_id.root b)

let t_siblings () =
  check_bool "siblings" true (Txn_id.siblings (txn [ 0; 1 ]) (txn [ 0; 2 ]));
  check_bool "not self" false (Txn_id.siblings (txn [ 0; 1 ]) (txn [ 0; 1 ]));
  check_bool "different parents" false (Txn_id.siblings (txn [ 0; 1 ]) (txn [ 1; 1 ]));
  check_bool "top level" true (Txn_id.siblings (txn [ 0 ]) (txn [ 5 ]))

let t_lca () =
  Alcotest.check txn_testable "lca cousins" (txn [ 2 ])
    (Txn_id.lca (txn [ 2; 0; 1 ]) (txn [ 2; 1 ]));
  Alcotest.check txn_testable "lca unrelated" Txn_id.root
    (Txn_id.lca (txn [ 0 ]) (txn [ 1 ]));
  Alcotest.check txn_testable "lca ancestor" (txn [ 3 ])
    (Txn_id.lca (txn [ 3 ]) (txn [ 3; 4; 5 ]));
  Alcotest.check txn_testable "lca self" (txn [ 7; 7 ])
    (Txn_id.lca (txn [ 7; 7 ]) (txn [ 7; 7 ]))

let t_child_on_path () =
  Alcotest.check txn_testable "child on path" (txn [ 2; 0 ])
    (Txn_id.child_of_on_path ~ancestor:(txn [ 2 ]) (txn [ 2; 0; 1; 5 ]));
  Alcotest.check txn_testable "direct child" (txn [ 2; 0 ])
    (Txn_id.child_of_on_path ~ancestor:(txn [ 2 ]) (txn [ 2; 0 ]));
  Alcotest.check_raises "not descendant"
    (Invalid_argument "Txn_id.child_of_on_path: not a proper descendant")
    (fun () ->
      ignore (Txn_id.child_of_on_path ~ancestor:(txn [ 2 ]) (txn [ 3 ])))

let t_ancestors_upto () =
  let t = txn [ 1; 2; 3 ] and u = txn [ 1; 4 ] in
  (* ancestors(t) - ancestors(u) = {[1;2;3], [1;2]}: [1] is shared. *)
  Alcotest.(check int) "upto cousin" 2
    (List.length (Txn_id.ancestors_upto t ~upto:u));
  Alcotest.(check int) "upto self" 0
    (List.length (Txn_id.ancestors_upto t ~upto:t));
  Alcotest.(check int) "upto root keeps all but root" 3
    (List.length (Txn_id.ancestors_upto t ~upto:Txn_id.root))

(* Property tests. *)
let gen_txn =
  QCheck.Gen.(list_size (int_bound 5) (int_bound 4) >|= Txn_id.of_path)

let arb_txn = QCheck.make ~print:Txn_id.to_string gen_txn

let prop_lca_is_common_ancestor =
  QCheck.Test.make ~name:"lca is a common ancestor ordered below any other"
    ~count:500
    (QCheck.pair arb_txn arb_txn)
    (fun (a, b) ->
      let l = Txn_id.lca a b in
      Txn_id.is_ancestor l a && Txn_id.is_ancestor l b
      && List.for_all
           (fun c ->
             if Txn_id.is_ancestor c a && Txn_id.is_ancestor c b then
               Txn_id.is_ancestor c l
             else true)
           (Txn_id.ancestors a))

let prop_ancestor_antisym =
  QCheck.Test.make ~name:"ancestor antisymmetry" ~count:500
    (QCheck.pair arb_txn arb_txn)
    (fun (a, b) ->
      if Txn_id.is_ancestor a b && Txn_id.is_ancestor b a then Txn_id.equal a b
      else true)

let prop_ancestors_chain =
  QCheck.Test.make ~name:"ancestors form a chain ending at root" ~count:500
    arb_txn
    (fun t ->
      let ancs = Txn_id.ancestors t in
      List.length ancs = Txn_id.depth t + 1
      && Txn_id.equal (List.nth ancs (List.length ancs - 1)) Txn_id.root
      && List.for_all2
           (fun a b -> Txn_id.equal (Txn_id.parent_exn a) b)
           (List.filteri (fun i _ -> i < List.length ancs - 1) ancs)
           (List.tl ancs))

let prop_child_of_on_path =
  QCheck.Test.make ~name:"child_of_on_path is a child and an ancestor"
    ~count:500
    (QCheck.pair arb_txn (QCheck.int_bound 4))
    (fun (t, i) ->
      let d = Txn_id.child (Txn_id.child t i) 0 in
      let c = Txn_id.child_of_on_path ~ancestor:t d in
      Txn_id.equal (Txn_id.parent_exn c) t && Txn_id.is_ancestor c d)

let prop_upto_disjoint =
  QCheck.Test.make ~name:"ancestors_upto excludes exactly shared ancestors"
    ~count:500
    (QCheck.pair arb_txn arb_txn)
    (fun (t, u) ->
      let upto = Txn_id.ancestors_upto t ~upto:u in
      List.for_all
        (fun a ->
          let in_t = Txn_id.is_ancestor a t and in_u = Txn_id.is_ancestor a u in
          if in_t && not in_u then List.exists (Txn_id.equal a) upto
          else not (List.exists (Txn_id.equal a) upto))
        (Txn_id.ancestors t))

let suite =
  ( "txn_id",
    [
      Alcotest.test_case "root" `Quick t_root;
      Alcotest.test_case "child/parent" `Quick t_child_parent;
      Alcotest.test_case "negative child" `Quick t_child_negative;
      Alcotest.test_case "ancestors" `Quick t_ancestors;
      Alcotest.test_case "ancestor tests" `Quick t_ancestor_tests;
      Alcotest.test_case "siblings" `Quick t_siblings;
      Alcotest.test_case "lca" `Quick t_lca;
      Alcotest.test_case "child_of_on_path" `Quick t_child_on_path;
      Alcotest.test_case "ancestors_upto" `Quick t_ancestors_upto;
      QCheck_alcotest.to_alcotest prop_lca_is_common_ancestor;
      QCheck_alcotest.to_alcotest prop_ancestor_antisym;
      QCheck_alcotest.to_alcotest prop_ancestors_chain;
      QCheck_alcotest.to_alcotest prop_child_of_on_path;
      QCheck_alcotest.to_alcotest prop_upto_disjoint;
    ] )
