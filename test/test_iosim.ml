open Core
open Util

(* A toy component: emits CREATE for each of a fixed list of names, in
   order (it "outputs" actions the serial scheduler normally owns; fine
   in isolation). *)
let emitter names =
  Automaton.component
    {
      Automaton.name = "emitter";
      state = names;
      signature =
        (fun a ->
          match a with
          | Action.Create t when List.exists (Txn_id.equal t) names -> `Output
          | _ -> `Not_mine);
      step =
        (fun st a ->
          match (st, a) with
          | next :: rest, Action.Create t when Txn_id.equal t next -> rest
          | _ -> st);
      enabled =
        (fun st -> match st with [] -> [] | next :: _ -> [ Action.Create next ]);
    }

(* A counter component that observes those creates as inputs. *)
let observer names =
  Automaton.component
    {
      Automaton.name = "observer";
      state = 0;
      signature =
        (fun a ->
          match a with
          | Action.Create t when List.exists (Txn_id.equal t) names -> `Input
          | _ -> `Not_mine);
      step = (fun st _ -> st + 1);
      enabled = (fun _ -> []);
    }

let names = [ txn [ 0 ]; txn [ 1 ]; txn [ 2 ] ]

let t_run_to_quiescence () =
  let auto = Automaton.compose [ emitter names; observer names ] in
  let tr, _ = Executor.run ~seed:1 auto in
  check_int "three actions" 3 (Trace.length tr);
  Alcotest.(check (list txn_testable)) "in order" names
    (List.filter_map
       (fun a -> match a with Action.Create t -> Some t | _ -> None)
       (Trace.to_list tr))

let t_inputs_are_stepped () =
  let auto = Automaton.compose [ emitter names; observer names ] in
  (* Fire manually and inspect enabled set shrinking. *)
  let auto = Automaton.fire auto (Action.Create (txn [ 0 ])) in
  check_int "two left" 1 (List.length (Automaton.enabled auto));
  check_bool "next is T0.1" true
    (Automaton.enabled auto = [ Action.Create (txn [ 1 ]) ])

let t_unowned_action_rejected () =
  let auto = Automaton.compose [ observer names ] in
  Alcotest.check_raises "no owner"
    (Invalid_argument "Automaton.fire: no component outputs CREATE(T0.0)")
    (fun () -> ignore (Automaton.fire auto (Action.Create (txn [ 0 ]))))

let t_conflicting_outputs_rejected () =
  let auto = Automaton.compose [ emitter names; emitter names ] in
  Alcotest.check_raises "two owners"
    (Invalid_argument
       "Automaton.fire: CREATE(T0.0) claimed as output by emitter and emitter")
    (fun () -> ignore (Automaton.fire auto (Action.Create (txn [ 0 ]))))

let t_custom_policy () =
  let auto = Automaton.compose [ emitter names; observer names ] in
  (* A policy that stops after the first action. *)
  let stop_after_one = ref false in
  let choose _rng actions =
    if !stop_after_one then None
    else begin
      stop_after_one := true;
      match actions with a :: _ -> Some a | [] -> None
    end
  in
  let tr, _ = Executor.run_with ~choose ~seed:1 auto in
  check_int "one action" 1 (Trace.length tr)

let t_max_steps () =
  (* An endless component: always enabled. *)
  let endless =
    Automaton.component
      {
        Automaton.name = "endless";
        state = ();
        signature =
          (fun a -> match a with Action.Commit _ -> `Output | _ -> `Not_mine);
        step = (fun () _ -> ());
        enabled = (fun () -> [ Action.Commit (txn [ 9 ]) ]);
      }
  in
  let tr, _ = Executor.run ~max_steps:25 ~seed:1 endless in
  check_int "bounded" 25 (Trace.length tr)

let suite =
  ( "iosim",
    [
      Alcotest.test_case "run to quiescence" `Quick t_run_to_quiescence;
      Alcotest.test_case "inputs stepped" `Quick t_inputs_are_stepped;
      Alcotest.test_case "unowned action" `Quick t_unowned_action_rejected;
      Alcotest.test_case "conflicting outputs" `Quick
        t_conflicting_outputs_rejected;
      Alcotest.test_case "custom policy" `Quick t_custom_policy;
      Alcotest.test_case "max steps" `Quick t_max_steps;
    ] )
