open Core
open Util

let h_serializable =
  History.
    [
      Op (1, x0, Write);
      Commit 1;
      Op (2, x0, Read);
      Op (2, y0, Write);
      Commit 2;
      Op (3, y0, Read);
      Commit 3;
    ]

let h_cyclic =
  History.
    [
      Op (1, x0, Write);
      Op (2, x0, Write);
      Op (2, y0, Write);
      Op (1, y0, Write);
      Commit 1;
      Commit 2;
    ]

let t_committed_projection () =
  let h = History.[ Op (1, x0, Write); Abort 1; Op (2, x0, Read); Commit 2 ] in
  let c = History.committed_projection h in
  check_int "aborted steps dropped" 2 (List.length c);
  Alcotest.(check (list int)) "transactions" [ 1; 2 ] (History.transactions h)

let t_serializable () =
  check_bool "chain serializable" true (Flat_sg.is_serializable h_serializable);
  Alcotest.(check (option (list int))) "order" (Some [ 1; 2; 3 ])
    (Flat_sg.serialization_order h_serializable)

let t_cycle () =
  check_bool "w-w cycle" false (Flat_sg.is_serializable h_cyclic);
  check_bool "no order" true (Flat_sg.serialization_order h_cyclic = None);
  (* Edges both ways. *)
  let es = Flat_sg.edges h_cyclic in
  check_bool "1->2" true (List.mem (1, 2) es);
  check_bool "2->1" true (List.mem (2, 1) es)

let t_aborted_txns_ignored () =
  (* The cycle disappears if one participant aborts. *)
  let h =
    History.
      [
        Op (1, x0, Write); Op (2, x0, Write); Op (2, y0, Write);
        Op (1, y0, Write); Commit 1; Abort 2;
      ]
  in
  check_bool "serializable after abort" true (Flat_sg.is_serializable h)

let t_reads_dont_conflict () =
  let h = History.[ Op (1, x0, Read); Op (2, x0, Read); Commit 1; Commit 2 ] in
  check_int "no edges" 0 (List.length (Flat_sg.edges h));
  check_bool "serializable" true (Flat_sg.is_serializable h)

(* Cross-validation: on flat (depth-1) register workloads, the nested
   checker and the classical conflict graph agree on Moss executions
   (which are conflict serializable), and both reject the no-control
   protocol's bad interleavings when they are rejected at all.

   The nested SG on a correct protocol is acyclic; the classical graph
   of the extracted history must also be acyclic, with a compatible
   order. *)
let t_agreement_on_flat_moss () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 1; n_objects = 2 }
      in
      let r = run_protocol ~seed schema Moss_object.factory forest in
      let h = History.of_trace schema r.Runtime.trace in
      check_bool "classical accepts moss" true (Flat_sg.is_serializable h);
      check_bool "nested accepts moss" true
        (Checker.serially_correct schema r.Runtime.trace))
    (List.init 10 (fun i -> i + 1))

let t_classical_detects_broken () =
  (* On flat workloads the classical test rejects some no-control runs;
     whenever the classical test rejects, the nested one must too
     (classical acyclicity is necessary for conflict-serializability;
     nested correctness of a flat committed run entails it). *)
  let classical_rejects = ref 0 in
  for seed = 1 to 30 do
    let forest, schema =
      Gen.forest_and_schema Gen.registers ~seed
        { Gen.default with n_top = 6; depth = 1; n_objects = 1; read_ratio = 0.3 }
    in
    let r = run_protocol ~seed schema Broken.no_control forest in
    let h = History.of_trace schema r.Runtime.trace in
    if not (Flat_sg.is_serializable h) then begin
      incr classical_rejects;
      check_bool "nested rejects too" false
        (Checker.serially_correct schema r.Runtime.trace)
    end
  done;
  check_bool "classical rejected somewhere" true (!classical_rejects > 0)

let suite =
  ( "classical",
    [
      Alcotest.test_case "committed projection" `Quick t_committed_projection;
      Alcotest.test_case "serializable chain" `Quick t_serializable;
      Alcotest.test_case "write-write cycle" `Quick t_cycle;
      Alcotest.test_case "aborted ignored" `Quick t_aborted_txns_ignored;
      Alcotest.test_case "reads do not conflict" `Quick t_reads_dont_conflict;
      Alcotest.test_case "agreement with nested on Moss" `Quick
        t_agreement_on_flat_moss;
      Alcotest.test_case "classical detects broken protocols" `Quick
        t_classical_detects_broken;
    ] )
