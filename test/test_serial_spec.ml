open Core
open Util

let reg = Register.make ()
let ctr = Counter.make ()

let t_legal () =
  check_bool "empty legal" true (Serial_spec.legal reg []);
  check_bool "write-read legal" true
    (Serial_spec.legal reg
       [ (Datatype.Write (Value.Int 4), Value.Ok); (Datatype.Read, Value.Int 4) ]);
  check_bool "stale read illegal" false
    (Serial_spec.legal reg
       [ (Datatype.Write (Value.Int 4), Value.Ok); (Datatype.Read, Value.Int 0) ]);
  check_bool "wrong ack illegal" false
    (Serial_spec.legal reg [ (Datatype.Write (Value.Int 4), Value.Int 4) ])

let t_final_state () =
  check_bool "final state tracks writes" true
    (Serial_spec.final_state reg
       [ (Datatype.Write (Value.Int 4), Value.Ok); (Datatype.Read, Value.Int 4) ]
    = Some (Value.Int 4));
  check_bool "illegal has no state" true
    (Serial_spec.final_state reg [ (Datatype.Read, Value.Int 9) ] = None)

let t_response () =
  Alcotest.check (Alcotest.option value_testable) "read response"
    (Some (Value.Int 7))
    (Serial_spec.response reg
       [ (Datatype.Write (Value.Int 7), Value.Ok) ]
       Datatype.Read);
  Alcotest.check (Alcotest.option value_testable) "illegal prefix"
    None
    (Serial_spec.response reg [ (Datatype.Read, Value.Int 1) ] Datatype.Read)

let t_equieffective () =
  check_bool "reordered increments equieffective" true
    (Serial_spec.equieffective ctr
       [ (Datatype.Incr 1, Value.Ok); (Datatype.Incr 2, Value.Ok) ]
       [ (Datatype.Incr 2, Value.Ok); (Datatype.Incr 1, Value.Ok) ]);
  check_bool "different totals not equieffective" false
    (Serial_spec.equieffective ctr
       [ (Datatype.Incr 1, Value.Ok) ]
       [ (Datatype.Incr 2, Value.Ok) ])

(* The semantic commutativity check agrees with hand analysis on the
   canonical read/write cases. *)
let t_semantic_commutes () =
  check_bool "reads commute" true
    (Serial_spec.commutes_backward_semantic reg (Datatype.Read, Value.Int 0)
       (Datatype.Read, Value.Int 0));
  check_bool "read/write do not (symmetric)" false
    (Serial_spec.commutes_backward_semantic reg (Datatype.Read, Value.Int 1)
       (Datatype.Write (Value.Int 1), Value.Ok));
  check_bool "same-value writes commute" true
    (Serial_spec.commutes_backward_semantic reg
       (Datatype.Write (Value.Int 2), Value.Ok)
       (Datatype.Write (Value.Int 2), Value.Ok));
  check_bool "distinct writes do not" false
    (Serial_spec.commutes_backward_semantic reg
       (Datatype.Write (Value.Int 1), Value.Ok)
       (Datatype.Write (Value.Int 2), Value.Ok))

(* Replay legality is prefix-closed. *)
let prop_prefix_closed =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 8)
        (oneof
           [
             return (Datatype.Incr 1, Value.Ok);
             return (Datatype.Decr 1, Value.Ok);
             map (fun n -> (Datatype.Get, Value.Int n)) (int_bound 5);
           ]))
  in
  QCheck.Test.make ~name:"legal sequences are prefix closed" ~count:300
    (QCheck.make gen)
    (fun ops ->
      if Serial_spec.legal ctr ops then
        List.for_all
          (fun n ->
            Serial_spec.legal ctr (List.filteri (fun i _ -> i < n) ops))
          (List.init (List.length ops) Fun.id)
      else true)


(* Propositions 7/18: reordering non-conflicting (backward-commuting)
   operations preserves behavior-hood.  Random legal sequences with a
   random adjacent commuting swap must stay legal and equieffective. *)
let prop_commuting_reorder =
  let gen =
    QCheck.Gen.(
      pair (int_bound 1000) (int_range 2 8) >|= fun (seed, len) -> (seed, len))
  in
  QCheck.Test.make ~name:"Prop 7/18: commuting swaps preserve behaviors"
    ~count:400 (QCheck.make gen)
    (fun (seed, len) ->
      let rng = Rng.create seed in
      List.for_all
        (fun (dt : Datatype.t) ->
          (* Build a legal sequence by replaying sampled ops. *)
          let rec build s acc k =
            if k = 0 then List.rev acc
            else
              let op = dt.sample_ops rng in
              let s', v = dt.apply s op in
              build s' ((op, v) :: acc) (k - 1)
          in
          let xi = build dt.init [] len in
          (* Pick an adjacent pair; swap if the oracle commutes them. *)
          let i = Rng.int rng (len - 1) in
          let arr = Array.of_list xi in
          if dt.commutes arr.(i) arr.(i + 1) then begin
            let eta = Array.copy arr in
            eta.(i) <- arr.(i + 1);
            eta.(i + 1) <- arr.(i);
            let eta = Array.to_list eta in
            Serial_spec.legal dt eta && Serial_spec.equieffective dt xi eta
          end
          else true)
        (Util.datatypes ()))


let suite =
  ( "serial_spec",
    [
      Alcotest.test_case "legal" `Quick t_legal;
      Alcotest.test_case "final_state" `Quick t_final_state;
      Alcotest.test_case "response" `Quick t_response;
      Alcotest.test_case "equieffective" `Quick t_equieffective;
      Alcotest.test_case "semantic commutes" `Quick t_semantic_commutes;
      QCheck_alcotest.to_alcotest prop_prefix_closed;
      QCheck_alcotest.to_alcotest prop_commuting_reorder;
    ] )
