open Core
open Util

let t_obj_id () =
  let a = Obj_id.make "table" and b = Obj_id.indexed "table" 0 in
  check_bool "equal by name" true (Obj_id.equal a (Obj_id.make "table"));
  check_bool "indexed differs" false (Obj_id.equal a b);
  Alcotest.(check string) "indexed name" "table0" (Obj_id.name b);
  check_bool "compare consistent" true
    (Obj_id.compare a b <> 0 && Obj_id.compare a a = 0);
  check_bool "set/map usable" true
    (Obj_id.Set.cardinal (Obj_id.Set.of_list [ a; b; a ]) = 2);
  let tbl = Obj_id.Tbl.create 4 in
  Obj_id.Tbl.add tbl a 1;
  check_bool "tbl" true (Obj_id.Tbl.find_opt tbl a = Some 1)

let t_system_type () =
  let sys =
    System_type.make (fun t ->
        if Txn_id.depth t = 2 then System_type.Access x0 else System_type.Inner)
  in
  check_bool "inner" true (System_type.kind sys (txn [ 1 ]) = System_type.Inner);
  check_bool "access" true (System_type.is_access sys (txn [ 1; 0 ]));
  check_bool "object_of" true (System_type.object_of sys (txn [ 1; 0 ]) = Some x0);
  check_bool "object_of inner" true (System_type.object_of sys (txn [ 1 ]) = None);
  Alcotest.check_raises "object_of_exn"
    (Invalid_argument "System_type.object_of_exn: T0.1 is not an access")
    (fun () -> ignore (System_type.object_of_exn sys (txn [ 1 ])));
  Alcotest.check_raises "root must be inner"
    (Invalid_argument "System_type.make: root must be a non-access")
    (fun () -> ignore (System_type.make (fun _ -> System_type.Access x0)))

(* The lemma invariants hold under lazy inform delivery too — the
   protocols never depend on promptness, only on the controller's
   ordering guarantees. *)
let t_lemmas_under_lazy_informs () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 2 }
      in
      let r =
        Runtime.run ~policy:Runtime.Bsp_rounds ~inform_policy:Runtime.Lazy
          ~abort_prob:0.05 ~seed schema Moss_object.factory forest
      in
      check_bool "moss lazy correct" true
        (Checker.serially_correct schema r.Runtime.trace);
      List.iter
        (fun x ->
          let proj = Moss_invariants.project schema x r.Runtime.trace in
          check_bool "lemma 9 lazy" true (Moss_invariants.lemma9 schema x proj);
          check_bool "lemma 10 lazy" true (Moss_invariants.lemma10 schema x proj);
          check_bool "lemma 12/13 lazy" true
            (Moss_invariants.lemma12_13 schema x proj))
        schema.Schema.objects;
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 4 }
      in
      let r =
        Runtime.run ~policy:Runtime.Bsp_rounds ~inform_policy:Runtime.Lazy
          ~abort_prob:0.05 ~seed schema Undo_object.factory forest
      in
      check_bool "undo lazy correct" true
        (Checker.serially_correct schema r.Runtime.trace);
      List.iter
        (fun x ->
          let proj = Undo_invariants.project schema x r.Runtime.trace in
          check_bool "lemma 20 lazy" true (Undo_invariants.lemma20 schema x proj);
          check_bool "lemma 22 lazy" true (Undo_invariants.lemma22 schema x proj))
        schema.Schema.objects)
    [ 1; 2; 3; 4 ]

let suite =
  ( "obj_system",
    [
      Alcotest.test_case "obj_id" `Quick t_obj_id;
      Alcotest.test_case "system_type" `Quick t_system_type;
      Alcotest.test_case "lemmas under lazy informs" `Slow
        t_lemmas_under_lazy_informs;
    ] )
