(* The write-ahead log and crash recovery (lib/net/wal.ml + the
   Check.record / Check.crash harness): framing codec roundtrips,
   adversarial damaged-file decoding, group-commit batching, the
   outcome-after-steps ordering invariant, snapshot compaction, the
   snapshot-plus-tail-equals-full-log property, replay idempotence,
   and the headline kill(-9) sweep — a simulated crash at every log
   boundary, every recovery judged by all four oracles. *)
open Core
open Util

let t1 = txn [ 0 ]
let t2 = txn [ 1 ]

let sample_records =
  [
    Wal.Meta
      {
        seed = 42;
        backend = "undo";
        policy = "random-step";
        inform = "eager";
        abort_prob = 0.05;
        objects = [ ("x", "(register 0)"); ("c", "(counter 3)") ];
      };
    Wal.Submit
      { req = Some "r-1"; client = "c1"; program = "(txn (access x read))" };
    Wal.Submit { req = None; client = ""; program = "(txn (access c get))" };
    Wal.Kill { txn = t2 };
    Wal.Steps 17;
    Wal.Outcome { txn = t1; outcome = Wal.Committed "(int 3)" };
    Wal.Outcome { txn = t2; outcome = Wal.Aborted None };
    Wal.Outcome { txn = t2; outcome = Wal.Aborted (Some "cycle T1->T2") };
    Wal.Sg_state
      { nodes = [| "T0"; "T1"; "T2" |]; edges = [ (1, 2); (2, 0) ] };
    Wal.Counts { submitted = 9; committed = 5; aborted = 4; vetoed = 2 };
  ]

let image_of records =
  Wal.header ~magic:Wal.wal_magic ~base_seq:0
  ^ String.concat "" (List.map Wal.encode_record records)

(* Every record variant survives encode -> frame -> scan. *)
let t_codec_roundtrip () =
  match Wal.scan ~magic:Wal.wal_magic (image_of sample_records) with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_bool "clean tail" true (s.Wal.sc_tail = Wal.Clean);
      check_int "all records" (List.length sample_records)
        (List.length s.Wal.sc_records);
      check_bool "roundtrip equality" true (s.Wal.sc_records = sample_records);
      check_int "offsets parallel records" (List.length sample_records)
        (List.length s.Wal.sc_offsets)

(* Adversarial images, table-driven: each damaged file must decode to
   the longest intact prefix with the right diagnosis — never an
   exception, never silently swallowing valid records. *)
let t_adversarial_decode () =
  let img = image_of sample_records in
  let full = List.length sample_records in
  let offsets =
    match Wal.scan ~magic:Wal.wal_magic img with
    | Ok s -> Array.of_list s.Wal.sc_offsets
    | Error e -> Alcotest.fail e
  in
  let last = offsets.(full - 1) in
  let flip pos s =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
    Bytes.to_string b
  in
  let cases =
    [
      ("empty file", "", Some (0, true, 0));
      ("zero bytes of header", String.sub img 0 0, Some (0, true, 0));
      ("mid-magic cut", String.sub img 0 5, Some (0, false, 0));
      ("header-only", String.sub img 0 16, Some (0, true, 16));
      ("torn final record", String.sub img 0 (last + 9), Some (full - 1, false, last));
      ( "truncated length prefix",
        String.sub img 0 (last + 5),
        Some (full - 1, false, last) );
      ("bit-flipped checksum", flip (last + 4) img, Some (full - 1, false, last));
      ("bit-flipped payload", flip (last + 12) img, Some (full - 1, false, last));
      ("foreign magic", "GARBAGE!" ^ String.sub img 8 64, None);
      ("snapshot magic on a wal scan", Wal.header ~magic:Wal.snap_magic ~base_seq:0, None);
    ]
  in
  List.iter
    (fun (name, s, expect) ->
      match (Wal.scan ~magic:Wal.wal_magic s, expect) with
      | Error _, None -> ()
      | Error e, Some _ -> Alcotest.fail (name ^ ": unexpected refusal: " ^ e)
      | Ok _, None -> Alcotest.fail (name ^ ": foreign file accepted")
      | Ok sc, Some (records, clean, valid) ->
          check_int (name ^ ": records kept") records
            (List.length sc.Wal.sc_records);
          check_bool (name ^ ": tail cleanliness") clean
            (sc.Wal.sc_tail = Wal.Clean);
          let v =
            match sc.Wal.sc_tail with
            | Wal.Clean -> sc.Wal.sc_valid
            | Wal.Torn { valid; _ } -> valid
          in
          check_int (name ^ ": valid prefix") valid v)
    cases

(* Group commit: a writer with [fsync_batch n] syncs every [n]
   records, and [flush] settles the remainder; [fsync_interval_s]
   syncs on [tick] once the (injected) clock advances far enough. *)
let t_writer_batching () =
  let syncs = ref 0 in
  let buf = Buffer.create 256 in
  let sink =
    { Wal.write = Buffer.add_string buf; sync = (fun () -> incr syncs) }
  in
  let w = Wal.Writer.create ~fsync_batch:4 ~base_seq:0 ~on_sync:ignore sink in
  for _ = 1 to 10 do
    Wal.Writer.append w (Wal.Steps 1)
  done;
  check_int "two batch syncs after 10 appends" 2 !syncs;
  Wal.Writer.flush w;
  check_int "flush syncs the dirty remainder" 3 !syncs;
  Wal.Writer.flush w;
  check_int "clean flush does not re-sync" 3 !syncs;
  check_int "writer sync counter agrees" 3 (Wal.Writer.syncs w);
  check_int "appended" 10 (Wal.Writer.appended w);
  (* Time-based syncing with an injected clock. *)
  let now = ref 0.0 in
  let syncs2 = ref 0 in
  let sink2 =
    { Wal.write = (fun _ -> ()); sync = (fun () -> incr syncs2) }
  in
  let w2 =
    Wal.Writer.create ~fsync_batch:0 ~fsync_interval_s:0.5
      ~clock:(fun () -> !now)
      ~base_seq:0 ~on_sync:ignore sink2
  in
  Wal.Writer.append w2 (Wal.Steps 1);
  Wal.Writer.tick w2;
  check_int "interval not yet elapsed" 0 !syncs2;
  now := 0.6;
  Wal.Writer.tick w2;
  check_int "interval elapsed" 1 !syncs2;
  Wal.Writer.tick w2;
  check_int "nothing dirty, no sync" 1 !syncs2

(* The ordering invariant: outcomes noted while stepping are buffered
   and land after the covering [Steps] record, so no intact prefix
   audits state it cannot replay. *)
let t_outcome_after_steps () =
  let buf = Buffer.create 256 in
  let w =
    Wal.Writer.create ~base_seq:0 ~on_sync:ignore (Wal.buffer_sink buf)
  in
  Wal.Writer.append w
    (Wal.Submit { req = None; client = "c"; program = "p" });
  Wal.Writer.note_outcome w ~txn:t1 (Wal.Committed "(unit)");
  Wal.Writer.note_outcome w ~txn:t2 (Wal.Aborted None);
  Wal.Writer.log_steps w 5;
  match Wal.scan ~magic:Wal.wal_magic (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_bool "submit, steps, then both outcomes in noted order" true
        (match s.Wal.sc_records with
        | [
            Wal.Submit _;
            Wal.Steps 5;
            Wal.Outcome { txn = a; _ };
            Wal.Outcome { txn = b; _ };
          ] ->
            Txn_id.equal a t1 && Txn_id.equal b t2
        | _ -> false)

(* [compact] merges step runs, drops audit-only records, keeps the
   replay-relevant order, and is idempotent. *)
let t_compact () =
  let submit = Wal.Submit { req = None; client = "c"; program = "p" } in
  let events =
    [
      List.hd sample_records;
      submit;
      Wal.Steps 3;
      Wal.Steps 4;
      Wal.Outcome { txn = t1; outcome = Wal.Aborted None };
      Wal.Steps 2;
      Wal.Kill { txn = t1 };
      Wal.Steps 0;
      Wal.Steps 1;
    ]
  in
  let c = Wal.compact events in
  check_bool "merged and pruned" true
    (c = [ submit; Wal.Steps 9; Wal.Kill { txn = t1 }; Wal.Steps 1 ]);
  check_bool "idempotent" true (Wal.compact c = c)

(* [Closure.push] is [compact] one record at a time: same result, and
   the retained list stays bounded by the replay events however many
   idle [Steps] cuts are pushed — the property that keeps a live
   server's between-snapshot memory flat. *)
let t_closure_incremental () =
  let submit = Wal.Submit { req = None; client = "c"; program = "p" } in
  let events =
    [
      List.hd sample_records;
      submit;
      Wal.Steps 3;
      Wal.Steps 4;
      Wal.Outcome { txn = t1; outcome = Wal.Aborted None };
      Wal.Steps 2;
      Wal.Kill { txn = t1 };
      Wal.Steps 0;
      Wal.Steps 1;
    ]
  in
  let c = Wal.Closure.of_records events in
  check_bool "of_records = compact" true
    (Wal.Closure.records c = Wal.compact events);
  check_int "length" (List.length (Wal.compact events)) (Wal.Closure.length c);
  check_int "events counted" 2 (Wal.Closure.events c);
  (* An idle server cutting its log every turn: 100k Steps pushes with
     a submission every 10k must not grow the closure past the bound. *)
  let c = Wal.Closure.create () in
  for i = 1 to 100_000 do
    if i mod 10_000 = 0 then Wal.Closure.push c submit;
    Wal.Closure.push c (Wal.Steps 1)
  done;
  check_int "10 retained events" 10 (Wal.Closure.events c);
  check_bool "bounded by 2e+1" true
    (Wal.Closure.length c <= (2 * Wal.Closure.events c) + 1);
  check_bool "no adjacent Steps" true
    (let rec ok = function
       | Wal.Steps _ :: Wal.Steps _ :: _ -> false
       | _ :: rest -> ok rest
       | [] -> true
     in
     ok (Wal.Closure.records c))

(* ----- recorded serves and recovery ----- *)

let backends_cycle = [| Check.Undo; Check.Moss; Check.Commlock; Check.Mvts |]

let scenario_for i =
  let backend = backends_cycle.(i mod Array.length backends_cycle) in
  let sc = Check.gen_scenario ~shape:Check.Default backend (Rng.create (1000 + i)) in
  (backend, sc)

(* Replay a full log image into a fresh engine; returns the engine. *)
let recover_full backend (sc : Check.scenario) img =
  let s =
    match Wal.scan ~magic:Wal.wal_magic img with
    | Ok s -> s
    | Error e -> Alcotest.fail ("scan: " ^ e)
  in
  check_bool "recorded log has a clean tail" true (s.Wal.sc_tail = Wal.Clean);
  let rp =
    match
      Wal.replayable_of_records ~base_seq:s.Wal.sc_base_seq ~skip_below:0
        s.Wal.sc_records
    with
    | Ok rp -> rp
    | Error e -> Alcotest.fail ("replayable: " ^ e)
  in
  let eng =
    Engine.create ~policy:sc.Check.policy ~inform_policy:sc.Check.inform_policy
      ~abort_prob:sc.Check.abort_prob ~seed:sc.Check.sched_seed
      sc.Check.objects (Check.factory_of backend)
  in
  (match Engine.recover eng rp.Wal.rp_events with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("recover: " ^ e));
  (match Wal.check_outcomes (Engine.state eng) rp.Wal.rp_outcomes with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("outcomes: " ^ e));
  eng

let sg_of eng = Monitor.graph (Admission.monitor (Engine.admission eng))

let engines_agree name a b =
  check_int (name ^ ": step calls") (Engine.step_calls a) (Engine.step_calls b);
  check_int (name ^ ": submitted") (Engine.submitted a) (Engine.submitted b);
  check_int (name ^ ": committed") (Engine.committed_top a)
    (Engine.committed_top b);
  check_int (name ^ ": aborted") (Engine.aborted_top a) (Engine.aborted_top b);
  check_int (name ^ ": vetoed") (Engine.vetoed a) (Engine.vetoed b);
  check_bool (name ^ ": forests") true
    (List.map Program_io.program_to_string (Engine.forest a)
    = List.map Program_io.program_to_string (Engine.forest b));
  match Wal.check_sg_state (Wal.sg_state_of_graph (sg_of a)) (sg_of b) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (name ^ ": monitor graphs: " ^ e)

(* The replay property, 200 seeded serve runs: a fresh engine replayed
   from the log reproduces the recorded run's counters exactly, every
   audited outcome checks, and replaying the same log twice yields
   agreeing engines (idempotence).  When a snapshot was taken,
   snapshot + tail replay must agree with the full-log replay. *)
let t_snapshot_tail_equals_full () =
  let snapshots = ref 0 in
  for i = 0 to 199 do
    let backend, sc = scenario_for i in
    let rc =
      Check.record ~drop_prob:0.1 ~snapshot_at:6 ~seed:(3000 + i) backend sc
    in
    let eng = recover_full backend sc rc.Check.rc_wal in
    let eng2 = recover_full backend sc rc.Check.rc_wal in
    engines_agree "replay idempotence" eng eng2;
    check_int "replayed submissions" rc.Check.rc_report.Check.s_submitted
      (Engine.submitted eng);
    check_int "replayed commits" rc.Check.rc_report.Check.s_committed
      (Engine.committed_top eng);
    check_int "replayed aborts" rc.Check.rc_report.Check.s_aborted
      (Engine.aborted_top eng);
    match rc.Check.rc_snapshot with
    | None -> ()
    | Some simg -> (
        incr snapshots;
        let sn =
          match Wal.decode_snapshot simg with
          | Ok sn -> sn
          | Error e -> Alcotest.fail ("snapshot: " ^ e)
        in
        let rp_snap =
          match
            Wal.replayable_of_records ~base_seq:0 ~skip_below:0
              sn.Wal.sn_events
          with
          | Ok rp -> rp
          | Error e -> Alcotest.fail ("snapshot events: " ^ e)
        in
        let eng3 =
          Engine.create ~policy:sc.Check.policy
            ~inform_policy:sc.Check.inform_policy
            ~abort_prob:sc.Check.abort_prob ~seed:sc.Check.sched_seed
            sc.Check.objects (Check.factory_of backend)
        in
        (match Engine.recover eng3 rp_snap.Wal.rp_events with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("snapshot replay: " ^ e));
        (* The snapshot's materialized SG and counters must match the
           state its compacted events replay to. *)
        (match Wal.check_sg_state sn.Wal.sn_sg (sg_of eng3) with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("snapshot sg: " ^ e));
        (match sn.Wal.sn_counts with
        | Wal.Counts { submitted; committed; aborted; vetoed } ->
            check_int "snapshot submitted" submitted (Engine.submitted eng3);
            check_int "snapshot committed" committed
              (Engine.committed_top eng3);
            check_int "snapshot aborted" aborted (Engine.aborted_top eng3);
            check_int "snapshot vetoed" vetoed (Engine.vetoed eng3)
        | _ -> Alcotest.fail "snapshot missing counts");
        let s = Result.get_ok (Wal.scan ~magic:Wal.wal_magic rc.Check.rc_wal) in
        let rp_tail =
          match
            Wal.replayable_of_records ~base_seq:s.Wal.sc_base_seq
              ~skip_below:sn.Wal.sn_next_seq s.Wal.sc_records
          with
          | Ok rp -> rp
          | Error e -> Alcotest.fail ("tail events: " ^ e)
        in
        (match Engine.replay eng3 rp_tail.Wal.rp_events with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("tail replay: " ^ e));
        (match Wal.check_outcomes (Engine.state eng3) rp_tail.Wal.rp_outcomes with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("tail outcomes: " ^ e));
        engines_agree "snapshot + tail vs full log" eng3 eng)
  done;
  check_bool "snapshot path exercised" true (!snapshots > 50)

(* [record] is [serve] plus the log: same loop, same RNG draws, so
   the report must be identical — and a fresh engine cannot [recover]
   twice. *)
let t_record_matches_serve () =
  let backend, sc = scenario_for 3 in
  let rc = Check.record ~drop_prob:0.1 ~seed:77 backend sc in
  let sr = Check.serve ~drop_prob:0.1 ~seed:77 backend sc in
  check_int "submitted" sr.Check.s_submitted rc.Check.rc_report.Check.s_submitted;
  check_int "committed" sr.Check.s_committed rc.Check.rc_report.Check.s_committed;
  check_int "dropped" sr.Check.s_dropped rc.Check.rc_report.Check.s_dropped;
  check_bool "traces equal" true
    (Trace.length sr.Check.s_trace
     = Trace.length rc.Check.rc_report.Check.s_trace);
  let eng = recover_full backend sc rc.Check.rc_wal in
  check_bool "second recover on a used engine is refused" true
    (match Engine.recover eng [] with Error _ -> true | Ok _ -> false)

(* Memory pin for the serving loop's replay closure: across long
   recorded runs the in-memory closure must stay within
   [2 * (submits + kills) + 1] — growth tracks replay events, never
   raw appended records (outcomes, idle step cuts). *)
let t_closure_bounded_on_record () =
  for i = 0 to 19 do
    let backend, sc = scenario_for i in
    let rc = Check.record ~drop_prob:0.2 ~seed:(500 + i) backend sc in
    let records =
      match Wal.scan ~magic:Wal.wal_magic rc.Check.rc_wal with
      | Ok s -> s.Wal.sc_records
      | Error e -> Alcotest.fail ("scan: " ^ e)
    in
    let events =
      List.length
        (List.filter
           (function Wal.Submit _ | Wal.Kill _ -> true | _ -> false)
           records)
    in
    check_bool "closure within 2e+1" true
      (rc.Check.rc_closure_len <= (2 * events) + 1);
    check_bool "closure is the compacted log" true
      (rc.Check.rc_closure_len = List.length (Wal.compact records))
  done

(* The headline sweep: simulated kill(-9) at every log boundary (plus
   torn and bit-flipped variants) across 200 seeded serve runs, every
   recovery re-judged by the four oracles.  Zero failures expected on
   verified backends. *)
let t_crash_sweep () =
  let boundaries = ref 0 and recoveries = ref 0 and outcomes = ref 0 in
  for i = 0 to 199 do
    let backend, sc = scenario_for i in
    let rep = Check.crash ~snapshot_at:6 backend sc in
    (match rep.Check.c_failure with
    | None -> ()
    | Some (where, f) ->
        Alcotest.fail
          (Format.asprintf "seed %d (%s): %s: %a" i
             (Check.backend_name backend) where Check.pp_failure f));
    boundaries := !boundaries + rep.Check.c_boundaries;
    recoveries := !recoveries + rep.Check.c_recoveries;
    outcomes := !outcomes + rep.Check.c_outcomes_checked
  done;
  check_bool "swept many boundaries" true (!boundaries > 2000);
  check_bool "recovered more images than boundaries" true
    (!recoveries > !boundaries);
  check_bool "checked audited outcomes" true (!outcomes > 1000)

(* Determinism: the same crash sweep twice yields the same report. *)
let t_crash_deterministic () =
  let backend, sc = scenario_for 7 in
  let a = Check.crash ~snapshot_at:6 backend sc in
  let b = Check.crash ~snapshot_at:6 backend sc in
  check_int "boundaries" a.Check.c_boundaries b.Check.c_boundaries;
  check_int "recoveries" a.Check.c_recoveries b.Check.c_recoveries;
  check_int "outcomes" a.Check.c_outcomes_checked b.Check.c_outcomes_checked;
  check_bool "failures" true (a.Check.c_failure = b.Check.c_failure)

(* Negative control: the crash harness still catches broken backends —
   the pre-crash run fails an oracle and the sweep reports it. *)
let t_crash_catches_broken () =
  let r = Check.crash_campaign Check.No_control ~seed:5 ~runs:20 in
  check_bool "no-control caught" true (r.Check.failures <> []);
  match r.Check.failures with
  | (_, sc, f) :: _ ->
      check_bool "tagged" true
        (List.mem (Check.failure_tag f)
           [ "durability"; "sg-cycle"; "returns"; "not-correct";
             "differential"; "ill-formed" ]);
      (* Crash bundles round-trip with the serving seed. *)
      let text =
        Bundle.to_string ~failure:f
          ~crash_seed:(Check.crash_seed_of sc)
          Check.No_control sc
      in
      (match Bundle.of_string text with
      | Error e -> Alcotest.fail e
      | Ok b ->
          check_bool "crash seed preserved" true
            (b.Bundle.crash_seed = Some (Check.crash_seed_of sc));
          check_int "sched seed preserved" sc.Check.sched_seed
            b.Bundle.scenario.Check.sched_seed)
  | [] -> ()

(* Shrinking a crash failure: ddmin over the crash sweep converges to
   a smaller scenario that still fails, deterministically. *)
let t_crash_shrinks () =
  let r =
    Check.crash_campaign ~stop_at_first:true Check.No_control ~seed:5 ~runs:20
  in
  match r.Check.failures with
  | [] -> Alcotest.fail "expected a crash-campaign failure to shrink"
  | (_, sc, _) :: _ -> (
      match Shrink.minimize_crash ~max_attempts:60 Check.No_control sc with
      | None -> Alcotest.fail "shrinker lost the failure"
      | Some s ->
          check_bool "still failing after shrink" true
            (Check.failure_tag s.Shrink.failure <> "");
          check_bool "no bigger than the original" true
            (Shrink.n_accesses s.Shrink.scenario.Check.forest
            <= Shrink.n_accesses sc.Check.forest);
          check_bool "deterministic" true s.Shrink.deterministic)

(* A recorded run that actually took a snapshot, for the torn-write
   cases below. *)
let run_with_snapshot () =
  let rec find i =
    if i > 40 then Alcotest.fail "no run produced a snapshot"
    else
      let backend, sc = scenario_for i in
      let rc =
        Check.record ~drop_prob:0.1 ~snapshot_at:6 ~seed:(3000 + i) backend sc
      in
      match rc.Check.rc_snapshot with
      | Some simg -> (backend, sc, rc, simg)
      | None -> find (i + 1)
  in
  find 0

(* Torn writes on the snapshot path: every strict truncation of the
   snapshot image — header cuts, mid-record cuts, a one-byte-short
   image — must be refused by the decoder, never half-accepted. *)
let t_torn_snapshot_refused () =
  let _, _, _, simg = run_with_snapshot () in
  let slen = String.length simg in
  check_bool "snapshot image non-trivial" true (slen > 16);
  List.iter
    (fun cut ->
      if cut >= 0 && cut < slen then
        match Wal.decode_snapshot (String.sub simg 0 cut) with
        | Error _ -> ()
        | Ok _ ->
            Alcotest.failf "torn snapshot accepted at cut %d of %d" cut slen)
    [ 0; 8; 16; slen / 4; slen / 2; slen - 1 ];
  match Wal.decode_snapshot simg with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("intact snapshot refused: " ^ e)

(* A bit-flipped snapshot is refused, and recovery falls back to the
   full log: the replayed engine reproduces the recorded counters as
   if the snapshot had never existed. *)
let t_flipped_snapshot_falls_back () =
  let backend, sc, rc, simg = run_with_snapshot () in
  let flip pos s =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
    Bytes.to_string b
  in
  let slen = String.length simg in
  List.iter
    (fun pos ->
      match Wal.decode_snapshot (flip pos simg) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "flipped snapshot accepted at byte %d" pos)
    [ 0; slen / 2; slen - 1 ];
  let eng = recover_full backend sc rc.Check.rc_wal in
  check_int "fallback submissions" rc.Check.rc_report.Check.s_submitted
    (Engine.submitted eng);
  check_int "fallback commits" rc.Check.rc_report.Check.s_committed
    (Engine.committed_top eng);
  check_int "fallback aborts" rc.Check.rc_report.Check.s_aborted
    (Engine.aborted_top eng)

let suite =
  ( "wal",
    [
      Alcotest.test_case "codec roundtrip" `Quick t_codec_roundtrip;
      Alcotest.test_case "adversarial decode" `Quick t_adversarial_decode;
      Alcotest.test_case "writer batching" `Quick t_writer_batching;
      Alcotest.test_case "outcome after steps" `Quick t_outcome_after_steps;
      Alcotest.test_case "compact" `Quick t_compact;
      Alcotest.test_case "closure incremental = compact" `Quick
        t_closure_incremental;
      Alcotest.test_case "closure bounded on record (20 seeds)" `Quick
        t_closure_bounded_on_record;
      Alcotest.test_case "snapshot + tail = full log (200 seeds)" `Quick
        t_snapshot_tail_equals_full;
      Alcotest.test_case "record matches serve" `Quick t_record_matches_serve;
      Alcotest.test_case "crash sweep, every boundary (200 seeds)" `Quick
        t_crash_sweep;
      Alcotest.test_case "crash sweep deterministic" `Quick
        t_crash_deterministic;
      Alcotest.test_case "crash catches broken backends" `Quick
        t_crash_catches_broken;
      Alcotest.test_case "crash failures shrink" `Quick t_crash_shrinks;
      Alcotest.test_case "torn snapshots refused" `Quick
        t_torn_snapshot_refused;
      Alcotest.test_case "flipped snapshot falls back to full log" `Quick
        t_flipped_snapshot_falls_back;
    ] )
