open Core
open Util

let sample =
  {|
; comment line
(objects
  (x register)
  (c (counter 3))
  (a (account 50))
  (s set) (q queue) (k keyed-store) (v vreg))

(txn (seq (access x read)
          (access x (write 7))
          (access c (incr 2))
          (access c (decr 1))
          (access c get)))
(txn (par (access a (deposit 5))
          (access a (withdraw 2))
          (access a balance)))
(txn (seq (access s (insert 1)) (access s (remove 2))
          (access s (member 1)) (access s size)))
(txn (seq (access q (enqueue "job")) (access q dequeue)))
(txn (seq (access k (kread 0)) (access k (kwrite 0 9))))
(txn (seq (access v vread) (access v (vwrite 3 8))))
|}

let t_parse_and_run () =
  match Program_io.parse sample with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (forest, schema) ->
      check_int "six transactions" 6 (List.length forest);
      check_int "seven objects" 7 (List.length schema.Schema.objects);
      (* The parsed workload runs and verifies. *)
      let tr = Serial_exec.run schema forest in
      check_bool "serial correct" true (Checker.serially_correct schema tr);
      let r = run_protocol ~seed:1 schema Undo_object.factory forest in
      check_bool "concurrent correct" true
        (Checker.serially_correct schema r.Runtime.trace)

let t_initial_values_respected () =
  match Program_io.parse "(objects (c (counter 3))) (txn (access c get))" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (forest, schema) -> (
      let tr = Serial_exec.run schema forest in
      match
        Trace.find_first
          (fun a ->
            match a with
            | Action.Request_commit (t, Value.Int 3) ->
                System_type.is_access schema.Schema.sys t
            | _ -> false)
          tr
      with
      | Some _ -> ()
      | None -> Alcotest.fail "get should return the declared initial 3")

let t_round_trip () =
  match Program_io.parse sample with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (forest, _) -> (
      let text =
        Program_io.to_string
          ~objects:
            [
              (Obj_id.make "x", "register"); (Obj_id.make "c", "(counter 3)");
              (Obj_id.make "a", "(account 50)"); (Obj_id.make "s", "set");
              (Obj_id.make "q", "queue"); (Obj_id.make "k", "keyed-store");
              (Obj_id.make "v", "vreg");
            ]
          forest
      in
      match Program_io.parse text with
      | Error e -> Alcotest.failf "re-parse failed: %s" e
      | Ok (forest', _) -> check_bool "round trip" true (forest = forest'))

let t_errors () =
  let bad text =
    match Program_io.parse text with
    | Ok _ -> Alcotest.failf "expected failure: %s" text
    | Error _ -> ()
  in
  bad "";
  bad "(objects (x register))";
  bad "(txn (access x read))";
  bad "(objects (x frobnicator)) (txn (access x read))";
  bad "(objects (x register)) (txn (access x frob))";
  bad "(objects (x register)) (txn (access y read))";
  bad "(objects (x register)) (txn (access x (write)))";
  bad "(objects (x register)) (txn (access x read)";
  bad "(objects (x register)) (txn (access x \"unterminated))";
  bad "(objects (x (counter banana))) (txn (access x get))"

let t_comments_and_strings () =
  match
    Program_io.parse
      "(objects (\"odd name\" register)) ; trailing\n(txn (access \"odd \
       name\" read))"
  with
  | Ok (forest, schema) ->
      check_int "one txn" 1 (List.length forest);
      check_bool "object with space" true
        (List.exists
           (fun x -> Obj_id.name x = "odd name")
           schema.Schema.objects)
  | Error e -> Alcotest.failf "parse failed: %s" e

let suite =
  ( "program_io",
    [
      Alcotest.test_case "parse and run" `Quick t_parse_and_run;
      Alcotest.test_case "initial values" `Quick t_initial_values_respected;
      Alcotest.test_case "round trip" `Quick t_round_trip;
      Alcotest.test_case "errors" `Quick t_errors;
      Alcotest.test_case "comments and quoted names" `Quick
        t_comments_and_strings;
    ] )
