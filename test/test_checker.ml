(* The randomized model-checking suite: every theorem of the paper,
   asserted over generated executions of every protocol. *)
open Core
open Util

let profiles =
  [
    ("small rw", Gen.registers, { Gen.default with n_top = 4; depth = 1; n_objects = 2 });
    ("deep rw", Gen.registers, { Gen.default with n_top = 4; depth = 3; n_objects = 3 });
    ( "hot rw",
      Gen.registers,
      { Gen.default with n_top = 6; depth = 2; n_objects = 1; theta = 0.9 } );
    ("counters", Gen.counters, { Gen.default with n_top = 6; depth = 2; n_objects = 2 });
    ("mixed", Gen.mixed, { Gen.default with n_top = 5; depth = 2; n_objects = 5 });
  ]

let seeds = List.init 6 (fun i -> (i * 37) + 1)

let assert_correct name schema (r : Runtime.result) =
  check_bool (name ^ ": not truncated") false r.stats.truncated;
  check_bool
    (name ^ ": well-formed")
    true
    (Simple_db.is_well_formed schema.Schema.sys r.trace);
  let v = Checker.check schema r.trace in
  if not v.Checker.serially_correct then
    Alcotest.failf "%s: verdict failed:@.%a" name Checker.pp_verdict v

(* Theorem 17: Moss' algorithm is serially correct for T0, on every
   workload shape, with and without aborts, under both policies. *)
let t_moss_correct () =
  List.iter
    (fun (pname, gen, profile) ->
      List.iter
        (fun seed ->
          if Schema.all_read_write (snd (Gen.forest_and_schema gen ~seed profile))
          then begin
            let forest, schema = Gen.forest_and_schema gen ~seed profile in
            let r = run_protocol ~seed schema Moss_object.factory forest in
            assert_correct (pname ^ " moss") schema r;
            let r =
              run_protocol ~abort_prob:0.05 ~seed:(seed + 1) schema
                Moss_object.factory forest
            in
            assert_correct (pname ^ " moss+aborts") schema r;
            let r =
              run_protocol ~policy:Runtime.Bsp_rounds ~seed:(seed + 2) schema
                Moss_object.factory forest
            in
            assert_correct (pname ^ " moss bsp") schema r
          end)
        seeds)
    profiles

(* Theorem 25: the undo logging algorithm is serially correct for T0 —
   on arbitrary data types. *)
let t_undo_correct () =
  List.iter
    (fun (pname, gen, profile) ->
      List.iter
        (fun seed ->
          let forest, schema = Gen.forest_and_schema gen ~seed profile in
          let r = run_protocol ~seed schema Undo_object.factory forest in
          assert_correct (pname ^ " undo") schema r;
          let r =
            run_protocol ~abort_prob:0.05 ~seed:(seed + 1) schema
              Undo_object.factory forest
          in
          assert_correct (pname ^ " undo+aborts") schema r)
        seeds)
    profiles

(* Both conflict modes give sound (acyclic implies correct) graphs on
   correct protocols; access-level edges contain operation-level ones. *)
let t_conflict_mode_containment () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 2 }
      in
      let r = run_protocol ~seed schema Moss_object.factory forest in
      let beta = Trace.serial r.Runtime.trace in
      let acc = Conflict.relation Conflict.Access_level schema beta in
      let op = Conflict.relation Conflict.Operation_level schema beta in
      List.iter
        (fun (a, b) ->
          check_bool "op-level edge also access-level" true
            (List.exists
               (fun (c, d) -> Txn_id.equal a c && Txn_id.equal b d)
               acc))
        op;
      check_bool "op-level verdict also correct" true
        (Checker.serially_correct ~mode:Sg.Operation_level schema r.Runtime.trace))
    seeds

(* Negative controls: the broken protocols must be caught under
   contention.  We require rejection on a decisive majority of seeds,
   and additionally that at least one seed yields a cyclic graph or a
   return-value violation (not merely suitability trouble). *)
let count_rejections schema_factory protocol n =
  let rejected = ref 0 and bad_values = ref 0 and cycles = ref 0 in
  for seed = 1 to n do
    let forest, schema = schema_factory seed in
    let r = run_protocol ~seed schema protocol forest in
    let v = Checker.check schema r.Runtime.trace in
    if not v.Checker.serially_correct then incr rejected;
    if not v.Checker.appropriate then incr bad_values;
    if not v.Checker.acyclic then incr cycles
  done;
  (!rejected, !bad_values, !cycles)

let hot_rw seed =
  Gen.forest_and_schema Gen.registers ~seed
    { Gen.default with n_top = 8; depth = 1; n_objects = 1; theta = 0.0;
      read_ratio = 0.5 }

let t_no_control_rejected () =
  let rejected, _, cycles = count_rejections hot_rw Broken.no_control 30 in
  check_bool "mostly rejected" true (rejected >= 20);
  (* Without aborts, update-in-place reads replay fine; the violation
     shows up as serialization-graph cycles. *)
  check_bool "cyclic graph somewhere" true (cycles >= 1);
  (* With aborts in flight, dirty data also breaks return values. *)
  let bad_values = ref 0 in
  for seed = 1 to 30 do
    let forest, schema = hot_rw seed in
    let r =
      run_protocol ~abort_prob:0.1 ~seed schema Broken.no_control forest
    in
    let v = Checker.check schema r.Runtime.trace in
    if not v.Checker.appropriate then incr bad_values
  done;
  check_bool "return values violated under aborts" true (!bad_values >= 1)

let t_unsafe_read_rejected () =
  (* Unsafe reads only show up with aborts in flight: inject them. *)
  let rejected = ref 0 in
  for seed = 1 to 30 do
    let forest, schema = hot_rw seed in
    let r =
      run_protocol ~abort_prob:0.1 ~seed schema Broken.unsafe_read forest
    in
    if not (Checker.serially_correct schema r.Runtime.trace) then incr rejected
  done;
  check_bool "rejected somewhere" true (!rejected >= 5)

let t_no_undo_rejected () =
  let counters seed =
    Gen.forest_and_schema Gen.mixed ~seed
      { Gen.default with n_top = 8; depth = 1; n_objects = 2 }
  in
  let rejected = ref 0 in
  for seed = 1 to 30 do
    let forest, schema = counters seed in
    let r = run_protocol ~abort_prob:0.1 ~seed schema Broken.no_undo forest in
    if not (Checker.serially_correct schema r.Runtime.trace) then incr rejected
  done;
  check_bool "rejected somewhere" true (!rejected >= 5)

(* The re-verification arm of the checker: on correct protocols the
   witness order is always suitable and every view replays — i.e. the
   proof of Theorem 8 goes through constructively. *)
let t_witness_reverification () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 2; n_objects = 2 }
      in
      let r = run_protocol ~abort_prob:0.04 ~seed schema Moss_object.factory forest in
      let v = Checker.check schema r.Runtime.trace in
      check_bool "suitable witness" true (v.Checker.suitable = Some true);
      check_bool "views legal" true (v.Checker.views_legal = Some true))
    seeds

(* Propositions 16/24: conflict and precedes are subrelations of the
   completion order on correct protocols. *)
let t_completion_subrelation () =
  List.iter
    (fun (factory, name) ->
      List.iter
        (fun seed ->
          let forest, schema =
            Gen.forest_and_schema Gen.registers ~seed
              { Gen.default with n_top = 5; depth = 2 }
          in
          let r = run_protocol ~seed schema factory forest in
          let beta = Trace.serial r.Runtime.trace in
          let mode =
            (* Moss orders access-level conflicts by completion; the
               commutativity-based undo object only orders the
               operation-level (non-commuting) ones - Lemma 22. *)
            if name = "moss" then Conflict.Access_level
            else Conflict.Operation_level
          in
          List.iter
            (fun (a, b) ->
              check_bool (name ^ ": conflict within completion") true
                (Trace.completion_before beta a b))
            (Conflict.relation mode schema beta);
          List.iter
            (fun (a, b) ->
              check_bool (name ^ ": precedes within completion") true
                (Trace.completion_before beta a b))
            (Precedes.relation beta))
        seeds)
    [ (Moss_object.factory, "moss"); (Undo_object.factory, "undo") ]


(* Deep nesting stress: depth 5, all protocols still correct and the
   machinery does not blow up. *)
let t_deep_nesting () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 3; depth = 5; fanout = 2; n_objects = 2 }
      in
      let r =
        run_protocol ~abort_prob:0.03 ~seed schema Moss_object.factory forest
      in
      assert_correct "deep moss" schema r;
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 3; depth = 5; fanout = 2; n_objects = 4 }
      in
      let r =
        run_protocol ~abort_prob:0.03 ~seed schema Undo_object.factory forest
      in
      assert_correct "deep undo" schema r)
    [ 1; 2; 3 ]



(* Regression (found by bench E12): commutativity-based protocols may
   run same-datum register writes out of completion order; the
   Section 4 access-level graph then has cycles, and only the
   operation-level default certifies the behavior.  Seeds 104/306
   exhibited it. *)
let t_same_value_write_reorder_regression () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 8; depth = 2; n_objects = 2 }
      in
      List.iter
        (fun (name, factory) ->
          let r =
            run_protocol ~policy:Runtime.Bsp_rounds ~seed schema factory forest
          in
          if not (Checker.serially_correct schema r.Runtime.trace) then
            Alcotest.failf "%s seed %d rejected under default mode" name seed)
        [ ("undo", Undo_object.factory); ("commlock", Commlock_object.factory) ])
    [ 104; 306; 3; 205; 407 ]


let suite =
  ( "checker",
    [
      Alcotest.test_case "moss serially correct (Thm 17)" `Slow t_moss_correct;
      Alcotest.test_case "undo serially correct (Thm 25)" `Slow t_undo_correct;
      Alcotest.test_case "conflict mode containment" `Quick
        t_conflict_mode_containment;
      Alcotest.test_case "no_control rejected" `Quick t_no_control_rejected;
      Alcotest.test_case "unsafe_read rejected" `Quick t_unsafe_read_rejected;
      Alcotest.test_case "no_undo rejected" `Quick t_no_undo_rejected;
      Alcotest.test_case "witness re-verification" `Quick t_witness_reverification;
      Alcotest.test_case "Props 16/24 completion order" `Quick
        t_completion_subrelation;
      Alcotest.test_case "deep nesting stress" `Slow t_deep_nesting;
      Alcotest.test_case "same-value write reorder regression" `Quick
        t_same_value_write_reorder_regression;
    ] )
