(* Unit tests for Trace_stats: exact field values on a hand-built
   trace, and agreement with the runtime's own accounting on a
   generated run. *)
open Core
open Util

let v i = Value.Int i

(* A depth-2 trace with two overlapping top-level transactions, one
   nested child each, one abort, and a pair of informs.  Every field
   of the profile is pinned by hand. *)
let hand_trace () =
  Trace.of_list
    [
      Action.Request_create (txn [ 0 ]);
      Action.Create (txn [ 0 ]);
      Action.Request_create (txn [ 1 ]);
      Action.Create (txn [ 1 ]);
      (* both children of T0's root are now live: peak siblings = 2 *)
      Action.Request_create (txn [ 0; 0 ]);
      Action.Create (txn [ 0; 0 ]);
      Action.Request_commit (txn [ 0; 0 ], v 1);
      Action.Commit (txn [ 0; 0 ]);
      Action.Report_commit (txn [ 0; 0 ], v 1);
      Action.Inform_commit (x0, txn [ 0; 0 ]);
      Action.Request_create (txn [ 1; 0 ]);
      Action.Create (txn [ 1; 0 ]);
      Action.Abort (txn [ 1; 0 ]);
      Action.Report_abort (txn [ 1; 0 ]);
      Action.Inform_abort (x0, txn [ 1; 0 ]);
      Action.Request_commit (txn [ 0 ], v 0);
      Action.Commit (txn [ 0 ]);
      Action.Abort (txn [ 1 ]);
    ]

let t_hand_built () =
  let s = Trace_stats.of_trace (hand_trace ()) in
  check_int "events" 18 s.Trace_stats.events;
  check_int "serial events" 16 s.Trace_stats.serial_events;
  check_int "informs" 2 s.Trace_stats.informs;
  check_int "creates" 4 s.Trace_stats.creates;
  check_int "commits" 2 s.Trace_stats.commits;
  check_int "aborts" 2 s.Trace_stats.aborts;
  check_int "commit requests" 2 s.Trace_stats.commit_requests;
  (* T0.0, T0.1, T0.0.0, T0.1.0 *)
  check_int "transactions" 4 s.Trace_stats.transactions;
  check_int "max depth" 2 s.Trace_stats.max_depth;
  check_int "peak live siblings" 2 s.Trace_stats.max_live_siblings

let t_empty () =
  let s = Trace_stats.of_trace (Trace.of_list []) in
  check_int "events" 0 s.Trace_stats.events;
  check_int "transactions" 0 s.Trace_stats.transactions;
  check_int "max depth" 0 s.Trace_stats.max_depth;
  check_int "peak live siblings" 0 s.Trace_stats.max_live_siblings

(* The live-sibling counter must peak at the overlap, not the total:
   three successive children that never overlap peak at 1. *)
let t_siblings_sequential () =
  let trace =
    Trace.of_list
      [
        Action.Create (txn [ 0 ]);
        Action.Commit (txn [ 0 ]);
        Action.Create (txn [ 1 ]);
        Action.Abort (txn [ 1 ]);
        Action.Create (txn [ 2 ]);
        Action.Commit (txn [ 2 ]);
      ]
  in
  let s = Trace_stats.of_trace trace in
  check_int "creates" 3 s.Trace_stats.creates;
  check_int "peak live siblings" 1 s.Trace_stats.max_live_siblings

(* On a real run the profile must agree with the runtime's own
   accounting: events = stats.actions, every create resolves to a
   commit or abort (the runtime drives executions to quiescence), and
   the committed/aborted top-level split is visible in the trace. *)
let t_agrees_with_runtime () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 2; n_objects = 3 }
      in
      let r =
        run_protocol ~abort_prob:0.05 ~seed schema Moss_object.factory forest
      in
      let s = Trace_stats.of_trace r.Runtime.trace in
      check_int "events = actions" r.Runtime.stats.Runtime.actions
        s.Trace_stats.events;
      (* every created transaction completes (quiescence), but aborts
         may also hit requested-not-yet-created transactions *)
      check_bool "creates resolved" true
        (s.Trace_stats.commits + s.Trace_stats.aborts >= s.Trace_stats.creates);
      check_bool "commits bounded by creates" true
        (s.Trace_stats.commits <= s.Trace_stats.creates);
      let top_completions =
        Trace.to_list r.Runtime.trace
        |> List.filter (fun a ->
               match a with
               | Action.Commit t | Action.Abort t -> Txn_id.depth t = 1
               | _ -> false)
        |> List.length
      in
      check_int "top-level completions"
        (r.Runtime.committed_top + r.Runtime.aborted_top)
        top_completions;
      check_bool "some concurrency" true (s.Trace_stats.max_live_siblings >= 1))
    (List.init 5 (fun i -> i + 1))

(* A serial execution never has two live siblings. *)
let t_serial_is_sequential () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 2 }
      in
      let trace = Serial_exec.run schema forest in
      let s = Trace_stats.of_trace trace in
      check_int "serial peak siblings" 1 s.Trace_stats.max_live_siblings;
      check_int "no informs" 0 s.Trace_stats.informs)
    [ 1; 2; 3 ]

let suite =
  ( "trace_stats",
    [
      Alcotest.test_case "hand-built trace" `Quick t_hand_built;
      Alcotest.test_case "empty trace" `Quick t_empty;
      Alcotest.test_case "sequential siblings peak at 1" `Quick
        t_siblings_sequential;
      Alcotest.test_case "agrees with runtime accounting" `Quick
        t_agrees_with_runtime;
      Alcotest.test_case "serial runs have no concurrency" `Quick
        t_serial_is_sequential;
    ] )
