open Core
open Util

(* Conflict-serializable history: also view serializable. *)
let h_chain =
  History.
    [
      Op (1, x0, Write); Commit 1; Op (2, x0, Read); Op (2, y0, Write);
      Commit 2; Op (3, y0, Read); Commit 3;
    ]

(* The classic blind-write history: view serializable (as T1 T2 T3)
   but not conflict serializable.  H = w1[x] w2[x] w2[y] w1[y] w3[x] w3[y]:
   T3 performs the final writes on both objects and there are no reads,
   so T1 T2 T3 is view equivalent; but the w1/w2 conflicts on x and y
   point in opposite directions. *)
let h_blind =
  History.
    [
      Op (1, x0, Write); Op (2, x0, Write); Op (2, y0, Write);
      Op (1, y0, Write); Op (3, x0, Write); Op (3, y0, Write);
      Commit 1; Commit 2; Commit 3;
    ]

let t_chain () =
  check_bool "conflict-serializable" true (Flat_sg.is_serializable h_chain);
  check_bool "view-serializable" true (View_serial.is_view_serializable h_chain)

let t_blind_write_gap () =
  check_bool "not conflict serializable" false (Flat_sg.is_serializable h_blind);
  check_bool "view serializable" true (View_serial.is_view_serializable h_blind)

let t_not_view_serializable () =
  (* r1[x] w2[x] r1[x] with both committed: T1 reads initial then T2's
     value - no serial order gives that. *)
  let h =
    History.
      [ Op (1, x0, Read); Op (2, x0, Write); Op (1, x0, Read); Commit 1; Commit 2 ]
  in
  check_bool "rejected" false (View_serial.is_view_serializable h)

let t_reads_from () =
  let rf = View_serial.reads_from h_chain in
  (* Two reads: T2 reads x from T1; T3 reads y from T2. *)
  check_int "two reads" 2 (List.length rf);
  check_bool "t2 from t1" true
    (List.exists (fun (_, x, src) -> Obj_id.equal x x0 && src = Some 1) rf);
  check_bool "t3 from t2" true
    (List.exists (fun (_, y, src) -> Obj_id.equal y y0 && src = Some 2) rf);
  (* Initial reads are None. *)
  let h = History.[ Op (1, x0, Read); Commit 1 ] in
  check_bool "initial read" true
    (List.for_all (fun (_, _, src) -> src = None) (View_serial.reads_from h))

let t_view_equivalent_specific () =
  check_bool "equivalent to 1,2,3" true
    (View_serial.view_equivalent h_chain [ 1; 2; 3 ]);
  check_bool "not equivalent to 2,1,3" false
    (View_serial.view_equivalent h_chain [ 2; 1; 3 ])

(* Conflict serializability implies view serializability, on random
   flat histories extracted from generated runs. *)
let t_conflict_implies_view () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 5; depth = 1; n_objects = 2 }
      in
      let r = run_protocol ~seed schema Broken.no_control forest in
      let h = History.of_trace schema r.Runtime.trace in
      if Flat_sg.is_serializable h then
        check_bool "conflict => view" true (View_serial.is_view_serializable h))
    (List.init 12 (fun i -> i + 1))

let t_too_large () =
  let h =
    List.concat_map
      (fun i -> History.[ Op (i, x0, Write); Commit i ])
      (List.init 10 (fun i -> i))
  in
  check_bool "raises on >9 txns" true
    (try
       ignore (View_serial.is_view_serializable h);
       false
     with View_serial.Too_large 10 -> true)

let suite =
  ( "view_serial",
    [
      Alcotest.test_case "serializable chain" `Quick t_chain;
      Alcotest.test_case "blind-write gap" `Quick t_blind_write_gap;
      Alcotest.test_case "non view serializable" `Quick t_not_view_serializable;
      Alcotest.test_case "reads_from" `Quick t_reads_from;
      Alcotest.test_case "view_equivalent" `Quick t_view_equivalent_specific;
      Alcotest.test_case "conflict implies view" `Quick t_conflict_implies_view;
      Alcotest.test_case "search bound" `Quick t_too_large;
    ] )
