open Core
open Util

(* Hand-built trace: two top-level transactions over one object.
   T1 = txn [0] with access A1 = txn [0;0]; T2 = txn [1] with access
   A2 = txn [1;0].  T1 commits fully; T2 aborts. *)
let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]
let t2 = txn [ 1 ]
let a2 = txn [ 1; 0 ]

let sample =
  Trace.of_list
    Action.
      [
        Request_create t1;
        Create t1;
        Request_create a1;
        Create a1;
        Request_commit (a1, Value.Ok);
        Commit a1;
        Report_commit (a1, Value.Ok);
        Request_commit (t1, Value.Int 1);
        Commit t1;
        Report_commit (t1, Value.Int 1);
        Request_create t2;
        Create t2;
        Request_create a2;
        Create a2;
        Inform_commit (x0, a1);
        Abort t2;
        Report_abort t2;
        Inform_abort (x0, t2);
      ]

let t_serial () =
  check_int "serial drops informs" (Trace.length sample - 2)
    (Trace.length (Trace.serial sample))

let t_proj_txn () =
  (* Events with transaction = t1: Create t1, Request_create a1,
     Report_commit a1, Request_commit t1. *)
  check_int "proj t1" 4 (Trace.length (Trace.proj_txn sample t1));
  (* Events with transaction = T0: Request_create t1, Report_commit t1,
     Request_create t2, Report_abort t2. *)
  check_int "proj root" 4 (Trace.length (Trace.proj_txn sample Txn_id.root));
  check_int "proj access" 2 (Trace.length (Trace.proj_txn sample a1))

let t_orphan_live () =
  check_bool "a2 orphan (ancestor aborted)" true (Trace.is_orphan sample a2);
  check_bool "t2 orphan (self aborted)" true (Trace.is_orphan sample t2);
  check_bool "a1 not orphan" false (Trace.is_orphan sample a1);
  check_bool "a2 live" true (Trace.is_live sample a2);
  check_bool "a1 not live (committed)" false (Trace.is_live sample a1);
  check_bool "t2 not live (aborted)" false (Trace.is_live sample t2)

let t_committed_aborted () =
  check_int "committed" 2 (Txn_id.Set.cardinal (Trace.committed sample));
  check_int "aborted" 1 (Txn_id.Set.cardinal (Trace.aborted sample));
  check_bool "t1 committed" true (Txn_id.Set.mem t1 (Trace.committed sample))

let t_visible () =
  check_bool "a1 visible to root (all ancestors committed)" true
    (Trace.visible_txn sample ~to_:Txn_id.root a1);
  check_bool "a2 not visible to root" false
    (Trace.visible_txn sample ~to_:Txn_id.root a2);
  check_bool "a2 visible to itself" true (Trace.visible_txn sample ~to_:a2 a2);
  (* A live transaction is not yet visible to its parent — visibility
     demands COMMITs for every ancestor not shared, including itself. *)
  check_bool "live a2 not visible to t2" false
    (Trace.visible_txn sample ~to_:t2 a2);
  check_bool "a2 visible to its own descendant" true
    (Trace.visible_txn sample ~to_:(Txn_id.child a2 0) a2);
  (* visible(sample, T0) keeps events whose hightransaction is visible:
     everything of T1's committed subtree and T0's own events, but not
     the events high at t2/a2. *)
  let vis = Trace.visible sample ~to_:Txn_id.root in
  check_bool "no CREATE(t2) in visible" true
    (Trace.find_first (fun a -> a = Action.Create t2) vis = None);
  check_bool "CREATE(t1) in visible" true
    (Trace.find_first (fun a -> a = Action.Create t1) vis <> None);
  (* ABORT(t2) has hightransaction T0, which is visible. *)
  check_bool "ABORT(t2) visible (high at T0)" true
    (Trace.find_first (fun a -> a = Action.Abort t2) vis <> None)

let t_clean () =
  let cl = Trace.clean sample in
  check_bool "clean drops t2 subtree events" true
    (Trace.find_first (fun a -> a = Action.Create t2) cl = None);
  check_bool "clean drops REQUEST_CREATE(a2): high at t2 which is orphan" true
    (Trace.find_first (fun a -> a = Action.Request_create a2) cl = None);
  check_bool "clean keeps t1 events" true
    (Trace.find_first (fun a -> a = Action.Create t1) cl <> None)

let t_operations () =
  let schema =
    Program.schema_of
      ~objects:[ (x0, Register.make ()) ]
      [
        Program.seq [ Program.access x0 (Datatype.Write (Value.Int 5)) ];
        Program.seq [ Program.access x0 Datatype.Read ];
      ]
  in
  let ops = Trace.operations schema.Schema.sys sample x0 in
  check_int "one operation of x" 1 (List.length ops);
  let t, v = List.hd ops in
  Alcotest.check txn_testable "op txn" a1 t;
  Alcotest.check value_testable "op value" Value.Ok v

let t_affects () =
  (* REQUEST_CREATE(t1) directly affects CREATE(t1): indices 0, 1. *)
  check_bool "rc -> create" true (Trace.directly_affects sample 0 1);
  (* REQUEST_COMMIT(a1) -> COMMIT(a1): indices 4, 5. *)
  check_bool "rq -> commit" true (Trace.directly_affects sample 4 5);
  (* COMMIT(a1) -> REPORT_COMMIT(a1): 5, 6. *)
  check_bool "commit -> report" true (Trace.directly_affects sample 5 6);
  (* Same transaction t1: CREATE(t1) at 1 and REQUEST_CREATE(a1) at 2. *)
  check_bool "same txn" true (Trace.directly_affects sample 1 2);
  check_bool "unrelated events" false (Trace.directly_affects sample 1 11);
  (* Transitivity: REQUEST_CREATE(t1) affects REQUEST_COMMIT(t1) at 7. *)
  check_bool "affects transitive" true (Trace.affects sample 0 7);
  check_bool "affects not backward" false (Trace.affects sample 7 0);
  (* Cross-transaction affects path via T0: REQUEST_CREATE(t2) at 10
     is affected by REPORT_COMMIT(t1) at 9?  Both have transaction T0:
     9 before 10, same transaction -> directly affects. *)
  check_bool "t0 chaining" true (Trace.affects sample 9 10)

let t_completion_before () =
  check_bool "t1 before t2" true (Trace.completion_before sample t1 t2);
  check_bool "not reversed" false (Trace.completion_before sample t2 t1);
  check_bool "not siblings" false (Trace.completion_before sample t1 a2);
  (* a1 and a2 are not siblings (different parents). *)
  check_bool "different parents" false (Trace.completion_before sample a1 a2)

let t_prefix_append () =
  let p = Trace.prefix sample 3 in
  check_int "prefix length" 3 (Trace.length p);
  let q = Trace.append p (Action.Create a2) in
  check_int "append length" 4 (Trace.length q);
  check_bool "append content" true (Trace.get q 3 = Action.Create a2);
  check_int "concat" 7 (Trace.length (Trace.concat p q))


let t_trace_stats () =
  let s = Trace_stats.of_trace sample in
  Alcotest.(check int) "events" (Trace.length sample) s.Trace_stats.events;
  Alcotest.(check int) "informs" 2 s.Trace_stats.informs;
  Alcotest.(check int) "creates" 4 s.Trace_stats.creates;
  Alcotest.(check int) "commits" 2 s.Trace_stats.commits;
  Alcotest.(check int) "aborts" 1 s.Trace_stats.aborts;
  Alcotest.(check int) "commit requests" 2 s.Trace_stats.commit_requests;
  Alcotest.(check int) "max depth" 2 s.Trace_stats.max_depth;
  (* T1 completes before T2 is created: never two live top siblings. *)
  Alcotest.(check int) "peak live siblings" 1 s.Trace_stats.max_live_siblings


let suite =
  ( "trace",
    [
      Alcotest.test_case "serial" `Quick t_serial;
      Alcotest.test_case "proj_txn" `Quick t_proj_txn;
      Alcotest.test_case "orphan/live" `Quick t_orphan_live;
      Alcotest.test_case "committed/aborted" `Quick t_committed_aborted;
      Alcotest.test_case "visible" `Quick t_visible;
      Alcotest.test_case "clean" `Quick t_clean;
      Alcotest.test_case "operations" `Quick t_operations;
      Alcotest.test_case "affects" `Quick t_affects;
      Alcotest.test_case "completion_before" `Quick t_completion_before;
      Alcotest.test_case "prefix/append" `Quick t_prefix_append;
      Alcotest.test_case "trace stats" `Quick t_trace_stats;
    ] )
