open Core
open Util

let t1 = txn [ 0 ]
let w1 = txn [ 0; 0 ]
let t2 = txn [ 1 ]
let r2 = txn [ 1; 0 ]

let schema () =
  Program.schema_of
    ~objects:[ (x0, Register.make ()) ]
    [
      Program.seq [ Program.access x0 (Datatype.Write (Value.Int 5)) ];
      Program.seq [ Program.access x0 Datatype.Read ];
    ]

let trace_with_read v =
  Trace.of_list
    Action.
      [
        Request_create t1; Create t1; Request_create w1; Create w1;
        Request_commit (w1, Value.Ok); Commit w1; Report_commit (w1, Value.Ok);
        Request_commit (t1, Value.Unit); Commit t1; Report_commit (t1, Value.Unit);
        Request_create t2; Create t2; Request_create r2; Create r2;
        Request_commit (r2, v); Commit r2; Report_commit (r2, v);
        Request_commit (t2, Value.Unit); Commit t2; Report_commit (t2, Value.Unit);
      ]

let t_appropriate_good () =
  let s = schema () in
  let tr = trace_with_read (Value.Int 5) in
  check_bool "general" true (Return_values.appropriate_general s tr);
  check_bool "rw" true (Return_values.appropriate_rw s tr);
  check_bool "lemma6" true (Return_values.lemma6_conditions s tr);
  check_bool "no violator" true (Return_values.violating_object s tr = None)

let t_appropriate_bad () =
  let s = schema () in
  let tr = trace_with_read (Value.Int 99) in
  check_bool "general rejects" false (Return_values.appropriate_general s tr);
  check_bool "rw rejects" false (Return_values.appropriate_rw s tr);
  check_bool "lemma6 rejects" false (Return_values.lemma6_conditions s tr);
  check_bool "violator named" true (Return_values.violating_object s tr = Some x0)

let t_aborted_write_ignored () =
  (* The writer aborts: a read of the initial value is appropriate, a
     read of the aborted value is not. *)
  let s = schema () in
  let mk v =
    Trace.of_list
      Action.
        [
          Request_create t1; Create t1; Request_create w1; Create w1;
          Request_commit (w1, Value.Ok); Commit w1;
          Abort t1; Report_abort t1;
          Request_create t2; Create t2; Request_create r2; Create r2;
          Request_commit (r2, v); Commit r2; Report_commit (r2, v);
          Request_commit (t2, Value.Unit); Commit t2; Report_commit (t2, Value.Unit);
        ]
  in
  check_bool "initial value ok" true
    (Return_values.appropriate_general s (mk (Value.Int 0)));
  check_bool "dirty value rejected" false
    (Return_values.appropriate_general s (mk (Value.Int 5)))

let t_wrong_ack () =
  let s = schema () in
  let tr =
    Trace.of_list
      Action.
        [
          Request_create t1; Create t1; Request_create w1; Create w1;
          Request_commit (w1, Value.Int 5); Commit w1;
          Request_commit (t1, Value.Unit); Commit t1;
        ]
  in
  check_bool "write must return OK" false (Return_values.appropriate_general s tr)

let t_current_safe () =
  let s = schema () in
  let tr = trace_with_read (Value.Int 5) in
  (* The read's REQUEST_COMMIT is at index 13 of the serial trace. *)
  let idx =
    match Trace.find_first (fun a -> a = Action.Request_commit (r2, Value.Int 5)) tr with
    | Some i -> i
    | None -> Alcotest.fail "read event missing"
  in
  check_bool "current" true (Return_values.current s tr idx);
  check_bool "safe" true (Return_values.safe s tr idx);
  (* An unsafe read: writer responded but its ancestors have not
     committed when the read fires. *)
  let unsafe =
    Trace.of_list
      Action.
        [
          Request_create t1; Create t1; Request_create w1; Create w1;
          Request_commit (w1, Value.Ok);
          Request_create t2; Create t2; Request_create r2; Create r2;
          Request_commit (r2, Value.Int 5);
        ]
  in
  let idx =
    Option.get
      (Trace.find_first
         (fun a -> a = Action.Request_commit (r2, Value.Int 5))
         unsafe)
  in
  check_bool "dirty read is current" true (Return_values.current s unsafe idx);
  check_bool "dirty read is not safe" false (Return_values.safe s unsafe idx)

(* Lemma 5: on read/write schemas the two formulations agree, and
   Lemma 6: current+safe+OK-writes implies appropriateness — validated
   on traces produced by the Moss protocol under many seeds, including
   aborts. *)
let t_equivalence_on_generated () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 6; depth = 2; n_objects = 3 }
      in
      let r =
        run_protocol ~abort_prob:0.03 ~seed schema Moss_object.factory forest
      in
      let beta = Trace.serial r.Runtime.trace in
      let general = Return_values.appropriate_general schema beta in
      let rw = Return_values.appropriate_rw schema beta in
      check_bool "lemma 5 equivalence" general rw;
      if Return_values.lemma6_conditions schema beta then
        check_bool "lemma 6 implication" true general)
    (List.init 15 (fun i -> i + 100))

let suite =
  ( "return_values",
    [
      Alcotest.test_case "appropriate (good)" `Quick t_appropriate_good;
      Alcotest.test_case "appropriate (bad)" `Quick t_appropriate_bad;
      Alcotest.test_case "aborted write ignored" `Quick t_aborted_write_ignored;
      Alcotest.test_case "wrong write ack" `Quick t_wrong_ack;
      Alcotest.test_case "current/safe" `Quick t_current_safe;
      Alcotest.test_case "lemma 5/6 on generated traces" `Quick
        t_equivalence_on_generated;
    ] )
