open Core
open Util

let t1 = txn [ 0 ]
let a1 = txn [ 0; 0 ]
let t2 = txn [ 1 ]
let a2 = txn [ 1; 0 ]
let ctr = Counter.make ()
let acct = Bank_account.make ~init:10 ()

let t_commuting_ops_interleave () =
  (* Two increments from different top-level transactions can both
     respond with neither committed: increments commute. *)
  let s = Undo_object.initial in
  let s = Undo_object.create s a1 in
  let s = Undo_object.create s a2 in
  let s, v =
    Option.get (Undo_object.request_commit ctr s a1 (Datatype.Incr 2))
  in
  Alcotest.check value_testable "ack" Value.Ok v;
  match Undo_object.request_commit ctr s a2 (Datatype.Incr 3) with
  | Some (s', _) -> check_int "log holds both" 2 (List.length s'.Undo_object.log)
  | None -> Alcotest.fail "commuting increment should fire"

let t_conflicting_blocked_until_visible () =
  (* A Get conflicts with an uncommitted sibling's Incr: blocked until
     the writer's chain is known committed. *)
  let s = Undo_object.initial in
  let s = Undo_object.create s a1 in
  let s = Undo_object.create s a2 in
  let s, _ = Option.get (Undo_object.request_commit ctr s a1 (Datatype.Incr 2)) in
  check_bool "get blocked" true (Undo_object.request_commit ctr s a2 Datatype.Get = None);
  Alcotest.(check (list txn_testable)) "blocker" [ a1 ]
    (Undo_object.blockers ctr s a2 Datatype.Get);
  let s = Undo_object.inform_commit s a1 in
  check_bool "still blocked (t1 uncommitted)" true
    (Undo_object.request_commit ctr s a2 Datatype.Get = None);
  let s = Undo_object.inform_commit s t1 in
  match Undo_object.request_commit ctr s a2 Datatype.Get with
  | Some (_, v) -> Alcotest.check value_testable "get sees increment" (Value.Int 2) v
  | None -> Alcotest.fail "get should fire once writer visible"

let t_undo_on_abort () =
  let s = Undo_object.initial in
  let s = Undo_object.create s a1 in
  let s, _ = Option.get (Undo_object.request_commit ctr s a1 (Datatype.Incr 5)) in
  let s = Undo_object.inform_abort s t1 in
  check_int "log purged" 0 (List.length s.Undo_object.log);
  let s = Undo_object.create s a2 in
  match Undo_object.request_commit ctr s a2 Datatype.Get with
  | Some (_, v) -> Alcotest.check value_testable "abort undone" (Value.Int 0) v
  | None -> Alcotest.fail "get should fire after undo"

let t_own_descendant_ops_visible () =
  (* Operations of one's own ancestors' completed children do not block:
     sibling accesses under the same parent conflict until the first is
     committed, but an access never conflicts with entries from its own
     ancestor chain. *)
  let w = txn [ 0; 0 ] and r = txn [ 0; 1 ] in
  let s = Undo_object.initial in
  let s = Undo_object.create s w in
  let s, _ = Option.get (Undo_object.request_commit ctr s w (Datatype.Incr 1)) in
  let s = Undo_object.create s r in
  check_bool "sibling get blocked pre-commit" true
    (Undo_object.request_commit ctr s r Datatype.Get = None);
  let s = Undo_object.inform_commit s w in
  (* ancestors(w) - ancestors(r) = {w}, now committed. *)
  match Undo_object.request_commit ctr s r Datatype.Get with
  | Some (_, v) -> Alcotest.check value_testable "sees sibling" (Value.Int 1) v
  | None -> Alcotest.fail "should fire after sibling commit"

let t_withdraw_commutativity_in_action () =
  (* Two successful withdrawals interleave; a balance is blocked. *)
  let s = Undo_object.initial in
  let s = Undo_object.create s a1 in
  let s = Undo_object.create s a2 in
  let s, v = Option.get (Undo_object.request_commit acct s a1 (Datatype.Withdraw 3)) in
  Alcotest.check value_testable "first ok" (Value.Bool true) v;
  (match Undo_object.request_commit acct s a2 (Datatype.Withdraw 4) with
  | Some (_, v) -> Alcotest.check value_testable "second ok" (Value.Bool true) v
  | None -> Alcotest.fail "successful withdrawals commute");
  let b = txn [ 2; 0 ] in
  let s = Undo_object.create s b in
  check_bool "balance blocked" true
    (Undo_object.request_commit acct s b Datatype.Balance = None)

let t_failed_withdraw_conflicts_with_success () =
  (* A withdrawal that would fail conflicts with the pending successful
     one (mixed outcomes do not commute): blocked, not failed. *)
  let s = Undo_object.initial in
  let s = Undo_object.create s a1 in
  let s = Undo_object.create s a2 in
  let s, _ = Option.get (Undo_object.request_commit acct s a1 (Datatype.Withdraw 8)) in
  check_bool "would-fail withdrawal blocked" true
    (Undo_object.request_commit acct s a2 (Datatype.Withdraw 5) = None)

let t_locally_visible () =
  let s = Undo_object.initial in
  check_bool "self visible" true (Undo_object.locally_visible s ~to_:a1 a1);
  check_bool "sibling not visible" false (Undo_object.locally_visible s ~to_:a2 a1);
  let s = Undo_object.inform_commit s a1 in
  let s = Undo_object.inform_commit s t1 in
  check_bool "visible after chain commits" true
    (Undo_object.locally_visible s ~to_:a2 a1)

(* Lemma invariants over generated executions. *)
let t_lemmas_on_generated () =
  List.iter
    (fun seed ->
      let forest, schema =
        Gen.forest_and_schema Gen.mixed ~seed
          { Gen.default with n_top = 5; depth = 2; n_objects = 4 }
      in
      let r = run_protocol ~abort_prob:0.06 ~seed schema Undo_object.factory forest in
      List.iter
        (fun x ->
          let proj = Undo_invariants.project schema x r.Runtime.trace in
          (match Undo_invariants.replay schema x proj with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "replay failed: %s" e);
          (* Victim sample sets for Lemma 21: live top-level txns. *)
          let samples = [ [ t1 ]; [ t2 ]; [ t1; t2 ] ] in
          List.iter
            (fun prefix ->
              check_bool "lemma 20" true (Undo_invariants.lemma20 schema x prefix);
              check_bool "lemma 21" true
                (Undo_invariants.lemma21 schema x prefix ~samples);
              check_bool "lemma 22" true (Undo_invariants.lemma22 schema x prefix))
            (sampled_prefixes ~stride:6 proj))
        schema.Schema.objects)
    (List.init 8 (fun i -> i + 1))

let suite =
  ( "undo",
    [
      Alcotest.test_case "commuting ops interleave" `Quick
        t_commuting_ops_interleave;
      Alcotest.test_case "conflicting blocked until visible" `Quick
        t_conflicting_blocked_until_visible;
      Alcotest.test_case "undo on abort" `Quick t_undo_on_abort;
      Alcotest.test_case "sibling visibility" `Quick t_own_descendant_ops_visible;
      Alcotest.test_case "withdraw commutativity" `Quick
        t_withdraw_commutativity_in_action;
      Alcotest.test_case "mixed withdrawals block" `Quick
        t_failed_withdraw_conflicts_with_success;
      Alcotest.test_case "locally visible" `Quick t_locally_visible;
      Alcotest.test_case "lemmas 20/21/22 on generated" `Slow
        t_lemmas_on_generated;
    ] )
