open Core
open Util

let t_renders_nodes_and_edges () =
  let g = Graph.create () in
  Graph.add_edge g (txn [ 0 ]) (txn [ 1 ]);
  Graph.add_node g (txn [ 2 ]);
  let dot = Dot.of_graph g in
  check_bool "digraph" true (Astring_like.contains dot "digraph SG");
  check_bool "edge" true (Astring_like.contains dot "\"T0.0\" -> \"T0.1\"");
  check_bool "isolated node" true (Astring_like.contains dot "\"T0.2\"");
  check_bool "cluster" true (Astring_like.contains dot "children of T0");
  check_bool "no red without cycle" false (Astring_like.contains dot "color=red")

let t_cycle_highlight () =
  let g = Graph.create () in
  Graph.add_edge g (txn [ 0 ]) (txn [ 1 ]);
  Graph.add_edge g (txn [ 1 ]) (txn [ 0 ]);
  let cycle = Option.get (Graph.find_cycle g) in
  let dot = Dot.of_graph ~cycle g in
  check_bool "red nodes" true (Astring_like.contains dot "color=red");
  check_bool "red edge" true (Astring_like.contains dot "penwidth=2")

let t_of_trace () =
  let forest, schema = rw_pair () in
  let r = run_protocol ~seed:3 schema Moss_object.factory forest in
  let dot = Dot.of_trace schema r.Runtime.trace in
  check_bool "valid prefix" true (Astring_like.contains dot "digraph SG");
  (* A cyclic behavior gets its cycle highlighted. *)
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:2
      { Gen.default with n_top = 8; depth = 1; n_objects = 1; read_ratio = 0.3 }
  in
  let rec find_cyclic seed =
    if seed > 200 then None
    else
      let r = run_protocol ~seed schema Broken.no_control forest in
      let g = Sg.build Sg.Access_level schema (Trace.serial r.Runtime.trace) in
      if Graph.is_acyclic g then find_cyclic (seed + 1) else Some r
  in
  match find_cyclic 1 with
  | None -> Alcotest.fail "no cyclic behavior found"
  | Some r ->
      let dot = Dot.of_trace schema r.Runtime.trace in
      check_bool "cycle highlighted" true (Astring_like.contains dot "color=red")

let suite =
  ( "dot",
    [
      Alcotest.test_case "nodes and edges" `Quick t_renders_nodes_and_edges;
      Alcotest.test_case "cycle highlight" `Quick t_cycle_highlight;
      Alcotest.test_case "of_trace" `Quick t_of_trace;
    ] )
