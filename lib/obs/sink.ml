type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; flush = ignore; close = ignore }

let memory () =
  let events = ref [] in
  ( {
      emit = (fun e -> events := e :: !events);
      flush = ignore;
      close = ignore;
    },
    fun () -> List.rev !events )

let jsonl oc =
  {
    emit =
      (fun e ->
        Json.output oc (Event.to_json e);
        output_char oc '\n');
    flush = (fun () -> flush oc);
    close = (fun () -> flush oc);
  }

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let jsonl_file path =
  let oc = open_out path in
  let closed = ref false in
  let s = jsonl oc in
  {
    s with
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }
