(** Request-lifecycle stage spans and the flight recorder.

    Where {!Obs} spans model {e transactions} on a logical clock, a
    stage span models one {e serving stage} of one wire request on the
    server's monotonic wall clock: [read] (frame assembly),
    [decode], [validate], [admit], [gate], [execute], [reply] — plus
    [gc.pause] spans for garbage-collection pauses attributed to the
    request they interrupted (see {!Gcmon}).  Spans are parent-linked
    by the client's opaque request id (the same id the wire protocol
    echoes and the audit log records), so one id names the client
    span, every server stage, and the veto/slow audit entry.

    The {!Recorder} is a flight recorder: a fixed-size ring the
    serving loop writes every span into, cheap enough to leave on in
    production (an array store per span; the oldest spans fall out).
    On an anomaly — an admission veto, a slow request, a poisoned
    reader, SIGQUIT, or an explicit [Dump] wire request — the ring is
    dumped as JSONL (one span per line, replayable by
    [ntprof]/{!Nt_prof.Flight}) and as a Chrome trace-event file
    (openable in [chrome://tracing]/Perfetto: one process row per
    connection, one thread lane per request id).

    Dumps are deterministic functions of the ring contents and the
    [now]/[reason] arguments, so a fixed clock yields byte-identical
    artifacts. *)

val stages : string list
(** The canonical request-lifecycle stages, in order:
    [read; decode; validate; admit; gate; execute; reply].  Flight
    chains judge completeness against exactly this list. *)

val gc_stage : string
(** ["gc.pause"] — the stage name under which GC pauses are
    recorded. *)

val wal_fsync_stage : string
(** ["wal.fsync"] — one group-commit sync of the write-ahead log. *)

val wal_replay_stage : string
(** ["wal.replay"] — one recovery replay chunk. *)

val wal_stages : string list
(** The server-global durability stages ([wal.fsync]; [wal.replay]) —
    instrumented like {!stages} but, like {!gc_stage}, not part of any
    request chain. *)

type span = {
  sp_stage : string;  (** Stage name ({!stages}, {!gc_stage}, or ad-hoc). *)
  sp_req : string option;  (** Client request id, when known. *)
  sp_txn : string option;  (** Rendered {!Nt_base.Txn_id.t}, once assigned. *)
  sp_conn : int;  (** Connection id; [-1] for server-wide spans. *)
  sp_t0 : float;  (** Monotonic server clock, seconds. *)
  sp_t1 : float;
}

val dur_us : span -> int
(** Rounded duration in microseconds (clamped non-negative). *)

val span_to_json : span -> Json.t
(** [{"ev":"stage","stage":...,"req":...,"txn":...,"conn":...,
    "t0":...,"t1":...,"dur_us":...}]; [req]/[txn] omitted when
    absent. *)

val span_of_json : Json.t -> (span, string) result
(** Inverse of {!span_to_json} (the derived [dur_us] is ignored). *)

module Recorder : sig
  type t

  val create : capacity:int -> t
  (** A ring holding the last [capacity] spans (at least 1). *)

  val capacity : t -> int

  val record : t -> span -> unit
  (** O(1); overwrites the oldest span once the ring is full. *)

  val size : t -> int
  (** Spans currently held ([min total capacity]). *)

  val total : t -> int
  (** Spans ever recorded. *)

  val dropped : t -> int
  (** Spans lost to wrap-around ([total - size]). *)

  val spans : t -> span list
  (** Current contents, oldest first. *)

  val clear : t -> unit
  (** Empty the ring ({!total}/{!dropped} keep counting). *)

  val dump_jsonl : t -> reason:string -> now:float -> out_channel -> int
  (** Write a header line
      [{"ev":"flight","reason":...,"t":...,"spans":n,"dropped":d}]
      and then every held span, oldest first, one JSON object per
      line.  Returns the number of spans written. *)

  val dump_chrome : t -> reason:string -> now:float -> out_channel -> int
  (** The same contents as a complete Chrome trace-event JSON array:
      ["X"] (complete) slices with [pid] the connection, [tid] a lane
      per request id (assigned in first-appearance order; lane 0 for
      id-less spans), timestamps in microseconds, and the request
      id/transaction in [args].  Stage names and request ids are
      JSON-escaped, so arbitrary bytes survive the viewer. *)
end
