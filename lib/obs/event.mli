(** Telemetry events.

    The span model: every transaction is a span, opened by its
    [CREATE] and closed by its [COMMIT]/[ABORT], nested by
    {!Nt_base.Txn_id.parent} — accesses are transactions, so object
    activity gets spans for free.  Everything else (blocked-access
    retries, deadlock victims, monitor alarms) is an {!constructor:
    Instant}, and {!constructor:Counter} carries sampled time series
    (e.g. cumulative SG edges) for timeline viewers.

    Timestamps are logical ticks — one tick per executed action — so
    an exported timeline is a deterministic function of the trace, not
    of wall-clock noise. *)

open Nt_base

type outcome = Committed | Aborted

type t =
  | Begin of { txn : Txn_id.t; ts : int }
      (** The transaction's [CREATE] fired at tick [ts]. *)
  | End of { txn : Txn_id.t; ts : int; outcome : outcome; dur : int }
      (** Completion; [dur] is ticks since the matching [Begin] (0 if
          the begin was never seen, e.g. on a partial replay). *)
  | Instant of {
      name : string;
      ts : int;
      txn : Txn_id.t option;
      obj : Obj_id.t option;
    }
  | Counter of { name : string; ts : int; value : int }

val ts : t -> int
val outcome_string : outcome -> string

val to_json : t -> Json.t
(** The JSONL line shape: [{"ev":"begin","txn":"0.1","ts":3}],
    [{"ev":"end","txn":"0.1","ts":9,"outcome":"commit","dur":6}],
    [{"ev":"instant","name":...}], [{"ev":"counter",...}]. *)

val pp : Format.formatter -> t -> unit
