(** Telemetry events.

    The span model: every transaction is a span, opened by its
    [CREATE] and closed by its [COMMIT]/[ABORT], nested by
    {!Nt_base.Txn_id.parent} — accesses are transactions, so object
    activity gets spans for free.  Everything else (blocked-access
    retries, deadlock victims, monitor alarms) is an {!constructor:
    Instant}, and {!constructor:Counter} carries sampled time series
    (e.g. cumulative SG edges) for timeline viewers.

    Timestamps are logical ticks — one tick per executed action — so
    an exported timeline is a deterministic function of the trace, not
    of wall-clock noise. *)

open Nt_base

type outcome = Committed | Aborted

type t =
  | Begin of { txn : Txn_id.t; ts : int }
      (** The transaction's [CREATE] fired at tick [ts]. *)
  | End of { txn : Txn_id.t; ts : int; outcome : outcome; dur : int }
      (** Completion; [dur] is ticks since the matching [Begin] (0 if
          the begin was never seen, e.g. on a partial replay). *)
  | Instant of {
      name : string;
      ts : int;
      txn : Txn_id.t option;
      obj : Obj_id.t option;
    }
  | Counter of { name : string; ts : int; value : int }
  | Wait of {
      txn : Txn_id.t;
      obj : Obj_id.t;
      holders : (Txn_id.t * string) list;
      ts : int;
      waited : int;
    }
      (** [txn]'s access to [obj] was refused at tick [ts] because of
          the non-ancestral lock [holders] (each tagged with the kind
          of lock held, e.g. ["write"]); [waited] is the ticks since
          the start of the current blocked streak.  Lock kinds are
          strings because the event layer cannot see protocol types —
          producers pass whatever vocabulary their lock table uses. *)
  | Edge of {
      src : Txn_id.t;
      dst : Txn_id.t;
      kind : string;
      obj : Obj_id.t option;
      w1 : Txn_id.t;
      w1_ts : int;
      w2 : Txn_id.t;
      w2_ts : int;
      ts : int;
    }
      (** The monitor inserted SG edge [src -> dst] (children of their
          lca) at feed index [ts].  [kind] is ["conflict"] or
          ["precedes"]; [obj] is the conflicting object for conflict
          edges.  [w1]/[w2] are the witnessing actions (the accesses,
          or for precedes edges the reporting/created transactions)
          with their own feed indices — the provenance that lets a
          profiler name the accesses behind a cycle. *)

val ts : t -> int
val outcome_string : outcome -> string

val to_json : t -> Json.t
(** The JSONL line shape: [{"ev":"begin","txn":"0.1","ts":3}],
    [{"ev":"end","txn":"0.1","ts":9,"outcome":"commit","dur":6}],
    [{"ev":"instant","name":...}], [{"ev":"counter",...}],
    [{"ev":"wait","txn":...,"obj":...,"holders":[...],...}],
    [{"ev":"edge","src":...,"dst":...,"kind":...,...}]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}, for trace consumers ([ntprof]).  Unknown
    ["ev"] tags and missing/ill-typed fields are errors (so a corrupt
    line is reported, not silently dropped). *)

val pp : Format.formatter -> t -> unit
