type t = { at : float; frozen : Metrics.t }

let capture ?(at = 0.0) m = { at; frozen = Metrics.copy m }
let at s = s.at
let metrics s = s.frozen

let delta ~prev cur =
  (Metrics.diff ~cur:cur.frozen ~prev:prev.frozen, cur.at -. prev.at)

let delta_live ?(at = 0.0) ~prev m =
  (Metrics.diff ~cur:m ~prev:prev.frozen, at -. prev.at)

let rate n elapsed = if elapsed > 0.0 then float_of_int n /. elapsed else 0.0
