type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let output oc j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.output_buffer oc b
