type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let output oc j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.output_buffer oc b

(* --- Parsing ----------------------------------------------------------- *)

(* A hand-rolled recursive-descent parser for the subset this library
   emits (which is plain JSON), so ntprof can read traces back without
   adding a dependency.  Numbers with '.', 'e' or 'E' become [Float];
   everything else numeric becomes [Int]. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  (* Encode a Unicode scalar value as UTF-8 bytes. *)
  let add_utf8 b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then (
      Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f))))
    else if u < 0x10000 then (
      Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f))))
    else (
      Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f))))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  let u = hex4 () in
                  (* Surrogate pair: \uD800-\uDBFF followed by a low
                     surrogate combine into one scalar value. *)
                  if u >= 0xd800 && u <= 0xdbff then
                    if
                      !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then (
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xdc00 && lo <= 0xdfff then
                        add_utf8 b
                          (0x10000
                          + ((u - 0xd800) lsl 10)
                          + (lo - 0xdc00))
                      else fail "invalid low surrogate")
                    else fail "lone high surrogate"
                  else add_utf8 b u
              | _ -> fail "invalid escape");
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let body () =
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
            is_float := true;
            true
        | _ -> false
      do
        advance ()
      done
    in
    body ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
