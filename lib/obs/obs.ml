open Nt_base

(* One cell per transaction id ever seen; cells are mutated in place and
   never removed, so a recorder shared across many runs (where the same
   ids recur) does one hashed lookup per lifecycle action and no
   allocation after the first run. *)
type span_cell = { mutable begin_tick : int; mutable live : bool }

type interest = {
  spans : bool;
  instants : bool;
  waits : bool;
  edges : bool;
  counters : bool;
}

let all_events =
  { spans = true; instants = true; waits = true; edges = true; counters = true }

let no_events =
  {
    spans = false;
    instants = false;
    waits = false;
    edges = false;
    counters = false;
  }

let waits_only = { no_events with waits = true }

type t = {
  enabled : bool;
  emit_events : bool;  (* sink is not Sink.null and some interest is on *)
  i : interest;
  sink : Sink.t;
  m : Metrics.t;
  mutable clock : int;
  open_spans : span_cell Txn_id.Tbl.t;
  c_actions : Metrics.counter;
  c_created : Metrics.counter;
  c_committed : Metrics.counter;
  c_aborted : Metrics.counter;
  h_commit_ticks : Metrics.histogram;
  h_abort_ticks : Metrics.histogram;
}

let make ?(events = all_events) ~enabled ~sink ~m () =
  let i = if sink == Sink.null then no_events else events in
  {
    enabled;
    emit_events = i.spans || i.instants || i.waits || i.edges || i.counters;
    i;
    sink;
    m;
    clock = 0;
    open_spans = Txn_id.Tbl.create 64;
    c_actions = Metrics.counter m "actions";
    c_created = Metrics.counter m "txn.created";
    c_committed = Metrics.counter m "txn.committed";
    c_aborted = Metrics.counter m "txn.aborted";
    h_commit_ticks = Metrics.histogram m "txn.commit.ticks";
    h_abort_ticks = Metrics.histogram m "txn.abort.ticks";
  }

let null = make ~enabled:false ~sink:Sink.null ~m:(Metrics.create ()) ()

let create ?metrics ?(sink = Sink.null) ?events () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  make ?events ~enabled:true ~sink ~m ()

let enabled t = t.enabled
let emitting t = t.enabled && t.emit_events
let emitting_waits t = t.enabled && t.i.waits
let emitting_edges t = t.enabled && t.i.edges
let metrics t = t.m
let now t = t.clock
let close t = t.sink.Sink.close ()

let finish t txn outcome =
  let start =
    match Txn_id.Tbl.find_opt t.open_spans txn with
    | Some cell when cell.live ->
        cell.live <- false;
        cell.begin_tick
    | Some _ | None -> t.clock
  in
  let dur = t.clock - start in
  (match outcome with
  | Event.Committed ->
      Metrics.incr t.c_committed;
      Metrics.observe t.h_commit_ticks dur
  | Event.Aborted ->
      Metrics.incr t.c_aborted;
      Metrics.observe t.h_abort_ticks dur);
  if t.i.spans then
    t.sink.Sink.emit (Event.End { txn; ts = t.clock; outcome; dur })

let lifecycle t (a : Action.t) =
  match a with
  | Action.Create txn ->
      Metrics.incr t.c_created;
      (match Txn_id.Tbl.find_opt t.open_spans txn with
      | Some cell ->
          cell.begin_tick <- t.clock;
          cell.live <- true
      | None ->
          Txn_id.Tbl.add t.open_spans txn { begin_tick = t.clock; live = true });
      if t.i.spans then t.sink.Sink.emit (Event.Begin { txn; ts = t.clock })
  | Action.Commit txn -> finish t txn Event.Committed
  | Action.Abort txn -> finish t txn Event.Aborted
  | Action.Request_create _ | Action.Request_commit _ | Action.Report_commit _
  | Action.Report_abort _ | Action.Inform_commit _ | Action.Inform_abort _ ->
      ()

let on_action t (a : Action.t) =
  if t.enabled then begin
    t.clock <- t.clock + 1;
    Metrics.incr t.c_actions;
    lifecycle t a
  end

(* Direct span hooks for hosts that track creation ticks themselves
   (the generic runtime stores the begin tick in its per-transaction
   status record, which it touches anyway): no hashing, no span table,
   just instrument updates and — when a sink listens — events. *)
let span_begin t ts txn =
  if t.enabled then begin
    t.clock <- ts;
    Metrics.incr t.c_created;
    if t.i.spans then t.sink.Sink.emit (Event.Begin { txn; ts })
  end

let span_end t ts ~began txn outcome =
  if t.enabled then begin
    t.clock <- ts;
    let dur = ts - began in
    (match outcome with
    | Event.Committed ->
        Metrics.incr t.c_committed;
        Metrics.observe t.h_commit_ticks dur
    | Event.Aborted ->
        Metrics.incr t.c_aborted;
        Metrics.observe t.h_abort_ticks dur);
    if t.i.spans then t.sink.Sink.emit (Event.End { txn; ts; outcome; dur })
  end

let settle t ~clock ~actions =
  if t.enabled then begin
    if clock > t.clock then t.clock <- clock;
    Metrics.incr ~by:actions t.c_actions
  end

let instant ?txn ?obj ?ts t name =
  if t.enabled && t.i.instants then begin
    (match ts with Some ts when ts > t.clock -> t.clock <- ts | _ -> ());
    t.sink.Sink.emit (Event.Instant { name; ts = t.clock; txn; obj })
  end

let counter_sample t name value =
  if t.enabled && t.i.counters then
    t.sink.Sink.emit (Event.Counter { name; ts = t.clock; value })

let wait ?ts t ~txn ~obj ~holders ~waited =
  if t.enabled && t.i.waits then begin
    (match ts with Some ts when ts > t.clock -> t.clock <- ts | _ -> ());
    t.sink.Sink.emit (Event.Wait { txn; obj; holders; ts = t.clock; waited })
  end

let sg_edge ?obj ?ts t ~src ~dst ~kind ~w1 ~w1_ts ~w2 ~w2_ts =
  if t.enabled && t.i.edges then begin
    (match ts with Some ts when ts > t.clock -> t.clock <- ts | _ -> ());
    t.sink.Sink.emit
      (Event.Edge { src; dst; kind; obj; w1; w1_ts; w2; w2_ts; ts = t.clock })
  end
