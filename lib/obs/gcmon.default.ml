(* Gc.quick_stat fallback for Gcmon: selected when the
   [runtime_events] library is unavailable (OCaml < 5.0).  Each poll
   diffs the cumulative collection counters and reports one
   zero-duration pause per collection, stamped at poll time. *)

type pause = { gc_kind : string; gc_t0 : float; gc_t1 : float }

type t = {
  mutable minors : int;
  mutable majors : int;
  mutable reported : int;
}

let precise = false

let start () =
  let s = Gc.quick_stat () in
  Some { minors = s.Gc.minor_collections; majors = s.Gc.major_collections; reported = 0 }

let poll t ~now =
  let s = Gc.quick_stat () in
  let marker kind n = List.init n (fun _ -> { gc_kind = kind; gc_t0 = now; gc_t1 = now }) in
  let minors = max 0 (s.Gc.minor_collections - t.minors) in
  let majors = max 0 (s.Gc.major_collections - t.majors) in
  t.minors <- s.Gc.minor_collections;
  t.majors <- s.Gc.major_collections;
  let ps = marker "minor" minors @ marker "major" majors in
  t.reported <- t.reported + List.length ps;
  ps

let total t = t.reported
let stop _ = ()
