(* Request-lifecycle stage spans and the flight recorder.  See
   stage.mli for the model. *)

let stages =
  [ "read"; "decode"; "validate"; "admit"; "gate"; "execute"; "reply" ]

let gc_stage = "gc.pause"
let wal_fsync_stage = "wal.fsync"
let wal_replay_stage = "wal.replay"
let wal_stages = [ wal_fsync_stage; wal_replay_stage ]

type span = {
  sp_stage : string;
  sp_req : string option;
  sp_txn : string option;
  sp_conn : int;
  sp_t0 : float;
  sp_t1 : float;
}

let dur_us sp =
  let us = (sp.sp_t1 -. sp.sp_t0) *. 1e6 in
  if us <= 0. then 0 else int_of_float (us +. 0.5)

let span_to_json sp =
  let fields =
    [ ("ev", Json.Str "stage"); ("stage", Json.Str sp.sp_stage) ]
    @ (match sp.sp_req with None -> [] | Some r -> [ ("req", Json.Str r) ])
    @ (match sp.sp_txn with None -> [] | Some t -> [ ("txn", Json.Str t) ])
    @ [
        ("conn", Json.Int sp.sp_conn);
        ("t0", Json.Float sp.sp_t0);
        ("t1", Json.Float sp.sp_t1);
        ("dur_us", Json.Int (dur_us sp));
      ]
  in
  Json.Obj fields

let span_of_json j =
  let str_field k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "stage span: missing string %S" k)
  in
  let num_field k =
    match Json.member k j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "stage span: missing number %S" k)
  in
  let ( let* ) = Result.bind in
  let* stage = str_field "stage" in
  let* t0 = num_field "t0" in
  let* t1 = num_field "t1" in
  let conn =
    match Json.member "conn" j with
    | Some (Json.Int c) -> c
    | _ -> -1
  in
  let opt k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  Ok
    {
      sp_stage = stage;
      sp_req = opt "req";
      sp_txn = opt "txn";
      sp_conn = conn;
      sp_t0 = t0;
      sp_t1 = t1;
    }

module Recorder = struct
  type t = {
    buf : span array;
    cap : int;
    mutable total : int;  (* spans ever recorded *)
    mutable held : int;  (* spans currently in the ring *)
    mutable head : int;  (* next write position *)
  }

  let nil_span =
    { sp_stage = ""; sp_req = None; sp_txn = None; sp_conn = -1; sp_t0 = 0.; sp_t1 = 0. }

  let create ~capacity =
    let cap = max 1 capacity in
    { buf = Array.make cap nil_span; cap; total = 0; held = 0; head = 0 }

  let capacity t = t.cap

  let record t sp =
    t.buf.(t.head) <- sp;
    t.head <- (t.head + 1) mod t.cap;
    t.total <- t.total + 1;
    if t.held < t.cap then t.held <- t.held + 1

  let size t = t.held
  let total t = t.total
  let dropped t = t.total - t.held

  let spans t =
    (* Oldest first: the oldest live span sits [held] slots behind the
       write head. *)
    let start = (t.head - t.held + t.cap * 2) mod t.cap in
    List.init t.held (fun i -> t.buf.((start + i) mod t.cap))

  let clear t =
    t.held <- 0;
    t.head <- 0

  let header t ~reason ~now =
    Json.Obj
      [
        ("ev", Json.Str "flight");
        ("reason", Json.Str reason);
        ("t", Json.Float now);
        ("spans", Json.Int t.held);
        ("dropped", Json.Int (dropped t));
      ]

  let dump_jsonl t ~reason ~now oc =
    Json.output oc (header t ~reason ~now);
    output_char oc '\n';
    List.iter
      (fun sp ->
        Json.output oc (span_to_json sp);
        output_char oc '\n')
      (spans t);
    t.held

  let dump_chrome t ~reason ~now oc =
    (* One Chrome trace-event "X" (complete) slice per span: pid = the
       connection, tid = a lane per request id so concurrent requests
       on one connection do not overlap, assigned deterministically in
       first-appearance order.  Times in microseconds. *)
    let lanes = Hashtbl.create 16 in
    let next_lane = ref 1 in
    let lane_of = function
      | None -> 0
      | Some req -> (
          match Hashtbl.find_opt lanes req with
          | Some l -> l
          | None ->
              let l = !next_lane in
              incr next_lane;
              Hashtbl.add lanes req l;
              l)
    in
    let us f = Json.Float (f *. 1e6) in
    let slice sp =
      let args =
        (match sp.sp_req with None -> [] | Some r -> [ ("req", Json.Str r) ])
        @ (match sp.sp_txn with None -> [] | Some x -> [ ("txn", Json.Str x) ])
      in
      Json.Obj
        [
          ("name", Json.Str sp.sp_stage);
          ("cat", Json.Str "stage");
          ("ph", Json.Str "X");
          ("pid", Json.Int sp.sp_conn);
          ("tid", Json.Int (lane_of sp.sp_req));
          ("ts", us sp.sp_t0);
          ("dur", us (sp.sp_t1 -. sp.sp_t0));
          ("args", Json.Obj args);
        ]
    in
    let meta =
      Json.Obj
        [
          ("name", Json.Str "flight_dump");
          ("ph", Json.Str "i");
          ("pid", Json.Int 0);
          ("tid", Json.Int 0);
          ("ts", us now);
          ("s", Json.Str "g");
          ("args", Json.Obj [ ("reason", Json.Str reason) ]);
        ]
    in
    Json.output oc (Json.Arr (meta :: List.map slice (spans t)));
    output_char oc '\n';
    t.held
end
