(** Sliding-window instruments for live telemetry.

    A {!t} is a ring of [slots] equal intervals.  Instruments are
    registered by name (get-or-create, like {!Metrics}); updates touch
    only the head slot, so hot-path cost is a couple of array-cell
    mutations.  {!tick} closes the current interval and reuses the
    oldest slot; readouts aggregate either the open slot alone
    ([*_current] — "this interval so far") or every live slot
    ([*_total]/{!histogram_view} — "the last [slots] intervals").

    This is the windowed layer under [ntserved]'s [Telemetry] frames:
    the server ticks once per telemetry interval, reads the closing
    slot for per-interval rates and percentiles, and keeps the full
    window for smoothed views.  Cumulative instruments that live in a
    {!Metrics} registry are windowed from the outside with
    {!Snapshot} instead. *)

type t

val create : ?slots:int -> unit -> t
(** A window of [slots] intervals (default 8; must be >= 1). *)

val slots : t -> int

val rotations : t -> int
(** {!tick}s so far. *)

val tick : t -> unit
(** Close the current interval: advance the head and zero the slot it
    now occupies (the oldest data falls out of every windowed
    readout). *)

type wcounter
type whistogram

val counter : t -> string -> wcounter
(** Get or create.  Raises [Invalid_argument] if the name is already
    registered as a histogram. *)

val histogram : t -> string -> whistogram

val incr : ?by:int -> wcounter -> unit
val observe : whistogram -> int -> unit
(** Record a non-negative observation into the open slot (negative
    values clamp to 0), bucketed by powers of two exactly as
    {!Metrics.observe}. *)

val counter_current : wcounter -> int
(** The open slot's count (this interval so far). *)

val counter_total : wcounter -> int
(** Sum over the whole window, open slot included. *)

type view = {
  count : int;
  sum : int;
  min : int;  (** Exact raw extremes over the viewed slots. *)
  max : int;
  p50 : int;  (** Bucket-upper-bound approximations, clamped to [max]
                  (same convention as {!Metrics.histogram_stats}). *)
  p99 : int;
  p999 : int;
  buckets : (int * int) list;
      (** Non-empty power-of-two buckets as [(index, count)],
          ascending — the raw shape, merged over the viewed slots. *)
}

val empty_view : view

val histogram_current : whistogram -> view
(** The open slot alone. *)

val histogram_view : whistogram -> view
(** Aggregated over every slot that has been live so far (the whole
    ring once [rotations >= slots - 1]). *)
