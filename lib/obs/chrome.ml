open Nt_base

type state = {
  oc : out_channel;
  mutable first : bool;  (* no event written yet *)
  ids : (int * int) Txn_id.Tbl.t;  (* txn -> (pid, tid) *)
  next_tid : (int, int) Hashtbl.t;  (* pid -> next thread row *)
  named_pids : (int, unit) Hashtbl.t;
}

let make oc =
  {
    oc;
    first = true;
    ids = Txn_id.Tbl.create 64;
    next_tid = Hashtbl.create 16;
    named_pids = Hashtbl.create 16;
  }

let put st json =
  if st.first then st.first <- false else output_char st.oc ',';
  output_char st.oc '\n';
  Json.output st.oc json

let meta st ~pid ~tid ~what ~name =
  put st
    (Json.Obj
       [
         ("name", Json.Str what);
         ("ph", Json.Str "M");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("args", Json.Obj [ ("name", Json.Str name) ]);
       ])

let name_pid st pid label =
  if not (Hashtbl.mem st.named_pids pid) then begin
    Hashtbl.replace st.named_pids pid ();
    meta st ~pid ~tid:0 ~what:"process_name" ~name:label
  end

(* One process group per top-level transaction; one thread row per
   transaction, numbered in first-seen (creation) order so parents
   sort above their descendants. *)
let ids_of st txn =
  match Txn_id.Tbl.find_opt st.ids txn with
  | Some ids -> ids
  | None ->
      let pid =
        match Txn_id.path txn with [] -> 0 | i :: _ -> i + 1
      in
      let tid =
        match Hashtbl.find_opt st.next_tid pid with
        | Some n ->
            Hashtbl.replace st.next_tid pid (n + 1);
            n
        | None ->
            Hashtbl.replace st.next_tid pid 2;
            1
      in
      Txn_id.Tbl.replace st.ids txn (pid, tid);
      name_pid st pid ("top " ^ string_of_int (pid - 1));
      meta st ~pid ~tid ~what:"thread_name" ~name:(Txn_id.to_string txn);
      (pid, tid)

let slice_fields ~name ~cat ~ph ~ts ~pid ~tid =
  [
    ("name", Json.Str name);
    ("cat", Json.Str cat);
    ("ph", Json.Str ph);
    ("ts", Json.Int ts);
    ("pid", Json.Int pid);
    ("tid", Json.Int tid);
  ]

let emit st (e : Event.t) =
  match e with
  | Event.Begin { txn; ts } ->
      let pid, tid = ids_of st txn in
      put st
        (Json.Obj
           (slice_fields ~name:(Txn_id.to_string txn) ~cat:"txn" ~ph:"B" ~ts
              ~pid ~tid))
  | Event.End { txn; ts; outcome; _ } ->
      let pid, tid = ids_of st txn in
      put st
        (Json.Obj
           (slice_fields ~name:(Txn_id.to_string txn) ~cat:"txn" ~ph:"E" ~ts
              ~pid ~tid
           @ [
               ( "args",
                 Json.Obj
                   [ ("outcome", Json.Str (Event.outcome_string outcome)) ] );
             ]))
  | Event.Instant { name; ts; txn; obj } ->
      let pid, tid, scope =
        match txn with
        | Some t ->
            let pid, tid = ids_of st t in
            (pid, tid, "t")
        | None ->
            name_pid st 0 "runtime";
            (0, 0, "g")
      in
      put st
        (Json.Obj
           (slice_fields ~name ~cat:"event" ~ph:"i" ~ts ~pid ~tid
           @ ("s", Json.Str scope)
             ::
             (match obj with
             | Some x ->
                 [ ("args", Json.Obj [ ("obj", Json.Str (Obj_id.name x)) ]) ]
             | None -> [])))
  | Event.Counter { name; ts; value } ->
      name_pid st 0 "runtime";
      put st
        (Json.Obj
           [
             ("name", Json.Str name);
             ("ph", Json.Str "C");
             ("ts", Json.Int ts);
             ("pid", Json.Int 0);
             ("args", Json.Obj [ ("value", Json.Int value) ]);
           ])
  | Event.Wait { txn; obj; holders; ts; waited } ->
      let pid, tid = ids_of st txn in
      put st
        (Json.Obj
           (slice_fields
              ~name:("wait " ^ Obj_id.name obj)
              ~cat:"wait" ~ph:"i" ~ts ~pid ~tid
           @ [
               ("s", Json.Str "t");
               ( "args",
                 Json.Obj
                   [
                     ("obj", Json.Str (Obj_id.name obj));
                     ("waited", Json.Int waited);
                     ( "holders",
                       Json.Str
                         (String.concat ","
                            (List.map
                               (fun (h, k) -> Txn_id.to_string h ^ ":" ^ k)
                               holders)) );
                   ] );
             ]))
  | Event.Edge { src; dst; kind; obj; w1; w1_ts; w2; w2_ts; ts } ->
      (* Edges are monitor-scoped, not per-transaction: show them on
         the runtime row like counters. *)
      name_pid st 0 "runtime";
      put st
        (Json.Obj
           (slice_fields
              ~name:
                ("edge " ^ Txn_id.to_string src ^ "->" ^ Txn_id.to_string dst)
              ~cat:"sg" ~ph:"i" ~ts ~pid:0 ~tid:0
           @ [
               ("s", Json.Str "g");
               ( "args",
                 Json.Obj
                   ([ ("kind", Json.Str kind) ]
                   @ (match obj with
                     | Some x -> [ ("obj", Json.Str (Obj_id.name x)) ]
                     | None -> [])
                   @ [
                       ("w1", Json.Str (Txn_id.to_string w1));
                       ("w1_ts", Json.Int w1_ts);
                       ("w2", Json.Str (Txn_id.to_string w2));
                       ("w2_ts", Json.Int w2_ts);
                     ]) );
             ]))

let finish st = output_string st.oc "\n]\n"

let sink oc =
  let st = make oc in
  output_char oc '[';
  let closed = ref false in
  {
    Sink.emit = (fun e -> emit st e);
    flush = (fun () -> flush oc);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          finish st;
          flush oc
        end);
  }

let sink_file path =
  let oc = open_out path in
  let st = make oc in
  output_char oc '[';
  let closed = ref false in
  {
    Sink.emit = (fun e -> emit st e);
    flush = (fun () -> flush oc);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          finish st;
          close_out oc
        end);
  }
