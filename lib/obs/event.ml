open Nt_base

type outcome = Committed | Aborted

type t =
  | Begin of { txn : Txn_id.t; ts : int }
  | End of { txn : Txn_id.t; ts : int; outcome : outcome; dur : int }
  | Instant of {
      name : string;
      ts : int;
      txn : Txn_id.t option;
      obj : Obj_id.t option;
    }
  | Counter of { name : string; ts : int; value : int }

let ts = function
  | Begin { ts; _ } | End { ts; _ } | Instant { ts; _ } | Counter { ts; _ } ->
      ts

let outcome_string = function Committed -> "commit" | Aborted -> "abort"

let to_json = function
  | Begin { txn; ts } ->
      Json.Obj
        [
          ("ev", Json.Str "begin");
          ("txn", Json.Str (Txn_id.to_string txn));
          ("ts", Json.Int ts);
        ]
  | End { txn; ts; outcome; dur } ->
      Json.Obj
        [
          ("ev", Json.Str "end");
          ("txn", Json.Str (Txn_id.to_string txn));
          ("ts", Json.Int ts);
          ("outcome", Json.Str (outcome_string outcome));
          ("dur", Json.Int dur);
        ]
  | Instant { name; ts; txn; obj } ->
      Json.Obj
        (("ev", Json.Str "instant")
         :: ("name", Json.Str name)
         :: ("ts", Json.Int ts)
         :: (match txn with
            | Some t -> [ ("txn", Json.Str (Txn_id.to_string t)) ]
            | None -> [])
        @ (match obj with
          | Some x -> [ ("obj", Json.Str (Obj_id.name x)) ]
          | None -> []))
  | Counter { name; ts; value } ->
      Json.Obj
        [
          ("ev", Json.Str "counter");
          ("name", Json.Str name);
          ("ts", Json.Int ts);
          ("value", Json.Int value);
        ]

let pp fmt e = Format.pp_print_string fmt (Json.to_string (to_json e))
