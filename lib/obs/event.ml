open Nt_base

type outcome = Committed | Aborted

type t =
  | Begin of { txn : Txn_id.t; ts : int }
  | End of { txn : Txn_id.t; ts : int; outcome : outcome; dur : int }
  | Instant of {
      name : string;
      ts : int;
      txn : Txn_id.t option;
      obj : Obj_id.t option;
    }
  | Counter of { name : string; ts : int; value : int }
  | Wait of {
      txn : Txn_id.t;
      obj : Obj_id.t;
      holders : (Txn_id.t * string) list;
      ts : int;
      waited : int;
    }
  | Edge of {
      src : Txn_id.t;
      dst : Txn_id.t;
      kind : string;
      obj : Obj_id.t option;
      w1 : Txn_id.t;
      w1_ts : int;
      w2 : Txn_id.t;
      w2_ts : int;
      ts : int;
    }

let ts = function
  | Begin { ts; _ }
  | End { ts; _ }
  | Instant { ts; _ }
  | Counter { ts; _ }
  | Wait { ts; _ }
  | Edge { ts; _ } ->
      ts

let outcome_string = function Committed -> "commit" | Aborted -> "abort"

let to_json = function
  | Begin { txn; ts } ->
      Json.Obj
        [
          ("ev", Json.Str "begin");
          ("txn", Json.Str (Txn_id.to_string txn));
          ("ts", Json.Int ts);
        ]
  | End { txn; ts; outcome; dur } ->
      Json.Obj
        [
          ("ev", Json.Str "end");
          ("txn", Json.Str (Txn_id.to_string txn));
          ("ts", Json.Int ts);
          ("outcome", Json.Str (outcome_string outcome));
          ("dur", Json.Int dur);
        ]
  | Instant { name; ts; txn; obj } ->
      Json.Obj
        (("ev", Json.Str "instant")
         :: ("name", Json.Str name)
         :: ("ts", Json.Int ts)
         :: (match txn with
            | Some t -> [ ("txn", Json.Str (Txn_id.to_string t)) ]
            | None -> [])
        @ (match obj with
          | Some x -> [ ("obj", Json.Str (Obj_id.name x)) ]
          | None -> []))
  | Counter { name; ts; value } ->
      Json.Obj
        [
          ("ev", Json.Str "counter");
          ("name", Json.Str name);
          ("ts", Json.Int ts);
          ("value", Json.Int value);
        ]
  | Wait { txn; obj; holders; ts; waited } ->
      Json.Obj
        [
          ("ev", Json.Str "wait");
          ("txn", Json.Str (Txn_id.to_string txn));
          ("obj", Json.Str (Obj_id.name obj));
          ( "holders",
            Json.Arr
              (List.map
                 (fun (h, k) ->
                   Json.Obj
                     [
                       ("txn", Json.Str (Txn_id.to_string h));
                       ("kind", Json.Str k);
                     ])
                 holders) );
          ("ts", Json.Int ts);
          ("waited", Json.Int waited);
        ]
  | Edge { src; dst; kind; obj; w1; w1_ts; w2; w2_ts; ts } ->
      Json.Obj
        ([
           ("ev", Json.Str "edge");
           ("src", Json.Str (Txn_id.to_string src));
           ("dst", Json.Str (Txn_id.to_string dst));
           ("kind", Json.Str kind);
         ]
        @ (match obj with
          | Some x -> [ ("obj", Json.Str (Obj_id.name x)) ]
          | None -> [])
        @ [
            ("w1", Json.Str (Txn_id.to_string w1));
            ("w1_ts", Json.Int w1_ts);
            ("w2", Json.Str (Txn_id.to_string w2));
            ("w2_ts", Json.Int w2_ts);
            ("ts", Json.Int ts);
          ])

let pp fmt e = Format.pp_print_string fmt (Json.to_string (to_json e))

(* --- Reading events back ----------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field j k conv what =
  match Option.bind (Json.member k j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "event: missing or ill-typed %S (%s)" k what)

let txn_of_string s what =
  match Txn_id.of_string s with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "event: bad transaction name %S (%s)" s what)

let str j k = field j k Json.to_str_opt "string"
let int j k = field j k Json.to_int_opt "int"

let txn j k =
  let* s = str j k in
  txn_of_string s k

let of_json j =
  let* ev = str j "ev" in
  match ev with
  | "begin" ->
      let* txn = txn j "txn" in
      let* ts = int j "ts" in
      Ok (Begin { txn; ts })
  | "end" ->
      let* txn = txn j "txn" in
      let* ts = int j "ts" in
      let* dur = int j "dur" in
      let* outcome =
        let* s = str j "outcome" in
        match s with
        | "commit" -> Ok Committed
        | "abort" -> Ok Aborted
        | s -> Error (Printf.sprintf "event: unknown outcome %S" s)
      in
      Ok (End { txn; ts; outcome; dur })
  | "instant" ->
      let* name = str j "name" in
      let* ts = int j "ts" in
      let* txn =
        match Json.member "txn" j with
        | None -> Ok None
        | Some v -> (
            match Json.to_str_opt v with
            | None -> Error "event: ill-typed \"txn\""
            | Some s ->
                let* t = txn_of_string s "txn" in
                Ok (Some t))
      in
      let obj =
        Option.map Obj_id.make
          (Option.bind (Json.member "obj" j) Json.to_str_opt)
      in
      Ok (Instant { name; ts; txn; obj })
  | "counter" ->
      let* name = str j "name" in
      let* ts = int j "ts" in
      let* value = int j "value" in
      Ok (Counter { name; ts; value })
  | "wait" ->
      let* t = txn j "txn" in
      let* obj = str j "obj" in
      let* ts = int j "ts" in
      let* waited = int j "waited" in
      let* holders =
        match Json.member "holders" j with
        | Some (Json.Arr hs) ->
            List.fold_left
              (fun acc h ->
                let* acc = acc in
                let* ht = txn h "txn" in
                let* k = str h "kind" in
                Ok ((ht, k) :: acc))
              (Ok []) hs
            |> fun r ->
            let* hs = r in
            Ok (List.rev hs)
        | _ -> Error "event: missing or ill-typed \"holders\""
      in
      Ok (Wait { txn = t; obj = Obj_id.make obj; holders; ts; waited })
  | "edge" ->
      let* src = txn j "src" in
      let* dst = txn j "dst" in
      let* kind = str j "kind" in
      let obj =
        Option.map Obj_id.make
          (Option.bind (Json.member "obj" j) Json.to_str_opt)
      in
      let* w1 = txn j "w1" in
      let* w1_ts = int j "w1_ts" in
      let* w2 = txn j "w2" in
      let* w2_ts = int j "w2_ts" in
      let* ts = int j "ts" in
      Ok (Edge { src; dst; kind; obj; w1; w1_ts; w2; w2_ts; ts })
  | ev -> Error (Printf.sprintf "event: unknown \"ev\" %S" ev)
