type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Bucket [i] counts observations [v] with [bucket_of v = i]:
   bucket 0 holds v <= 0, bucket i holds 2^(i-1) <= v < 2^i. *)
let n_buckets = 64

type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = (string, instrument) Hashtbl.t

let create () = Hashtbl.create 32

let get_or_make t name make =
  match Hashtbl.find_opt t name with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.replace t name i;
      i

let kind_error name =
  invalid_arg ("Metrics: " ^ name ^ " already registered as another kind")

let counter t name =
  match get_or_make t name (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> kind_error name

let gauge t name =
  match get_or_make t name (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> kind_error name

let histogram t name =
  match
    get_or_make t name (fun () ->
        Histogram
          {
            buckets = Array.make n_buckets 0;
            h_count = 0;
            h_sum = 0;
            h_min = 0;
            h_max = 0;
          })
  with
  | Histogram h -> h
  | _ -> kind_error name

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

let bucket_of v =
  if v <= 0 then 0
  else
    (* 1 + floor(log2 v), capped. *)
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 v)

let observe h v =
  let v = max 0 v in
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

type hstats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p99 : int;
}

(* Quantile as the upper bound (2^i - 1, i.e. the largest value the
   bucket can hold) of the bucket where the cumulative count crosses
   the rank, clamped to the observed max. *)
let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.h_count)))
    in
    let rec go i acc =
      if i >= n_buckets then h.h_max
      else
        let acc = acc + h.buckets.(i) in
        if acc >= rank then
          if i = 0 then 0 else Stdlib.min h.h_max ((1 lsl i) - 1)
        else go (i + 1) acc
    in
    go 0 0
  end

let histogram_stats h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = quantile h 0.5;
    p99 = quantile h 0.99;
  }

let is_empty t = Hashtbl.length t = 0

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 n_buckets 0;
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0)
    t

let merge dst src =
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c -> incr ~by:c.c (counter dst name)
      | Gauge g -> set (gauge dst name) g.g
      | Histogram h ->
          let d = histogram dst name in
          if h.h_count > 0 then begin
            if d.h_count = 0 then begin
              d.h_min <- h.h_min;
              d.h_max <- h.h_max
            end
            else begin
              if h.h_min < d.h_min then d.h_min <- h.h_min;
              if h.h_max > d.h_max then d.h_max <- h.h_max
            end;
            d.h_count <- d.h_count + h.h_count;
            d.h_sum <- d.h_sum + h.h_sum;
            Array.iteri
              (fun i n -> d.buckets.(i) <- d.buckets.(i) + n)
              h.buckets
          end)
    src

let sorted t =
  Hashtbl.fold (fun name i acc -> (name, i) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp fmt t =
  let items = sorted t in
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (name, inst) ->
      if i > 0 then Format.fprintf fmt "@,";
      match inst with
      | Counter c -> Format.fprintf fmt "%-32s %d" name c.c
      | Gauge g -> Format.fprintf fmt "%-32s %g" name g.g
      | Histogram h ->
          let s = histogram_stats h in
          Format.fprintf fmt
            "%-32s count %d  sum %d  min %d  p50 %d  p99 %d  max %d" name
            s.count s.sum s.min s.p50 s.p99 s.max)
    items;
  Format.fprintf fmt "@]"

(* Prometheus text exposition format.  Instrument names here use dots
   ("monitor.feed.edges"); Prometheus metric names allow only
   [a-zA-Z0-9_:], so everything else maps to '_'. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let pp_prometheus fmt t =
  List.iter
    (fun (name, inst) ->
      let p = prom_name name in
      match inst with
      | Counter c ->
          Format.fprintf fmt "# TYPE %s counter@\n%s %d@\n" p p c.c
      | Gauge g -> Format.fprintf fmt "# TYPE %s gauge@\n%s %g@\n" p p g.g
      | Histogram h ->
          let s = histogram_stats h in
          Format.fprintf fmt "# TYPE %s summary@\n" p;
          Format.fprintf fmt "%s{quantile=\"0.5\"} %d@\n" p s.p50;
          Format.fprintf fmt "%s{quantile=\"0.99\"} %d@\n" p s.p99;
          Format.fprintf fmt "%s_sum %d@\n" p s.sum;
          Format.fprintf fmt "%s_count %d@\n" p s.count)
    (sorted t)

let to_json t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> counters := (name, Json.Int c.c) :: !counters
      | Gauge g -> gauges := (name, Json.Float g.g) :: !gauges
      | Histogram h ->
          let s = histogram_stats h in
          histograms :=
            ( name,
              Json.Obj
                [
                  ("count", Json.Int s.count);
                  ("sum", Json.Int s.sum);
                  ("min", Json.Int s.min);
                  ("max", Json.Int s.max);
                  ("p50", Json.Int s.p50);
                  ("p99", Json.Int s.p99);
                ] )
            :: !histograms)
    (sorted t);
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms));
    ]
