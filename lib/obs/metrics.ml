type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Bucket [i] counts observations [v] with [bucket_of v = i]:
   bucket 0 holds v <= 0, bucket i holds 2^(i-1) <= v < 2^i. *)
let n_buckets = 64

type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = (string, instrument) Hashtbl.t

let create () = Hashtbl.create 32

let get_or_make t name make =
  match Hashtbl.find_opt t name with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.replace t name i;
      i

let kind_error name =
  invalid_arg ("Metrics: " ^ name ^ " already registered as another kind")

let counter t name =
  match get_or_make t name (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> kind_error name

let gauge t name =
  match get_or_make t name (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> kind_error name

let histogram t name =
  match
    get_or_make t name (fun () ->
        Histogram
          {
            buckets = Array.make n_buckets 0;
            h_count = 0;
            h_sum = 0;
            h_min = 0;
            h_max = 0;
          })
  with
  | Histogram h -> h
  | _ -> kind_error name

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let counters t =
  Hashtbl.fold
    (fun name i acc ->
      match i with Counter c -> (name, c.c) :: acc | _ -> acc)
    t []
  |> List.sort compare
let set g v = g.g <- v
let gauge_value g = g.g

let bucket_of v =
  if v <= 0 then 0
  else
    (* 1 + floor(log2 v), capped. *)
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 v)

let observe h v =
  let v = max 0 v in
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

type hstats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p99 : int;
  p999 : int;
}

(* Quantile as the upper bound (2^i - 1, i.e. the largest value the
   bucket can hold) of the bucket where the cumulative count crosses
   the rank, clamped to the observed max. *)
let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.h_count)))
    in
    let rec go i acc =
      if i >= n_buckets then h.h_max
      else
        let acc = acc + h.buckets.(i) in
        if acc >= rank then
          if i = 0 then 0 else Stdlib.min h.h_max ((1 lsl i) - 1)
        else go (i + 1) acc
    in
    go 0 0
  end

let histogram_stats h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = quantile h 0.5;
    p99 = quantile h 0.99;
    p999 = quantile h 0.999;
  }

let histogram_buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (i, h.buckets.(i)) :: !acc
  done;
  !acc

let bucket_lower i = if i <= 0 then 0 else 1 lsl (i - 1)
let bucket_upper i = if i <= 0 then 0 else (1 lsl i) - 1

let is_empty t = Hashtbl.length t = 0

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 n_buckets 0;
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0)
    t

let merge dst src =
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c -> incr ~by:c.c (counter dst name)
      | Gauge g -> set (gauge dst name) g.g
      | Histogram h ->
          let d = histogram dst name in
          if h.h_count > 0 then begin
            if d.h_count = 0 then begin
              d.h_min <- h.h_min;
              d.h_max <- h.h_max
            end
            else begin
              if h.h_min < d.h_min then d.h_min <- h.h_min;
              if h.h_max > d.h_max then d.h_max <- h.h_max
            end;
            d.h_count <- d.h_count + h.h_count;
            d.h_sum <- d.h_sum + h.h_sum;
            Array.iteri
              (fun i n -> d.buckets.(i) <- d.buckets.(i) + n)
              h.buckets
          end)
    src

let copy src =
  let dst = create () in
  Hashtbl.iter
    (fun name inst ->
      let inst' =
        match inst with
        | Counter c -> Counter { c = c.c }
        | Gauge g -> Gauge { g = g.g }
        | Histogram h ->
            Histogram
              {
                buckets = Array.copy h.buckets;
                h_count = h.h_count;
                h_sum = h.h_sum;
                h_min = h.h_min;
                h_max = h.h_max;
              }
      in
      Hashtbl.replace dst name inst')
    src;
  dst

(* Per-interval delta of two cumulative registries.  Counters and
   histogram buckets/count/sum subtract exactly; gauges take the
   current value (a gauge is already instantaneous).  A delta
   histogram's min/max cannot be recovered from cumulative extremes
   alone: they are exact when the interval moved the cumulative
   extreme, else approximated by the bounds of the interval's extreme
   non-empty buckets (clamped into the cumulative [min, max]). *)
let diff ~cur ~prev =
  let dst = create () in
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c ->
          let p =
            match Hashtbl.find_opt prev name with
            | Some (Counter pc) -> pc.c
            | Some _ -> kind_error name
            | None -> 0
          in
          incr ~by:(c.c - p) (counter dst name)
      | Gauge g -> set (gauge dst name) g.g
      | Histogram h ->
          let d = histogram dst name in
          let pb, p_min, p_max, p_count, p_sum =
            match Hashtbl.find_opt prev name with
            | Some (Histogram p) ->
                (p.buckets, p.h_min, p.h_max, p.h_count, p.h_sum)
            | Some _ -> kind_error name
            | None -> (Array.make n_buckets 0, 0, 0, 0, 0)
          in
          let lo = ref (-1) and hi = ref (-1) in
          for i = 0 to n_buckets - 1 do
            let n = h.buckets.(i) - pb.(i) in
            d.buckets.(i) <- n;
            if n > 0 then begin
              if !lo < 0 then lo := i;
              hi := i
            end
          done;
          d.h_count <- h.h_count - p_count;
          d.h_sum <- h.h_sum - p_sum;
          if d.h_count > 0 then begin
            d.h_min <-
              (if p_count = 0 || h.h_min < p_min then h.h_min
               else Stdlib.max h.h_min (bucket_lower !lo));
            d.h_max <-
              (if p_count = 0 || h.h_max > p_max then h.h_max
               else Stdlib.min h.h_max (bucket_upper !hi))
          end)
    cur;
  dst

let sorted t =
  Hashtbl.fold (fun name i acc -> (name, i) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp fmt t =
  let items = sorted t in
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (name, inst) ->
      if i > 0 then Format.fprintf fmt "@,";
      match inst with
      | Counter c -> Format.fprintf fmt "%-32s %d" name c.c
      | Gauge g -> Format.fprintf fmt "%-32s %g" name g.g
      | Histogram h ->
          let s = histogram_stats h in
          Format.fprintf fmt
            "%-32s count %d  sum %d  min %d  p50 %d  p99 %d  p999 %d  max \
             %d"
            name s.count s.sum s.min s.p50 s.p99 s.p999 s.max)
    items;
  Format.fprintf fmt "@]"

(* Prometheus text exposition format.  Instrument names here use dots
   ("monitor.feed.edges"); Prometheus metric names allow only
   [a-zA-Z0-9_:], so everything else maps to '_'. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let pp_prometheus fmt t =
  List.iter
    (fun (name, inst) ->
      let p = prom_name name in
      match inst with
      | Counter c ->
          Format.fprintf fmt "# TYPE %s counter@\n%s %d@\n" p p c.c
      | Gauge g -> Format.fprintf fmt "# TYPE %s gauge@\n%s %g@\n" p p g.g
      | Histogram h ->
          let s = histogram_stats h in
          Format.fprintf fmt "# TYPE %s summary@\n" p;
          Format.fprintf fmt "%s{quantile=\"0.5\"} %d@\n" p s.p50;
          Format.fprintf fmt "%s{quantile=\"0.99\"} %d@\n" p s.p99;
          Format.fprintf fmt "%s{quantile=\"0.999\"} %d@\n" p s.p999;
          Format.fprintf fmt "%s_sum %d@\n" p s.sum;
          Format.fprintf fmt "%s_count %d@\n" p s.count)
    (sorted t)

let to_json t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> counters := (name, Json.Int c.c) :: !counters
      | Gauge g -> gauges := (name, Json.Float g.g) :: !gauges
      | Histogram h ->
          let s = histogram_stats h in
          histograms :=
            ( name,
              Json.Obj
                [
                  ("count", Json.Int s.count);
                  ("sum", Json.Int s.sum);
                  ("min", Json.Int s.min);
                  ("max", Json.Int s.max);
                  ("p50", Json.Int s.p50);
                  ("p99", Json.Int s.p99);
                  ("p999", Json.Int s.p999);
                ] )
            :: !histograms)
    (sorted t);
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms));
    ]
