(** A registry of named counters, gauges and log-scale histograms.

    Instruments are created (or retrieved) by name; callers on hot
    paths should resolve an instrument once and keep it, after which
    every update is a couple of field mutations — no hashing, no
    allocation.  Histograms bucket observations by powers of two
    (64 buckets cover the non-negative integers), which is exact
    enough for latencies-in-rounds and streak lengths while keeping
    observation O(1) and the registry bounded.

    The registry renders as a fixed-width table ({!pp}) or as JSON
    ({!to_json}), the machine-readable form the benchmark harness and
    the CLI dump. *)

type t
(** A registry.  Mutable; not thread-safe. *)

type counter = { mutable c : int }
(** Concrete so that the one-instruction increment inlines into hot
    paths even without flambda; treat as opaque outside them and use
    {!incr}/{!counter_value}. *)

type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create.  Raises [Invalid_argument] if the name is already
    registered as a different kind of instrument. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val counters : t -> (string * int) list
(** Every registered counter as [(name, value)], sorted by name —
    for consumers that aggregate families of related counters (e.g.
    the per-object [runtime.refused.*] family behind the telemetry
    hub's hot-object ranking). *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record a non-negative observation (negative values clamp to 0). *)

type hstats = {
  count : int;
  sum : int;
  min : int;  (** Exact raw minimum observed (0 when empty). *)
  max : int;  (** Exact raw maximum observed (0 when empty). *)
  p50 : int;
      (** Quantiles are bucket-upper-bound approximations: the largest
          value the crossing bucket can hold ([2^i - 1]), clamped to
          the exact raw [max] — so a quantile never exceeds anything
          actually observed, and a single-observation histogram
          reports that observation exactly. *)
  p99 : int;
  p999 : int;
}

val histogram_stats : histogram -> hstats

val histogram_buckets : histogram -> (int * int) list
(** The non-empty power-of-two buckets as [(index, count)] pairs in
    ascending index order: bucket [0] holds observations [<= 0],
    bucket [i > 0] holds [2^(i-1) <= v < 2^i].  The raw shape behind
    {!histogram_stats}, exported so artifacts survive re-bucketing. *)

val bucket_lower : int -> int
(** Smallest value bucket [i] can hold ([0] for bucket 0). *)

val bucket_upper : int -> int
(** Largest value bucket [i] can hold ([0] for bucket 0). *)

val is_empty : t -> bool
(** No instrument registered (not merely all-zero). *)

val reset : t -> unit
(** Zero every instrument, keeping registrations. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counters add, gauges take
    the source's value, histograms merge exactly (per-bucket sums, so
    merged quantiles equal the quantiles of the combined stream).
    [src] is unchanged.  Raises [Invalid_argument] if a name is
    registered with different instrument kinds in the two registries.
    This is how [ntprof] combines registries across trace files. *)

val copy : t -> t
(** A deep, independent copy — the frozen registry a {!Snapshot}
    retains. *)

val diff : cur:t -> prev:t -> t
(** [diff ~cur ~prev] is a fresh registry holding the per-interval
    delta of two cumulative readings of the {e same} instruments
    ([prev] an earlier {!copy} of [cur]'s registry): counters and
    histogram buckets/count/sum subtract exactly, gauges take [cur]'s
    value.  A delta histogram's min/max are exact when the interval
    moved the cumulative extreme and bucket-bound approximations
    otherwise (clamped into the cumulative range).  Instruments absent
    from [prev] are treated as zero; raises [Invalid_argument] on kind
    mismatches. *)

val pp : Format.formatter -> t -> unit
(** All instruments, sorted by name, one per line. *)

val to_json : t -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
    min,max,p50,p99},...}}]. *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition: counters and gauges as themselves,
    histograms as summaries with 0.5/0.99 quantile lines plus
    [_sum]/[_count].  Names are sanitized to the Prometheus charset
    (every other character becomes ['_']). *)
