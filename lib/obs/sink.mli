(** Where telemetry events go.

    A sink is three closures; the recorder calls [emit] once per
    event.  {!null} drops everything (the zero-cost default — the
    recorder does not even build events for it), {!memory} retains
    them for tests and ad-hoc analysis, {!jsonl} streams one JSON
    object per line without retaining anything, and {!Chrome} (its own
    module) streams the Chrome trace-event format. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;  (** Also flushes.  Idempotent. *)
}

val null : t
(** Physical equality with [null] is how the recorder recognizes the
    no-op sink. *)

val memory : unit -> t * (unit -> Event.t list)
(** The callback returns everything emitted so far, in order. *)

val jsonl : out_channel -> t
(** One event per line, streamed as emitted.  [close] flushes but
    leaves the channel open (the caller owns it). *)

val jsonl_file : string -> t
(** {!jsonl} on a fresh file; [close] closes the file. *)

val tee : t -> t -> t
(** Duplicate every event (and flush/close) to both sinks, first
    argument first.  Lets [ntsim --report] feed an in-process profiler
    while still writing the JSONL artifact. *)
