(** A minimal JSON tree and printer.

    The observability exporters (JSONL sink, Chrome trace, metrics
    dump, benchmark tables) all need to produce JSON; the toolchain
    deliberately has no JSON dependency, so this is the one shared
    implementation.  {!parse} reads the same subset back so that
    [ntprof] can consume the traces the JSONL sink writes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** The JSON-escaped content of a string literal, without the
    surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
(** Append the compact (single-line) rendering. *)

val to_string : t -> string

val output : out_channel -> t -> unit
(** Compact rendering straight to a channel (no intermediate
    string). *)

val parse : string -> (t, string) result
(** Parse one complete JSON value (leading/trailing whitespace
    allowed; anything after the value is an error).  Handles the full
    escape set including [\uXXXX] and surrogate pairs (decoded to
    UTF-8).  Numbers without ['.'], ['e'] or ['E'] parse as {!Int};
    the rest as {!Float}.  Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    missing keys and non-objects. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
