(** A minimal JSON tree and printer.

    The observability exporters (JSONL sink, Chrome trace, metrics
    dump, benchmark tables) all need to produce JSON; the toolchain
    deliberately has no JSON dependency, so this is the one shared
    implementation.  Printing only — nothing in the library parses
    JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** The JSON-escaped content of a string literal, without the
    surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
(** Append the compact (single-line) rendering. *)

val to_string : t -> string

val output : out_channel -> t -> unit
(** Compact rendering straight to a channel (no intermediate
    string). *)
