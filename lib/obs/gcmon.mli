(** GC-pause observation for the serving loop.

    Two implementations are selected at build time (dune [select]):

    - On OCaml 5 with the [runtime_events] library, a self-cursor over
      the runtime's event ring turns every minor collection and major
      slice into a completed pause with real begin/end times
      ({!precise} is [true]).  Runtime timestamps are monotonic
      nanoseconds on the runtime's own clock; {!poll} maps them onto
      the {e caller's} clock by anchoring the first event seen at the
      first poll's [now], so pause spans land on the same timeline as
      the request stage spans around them.

    - Otherwise a [Gc.quick_stat] fallback: each poll compares
      collection counters and reports one zero-duration pause per
      collection that happened since the previous poll, stamped at
      poll time ({!precise} is [false]).  Counts and rates stay
      meaningful; durations and placement do not.

    Attribution caveat (both paths): pauses are drained by polling
    between serving-loop turns, so a pause is attributed to whatever
    request context the loop most recently touched — exact for pauses
    inside a handled request, approximate for pauses that fall between
    requests.  See [doc/observability.mld]. *)

type pause = {
  gc_kind : string;  (** ["minor"] or ["major"]. *)
  gc_t0 : float;  (** Caller-clock seconds (equal when not {!precise}). *)
  gc_t1 : float;
}

type t

val precise : bool
(** [true] when real pause durations are available ([runtime_events]
    backend), [false] under the [Gc.quick_stat] fallback. *)

val start : unit -> t option
(** Begin observing.  [None] if the backend cannot start (e.g. the
    runtime-events ring cannot be created); the caller should then
    serve without GC attribution. *)

val poll : t -> now:float -> pause list
(** Pauses completed since the previous poll, oldest first, on the
    caller's clock ([now] is that clock's current reading).  Cheap
    when nothing happened. *)

val total : t -> int
(** Pauses reported so far, across all polls. *)

val stop : t -> unit
(** Release backend resources.  The [t] must not be polled again. *)
