(* Ring-buffered sliding-window instruments.  One array cell (or one
   64-bucket histogram row) per slot; the hot path touches only the
   head slot, and [tick] rotates the ring by zeroing the slot it is
   about to reuse — no allocation after registration. *)

let n_buckets = 64

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 v)

type t = {
  slots : int;
  mutable head : int;
  mutable rotations : int;
  instruments : (string, winstr) Hashtbl.t;
}

and wcounter = { win : t; cells : int array }

and whistogram = {
  hwin : t;
  rows : int array;  (* slots x n_buckets, flattened *)
  counts : int array;
  sums : int array;
  mins : int array;  (* valid only where counts > 0 *)
  maxs : int array;
}

and winstr = Wcounter of wcounter | Whistogram of whistogram

let create ?(slots = 8) () =
  if slots < 1 then invalid_arg "Window.create: slots must be >= 1";
  { slots; head = 0; rotations = 0; instruments = Hashtbl.create 16 }

let slots t = t.slots
let rotations t = t.rotations

let kind_error name =
  invalid_arg ("Window: " ^ name ^ " already registered as another kind")

let get_or_make t name make =
  match Hashtbl.find_opt t.instruments name with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.replace t.instruments name i;
      i

let counter t name =
  match
    get_or_make t name (fun () ->
        Wcounter { win = t; cells = Array.make t.slots 0 })
  with
  | Wcounter c -> c
  | Whistogram _ -> kind_error name

let histogram t name =
  match
    get_or_make t name (fun () ->
        Whistogram
          {
            hwin = t;
            rows = Array.make (t.slots * n_buckets) 0;
            counts = Array.make t.slots 0;
            sums = Array.make t.slots 0;
            mins = Array.make t.slots 0;
            maxs = Array.make t.slots 0;
          })
  with
  | Whistogram h -> h
  | Wcounter _ -> kind_error name

let incr ?(by = 1) c = c.cells.(c.win.head) <- c.cells.(c.win.head) + by

let observe h v =
  let v = max 0 v in
  let s = h.hwin.head in
  let i = bucket_of v in
  h.rows.((s * n_buckets) + i) <- h.rows.((s * n_buckets) + i) + 1;
  if h.counts.(s) = 0 then begin
    h.mins.(s) <- v;
    h.maxs.(s) <- v
  end
  else begin
    if v < h.mins.(s) then h.mins.(s) <- v;
    if v > h.maxs.(s) then h.maxs.(s) <- v
  end;
  h.counts.(s) <- h.counts.(s) + 1;
  h.sums.(s) <- h.sums.(s) + v

let tick t =
  t.rotations <- t.rotations + 1;
  t.head <- (t.head + 1) mod t.slots;
  let s = t.head in
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Wcounter c -> c.cells.(s) <- 0
      | Whistogram h ->
          Array.fill h.rows (s * n_buckets) n_buckets 0;
          h.counts.(s) <- 0;
          h.sums.(s) <- 0;
          h.mins.(s) <- 0;
          h.maxs.(s) <- 0)
    t.instruments

let filled t = min (t.rotations + 1) t.slots

let counter_current c = c.cells.(c.win.head)
let counter_total c = Array.fold_left ( + ) 0 c.cells

type view = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p99 : int;
  p999 : int;
  buckets : (int * int) list;
}

let empty_view =
  { count = 0; sum = 0; min = 0; max = 0; p50 = 0; p99 = 0; p999 = 0;
    buckets = [] }

(* Same convention as [Metrics.quantile]: the upper bound of the
   bucket where the cumulative count crosses the rank, clamped to the
   exact observed max. *)
let quantile merged ~count ~vmax q =
  if count = 0 then 0
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let rec go i acc =
      if i >= n_buckets then vmax
      else
        let acc = acc + merged.(i) in
        if acc >= rank then
          if i = 0 then 0 else Stdlib.min vmax ((1 lsl i) - 1)
        else go (i + 1) acc
    in
    go 0 0
  end

let view_of_slots h slot_list =
  let merged = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0 in
  let vmin = ref max_int and vmax = ref 0 in
  List.iter
    (fun s ->
      if h.counts.(s) > 0 then begin
        for i = 0 to n_buckets - 1 do
          merged.(i) <- merged.(i) + h.rows.((s * n_buckets) + i)
        done;
        count := !count + h.counts.(s);
        sum := !sum + h.sums.(s);
        if h.mins.(s) < !vmin then vmin := h.mins.(s);
        if h.maxs.(s) > !vmax then vmax := h.maxs.(s)
      end)
    slot_list;
  if !count = 0 then empty_view
  else begin
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if merged.(i) > 0 then buckets := (i, merged.(i)) :: !buckets
    done;
    {
      count = !count;
      sum = !sum;
      min = !vmin;
      max = !vmax;
      p50 = quantile merged ~count:!count ~vmax:!vmax 0.5;
      p99 = quantile merged ~count:!count ~vmax:!vmax 0.99;
      p999 = quantile merged ~count:!count ~vmax:!vmax 0.999;
      buckets = !buckets;
    }
  end

let histogram_current h = view_of_slots h [ h.hwin.head ]

(* Valid slots are 0..rotations while the ring is filling (head has
   only ever advanced that far), then all of them. *)
let histogram_view h = view_of_slots h (List.init (filled h.hwin) Fun.id)
