(* Runtime_events backend for Gcmon: selected when the
   [runtime_events] library exists (OCaml >= 5.0).  A self-cursor over
   the runtime's ring turns EV_MINOR / EV_MAJOR begin/end pairs into
   completed pauses with real durations.

   The runtime stamps events in monotonic nanoseconds on its own
   clock; we anchor that clock to the caller's by equating the latest
   event timestamp seen by the first non-empty poll with that poll's
   [now] — every drained event happened before the poll, so every
   mapped time lands at or before [now] (still clamped as a safety
   net) and everything after the anchor is consistent. *)

module RE = Runtime_events

type pause = { gc_kind : string; gc_t0 : float; gc_t1 : float }

type t = {
  cursor : RE.cursor;
  callbacks : RE.Callbacks.t;
  anchor : float option ref;  (* latest raw timestamp seen, seconds *)
  mutable offset : float option;  (* caller clock - runtime clock, s *)
  pending : (int * string, float) Hashtbl.t;  (* (ring, kind) -> raw begin *)
  completed : (string * float * float) Queue.t;  (* kind, raw t0, raw t1 *)
  mutable reported : int;
}

let precise = true

(* Only the two top-level collection phases: their sub-phases
   (EV_MAJOR_SWEEP, EV_MINOR_LOCAL_ROOTS, ...) nest inside them and
   would double-count pause time. *)
let phase_kind = function
  | RE.EV_MINOR -> Some "minor"
  | RE.EV_MAJOR -> Some "major"
  | _ -> None

let raw_seconds ts = Int64.to_float (RE.Timestamp.to_int64 ts) /. 1e9

let start () =
  try
    RE.start ();
    let anchor = ref None in
    let pending = Hashtbl.create 8 in
    let completed = Queue.create () in
    let see ts =
      let r = raw_seconds ts in
      match !anchor with
      | Some a when a >= r -> ()
      | _ -> anchor := Some r
    in
    let runtime_begin ring ts phase =
      see ts;
      match phase_kind phase with
      | None -> ()
      | Some kind -> Hashtbl.replace pending (ring, kind) (raw_seconds ts)
    in
    let runtime_end ring ts phase =
      see ts;
      match phase_kind phase with
      | None -> ()
      | Some kind -> (
          match Hashtbl.find_opt pending (ring, kind) with
          | None -> ()
          | Some t0 ->
              Hashtbl.remove pending (ring, kind);
              Queue.push (kind, t0, raw_seconds ts) completed)
    in
    let callbacks = RE.Callbacks.create ~runtime_begin ~runtime_end () in
    let cursor = RE.create_cursor None in
    Some
      {
        cursor;
        callbacks;
        anchor;
        offset = None;
        pending;
        completed;
        reported = 0;
      }
  with _ -> None

let poll t ~now =
  (try ignore (RE.read_poll t.cursor t.callbacks None) with _ -> ());
  (match (t.offset, !(t.anchor)) with
  | None, Some raw -> t.offset <- Some (now -. raw)
  | _ -> ());
  match t.offset with
  | None -> []
  | Some off ->
      let out = ref [] in
      Queue.iter
        (fun (kind, r0, r1) ->
          let m1 = Stdlib.min (r1 +. off) now in
          let m0 = Stdlib.min (r0 +. off) m1 in
          out := { gc_kind = kind; gc_t0 = m0; gc_t1 = m1 } :: !out)
        t.completed;
      Queue.clear t.completed;
      let ps = List.rev !out in
      t.reported <- t.reported + List.length ps;
      ps

let total t = t.reported

let stop t =
  (try RE.free_cursor t.cursor with _ -> ());
  try RE.pause () with _ -> ()
