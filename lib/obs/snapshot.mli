(** Frozen readings of a {!Metrics} registry, diffed into per-interval
    deltas.

    The registry's instruments are cumulative; a consumer that wants
    "what happened {e this} interval" captures a snapshot at each
    boundary and diffs consecutive captures — counters and histogram
    buckets subtract exactly ({!Metrics.diff}), so cumulative
    instruments render as per-interval deltas without touching the
    producers.  [at] is whatever clock the caller uses (seconds;
    [ntserved] passes its monotonic time) and rides along so rates
    fall out of a diff. *)

type t

val capture : ?at:float -> Metrics.t -> t
(** Deep-copy the registry's current values ([at] defaults to 0). *)

val at : t -> float
val metrics : t -> Metrics.t
(** The frozen copy (owned by the snapshot; do not mutate). *)

val delta : prev:t -> t -> Metrics.t * float
(** [delta ~prev cur]: the per-interval registry ({!Metrics.diff}) and
    the elapsed seconds between the captures. *)

val delta_live : ?at:float -> prev:t -> Metrics.t -> Metrics.t * float
(** Diff a live registry against a snapshot without capturing first
    (the "render the current interval so far" path). *)

val rate : int -> float -> float
(** [rate n elapsed] = [n /. elapsed], 0 on a degenerate interval. *)
