(** The telemetry recorder.

    One value of this type is threaded (as an optional [?obs]
    argument) through the execution stack — {!Nt_iosim.Executor},
    {!Nt_generic.Runtime}, {!Nt_sg.Monitor}.  It owns a logical clock
    (one tick per action), derives the transaction-span model from the
    action stream ({!on_action}), forwards events to a {!Sink.t}, and
    aggregates a {!Metrics.t} registry.

    {!null} is the disabled recorder and the default everywhere; hot
    paths guard with {!enabled}, so an un-instrumented run pays one
    branch per action and allocates nothing. *)

open Nt_base

type t

val null : t
(** The disabled recorder (shared; its registry stays empty). *)

type interest = {
  spans : bool;  (** {!Event.Begin}/{!Event.End} *)
  instants : bool;
  waits : bool;
  edges : bool;
  counters : bool;
}
(** Which event kinds a sink wants.  A recorder only builds (and the
    producer only pays for) the kinds its sink declared — this is how
    [ntserved]'s telemetry hub listens for lock-wait events without
    making every access allocate a span event. *)

val all_events : interest
val no_events : interest
val waits_only : interest

val create :
  ?metrics:Metrics.t -> ?sink:Sink.t -> ?events:interest -> unit -> t
(** An enabled recorder.  Default sink {!Sink.null} (metrics only),
    default registry fresh, default interest {!all_events} (forced to
    {!no_events} when the sink is {!Sink.null}). *)

val enabled : t -> bool

val emitting : t -> bool
(** [enabled t] and the sink consumes {e some} event kind.  Hot paths
    that must build an {!Event.t} (or box optional arguments for
    {!instant}) check this first so a metrics-only recorder allocates
    nothing; paths serving exactly one kind use the [emitting_*]
    variants below instead. *)

val emitting_waits : t -> bool
(** The sink wants {!Event.Wait} — the generic runtime's blocked-access
    bookkeeping (holder lists, wait-for index) is maintained exactly
    when this holds. *)

val emitting_edges : t -> bool
(** The sink wants {!Event.Edge} (checked by the SG monitor before
    assembling witness arguments). *)

val metrics : t -> Metrics.t

val now : t -> int
(** The logical clock: ticks advanced so far. *)

val close : t -> unit
(** Close the sink (flushes; completes a Chrome array). *)

val on_action : t -> Action.t -> unit
(** Advance the clock and translate the action into telemetry:
    [Create T] opens [T]'s span, [Commit]/[Abort T] closes it
    (emitting {!Event.End} and feeding the [txn.commit.ticks]
    histogram and the [txn.committed]/[txn.aborted] counters); every
    action bumps the [actions] counter.  No-op on {!null}. *)

val span_begin : t -> int -> Txn_id.t -> unit
(** [span_begin t ts txn]: timestamp-passing variant of the [Create]
    arm of {!on_action}, for hosts that already count executed actions
    and can remember [ts] themselves (the generic runtime keeps it in
    its per-transaction status record).  Sets the clock to [ts] (=
    [now t] at run start plus the host's action count), opens no span
    table entry, and does {e not} bump the [actions] counter — the
    host settles totals once with {!settle}.  With this protocol the
    recorder is untouched by non-lifecycle actions, so an enabled
    recorder costs the runtime a dead branch per action.  No-op on
    {!null}. *)

val span_end : t -> int -> began:int -> Txn_id.t -> Event.outcome -> unit
(** [span_end t ts ~began txn outcome]: close [txn]'s span at tick
    [ts], where [began] is the tick the host recorded at
    {!span_begin} ([ts] itself if the transaction was never created).
    Feeds the [txn.committed]/[txn.aborted] counters and the
    [txn.commit.ticks]/[txn.abort.ticks] histograms and emits
    {!Event.End}.  No-op on {!null}. *)

val settle : t -> clock:int -> actions:int -> unit
(** End-of-run bookkeeping for the timestamp-passing protocol: advance
    the clock to [clock] (if ahead) and add [actions] to the [actions]
    counter.  No-op on {!null}. *)

val instant : ?txn:Txn_id.t -> ?obj:Obj_id.t -> ?ts:int -> t -> string -> unit
(** Emit an instant event, at tick [ts] when given (advancing the
    clock if ahead — used by {!on_action_at} hosts), else at the
    current tick.  No-op on {!null}. *)

val counter_sample : t -> string -> int -> unit
(** Emit a counter-track sample at the current tick (for timeline
    viewers; independent of the metrics registry).  No-op on
    {!null}. *)

val wait :
  ?ts:int ->
  t ->
  txn:Txn_id.t ->
  obj:Obj_id.t ->
  holders:(Txn_id.t * string) list ->
  waited:int ->
  unit
(** Emit an {!Event.Wait}: [txn]'s access to [obj] was refused because
    of [holders] (with their lock kinds), after [waited] ticks blocked
    so far.  Callers must check {!emitting} before building [holders]
    — this helper only exists for the event stream, there is no
    metrics side.  No-op unless emitting. *)

val sg_edge :
  ?obj:Obj_id.t ->
  ?ts:int ->
  t ->
  src:Txn_id.t ->
  dst:Txn_id.t ->
  kind:string ->
  w1:Txn_id.t ->
  w1_ts:int ->
  w2:Txn_id.t ->
  w2_ts:int ->
  unit
(** Emit an {!Event.Edge}: the monitor inserted SG edge [src -> dst]
    of [kind] (["conflict"]/["precedes"]) witnessed by actions
    [w1]/[w2] at feed indices [w1_ts]/[w2_ts].  No-op unless
    emitting. *)
