(** Chrome trace-event exporter.

    Streams the JSON array format that [chrome://tracing] and Perfetto
    load: a nested-transaction execution renders as a timeline, one
    process group per {e top-level} transaction, one named thread row
    per transaction within it (rows appear in creation order, so a
    parent's row precedes its children's), with duration slices for
    transaction spans, thread-scoped instants for attached events, and
    counter tracks for sampled series.  Logical ticks are reported as
    microseconds.

    The mapping works for arbitrary interleavings: sibling spans
    overlap in time, which per-transaction rows render faithfully
    where a single stack of [B]/[E] events could not. *)

val sink : out_channel -> Sink.t
(** Stream onto a channel the caller owns; [close] completes the JSON
    array and flushes but does not close the channel. *)

val sink_file : string -> Sink.t
(** Stream to a fresh file; [close] completes the array and closes
    the file. *)
