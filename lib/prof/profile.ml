open Nt_base
open Nt_obs

(* Per-object contention accumulator.  The wait histogram lives in the
   metrics registry (as "wait.ticks.<obj>") so that registry merging
   carries it; the scalar totals live here for the top-K table. *)
type obj_stat = {
  mutable waits : int;  (* completed wait streaks *)
  mutable wait_events : int;  (* Wait events (refusal retries) *)
  mutable total_waited : int;  (* sum of streak durations *)
  mutable max_waited : int;
}

type edge_stat = {
  e_src : Txn_id.t;
  e_dst : Txn_id.t;
  e_kind : string;
  e_obj : Obj_id.t option;
  e_w1 : Txn_id.t;
  e_w1_ts : int;
  e_w2 : Txn_id.t;
  e_w2_ts : int;
  mutable e_count : int;  (* recurrences across merged runs *)
}

type t = {
  m : Metrics.t;
  objs : (string, obj_stat) Hashtbl.t;
  edges : (string * string * string, edge_stat) Hashtbl.t;
      (* keyed by (src, dst, kind) string forms *)
  g : Nt_sg.Graph.t;
  pending : (string * string, int) Hashtbl.t;
      (* (txn, obj) -> waited ticks of the still-open streak *)
  mutable events : int;
  mutable bad_lines : int;
}

let create () =
  {
    m = Metrics.create ();
    objs = Hashtbl.create 32;
    edges = Hashtbl.create 64;
    g = Nt_sg.Graph.create ();
    pending = Hashtbl.create 32;
    events = 0;
    bad_lines = 0;
  }

let metrics t = t.m
let events t = t.events
let bad_lines t = t.bad_lines

let obj_stat t name =
  match Hashtbl.find_opt t.objs name with
  | Some s -> s
  | None ->
      let s = { waits = 0; wait_events = 0; total_waited = 0; max_waited = 0 } in
      Hashtbl.replace t.objs name s;
      s

let close_streak t obj_name waited =
  let s = obj_stat t obj_name in
  s.waits <- s.waits + 1;
  s.total_waited <- s.total_waited + waited;
  if waited > s.max_waited then s.max_waited <- waited;
  Metrics.observe (Metrics.histogram t.m ("wait.ticks." ^ obj_name)) waited

let feed t (e : Event.t) =
  t.events <- t.events + 1;
  match e with
  | Event.Begin _ -> Metrics.incr (Metrics.counter t.m "txn.created")
  | Event.End { outcome; dur; _ } -> (
      match outcome with
      | Event.Committed ->
          Metrics.incr (Metrics.counter t.m "txn.committed");
          Metrics.observe (Metrics.histogram t.m "txn.commit.ticks") dur
      | Event.Aborted ->
          Metrics.incr (Metrics.counter t.m "txn.aborted");
          Metrics.observe (Metrics.histogram t.m "txn.abort.ticks") dur)
  | Event.Instant { name; _ } ->
      Metrics.incr (Metrics.counter t.m ("event." ^ name))
  | Event.Counter { name; value; _ } ->
      (* Counter tracks are cumulative samples: the last one wins. *)
      Metrics.set (Metrics.gauge t.m ("sample." ^ name)) (float_of_int value)
  | Event.Wait { txn; obj; waited; _ } ->
      let obj_name = Obj_id.name obj in
      let s = obj_stat t obj_name in
      s.wait_events <- s.wait_events + 1;
      Metrics.incr (Metrics.counter t.m "wait.events");
      (* Within one blocked streak [waited] strictly grows (one tick
         per executed action); a drop means the previous streak ended
         off-stream (the access unblocked or aborted) and a new one
         started. *)
      let key = (Txn_id.to_string txn, obj_name) in
      (match Hashtbl.find_opt t.pending key with
      | Some prev when waited <= prev -> close_streak t obj_name prev
      | _ -> ());
      Hashtbl.replace t.pending key waited
  | Event.Edge { src; dst; kind; obj; w1; w1_ts; w2; w2_ts; _ } -> (
      Metrics.incr (Metrics.counter t.m ("sg.edge." ^ kind));
      Nt_sg.Graph.add_edge t.g src dst;
      let key = (Txn_id.to_string src, Txn_id.to_string dst, kind) in
      match Hashtbl.find_opt t.edges key with
      | Some es -> es.e_count <- es.e_count + 1
      | None ->
          Hashtbl.replace t.edges key
            {
              e_src = src;
              e_dst = dst;
              e_kind = kind;
              e_obj = obj;
              e_w1 = w1;
              e_w1_ts = w1_ts;
              e_w2 = w2;
              e_w2_ts = w2_ts;
              e_count = 1;
            })

(* Flush still-open wait streaks into the histograms (the trace ended
   while those accesses were blocked, or they unblocked without a
   further refusal). *)
let finish t =
  Hashtbl.iter (fun (_, obj_name) waited -> close_streak t obj_name waited)
    t.pending;
  Hashtbl.reset t.pending

let feed_line t line =
  let line = String.trim line in
  if line = "" then Ok ()
  else
    match Json.parse line with
    | Error e ->
        t.bad_lines <- t.bad_lines + 1;
        Error e
    | Ok j -> (
        match Event.of_json j with
        | Error e ->
            t.bad_lines <- t.bad_lines + 1;
            Error e
        | Ok e ->
            feed t e;
            Ok ())

let load t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let errors = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match feed_line t line with
           | Ok () -> ()
           | Error e ->
               if List.length !errors < 5 then
                 errors := Printf.sprintf "%s:%d: %s" path !lineno e :: !errors
         done
       with End_of_file -> ());
      finish t;
      List.rev !errors)

let sink t =
  {
    Sink.emit = (fun e -> feed t e);
    flush = ignore;
    close = (fun () -> finish t);
  }

let merge dst src =
  Metrics.merge dst.m src.m;
  Hashtbl.iter
    (fun name s ->
      let d = obj_stat dst name in
      d.waits <- d.waits + s.waits;
      d.wait_events <- d.wait_events + s.wait_events;
      d.total_waited <- d.total_waited + s.total_waited;
      if s.max_waited > d.max_waited then d.max_waited <- s.max_waited)
    src.objs;
  Hashtbl.iter
    (fun key es ->
      Nt_sg.Graph.add_edge dst.g es.e_src es.e_dst;
      match Hashtbl.find_opt dst.edges key with
      | Some d -> d.e_count <- d.e_count + es.e_count
      | None -> Hashtbl.replace dst.edges key { es with e_count = es.e_count })
    src.edges;
  dst.events <- dst.events + src.events;
  dst.bad_lines <- dst.bad_lines + src.bad_lines

(* --- Reports ----------------------------------------------------------- *)

let top_objects t k =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.objs []
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b.total_waited a.total_waited with
         | 0 -> (
             match compare b.wait_events a.wait_events with
             | 0 -> compare na nb
             | c -> c)
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

let hot_edges t k =
  Hashtbl.fold (fun _ es acc -> es :: acc) t.edges []
  |> List.sort (fun a b ->
         match compare b.e_count a.e_count with
         | 0 -> (
             match compare a.e_w2_ts b.e_w2_ts with
             | 0 ->
                 compare
                   (Txn_id.to_string a.e_src, Txn_id.to_string a.e_dst)
                   (Txn_id.to_string b.e_src, Txn_id.to_string b.e_dst)
             | c -> c)
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

let pp_edge fmt es =
  Format.fprintf fmt "%s -> %s  %s%s  (%s@%d ~ %s@%d)%s"
    (Txn_id.to_string es.e_src)
    (Txn_id.to_string es.e_dst)
    es.e_kind
    (match es.e_obj with Some x -> " at " ^ Obj_id.name x | None -> "")
    (Txn_id.to_string es.e_w1)
    es.e_w1_ts
    (Txn_id.to_string es.e_w2)
    es.e_w2_ts
    (if es.e_count > 1 then Printf.sprintf "  x%d" es.e_count else "")

let edge_label t a b =
  let a_s = Txn_id.to_string a and b_s = Txn_id.to_string b in
  let found =
    Hashtbl.fold
      (fun (s, d, _) es acc ->
        match acc with
        | Some _ -> acc
        | None -> if s = a_s && d = b_s then Some es else None)
      t.edges None
  in
  match found with
  | None -> None
  | Some es ->
      Some
        (Printf.sprintf "%s%s: %s@%d ~ %s@%d" es.e_kind
           (match es.e_obj with Some x -> " " ^ Obj_id.name x | None -> "")
           (Txn_id.to_string es.e_w1)
           es.e_w1_ts
           (Txn_id.to_string es.e_w2)
           es.e_w2_ts)

let dot t =
  let cycle =
    Option.value ~default:[] (Nt_sg.Graph.find_cycle t.g)
  in
  Nt_sg.Dot.of_graph ~cycle ~edge_label:(edge_label t) t.g

let has_cycle t = Nt_sg.Graph.find_cycle t.g <> None

let report ?(top = 10) fmt t =
  finish t;
  let counter name =
    Metrics.counter_value (Metrics.counter t.m name)
  in
  Format.fprintf fmt "== summary ==@\n";
  Format.fprintf fmt
    "events %d  txns created %d  committed %d  aborted %d  wait events %d@\n"
    t.events (counter "txn.created") (counter "txn.committed")
    (counter "txn.aborted") (counter "wait.events");
  if t.bad_lines > 0 then
    Format.fprintf fmt "(%d malformed trace lines skipped)@\n" t.bad_lines;
  let aborts =
    List.filter_map
      (fun (label, name) ->
        let v = counter name in
        if v > 0 then Some (Printf.sprintf "%s %d" label v) else None)
      [
        ("lock-conflict", "event.deadlock.victim");
        ("injected", "event.abort.injected");
        ("monitor-cycle", "event.monitor.cycle");
        ("monitor-inappropriate", "event.monitor.inappropriate");
      ]
  in
  if aborts <> [] then
    Format.fprintf fmt "abort/alarm causes: %s@\n" (String.concat ", " aborts);
  Format.fprintf fmt "@\n== top %d contended objects ==@\n" top;
  let tops = top_objects t top in
  if tops = [] then Format.fprintf fmt "(no lock waits recorded)@\n"
  else begin
    Format.fprintf fmt "%-16s %8s %8s %12s %8s %8s %8s@\n" "object" "streaks"
      "refusals" "total-ticks" "max" "p50" "p99";
    List.iter
      (fun (name, s) ->
        let h = Metrics.histogram_stats (Metrics.histogram t.m ("wait.ticks." ^ name)) in
        Format.fprintf fmt "%-16s %8d %8d %12d %8d %8d %8d@\n" name s.waits
          s.wait_events s.total_waited s.max_waited h.Metrics.p50
          h.Metrics.p99)
      tops
  end;
  Format.fprintf fmt "@\n== hottest SG edges ==@\n";
  let edges = hot_edges t top in
  if edges = [] then Format.fprintf fmt "(no SG edges in trace)@\n"
  else
    List.iter (fun es -> Format.fprintf fmt "%a@\n" pp_edge es) edges;
  if has_cycle t then
    Format.fprintf fmt "@\n!! the recorded SG contains a cycle@\n";
  Format.fprintf fmt "@\n== metrics registry ==@\n%a@\n" Metrics.pp t.m

let prometheus t =
  finish t;
  Format.asprintf "%a" Metrics.pp_prometheus t.m
