open Nt_obs

type t = {
  mutable rev_spans : Stage.span list;
  mutable n_spans : int;
  mutable reason : string option;
  mutable dropped : int;
  mutable bad : int;
}

let create () =
  { rev_spans = []; n_spans = 0; reason = None; dropped = 0; bad = 0 }

let feed_line t line =
  let line = String.trim line in
  if line = "" then Ok ()
  else
    match Json.parse line with
    | Error e ->
        t.bad <- t.bad + 1;
        Error e
    | Ok j -> (
        match Json.member "ev" j with
        | Some (Json.Str "flight") ->
            (match Json.member "reason" j with
            | Some (Json.Str r) -> t.reason <- Some r
            | _ -> ());
            (match Json.member "dropped" j with
            | Some (Json.Int d) -> t.dropped <- t.dropped + d
            | _ -> ());
            Ok ()
        | Some (Json.Str "stage") -> (
            match Stage.span_of_json j with
            | Ok sp ->
                t.rev_spans <- sp :: t.rev_spans;
                t.n_spans <- t.n_spans + 1;
                Ok ()
            | Error e ->
                t.bad <- t.bad + 1;
                Error e)
        | _ ->
            t.bad <- t.bad + 1;
            Error "not a flight-dump line (no \"ev\":\"flight\"/\"stage\")")

let load t path =
  let ic = open_in path in
  let errs = ref [] and n_errs = ref 0 in
  (try
     while true do
       match feed_line t (input_line ic) with
       | Ok () -> ()
       | Error e ->
           incr n_errs;
           if !n_errs <= 5 then errs := e :: !errs
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !errs

let spans t = List.rev t.rev_spans
let reason t = t.reason
let dropped t = t.dropped
let bad_lines t = t.bad

(* --- per-request chains with exclusive (self) time --- *)

type chain = {
  c_req : string;
  c_txn : string option;
  c_t0 : float;
  c_t1 : float;
  c_stages : (string * int) list;
  c_missing : string list;
}

let req_key sp = match sp.Stage.sp_req with Some r -> r | None -> ""

(* Order stage names canonically first, then by first appearance. *)
let stage_order names =
  let canonical = List.filter (fun s -> List.mem s names) Stage.stages in
  let extra = List.filter (fun s -> not (List.mem s Stage.stages)) names in
  canonical @ extra

(* One nesting pass over a request's spans: sorted by begin (ties:
   longer first, so parents precede children), a stack of open spans
   assigns each span its enclosing path and charges its overlap to the
   parent's child time.  [emit] sees (enclosing names, span, exclusive
   µs). *)
let exclusive_pass spans emit =
  let arr = Array.of_list spans in
  Array.sort
    (fun a b ->
      let c = compare a.Stage.sp_t0 b.Stage.sp_t0 in
      if c <> 0 then c else compare b.Stage.sp_t1 a.Stage.sp_t1)
    arr;
  (* stack of (span, child seconds so far), innermost first *)
  let stack = ref [] in
  let close_out (sp, child_s) =
    let self = ((sp.Stage.sp_t1 -. sp.Stage.sp_t0) -. child_s) *. 1e6 in
    (* [stack] no longer contains [sp]; it lists enclosing spans
       innermost first, so reverse for an outermost-first path *)
    let path = List.rev_map (fun (p, _) -> p.Stage.sp_stage) !stack in
    emit path sp (max 0 (int_of_float (self +. 0.5)))
  in
  let rec pop_ended t0 =
    match !stack with
    | (top, child_s) :: rest when top.Stage.sp_t1 <= t0 ->
        stack := rest;
        close_out (top, child_s);
        (* charge the closed span's full duration to its parent *)
        (match !stack with
        | (p, pc) :: r ->
            let overlap =
              Float.max 0.
                (Float.min p.Stage.sp_t1 top.Stage.sp_t1 -. top.Stage.sp_t0)
            in
            stack := (p, pc +. overlap) :: r
        | [] -> ());
        pop_ended t0
    | _ -> ()
  in
  Array.iter
    (fun sp ->
      pop_ended sp.Stage.sp_t0;
      stack := (sp, 0.) :: !stack)
    arr;
  pop_ended infinity

let by_request t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
      let k = req_key sp in
      match Hashtbl.find_opt tbl k with
      | Some l -> Hashtbl.replace tbl k (sp :: l)
      | None ->
          Hashtbl.add tbl k [ sp ];
          order := k :: !order)
    (spans t);
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let chain_of k spans =
  let t0 = List.fold_left (fun a sp -> Float.min a sp.Stage.sp_t0) infinity spans in
  let t1 =
    List.fold_left (fun a sp -> Float.max a sp.Stage.sp_t1) neg_infinity spans
  in
  let txn =
    List.find_map (fun sp -> sp.Stage.sp_txn) spans
  in
  let per_stage = Hashtbl.create 8 in
  let seen = ref [] in
  exclusive_pass spans (fun _path sp self_us ->
      let s = sp.Stage.sp_stage in
      (match Hashtbl.find_opt per_stage s with
      | Some n -> Hashtbl.replace per_stage s (n + self_us)
      | None ->
          Hashtbl.add per_stage s self_us;
          seen := s :: !seen));
  let names = stage_order (List.rev !seen) in
  {
    c_req = k;
    c_txn = txn;
    c_t0 = t0;
    c_t1 = t1;
    c_stages = List.map (fun s -> (s, Hashtbl.find per_stage s)) names;
    c_missing = List.filter (fun s -> not (List.mem s names)) Stage.stages;
  }

let chains t = List.map (fun (k, sps) -> chain_of k sps) (by_request t)

let chain t req =
  List.find_opt (fun (k, _) -> k = req) (by_request t)
  |> Option.map (fun (k, sps) -> chain_of k sps)

let stage_stats t =
  let m = Metrics.create () in
  let seen = ref [] in
  List.iter
    (fun (_, sps) ->
      exclusive_pass sps (fun _path sp self_us ->
          let s = sp.Stage.sp_stage in
          if not (List.mem s !seen) then seen := s :: !seen;
          Metrics.observe (Metrics.histogram m s) self_us))
    (by_request t);
  List.map
    (fun s -> (s, Metrics.histogram_stats (Metrics.histogram m s)))
    (stage_order (List.rev !seen))

let critical t =
  let totals =
    List.concat_map (fun c -> c.c_stages) (chains t)
    |> List.fold_left
         (fun acc (s, us) ->
           let cur = try List.assoc s acc with Not_found -> 0 in
           (s, cur + us) :: List.remove_assoc s acc)
         []
  in
  let all = List.fold_left (fun a (_, us) -> a + us) 0 totals in
  List.map
    (fun (s, us) ->
      (s, us, if all = 0 then 0. else 100. *. float_of_int us /. float_of_int all))
    totals
  |> List.sort (fun (a, ua, _) (b, ub, _) ->
         if ua <> ub then compare ub ua else compare a b)

let folded t =
  let stacks = Hashtbl.create 32 in
  List.iter
    (fun (_, sps) ->
      exclusive_pass sps (fun path sp self_us ->
          if self_us > 0 then begin
            let key =
              String.concat ";" ("ntserved" :: path @ [ sp.Stage.sp_stage ])
            in
            let cur = try Hashtbl.find stacks key with Not_found -> 0 in
            Hashtbl.replace stacks key (cur + self_us)
          end))
    (by_request t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stacks []
  |> List.sort compare
  |> List.map (fun (k, v) -> Printf.sprintf "%s %d" k v)
  |> String.concat "\n"
  |> fun s -> if s = "" then s else s ^ "\n"

let report ?(top = 5) ppf t =
  let cs = chains t in
  Format.fprintf ppf "flight dump: %d spans, %d requests, %d dropped%s@."
    t.n_spans (List.length cs) t.dropped
    (match t.reason with None -> "" | Some r -> Printf.sprintf ", reason %S" r);
  if t.bad > 0 then Format.fprintf ppf "  (%d malformed lines skipped)@." t.bad;
  let crit = critical t in
  if crit <> [] then begin
    Format.fprintf ppf "@.critical path (exclusive time):@.";
    List.iter
      (fun (s, us, pct) ->
        Format.fprintf ppf "  %-10s %10d us  %5.1f%%@." s us pct)
      crit
  end;
  let stats = stage_stats t in
  if stats <> [] then begin
    Format.fprintf ppf "@.per-stage exclusive us:@.";
    List.iter
      (fun (s, (h : Metrics.hstats)) ->
        Format.fprintf ppf
          "  %-10s count %6d  p50 %8d  p99 %8d  max %8d@." s h.Metrics.count
          h.Metrics.p50 h.Metrics.p99 h.Metrics.max)
      stats
  end;
  let slowest =
    List.sort
      (fun a b -> compare (b.c_t1 -. b.c_t0) (a.c_t1 -. a.c_t0))
      (List.filter (fun c -> c.c_req <> "") cs)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  let slowest = take top slowest in
  if slowest <> [] then begin
    Format.fprintf ppf "@.slowest requests:@.";
    List.iter
      (fun c ->
        let e2e = int_of_float (((c.c_t1 -. c.c_t0) *. 1e6) +. 0.5) in
        Format.fprintf ppf "  %-12s %s%8d us  %s%s@." c.c_req
          (match c.c_txn with Some x -> Printf.sprintf "(%s)  " x | None -> "")
          e2e
          (String.concat " | "
             (List.map (fun (s, us) -> Printf.sprintf "%s %d" s us) c.c_stages))
          (if c.c_missing = [] then ""
           else Printf.sprintf "  [missing: %s]" (String.concat "," c.c_missing)))
      slowest
  end
