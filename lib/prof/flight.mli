(** Flight-recorder dump analysis.

    Loads the JSONL artifacts the serving loop's flight recorder
    writes ({!Nt_obs.Stage.Recorder.dump_jsonl}) and answers the
    questions [ntprof] reports about them: where each request's time
    went stage by stage, which stages dominate across the dump
    (critical path), and a folded-stack rendering suitable for
    [flamegraph.pl] or speedscope.

    Spans are grouped into per-request {e chains} by request id.
    Nested spans — [gate] inside [execute], [gc.pause] inside whatever
    it interrupted — are accounted {e exclusively}: a span's self time
    is its duration minus the parts covered by spans it strictly
    contains, so a chain's stage durations sum to (within clock
    jitter) the request's end-to-end latency instead of double
    counting. *)

open Nt_obs

type t
(** A mutable accumulator over one or more dump files. *)

val create : unit -> t

val feed_line : t -> string -> (unit, string) result
(** Parse one dump line (header lines update {!reason}/{!dropped};
    span lines accumulate).  Blank lines are ignored; malformed lines
    are counted and reported. *)

val load : t -> string -> string list
(** Feed a whole dump file.  Returns the first few per-line error
    messages (empty when clean).  Raises [Sys_error] if the file
    cannot be opened. *)

val spans : t -> Stage.span list
(** Every span loaded, in file order. *)

val reason : t -> string option
(** The last dump header's reason (e.g. ["slow"], ["veto"]). *)

val dropped : t -> int
(** Ring drops summed over the loaded headers. *)

val bad_lines : t -> int

type chain = {
  c_req : string;  (** The request id ([""] groups id-less spans). *)
  c_txn : string option;  (** The transaction, when any span knew it. *)
  c_t0 : float;  (** Earliest span begin. *)
  c_t1 : float;  (** Latest span end. *)
  c_stages : (string * int) list;
      (** Exclusive µs per stage, canonical {!Nt_obs.Stage.stages}
          order first, then extras ([gc.pause], ...) by first
          appearance.  Stages absent from the chain are absent here. *)
  c_missing : string list;
      (** Canonical stages with no span in this chain — empty iff the
          chain is complete. *)
}

val chains : t -> chain list
(** Per-request chains, in order of each request's first span. *)

val chain : t -> string -> chain option

val stage_stats : t -> (string * Metrics.hstats) list
(** Per-stage {e exclusive}-duration statistics (µs) across every
    chain, canonical order first. *)

val critical : t -> (string * int * float) list
(** The critical path across the dump: per stage, total exclusive µs
    and its share of the summed chain spans, sorted by total
    descending.  Where the time went. *)

val folded : t -> string
(** Folded-stack lines ([ntserved;<outer>;<inner> <µs>], one per
    distinct stack, exclusive µs summed across chains, sorted) — pipe
    into [flamegraph.pl] or load into speedscope. *)

val report : ?top:int -> Format.formatter -> t -> unit
(** The text report: dump summary, critical path, per-stage quantiles
    and the [top] slowest requests with their stage breakdowns. *)
