(** Contention profiles from telemetry streams.

    A profile consumes {!Nt_obs.Event.t} values — live, through
    {!sink}, or replayed from a JSONL trace file ({!load}) — and
    accumulates the answers [ntprof] reports: which objects accesses
    waited on (and for how long), which SG edges the monitor inserted
    (with their witnessing actions), what the runs aborted over, and a
    rebuilt serialization graph that can be rendered with the first
    cycle highlighted.

    Everything scalar lands in a {!Nt_obs.Metrics.t} registry
    (per-object wait histograms under ["wait.ticks.<obj>"]), so
    {!merge} combines profiles from multiple trace files with
    {!Nt_obs.Metrics.merge} semantics and the result still renders as
    a registry or as Prometheus text. *)

open Nt_base
open Nt_obs

type t
(** A mutable profile accumulator. *)

type obj_stat = {
  mutable waits : int;  (** Completed wait streaks. *)
  mutable wait_events : int;  (** Individual refusals (retries). *)
  mutable total_waited : int;  (** Sum of streak durations, ticks. *)
  mutable max_waited : int;
}

type edge_stat = {
  e_src : Txn_id.t;
  e_dst : Txn_id.t;
  e_kind : string;  (** ["conflict"] or ["precedes"]. *)
  e_obj : Obj_id.t option;
  e_w1 : Txn_id.t;
  e_w1_ts : int;
  e_w2 : Txn_id.t;
  e_w2_ts : int;
  mutable e_count : int;  (** Recurrences across merged runs. *)
}

val create : unit -> t

val feed : t -> Event.t -> unit
(** Consume one event. *)

val feed_line : t -> string -> (unit, string) result
(** Parse one JSONL trace line and feed it; blank lines are ignored,
    malformed lines are counted ({!bad_lines}) and reported. *)

val load : t -> string -> string list
(** Feed a whole JSONL trace file, then {!finish}.  Returns the first
    few per-line error messages (empty when the file was clean).
    Raises [Sys_error] if the file cannot be opened. *)

val finish : t -> unit
(** Close still-open wait streaks (trace ended while accesses were
    blocked).  Idempotent; {!report}/{!prometheus} call it. *)

val sink : t -> Sink.t
(** A live sink feeding this profile — [ntsim --report] tees it with
    the trace-file sink. *)

val merge : t -> t -> unit
(** [merge dst src]: fold [src]'s registry (via
    {!Nt_obs.Metrics.merge}), object stats, edges and graph into
    [dst].  [src] is unchanged. *)

val metrics : t -> Metrics.t
val events : t -> int
val bad_lines : t -> int

val top_objects : t -> int -> (string * obj_stat) list
(** The [k] most contended objects, by total wait ticks. *)

val hot_edges : t -> int -> edge_stat list
(** The [k] hottest SG edges, by recurrence count then insertion
    order. *)

val has_cycle : t -> bool
(** Whether the rebuilt serialization graph contains a cycle. *)

val dot : t -> string
(** The rebuilt SG as DOT, edges labelled with their witnesses and a
    cycle (if any) highlighted in red. *)

val report : ?top:int -> Format.formatter -> t -> unit
(** The full text report: summary, abort/alarm causes, top-[top]
    contended objects with wait-time quantiles, hottest SG edges, and
    the metrics registry. *)

val prometheus : t -> string
(** The registry as Prometheus text exposition. *)
