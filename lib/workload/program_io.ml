open Nt_base
open Nt_spec
open Nt_serial

(* ----- s-expressions ----- *)

type sexp = Atom of string | Str of string | List of sexp list

(* Tokens carry the 1-based line they start on, so every parse failure
   can point at a place in the file instead of raising bare. *)
let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let error = ref None in
  let i = ref 0 in
  let line = ref 1 in
  while !i < n && !error = None do
    (match text.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | ';' ->
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        tokens := (!line, `L) :: !tokens;
        incr i
    | ')' ->
        tokens := (!line, `R) :: !tokens;
        incr i
    | '"' ->
        let start = !line in
        let buf = Buffer.create 8 in
        incr i;
        let closed = ref false in
        while !i < n && not !closed do
          (match text.[!i] with
          | '"' -> closed := true
          | '\\' when !i + 1 < n ->
              if text.[!i + 1] = '\n' then incr line;
              Buffer.add_char buf text.[!i + 1];
              incr i
          | '\n' ->
              incr line;
              Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c);
          incr i
        done;
        if !closed then tokens := (start, `S (Buffer.contents buf)) :: !tokens
        else error := Some (Printf.sprintf "line %d: unterminated string" start)
    | _ ->
        let j = ref !i in
        while
          !j < n
          && not (List.mem text.[!j] [ ' '; '\t'; '\n'; '\r'; '('; ')'; '"'; ';' ])
        do
          incr j
        done;
        tokens := (!line, `A (String.sub text !i (!j - !i))) :: !tokens;
        i := !j);
    ()
  done;
  match !error with Some e -> Error e | None -> Ok (List.rev !tokens)

(* Parses annotated tokens into sexps; each returned top-level form is
   paired with the line it starts on so semantic errors can cite it. *)
let parse_sexps tokens =
  let rec parse_one tokens =
    match tokens with
    | [] -> Error "unexpected end of input"
    | (_, `A a) :: rest -> Ok (Atom a, rest)
    | (_, `S s) :: rest -> Ok (Str s, rest)
    | (l, `R) :: _ -> Error (Printf.sprintf "line %d: unexpected )" l)
    | (l, `L) :: rest ->
        let rec items acc rest =
          match rest with
          | (_, `R) :: rest -> Ok (List (List.rev acc), rest)
          | [] -> Error (Printf.sprintf "line %d: unterminated (" l)
          | _ -> (
              match parse_one rest with
              | Ok (s, rest) -> items (s :: acc) rest
              | Error e -> Error e)
        in
        items [] rest
  in
  let rec all acc tokens =
    match tokens with
    | [] -> Ok (List.rev acc)
    | (l, _) :: _ -> (
        match parse_one tokens with
        | Ok (s, rest) -> all ((l, s) :: acc) rest
        | Error e -> Error e)
  in
  all [] tokens

(* ----- values and operations ----- *)

let rec parse_value = function
  | Atom "unit" -> Ok Value.Unit
  | Atom "ok" -> Ok Value.Ok
  | Atom "true" -> Ok (Value.Bool true)
  | Atom "false" -> Ok (Value.Bool false)
  | Atom a -> (
      match int_of_string_opt a with
      | Some n -> Ok (Value.Int n)
      | None -> Error ("bad value " ^ a))
  | Str s -> Ok (Value.Str s)
  | List [ Atom "pair"; a; b ] -> (
      match (parse_value a, parse_value b) with
      | Ok a, Ok b -> Ok (Value.Pair (a, b))
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | List (Atom "list" :: items) ->
      let rec go acc = function
        | [] -> Ok (Value.List (List.rev acc))
        | x :: rest -> (
            match parse_value x with
            | Ok v -> go (v :: acc) rest
            | Error e -> Error e)
      in
      go [] items
  | List _ -> Error "bad value form"

let parse_int = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some n -> Ok n
      | None -> Error ("expected integer, got " ^ a))
  | _ -> Error "expected integer"

let parse_op sexp =
  let v1 name f = function
    | [ x ] -> Result.map f (parse_value x)
    | _ -> Error ("expected one value for " ^ name)
  in
  let i1 name f = function
    | [ x ] -> Result.map f (parse_int x)
    | _ -> Error ("expected one integer for " ^ name)
  in
  match sexp with
  | Atom "read" -> Ok Datatype.Read
  | Atom "get" -> Ok Datatype.Get
  | Atom "balance" -> Ok Datatype.Balance
  | Atom "size" -> Ok Datatype.Size
  | Atom "dequeue" -> Ok Datatype.Dequeue
  | Atom "vread" -> Ok Datatype.Vread
  | List (Atom "write" :: rest) -> v1 "write" (fun v -> Datatype.Write v) rest
  | List (Atom "incr" :: rest) -> i1 "incr" (fun n -> Datatype.Incr n) rest
  | List (Atom "decr" :: rest) -> i1 "decr" (fun n -> Datatype.Decr n) rest
  | List (Atom "deposit" :: rest) -> i1 "deposit" (fun n -> Datatype.Deposit n) rest
  | List (Atom "withdraw" :: rest) ->
      i1 "withdraw" (fun n -> Datatype.Withdraw n) rest
  | List (Atom "insert" :: rest) -> v1 "insert" (fun v -> Datatype.Insert v) rest
  | List (Atom "remove" :: rest) -> v1 "remove" (fun v -> Datatype.Remove v) rest
  | List (Atom "member" :: rest) -> v1 "member" (fun v -> Datatype.Member v) rest
  | List (Atom "enqueue" :: rest) ->
      v1 "enqueue" (fun v -> Datatype.Enqueue v) rest
  | List (Atom "kread" :: rest) -> v1 "kread" (fun v -> Datatype.Kread v) rest
  | List [ Atom "kwrite"; k; v ] -> (
      match (parse_value k, parse_value v) with
      | Ok k, Ok v -> Ok (Datatype.Kwrite (k, v))
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | List [ Atom "vwrite"; n; v ] -> (
      match (parse_int n, parse_value v) with
      | Ok n, Ok v -> Ok (Datatype.Vwrite (n, v))
      | Error e, _ | _, Error e -> Error e)
  | Atom a -> Error ("unknown operation " ^ a)
  | _ -> Error "bad operation form"

let parse_dtype = function
  | Atom "register" -> Ok (Register.make ())
  | Atom "counter" -> Ok (Counter.make ())
  | Atom "account" -> Ok (Bank_account.make ())
  | Atom "set" -> Ok (Rset.make ())
  | Atom "queue" -> Ok (Fifo_queue.make ())
  | Atom "keyed-store" -> Ok (Keyed_store.make ())
  | Atom "vreg" -> Ok (Vreg.make ())
  | List [ Atom "register"; v ] ->
      Result.map (fun v -> Register.make ~init:v ()) (parse_value v)
  | List [ Atom "counter"; n ] ->
      Result.map (fun n -> Counter.make ~init:n ()) (parse_int n)
  | List [ Atom "account"; n ] ->
      Result.map (fun n -> Bank_account.make ~init:n ()) (parse_int n)
  | List [ Atom "vreg"; v ] ->
      Result.map (fun v -> Vreg.make ~init:v ()) (parse_value v)
  | Atom a -> Error ("unknown data type " ^ a)
  | _ -> Error "bad data type form"

(* ----- programs ----- *)

let rec parse_program sexp =
  match sexp with
  | List [ Atom "access"; Atom x; op ] ->
      Result.map (fun op -> Program.access (Obj_id.make x) op) (parse_op op)
  | List [ Atom "access"; Str x; op ] ->
      Result.map (fun op -> Program.access (Obj_id.make x) op) (parse_op op)
  | List (Atom ("seq" | "par") :: children) -> (
      let comb =
        match sexp with
        | List (Atom "seq" :: _) -> Program.Seq
        | _ -> Program.Par
      in
      let rec go acc = function
        | [] -> Ok (Program.Node (comb, List.rev acc))
        | c :: rest -> (
            match parse_program c with
            | Ok p -> go (p :: acc) rest
            | Error e -> Error e)
      in
      go [] children)
  | _ -> Error "expected (access ...), (seq ...) or (par ...)"

let at line = function
  | Ok _ as ok -> ok
  | Error e -> Error (Printf.sprintf "line %d: %s" line e)

let single_form text =
  match tokenize text with
  | Error e -> Error e
  | Ok tokens -> (
      match parse_sexps tokens with
      | Error e -> Error e
      | Ok [ (l, form) ] -> Ok (l, form)
      | Ok [] -> Error "empty input"
      | Ok ((l, _) :: _) -> Error (Printf.sprintf "line %d: expected one form" l))

let parse_program_text text =
  match single_form text with
  | Error e -> Error e
  | Ok (l, form) -> at l (parse_program form)

let parse_dtype_decl text =
  match single_form text with
  | Error e -> Error e
  | Ok (l, form) -> at l (parse_dtype form)

let parse text =
  match tokenize text with
  | Error e -> Error e
  | Ok tokens -> (
      match parse_sexps tokens with
      | Error e -> Error e
      | Ok forms ->
          let objects = ref [] and txns = ref [] and err = ref None in
          List.iter
            (fun (line, form) ->
              if !err = None then
                match form with
                | List (Atom "objects" :: decls) ->
                    List.iter
                      (fun d ->
                        if !err = None then
                          match d with
                          | List [ Atom x; dt ] | List [ Str x; dt ] -> (
                              match at line (parse_dtype dt) with
                              | Ok dt ->
                                  objects := (Obj_id.make x, dt) :: !objects
                              | Error e -> err := Some e)
                          | _ ->
                              err :=
                                Some
                                  (Printf.sprintf
                                     "line %d: bad object declaration" line))
                      decls
                | List [ Atom "txn"; p ] -> (
                    match at line (parse_program p) with
                    | Ok p -> txns := p :: !txns
                    | Error e -> err := Some e)
                | _ ->
                    err :=
                      Some
                        (Printf.sprintf
                           "line %d: expected (objects ...) or (txn ...)" line))
            forms;
          (match !err with
          | Some e -> Error e
          | None ->
              let objects = List.rev !objects and forest = List.rev !txns in
              if objects = [] then Error "no (objects ...) declaration"
              else if forest = [] then Error "no (txn ...) forms"
              else (
                match Program.schema_of ~objects forest with
                | schema -> Ok (forest, schema)
                | exception Invalid_argument e -> Error e)))

let load path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          parse (really_input_string ic n))
  | exception Sys_error e -> Error e

(* ----- printing ----- *)

let rec value_to_string (v : Value.t) =
  match v with
  | Value.Unit -> "unit"
  | Value.Ok -> "ok"
  | Value.Int n -> string_of_int n
  | Value.Bool b -> string_of_bool b
  | Value.Str s -> Printf.sprintf "%S" s
  | Value.Pair (a, b) ->
      Printf.sprintf "(pair %s %s)" (value_to_string a) (value_to_string b)
  | Value.List l ->
      Printf.sprintf "(list%s)"
        (String.concat "" (List.map (fun v -> " " ^ value_to_string v) l))

let op_to_string (op : Datatype.op) =
  match op with
  | Datatype.Read -> "read"
  | Datatype.Get -> "get"
  | Datatype.Balance -> "balance"
  | Datatype.Size -> "size"
  | Datatype.Dequeue -> "dequeue"
  | Datatype.Vread -> "vread"
  | Datatype.Write v -> Printf.sprintf "(write %s)" (value_to_string v)
  | Datatype.Incr n -> Printf.sprintf "(incr %d)" n
  | Datatype.Decr n -> Printf.sprintf "(decr %d)" n
  | Datatype.Deposit n -> Printf.sprintf "(deposit %d)" n
  | Datatype.Withdraw n -> Printf.sprintf "(withdraw %d)" n
  | Datatype.Insert v -> Printf.sprintf "(insert %s)" (value_to_string v)
  | Datatype.Remove v -> Printf.sprintf "(remove %s)" (value_to_string v)
  | Datatype.Member v -> Printf.sprintf "(member %s)" (value_to_string v)
  | Datatype.Enqueue v -> Printf.sprintf "(enqueue %s)" (value_to_string v)
  | Datatype.Kread v -> Printf.sprintf "(kread %s)" (value_to_string v)
  | Datatype.Kwrite (k, v) ->
      Printf.sprintf "(kwrite %s %s)" (value_to_string k) (value_to_string v)
  | Datatype.Vwrite (n, v) ->
      Printf.sprintf "(vwrite %d %s)" n (value_to_string v)

let rec program_to_string = function
  | Program.Access (x, op) ->
      Printf.sprintf "(access %s %s)" (Obj_id.name x) (op_to_string op)
  | Program.Node (comb, children) ->
      Printf.sprintf "(%s %s)"
        (match comb with Program.Seq -> "seq" | Program.Par -> "par")
        (String.concat " " (List.map program_to_string children))

let dtype_decl (dt : Datatype.t) =
  match (dt.Datatype.dt_name, dt.Datatype.init) with
  | "register", v -> Printf.sprintf "(register %s)" (value_to_string v)
  | "counter", Value.Int n -> Printf.sprintf "(counter %d)" n
  | "account", Value.Int n -> Printf.sprintf "(account %d)" n
  | "set", _ -> "set"
  | "queue", _ -> "queue"
  | "keyed_store", _ -> "keyed-store"
  | "vreg", _ -> "vreg"
  | name, _ -> invalid_arg ("Program_io.dtype_decl: unknown type " ^ name)

let to_string ~objects forest =
  let decls =
    List.map
      (fun (x, dt) -> Printf.sprintf "  (%s %s)" (Obj_id.name x) dt)
      objects
  in
  "(objects\n" ^ String.concat "\n" decls ^ ")\n\n"
  ^ String.concat "\n"
      (List.map (fun p -> "(txn " ^ program_to_string p ^ ")") forest)
  ^ "\n"
