open Nt_base
open Nt_spec
open Nt_serial

type profile = {
  n_top : int;
  depth : int;
  fanout : int;
  n_objects : int;
  theta : float;
  par_ratio : float;
  read_ratio : float;
}

let default =
  {
    n_top = 8;
    depth = 2;
    fanout = 3;
    n_objects = 4;
    theta = 0.0;
    par_ratio = 0.5;
    read_ratio = 0.5;
  }

let lock_heavy =
  {
    n_top = 10;
    depth = 1;
    fanout = 2;
    n_objects = 1;
    theta = 0.0;
    par_ratio = 0.7;
    read_ratio = 0.2;
  }

let deep_nesting =
  {
    n_top = 4;
    depth = 4;
    fanout = 2;
    n_objects = 3;
    theta = 0.0;
    par_ratio = 0.5;
    read_ratio = 0.5;
  }

let abort_storm =
  {
    n_top = 8;
    depth = 2;
    fanout = 2;
    n_objects = 2;
    theta = 0.5;
    par_ratio = 0.5;
    read_ratio = 0.4;
  }

let pick_object rng p objs =
  List.nth objs (Rng.zipf rng ~n:p.n_objects ~theta:p.theta)

(* Generate a program of the given remaining depth; at depth 0 the node
   is forced to be an access. *)
let rec gen_node rng p objs sample_op depth =
  if depth <= 0 then
    let x = pick_object rng p objs in
    Program.access x (sample_op rng x)
  else begin
    let n_children = 1 + Rng.int rng p.fanout in
    let comb =
      if Rng.float rng 1.0 < p.par_ratio then Program.Par else Program.Seq
    in
    let children =
      List.init n_children (fun _ ->
          (* Children are one level shallower, and may bottom out early. *)
          let d = if Rng.bool rng then depth - 1 else 0 in
          gen_node rng p objs sample_op d)
    in
    Program.Node (comb, children)
  end

let gen_forest rng p objs sample_op =
  List.init p.n_top (fun _ -> gen_node rng p objs sample_op p.depth)

let object_names prefix n = List.init n (fun i -> Obj_id.indexed prefix i)

let registers rng p =
  let objs = object_names "x" p.n_objects in
  let dt = Register.make () in
  let sample_op rng _ =
    if Rng.float rng 1.0 < p.read_ratio then Datatype.Read
    else Datatype.Write (Value.Int (Rng.int rng 16))
  in
  (gen_forest rng p objs sample_op, List.map (fun x -> (x, dt)) objs)

let counters rng p =
  let objs = object_names "c" p.n_objects in
  let dt = Counter.make () in
  let sample_op rng _ =
    if Rng.float rng 1.0 < p.read_ratio then Datatype.Get
    else if Rng.int rng 4 = 0 then Datatype.Decr (1 + Rng.int rng 3)
    else Datatype.Incr (1 + Rng.int rng 3)
  in
  (gen_forest rng p objs sample_op, List.map (fun x -> (x, dt)) objs)

let mixed rng p =
  let dts =
    [|
      Register.make ();
      Counter.make ();
      Bank_account.make ~init:10 ();
      Rset.make ();
      Fifo_queue.make ();
      Keyed_store.make ();
    |]
  in
  let objs = object_names "o" p.n_objects in
  let decls =
    List.mapi (fun i x -> (x, dts.(i mod Array.length dts))) objs
  in
  let dtype_of x =
    match List.find_opt (fun (y, _) -> Obj_id.equal x y) decls with
    | Some (_, dt) -> dt
    | None -> assert false
  in
  let sample_op rng x = (dtype_of x).Datatype.sample_ops rng in
  (gen_forest rng p objs sample_op, decls)

type weights = {
  w_observe : int;
  w_update : int;
  w_overwrite : int;
  w_mutate : int;
}

let balanced = { w_observe = 1; w_update = 1; w_overwrite = 1; w_mutate = 1 }
let contended = { w_observe = 1; w_update = 1; w_overwrite = 3; w_mutate = 3 }
let observers = { w_observe = 1; w_update = 0; w_overwrite = 0; w_mutate = 0 }

type op_class = Observe | Update | Overwrite | Mutate

(* Concrete operations of a class supported by a data type; [] when the
   type has no operation of that shape. *)
let ops_of_class rng (dt : Datatype.t) cls =
  let small () = Value.Int (Rng.int rng 4) in
  match (dt.Datatype.dt_name, cls) with
  | "register", Observe -> [ Datatype.Read ]
  | "register", Overwrite -> [ Datatype.Write (Value.Int (Rng.int rng 16)) ]
  | "counter", Observe -> [ Datatype.Get ]
  | "counter", Update ->
      [ Datatype.Incr (1 + Rng.int rng 3); Datatype.Decr (1 + Rng.int rng 3) ]
  | "account", Observe -> [ Datatype.Balance ]
  | "account", Update -> [ Datatype.Deposit (1 + Rng.int rng 4) ]
  | "account", Mutate -> [ Datatype.Withdraw (1 + Rng.int rng 6) ]
  | "set", Observe -> [ Datatype.Member (small ()); Datatype.Size ]
  | "set", Update -> [ Datatype.Insert (small ()); Datatype.Remove (small ()) ]
  | "queue", Mutate -> [ Datatype.Enqueue (small ()); Datatype.Dequeue ]
  | "keyed_store", Observe -> [ Datatype.Kread (small ()) ]
  | "keyed_store", Overwrite ->
      [ Datatype.Kwrite (small (), Value.Int (Rng.int rng 16)) ]
  | _ -> []

let pick_class rng w =
  let total = w.w_observe + w.w_update + w.w_overwrite + w.w_mutate in
  if total <= 0 then invalid_arg "Gen.weighted: weights sum to zero";
  let r = Rng.int rng total in
  if r < w.w_observe then Observe
  else if r < w.w_observe + w.w_update then Update
  else if r < w.w_observe + w.w_update + w.w_overwrite then Overwrite
  else Mutate

(* Nearest supported class when the drawn one is missing on this type.
   Fallbacks stay within the drawn class's family first (a mutating
   draw tries the other mutating classes before degrading to an
   observer), so weight skews survive across heterogeneous schemas. *)
let fallback_order = function
  | Observe -> [ Observe; Update; Overwrite; Mutate ]
  | Update -> [ Update; Overwrite; Mutate; Observe ]
  | Overwrite -> [ Overwrite; Mutate; Update; Observe ]
  | Mutate -> [ Mutate; Overwrite; Update; Observe ]

let sample_weighted rng w (dt : Datatype.t) =
  let rec scan = function
    | [] -> dt.Datatype.sample_ops rng
    | cls :: rest -> (
        match ops_of_class rng dt cls with
        | [] -> scan rest
        | ops -> List.nth ops (Rng.int rng (List.length ops)))
  in
  scan (fallback_order (pick_class rng w))

let weighted ?(weights = balanced) rng p =
  let dts =
    [|
      Register.make ();
      Counter.make ();
      Bank_account.make ~init:10 ();
      Rset.make ();
      Fifo_queue.make ();
      Keyed_store.make ();
    |]
  in
  let objs = object_names "w" p.n_objects in
  let decls =
    List.mapi (fun i x -> (x, dts.(i mod Array.length dts))) objs
  in
  let dtype_of x =
    match List.find_opt (fun (y, _) -> Obj_id.equal x y) decls with
    | Some (_, dt) -> dt
    | None -> assert false
  in
  let sample_op rng x = sample_weighted rng weights (dtype_of x) in
  (gen_forest rng p objs sample_op, decls)

(* ----- SmallBank-style contended transactions -----

   Multi-object read-modify-write programs over register "accounts"
   with Zipf-skewed account popularity — the contention shape that
   makes weak-isolation anomalies (write skew, lost update) likely.
   Five transaction kinds after the SmallBank benchmark, drawn from an
   integer-weighted mix. *)

type smallbank_kind = Balance | Deposit | Write_check | Amalgamate | Payment

type smallbank_mix = {
  m_balance : int;
  m_deposit : int;
  m_write_check : int;
  m_amalgamate : int;
  m_payment : int;
}

let smallbank_default =
  { m_balance = 2; m_deposit = 4; m_write_check = 3; m_amalgamate = 1;
    m_payment = 2 }

let smallbank_profile =
  {
    n_top = 8;
    depth = 2;
    fanout = 3;
    n_objects = 4;
    theta = 0.9;
    par_ratio = 0.5;
    read_ratio = 0.5;
  }

let sample_kind rng m =
  let total =
    m.m_balance + m.m_deposit + m.m_write_check + m.m_amalgamate + m.m_payment
  in
  if total <= 0 then invalid_arg "Gen.smallbank: mix weights sum to zero";
  let r = Rng.int rng total in
  if r < m.m_balance then Balance
  else if r < m.m_balance + m.m_deposit then Deposit
  else if r < m.m_balance + m.m_deposit + m.m_write_check then Write_check
  else if r < m.m_balance + m.m_deposit + m.m_write_check + m.m_amalgamate
  then Amalgamate
  else Payment

let smallbank ?(mix = smallbank_default) rng p =
  let n = max 2 p.n_objects in
  let objs = object_names "acct" n in
  let dt = Register.make () in
  let acct () = Rng.zipf rng ~n ~theta:p.theta in
  (* Two distinct Zipf-popular accounts — a "customer"'s checking and
     savings, or the two parties of a payment. *)
  let pair () =
    let a = acct () in
    let b0 = acct () in
    let b = if b0 = a then (a + 1) mod n else b0 in
    (List.nth objs a, List.nth objs b)
  in
  let read x = Program.access x Datatype.Read in
  let write x = Program.access x (Datatype.Write (Value.Int (Rng.int rng 16))) in
  let gen_txn () =
    match sample_kind rng mix with
    | Balance ->
        let a, b = pair () in
        Program.par [ read a; read b ]
    | Deposit ->
        let a = List.nth objs (acct ()) in
        Program.seq [ read a; write a ]
    | Write_check ->
        let a, b = pair () in
        Program.seq [ Program.par [ read a; read b ]; write a ]
    | Amalgamate ->
        let a, b = pair () in
        Program.seq [ Program.par [ read a; read b ]; write a; write b ]
    | Payment ->
        let a, b = pair () in
        Program.seq [ read a; write a; read b; write b ]
  in
  ( List.init p.n_top (fun _ -> gen_txn ()),
    List.map (fun x -> (x, dt)) objs )

let forest_and_schema gen ~seed p =
  let rng = Rng.create seed in
  let forest, objects = gen rng p in
  (forest, Program.schema_of ~objects forest)
