(** A textual format for workloads — objects, their data types, and the
    top-level program forest — so [ntsim --program FILE] can run
    hand-written nested transactions without recompiling.

    Syntax (s-expressions; [;] starts a line comment):

    {v
    (objects
      (x register)
      (c counter)
      (a (account 100))
      (s set) (q queue) (k keyed-store) (v vreg))

    (txn (seq (access x read)
              (access x (write 5))))
    (txn (par (access c (incr 2))
              (access c get)
              (access a (withdraw 3))))
    v}

    Operations: [read], [(write V)], [(incr N)], [(decr N)], [get],
    [(deposit N)], [(withdraw N)], [balance], [(insert V)],
    [(remove V)], [(member V)], [size], [(enqueue V)], [dequeue],
    [(kread V)], [(kwrite V V)], [vread], [(vwrite N V)].

    Values: integer literals, [true]/[false], [unit], [ok], quoted
    strings, [(pair V V)], [(list V ...)]. *)

open Nt_spec
open Nt_serial

val parse : string -> (Program.t list * Schema.t, string) result
(** Parse a whole workload file (objects + forest) and build the
    schema.  Errors carry a human-readable reason prefixed with the
    1-based line of the offending form ("line 3: ..."). *)

val load : string -> (Program.t list * Schema.t, string) result
(** {!parse} a file by path. *)

val parse_program_text : string -> (Program.t, string) result
(** Parse exactly one program form — [(access ...)], [(seq ...)] or
    [(par ...)] — from [text].  Used by the wire protocol, where a
    [Submit] body is a single program and the objects are the server's.
    Errors carry line numbers like {!parse}. *)

val parse_dtype_decl : string -> (Datatype.t, string) result
(** Parse exactly one data-type declaration (the {!dtype_decl} syntax,
    e.g. ["(counter 3)"]).  Round-trips with {!dtype_decl}; network
    clients use it to decode the server's advertised schema. *)

val program_to_string : Program.t -> string
(** Render one program in the same syntax {!parse_program_text}
    accepts. *)

val to_string : objects:(Nt_base.Obj_id.t * string) list -> Program.t list -> string
(** Render a forest back to the textual format; [objects] pairs each
    object with its declaration text (e.g. ["register"],
    ["(account 100)"]).  [parse (to_string ...)] round-trips. *)

val dtype_decl : Datatype.t -> string
(** The declaration text for a shipped data type (including its
    initial state where the syntax supports one), suitable for
    {!to_string}'s [objects] argument: parsing the result yields a
    type with the same name and initial state.  Raises
    [Invalid_argument] on an unknown [dt_name]. *)
