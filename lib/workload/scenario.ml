open Nt_base
open Nt_spec
open Nt_serial

let banking ~n_accounts ~n_transfers ~seed =
  let rng = Rng.create seed in
  let accounts = List.init n_accounts (fun i -> Obj_id.indexed "acct" i) in
  let account i = List.nth accounts i in
  let transfer () =
    let src = Rng.int rng n_accounts in
    let dst = (src + 1 + Rng.int rng (max 1 (n_accounts - 1))) mod n_accounts in
    let amount = 1 + Rng.int rng 20 in
    Program.seq
      [
        (* An auditing subtransaction reads both balances concurrently. *)
        Program.par
          [
            Program.access (account src) Datatype.Balance;
            Program.access (account dst) Datatype.Balance;
          ];
        Program.access (account src) (Datatype.Withdraw amount);
        Program.access (account dst) (Datatype.Deposit amount);
      ]
  in
  let forest = List.init n_transfers (fun _ -> transfer ()) in
  let objects =
    List.map (fun x -> (x, Bank_account.make ~init:100 ())) accounts
  in
  (forest, Program.schema_of ~objects forest)

let hotspot_counter ~n_txns ~n_counters ~theta ~seed =
  let rng = Rng.create seed in
  let counters = List.init n_counters (fun i -> Obj_id.indexed "ctr" i) in
  let txn () =
    let n_ops = 2 + Rng.int rng 3 in
    Program.seq
      (List.init n_ops (fun _ ->
           let x = List.nth counters (Rng.zipf rng ~n:n_counters ~theta) in
           Program.access x (Datatype.Incr (1 + Rng.int rng 3))))
  in
  let forest = List.init n_txns (fun _ -> txn ()) in
  let objects = List.map (fun x -> (x, Counter.make ())) counters in
  (forest, Program.schema_of ~objects forest)

let rw_equivalent_counter ~n_txns ~n_counters ~theta ~seed =
  let rng = Rng.create seed in
  let regs = List.init n_counters (fun i -> Obj_id.indexed "ctr" i) in
  let txn () =
    let n_ops = 2 + Rng.int rng 3 in
    Program.seq
      (List.init n_ops (fun _ ->
           let x = List.nth regs (Rng.zipf rng ~n:n_counters ~theta) in
           let delta = 1 + Rng.int rng 3 in
           (* read-modify-write: the register shape of an increment *)
           Program.seq
             [
               Program.access x Datatype.Read;
               Program.access x (Datatype.Write (Value.Int delta));
             ]))
  in
  let forest = List.init n_txns (fun _ -> txn ()) in
  let objects = List.map (fun x -> (x, Register.make ())) regs in
  (forest, Program.schema_of ~objects forest)

let queue_producers_consumers ~n_producers ~n_consumers ~seed =
  let rng = Rng.create seed in
  let q = Obj_id.make "queue" in
  let producer () =
    Program.seq
      (List.init
         (1 + Rng.int rng 3)
         (fun _ -> Program.access q (Datatype.Enqueue (Value.Int (Rng.int rng 100)))))
  in
  let consumer () =
    Program.seq
      (List.init (1 + Rng.int rng 3) (fun _ -> Program.access q Datatype.Dequeue))
  in
  let forest =
    List.init n_producers (fun _ -> producer ())
    @ List.init n_consumers (fun _ -> consumer ())
  in
  let objects = [ (q, Fifo_queue.make ()) ] in
  (forest, Program.schema_of ~objects forest)
