(** Named workload scenarios used by examples, tests and benchmarks. *)

open Nt_spec
open Nt_serial

val banking :
  n_accounts:int -> n_transfers:int -> seed:int -> Program.t list * Schema.t
(** Nested bank transfers: each top-level transaction is
    [seq [par [audit reads]; withdraw src; deposit dst]] over
    {!Nt_spec.Bank_account} objects with initial balance 100 — the kind
    of multi-step remote-procedure-call transaction the paper's
    introduction motivates. *)

val hotspot_counter :
  n_txns:int -> n_counters:int -> theta:float -> seed:int ->
  Program.t list * Schema.t
(** Increment-heavy counters with Zipf-skewed object choice — the
    commuting-updates workload where undo logging shines (E2/E3). *)

val rw_equivalent_counter :
  n_txns:int -> n_counters:int -> theta:float -> seed:int ->
  Program.t list * Schema.t
(** The same logical increments expressed against registers as
    [seq [read; write]] pairs — what a read/write-only system must do
    instead of a commuting [Incr].  Note the register writes cannot
    faithfully reproduce the increment semantics under concurrency
    (that is the point); the workload only matches shape and footprint
    for the E3 comparison. *)

val queue_producers_consumers :
  n_producers:int -> n_consumers:int -> seed:int ->
  Program.t list * Schema.t
(** Producers enqueue, consumers dequeue, one shared FIFO queue — the
    adversarial low-commutativity scenario. *)
