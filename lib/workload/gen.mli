(** Random workload generation.

    Produces top-level program forests (plus matching object
    declarations) with tunable shape and contention.  All generation is
    driven by {!Nt_base.Rng}, so a (profile, seed) pair fully determines
    the workload. *)

open Nt_base
open Nt_spec
open Nt_serial

type profile = {
  n_top : int;  (** Top-level transactions (children of [T0]). *)
  depth : int;  (** Maximum nesting depth below a top-level node. *)
  fanout : int;  (** Maximum children per inner node (≥ 1). *)
  n_objects : int;  (** Number of objects. *)
  theta : float;  (** Zipf skew of object choice; 0 = uniform. *)
  par_ratio : float;  (** Probability an inner node runs children [Par]. *)
  read_ratio : float;  (** Read fraction for read/write workloads. *)
}

val default : profile
(** 8 top-level transactions, depth 2, fanout 3, 4 objects, uniform
    access, half [Par], 50% reads. *)

(** {2 Adversarial shapes}

    Profiles tuned to stress specific protocol weaknesses; used by
    {!Nt_check} to bias exploration towards the behaviors that
    historically betray broken concurrency control. *)

val lock_heavy : profile
(** Everyone fights over one object, write-heavy — maximal lock
    conflicts and deadlock pressure. *)

val deep_nesting : profile
(** Few top-level transactions, nesting depth 4 — exercises lock
    inheritance and abort propagation along long ancestor chains. *)

val abort_storm : profile
(** A moderately contended shape meant to be run with a high
    fault-injection rate ([abort_prob]), so recovery paths (undo,
    inform handling, orphan discard) dominate the execution. *)

(** {2 Weighted action grammars}

    The plain generators draw operations from each data type's own
    [sample_ops].  A {!weights} value instead draws the {e class} of
    the next access from an explicit distribution — observers,
    commuting updates, absolute overwrites, low-commutativity
    mutators — and then picks a concrete operation of that class
    supported by the chosen object's type (falling back to the
    nearest supported class, in the order above, when the type lacks
    one). *)

type weights = {
  w_observe : int;  (** [Read]/[Get]/[Balance]/[Member]/[Size]/[Kread]. *)
  w_update : int;  (** Commuting updates: [Incr]/[Decr]/[Deposit]/[Insert]/[Remove]. *)
  w_overwrite : int;  (** Absolute writes: [Write]/[Kwrite]. *)
  w_mutate : int;  (** Low-commutativity: [Withdraw]/[Enqueue]/[Dequeue]. *)
}

val balanced : weights
(** Equal weight on all four classes. *)

val contended : weights
(** Overwrite/mutate-heavy — the grammar that makes conflicts (and
    serialization-graph edges) dense. *)

val observers : weights
(** Observe-only (weight zero elsewhere) — useful as a distribution
    sanity check and as a conflict-free control. *)

val sample_weighted : Rng.t -> weights -> Datatype.t -> Datatype.op
(** One operation of the given type drawn from the weighted class
    grammar, with the documented nearest-class fallback (exposed so
    distribution tests can pin the sampler against its nominal
    weights). *)

val weighted :
  ?weights:weights ->
  Rng.t ->
  profile ->
  Program.t list * (Obj_id.t * Datatype.t) list
(** A mixed-type workload (objects round-robin over the shipped data
    types, like {!mixed}) whose accesses follow the weighted grammar
    (default {!balanced}). *)

val registers :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** A read/write workload over registers (the Sections 3–5 setting). *)

val counters :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** A counter workload, increment-heavy per the profile's
    [read_ratio] (reads become [Get]). *)

val mixed :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** Objects drawn round-robin from all five shipped data types, each
    access sampled from its object's own operation distribution. *)

(** {2 SmallBank-style contended transactions}

    Multi-object read-modify-write programs over register "accounts"
    with Zipf-skewed ([theta]) account popularity — the contention
    shape that makes weak-isolation anomalies (write skew, lost
    update) likely.  Kinds follow the SmallBank benchmark: balance
    (read two accounts), deposit (RMW one account), write-check (read
    both, write one — the write-skew shape), amalgamate (read both,
    write both), payment (RMW transfer across two accounts). *)

type smallbank_kind = Balance | Deposit | Write_check | Amalgamate | Payment

type smallbank_mix = {
  m_balance : int;
  m_deposit : int;
  m_write_check : int;
  m_amalgamate : int;
  m_payment : int;
}
(** Integer weights of the five transaction kinds. *)

val smallbank_default : smallbank_mix
(** Deposit/write-check heavy, after the benchmark's usual mix. *)

val smallbank_profile : profile
(** The preset [Nt_check] runs SmallBank scenarios under: few hot
    accounts ([theta = 0.9]) shared by 8 top-level transactions. *)

val sample_kind : Rng.t -> smallbank_mix -> smallbank_kind
(** Draw one transaction kind from the mix (exposed so distribution
    tests can pin the sampler against its nominal weights). *)

val smallbank :
  ?mix:smallbank_mix ->
  Rng.t ->
  profile ->
  Program.t list * (Obj_id.t * Datatype.t) list
(** [p.n_top] SmallBank transactions over [max 2 p.n_objects] register
    accounts with Zipf skew [p.theta] (default mix
    {!smallbank_default}). *)

val forest_and_schema :
  (Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list) ->
  seed:int ->
  profile ->
  Program.t list * Schema.t
(** Generate and package with the induced schema. *)
