(** Random workload generation.

    Produces top-level program forests (plus matching object
    declarations) with tunable shape and contention.  All generation is
    driven by {!Nt_base.Rng}, so a (profile, seed) pair fully determines
    the workload. *)

open Nt_base
open Nt_spec
open Nt_serial

type profile = {
  n_top : int;  (** Top-level transactions (children of [T0]). *)
  depth : int;  (** Maximum nesting depth below a top-level node. *)
  fanout : int;  (** Maximum children per inner node (≥ 1). *)
  n_objects : int;  (** Number of objects. *)
  theta : float;  (** Zipf skew of object choice; 0 = uniform. *)
  par_ratio : float;  (** Probability an inner node runs children [Par]. *)
  read_ratio : float;  (** Read fraction for read/write workloads. *)
}

val default : profile
(** 8 top-level transactions, depth 2, fanout 3, 4 objects, uniform
    access, half [Par], 50% reads. *)

(** {2 Adversarial shapes}

    Profiles tuned to stress specific protocol weaknesses; used by
    {!Nt_check} to bias exploration towards the behaviors that
    historically betray broken concurrency control. *)

val lock_heavy : profile
(** Everyone fights over one object, write-heavy — maximal lock
    conflicts and deadlock pressure. *)

val deep_nesting : profile
(** Few top-level transactions, nesting depth 4 — exercises lock
    inheritance and abort propagation along long ancestor chains. *)

val abort_storm : profile
(** A moderately contended shape meant to be run with a high
    fault-injection rate ([abort_prob]), so recovery paths (undo,
    inform handling, orphan discard) dominate the execution. *)

(** {2 Weighted action grammars}

    The plain generators draw operations from each data type's own
    [sample_ops].  A {!weights} value instead draws the {e class} of
    the next access from an explicit distribution — observers,
    commuting updates, absolute overwrites, low-commutativity
    mutators — and then picks a concrete operation of that class
    supported by the chosen object's type (falling back to the
    nearest supported class, in the order above, when the type lacks
    one). *)

type weights = {
  w_observe : int;  (** [Read]/[Get]/[Balance]/[Member]/[Size]/[Kread]. *)
  w_update : int;  (** Commuting updates: [Incr]/[Decr]/[Deposit]/[Insert]/[Remove]. *)
  w_overwrite : int;  (** Absolute writes: [Write]/[Kwrite]. *)
  w_mutate : int;  (** Low-commutativity: [Withdraw]/[Enqueue]/[Dequeue]. *)
}

val balanced : weights
(** Equal weight on all four classes. *)

val contended : weights
(** Overwrite/mutate-heavy — the grammar that makes conflicts (and
    serialization-graph edges) dense. *)

val observers : weights
(** Observe-only (weight zero elsewhere) — useful as a distribution
    sanity check and as a conflict-free control. *)

val weighted :
  ?weights:weights ->
  Rng.t ->
  profile ->
  Program.t list * (Obj_id.t * Datatype.t) list
(** A mixed-type workload (objects round-robin over the shipped data
    types, like {!mixed}) whose accesses follow the weighted grammar
    (default {!balanced}). *)

val registers :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** A read/write workload over registers (the Sections 3–5 setting). *)

val counters :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** A counter workload, increment-heavy per the profile's
    [read_ratio] (reads become [Get]). *)

val mixed :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** Objects drawn round-robin from all five shipped data types, each
    access sampled from its object's own operation distribution. *)

val forest_and_schema :
  (Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list) ->
  seed:int ->
  profile ->
  Program.t list * Schema.t
(** Generate and package with the induced schema. *)
