(** Random workload generation.

    Produces top-level program forests (plus matching object
    declarations) with tunable shape and contention.  All generation is
    driven by {!Nt_base.Rng}, so a (profile, seed) pair fully determines
    the workload. *)

open Nt_base
open Nt_spec
open Nt_serial

type profile = {
  n_top : int;  (** Top-level transactions (children of [T0]). *)
  depth : int;  (** Maximum nesting depth below a top-level node. *)
  fanout : int;  (** Maximum children per inner node (≥ 1). *)
  n_objects : int;  (** Number of objects. *)
  theta : float;  (** Zipf skew of object choice; 0 = uniform. *)
  par_ratio : float;  (** Probability an inner node runs children [Par]. *)
  read_ratio : float;  (** Read fraction for read/write workloads. *)
}

val default : profile
(** 8 top-level transactions, depth 2, fanout 3, 4 objects, uniform
    access, half [Par], 50% reads. *)

val registers :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** A read/write workload over registers (the Sections 3–5 setting). *)

val counters :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** A counter workload, increment-heavy per the profile's
    [read_ratio] (reads become [Get]). *)

val mixed :
  Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list
(** Objects drawn round-robin from all five shipped data types, each
    access sampled from its object's own operation distribution. *)

val forest_and_schema :
  (Rng.t -> profile -> Program.t list * (Obj_id.t * Datatype.t) list) ->
  seed:int ->
  profile ->
  Program.t list * Schema.t
(** Generate and package with the induced schema. *)
