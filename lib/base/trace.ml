type t = Action.t array

let of_list = Array.of_list
let to_list = Array.to_list
let length = Array.length
let get (t : t) i = t.(i)
let empty : t = [||]
let append t a = Array.append t [| a |]
let concat = Array.append
let prefix t n = Array.sub t 0 n

let filter p (t : t) =
  Array.of_list (List.filter p (Array.to_list t))

let find_first p (t : t) =
  let n = Array.length t in
  let rec go i = if i >= n then None else if p t.(i) then Some i else go (i + 1) in
  go 0

let serial t = filter Action.is_serial t

let proj_txn t txn =
  filter
    (fun a ->
      Action.is_serial a
      &&
      match Action.transaction a with
      | Some u -> Txn_id.equal u txn
      | None -> false)
    t

let proj_obj sys t x =
  filter
    (fun a ->
      match Action.object_of sys a with
      | Some y -> Obj_id.equal x y
      | None -> false)
    t

let committed t =
  Array.fold_left
    (fun acc a -> match a with Action.Commit u -> Txn_id.Set.add u acc | _ -> acc)
    Txn_id.Set.empty t

let aborted t =
  Array.fold_left
    (fun acc a -> match a with Action.Abort u -> Txn_id.Set.add u acc | _ -> acc)
    Txn_id.Set.empty t

let is_orphan t txn =
  let ab = aborted t in
  List.exists (fun u -> Txn_id.Set.mem u ab) (Txn_id.ancestors txn)

let is_live t txn =
  let created = ref false and completed = ref false in
  Array.iter
    (fun a ->
      match a with
      | Action.Create u when Txn_id.equal u txn -> created := true
      | Action.Commit u | Action.Abort u ->
          if Txn_id.equal u txn then completed := true
      | _ -> ())
    t;
  !created && not !completed

(* Visibility of [t'] to [t] given the committed set: every ancestor of
   [t'] that is not an ancestor of [t] must be committed. *)
let visible_with committed_set ~to_ t' =
  List.for_all
    (fun u -> Txn_id.Set.mem u committed_set)
    (Txn_id.ancestors_upto t' ~upto:to_)

let visible_txn t ~to_ t' = visible_with (committed t) ~to_ t'

let visible t ~to_ =
  let comm = committed t in
  (* Memoize per-hightransaction visibility: many events share one. *)
  let memo = Txn_id.Tbl.create 64 in
  let vis u =
    match Txn_id.Tbl.find_opt memo u with
    | Some b -> b
    | None ->
        let b = visible_with comm ~to_ u in
        Txn_id.Tbl.add memo u b;
        b
  in
  filter
    (fun a ->
      Action.is_serial a
      && match Action.hightransaction a with Some u -> vis u | None -> false)
    t

let clean t =
  let ab = aborted t in
  let memo = Txn_id.Tbl.create 64 in
  let orphan u =
    match Txn_id.Tbl.find_opt memo u with
    | Some b -> b
    | None ->
        let b = List.exists (fun v -> Txn_id.Set.mem v ab) (Txn_id.ancestors u) in
        Txn_id.Tbl.add memo u b;
        b
  in
  filter
    (fun a ->
      match Action.hightransaction a with
      | Some u -> not (orphan u)
      | None -> (* inform and other classified-less events are kept out *)
               false)
    t

let operations sys t x =
  Array.fold_left
    (fun acc a ->
      match a with
      | Action.Request_commit (u, v)
        when System_type.is_access sys u
             && Obj_id.equal (System_type.object_of_exn sys u) x ->
          (u, v) :: acc
      | _ -> acc)
    [] t
  |> List.rev

let operations_any sys t =
  Array.fold_left
    (fun acc a ->
      match a with
      | Action.Request_commit (u, v) when System_type.is_access sys u ->
          (u, v) :: acc
      | _ -> acc)
    [] t
  |> List.rev

let directly_affects t i j =
  if i >= j then false
  else
    let phi = t.(i) and pi = t.(j) in
    let same_txn =
      match (Action.transaction phi, Action.transaction pi) with
      | Some a, Some b -> Txn_id.equal a b
      | _ -> false
    in
    same_txn
    ||
    match (phi, pi) with
    | Action.Request_create a, Action.Create b
    | Action.Request_create a, Action.Abort b
    | Action.Commit a, Action.Report_commit (b, _)
    | Action.Abort a, Action.Report_abort b ->
        Txn_id.equal a b
    | Action.Request_commit (a, _), Action.Commit b -> Txn_id.equal a b
    | _ -> false

let affects_adjacency t =
  let n = Array.length t in
  let adj = Array.make n [] in
  let add i j = if i <> j then adj.(i) <- j :: adj.(i) in
  (* Chain consecutive events of the same transaction; the chain has the
     same transitive closure as the all-pairs same-transaction relation. *)
  let last_of_txn = Txn_id.Tbl.create 64 in
  (* First-occurrence tables for the pairing edges. *)
  let first_request_create = Txn_id.Tbl.create 64 in
  let first_request_commit = Txn_id.Tbl.create 64 in
  let first_commit = Txn_id.Tbl.create 64 in
  let first_abort = Txn_id.Tbl.create 64 in
  let remember tbl key i =
    if not (Txn_id.Tbl.mem tbl key) then Txn_id.Tbl.add tbl key i
  in
  for i = 0 to n - 1 do
    let a = t.(i) in
    (match Action.transaction a with
    | Some u ->
        (match Txn_id.Tbl.find_opt last_of_txn u with
        | Some j -> add j i
        | None -> ());
        Txn_id.Tbl.replace last_of_txn u i
    | None -> ());
    match a with
    | Action.Request_create u -> remember first_request_create u i
    | Action.Request_commit (u, _) -> remember first_request_commit u i
    | Action.Create u -> (
        match Txn_id.Tbl.find_opt first_request_create u with
        | Some j when j < i -> add j i
        | _ -> ())
    | Action.Commit u ->
        remember first_commit u i;
        (match Txn_id.Tbl.find_opt first_request_commit u with
        | Some j when j < i -> add j i
        | _ -> ())
    | Action.Abort u ->
        remember first_abort u i;
        (match Txn_id.Tbl.find_opt first_request_create u with
        | Some j when j < i -> add j i
        | _ -> ())
    | Action.Report_commit (u, _) -> (
        match Txn_id.Tbl.find_opt first_commit u with
        | Some j when j < i -> add j i
        | _ -> ())
    | Action.Report_abort u -> (
        match Txn_id.Tbl.find_opt first_abort u with
        | Some j when j < i -> add j i
        | _ -> ())
    | Action.Inform_commit _ | Action.Inform_abort _ -> ()
  done;
  Array.map List.rev adj

let affects t i j =
  if i = j then false
  else
    let adj = affects_adjacency t in
    let n = Array.length t in
    let seen = Array.make n false in
    let rec dfs k =
      k = j
      || (not seen.(k))
         && (seen.(k) <- true;
             List.exists dfs adj.(k))
    in
    seen.(i) <- true;
    List.exists dfs adj.(i)

let completion_before t u u' =
  Txn_id.siblings u u'
  &&
  let idx txn =
    find_first
      (fun a ->
        match a with
        | Action.Commit w | Action.Abort w -> Txn_id.equal w txn
        | _ -> false)
      t
  in
  match (idx u, idx u') with
  | Some i, Some j -> i < j
  | Some _, None -> true
  | None, _ -> false

let pp fmt (t : t) =
  Array.iteri (fun i a -> Format.fprintf fmt "%4d  %a@." i Action.pp a) t
