(** Transaction names.

    The paper organizes all transaction names into an infinite tree with
    root [T0]; the tree is "a predefined naming scheme for all transactions
    that might ever be invoked" (Section 2.2).  We realize every name as
    the path of child indices from the root, so the whole infinite tree is
    addressable without being materialized: [root] is [T0], and
    [child t i] is the [i]-th child of [t].

    All the tree vocabulary of the paper (parent, child, leaf, ancestor,
    descendant, lca, sibling) is provided as pure path operations.  Note
    the paper's convention: a transaction is its own ancestor and its own
    descendant. *)

type t
(** A transaction name. *)

val root : t
(** [T0], the mythical root transaction modelling the environment. *)

val child : t -> int -> t
(** [child t i] is the [i]-th child of [t].  [i] must be non-negative. *)

val parent : t -> t option
(** The parent in the naming tree; [None] for {!root}. *)

val parent_exn : t -> t
(** Like {!parent}, but raises [Invalid_argument] on {!root}. *)

val is_root : t -> bool

val depth : t -> int
(** Distance from the root; [depth root = 0]. *)

val last_index : t -> int option
(** The child index of [t] under its parent; [None] for the root. *)

val ancestors : t -> t list
(** All ancestors of [t] from [t] itself up to and including the root,
    in leaf-to-root order.  Per the paper, [t] is its own ancestor. *)

val proper_ancestors : t -> t list
(** {!ancestors} without [t] itself. *)

val is_ancestor : t -> t -> bool
(** [is_ancestor a t] iff [a] is an ancestor of [t] (reflexively). *)

val is_descendant : t -> t -> bool
(** [is_descendant d t] iff [d] is a descendant of [t] (reflexively). *)

val is_proper_ancestor : t -> t -> bool

val related : t -> t -> bool
(** [related a b] iff one is an ancestor of the other (reflexively). *)

val siblings : t -> t -> bool
(** Distinct transactions with the same parent. *)

val lca : t -> t -> t
(** Least common ancestor. *)

val child_of_on_path : ancestor:t -> t -> t
(** [child_of_on_path ~ancestor t] is the child of [ancestor] that is an
    ancestor of [t].  Raises [Invalid_argument] if [t] is not a proper
    descendant of [ancestor]. *)

val ancestors_upto : t -> upto:t -> t list
(** [ancestors_upto t ~upto] is [ancestors t - ancestors upto]: every
    ancestor of [t] that is not an ancestor of [upto], leaf-to-root.
    This is the set quantified over in the paper's visibility definition. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_path : int list -> t
(** Build a name from the root-to-leaf list of child indices.
    [of_path [] = root]. *)

val of_string : string -> t option
(** Parse the {!to_string} rendering ("T0", "T0.1.0", ...); [None] on
    anything else.  Inverse of {!to_string} — used by telemetry
    consumers reading names back from JSONL traces. *)

val path : t -> int list
(** Root-to-leaf child indices; inverse of {!of_path}. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

val dfs_compare : t -> t -> int
(** Lexicographic comparison of root-down paths: the depth-first
    traversal order of the naming tree.  An ancestor precedes its
    descendants; unrelated names compare by sibling index at their lca.
    This is the canonical "pseudotime" order used by timestamp-based
    protocols ({!Nt_mvts}). *)
