type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value survives Int64.to_int non-negative on
     63-bit native ints. *)
  let r = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf via the standard rejection-free inverse-power method with a
   precomputed normalizer would need caching; for the small [n] used by
   workloads a direct harmonic inversion is fine. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta <= 0.0 then int t n
  else begin
    let h = ref 0.0 in
    for i = 1 to n do
      h := !h +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    let u = float t !h in
    let acc = ref 0.0 and res = ref (n - 1) in
    (try
       for i = 1 to n do
         acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta);
         if u < !acc then begin
           res := i - 1;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end
