(** Finite sequences of actions, and the paper's sequence machinery.

    A trace is an immutable array of actions — the behavior of some system
    execution.  Everything the paper defines {e on sequences of actions}
    lives here: projections [beta|T] and [beta|X], [serial(beta)], orphans
    and liveness, visibility ([visible(beta,T)]), [clean(beta)], the
    [directly-affects]/[affects] relations, and the [completion(beta)]
    order used in the proofs of Propositions 16 and 24.

    Definitions are implemented for {e arbitrary} sequences of actions
    (not only behaviors of a specific system), exactly as the paper's
    footnote 5 demands, because they are later applied to behaviors of
    serial, simple and generic systems alike. *)

type t = Action.t array
(** A finite trace.  Events are identified by their index. *)

val of_list : Action.t list -> t
val to_list : t -> Action.t list
val length : t -> int
val get : t -> int -> Action.t
val empty : t
val append : t -> Action.t -> t
val concat : t -> t -> t

val prefix : t -> int -> t
(** [prefix beta n] is the first [n] events of [beta]. *)

val filter : (Action.t -> bool) -> t -> t

val find_first : (Action.t -> bool) -> t -> int option
(** Index of the first event satisfying the predicate. *)

val serial : t -> t
(** [serial(beta)]: the subsequence of serial actions (drops [Inform_*]). *)

val proj_txn : t -> Txn_id.t -> t
(** [beta|T]: serial actions [pi] with [transaction(pi) = T]. *)

val proj_obj : System_type.t -> t -> Obj_id.t -> t
(** [beta|X]: serial actions [pi] with [object(pi) = X]. *)

val is_orphan : t -> Txn_id.t -> bool
(** [T] is an orphan in [beta]: some ancestor of [T] has an [Abort]. *)

val is_live : t -> Txn_id.t -> bool
(** [T] is live in [beta]: created but not completed. *)

val committed : t -> Txn_id.Set.t
(** Transactions with a [Commit] event in [beta]. *)

val aborted : t -> Txn_id.Set.t
(** Transactions with an [Abort] event in [beta]. *)

val visible_txn : t -> to_:Txn_id.t -> Txn_id.t -> bool
(** [visible_txn beta ~to_:t t'] iff [t'] is visible to [t] in [beta]:
    every member of [ancestors t' - ancestors t] has committed. *)

val visible : t -> to_:Txn_id.t -> t
(** [visible(beta, T)]: the serial actions whose hightransaction is
    visible to [T] in [beta]. *)

val clean : t -> t
(** [clean(beta)]: the events whose hightransactions are not orphans in
    [beta] (Section 3.3). *)

val operations : System_type.t -> t -> Obj_id.t -> (Txn_id.t * Value.t) list
(** The operations of [X] occurring in [beta]: the [(T, v)] of each
    [Request_commit(T, v)] with [T] an access to [X], in trace order. *)

val operations_any : System_type.t -> t -> (Txn_id.t * Value.t) list
(** All access operations occurring in [beta], any object, in order. *)

val affects_adjacency : t -> int list array
(** Adjacency lists (by event index) of a relation whose transitive
    closure equals the paper's [affects(beta)]: per-transaction
    consecutive-event edges plus the six request/completion/report
    pairing edges of [directly-affects]. *)

val directly_affects : t -> int -> int -> bool
(** The paper's [directly-affects(beta)] on two event indices. *)

val affects : t -> int -> int -> bool
(** [(phi, pi) ∈ affects(beta)] — reachability over
    {!affects_adjacency}.  Intended for tests; for bulk use, take the
    adjacency and do your own traversal. *)

val completion_before : t -> Txn_id.t -> Txn_id.t -> bool
(** The [completion(beta)] order of Propositions 16/24 restricted to a
    pair: [U] and [U'] are siblings and either [beta] completes [U]
    before completing [U'], or completes [U] and never completes [U']. *)

val pp : Format.formatter -> t -> unit
(** One action per line, prefixed by its index. *)
