(* A name is stored as the REVERSED path of child indices: the head of the
   list is the index under the immediate parent.  This makes [parent] O(1)
   and ancestor tests a suffix check. *)

type t = int list

let root = []

let child t i =
  if i < 0 then invalid_arg "Txn_id.child: negative index";
  i :: t

let parent = function [] -> None | _ :: p -> Some p

let parent_exn = function
  | [] -> invalid_arg "Txn_id.parent_exn: root has no parent"
  | _ :: p -> p

let is_root t = t = []
let depth = List.length
let last_index = function [] -> None | i :: _ -> Some i

let rec ancestors t = match t with [] -> [ [] ] | _ :: p -> t :: ancestors p
let proper_ancestors t = match t with [] -> [] | _ :: p -> ancestors p

(* [a] is an ancestor of [t] iff the reversed path of [a] is a suffix of
   the reversed path of [t]. *)
let is_ancestor a t =
  let da = List.length a and dt = List.length t in
  if da > dt then false
  else
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    drop (dt - da) t = a

let is_descendant d t = is_ancestor t d
let is_proper_ancestor a t = a <> t && is_ancestor a t
let related a b = is_ancestor a b || is_ancestor b a

let siblings a b =
  a <> b
  &&
  match (a, b) with _ :: pa, _ :: pb -> pa = pb | _ -> false

let lca a b =
  let rec strip l n = if n = 0 then l else strip (List.tl l) (n - 1) in
  let da = List.length a and db = List.length b in
  let a = if da > db then strip a (da - db) else a in
  let b = if db > da then strip b (db - da) else b in
  let rec common a b =
    if a = b then a
    else
      match (a, b) with
      | _ :: a', _ :: b' -> common a' b'
      | _ -> assert false
  in
  common a b

let child_of_on_path ~ancestor t =
  if not (is_proper_ancestor ancestor t) then
    invalid_arg "Txn_id.child_of_on_path: not a proper descendant";
  let rec strip l n = if n = 0 then l else strip (List.tl l) (n - 1) in
  strip t (List.length t - List.length ancestor - 1)

let ancestors_upto t ~upto =
  List.filter (fun a -> not (is_ancestor a upto)) (ancestors t)

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let hash (t : t) = Hashtbl.hash t

(* The root is the paper's T0; descendants append their child indices,
   so the first child of T0 is "T0.0" (never colliding with the root). *)
let to_string t =
  List.fold_left (fun acc i -> acc ^ "." ^ string_of_int i) "T0" (List.rev t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let of_path p = List.rev p
let path t = List.rev t

let of_string s =
  match String.split_on_char '.' s with
  | "T0" :: rest ->
      let rec parse acc = function
        | [] -> Some (of_path (List.rev acc))
        | seg :: rest -> (
            match int_of_string_opt seg with
            | Some i when i >= 0 -> parse (i :: acc) rest
            | _ -> None)
      in
      parse [] rest
  | _ -> None

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let dfs_compare a b = Stdlib.compare (path a) (path b)
