type t = {
  events : int;
  serial_events : int;
  informs : int;
  creates : int;
  commits : int;
  aborts : int;
  commit_requests : int;
  transactions : int;
  max_depth : int;
  max_live_siblings : int;
}

let of_trace trace =
  let events = Trace.length trace in
  let serial_events = ref 0
  and informs = ref 0
  and creates = ref 0
  and commits = ref 0
  and aborts = ref 0
  and commit_requests = ref 0 in
  let names = Txn_id.Tbl.create 64 in
  let max_depth = ref 0 in
  (* live children per parent *)
  let live = Txn_id.Tbl.create 16 in
  let max_live = ref 0 in
  let one_fewer_live t =
    match Txn_id.parent t with
    | Some p -> (
        match Txn_id.Tbl.find_opt live p with
        | Some n when n > 0 -> Txn_id.Tbl.replace live p (n - 1)
        | _ -> ())
    | None -> ()
  in
  Array.iter
    (fun a ->
      if Action.is_serial a then incr serial_events else incr informs;
      let subject = Action.subject a in
      Txn_id.Tbl.replace names subject ();
      max_depth := max !max_depth (Txn_id.depth subject);
      match a with
      | Action.Create t ->
          incr creates;
          (match Txn_id.parent t with
          | Some p ->
              let n =
                1 + Option.value ~default:0 (Txn_id.Tbl.find_opt live p)
              in
              Txn_id.Tbl.replace live p n;
              max_live := max !max_live n
          | None -> ())
      | Action.Commit t ->
          incr commits;
          one_fewer_live t
      | Action.Abort t ->
          incr aborts;
          one_fewer_live t
      | Action.Request_commit _ -> incr commit_requests
      | _ -> ())
    trace;
  {
    events;
    serial_events = !serial_events;
    informs = !informs;
    creates = !creates;
    commits = !commits;
    aborts = !aborts;
    commit_requests = !commit_requests;
    transactions = Txn_id.Tbl.length names;
    max_depth = !max_depth;
    max_live_siblings = !max_live;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>events %d (serial %d, informs %d)@,\
     creates %d  commits %d  aborts %d  commit-requests %d@,\
     transactions %d  max depth %d  peak live siblings %d@]"
    s.events s.serial_events s.informs s.creates s.commits s.aborts
    s.commit_requests s.transactions s.max_depth s.max_live_siblings
