(** Textual serialization of traces.

    One action per line, in a stable, human-readable grammar, so
    behaviors can be saved from one run and re-checked later (the
    [ntsim] CLI exposes [--save]/[--load]):

    {v
    REQUEST_CREATE T0.1
    CREATE T0.1
    REQUEST_COMMIT T0.1.0 (int 5)
    COMMIT T0.1.0
    REPORT_COMMIT T0.1.0 (int 5)
    ABORT T0.2
    REPORT_ABORT T0.2
    INFORM_COMMIT "x" T0.1
    INFORM_ABORT "x" T0.2
    v}

    Values: [unit], [ok], [(int N)], [(bool true|false)],
    [(str <quoted>)] (with backslash escapes for quote and backslash),
    [(pair V V)], [(list V ...)].  Object names are quoted strings.
    Blank lines and lines starting with [#] are ignored on input. *)

val action_to_string : Action.t -> string
val action_of_string : string -> (Action.t, string) result

val to_string : Trace.t -> string
val of_string : string -> (Trace.t, string) result
(** Errors carry the offending line number and reason. *)

val save : string -> Trace.t -> unit
(** [save path trace] writes the textual form to a file. *)

val load : string -> (Trace.t, string) result
(** Read a file written by {!save}. *)
