type t =
  | Unit
  | Ok
  | Int of int
  | Bool of bool
  | Str of string
  | Pair of t * t
  | List of t list

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Ok -> Format.pp_print_string fmt "OK"
  | Int i -> Format.pp_print_int fmt i
  | Bool b -> Format.pp_print_bool fmt b
  | Str s -> Format.fprintf fmt "%S" s
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
           pp)
        l

let to_string v = Format.asprintf "%a" pp v

let int_exn = function
  | Int i -> i
  | v -> invalid_arg ("Value.int_exn: " ^ to_string v)

let bool_exn = function
  | Bool b -> b
  | v -> invalid_arg ("Value.bool_exn: " ^ to_string v)
