(** Summary statistics of a trace — the profile [ntsim] prints and the
    tests use to sanity-check workload shapes.

    All counts are purely syntactic (no schema needed). *)

type t = {
  events : int;
  serial_events : int;
  informs : int;
  creates : int;
  commits : int;
  aborts : int;
  commit_requests : int;
      (** [Request_commit] events — commit {e requests} issued by
          transactions and accesses (the response to the requester is
          the later [Report_commit]). *)
  transactions : int;  (** Distinct names with any event. *)
  max_depth : int;  (** Deepest name appearing. *)
  max_live_siblings : int;
      (** Peak number of simultaneously live children of one parent —
          the concurrency a serial system never exceeds 1 on. *)
}

val of_trace : Trace.t -> t
val pp : Format.formatter -> t -> unit
