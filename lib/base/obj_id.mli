(** Object names.

    Each access transaction (a leaf of the naming tree) is an access to
    exactly one object name [X]; the serial object automaton [S_X] and the
    generic object automata ([M1_X], [U_X]) are indexed by these names. *)

type t
(** An object name. *)

val make : string -> t
(** [make s] is the object named [s]. Names are compared structurally. *)

val indexed : string -> int -> t
(** [indexed prefix i] is [make (prefix ^ string_of_int i)]; convenient for
    generated workloads over object arrays. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
