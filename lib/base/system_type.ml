type kind = Inner | Access of Obj_id.t
type t = { classify : Txn_id.t -> kind }

let make classify =
  (match classify Txn_id.root with
  | Inner -> ()
  | Access _ -> invalid_arg "System_type.make: root must be a non-access");
  { classify }

let kind t txn = t.classify txn
let is_access t txn = match t.classify txn with Access _ -> true | Inner -> false

let object_of t txn =
  match t.classify txn with Access x -> Some x | Inner -> None

let object_of_exn t txn =
  match t.classify txn with
  | Access x -> x
  | Inner ->
      invalid_arg
        ("System_type.object_of_exn: " ^ Txn_id.to_string txn
       ^ " is not an access")
