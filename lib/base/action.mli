(** Actions of nested transaction systems.

    The first seven constructors are the {e serial actions} — the external
    actions of the serial system (Section 2.2.4) and of the simple
    database (Section 2.3.1).  The two [Inform_*] constructors are the
    extra inputs of generic objects (Section 5.1), by which the generic
    controller tells each object the fate of transactions.

    The classification functions [transaction], [hightransaction],
    [lowtransaction] and [object_of] follow the paper's definitions
    exactly (Section 2.2.4); they are partial where the paper leaves them
    undefined. *)

type t =
  | Request_create of Txn_id.t
      (** Output of [parent T]: request to create child [T]. *)
  | Create of Txn_id.t  (** Scheduler output waking up [T]. *)
  | Request_commit of Txn_id.t * Value.t
      (** Output of [T] (or of [X] when [T] is an access): [T] is done,
          reporting value [v]. *)
  | Commit of Txn_id.t  (** Completion action: the fate of [T] is sealed. *)
  | Abort of Txn_id.t  (** Completion action: [T] is aborted. *)
  | Report_commit of Txn_id.t * Value.t
      (** Input of [parent T]: [T] committed with value [v]. *)
  | Report_abort of Txn_id.t  (** Input of [parent T]: [T] aborted. *)
  | Inform_commit of Obj_id.t * Txn_id.t
      (** [INFORM_COMMIT_AT(X)OF(T)] — generic systems only. *)
  | Inform_abort of Obj_id.t * Txn_id.t
      (** [INFORM_ABORT_AT(X)OF(T)] — generic systems only. *)

val is_serial : t -> bool
(** [true] for everything except the [Inform_*] actions. *)

val is_completion : t -> bool
(** [true] for [Commit] and [Abort]. *)

val transaction : t -> Txn_id.t option
(** The paper's [transaction(pi)]: the (non-access or access) transaction
    at which the action occurs.  [None] for completion and inform
    actions, for which the paper leaves it undefined. *)

val hightransaction : t -> Txn_id.t option
(** [transaction(pi)] for non-completion serial actions; the {e parent}
    of [T] for a completion action for [T].  [None] for inform actions. *)

val lowtransaction : t -> Txn_id.t option
(** [transaction(pi)] for non-completion serial actions; [T] itself for a
    completion action for [T].  [None] for inform actions. *)

val object_of : System_type.t -> t -> Obj_id.t option
(** The paper's [object(pi)]: defined when the action is a [Create] or
    [Request_commit] whose transaction is an access. *)

val subject : t -> Txn_id.t
(** The transaction name syntactically carried by the action (for
    inform actions, the informed-about transaction).  Total. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
