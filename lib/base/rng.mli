(** Deterministic pseudo-random numbers (SplitMix64).

    All randomness in workload generation and interleaving scheduling
    flows through this module so that every execution, test and benchmark
    is reproducible from a single integer seed. *)

type t

val create : int -> t
(** A generator seeded deterministically from the given integer. *)

val copy : t -> t
(** An independent generator with the same current state. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's
    subsequent output (splittable-RNG style). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits64 : t -> int64
(** The raw next 64-bit output. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed index in [\[0, n)] with skew [theta]; [theta = 0.]
    is uniform.  Used by hotspot workloads. *)
