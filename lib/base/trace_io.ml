(* ----- printing ----- *)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec value_to_string (v : Value.t) =
  match v with
  | Value.Unit -> "unit"
  | Value.Ok -> "ok"
  | Value.Int n -> Printf.sprintf "(int %d)" n
  | Value.Bool b -> Printf.sprintf "(bool %b)" b
  | Value.Str s -> Printf.sprintf "(str %s)" (quote s)
  | Value.Pair (a, b) ->
      Printf.sprintf "(pair %s %s)" (value_to_string a) (value_to_string b)
  | Value.List l ->
      Printf.sprintf "(list%s)"
        (String.concat "" (List.map (fun v -> " " ^ value_to_string v) l))

let txn_to_string = Txn_id.to_string

let action_to_string (a : Action.t) =
  match a with
  | Action.Request_create t -> "REQUEST_CREATE " ^ txn_to_string t
  | Action.Create t -> "CREATE " ^ txn_to_string t
  | Action.Request_commit (t, v) ->
      Printf.sprintf "REQUEST_COMMIT %s %s" (txn_to_string t) (value_to_string v)
  | Action.Commit t -> "COMMIT " ^ txn_to_string t
  | Action.Abort t -> "ABORT " ^ txn_to_string t
  | Action.Report_commit (t, v) ->
      Printf.sprintf "REPORT_COMMIT %s %s" (txn_to_string t) (value_to_string v)
  | Action.Report_abort t -> "REPORT_ABORT " ^ txn_to_string t
  | Action.Inform_commit (x, t) ->
      Printf.sprintf "INFORM_COMMIT %s %s" (quote (Obj_id.name x)) (txn_to_string t)
  | Action.Inform_abort (x, t) ->
      Printf.sprintf "INFORM_ABORT %s %s" (quote (Obj_id.name x)) (txn_to_string t)

let to_string trace =
  String.concat "\n" (List.map action_to_string (Trace.to_list trace)) ^ "\n"

(* ----- lexing ----- *)

type token = Lparen | Rparen | Atom of string | Quoted of string

let tokenize line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match line.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '"' ->
          let buf = Buffer.create 8 in
          let rec str j =
            if j >= n then Error "unterminated string"
            else
              match line.[j] with
              | '"' -> Ok (j + 1)
              | '\\' ->
                  if j + 1 >= n then Error "dangling escape"
                  else begin
                    Buffer.add_char buf line.[j + 1];
                    str (j + 2)
                  end
              | c ->
                  Buffer.add_char buf c;
                  str (j + 1)
          in
          (match str (i + 1) with
          | Ok j -> go j (Quoted (Buffer.contents buf) :: acc)
          | Error e -> Error e)
      | _ ->
          let j = ref i in
          while
            !j < n
            && not (List.mem line.[!j] [ ' '; '\t'; '('; ')'; '"' ])
          do
            incr j
          done;
          go !j (Atom (String.sub line i (!j - i)) :: acc)
  in
  go 0 []

(* ----- parsing ----- *)

let parse_txn s =
  match String.split_on_char '.' s with
  | "T0" :: rest -> (
      try
        Ok (Txn_id.of_path (List.map int_of_string rest))
      with Failure _ -> Error ("bad transaction name " ^ s))
  | _ -> Error ("bad transaction name " ^ s)

let rec parse_value tokens =
  match tokens with
  | Atom "unit" :: rest -> Ok (Value.Unit, rest)
  | Atom "ok" :: rest -> Ok (Value.Ok, rest)
  | Lparen :: Atom "int" :: Atom n :: Rparen :: rest -> (
      match int_of_string_opt n with
      | Some n -> Ok (Value.Int n, rest)
      | None -> Error ("bad int " ^ n))
  | Lparen :: Atom "bool" :: Atom b :: Rparen :: rest -> (
      match bool_of_string_opt b with
      | Some b -> Ok (Value.Bool b, rest)
      | None -> Error ("bad bool " ^ b))
  | Lparen :: Atom "str" :: Quoted s :: Rparen :: rest ->
      Ok (Value.Str s, rest)
  | Lparen :: Atom "pair" :: rest -> (
      match parse_value rest with
      | Error e -> Error e
      | Ok (a, rest) -> (
          match parse_value rest with
          | Error e -> Error e
          | Ok (b, rest) -> (
              match rest with
              | Rparen :: rest -> Ok (Value.Pair (a, b), rest)
              | _ -> Error "expected ) after pair")))
  | Lparen :: Atom "list" :: rest ->
      let rec elems acc rest =
        match rest with
        | Rparen :: rest -> Ok (Value.List (List.rev acc), rest)
        | [] -> Error "unterminated list"
        | _ -> (
            match parse_value rest with
            | Error e -> Error e
            | Ok (v, rest) -> elems (v :: acc) rest)
      in
      elems [] rest
  | _ -> Error "expected value"

let action_of_string line =
  match tokenize line with
  | Error e -> Error e
  | Ok tokens -> (
      let txn_only ctor rest =
        match rest with
        | [ Atom t ] -> Result.map ctor (parse_txn t)
        | _ -> Error "expected one transaction name"
      in
      let txn_value ctor rest =
        match rest with
        | Atom t :: vtokens -> (
            match parse_txn t with
            | Error e -> Error e
            | Ok txn -> (
                match parse_value vtokens with
                | Ok (v, []) -> Ok (ctor txn v)
                | Ok _ -> Error "trailing tokens after value"
                | Error e -> Error e))
        | _ -> Error "expected transaction and value"
      in
      let obj_txn ctor rest =
        match rest with
        | [ Quoted x; Atom t ] ->
            Result.map (fun txn -> ctor (Obj_id.make x) txn) (parse_txn t)
        | _ -> Error "expected quoted object and transaction"
      in
      match tokens with
      | Atom "REQUEST_CREATE" :: rest ->
          txn_only (fun t -> Action.Request_create t) rest
      | Atom "CREATE" :: rest -> txn_only (fun t -> Action.Create t) rest
      | Atom "COMMIT" :: rest -> txn_only (fun t -> Action.Commit t) rest
      | Atom "ABORT" :: rest -> txn_only (fun t -> Action.Abort t) rest
      | Atom "REPORT_ABORT" :: rest ->
          txn_only (fun t -> Action.Report_abort t) rest
      | Atom "REQUEST_COMMIT" :: rest ->
          txn_value (fun t v -> Action.Request_commit (t, v)) rest
      | Atom "REPORT_COMMIT" :: rest ->
          txn_value (fun t v -> Action.Report_commit (t, v)) rest
      | Atom "INFORM_COMMIT" :: rest ->
          obj_txn (fun x t -> Action.Inform_commit (x, t)) rest
      | Atom "INFORM_ABORT" :: rest ->
          obj_txn (fun x t -> Action.Inform_abort (x, t)) rest
      | Atom verb :: _ -> Error ("unknown action " ^ verb)
      | _ -> Error "empty action")

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (Trace.of_list (List.rev acc))
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else (
          match action_of_string trimmed with
          | Ok a -> go (lineno + 1) (a :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let save path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string trace))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
