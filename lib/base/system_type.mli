(** System types.

    A system type (Section 2.2) fixes the pattern of transaction nesting:
    the naming tree, which leaves are accesses, and which object each
    access touches.  Because the naming tree is infinite, we represent a
    system type by a classification {e function} on names rather than an
    enumeration.  Implementations must classify {!Txn_id.root} as
    {!constructor:Inner} and must be consistent: an [Access] name never
    has descendants that take steps. *)

type kind =
  | Inner  (** A non-access transaction (including [T0]). *)
  | Access of Obj_id.t  (** A leaf access to the given object. *)

type t
(** A system type. *)

val make : (Txn_id.t -> kind) -> t
(** [make classify] builds a system type from a classification function.
    The classification is consulted frequently; it should be cheap. *)

val kind : t -> Txn_id.t -> kind

val is_access : t -> Txn_id.t -> bool

val object_of : t -> Txn_id.t -> Obj_id.t option
(** The object accessed by [T], if [T] is an access. *)

val object_of_exn : t -> Txn_id.t -> Obj_id.t
(** Like {!object_of}; raises [Invalid_argument] on non-accesses. *)
