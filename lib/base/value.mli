(** Return values.

    The paper's system type fixes a set of return values for transactions;
    the same set is used for access responses (an operation is a pair
    [(T, v)]).  We use one closed universe rich enough for every data type
    shipped with the library: the write acknowledgement [Ok] of Section
    3.1, integers and booleans for registers/counters/sets, and pairs and
    lists so composite transactions can report structured results. *)

type t =
  | Unit
  | Ok  (** The distinguished acknowledgement of a write access (S 3.1). *)
  | Int of int
  | Bool of bool
  | Str of string
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int_exn : t -> int
(** Project an [Int]; raises [Invalid_argument] otherwise. *)

val bool_exn : t -> bool
(** Project a [Bool]; raises [Invalid_argument] otherwise. *)
