(** The one shared version of the toolchain.

    Every CLI ([ntsim], [ntstress], [ntcheck], [ntprof], [ntserved],
    [ntload]) reports this string for [--version], so a bug report's
    version pins the whole toolchain, not one binary. *)

val string : string
