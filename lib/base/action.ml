type t =
  | Request_create of Txn_id.t
  | Create of Txn_id.t
  | Request_commit of Txn_id.t * Value.t
  | Commit of Txn_id.t
  | Abort of Txn_id.t
  | Report_commit of Txn_id.t * Value.t
  | Report_abort of Txn_id.t
  | Inform_commit of Obj_id.t * Txn_id.t
  | Inform_abort of Obj_id.t * Txn_id.t

let is_serial = function Inform_commit _ | Inform_abort _ -> false | _ -> true
let is_completion = function Commit _ | Abort _ -> true | _ -> false

let transaction = function
  | Create t | Request_commit (t, _) -> Some t
  | Request_create t | Report_commit (t, _) | Report_abort t ->
      Txn_id.parent t
  | Commit _ | Abort _ | Inform_commit _ | Inform_abort _ -> None

let hightransaction = function
  | Commit t | Abort t -> Txn_id.parent t
  | Inform_commit _ | Inform_abort _ -> None
  | a -> transaction a

let lowtransaction = function
  | Commit t | Abort t -> Some t
  | Inform_commit _ | Inform_abort _ -> None
  | a -> transaction a

let object_of sys = function
  | (Create t | Request_commit (t, _)) when System_type.is_access sys t ->
      System_type.object_of sys t
  | _ -> None

let subject = function
  | Request_create t | Create t | Request_commit (t, _) | Commit t | Abort t
  | Report_commit (t, _) | Report_abort t
  | Inform_commit (_, t)
  | Inform_abort (_, t) ->
      t

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let pp fmt = function
  | Request_create t -> Format.fprintf fmt "REQUEST_CREATE(%a)" Txn_id.pp t
  | Create t -> Format.fprintf fmt "CREATE(%a)" Txn_id.pp t
  | Request_commit (t, v) ->
      Format.fprintf fmt "REQUEST_COMMIT(%a, %a)" Txn_id.pp t Value.pp v
  | Commit t -> Format.fprintf fmt "COMMIT(%a)" Txn_id.pp t
  | Abort t -> Format.fprintf fmt "ABORT(%a)" Txn_id.pp t
  | Report_commit (t, v) ->
      Format.fprintf fmt "REPORT_COMMIT(%a, %a)" Txn_id.pp t Value.pp v
  | Report_abort t -> Format.fprintf fmt "REPORT_ABORT(%a)" Txn_id.pp t
  | Inform_commit (x, t) ->
      Format.fprintf fmt "INFORM_COMMIT_AT(%a)OF(%a)" Obj_id.pp x Txn_id.pp t
  | Inform_abort (x, t) ->
      Format.fprintf fmt "INFORM_ABORT_AT(%a)OF(%a)" Obj_id.pp x Txn_id.pp t

let to_string a = Format.asprintf "%a" pp a
