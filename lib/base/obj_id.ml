type t = string

let make s = s
let indexed prefix i = prefix ^ string_of_int i
let name s = s
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)

module Tbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)
