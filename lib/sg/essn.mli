(** An ESSN-style refined serializability criterion for multiversion
    behaviors (after the Extended Serial Safety Net, arXiv 2511.22956).

    Theorem 2 certifies a behavior serially correct for [T0] given one
    {e particular} suitable sibling order whose views replay.  The
    completion-order witness extracted from [SG(beta)] is the right
    order for single-version protocols, but a multiversion protocol
    serializes by {e pseudotime}: its completion-order SG may be
    legitimately cyclic, which is why the mvts backend could previously
    only be judged on cycle alarms.  This module is the safety net over
    both: a behavior is accepted iff {e some} candidate order —
    pseudotime (the depth-first sibling-index order used by timestamp
    protocols) or the completion-order SG witness — is suitable and
    replays every view.  Certification by either candidate is a full
    Theorem 2 witness, so acceptance is sound; trying both makes the
    criterion strictly more complete than the single-order check and
    gives pseudotime serialization a real oracle.

    Rejected behaviors are classified in multiversion vocabulary: the
    dependency graph induced by the pseudotime version order and the
    value-inferred reads-from relation (black-box inference in the
    style of Vbox, arXiv 2503.05163) is searched for a cycle — the
    write-skew shape — and otherwise the first read that missed the
    latest version it should have observed is reported. *)

open Nt_base
open Nt_spec

type candidate = Pseudotime | Completion

val candidate_name : candidate -> string

type anomaly =
  | Stale_read of {
      obj : Obj_id.t;
      reader : Txn_id.t;
      got : Value.t;
      expected : Value.t;
    }
      (** A read returned an older version than the pseudotime replay
          produces — the stale-read / lost-update family. *)
  | Mv_cycle of Txn_id.t list
      (** The inferred multiversion dependency graph (ww edges in
          version order, wr from inferred sources, rw
          anti-dependencies), projected to top-level transactions, is
          cyclic — the write-skew family. *)
  | Unordered of Obj_id.t
      (** The pseudotime order fails to totally order the visible
          accesses of an object. *)

val pp_anomaly : Format.formatter -> anomaly -> unit

val anomaly_tag : anomaly -> string
(** Stable short tag: ["stale-read"], ["mv-cycle"], ["unordered"]. *)

type verdict = {
  essn_ok : bool;
  certified_by : candidate option;  (** Which candidate certified. *)
  order : Sibling_order.t option;
      (** The certifying order — the witness for differential replay. *)
  failures : (candidate * string) list;
      (** Why each tried candidate failed, in trial order. *)
  anomaly : anomaly option;  (** Classification of a rejection. *)
}

val check : ?mode:Sg.conflict_mode -> Schema.t -> Trace.t -> verdict
(** Decide the criterion for one behavior (inform actions are stripped
    via [Trace.serial]).  The pseudotime candidate is tried first so a
    multiversion behavior's witness is the timestamp order whenever it
    certifies; [mode] (default [Operation_level]) selects the SG
    construction behind the completion candidate. *)

val holds : ?mode:Sg.conflict_mode -> Schema.t -> Trace.t -> bool

val describe : verdict -> string
(** One-line rendering: the certifying candidate, or each candidate's
    failure plus the anomaly classification. *)
