open Nt_base
open Nt_spec

exception Not_totally_ordered of Txn_id.t * Txn_id.t

let view (schema : Schema.t) trace ~to_ order x =
  let vis = Trace.visible trace ~to_ in
  let ops = Trace.operations schema.sys vis x in
  let compare_ops (t, _) (t', _) =
    if Txn_id.equal t t' then 0
    else
      match Sibling_order.compare_trans order t t' with
      | Some c -> c
      | None -> raise (Not_totally_ordered (t, t'))
  in
  List.stable_sort compare_ops ops

let view_ops schema trace ~to_ order x =
  List.map
    (fun (t, v) -> (schema.Schema.op_of t, v))
    (view schema trace ~to_ order x)
