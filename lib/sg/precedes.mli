(** The [precedes(beta)] relation on siblings (Section 4).

    [(T, T') ∈ precedes(beta)] iff [T] and [T'] are siblings whose
    common parent is visible to [T0] in [beta], and a report event for
    [T] (a [Report_commit] or [Report_abort]) occurs in [beta] before a
    [Request_create(T')].  Informally: the parent learned [T]'s fate
    before asking for [T'], so external consistency pins their order.
    These are the "precedence edges" of the serialization graph. *)

open Nt_base

val relation : Trace.t -> (Txn_id.t * Txn_id.t) list
(** All precedes pairs of the given trace (pass [serial(beta)]).
    Duplicates removed; order unspecified. *)
