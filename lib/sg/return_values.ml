open Nt_base
open Nt_spec

let violating_object (schema : Schema.t) trace =
  let vis = Trace.visible trace ~to_:Txn_id.root in
  List.find_opt
    (fun x ->
      let ops = Schema.operations schema vis x in
      not (Serial_spec.legal (schema.dtype_of x) ops))
    schema.objects

let appropriate_general schema trace = violating_object schema trace = None

let appropriate_rw (schema : Schema.t) trace =
  let vis = Trace.visible trace ~to_:Txn_id.root in
  let n = Trace.length vis in
  let rec go i =
    if i >= n then true
    else
      match Trace.get vis i with
      | Action.Request_commit (t, v) when System_type.is_access schema.sys t
        -> (
          let x = System_type.object_of_exn schema.sys t in
          match Rw.kind_of schema t with
          | Some (`Write _) -> Value.equal v Value.Ok && go (i + 1)
          | Some `Read ->
              Value.equal v (Rw.final_value schema (Trace.prefix vis i) x)
              && go (i + 1)
          | None -> false)
      | _ -> go (i + 1)
  in
  go 0

let read_event (schema : Schema.t) trace i =
  match Trace.get trace i with
  | Action.Request_commit (t, v) when System_type.is_access schema.sys t -> (
      match Rw.kind_of schema t with
      | Some `Read -> Some (t, v, System_type.object_of_exn schema.sys t)
      | _ -> None)
  | _ -> None

let current schema trace i =
  match read_event schema trace i with
  | None -> false
  | Some (_, v, x) ->
      Value.equal v (Rw.clean_final_value schema (Trace.prefix trace i) x)

let safe schema trace i =
  match read_event schema trace i with
  | None -> false
  | Some (t, _, x) -> (
      let before = Trace.prefix trace i in
      match Rw.clean_last_write schema before x with
      | None -> true
      | Some w -> Trace.visible_txn before ~to_:t w)

let lemma6_conditions (schema : Schema.t) trace =
  (* Work on event indices of the full serial trace so that current/safe
     see the right prefixes; membership in visible(beta,T0) is tested
     per event. *)
  let comm = Trace.committed trace in
  let vis_to_root u =
    List.for_all
      (fun a -> Txn_id.Set.mem a comm)
      (Txn_id.ancestors_upto u ~upto:Txn_id.root)
  in
  let n = Trace.length trace in
  let rec go i =
    if i >= n then true
    else
      match Trace.get trace i with
      | Action.Request_commit (t, v)
        when System_type.is_access schema.sys t && vis_to_root t -> (
          match Rw.kind_of schema t with
          | Some (`Write _) -> Value.equal v Value.Ok && go (i + 1)
          | Some `Read -> current schema trace i && safe schema trace i && go (i + 1)
          | None -> false)
      | _ -> go (i + 1)
  in
  go 0
