open Nt_base

type failure =
  | Unordered_siblings of Txn_id.t * Txn_id.t
  | Event_cycle of int list

let visible_indices trace ~to_ =
  let comm = Trace.committed trace in
  let memo = Txn_id.Tbl.create 64 in
  let vis u =
    match Txn_id.Tbl.find_opt memo u with
    | Some b -> b
    | None ->
        let b =
          List.for_all
            (fun a -> Txn_id.Set.mem a comm)
            (Txn_id.ancestors_upto u ~upto:to_)
        in
        Txn_id.Tbl.add memo u b;
        b
    in
  let n = Trace.length trace in
  let idx = ref [] in
  for i = n - 1 downto 0 do
    let a = Trace.get trace i in
    if Action.is_serial a then
      match Action.hightransaction a with
      | Some u when vis u -> idx := i :: !idx
      | _ -> ()
  done;
  !idx

(* Condition (2) without the quadratic R_event edge set: the union of
   [affects] and [R_event] is acyclic iff the graph formed by the
   affects adjacency plus a {e rank-chain gadget} per ordered parent is
   acyclic.  For parent [P] with ranked children [c_1 < ... < c_k], a
   visible event whose lowtransaction descends through [c_r] gets an
   edge into gadget node [F(P, r)]; gadget edges [F(P, r) -> G(P, r+1)]
   and [G(P, s) -> G(P, s+1)] and [G(P, s) -> e] for events of rank
   [s] realize exactly the pairs [rank < rank'] — the R_event
   relation — with O(events x depth + ranks) edges. *)
let event_order_consistent trace ~to_ order vis =
  let n = Trace.length trace in
  (* Gadget node allocation. *)
  let next_node = ref n in
  let fresh () =
    let id = !next_node in
    incr next_node;
    id
  in
  let extra_edges : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let add_extra i j =
    let l = match Hashtbl.find_opt extra_edges i with Some l -> l | None -> [] in
    Hashtbl.replace extra_edges i (j :: l)
  in
  (* Per parent: arrays of F and G nodes per rank, built lazily. *)
  let gadgets = Txn_id.Tbl.create 16 in
  let gadget_of parent =
    match Txn_id.Tbl.find_opt gadgets parent with
    | Some g -> g
    | None ->
        let children = Sibling_order.ordered_children order parent in
        let k = List.length children in
        let rank_of = Txn_id.Tbl.create k in
        List.iteri (fun r c -> Txn_id.Tbl.add rank_of c r) children;
        let f = Array.init k (fun _ -> fresh ()) in
        let g = Array.init k (fun _ -> fresh ()) in
        (* F(r) -> G(r+1); G(s) -> G(s+1). *)
        for r = 0 to k - 2 do
          add_extra f.(r) g.(r + 1);
          add_extra g.(r) g.(r + 1)
        done;
        let gadget = (rank_of, f, g) in
        Txn_id.Tbl.add gadgets parent gadget;
        gadget
  in
  (* Wire each visible event into the gadgets of every ordered ancestor
     parent of its lowtransaction. *)
  List.iter
    (fun i ->
      match Action.lowtransaction (Trace.get trace i) with
      | None -> ()
      | Some low ->
          List.iter
            (fun parent ->
              if not (Txn_id.equal parent low) then begin
                let child = Txn_id.child_of_on_path ~ancestor:parent low in
                let rank_of, f, g = gadget_of parent in
                match Txn_id.Tbl.find_opt rank_of child with
                | Some r ->
                    add_extra i f.(r);
                    add_extra g.(r) i
                | None -> ()
              end)
            (Txn_id.ancestors low))
    vis;
  (* DFS over affects adjacency + gadget edges. *)
  let affects = Trace.affects_adjacency trace in
  let total = !next_node in
  let succ i =
    let base = if i < n then affects.(i) else [] in
    match Hashtbl.find_opt extra_edges i with
    | Some l -> l @ base
    | None -> base
  in
  let color = Array.make total 0 in
  let cycle = ref None in
  let rec visit path i =
    match color.(i) with
    | 2 -> ()
    | 1 ->
        let rec cut = function
          | [] -> []
          | x :: rest -> if x = i then [ x ] else x :: cut rest
        in
        (* Report only real event indices in the witness. *)
        cycle :=
          Some (List.filter (fun x -> x < n) (List.rev (cut (List.tl path))))
    | _ ->
        color.(i) <- 1;
        List.iter (fun j -> if !cycle = None then visit (j :: path) j) (succ i);
        color.(i) <- 2
  in
  for i = 0 to total - 1 do
    if !cycle = None then visit [ i ] i
  done;
  ignore to_;
  !cycle

let check trace ~to_ order =
  let vis = visible_indices trace ~to_ in
  (* Condition (1): all sibling lowtransaction pairs are ordered. *)
  let lowtxns =
    List.filter_map (fun i -> Action.lowtransaction (Trace.get trace i)) vis
    |> List.sort_uniq Txn_id.compare
  in
  let rec pairs_ok = function
    | [] -> Ok ()
    | t :: rest -> (
        match
          List.find_opt
            (fun t' ->
              Txn_id.siblings t t' && not (Sibling_order.orders_pair order t t'))
            rest
        with
        | Some t' -> Error (Unordered_siblings (t, t'))
        | None -> pairs_ok rest)
  in
  match pairs_ok lowtxns with
  | Error e -> Error e
  | Ok () -> (
      match event_order_consistent trace ~to_ order vis with
      | Some c -> Error (Event_cycle c)
      | None -> Ok ())

let is_suitable trace ~to_ order =
  match check trace ~to_ order with Ok () -> true | Error _ -> false
