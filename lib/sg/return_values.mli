(** Appropriate return values (Sections 3.2, 3.3 and 6.1).

    The hypothesis the classical theory makes implicitly: once aborted
    and uncommitted activity is discarded, every access response is the
    one the object's serial specification would give.

    Three formulations are provided, matching the paper:
    {ul
    {- the {e general} definition (Section 6.1): for each object [X],
       [perform(operations(visible(beta,T0)|X))] is a behavior of
       [S_X];}
    {- the {e read/write} definition (Section 3.2): writes return [Ok]
       and each read returns [final-value] of the visible prefix before
       it — Lemma 5 proves this equivalent to the general one on
       read/write schemas, and the tests check that equivalence;}
    {- the {e current & safe} sufficient conditions (Section 3.3,
       Lemma 6), checkable at the moment a read responds, which is how
       Moss' algorithm is proved to deliver appropriate values.}} *)

open Nt_base
open Nt_spec

val appropriate_general : Schema.t -> Trace.t -> bool
(** Section 6.1 definition.  Pass [serial(beta)]. *)

val violating_object : Schema.t -> Trace.t -> Obj_id.t option
(** The first object whose visible operations fail to replay, for
    diagnostics; [None] iff {!appropriate_general}. *)

val appropriate_rw : Schema.t -> Trace.t -> bool
(** Section 3.2 definition (read/write schemas only). *)

val current : Schema.t -> Trace.t -> int -> bool
(** [current schema beta i]: event [i] is a read's [Request_commit]
    and returns [clean-final-value] of the prefix before it. *)

val safe : Schema.t -> Trace.t -> int -> bool
(** [safe schema beta i]: the [clean-last-write] before event [i] is
    undefined or visible to the reading access in that prefix. *)

val lemma6_conditions : Schema.t -> Trace.t -> bool
(** Conditions (1) and (2) of Lemma 6 on [serial(beta)]: every visible
    write returns [Ok] and every visible read is current and safe.
    By Lemma 6 this implies {!appropriate_general} (tests assert it). *)
