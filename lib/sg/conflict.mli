(** The [conflict(beta)] relation on siblings (Sections 4 and 6).

    [(T, T') ∈ conflict(beta)] iff [T] and [T'] are siblings and there
    are [Request_commit] events [phi] (for an access [U], a descendant
    of [T]) and [phi'] (for [U'], a descendant of [T']) in
    [visible(beta, T0)], in that order, whose operations conflict.

    Two notions of operation conflict are supported:
    {ul
    {- [Access_level] (Section 4): the {e accesses} conflict — for
       registers, "at least one is a write" — regardless of the return
       values actually recorded;}
    {- [Operation_level] (Section 6): the operations [(U, v)], [(U', v')]
       fail to commute backwards, taking the recorded values into
       account (e.g. two writes of the same datum do not conflict).}}
    [Access_level] edges always include the [Operation_level] ones, so
    both yield sound serialization graphs; the paper's Section 4
    construction is the access-level one. *)

open Nt_base
open Nt_spec

type mode = Access_level | Operation_level

val relation : mode -> Schema.t -> Trace.t -> (Txn_id.t * Txn_id.t) list
(** All conflict pairs of the given trace (pass [serial(beta)]).
    Duplicates are removed; order is unspecified. *)

type witness = {
  source : Txn_id.t;
  target : Txn_id.t;
  source_access : Txn_id.t * Value.t;
      (** The earlier conflicting operation (access name, return). *)
  target_access : Txn_id.t * Value.t;  (** The later one. *)
}

val relation_with_witnesses : mode -> Schema.t -> Trace.t -> witness list
(** Like {!relation}, but each edge carries one pair of conflicting
    operations that induced it — the provenance {!Checker.explain}
    prints when a graph turns out cyclic. *)
