open Nt_base
open Nt_spec

let node_id t = "\"" ^ Txn_id.to_string t ^ "\""

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let of_graph ?(cycle = []) ?edge_label g =
  let on_cycle t = List.exists (Txn_id.equal t) cycle in
  let cycle_edges =
    match cycle with
    | [] -> []
    | _ ->
        let arr = Array.of_list cycle in
        Array.to_list
          (Array.mapi
             (fun i t -> (t, arr.((i + 1) mod Array.length arr)))
             arr)
  in
  let is_cycle_edge a b =
    List.exists
      (fun (c, d) -> Txn_id.equal a c && Txn_id.equal b d)
      cycle_edges
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph SG {\n  rankdir=LR;\n  node [shape=box];\n";
  (* Group nodes by parent into clusters. *)
  let by_parent = Txn_id.Tbl.create 16 in
  List.iter
    (fun t ->
      match Txn_id.parent t with
      | None -> ()
      | Some p ->
          let l =
            match Txn_id.Tbl.find_opt by_parent p with Some l -> l | None -> []
          in
          Txn_id.Tbl.replace by_parent p (t :: l))
    (Graph.nodes g);
  let cluster_index = ref 0 in
  Txn_id.Tbl.iter
    (fun parent children ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"children of %s\";\n"
           !cluster_index (Txn_id.to_string parent));
      incr cluster_index;
      List.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "    %s%s;\n" (node_id t)
               (if on_cycle t then " [color=red, fontcolor=red]" else "")))
        (List.rev children);
      Buffer.add_string buf "  }\n")
    by_parent;
  List.iter
    (fun (a, b) ->
      let attrs =
        (if is_cycle_edge a b then [ "color=red"; "penwidth=2" ] else [])
        @
        match edge_label with
        | None -> []
        | Some f -> (
            match f a b with
            | None -> []
            | Some l -> [ Printf.sprintf "label=\"%s\"" (escape_label l) ])
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s%s;\n" (node_id a) (node_id b)
           (match attrs with
           | [] -> ""
           | _ -> " [" ^ String.concat ", " attrs ^ "]")))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_trace ?mode (schema : Schema.t) trace =
  let mode = match mode with Some m -> m | None -> Sg.Operation_level in
  let beta = Trace.serial trace in
  let g = Sg.build mode schema beta in
  let cycle = Option.value ~default:[] (Graph.find_cycle g) in
  of_graph ~cycle g
