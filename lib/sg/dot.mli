(** Graphviz rendering of serialization graphs.

    Produces DOT text with one cluster per parent (the disjoint
    [SG(beta, T)] components), conflict/precedes edges, and an
    optional highlighted witness cycle — handy for inspecting why a
    behavior was rejected ([ntsim --dot]). *)

open Nt_base
open Nt_spec

val of_graph :
  ?cycle:Txn_id.t list ->
  ?edge_label:(Txn_id.t -> Txn_id.t -> string option) ->
  Graph.t ->
  string
(** Render a graph; nodes on the given cycle (and the edges between
    consecutive cycle nodes) are drawn in red.  [edge_label] may
    attach a label to any edge (escaped for DOT) — {!Monitor.dot}
    uses it to print each edge's witnessing accesses. *)

val of_trace : ?mode:Sg.conflict_mode -> Schema.t -> Trace.t -> string
(** Build [SG(serial beta)] and render it, highlighting a witness
    cycle if one exists.  Default mode as in {!Checker.check}. *)
