(** The [view(beta, T, R, X)] sequence (Section 2.3.2).

    The operations of [X] visible to [T] in [beta], reordered by
    [R_trans] on their transaction components.  This is the sequence
    the Serializability Theorem requires to be a behavior of [S_X]. *)

open Nt_base
open Nt_spec

exception Not_totally_ordered of Txn_id.t * Txn_id.t
(** Raised when [R_trans] fails to order two access transactions whose
    operations both appear — i.e. the supplied order is not suitable. *)

val view :
  Schema.t ->
  Trace.t ->
  to_:Txn_id.t ->
  Sibling_order.t ->
  Obj_id.t ->
  (Txn_id.t * Value.t) list
(** The ordered operations (with their access names).  Pass
    [serial(beta)]. *)

val view_ops :
  Schema.t ->
  Trace.t ->
  to_:Txn_id.t ->
  Sibling_order.t ->
  Obj_id.t ->
  Serial_spec.operation list
(** {!view} translated to [(op, v)] pairs ready for replay against the
    object's sequential specification. *)
