open Nt_base
open Nt_spec

type failure =
  | Orphan
  | Not_suitable of Suitability.failure
  | View_not_ordered of Txn_id.t * Txn_id.t
  | View_illegal of Obj_id.t

let check ?(for_txn = Txn_id.root) (schema : Schema.t) order trace =
  let beta = Trace.serial trace in
  if Trace.is_orphan beta for_txn then Error Orphan
  else
    match Suitability.check beta ~to_:for_txn order with
    | Error f -> Error (Not_suitable f)
    | Ok () -> (
        let bad_view =
          List.find_map
            (fun x ->
              match View.view_ops schema beta ~to_:for_txn order x with
              | ops ->
                  if Serial_spec.legal (schema.dtype_of x) ops then None
                  else Some (View_illegal x)
              | exception View.Not_totally_ordered (a, b) ->
                  Some (View_not_ordered (a, b)))
            schema.objects
        in
        match bad_view with Some f -> Error f | None -> Ok ())

let holds ?for_txn schema order trace =
  match check ?for_txn schema order trace with Ok () -> true | Error _ -> false

let pp_failure fmt = function
  | Orphan -> Format.pp_print_string fmt "the transaction is an orphan"
  | Not_suitable (Suitability.Unordered_siblings (a, b)) ->
      Format.fprintf fmt "order does not relate siblings %a and %a" Txn_id.pp a
        Txn_id.pp b
  | Not_suitable (Suitability.Event_cycle idxs) ->
      Format.fprintf fmt
        "order conflicts with affects(beta): event cycle [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
           Format.pp_print_int)
        idxs
  | View_not_ordered (a, b) ->
      Format.fprintf fmt "view not totally ordered: %a vs %a" Txn_id.pp a
        Txn_id.pp b
  | View_illegal x ->
      Format.fprintf fmt "view of %a does not replay" Obj_id.pp x
