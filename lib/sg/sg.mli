(** The serialization graph [SG(beta)] (Section 4).

    [SG(beta)] is the union of disjoint graphs [SG(beta, T)], one per
    transaction [T] visible to [T0] in [beta]: nodes are children of
    [T], and there is an edge [T' -> T''] iff
    [(T', T'') ∈ precedes(beta) ∪ conflict(beta)].

    Only finitely many children ever appear in a finite trace; the
    executable graph's nodes are the lowtransactions of the events of
    [visible(beta, T0)] together with all edge endpoints — exactly the
    nodes a topological sort must order for the witness sibling order
    of Theorem 8 to be suitable. *)

open Nt_base
open Nt_spec

type conflict_mode = Conflict.mode = Access_level | Operation_level

val build : conflict_mode -> Schema.t -> Trace.t -> Graph.t
(** The serialization graph of [serial(beta)] (pass a trace of serial
    actions; {!Checker} strips inform actions for you). *)

val witness_order : Graph.t -> Sibling_order.t option
(** A sibling order obtained by topologically sorting each per-parent
    component; [None] iff the graph is cyclic.  This is the order
    [R] used in the proof of Theorem 8. *)

val sibling_order_of_topo : Txn_id.t list -> Sibling_order.t
(** Group a topological order of SG nodes into per-parent chains.
    Because SG edges only connect siblings, the per-parent
    subsequences of {e any} topological order respect every edge, so
    the result is a valid witness order whether the input comes from
    {!Graph.topological_sort} or from the incrementally maintained
    {!Graph.order}. *)
