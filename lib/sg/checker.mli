(** The executable Theorem 8 / Theorem 19.

    Given a behavior of a simple (or generic) system, decide the
    hypotheses of the main theorems — appropriate return values and
    acyclicity of [SG(serial(beta))] — and, when they hold,
    {e re-verify the conclusion independently}: extract the witness
    sibling order by topological sort, check it suitable, and replay
    every [view(beta, T0, R, X)] against the serial specification.
    A behavior that passes the full verdict is serially correct for
    [T0] with an explicitly checked witness, not merely by appeal to
    the theorem. *)

open Nt_base
open Nt_spec

type verdict = {
  appropriate : bool;  (** Appropriate return values (general defn). *)
  sg_nodes : int;
  sg_edges : int;
  acyclic : bool;
  cycle : Txn_id.t list option;  (** A witness cycle when not acyclic. *)
  order : Sibling_order.t option;  (** Witness order when acyclic. *)
  suitable : bool option;
      (** Re-verification: witness order is suitable ([None] when no
          witness exists). *)
  views_legal : bool option;
      (** Re-verification: every view replays in its [S_X]. *)
  serially_correct : bool;
      (** [appropriate && acyclic], with both re-verifications
          confirming — the theorem's conclusion, independently
          witnessed. *)
}

val check : ?mode:Sg.conflict_mode -> Schema.t -> Trace.t -> verdict
(** Full verdict on a trace (inform actions are stripped first).  The
    default conflict mode is [Operation_level] (the Section 6
    construction): its edges are a subset of the access-level ones, so
    it certifies everything the Section 4 graph does, plus behaviors —
    produced by commutativity-based protocols — where operations that
    conflict at the access level but commute with their actual return
    values run out of completion order.  Pass [~mode:Access_level] for
    the literal Section 4 construction. *)

val serially_correct : ?mode:Sg.conflict_mode -> Schema.t -> Trace.t -> bool
(** [(check schema trace).serially_correct]. *)

val pp_verdict : Format.formatter -> verdict -> unit

val explain : ?mode:Sg.conflict_mode -> Schema.t -> Trace.t -> string
(** A human-readable diagnosis of a rejected behavior: the first
    return-value violation (object, offending operation, expected
    value) and/or the witness cycle with the conflicting operations
    that induced each edge.  For accepted behaviors, a one-line
    confirmation with the witness order's top-level prefix. *)
