(** An online serialization-graph monitor.

    The offline {!Checker} re-derives everything from the whole trace;
    this monitor consumes a behavior one action at a time and maintains
    {e incrementally}:

    - visibility to [T0] (per-transaction counters of uncommitted
      ancestors, decremented as commits arrive);
    - the visible operation sequence of each object, replayed against
      its serial specification as operations {e become} visible —
      raising {!constructor:Inappropriate} the moment a return value
      is shown impossible;
    - the serialization graph ([conflict ∪ precedes] over visible
      activity), with {e incremental} cycle detection on every edge
      insertion — raising {!constructor:Cycle} with the witness.  The
      graph maintains a topological order (Pearce–Kelly; see
      {!Graph.add_edge_checked}), so an insertion that respects the
      order is O(1) and the rest search only the affected region:
      monitoring a trace costs near-linearly in its length instead of
      a full graph traversal per edge.

    Because every prefix of a generic behavior is itself a behavior,
    a protocol that is serially correct for all behaviors never trips
    the monitor (asserted by the tests over Moss, undo-logging and
    commutativity-locking executions); broken protocols trip it at the
    earliest prefix that betrays them, which is what makes it usable
    as a runtime bug detector (Experiment E5 measures the overhead). *)

open Nt_base
open Nt_spec
open Nt_obs

type t

type alarm =
  | Cycle of Txn_id.t list
      (** Inserting the latest edge closed this cycle in [SG]. *)
  | Inappropriate of Obj_id.t
      (** The object's visible operations no longer replay. *)

type counters = {
  feeds : int;  (** Actions consumed. *)
  operations : int;  (** Access responses recorded. *)
  edges : int;  (** SG edges inserted (deduplicated). *)
  cycle_alarms : int;
  inappropriate_alarms : int;
}
(** Cumulative health counters, so a caller can report on the monitor
    without retaining every {!feed} result. *)

val create : ?mode:Sg.conflict_mode -> Schema.t -> t
(** A fresh monitor (conflict mode defaulting to [Operation_level],
    as in {!Checker}). *)

val feed : ?obs:Obs.t -> t -> Action.t -> alarm list
(** Consume one action; returns the alarms it triggers (usually
    none).  The monitor is mutable.  When [obs] is given, alarms
    become instant events, edge insertions feed the [monitor.*]
    metrics and a [sg.edges] counter track. *)

val feed_batch : ?obs:Obs.t -> t -> Action.t list -> alarm list
(** Feed a burst of actions with their edge insertions coalesced:
    duplicates across the batch collapse to one insertion (first
    witness wins) and the cycle search runs once per distinct edge at
    the batch boundary.  Verdict-equivalent to feeding the actions
    one at a time — same final graph, same alarms — but cycle alarms
    (including one closed by the batch's last edge) are reported at
    the boundary, so per-action attribution is coarser.  Telemetry
    for the deferred edges is likewise emitted at the boundary. *)

val feed_trace : ?obs:Obs.t -> t -> Trace.t -> (int * alarm) list
(** Feed a whole trace; returns all alarms with the index of the
    triggering event. *)

val counters : t -> counters

val graph : t -> Graph.t
(** The current serialization graph (shared, do not mutate). *)

val alarmed : t -> bool
(** Whether any alarm has fired so far. *)

val witness_order : t -> Sibling_order.t option
(** The witness sibling order of Theorem 8, read directly off the
    topological order the incremental detector maintains (no final
    sort): the per-parent chains of {!Graph.order}.  Because SG edges
    only relate siblings, those chains respect every conflict and
    precedes edge, which is exactly what Theorem 8's proof requires
    of the order [R].  [None] once a cycle has been detected. *)

val visible_operations : t -> Obj_id.t -> (Txn_id.t * Value.t) list
(** The currently-visible operation sequence of an object, in response
    order — the sequence the monitor replays. *)

(** {2 Attribution}

    Every inserted edge remembers which pair of actions created it, so
    a {!constructor:Cycle} alarm can be explained access by access
    instead of as a bare list of transaction names.  Feed indices
    (1-based positions in the fed action sequence) serve as the
    logical timestamps. *)

type edge_kind = Conflict | Precedes

type endpoint = {
  who : Txn_id.t;
      (** The witnessing action's transaction: the access for conflict
          edges; the reported sibling / requested transaction for
          precedes edges. *)
  at : int;  (** Feed index of the witnessing action. *)
  where : Obj_id.t option;  (** The object, for conflict witnesses. *)
}

type provenance = { kind : edge_kind; before : endpoint; after : endpoint }
(** Why edge [a -> b] exists: [before] happened, then [after], and the
    pair forced the edge — the two conflicting accesses (in response
    order), or the sibling's report before the new sibling's request. *)

val edge_provenance : t -> Txn_id.t -> Txn_id.t -> provenance option
(** The first witness recorded for edge [a -> b] ([None] if the edge
    was never inserted). *)

val first_cycle : t -> Txn_id.t list option
(** The witness of the first {!constructor:Cycle} alarm, retained for
    rendering ({!dot}). *)

val cycle_witness :
  t -> Txn_id.t list -> (Txn_id.t * Txn_id.t * provenance option) list
(** The consecutive (wrapping) edges of a cycle with their provenance.
    For a cycle this monitor reported, every edge has [Some]. *)

val explain_cycle : t -> Txn_id.t list -> string
(** A human-readable witness chain, one line per edge:
    ["T0.1 -> T0.2 [conflict at X: T0.1.0.1@12 vs T0.2.3@17]"]. *)

val pp_provenance : Format.formatter -> provenance -> unit

(** {2 Admission speculation}

    For serving-time admission control (see [Nt_net.Admission]): decide
    {e before} performing a commit whether feeding it would close an SG
    cycle, without mutating the monitor.  The key structural fact (see
    DESIGN.md) is that in this construction only [Commit] actions can
    close a cycle — an access response of an uncommitted transaction is
    always deferred as a visibility item, and a [Request_create]
    precedes-edge targets a brand-new node with no outgoing edges — so
    vetoing exactly the cycle-closing commits keeps the graph acyclic
    with zero false negatives. *)

type prospective = (Txn_id.t * Txn_id.t * provenance) list
(** Edges a speculated action would insert, with the provenance each
    would be recorded under. *)

val prospective_commit_edges : t -> Txn_id.t -> prospective
(** The edges [feed t (Commit w)] would insert, with the provenance
    each would be recorded under — the visibility wakeups the commit
    triggers, simulated without mutating the monitor.  This is the
    dependency set a sharded admission controller ships to the
    cross-shard gate (see [Nt_shard.Spine]).  Raises
    [Invalid_argument] mid-{!feed_batch}, as {!commit_would_cycle}
    does. *)

val commit_would_cycle :
  t -> Txn_id.t -> (Txn_id.t list * prospective) option
(** [commit_would_cycle t w] — would [feed t (Commit w)] close an SG
    cycle?  Read-only: simulates the visibility wakeups the commit
    triggers, collects the edges they would insert and runs a joint
    reachability test ({!Graph.would_close_cycle}) over the current
    graph plus those edges.  [Some (cycle, edges)] gives the witness
    cycle (same convention as {!constructor:Cycle}) and the full
    prospective edge set for explanation.  Raises [Invalid_argument]
    mid-{!feed_batch} (the queued batch edges are not in the graph
    yet, so speculation would be unsound). *)

val explain_cycle_with : t -> prospective -> Txn_id.t list -> string
(** {!explain_cycle}, but resolving edges of the cycle against the
    prospective set first — for explaining a {!commit_would_cycle}
    verdict, whose closing edges were never inserted. *)

val dot : t -> string
(** The current graph rendered via {!Dot.of_graph}, each edge labelled
    with its witnessing actions and the first cycle (if any)
    highlighted. *)
