open Nt_base

(* The graph maintains, next to the adjacency sets, a topological order
   of its nodes (Pearce-Kelly): [ord] maps every node to a distinct
   integer such that ord(x) < ord(y) for every edge x -> y, as long as
   the graph is acyclic.  Inserting an edge a -> b with
   ord(a) < ord(b) is O(1); otherwise only the "affected region"
   (nodes with order between ord(b) and ord(a)) is searched and
   renumbered.  The forward search either certifies that no path
   b ~> a exists — so the region can be reordered and the order
   invariant restored — or returns that path as the witness of the
   cycle the new edge closes.

   Once a cycle-closing edge has been accepted, no topological order
   exists and the invariant cannot be repaired; the graph degrades to
   a per-insertion reachability search (exactly the cost profile a
   cyclic monitor run had anyway — after the first alarm every further
   verdict is already decided).  [first_cycle] caches the first
   witness, so acyclicity queries stay O(1) in both regimes.

   Node names are interned to dense integer ids at [add_node]: the hot
   paths (order lookups, the bounded searches, the renumbering) touch
   only int arrays and int sets, never hashing a transaction name.
   The search worklists reuse a round-stamped [mark] array, so a
   search allocates nothing proportional to the graph. *)

module Int_set = Set.Make (Int)

type t = {
  ids : int Txn_id.Tbl.t;  (* name -> dense id, assigned at add_node *)
  mutable names : Txn_id.t array;  (* id -> name *)
  mutable succ : Int_set.t array;
  mutable pred : Int_set.t array;
  mutable ord : int array;  (* id -> position; a permutation of 0..n-1 *)
  mutable mark : int array;  (* id -> round of last visit *)
  mutable parent_tmp : int array;  (* DFS tree of the current search *)
  mutable round : int;
  mutable n : int;
  mutable n_edges : int;
  mutable first_cycle : Txn_id.t list option;
  mutable n_cyclic_edges : int;
  mutable n_reorders : int;  (* cumulative nodes renumbered *)
}

let create () =
  {
    ids = Txn_id.Tbl.create 64;
    names = [||];
    succ = [||];
    pred = [||];
    ord = [||];
    mark = [||];
    parent_tmp = [||];
    round = 0;
    n = 0;
    n_edges = 0;
    first_cycle = None;
    n_cyclic_edges = 0;
    n_reorders = 0;
  }

let grow g =
  if g.n = Array.length g.names then begin
    let cap = max 16 (2 * g.n) in
    let extend a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 g.n;
      b
    in
    g.names <- extend g.names Txn_id.root;
    g.succ <- extend g.succ Int_set.empty;
    g.pred <- extend g.pred Int_set.empty;
    g.ord <- extend g.ord 0;
    g.mark <- extend g.mark 0;
    g.parent_tmp <- extend g.parent_tmp 0
  end

let intern g t =
  match Txn_id.Tbl.find_opt g.ids t with
  | Some i -> i
  | None ->
      grow g;
      let i = g.n in
      Txn_id.Tbl.add g.ids t i;
      g.names.(i) <- t;
      (* A fresh node goes to the end of the order: it has no edges
         yet, so any position is consistent. *)
      g.ord.(i) <- i;
      g.n <- i + 1;
      i

let add_node g t = ignore (intern g t)

type add_result = Ok of int | Cycle of Txn_id.t list

let mem_edge g a b =
  match (Txn_id.Tbl.find_opt g.ids a, Txn_id.Tbl.find_opt g.ids b) with
  | Some i, Some j -> Int_set.mem j g.succ.(i)
  | _ -> false

let n_nodes g = g.n
let n_edges g = g.n_edges
let is_acyclic g = g.n_cyclic_edges = 0
let reorders g = g.n_reorders

let successors g t =
  match Txn_id.Tbl.find_opt g.ids t with
  | None -> []
  | Some i ->
      Int_set.fold (fun j acc -> g.names.(j) :: acc) g.succ.(i) []
      |> List.sort Txn_id.compare

let predecessors g t =
  match Txn_id.Tbl.find_opt g.ids t with
  | None -> []
  | Some i ->
      Int_set.fold (fun j acc -> g.names.(j) :: acc) g.pred.(i) []
      |> List.sort Txn_id.compare

let iter_nodes g f =
  for i = 0 to g.n - 1 do
    f g.names.(i)
  done

let iter_edges g f =
  for i = 0 to g.n - 1 do
    Int_set.iter (fun j -> f g.names.(i) g.names.(j)) g.succ.(i)
  done

let fold_nodes g f acc =
  let acc = ref acc in
  for i = 0 to g.n - 1 do
    acc := f !acc g.names.(i)
  done;
  !acc

let fold_edges g f acc =
  let acc = ref acc in
  for i = 0 to g.n - 1 do
    Int_set.iter (fun j -> acc := f !acc g.names.(i) g.names.(j)) g.succ.(i)
  done;
  !acc

let nodes g = fold_nodes g (fun acc n -> n :: acc) [] |> List.sort Txn_id.compare

let edges g = fold_edges g (fun acc a b -> (a, b) :: acc) []

let rank g t = Option.map (fun i -> g.ord.(i)) (Txn_id.Tbl.find_opt g.ids t)

let order g =
  if g.n_cyclic_edges > 0 then None
  else begin
    (* Invert the permutation: position -> name. *)
    let out = Array.make g.n Txn_id.root in
    for i = 0 to g.n - 1 do
      out.(g.ord.(i)) <- g.names.(i)
    done;
    Some (Array.to_list out)
  end

(* Record the raw edge in both adjacency directions (the caller has
   ruled duplicates out). *)
let record_edge g i j =
  g.succ.(i) <- Int_set.add j g.succ.(i);
  g.pred.(j) <- Int_set.add i g.pred.(j);
  g.n_edges <- g.n_edges + 1

let record_cycle g cycle =
  g.n_cyclic_edges <- g.n_cyclic_edges + 1;
  if g.first_cycle = None then g.first_cycle <- Some cycle

let path_of_parents g ~src ~dst =
  let rec walk acc i =
    if i = src then g.names.(i) :: acc
    else walk (g.names.(i) :: acc) g.parent_tmp.(i)
  in
  walk [] dst

(* Forward DFS from [src] over nodes with ord <= [ub].  Returns the
   path src ... dst if [dst] is reached, otherwise the list of visited
   ids (the forward half of the affected region). *)
let bounded_forward g ~src ~dst ~ub =
  g.round <- g.round + 1;
  let r = g.round in
  let found = ref false in
  let visited = ref [ src ] in
  let stack = ref [ src ] in
  g.mark.(src) <- r;
  g.parent_tmp.(src) <- src;
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        if i = dst then found := true
        else
          Int_set.iter
            (fun j ->
              if g.mark.(j) <> r && g.ord.(j) <= ub then begin
                g.mark.(j) <- r;
                g.parent_tmp.(j) <- i;
                visited := j :: !visited;
                stack := j :: !stack
              end)
            g.succ.(i)
  done;
  if !found then Error (path_of_parents g ~src ~dst) else Stdlib.Ok !visited

(* Backward DFS from [src] over nodes with ord >= [lb]: the backward
   half of the affected region. *)
let bounded_backward g ~src ~lb =
  g.round <- g.round + 1;
  let r = g.round in
  let visited = ref [ src ] in
  let stack = ref [ src ] in
  g.mark.(src) <- r;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        Int_set.iter
          (fun j ->
            if g.mark.(j) <> r && g.ord.(j) >= lb then begin
              g.mark.(j) <- r;
              visited := j :: !visited;
              stack := j :: !stack
            end)
          g.pred.(i)
  done;
  !visited

(* Unbounded reachability search, used once the order is broken (the
   graph already has a cycle): does a path [src] ~> [dst] exist? *)
let find_path g src dst =
  g.round <- g.round + 1;
  let r = g.round in
  let found = ref false in
  let stack = ref [ src ] in
  g.mark.(src) <- r;
  g.parent_tmp.(src) <- src;
  while (not !found) && !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        if i = dst then found := true
        else
          Int_set.iter
            (fun j ->
              if g.mark.(j) <> r then begin
                g.mark.(j) <- r;
                g.parent_tmp.(j) <- i;
                stack := j :: !stack
              end)
            g.succ.(i)
  done;
  if !found then Some (path_of_parents g ~src ~dst) else None

let add_edge_checked g a b =
  let i = intern g a in
  let j = intern g b in
  if Int_set.mem j g.succ.(i) then Ok 0
  else if i = j then begin
    record_edge g i j;
    let cycle = [ a ] in
    record_cycle g cycle;
    Cycle cycle
  end
  else if g.n_cyclic_edges > 0 then begin
    (* Degraded regime: the order is beyond repair, fall back to plain
       reachability per insertion. *)
    record_edge g i j;
    match find_path g j i with
    | Some path ->
        record_cycle g path;
        Cycle path
    | None -> Ok 0
  end
  else
    let oa = g.ord.(i) and ob = g.ord.(j) in
    if oa < ob then begin
      (* The maintained order already proves no path b ~> a. *)
      record_edge g i j;
      Ok 0
    end
    else
      (* Every path b ~> a in an order-consistent graph runs through
         nodes ordered within [ob, oa], so the bounded searches are
         complete. *)
      match bounded_forward g ~src:j ~dst:i ~ub:oa with
      | Error path ->
          record_edge g i j;
          record_cycle g path;
          Cycle path
      | Stdlib.Ok delta_f ->
          let delta_b = bounded_backward g ~src:i ~lb:ob in
          (* Renumber the affected region: the nodes reaching [a]
             (delta_b) take the smallest of the pooled positions, in
             their old relative order, followed by the nodes reachable
             from [b] (delta_f).  Everything outside the region keeps
             its position, so all other edges stay consistent. *)
          let by_ord l =
            List.sort (fun x y -> compare g.ord.(x) g.ord.(y)) l
          in
          let l = by_ord delta_b @ by_ord delta_f in
          let pool =
            List.sort (fun (x : int) y -> compare x y)
              (List.map (fun x -> g.ord.(x)) l)
          in
          List.iter2 (fun x o -> g.ord.(x) <- o) l pool;
          let moved = List.length l in
          g.n_reorders <- g.n_reorders + moved;
          record_edge g i j;
          Ok moved

let add_edge g a b = ignore (add_edge_checked g a b)

(* Read-only joint cycle test over G u extra, for admission control:
   would inserting all of [extra] at once close a cycle?  Nothing is
   interned or recorded, so a veto leaves the graph untouched — the
   speculating caller can simply not perform the commit.  Endpoints
   unknown to the graph are fine (they have no recorded edges).  An
   extra edge (a, b) closes a cycle iff a path b ~> a exists in the
   joint graph; the witness follows the {!add_result} convention:
   the path [b ... a], so consecutive elements (wrapping) are edges. *)
let would_close_cycle g extra =
  let extra = List.filter (fun (a, b) -> not (mem_edge g a b)) extra in
  match List.find_opt (fun (a, b) -> Txn_id.equal a b) extra with
  | Some (a, _) -> Some [ a ]
  | None when extra = [] -> None
  | None ->
      let adj = Txn_id.Tbl.create 8 in
      List.iter
        (fun (a, b) ->
          let cur = Option.value ~default:[] (Txn_id.Tbl.find_opt adj a) in
          Txn_id.Tbl.replace adj a (b :: cur))
        extra;
      let succs t =
        Option.value ~default:[] (Txn_id.Tbl.find_opt adj t) @ successors g t
      in
      let check (a, b) =
        let parent = Txn_id.Tbl.create 16 in
        Txn_id.Tbl.replace parent b b;
        let stack = ref [ b ] in
        let found = ref false in
        while (not !found) && !stack <> [] do
          match !stack with
          | [] -> ()
          | u :: rest ->
              stack := rest;
              if Txn_id.equal u a then found := true
              else
                List.iter
                  (fun v ->
                    if not (Txn_id.Tbl.mem parent v) then begin
                      Txn_id.Tbl.replace parent v u;
                      stack := v :: !stack
                    end)
                  (succs u)
        done;
        if not !found then None
        else begin
          let rec walk acc u =
            if Txn_id.equal u b then u :: acc
            else walk (u :: acc) (Txn_id.Tbl.find parent u)
          in
          Some (walk [] a)
        end
      in
      List.find_map check extra

(* Iterative three-color DFS returning a cycle if one exists — the
   from-scratch reference the incremental detector is differentially
   tested against.  Roots are taken in {!Txn_id.compare} order so the
   witness is reproducible. *)
let find_cycle_scratch g =
  let color = Array.make (max 1 g.n) 0 in
  (* 0 = white, 1 = gray, 2 = black *)
  let result = ref None in
  let rec visit path i =
    match color.(i) with
    | 2 -> ()
    | 1 ->
        (* Back edge.  [path] is reversed and its head is the revisited
           node [i]; the cycle is everything after that head up to and
           including the previous occurrence of [i]. *)
        let rec cut = function
          | [] -> []
          | x :: rest -> if x = i then [ x ] else x :: cut rest
        in
        result :=
          Some (List.rev_map (fun x -> g.names.(x)) (cut (List.tl path)))
    | _ ->
        color.(i) <- 1;
        Int_set.iter
          (fun j -> if !result = None then visit (j :: path) j)
          g.succ.(i);
        color.(i) <- 2
  in
  List.iter
    (fun t ->
      if !result = None then
        let i = Txn_id.Tbl.find g.ids t in
        visit [ i ] i)
    (nodes g);
  Option.map List.rev !result

let find_cycle g = if g.n_cyclic_edges = 0 then None else g.first_cycle

let topological_sort g =
  if g.n_cyclic_edges > 0 then None
  else begin
    let indegree = Array.make (max 1 g.n) 0 in
    for i = 0 to g.n - 1 do
      Int_set.iter (fun j -> indegree.(j) <- indegree.(j) + 1) g.succ.(i)
    done;
    (* Kahn's algorithm with a sorted frontier: a canonical order with
       ties broken by {!Txn_id.compare}, independent of insertion
       history (unlike {!order}). *)
    let module S = Set.Make (struct
      type t = Txn_id.t * int

      let compare (a, _) (b, _) = Txn_id.compare a b
    end) in
    let frontier = ref S.empty in
    for i = 0 to g.n - 1 do
      if indegree.(i) = 0 then frontier := S.add (g.names.(i), i) !frontier
    done;
    let out = ref [] and count = ref 0 in
    while not (S.is_empty !frontier) do
      let ((name, i) as el) = S.min_elt !frontier in
      frontier := S.remove el !frontier;
      out := name :: !out;
      incr count;
      Int_set.iter
        (fun j ->
          let d = indegree.(j) - 1 in
          indegree.(j) <- d;
          if d = 0 then frontier := S.add (g.names.(j), j) !frontier)
        g.succ.(i)
    done;
    if !count = g.n then Some (List.rev !out) else None
  end
