open Nt_base

type t = { adj : Txn_id.Set.t Txn_id.Tbl.t }

let create () = { adj = Txn_id.Tbl.create 64 }

let add_node g n =
  if not (Txn_id.Tbl.mem g.adj n) then Txn_id.Tbl.add g.adj n Txn_id.Set.empty

let add_edge g a b =
  add_node g a;
  add_node g b;
  let succ = Txn_id.Tbl.find g.adj a in
  Txn_id.Tbl.replace g.adj a (Txn_id.Set.add b succ)

let mem_edge g a b =
  match Txn_id.Tbl.find_opt g.adj a with
  | Some s -> Txn_id.Set.mem b s
  | None -> false

let nodes g =
  Txn_id.Tbl.fold (fun n _ acc -> n :: acc) g.adj [] |> List.sort Txn_id.compare

let edges g =
  Txn_id.Tbl.fold
    (fun a succ acc -> Txn_id.Set.fold (fun b acc -> (a, b) :: acc) succ acc)
    g.adj []

let n_nodes g = Txn_id.Tbl.length g.adj
let n_edges g = Txn_id.Tbl.fold (fun _ s acc -> acc + Txn_id.Set.cardinal s) g.adj 0

let successors g n =
  match Txn_id.Tbl.find_opt g.adj n with
  | Some s -> Txn_id.Set.elements s
  | None -> []

(* Iterative three-color DFS returning a cycle if one exists. *)
let find_cycle g =
  let color = Txn_id.Tbl.create (n_nodes g) in
  (* 0 = white (absent), 1 = gray, 2 = black *)
  let result = ref None in
  let rec visit path n =
    match Txn_id.Tbl.find_opt color n with
    | Some 2 -> ()
    | Some 1 ->
        (* Back edge.  [path] is reversed and its head is the revisited
           node [n]; the cycle is everything after that head up to and
           including the previous occurrence of [n]. *)
        let rec cut = function
          | [] -> []
          | x :: rest -> if Txn_id.equal x n then [ x ] else x :: cut rest
        in
        result := Some (List.rev (cut (List.tl path)))
    | _ ->
        Txn_id.Tbl.replace color n 1;
        List.iter
          (fun m -> if !result = None then visit (m :: path) m)
          (successors g n);
        Txn_id.Tbl.replace color n 2
  in
  List.iter (fun n -> if !result = None then visit [ n ] n) (nodes g);
  !result

let is_acyclic g = find_cycle g = None

let topological_sort g =
  let indegree = Txn_id.Tbl.create (n_nodes g) in
  List.iter (fun n -> Txn_id.Tbl.replace indegree n 0) (nodes g);
  List.iter
    (fun (_, b) -> Txn_id.Tbl.replace indegree b (Txn_id.Tbl.find indegree b + 1))
    (edges g);
  (* Kahn's algorithm with a sorted frontier for determinism. *)
  let module S = Set.Make (struct
    type t = Txn_id.t

    let compare = Txn_id.compare
  end) in
  let frontier =
    ref
      (List.fold_left
         (fun acc n -> if Txn_id.Tbl.find indegree n = 0 then S.add n acc else acc)
         S.empty (nodes g))
  in
  let out = ref [] and count = ref 0 in
  while not (S.is_empty !frontier) do
    let n = S.min_elt !frontier in
    frontier := S.remove n !frontier;
    out := n :: !out;
    incr count;
    List.iter
      (fun m ->
        let d = Txn_id.Tbl.find indegree m - 1 in
        Txn_id.Tbl.replace indegree m d;
        if d = 0 then frontier := S.add m !frontier)
      (successors g n)
  done;
  if !count = n_nodes g then Some (List.rev !out) else None
