open Nt_base
open Nt_spec

type candidate = Pseudotime | Completion

let candidate_name = function
  | Pseudotime -> "pseudotime"
  | Completion -> "completion"

type anomaly =
  | Stale_read of {
      obj : Obj_id.t;
      reader : Txn_id.t;
      got : Value.t;
      expected : Value.t;
    }
  | Mv_cycle of Txn_id.t list
  | Unordered of Obj_id.t

let pp_anomaly fmt = function
  | Stale_read { obj; reader; got; expected } ->
      Format.fprintf fmt "stale read: %a at %a returned %s, latest version %s"
        Txn_id.pp reader Obj_id.pp obj (Value.to_string got)
        (Value.to_string expected)
  | Mv_cycle c ->
      Format.fprintf fmt "multiversion dependency cycle: %s"
        (String.concat " -> " (List.map Txn_id.to_string c))
  | Unordered x ->
      Format.fprintf fmt "accesses of %a not totally ordered" Obj_id.pp x

let anomaly_tag = function
  | Stale_read _ -> "stale-read"
  | Mv_cycle _ -> "mv-cycle"
  | Unordered _ -> "unordered"

type verdict = {
  essn_ok : bool;
  certified_by : candidate option;
  order : Sibling_order.t option;
  failures : (candidate * string) list;
  anomaly : anomaly option;
}

(* ----- anomaly classification -----

   When no candidate order certifies, say *why* in multiversion
   vocabulary: build the dependency graph induced by the pseudotime
   version order and the value-inferred reads-from relation (Vbox-style
   black-box inference: a read's source is the unique writer of the
   value it returned), project the edges to top-level transactions and
   look for a cycle; otherwise report the first read that missed the
   latest version it should have seen. *)

let top_of u = Txn_id.child_of_on_path ~ancestor:Txn_id.root u

(* Find a cycle among top-level nodes of an adjacency list. *)
let find_cycle adj =
  let color = Hashtbl.create 16 in
  let result = ref None in
  let rec dfs path u =
    match Hashtbl.find_opt color u with
    | Some `Black -> ()
    | Some `Gray ->
        if !result = None then begin
          let rec cut = function
            | [] -> []
            | v :: rest ->
                if Txn_id.equal v u then [ v ] else v :: cut rest
          in
          result := Some (List.rev (u :: cut path))
        end
    | None ->
        Hashtbl.replace color u `Gray;
        List.iter
          (fun (a, b) -> if Txn_id.equal a u then dfs (u :: path) b)
          adj;
        Hashtbl.replace color u `Black
  in
  List.iter (fun (a, _) -> if !result = None then dfs [] a) adj;
  !result

(* A read's source version, inferred from its return value: [None]
   when ambiguous (several writers wrote that value), [Some (-1)] for
   the initial version, [Some i] for writer [i]. *)
let infer_source init writers v =
  let matching =
    List.mapi (fun i (_, w) -> (i, w)) writers
    |> List.filter (fun (_, w) -> Value.equal w v)
  in
  match matching with
  | [ (i, _) ] -> Some i
  | [] -> if Value.equal v init then Some (-1) else None
  | _ -> None

let classify (schema : Schema.t) beta =
  let order = Sibling_order.index_order beta in
  let edges = ref [] in
  let stale = ref None in
  let unordered = ref None in
  let add_edge a b =
    let a = top_of a and b = top_of b in
    if not (Txn_id.equal a b) then edges := (a, b) :: !edges
  in
  List.iter
    (fun x ->
      let dt = schema.Schema.dtype_of x in
      match View.view schema beta ~to_:Txn_id.root order x with
      | exception View.Not_totally_ordered _ ->
          if !unordered = None then unordered := Some (Unordered x)
      | view ->
          (* Replay in pseudotime order to spot the first read that
             returned something other than the latest version. *)
          let state = ref dt.Datatype.init in
          List.iter
            (fun (t, v) ->
              let op = schema.Schema.op_of t in
              let s', expected = dt.Datatype.apply !state op in
              (match op with
              | Datatype.Read
                when (not (Value.equal v expected)) && !stale = None ->
                  stale :=
                    Some (Stale_read { obj = x; reader = t; got = v; expected })
              | _ -> ());
              state := s')
            view;
          (* Multiversion dependency edges under the pseudotime
             version order: ww between consecutive writers, wr from a
             read's inferred source, rw to the version that follows
             the source. *)
          let writers =
            List.filter_map
              (fun (t, _) ->
                match schema.Schema.op_of t with
                | Datatype.Write w -> Some (t, w)
                | _ -> None)
              view
          in
          let warr = Array.of_list writers in
          Array.iteri
            (fun i (w, _) ->
              if i + 1 < Array.length warr then add_edge w (fst warr.(i + 1)))
            warr;
          List.iter
            (fun (t, v) ->
              match schema.Schema.op_of t with
              | Datatype.Read -> (
                  match infer_source dt.Datatype.init writers v with
                  | None -> ()
                  | Some i ->
                      if i >= 0 then add_edge (fst warr.(i)) t;
                      if i + 1 < Array.length warr then
                        add_edge t (fst warr.(i + 1)))
              | _ -> ())
            view)
    schema.Schema.objects;
  match find_cycle !edges with
  | Some c -> Some (Mv_cycle c)
  | None -> (
      match !stale with Some _ as s -> s | None -> !unordered)

(* ----- the criterion ----- *)

let check ?(mode = Sg.Operation_level) (schema : Schema.t) trace =
  let beta = Trace.serial trace in
  let completion =
    match Sg.witness_order (Sg.build mode schema beta) with
    | Some o -> [ (Completion, Some o) ]
    | None -> [ (Completion, None) ]
  in
  let candidates =
    (Pseudotime, Some (Sibling_order.index_order beta)) :: completion
  in
  let rec go failures = function
    | [] ->
        let anomaly = classify schema beta in
        {
          essn_ok = false;
          certified_by = None;
          order = None;
          failures = List.rev failures;
          anomaly;
        }
    | (c, None) :: rest ->
        go ((c, "serialization graph cyclic: no witness order") :: failures)
          rest
    | (c, Some order) :: rest -> (
        match Theorem2.check schema order trace with
        | Ok () ->
            {
              essn_ok = true;
              certified_by = Some c;
              order = Some order;
              failures = List.rev failures;
              anomaly = None;
            }
        | Error f ->
            go ((c, Format.asprintf "%a" Theorem2.pp_failure f) :: failures)
              rest)
  in
  go [] candidates

let holds ?mode schema trace = (check ?mode schema trace).essn_ok

let describe v =
  if v.essn_ok then
    Format.asprintf "certified by the %s order"
      (candidate_name
         (match v.certified_by with Some c -> c | None -> Pseudotime))
  else
    let reasons =
      List.map
        (fun (c, msg) -> Printf.sprintf "%s: %s" (candidate_name c) msg)
        v.failures
    in
    let anomaly =
      match v.anomaly with
      | None -> ""
      | Some a -> Format.asprintf " [%s: %a]" (anomaly_tag a) pp_anomaly a
    in
    String.concat "; " reasons ^ anomaly
