open Nt_base

let relation trace =
  let comm = Trace.committed trace in
  let parent_visible =
    let memo = Txn_id.Tbl.create 16 in
    fun p ->
      match Txn_id.Tbl.find_opt memo p with
      | Some b -> b
      | None ->
          let b =
            List.for_all
              (fun u -> Txn_id.Set.mem u comm)
              (Txn_id.ancestors_upto p ~upto:Txn_id.root)
          in
          Txn_id.Tbl.add memo p b;
          b
  in
  (* Earliest report index per transaction. *)
  let first_report = Txn_id.Tbl.create 64 in
  let n = Trace.length trace in
  for i = 0 to n - 1 do
    match Trace.get trace i with
    | Action.Report_commit (t, _) | Action.Report_abort t ->
        if not (Txn_id.Tbl.mem first_report t) then
          Txn_id.Tbl.add first_report t i
    | _ -> ()
  done;
  let pairs = Hashtbl.create 64 in
  for j = 0 to n - 1 do
    match Trace.get trace j with
    | Action.Request_create t' when not (Txn_id.is_root t') ->
        let p = Txn_id.parent_exn t' in
        if parent_visible p then
          Txn_id.Tbl.iter
            (fun t i ->
              if i < j && Txn_id.siblings t t' then
                Hashtbl.replace pairs (t, t') ())
            first_report
    | _ -> ()
  done;
  Hashtbl.fold (fun p () acc -> p :: acc) pairs []
