open Nt_base
open Nt_spec
open Nt_obs

type alarm = Cycle of Txn_id.t list | Inappropriate of Obj_id.t

type counters = {
  feeds : int;
  operations : int;
  edges : int;
  cycle_alarms : int;
  inappropriate_alarms : int;
}

type edge_kind = Conflict | Precedes

type endpoint = { who : Txn_id.t; at : int; where : Obj_id.t option }

type provenance = { kind : edge_kind; before : endpoint; after : endpoint }

(* What to do when a transaction becomes visible to T0. *)
type item =
  | Activate_op of Obj_id.t * int  (* seq within the object's op table *)
  | Activate_edge of Txn_id.t * Txn_id.t * provenance
  | Activate_node of Txn_id.t

type visibility = Visible | Dead | Pending of int

type op_record = {
  access : Txn_id.t;
  value : Value.t;
  seq : int;
  at : int;  (* feed index of the recording Request_commit *)
  mutable op_visible : bool;
}

type obj_state = {
  mutable ops : op_record list;  (* newest first *)
  mutable next_seq : int;
  mutable obj_alarmed : bool;
}

type t = {
  schema : Schema.t;
  mode : Sg.conflict_mode;
  g : Graph.t;
  committed : unit Txn_id.Tbl.t;
  aborted : unit Txn_id.Tbl.t;
  vis : visibility Txn_id.Tbl.t;
  waiters : Txn_id.t list Txn_id.Tbl.t;  (* ancestor -> dependents *)
  items : item list Txn_id.Tbl.t;  (* txn -> actions on visibility *)
  reported : (Txn_id.t * int) list Txn_id.Tbl.t;
      (* parent -> reported children, each with the report's feed index *)
  objects : obj_state Obj_id.Tbl.t;
  edge_prov : (Txn_id.t * Txn_id.t, provenance) Hashtbl.t;
      (* first witness per inserted edge (edges are deduplicated) *)
  mutable pending_edges : (Txn_id.t * Txn_id.t * provenance) list;
      (* edges inserted by the current feed, for the event stream *)
  mutable batch :
    ((Txn_id.t * Txn_id.t, unit) Hashtbl.t
    * (Txn_id.t * Txn_id.t * provenance) list ref)
    option;
      (* when feeding a batch, edges are coalesced here and inserted
         (deduplicated) at the batch boundary *)
  mutable first_cycle : Txn_id.t list option;
  mutable any_alarm : bool;
  mutable n_feeds : int;
  mutable n_operations : int;
  mutable n_cycle_alarms : int;
  mutable n_inappropriate_alarms : int;
}

let create ?mode schema =
  let mode = match mode with Some m -> m | None -> Sg.Operation_level in
  let objects = Obj_id.Tbl.create 16 in
  List.iter
    (fun x ->
      Obj_id.Tbl.add objects x { ops = []; next_seq = 0; obj_alarmed = false })
    schema.Schema.objects;
  {
    schema;
    mode;
    g = Graph.create ();
    committed = Txn_id.Tbl.create 64;
    aborted = Txn_id.Tbl.create 16;
    vis = Txn_id.Tbl.create 64;
    waiters = Txn_id.Tbl.create 64;
    items = Txn_id.Tbl.create 64;
    reported = Txn_id.Tbl.create 32;
    objects;
    edge_prov = Hashtbl.create 64;
    pending_edges = [];
    batch = None;
    first_cycle = None;
    any_alarm = false;
    n_feeds = 0;
    n_operations = 0;
    n_cycle_alarms = 0;
    n_inappropriate_alarms = 0;
  }

let graph t = t.g
let alarmed t = t.any_alarm

let counters t =
  {
    feeds = t.n_feeds;
    operations = t.n_operations;
    edges = Graph.n_edges t.g;
    cycle_alarms = t.n_cycle_alarms;
    inappropriate_alarms = t.n_inappropriate_alarms;
  }

(* The witness sibling order, read directly off the topological order
   the incremental detector maintains (Pearce-Kelly invariant: while
   no cycle has been detected, every inserted edge is forward in that
   order).  SG edges only relate siblings, so grouping the order by
   parent yields per-parent chains consistent with every edge — a
   valid witness order for Theorem 8, with no final topological sort
   over the finished graph.  [None] once a cycle alarm has fired. *)
let witness_order t = Option.map Sg.sibling_order_of_topo (Graph.order t.g)

(* Register [u] in the visibility tracker; returns its status. *)
let visibility t u =
  match Txn_id.Tbl.find_opt t.vis u with
  | Some v -> v
  | None ->
      let ancestors =
        List.filter (fun a -> not (Txn_id.is_root a)) (Txn_id.ancestors u)
      in
      let v =
        if List.exists (fun a -> Txn_id.Tbl.mem t.aborted a) ancestors then Dead
        else begin
          let missing =
            List.filter (fun a -> not (Txn_id.Tbl.mem t.committed a)) ancestors
          in
          match missing with
          | [] -> Visible
          | _ ->
              List.iter
                (fun a ->
                  let l =
                    match Txn_id.Tbl.find_opt t.waiters a with
                    | Some l -> l
                    | None -> []
                  in
                  Txn_id.Tbl.replace t.waiters a (u :: l))
                missing;
              Pending (List.length missing)
        end
      in
      Txn_id.Tbl.replace t.vis u v;
      v

let add_item t u item =
  let l = match Txn_id.Tbl.find_opt t.items u with Some l -> l | None -> [] in
  Txn_id.Tbl.replace t.items u (item :: l)

(* Insert through the incremental detector: {!Graph.add_edge_checked}
   maintains a topological order and searches only the region the new
   edge can disturb, so most insertions are O(1) and none re-walks the
   whole graph. *)
let really_insert t ~prov a b =
  Hashtbl.replace t.edge_prov (a, b) prov;
  t.pending_edges <- (a, b, prov) :: t.pending_edges;
  match Graph.add_edge_checked t.g a b with
  | Graph.Ok _ -> []
  | Graph.Cycle path ->
      (* path is b ... a; the cycle is that path (edge a->b closes it). *)
      t.any_alarm <- true;
      if t.first_cycle = None then t.first_cycle <- Some path;
      [ Cycle path ]

let insert_edge t ~prov a b =
  if Txn_id.equal a b then []
  else if Graph.mem_edge t.g a b then []
  else
    match t.batch with
    | None -> really_insert t ~prov a b
    | Some (seen, queue) ->
        (* Coalesce: first witness wins, the search happens once per
           distinct edge at the batch boundary. *)
        if Hashtbl.mem seen (a, b) then []
        else begin
          Hashtbl.add seen (a, b) ();
          queue := (a, b, prov) :: !queue;
          []
        end

let ops_conflict t (a, va) (b, vb) =
  match t.mode with
  | Sg.Operation_level -> Schema.operations_conflict t.schema (a, va) (b, vb)
  | Sg.Access_level -> Schema.accesses_conflict t.schema a b

(* An operation became visible: emit conflict edges; the replay check
   is deferred to the end of the fed action (a single commit can wake
   several operations, and replaying between the wakeups of one batch
   would examine a state no prefix of the behavior exhibits). *)
let activate_op t touched x seq =
  let ost = Obj_id.Tbl.find t.objects x in
  let record = List.find (fun r -> r.seq = seq) ost.ops in
  record.op_visible <- true;
  touched := x :: !touched;
  let alarms = ref [] in
  List.iter
    (fun other ->
      if
        other.seq <> seq && other.op_visible
        && (not (Txn_id.related record.access other.access))
        && ops_conflict t
             (record.access, record.value)
             (other.access, other.value)
      then begin
        let earlier, later =
          if other.seq < seq then (other, record) else (record, other)
        in
        let l = Txn_id.lca earlier.access later.access in
        let a = Txn_id.child_of_on_path ~ancestor:l earlier.access in
        let b = Txn_id.child_of_on_path ~ancestor:l later.access in
        let prov =
          {
            kind = Conflict;
            before = { who = earlier.access; at = earlier.at; where = Some x };
            after = { who = later.access; at = later.at; where = Some x };
          }
        in
        alarms := insert_edge t ~prov a b @ !alarms
      end)
    ost.ops;
  !alarms

(* Replay an object's visible sequence (end-of-action check). *)
let replay_object t x =
  let ost = Obj_id.Tbl.find t.objects x in
  if ost.obj_alarmed then []
  else begin
    let visible_ops =
      List.filter (fun r -> r.op_visible) ost.ops
      |> List.sort (fun r1 r2 -> compare r1.seq r2.seq)
      |> List.map (fun r -> (t.schema.Schema.op_of r.access, r.value))
    in
    if not (Serial_spec.legal (t.schema.Schema.dtype_of x) visible_ops) then begin
      ost.obj_alarmed <- true;
      t.any_alarm <- true;
      [ Inappropriate x ]
    end
    else []
  end

let run_item t touched = function
  | Activate_op (x, seq) -> activate_op t touched x seq
  | Activate_edge (a, b, prov) -> insert_edge t ~prov a b
  | Activate_node u ->
      Graph.add_node t.g u;
      []

(* A commit arrived: wake dependents. *)
let process_commit t touched w =
  Txn_id.Tbl.replace t.committed w ();
  let dependents =
    match Txn_id.Tbl.find_opt t.waiters w with Some l -> l | None -> []
  in
  Txn_id.Tbl.remove t.waiters w;
  List.concat_map
    (fun u ->
      match Txn_id.Tbl.find_opt t.vis u with
      | Some (Pending n) ->
          if n <= 1 then begin
            Txn_id.Tbl.replace t.vis u Visible;
            let items =
              match Txn_id.Tbl.find_opt t.items u with Some l -> l | None -> []
            in
            Txn_id.Tbl.remove t.items u;
            List.concat_map (run_item t touched) (List.rev items)
          end
          else begin
            Txn_id.Tbl.replace t.vis u (Pending (n - 1));
            []
          end
      | _ -> [])
    dependents

let process_abort t w =
  Txn_id.Tbl.replace t.aborted w ();
  (* Kill dependents transitively reachable via pending status. *)
  let kill u =
    match Txn_id.Tbl.find_opt t.vis u with
    | Some (Pending _) ->
        Txn_id.Tbl.replace t.vis u Dead;
        Txn_id.Tbl.remove t.items u
    | _ -> ()
  in
  (match Txn_id.Tbl.find_opt t.waiters w with
  | Some l -> List.iter kill l
  | None -> ());
  Txn_id.Tbl.remove t.waiters w;
  []

(* Alarm bookkeeping and telemetry shared by {!feed} and the batch
   flush: count the alarms, emit instants for them, and stream the
   edges inserted since [edges_before]. *)
let account ~obs t ~edges_before alarms =
  List.iter
    (fun alarm ->
      match alarm with
      | Cycle c ->
          t.n_cycle_alarms <- t.n_cycle_alarms + 1;
          if Obs.enabled obs then
            Obs.instant
              ?txn:(match c with u :: _ -> Some u | [] -> None)
              obs "monitor.cycle"
      | Inappropriate x ->
          t.n_inappropriate_alarms <- t.n_inappropriate_alarms + 1;
          if Obs.enabled obs then
            Obs.instant ~obj:x obs "monitor.inappropriate")
    alarms;
  if Obs.enabled obs then begin
    let m = Obs.metrics obs in
    let inserted = Graph.n_edges t.g - edges_before in
    if inserted > 0 then begin
      Metrics.incr ~by:inserted (Metrics.counter m "monitor.edges");
      Obs.counter_sample obs "sg.edges" (Graph.n_edges t.g);
      if Obs.emitting_edges obs then
        List.iter
          (fun (a, b, p) ->
            Obs.sg_edge ?obj:p.before.where obs ~src:a ~dst:b
              ~kind:(match p.kind with
                    | Conflict -> "conflict"
                    | Precedes -> "precedes")
              ~w1:p.before.who ~w1_ts:p.before.at ~w2:p.after.who
              ~w2_ts:p.after.at)
          (List.rev t.pending_edges)
    end;
    Metrics.observe (Metrics.histogram m "monitor.feed.edges") inserted;
    if alarms <> [] then
      Metrics.incr ~by:(List.length alarms) (Metrics.counter m "monitor.alarms")
  end;
  t.pending_edges <- []

let feed ?(obs = Obs.null) t (a : Action.t) =
  t.n_feeds <- t.n_feeds + 1;
  let now = t.n_feeds in
  let edges_before = Graph.n_edges t.g in
  let touched = ref [] in
  t.pending_edges <- [];
  (* Node tracking: the offline construction adds a node for the
     lowtransaction of every visible serial event.  Online it suffices
     to watch Commit/Abort actions — for any other serial event of u,
     visibility of the event implies Commit u occurred and is itself
     visible, so the Commit already supplies u's node; and a
     Request_create/Report event's lowtransaction is the parent, whose
     own Commit/Abort (or an ancestor chain ending at T0) covers it.
     This keeps isolated nodes no edge ever reaches in the graph,
     which the witness sibling order must still cover (suitability
     condition (1)). *)
  (match a with
  | Action.Commit u | Action.Abort u when not (Txn_id.is_root u) -> (
      let p = Txn_id.parent_exn u in
      if Txn_id.is_root p then Graph.add_node t.g u
      else
        match visibility t p with
        | Visible -> Graph.add_node t.g u
        | Pending _ -> add_item t p (Activate_node u)
        | Dead -> ())
  | _ -> ());
  let alarms =
    match a with
  | Action.Request_commit (u, v) when System_type.is_access t.schema.Schema.sys u
    -> (
      let x = System_type.object_of_exn t.schema.Schema.sys u in
      let ost = Obj_id.Tbl.find t.objects x in
      let seq = ost.next_seq in
      t.n_operations <- t.n_operations + 1;
      ost.next_seq <- seq + 1;
      ost.ops <-
        { access = u; value = v; seq; at = now; op_visible = false } :: ost.ops;
      match visibility t u with
      | Visible -> activate_op t touched x seq
      | Pending _ ->
          add_item t u (Activate_op (x, seq));
          []
      | Dead -> [])
  | Action.Commit u -> process_commit t touched u
  | Action.Abort u -> process_abort t u
  | Action.Report_commit (u, _) | Action.Report_abort u ->
      (if not (Txn_id.is_root u) then
         let p = Txn_id.parent_exn u in
         let l =
           match Txn_id.Tbl.find_opt t.reported p with Some l -> l | None -> []
         in
         if not (List.exists (fun (s, _) -> Txn_id.equal u s) l) then
           Txn_id.Tbl.replace t.reported p ((u, now) :: l));
      []
  | Action.Request_create u when not (Txn_id.is_root u) ->
      let p = Txn_id.parent_exn u in
      let siblings =
        match Txn_id.Tbl.find_opt t.reported p with Some l -> l | None -> []
      in
      List.concat_map
        (fun (sib, reported_at) ->
          let prov =
            {
              kind = Precedes;
              before = { who = sib; at = reported_at; where = None };
              after = { who = u; at = now; where = None };
            }
          in
          if Txn_id.is_root p then insert_edge t ~prov sib u
          else
            match visibility t p with
            | Visible -> insert_edge t ~prov sib u
            | Pending _ ->
                add_item t p (Activate_edge (sib, u, prov));
                []
            | Dead -> [])
        siblings
  | Action.Create _ | Action.Inform_commit _ | Action.Inform_abort _
  | Action.Request_commit _ | Action.Request_create _ ->
      []
  in
  let replay_alarms =
    List.sort_uniq Obj_id.compare !touched
    |> List.concat_map (replay_object t)
  in
  let all = alarms @ replay_alarms in
  account ~obs t ~edges_before all;
  all

(* Feed a burst of actions with their edge insertions coalesced: every
   edge the burst produces is queued (deduplicated, first witness
   wins) and inserted through the incremental detector only at the
   batch boundary.  Verdict-equivalent to feeding the actions one by
   one — the same edges enter the same graph — but cycle alarms are
   reported at the boundary rather than mid-batch, including a cycle
   closed by the batch's last edge. *)
let feed_batch ?(obs = Obs.null) t actions =
  let base =
    match t.batch with
    | Some _ -> invalid_arg "Monitor.feed_batch: already batching"
    | None ->
        t.batch <- Some (Hashtbl.create 16, ref []);
        List.concat_map (fun a -> feed ~obs t a) actions
  in
  let queued =
    match t.batch with Some (_, q) -> List.rev !q | None -> []
  in
  t.batch <- None;
  t.pending_edges <- [];
  let edges_before = Graph.n_edges t.g in
  let cycle_alarms =
    List.concat_map
      (fun (a, b, prov) ->
        if Graph.mem_edge t.g a b then [] else really_insert t ~prov a b)
      queued
  in
  account ~obs t ~edges_before cycle_alarms;
  base @ cycle_alarms

let feed_trace ?obs t trace =
  let alarms = ref [] in
  Array.iteri
    (fun i a ->
      List.iter (fun al -> alarms := (i, al) :: !alarms) (feed ?obs t a))
    trace;
  List.rev !alarms

let visible_operations t x =
  let ost = Obj_id.Tbl.find t.objects x in
  List.filter (fun r -> r.op_visible) ost.ops
  |> List.sort (fun r1 r2 -> compare r1.seq r2.seq)
  |> List.map (fun r -> (r.access, r.value))

(* --- Attribution ------------------------------------------------------- *)

let edge_provenance t a b = Hashtbl.find_opt t.edge_prov (a, b)
let first_cycle t = t.first_cycle

(* The consecutive (wrapping) edges of a cycle, with what inserted (or
   would insert) each.  [extra] supplies provenance for edges that are
   only prospective (admission speculation); everything else resolves
   against the recorded witnesses.  Every edge of a cycle reported by
   [feed] was inserted by this monitor, so the provenance is only
   [None] for a list that is not one of its cycles. *)
let cycle_witness_with t extra cycle =
  match cycle with
  | [] -> []
  | _ ->
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      List.init n (fun i ->
          let a = arr.(i) and b = arr.((i + 1) mod n) in
          let prov =
            match
              List.find_opt
                (fun (a', b', _) -> Txn_id.equal a a' && Txn_id.equal b b')
                extra
            with
            | Some (_, _, p) -> Some p
            | None -> edge_provenance t a b
          in
          (a, b, prov))

let cycle_witness t cycle = cycle_witness_with t [] cycle

let pp_provenance fmt p =
  match p.kind with
  | Conflict ->
      Format.fprintf fmt "conflict at %s: %s@%d vs %s@%d"
        (match p.before.where with Some x -> Obj_id.name x | None -> "?")
        (Txn_id.to_string p.before.who)
        p.before.at
        (Txn_id.to_string p.after.who)
        p.after.at
  | Precedes ->
      Format.fprintf fmt "precedes: %s reported@%d before %s requested@%d"
        (Txn_id.to_string p.before.who)
        p.before.at
        (Txn_id.to_string p.after.who)
        p.after.at

let explain_witness witness =
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  List.iter
    (fun (a, bb, prov) ->
      Format.fprintf fmt "%s -> %s [%a]@\n" (Txn_id.to_string a)
        (Txn_id.to_string bb)
        (fun fmt -> function
          | Some p -> pp_provenance fmt p
          | None -> Format.pp_print_string fmt "unknown edge")
        prov)
    witness;
  Format.pp_print_flush fmt ();
  Buffer.contents b

let explain_cycle t cycle = explain_witness (cycle_witness t cycle)

let explain_cycle_with t extra cycle =
  explain_witness (cycle_witness_with t extra cycle)

(* --- Admission speculation --------------------------------------------- *)

type prospective = (Txn_id.t * Txn_id.t * provenance) list

(* The edges [feed (Commit w)] would insert, computed without mutating
   anything: simulate the wakeups of {!process_commit} — dependents of
   [w] whose pending count would reach zero become visible and their
   queued items run — but collect the edges instead of inserting them.
   Operations "activated" earlier in the simulated batch are visible
   to later ones, exactly as in the real path, via the local [newly]
   set.  All other feed actions are edge-free or target fresh nodes
   (a [Request_commit] of an uncommitted access is always deferred as
   an item; a [Request_create] precedes-edge points at a brand-new
   node with no outgoing edges), so only commits can close a cycle and
   gating them on this edge set is a complete admission test. *)
let prospective_commit_edges t w =
  let dependents =
    match Txn_id.Tbl.find_opt t.waiters w with Some l -> l | None -> []
  in
  let woken =
    List.filter
      (fun u ->
        match Txn_id.Tbl.find_opt t.vis u with
        | Some (Pending n) -> n <= 1
        | _ -> false)
      dependents
  in
  let newly : (Obj_id.t * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let candidate a b prov =
    if
      (not (Txn_id.equal a b))
      && (not (Graph.mem_edge t.g a b))
      && not (Hashtbl.mem seen (a, b))
    then begin
      Hashtbl.add seen (a, b) ();
      out := (a, b, prov) :: !out
    end
  in
  let simulate_op x seq =
    let ost = Obj_id.Tbl.find t.objects x in
    let record = List.find (fun r -> r.seq = seq) ost.ops in
    List.iter
      (fun other ->
        if
          other.seq <> seq
          && (other.op_visible || Hashtbl.mem newly (x, other.seq))
          && (not (Txn_id.related record.access other.access))
          && ops_conflict t
               (record.access, record.value)
               (other.access, other.value)
        then begin
          let earlier, later =
            if other.seq < seq then (other, record) else (record, other)
          in
          let l = Txn_id.lca earlier.access later.access in
          let a = Txn_id.child_of_on_path ~ancestor:l earlier.access in
          let b = Txn_id.child_of_on_path ~ancestor:l later.access in
          let prov =
            {
              kind = Conflict;
              before = { who = earlier.access; at = earlier.at; where = Some x };
              after = { who = later.access; at = later.at; where = Some x };
            }
          in
          candidate a b prov
        end)
      ost.ops;
    Hashtbl.replace newly (x, seq) ()
  in
  List.iter
    (fun u ->
      let items =
        match Txn_id.Tbl.find_opt t.items u with Some l -> l | None -> []
      in
      List.iter
        (function
          | Activate_op (x, seq) -> simulate_op x seq
          | Activate_edge (a, b, prov) -> candidate a b prov
          | Activate_node _ -> ())
        (List.rev items))
    woken;
  List.rev !out

let commit_would_cycle t w =
  if t.batch <> None then
    invalid_arg "Monitor.commit_would_cycle: mid-batch speculation";
  match prospective_commit_edges t w with
  | [] -> None
  | edges -> (
      match
        Graph.would_close_cycle t.g (List.map (fun (a, b, _) -> (a, b)) edges)
      with
      | None -> None
      | Some path -> Some (path, edges))

(* A compact per-edge label for DOT: the witnessing actions with their
   feed indices (and the conflicting object). *)
let edge_label t a b =
  match edge_provenance t a b with
  | None -> None
  | Some p ->
      Some
        (match p.kind with
        | Conflict ->
            Printf.sprintf "%s: %s@%d ~ %s@%d"
              (match p.before.where with
              | Some x -> Obj_id.name x
              | None -> "?")
              (Txn_id.to_string p.before.who)
              p.before.at
              (Txn_id.to_string p.after.who)
              p.after.at
        | Precedes ->
            Printf.sprintf "precedes @%d -> @%d" p.before.at p.after.at)

let dot t =
  let cycle = Option.value ~default:[] t.first_cycle in
  Dot.of_graph ~cycle ~edge_label:(edge_label t) t.g
