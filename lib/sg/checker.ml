open Nt_base
open Nt_spec

type verdict = {
  appropriate : bool;
  sg_nodes : int;
  sg_edges : int;
  acyclic : bool;
  cycle : Txn_id.t list option;
  order : Sibling_order.t option;
  suitable : bool option;
  views_legal : bool option;
  serially_correct : bool;
}

(* Operation-level edges are a subset of access-level ones, so the
   operation-level graph is acyclic whenever the access-level one is:
   defaulting to it is sound (Theorem 19) and certifies strictly more —
   in particular commutativity-based protocols may reorder same-datum
   register writes across the completion order, which only the
   Section 6 graph can prove.  The Section 4 access-level construction
   stays available via [~mode]. *)
let default_mode _schema = Sg.Operation_level

let check ?mode (schema : Schema.t) trace =
  let mode = match mode with Some m -> m | None -> default_mode schema in
  let beta = Trace.serial trace in
  let appropriate = Return_values.appropriate_general schema beta in
  (* [Sg.build] inserts every edge through the incremental detector,
     so by the time the graph exists its acyclicity is already decided
     (Pearce-Kelly order consistency) and both queries below are O(1):
     batch checking reuses the same core the online monitor runs on. *)
  let g = Sg.build mode schema beta in
  let cycle = Graph.find_cycle g in
  let acyclic = cycle = None in
  let order = if acyclic then Sg.witness_order g else None in
  let suitable =
    Option.map (fun r -> Suitability.is_suitable beta ~to_:Txn_id.root r) order
  in
  let views_legal =
    Option.map
      (fun r ->
        try
          List.for_all
            (fun x ->
              Serial_spec.legal (schema.dtype_of x)
                (View.view_ops schema beta ~to_:Txn_id.root r x))
            schema.objects
        with View.Not_totally_ordered _ -> false)
      order
  in
  let serially_correct =
    appropriate && acyclic && suitable = Some true && views_legal = Some true
  in
  {
    appropriate;
    sg_nodes = Graph.n_nodes g;
    sg_edges = Graph.n_edges g;
    acyclic;
    cycle;
    order;
    suitable;
    views_legal;
    serially_correct;
  }

let serially_correct ?mode schema trace = (check ?mode schema trace).serially_correct

let pp_verdict fmt v =
  Format.fprintf fmt
    "@[<v>appropriate return values: %b@,\
     SG: %d nodes, %d edges, %s@,\
     witness order: %s; suitable: %s; views legal: %s@,\
     serially correct for T0: %b@]"
    v.appropriate v.sg_nodes v.sg_edges
    (if v.acyclic then "acyclic"
     else
       Format.asprintf "cycle [%a]"
         (Format.pp_print_list
            ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
            Txn_id.pp)
         (Option.value v.cycle ~default:[]))
    (if v.order = None then "none" else "found")
    (match v.suitable with None -> "n/a" | Some b -> string_of_bool b)
    (match v.views_legal with None -> "n/a" | Some b -> string_of_bool b)
    v.serially_correct

let explain ?mode (schema : Schema.t) trace =
  let mode = match mode with Some m -> m | None -> default_mode schema in
  let beta = Trace.serial trace in
  let v = check ~mode schema trace in
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if v.serially_correct then begin
    pr "serially correct for T0.\n";
    (match v.order with
    | Some r ->
        let tops = Sibling_order.ordered_children r Txn_id.root in
        if tops <> [] then
          pr "witness serialization of top-level transactions: %s\n"
            (String.concat " < " (List.map Txn_id.to_string tops))
    | None -> ())
  end
  else begin
    (match Return_values.violating_object schema beta with
    | Some x ->
        pr "return values of object %s are impossible in any serial run:\n"
          (Obj_id.name x);
        (* Find the first operation whose recorded return diverges from
           the replay of the preceding visible operations. *)
        let vis = Trace.visible beta ~to_:Txn_id.root in
        let ops = Schema.operations schema vis x in
        let dt = schema.Schema.dtype_of x in
        let rec scan state = function
          | [] -> ()
          | (op, recorded) :: rest ->
              let state', actual = dt.Datatype.apply state op in
              if Value.equal actual recorded then scan state' rest
              else
                pr "  %s returned %s, but the committed history implies %s\n"
                  (Datatype.op_to_string op)
                  (Value.to_string recorded) (Value.to_string actual)
        in
        scan dt.Datatype.init ops
    | None -> ());
    match v.cycle with
    | Some cycle ->
        pr "serialization graph cycle (no serial order can exist):\n";
        let witnesses = Conflict.relation_with_witnesses mode schema beta in
        let arr = Array.of_list cycle in
        Array.iteri
          (fun i a ->
            let b = arr.((i + 1) mod Array.length arr) in
            match
              List.find_opt
                (fun w ->
                  Txn_id.equal w.Conflict.source a
                  && Txn_id.equal w.Conflict.target b)
                witnesses
            with
            | Some w ->
                let ua, va = w.Conflict.source_access in
                let ub, vb = w.Conflict.target_access in
                pr "  %s before %s: %s:%s=%s responded before %s:%s=%s\n"
                  (Txn_id.to_string a) (Txn_id.to_string b)
                  (Txn_id.to_string ua)
                  (Datatype.op_to_string (schema.Schema.op_of ua))
                  (Value.to_string va) (Txn_id.to_string ub)
                  (Datatype.op_to_string (schema.Schema.op_of ub))
                  (Value.to_string vb)
            | None ->
                pr "  %s before %s: external consistency (reported before \
                    requested)\n"
                  (Txn_id.to_string a) (Txn_id.to_string b))
          arr
    | None ->
        if not v.appropriate then ()
        else pr "rejected: witness order re-verification failed\n"
  end;
  Buffer.contents buf
