open Nt_base
open Nt_spec

type conflict_mode = Conflict.mode = Access_level | Operation_level

let build mode (schema : Schema.t) trace =
  let g = Graph.create () in
  (* Nodes: lowtransactions of visible events (except T0 itself, which
     has no parent to be grouped under). *)
  let vis = Trace.visible trace ~to_:Txn_id.root in
  Array.iter
    (fun a ->
      match Action.lowtransaction a with
      | Some t when not (Txn_id.is_root t) -> Graph.add_node g t
      | _ -> ())
    vis;
  List.iter (fun (a, b) -> Graph.add_edge g a b) (Conflict.relation mode schema trace);
  List.iter (fun (a, b) -> Graph.add_edge g a b) (Precedes.relation trace);
  g

(* Group a global topological sort by parent, preserving order; each
   group is a chain for that parent.  SG edges only connect siblings,
   so the per-parent subsequences of any topological order of SG are
   themselves consistent with every edge — the grouped order is a
   valid witness sibling order whichever topological order is fed in
   (the canonical {!Graph.topological_sort} or the insertion-history
   order {!Graph.order} an online monitor maintains). *)
let sibling_order_of_topo sorted =
  let by_parent = Txn_id.Tbl.create 16 in
  List.iter
    (fun t ->
      match Txn_id.parent t with
      | None -> ()
      | Some p ->
          let l =
            match Txn_id.Tbl.find_opt by_parent p with
            | Some l -> l
            | None -> []
          in
          Txn_id.Tbl.replace by_parent p (t :: l))
    sorted;
  let chains = Txn_id.Tbl.fold (fun _ l acc -> List.rev l :: acc) by_parent [] in
  Sibling_order.of_chains chains

let witness_order g =
  match Graph.topological_sort g with
  | None -> None
  | Some sorted -> Some (sibling_order_of_topo sorted)
