open Nt_base

(* Per parent, a map from ranked child to its integer rank. *)
type t = int Txn_id.Map.t Txn_id.Map.t

let empty : t = Txn_id.Map.empty

let add_chain t chain =
  match chain with
  | [] -> t
  | first :: _ ->
      let parent =
        match Txn_id.parent first with
        | Some p -> p
        | None -> invalid_arg "Sibling_order: root cannot be ranked"
      in
      let existing =
        match Txn_id.Map.find_opt parent t with
        | Some m -> m
        | None -> Txn_id.Map.empty
      in
      let base = Txn_id.Map.cardinal existing in
      let ranked, _ =
        List.fold_left
          (fun (m, i) c ->
            (match Txn_id.parent c with
            | Some p when Txn_id.equal p parent -> ()
            | _ -> invalid_arg "Sibling_order: chain mixes parents");
            if Txn_id.Map.mem c m then
              invalid_arg "Sibling_order: duplicate child in chain";
            (Txn_id.Map.add c i m, i + 1))
          (existing, base) chain
      in
      Txn_id.Map.add parent ranked t

let of_chains chains = List.fold_left add_chain empty chains

let rank t child =
  match Txn_id.parent child with
  | None -> None
  | Some p -> (
      match Txn_id.Map.find_opt p t with
      | None -> None
      | Some m -> Txn_id.Map.find_opt child m)

let mem t a b =
  Txn_id.siblings a b
  &&
  match (rank t a, rank t b) with Some i, Some j -> i < j | _ -> false

let orders_pair t a b = mem t a b || mem t b a

let compare_trans t a b =
  if Txn_id.equal a b || Txn_id.related a b then None
  else
    let l = Txn_id.lca a b in
    let ca = Txn_id.child_of_on_path ~ancestor:l a in
    let cb = Txn_id.child_of_on_path ~ancestor:l b in
    if mem t ca cb then Some (-1) else if mem t cb ca then Some 1 else None

let trans_mem t a b = compare_trans t a b = Some (-1)

let event_mem t phi pi =
  match (Action.lowtransaction phi, Action.lowtransaction pi) with
  | Some a, Some b -> trans_mem t a b
  | _ -> false

let ordered_children t parent =
  match Txn_id.Map.find_opt parent t with
  | None -> []
  | Some m ->
      Txn_id.Map.bindings m
      |> List.sort (fun (_, i) (_, j) -> Stdlib.compare i j)
      |> List.map fst

let parents t = List.map fst (Txn_id.Map.bindings t)

let index_order trace =
  let by_parent = Txn_id.Tbl.create 32 in
  let note t =
    List.iter
      (fun u ->
        match Txn_id.parent u with
        | None -> ()
        | Some p ->
            let existing =
              match Txn_id.Tbl.find_opt by_parent p with
              | Some s -> s
              | None -> Txn_id.Set.empty
            in
            Txn_id.Tbl.replace by_parent p (Txn_id.Set.add u existing))
      (Txn_id.ancestors t)
  in
  Array.iter (fun a -> note (Action.subject a)) trace;
  Txn_id.Tbl.fold
    (fun _ children acc ->
      let chain =
        Txn_id.Set.elements children
        |> List.sort (fun a b ->
               Stdlib.compare (Txn_id.last_index a) (Txn_id.last_index b))
      in
      add_chain acc chain)
    by_parent empty
