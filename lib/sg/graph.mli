(** Directed graphs over transaction names, with incremental cycle
    detection.

    The serialization graph [SG(beta)] is a union of disjoint directed
    graphs, one per parent; we keep them in a single structure (edges
    only ever connect siblings, so the union stays disjoint by
    construction) and provide cycle detection and topological sorting —
    the two operations Theorem 8 needs.

    Cycle detection is {e incremental} (Pearce–Kelly): the graph
    maintains a topological order of its nodes, updated on each edge
    insertion by a two-way search limited to the affected region
    (nodes ordered between the new edge's endpoints).  An insertion
    [a -> b] with [ord a < ord b] is O(1); one that closes a cycle
    returns the witness path immediately.  Order consistency implies
    acyclicity, so {!is_acyclic} and {!find_cycle} are O(1) whatever
    the insertion history.  Once a cycle-closing edge is accepted no
    topological order exists; further insertions degrade to a plain
    reachability search per edge, preserving exact cycle reporting. *)

open Nt_base

type t

type add_result =
  | Ok of int
      (** The edge kept the graph acyclic; the payload is the number of
          nodes renumbered to restore the maintained order (0 for the
          O(1) fast path and for duplicate edges). *)
  | Cycle of Txn_id.t list
      (** The edge [a -> b] closed this cycle: the path [b ... a], so
          consecutive elements (wrapping) are edges.  The edge is
          still added — the graph records cyclic history faithfully. *)

val create : unit -> t

val add_node : t -> Txn_id.t -> unit
(** Idempotent.  New nodes enter at the end of the maintained order. *)

val add_edge_checked : t -> Txn_id.t -> Txn_id.t -> add_result
(** Insert an edge and report whether it closed a cycle.  Adds both
    endpoints as nodes; duplicate edges are ignored ([Ok 0]). *)

val add_edge : t -> Txn_id.t -> Txn_id.t -> unit
(** [ignore (add_edge_checked t a b)]. *)

val would_close_cycle :
  t -> (Txn_id.t * Txn_id.t) list -> Txn_id.t list option
(** [would_close_cycle g extra] — would inserting all of [extra] at
    once close a cycle?  A {e read-only} joint reachability test over
    the union of [g] and [extra]: nothing is interned or recorded, so
    a positive answer lets admission control veto the insertion with
    the graph untouched.  Endpoints unknown to [g], duplicate edges
    and edges already present are all fine.  The witness follows the
    {!add_result} convention: for the closing edge [a -> b], the path
    [b ... a] (consecutive elements, wrapping, are edges of the joint
    graph). *)

val mem_edge : t -> Txn_id.t -> Txn_id.t -> bool
val nodes : t -> Txn_id.t list
val edges : t -> (Txn_id.t * Txn_id.t) list

val n_nodes : t -> int
(** O(1) (cached). *)

val n_edges : t -> int
(** O(1) (cached; duplicates were never counted). *)

val successors : t -> Txn_id.t -> Txn_id.t list
val predecessors : t -> Txn_id.t -> Txn_id.t list

val iter_nodes : t -> (Txn_id.t -> unit) -> unit
(** Iterate nodes without building the sorted list {!nodes} allocates
    (iteration order is unspecified). *)

val iter_edges : t -> (Txn_id.t -> Txn_id.t -> unit) -> unit
(** Iterate edges allocation-free (order unspecified). *)

val fold_nodes : t -> ('a -> Txn_id.t -> 'a) -> 'a -> 'a
val fold_edges : t -> ('a -> Txn_id.t -> Txn_id.t -> 'a) -> 'a -> 'a

val find_cycle : t -> Txn_id.t list option
(** Some cycle (as a node list, first repeated node omitted) if one
    exists; [None] iff the graph is acyclic.  O(1): the witness of the
    first cycle-closing insertion is cached. *)

val find_cycle_scratch : t -> Txn_id.t list option
(** The pre-incremental reference: a full three-color DFS over the
    current graph.  Kept for differential testing of the incremental
    detector (and for callers that want a cycle through the {e current}
    search order rather than the first historical witness). *)

val is_acyclic : t -> bool
(** O(1). *)

val order : t -> Txn_id.t list option
(** The maintained topological order (all nodes, every edge forward),
    or [None] once the graph is cyclic.  Reflects insertion history;
    for a canonical insertion-independent order use
    {!topological_sort}. *)

val rank : t -> Txn_id.t -> int option
(** The node's position key in the maintained order ([None] for
    unknown nodes).  Keys are distinct and order-consistent; treat
    them as opaque (contiguity is not part of the contract). *)

val reorders : t -> int
(** Cumulative number of node renumberings performed by incremental
    insertions — the work the limited two-way search actually did
    (0 for an insertion-order that never violated the maintained
    order). *)

val topological_sort : t -> Txn_id.t list option
(** A total order of all nodes consistent with every edge, or [None]
    if cyclic.  Ties are broken deterministically by {!Txn_id.compare}
    so results are reproducible. *)
