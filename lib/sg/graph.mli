(** Directed graphs over transaction names.

    The serialization graph [SG(beta)] is a union of disjoint directed
    graphs, one per parent; we keep them in a single structure (edges
    only ever connect siblings, so the union stays disjoint by
    construction) and provide cycle detection and topological sorting —
    the two operations Theorem 8 needs. *)

open Nt_base

type t

val create : unit -> t

val add_node : t -> Txn_id.t -> unit
(** Idempotent. *)

val add_edge : t -> Txn_id.t -> Txn_id.t -> unit
(** Adds both endpoints as nodes; duplicate edges are ignored. *)

val mem_edge : t -> Txn_id.t -> Txn_id.t -> bool
val nodes : t -> Txn_id.t list
val edges : t -> (Txn_id.t * Txn_id.t) list
val n_nodes : t -> int
val n_edges : t -> int
val successors : t -> Txn_id.t -> Txn_id.t list

val find_cycle : t -> Txn_id.t list option
(** Some cycle (as a node list, first repeated node omitted) if one
    exists; [None] iff the graph is acyclic. *)

val is_acyclic : t -> bool

val topological_sort : t -> Txn_id.t list option
(** A total order of all nodes consistent with every edge, or [None]
    if cyclic.  Ties are broken deterministically by {!Txn_id.compare}
    so results are reproducible. *)
