open Nt_base
open Nt_spec

type mode = Access_level | Operation_level

let ops_conflict mode schema (u, vu) (u', vu') =
  match mode with
  | Operation_level -> Schema.operations_conflict schema (u, vu) (u', vu')
  | Access_level -> Schema.accesses_conflict schema u u'

type witness = {
  source : Txn_id.t;
  target : Txn_id.t;
  source_access : Txn_id.t * Value.t;
  target_access : Txn_id.t * Value.t;
}

let relation_with_witnesses mode (schema : Schema.t) trace =
  let vis = Trace.visible trace ~to_:Txn_id.root in
  (* The access REQUEST_COMMIT events of [vis], in order. *)
  let accesses =
    List.filter_map
      (fun a ->
        match a with
        | Action.Request_commit (u, v) when System_type.is_access schema.sys u
          ->
            Some (u, v)
        | _ -> None)
      (Trace.to_list vis)
  in
  let pairs = Hashtbl.create 64 in
  let rec scan = function
    | [] -> ()
    | (u, vu) :: rest ->
        List.iter
          (fun (u', vu') ->
            if
              (not (Txn_id.related u u'))
              && ops_conflict mode schema (u, vu) (u', vu')
            then begin
              let l = Txn_id.lca u u' in
              let t = Txn_id.child_of_on_path ~ancestor:l u in
              let t' = Txn_id.child_of_on_path ~ancestor:l u' in
              if not (Hashtbl.mem pairs (t, t')) then
                Hashtbl.replace pairs (t, t')
                  {
                    source = t;
                    target = t';
                    source_access = (u, vu);
                    target_access = (u', vu');
                  }
            end)
          rest;
        scan rest
  in
  scan accesses;
  Hashtbl.fold (fun _ w acc -> w :: acc) pairs []

let relation mode schema trace =
  List.map
    (fun w -> (w.source, w.target))
    (relation_with_witnesses mode schema trace)
