(** Sibling orders and their two extensions (Section 2.3.2).

    A sibling order [R] is an irreflexive partial order relating only
    siblings.  We store, per parent, a rank for each ordered child;
    [R_trans] (the descendant extension) and [R_event] (the extension to
    events of a trace) are derived queries. *)

open Nt_base

type t

val empty : t

val of_chains : Txn_id.t list list -> t
(** [of_chains chains] orders each listed chain of siblings left to
    right; chains for distinct parents are independent.  Raises
    [Invalid_argument] if a chain mixes children of different parents
    or repeats a name. *)

val add_chain : t -> Txn_id.t list -> t
(** Functionally extend with one more ordered sibling chain. *)

val mem : t -> Txn_id.t -> Txn_id.t -> bool
(** [(T, T') ∈ R]: both ranked under their common parent, strictly
    increasing rank. *)

val orders_pair : t -> Txn_id.t -> Txn_id.t -> bool
(** [mem t a b || mem t b a]. *)

val trans_mem : t -> Txn_id.t -> Txn_id.t -> bool
(** [(T, T') ∈ R_trans]: some ancestors [U], [U'] of [T], [T'] are
    siblings with [(U, U') ∈ R].  Equivalently, [T] and [T'] are
    unrelated and the children of their lca on the two paths are
    ordered by [R]. *)

val compare_trans : t -> Txn_id.t -> Txn_id.t -> int option
(** Three-way [R_trans] comparison; [None] when unordered (including
    the ancestor/descendant case). *)

val event_mem : t -> Action.t -> Action.t -> bool
(** [(phi, pi) ∈ R_event(beta)]: both are serial events whose
    lowtransactions are [R_trans]-ordered in this direction. *)

val ordered_children : t -> Txn_id.t -> Txn_id.t list
(** The children ranked under the given parent, in rank order. *)

val parents : t -> Txn_id.t list
(** All parents with at least one ranked child. *)

val index_order : Trace.t -> t
(** The sibling-index order over every name appearing in the trace
    (as the subject of any action): per parent, children ranked by
    their child index.  This is the pseudotime order of depth-first
    timestamps; with interpreters that request children in index
    order it contains [precedes(beta)] and is the natural candidate
    order for timestamp-based protocols (see {!Theorem2}). *)
