(** The Serializability Theorem (Theorem 2), used directly.

    The serialization-graph construction (Theorem 8/19) is one way to
    obtain a suitable order: topologically sort [SG(beta)].  But the
    underlying Serializability Theorem works with {e any} suitable
    sibling order whose views replay — which matters for protocols
    whose serialization order is not the completion order.  A
    multiversion timestamp protocol ({!Nt_mvts}) serializes by
    pseudotime; its behaviors can have {e cyclic} serialization graphs
    while still being serially correct, and this checker certifies
    them by supplying the timestamp order explicitly.

    [check schema order beta] decides the hypotheses of Theorem 2 for
    [check ?for_txn schema order beta] decides the hypotheses of
    Theorem 2 for the given transaction [T] (default [T0]): [T] is not
    an orphan in [beta], [order] is suitable for [serial beta] and
    [T], and every [view(beta, T, order, X)] is a behavior of
    [S_X]. *)

open Nt_base
open Nt_spec

type failure =
  | Orphan  (** The theorem only applies to non-orphan transactions. *)
  | Not_suitable of Suitability.failure
  | View_not_ordered of Txn_id.t * Txn_id.t
      (** Two access transactions with visible operations that the
          order fails to relate. *)
  | View_illegal of Obj_id.t
      (** Some object's view does not replay in its serial spec. *)

val check :
  ?for_txn:Txn_id.t ->
  Schema.t ->
  Sibling_order.t ->
  Trace.t ->
  (unit, failure) result
(** Decide Theorem 2's hypotheses for the given witness order and
    transaction (default [T0]; inform actions are stripped first).
    [Ok ()] certifies that the behavior is serially correct for the
    transaction — the paper's full statement, which quantifies over
    every non-orphan transaction name. *)

val holds :
  ?for_txn:Txn_id.t -> Schema.t -> Sibling_order.t -> Trace.t -> bool

val pp_failure : Format.formatter -> failure -> unit
