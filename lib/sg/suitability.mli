(** Suitability of a sibling order (Section 2.3.2).

    [R] is suitable for [beta] and [T] when (1) [R] orders every pair of
    siblings that are lowtransactions of events of [visible(beta, T)],
    and (2) [R_event(beta)] and [affects(beta)] are consistent partial
    orders on those events — i.e. their union has no cycle.

    Consistency is decided without computing a transitive closure: we
    take the affects adjacency over {e all} events (each edge of which
    runs forward in the trace) and add the [R_event] edges between
    visible events; a cycle in that graph exists iff the restricted
    union has one, because affects-paths between visible events factor
    through the full graph. *)

open Nt_base

type failure =
  | Unordered_siblings of Txn_id.t * Txn_id.t
      (** Condition (1) fails on this pair. *)
  | Event_cycle of int list
      (** Condition (2) fails; the event indices of a witness cycle. *)

val check :
  Trace.t -> to_:Txn_id.t -> Sibling_order.t -> (unit, failure) result
(** Check suitability of the order for the given trace (pass
    [serial(beta)]) and transaction. *)

val is_suitable : Trace.t -> to_:Txn_id.t -> Sibling_order.t -> bool
