open Nt_base

type op =
  | Read
  | Write of Value.t
  | Incr of int
  | Decr of int
  | Get
  | Deposit of int
  | Withdraw of int
  | Balance
  | Insert of Value.t
  | Remove of Value.t
  | Member of Value.t
  | Size
  | Enqueue of Value.t
  | Dequeue
  | Kread of Value.t
  | Kwrite of Value.t * Value.t
  | Vread
  | Vwrite of int * Value.t

exception Unsupported of op

type t = {
  dt_name : string;
  init : Value.t;
  apply : Value.t -> op -> Value.t * Value.t;
  commutes : op * Value.t -> op * Value.t -> bool;
  sample_ops : Rng.t -> op;
  probe_states : Value.t list;
}

let conflicts dt o1 o2 = not (dt.commutes o1 o2)

(* Access-level conflict: exists return values (realizable in some state)
   making the operations conflict.  We enumerate candidate return values
   by applying each op in every probe state. *)
let accesses_conflict dt op1 op2 =
  let returns op =
    List.sort_uniq Value.compare
      (List.map (fun s -> snd (dt.apply s op)) dt.probe_states)
  in
  let r1 = returns op1 and r2 = returns op2 in
  List.exists
    (fun v1 -> List.exists (fun v2 -> conflicts dt (op1, v1) (op2, v2)) r2)
    r1

let pp_op fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write v -> Format.fprintf fmt "write(%a)" Value.pp v
  | Incr k -> Format.fprintf fmt "incr(%d)" k
  | Decr k -> Format.fprintf fmt "decr(%d)" k
  | Get -> Format.pp_print_string fmt "get"
  | Deposit k -> Format.fprintf fmt "deposit(%d)" k
  | Withdraw k -> Format.fprintf fmt "withdraw(%d)" k
  | Balance -> Format.pp_print_string fmt "balance"
  | Insert v -> Format.fprintf fmt "insert(%a)" Value.pp v
  | Remove v -> Format.fprintf fmt "remove(%a)" Value.pp v
  | Member v -> Format.fprintf fmt "member(%a)" Value.pp v
  | Size -> Format.pp_print_string fmt "size"
  | Enqueue v -> Format.fprintf fmt "enqueue(%a)" Value.pp v
  | Dequeue -> Format.pp_print_string fmt "dequeue"
  | Kread k -> Format.fprintf fmt "kread(%a)" Value.pp k
  | Kwrite (k, v) -> Format.fprintf fmt "kwrite(%a, %a)" Value.pp k Value.pp v
  | Vread -> Format.pp_print_string fmt "vread"
  | Vwrite (ver, v) -> Format.fprintf fmt "vwrite(%d, %a)" ver Value.pp v

let op_to_string op = Format.asprintf "%a" pp_op op
let is_read_write_op = function Read | Write _ -> true | _ -> false
