open Nt_base

let apply s (op : Datatype.op) =
  match op with
  | Datatype.Read -> (s, s)
  | Datatype.Write v -> (v, Value.Ok)
  | op -> raise (Datatype.Unsupported op)

(* Reads commute with reads; writes commute iff they write equal values;
   read/write pairs never commute backward in both orders (see the
   Datatype interface for the symmetric convention). *)
let commutes (o1, _v1) (o2, _v2) =
  match (o1, o2) with
  | Datatype.Read, Datatype.Read -> true
  | Datatype.Write a, Datatype.Write b -> Value.equal a b
  | Datatype.Read, Datatype.Write _ | Datatype.Write _, Datatype.Read -> false
  | _ -> raise (Datatype.Unsupported o1)

let sample_ops rng =
  if Rng.bool rng then Datatype.Read else Datatype.Write (Value.Int (Rng.int rng 8))

let make ?(init = Value.Int 0) () =
  {
    Datatype.dt_name = "register";
    init;
    apply;
    commutes;
    sample_ops;
    probe_states = [ init; Value.Int 1; Value.Int 2; Value.Int 7 ];
  }
