open Nt_base

let apply s (op : Datatype.op) =
  let n = Value.int_exn s in
  match op with
  | Datatype.Incr k -> (Value.Int (n + k), Value.Ok)
  | Datatype.Decr k -> (Value.Int (n - k), Value.Ok)
  | Datatype.Get -> (s, s)
  | op -> raise (Datatype.Unsupported op)

(* Blind updates commute among themselves; [Get] commutes only with
   no-op updates (delta 0) and other gets. *)
let commutes (o1, _v1) (o2, _v2) =
  let delta = function
    | Datatype.Incr k -> Some k
    | Datatype.Decr k -> Some (-k)
    | _ -> None
  in
  match (o1, o2) with
  | Datatype.Get, Datatype.Get -> true
  | Datatype.Get, u | u, Datatype.Get -> (
      match delta u with Some 0 -> true | Some _ -> false
      | None -> raise (Datatype.Unsupported u))
  | u1, u2 -> (
      match (delta u1, delta u2) with
      | Some _, Some _ -> true
      | _ -> raise (Datatype.Unsupported o1))

let sample_ops rng =
  match Rng.int rng 4 with
  | 0 -> Datatype.Get
  | 1 -> Datatype.Decr (1 + Rng.int rng 3)
  | _ -> Datatype.Incr (1 + Rng.int rng 3)

let make ?(init = 0) () =
  {
    Datatype.dt_name = "counter";
    init = Value.Int init;
    apply;
    commutes;
    sample_ops;
    probe_states = [ Value.Int init; Value.Int 0; Value.Int 1; Value.Int 5 ];
  }
