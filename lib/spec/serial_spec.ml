open Nt_base

type operation = Datatype.op * Value.t

let final_state (dt : Datatype.t) xi =
  let rec go s = function
    | [] -> Some s
    | (op, v) :: rest ->
        let s', v' = dt.apply s op in
        if Value.equal v v' then go s' rest else None
  in
  go dt.init xi

let legal dt xi = final_state dt xi <> None

let response (dt : Datatype.t) xi op =
  match final_state dt xi with
  | None -> None
  | Some s -> Some (snd (dt.apply s op))

let equieffective dt xi eta =
  match (final_state dt xi, final_state dt eta) with
  | Some s, Some s' -> Value.equal s s'
  | _ -> false

(* One direction of the definitional check from a single state [s]:
   if [p] then [q] replays from [s] with the recorded return values,
   then [q] then [p] must replay likewise and reach the same state. *)
let directional_ok (dt : Datatype.t) s ((p, vp) : operation) ((q, vq) : operation)
    =
  let s1, u1 = dt.apply s p in
  if not (Value.equal u1 vp) then true (* forward not a behavior: vacuous *)
  else
    let s2, u2 = dt.apply s1 q in
    if not (Value.equal u2 vq) then true
    else
      let t1, w1 = dt.apply s q in
      Value.equal w1 vq
      &&
      let t2, w2 = dt.apply t1 p in
      Value.equal w2 vp && Value.equal t2 s2

let commutes_backward_semantic (dt : Datatype.t) ?states o1 o2 =
  let states = match states with Some l -> l | None -> dt.probe_states in
  List.for_all
    (fun s -> directional_ok dt s o1 o2 && directional_ok dt s o2 o1)
    states
