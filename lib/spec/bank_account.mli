(** A bank account with guarded withdrawals — the classic example of
    {e return-value-dependent} commutativity (Weihl).

    Operations: [Deposit k] (blind, returns [Ok]), [Withdraw k] (returns
    [Bool true] and subtracts when the balance suffices, else
    [Bool false] with no change), and [Balance].

    The commutativity structure is the textbook one: deposits commute
    with deposits; two {e successful} withdrawals commute (each
    guarantees enough funds for the other, in either order); two
    {e failed} withdrawals commute (neither changed anything); but a
    deposit and a withdrawal do not commute (the deposit can flip the
    withdrawal's outcome), nor do withdrawals with mixed outcomes, nor
    [Balance] with any update. *)


val make : ?init:int -> unit -> Datatype.t
(** An account with initial balance [init] (default 0); balances are
    invariantly non-negative given non-negative deposits. *)
