(** Replay semantics for serial objects.

    The serial object automaton [S_X] of a sequential data type accepts
    [perform(xi)] exactly when replaying [xi] from the initial state
    reproduces every recorded return value (Lemma 4 and its
    generalization).  This module decides that membership, computes
    responses, and provides the {e semantic} backward-commutativity
    check used to validate each data type's algebraic oracle. *)

open Nt_base

type operation = Datatype.op * Value.t
(** An operation in the paper's sense: an access invocation paired with
    its return value. *)

val legal : Datatype.t -> operation list -> bool
(** [legal dt xi] iff [perform(xi)] is a finite behavior of [S_X]. *)

val final_state : Datatype.t -> operation list -> Value.t option
(** The state of [S_X] after [perform(xi)], or [None] if [xi] is not
    legal. *)

val response : Datatype.t -> operation list -> Datatype.op -> Value.t option
(** [response dt xi op] is the unique [v] such that [xi @ [(op, v)]] is
    legal, provided [xi] itself is legal; [None] otherwise. *)

val equieffective : Datatype.t -> operation list -> operation list -> bool
(** Both sequences legal and ending in the same state.  Final-state
    identity is the special case of the paper's equieffectiveness that
    suffices for deterministic sequential specifications (and coincides
    with it for the types shipped here). *)

val commutes_backward_semantic :
  Datatype.t -> ?states:Value.t list -> operation -> operation -> bool
(** The definitional (symmetric) backward-commutativity check, with the
    universally-quantified prefix [xi] approximated by the given probe
    states (default: the type's own [probe_states]).  Used by tests to
    establish oracle soundness: wherever the oracle claims a pair
    commutes, this check must agree on every probe state. *)
