open Nt_base

(* State: a sorted, duplicate-free [Value.List]. *)
let normalize l = Value.List (List.sort_uniq Value.compare l)

let elements = function
  | Value.List l -> l
  | s -> invalid_arg ("Rset: bad state " ^ Value.to_string s)

let apply s (op : Datatype.op) =
  let l = elements s in
  match op with
  | Datatype.Insert v -> (normalize (v :: l), Value.Ok)
  | Datatype.Remove v ->
      (normalize (List.filter (fun w -> not (Value.equal v w)) l), Value.Ok)
  | Datatype.Member v -> (s, Value.Bool (List.exists (Value.equal v) l))
  | Datatype.Size -> (s, Value.Int (List.length l))
  | op -> raise (Datatype.Unsupported op)

let commutes (o1, _v1) (o2, _v2) =
  match (o1, o2) with
  | Datatype.Insert _, Datatype.Insert _ -> true
  | Datatype.Remove _, Datatype.Remove _ -> true
  | Datatype.Insert x, Datatype.Remove y | Datatype.Remove x, Datatype.Insert y
    ->
      not (Value.equal x y)
  | Datatype.Member x, (Datatype.Insert y | Datatype.Remove y)
  | (Datatype.Insert y | Datatype.Remove y), Datatype.Member x ->
      not (Value.equal x y)
  | Datatype.Member _, Datatype.Member _ -> true
  | Datatype.Size, Datatype.Size -> true
  | Datatype.Size, Datatype.Member _ | Datatype.Member _, Datatype.Size -> true
  | Datatype.Size, (Datatype.Insert _ | Datatype.Remove _)
  | (Datatype.Insert _ | Datatype.Remove _), Datatype.Size ->
      false
  | (op, _) -> raise (Datatype.Unsupported op)

let sample_values = [| Value.Int 0; Value.Int 1; Value.Int 2; Value.Int 3 |]

let sample_ops rng =
  let v = Rng.pick rng sample_values in
  match Rng.int rng 4 with
  | 0 -> Datatype.Member v
  | 1 -> Datatype.Remove v
  | 2 -> Datatype.Size
  | _ -> Datatype.Insert v

let make ?(init = []) () =
  let init = normalize init in
  {
    Datatype.dt_name = "set";
    init;
    apply;
    commutes;
    sample_ops;
    probe_states =
      [
        init;
        Value.List [];
        normalize [ Value.Int 1 ];
        normalize [ Value.Int 1; Value.Int 2 ];
        normalize [ Value.Int 0; Value.Int 2; Value.Int 3 ];
      ];
  }
