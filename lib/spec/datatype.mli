(** Sequential data types and backward commutativity (Section 6).

    A serial object automaton [S_X] is, for every data type we ship, the
    canonical automaton of a {e sequential} specification: a total
    deterministic function [apply : state -> op -> state * value].  The
    paper's [perform(xi) ∈ finbehvs(S_X)] is then decidable by replay
    (see {!Serial_spec}), which is exactly Lemma 4 for read/write objects
    and its evident generalization for the other types.

    Backward commutativity of operations (pairs [(op, v)] of an
    invocation and its return value) is the paper's conflict criterion
    for arbitrary types: two operations {e conflict} iff they fail to
    commute backwards.  Each data type carries an algebraic
    {e oracle} for this relation.  The paper notes the relation is
    symmetric; accordingly our oracles are symmetric, and the test suite
    validates every oracle against the semantic definition (both orders,
    probing reachable states).  Oracles are {e sound}: they may declare a
    commuting pair conflicting (losing concurrency, never correctness),
    but never the converse. *)

open Nt_base

type op =
  | Read  (** register: current value *)
  | Write of Value.t  (** register: overwrite, returns [Ok] *)
  | Incr of int  (** counter: add, returns [Ok] *)
  | Decr of int  (** counter: subtract, returns [Ok] *)
  | Get  (** counter: current total *)
  | Deposit of int  (** account: add funds, returns [Ok] *)
  | Withdraw of int
      (** account: returns [Bool true] and subtracts if funds suffice,
          else [Bool false] and no change *)
  | Balance  (** account: current funds *)
  | Insert of Value.t  (** set: blind add, returns [Ok] *)
  | Remove of Value.t  (** set: blind delete, returns [Ok] *)
  | Member of Value.t  (** set: membership test *)
  | Size  (** set: cardinality *)
  | Enqueue of Value.t  (** queue: append, returns [Ok] *)
  | Dequeue
      (** queue: returns [Pair (Bool true, v)] popping the head, or
          [Pair (Bool false, Unit)] when empty *)
  | Kread of Value.t
      (** keyed store: current value under the key ([Unit] if absent) *)
  | Kwrite of Value.t * Value.t
      (** keyed store: bind key to value, returns [Ok] *)
  | Vread
      (** versioned register (replication substrate): the current
          [Pair (Int version, value)] *)
  | Vwrite of int * Value.t
      (** versioned register: install the pair if the version is
          strictly newer (Thomas write rule), returns [Ok].  Writes
          with distinct versions commute backward — replicas converge
          regardless of arrival order. *)

exception Unsupported of op
(** Raised by [apply] when the operation does not belong to the type's
    signature — a schema construction error, never a runtime condition. *)

type t = {
  dt_name : string;  (** e.g. ["register"], for messages and tables. *)
  init : Value.t;  (** The initial state [d] of [S_X]. *)
  apply : Value.t -> op -> Value.t * Value.t;
      (** [apply s op = (s', v)]: deterministic total semantics. *)
  commutes : op * Value.t -> op * Value.t -> bool;
      (** Symmetric backward-commutativity oracle on operations. *)
  sample_ops : Rng.t -> op;
      (** A random operation of this type, for workload generation. *)
  probe_states : Value.t list;
      (** A finite set of states (including [init]) rich enough to
          exercise the oracle in semantic validation tests. *)
}

val conflicts : t -> op * Value.t -> op * Value.t -> bool
(** Two operations conflict iff they fail to commute backwards. *)

val accesses_conflict : t -> op -> op -> bool
(** The access-level conflict relation: accesses [T], [T'] conflict iff
    {e some} return values make their operations conflict.  Decided by
    probing the type's [probe_states] for realizable return values. *)

val pp_op : Format.formatter -> op -> unit
val op_to_string : op -> string

val is_read_write_op : op -> bool
(** [true] exactly for [Read] and [Write _]. *)
