(** A keyed store (string-free map of values to values) — per-key
    read/write semantics, the closest of the shipped types to a
    database table.

    Operations: [Kread k] (the value bound to [k], or [Unit] when
    absent) and [Kwrite (k, v)] (bind, returns [Ok]).

    Commutativity factors through keys: operations on distinct keys
    always commute; on the same key the register rules apply (reads
    commute, writes commute iff they bind the same value, a read never
    commutes with a write).  Under commutativity-based locking or undo
    logging this yields per-key conflict granularity out of one
    object — contrast with a single register, where every write
    conflicts with everything. *)

val make : unit -> Datatype.t
(** An initially-empty store. *)
