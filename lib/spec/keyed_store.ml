open Nt_base

(* State: a sorted association list [Pair (key, value)] inside a
   [Value.List]. *)
let bindings = function
  | Value.List l ->
      List.map
        (function
          | Value.Pair (k, v) -> (k, v)
          | v -> invalid_arg ("Keyed_store: bad binding " ^ Value.to_string v))
        l
  | s -> invalid_arg ("Keyed_store: bad state " ^ Value.to_string s)

let state_of l =
  Value.List
    (List.map (fun (k, v) -> Value.Pair (k, v))
       (List.sort (fun (a, _) (b, _) -> Value.compare a b) l))

let lookup l k =
  match List.find_opt (fun (k', _) -> Value.equal k k') l with
  | Some (_, v) -> v
  | None -> Value.Unit

let apply s (op : Datatype.op) =
  let l = bindings s in
  match op with
  | Datatype.Kread k -> (s, lookup l k)
  | Datatype.Kwrite (k, v) ->
      let l = (k, v) :: List.filter (fun (k', _) -> not (Value.equal k k')) l in
      (state_of l, Value.Ok)
  | op -> raise (Datatype.Unsupported op)

let commutes (o1, _v1) (o2, _v2) =
  match (o1, o2) with
  | Datatype.Kread _, Datatype.Kread _ -> true
  | Datatype.Kwrite (k, v), Datatype.Kwrite (k', v') ->
      (not (Value.equal k k')) || Value.equal v v'
  | Datatype.Kread k, Datatype.Kwrite (k', _)
  | Datatype.Kwrite (k', _), Datatype.Kread k ->
      not (Value.equal k k')
  | (op, _) -> raise (Datatype.Unsupported op)

let sample_keys = [| Value.Int 0; Value.Int 1; Value.Int 2 |]

let sample_ops rng =
  let k = Rng.pick rng sample_keys in
  if Rng.bool rng then Datatype.Kread k
  else Datatype.Kwrite (k, Value.Int (Rng.int rng 8))

let make () =
  {
    Datatype.dt_name = "keyed_store";
    init = Value.List [];
    apply;
    commutes;
    sample_ops;
    probe_states =
      [
        Value.List [];
        state_of [ (Value.Int 0, Value.Int 5) ];
        state_of [ (Value.Int 0, Value.Int 5); (Value.Int 1, Value.Int 7) ];
        state_of [ (Value.Int 2, Value.Int 1) ];
      ];
  }
