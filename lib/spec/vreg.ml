open Nt_base

let version = function
  | Value.Pair (Value.Int ver, _) -> ver
  | s -> invalid_arg ("Vreg: bad state " ^ Value.to_string s)

let apply s (op : Datatype.op) =
  match op with
  | Datatype.Vread -> (s, s)
  | Datatype.Vwrite (ver, v) ->
      if ver > version s then (Value.Pair (Value.Int ver, v), Value.Ok)
      else (s, Value.Ok)
  | op -> raise (Datatype.Unsupported op)

let commutes (o1, _v1) (o2, _v2) =
  match (o1, o2) with
  | Datatype.Vread, Datatype.Vread -> true
  | Datatype.Vwrite (v1, a), Datatype.Vwrite (v2, b) ->
      v1 <> v2 || Value.equal a b
  | Datatype.Vread, Datatype.Vwrite _ | Datatype.Vwrite _, Datatype.Vread ->
      false
  | (op, _) -> raise (Datatype.Unsupported op)

let sample_ops rng =
  if Rng.bool rng then Datatype.Vread
  else Datatype.Vwrite (1 + Rng.int rng 4, Value.Int (Rng.int rng 8))

let make ?(init = Value.Int 0) () =
  let initial = Value.Pair (Value.Int 0, init) in
  {
    Datatype.dt_name = "vreg";
    init = initial;
    apply;
    commutes;
    sample_ops;
    probe_states =
      [
        initial;
        Value.Pair (Value.Int 1, Value.Int 5);
        Value.Pair (Value.Int 3, Value.Int 2);
      ];
  }
