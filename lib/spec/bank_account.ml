open Nt_base

let apply s (op : Datatype.op) =
  let n = Value.int_exn s in
  match op with
  | Datatype.Deposit k -> (Value.Int (n + k), Value.Ok)
  | Datatype.Withdraw k ->
      if n >= k then (Value.Int (n - k), Value.Bool true)
      else (s, Value.Bool false)
  | Datatype.Balance -> (s, s)
  | op -> raise (Datatype.Unsupported op)

(* A zero-amount update is the identity and commutes with everything
   except operations whose return value it could not have preserved —
   for [Deposit 0] and successful [Withdraw 0] that is nothing. *)
let commutes (o1, v1) (o2, v2) =
  let classify op v =
    match (op, v) with
    | Datatype.Deposit k, _ -> `Deposit k
    | Datatype.Withdraw k, Value.Bool true -> `Withdraw_ok k
    | Datatype.Withdraw k, Value.Bool false -> `Withdraw_fail k
    | Datatype.Withdraw _, _ ->
        (* An unrealizable return value; treat conservatively. *)
        `Other
    | Datatype.Balance, _ -> `Balance
    | op, _ -> raise (Datatype.Unsupported op)
  in
  match (classify o1 v1, classify o2 v2) with
  | `Deposit _, `Deposit _ -> true
  | `Balance, `Balance -> true
  | `Withdraw_ok _, `Withdraw_ok _ -> true
  | `Withdraw_fail _, `Withdraw_fail _ -> true
  | ( (`Deposit 0 | `Withdraw_ok 0),
      (`Deposit _ | `Withdraw_ok _ | `Withdraw_fail _ | `Balance) )
  | ( (`Deposit _ | `Withdraw_ok _ | `Withdraw_fail _ | `Balance),
      (`Deposit 0 | `Withdraw_ok 0) ) ->
      true
  | _ -> false

let sample_ops rng =
  match Rng.int rng 4 with
  | 0 -> Datatype.Balance
  | 1 -> Datatype.Withdraw (1 + Rng.int rng 4)
  | _ -> Datatype.Deposit (1 + Rng.int rng 4)

let make ?(init = 0) () =
  {
    Datatype.dt_name = "account";
    init = Value.Int init;
    apply;
    commutes;
    sample_ops;
    probe_states =
      [ Value.Int init; Value.Int 0; Value.Int 1; Value.Int 3; Value.Int 10 ];
  }
