(** Schemas: a system type plus the data of every object and access.

    The paper's system type fixes which leaves are accesses and to which
    object; for an executable system we additionally need, per object,
    its serial specification (a {!Datatype.t}), and per access name, the
    operation it performs ("all parameters of an access are regarded as
    encoded in its name", Section 3.1).  A schema packages the three. *)

open Nt_base

type t = {
  sys : System_type.t;
  objects : Obj_id.t list;  (** The finite set of objects in play. *)
  dtype_of : Obj_id.t -> Datatype.t;
  op_of : Txn_id.t -> Datatype.op;
      (** Defined on access names; the operation the access performs. *)
}

val dtype_of_access : t -> Txn_id.t -> Datatype.t
(** The data type of the object accessed by the given access name. *)

val operation_of : t -> Txn_id.t -> Value.t -> Serial_spec.operation
(** Pair the access's operation with a return value. *)

val operations : t -> Trace.t -> Obj_id.t -> Serial_spec.operation list
(** The operation sequence of [X] occurring in a trace, as
    [(op, v)] pairs ready for replay. *)

val all_read_write : t -> bool
(** All objects are registers — the assumption of Sections 3–5. *)

val accesses_conflict : t -> Txn_id.t -> Txn_id.t -> bool
(** Access-level conflict: both names access the same object and their
    accesses conflict — for register operations this is Section 4's
    table (conflict unless both are reads, including two writes of the
    same datum); for other types, the Section 6 lift (their operations
    conflict for some realizable return values). *)

val operations_conflict :
  t -> Txn_id.t * Value.t -> Txn_id.t * Value.t -> bool
(** Operation-level conflict (Section 6): same object and the two
    [(op, v)] pairs fail to commute backwards.  For registers this
    matches the Section 4 table on all realizable return values. *)
