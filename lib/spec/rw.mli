(** Read/write trace functions of Section 3.

    [write-sequence], [last-write] and [final-value] over sequences of
    serial actions, together with their [clean-*] variants from Section
    3.3 (the same functions applied to [clean(beta)]).  These underlie
    the "current" and "safe" conditions of Lemma 6 and the correctness
    conditions of Moss' algorithm. *)

open Nt_base

val kind_of : Schema.t -> Txn_id.t -> [ `Read | `Write of Value.t ] option
(** The paper's [kind]/[data] functions: classify an access to a
    register as a read or a write carrying its datum.  [None] for
    non-accesses and non-register operations. *)

val write_sequence : Schema.t -> Trace.t -> Obj_id.t -> Trace.t
(** The subsequence of [Request_commit] events of write accesses to
    [X]. *)

val last_write : Schema.t -> Trace.t -> Obj_id.t -> Txn_id.t option
(** The transaction of the last event of {!write_sequence}, if any. *)

val final_value : Schema.t -> Trace.t -> Obj_id.t -> Value.t
(** The datum of {!last_write}, or the initial value [d] of [S_X] when
    no write occurs. *)

val clean_write_sequence : Schema.t -> Trace.t -> Obj_id.t -> Trace.t
(** [write_sequence] of [clean(beta)]. *)

val clean_last_write : Schema.t -> Trace.t -> Obj_id.t -> Txn_id.t option
(** [last_write] of [clean(beta)]. *)

val clean_final_value : Schema.t -> Trace.t -> Obj_id.t -> Value.t
(** [final_value] of [clean(beta)]. *)
