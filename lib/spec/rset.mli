(** A set of values with blind inserts and removes.

    Operations: [Insert v] / [Remove v] (blind, return [Ok]),
    [Member v], and [Size].

    Commutativity (symmetric backward commutativity, see {!Datatype}):
    blind inserts commute with all inserts, and blind removes with all
    removes; an insert and a remove commute iff they name different
    elements; [Member v] commutes with updates on {e other} elements and
    with other membership tests; [Size] conflicts with every update.
    (One-directional refinements — e.g. a positive [Member v] can move
    left past an [Insert v] — are deliberately not exploited: the
    reversed order is not a behavior, so the symmetric relation rejects
    them.) *)


open Nt_base

val make : ?init:Value.t list -> unit -> Datatype.t
(** A set with the given initial elements (default empty). *)
