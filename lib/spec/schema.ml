open Nt_base

type t = {
  sys : System_type.t;
  objects : Obj_id.t list;
  dtype_of : Obj_id.t -> Datatype.t;
  op_of : Txn_id.t -> Datatype.op;
}

let dtype_of_access t txn = t.dtype_of (System_type.object_of_exn t.sys txn)
let operation_of t txn v = (t.op_of txn, v)

let operations t trace x =
  List.map (fun (txn, v) -> (t.op_of txn, v)) (Trace.operations t.sys trace x)

let all_read_write t =
  List.for_all (fun x -> (t.dtype_of x).Datatype.dt_name = "register") t.objects

let accesses_conflict t a b =
  match (System_type.object_of t.sys a, System_type.object_of t.sys b) with
  | Some x, Some y when Obj_id.equal x y -> (
      (* Section 4's relation for read/write objects is by kind alone:
         conflict unless both are reads (even two writes of the same
         datum).  Other types use the Section 6 lift: some return
         values make the operations conflict. *)
      match (t.op_of a, t.op_of b) with
      | Datatype.Read, Datatype.Read -> false
      | (Datatype.Read | Datatype.Write _), (Datatype.Read | Datatype.Write _)
        ->
          true
      | opa, opb -> Datatype.accesses_conflict (t.dtype_of x) opa opb)
  | _ -> false

let operations_conflict t (a, va) (b, vb) =
  match (System_type.object_of t.sys a, System_type.object_of t.sys b) with
  | Some x, Some y when Obj_id.equal x y ->
      Datatype.conflicts (t.dtype_of x) (t.op_of a, va) (t.op_of b, vb)
  | _ -> false
