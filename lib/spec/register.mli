(** The read/write serial object of Section 3.1, as a {!Datatype.t}.

    Operations: [Read] (returns the current value) and [Write v]
    (overwrites, returns [Ok]).  This is the only type admitted by the
    first part of the paper; Moss' algorithm ({!Nt_moss}) is specified
    against it.

    Backward commutativity, on operations: two reads always commute; two
    writes commute iff they write the same value; a read never commutes
    with a write.  At the access level this collapses to the paper's
    read/write conflict table (two accesses conflict unless both are
    reads). *)


open Nt_base

val make : ?init:Value.t -> unit -> Datatype.t
(** A register with the given initial value (default [Int 0]). *)
