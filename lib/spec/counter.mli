(** An integer counter: the motivating type for Section 6.

    Operations: [Incr k] and [Decr k] (blind updates returning [Ok]) and
    [Get] (returns the total).  All blind updates commute backward with
    one another, so under the undo-logging algorithm increment-heavy
    workloads run with no conflicts at all — the concurrency gain that
    read/write locking cannot express (increment = read;write there).
    Experiment E3 measures exactly this. *)


val make : ?init:int -> unit -> Datatype.t
(** A counter starting at [init] (default 0). *)
