open Nt_base

let kind_of (schema : Schema.t) txn =
  if not (System_type.is_access schema.sys txn) then None
  else
    match schema.op_of txn with
    | Datatype.Read -> Some `Read
    | Datatype.Write v -> Some (`Write v)
    | _ -> None

let write_sequence (schema : Schema.t) trace x =
  Trace.filter
    (fun a ->
      match a with
      | Action.Request_commit (t, _) -> (
          match System_type.object_of schema.sys t with
          | Some y when Obj_id.equal x y -> (
              match kind_of schema t with Some (`Write _) -> true | _ -> false)
          | _ -> false)
      | _ -> false)
    trace

let last_write schema trace x =
  let ws = write_sequence schema trace x in
  let n = Trace.length ws in
  if n = 0 then None
  else
    match Trace.get ws (n - 1) with
    | Action.Request_commit (t, _) -> Some t
    | _ -> assert false

let final_value (schema : Schema.t) trace x =
  match last_write schema trace x with
  | None -> (schema.dtype_of x).Datatype.init
  | Some t -> (
      match kind_of schema t with
      | Some (`Write v) -> v
      | _ -> assert false)

let clean_write_sequence schema trace x =
  write_sequence schema (Trace.clean trace) x

let clean_last_write schema trace x = last_write schema (Trace.clean trace) x
let clean_final_value schema trace x = final_value schema (Trace.clean trace) x
