(** A FIFO queue — a deliberately low-concurrency data type.

    Operations: [Enqueue v] (returns [Ok]) and [Dequeue] (returns
    [Pair (Bool true, v)] popping the head, or [Pair (Bool false, Unit)]
    on an empty queue).

    Almost nothing commutes: two enqueues commute only when they enqueue
    equal values, two successful dequeues only when they popped equal
    values, and an enqueue never commutes with a dequeue.  The queue
    serves as the adversarial end of the commutativity spectrum in the
    experiments (contrast with {!Counter}). *)


open Nt_base

val make : ?init:Value.t list -> unit -> Datatype.t
(** A queue with the given initial contents, front first (default
    empty). *)
