(** A versioned register with the Thomas write rule — the replica
    substrate for quorum replication ({!Nt_replication}).

    State: [Pair (Int version, value)], initially version 0 with the
    given value.  [Vwrite (ver, v)] installs [(ver, v)] only when [ver]
    is strictly newer, so replicas converge to the max-version write
    regardless of delivery order; [Vread] returns the whole pair.

    Commutativity: two writes commute iff their versions differ (equal
    versions tie-break by arrival, which is order-dependent) — with
    globally unique versions, {e all} writes commute, which is what
    lets a quorum write fan out concurrently under undo logging or
    commutativity locking.  Reads conflict with writes, commute with
    reads. *)

open Nt_base

val make : ?init:Value.t -> unit -> Datatype.t
(** Initial content (default [Int 0]) at version 0. *)
