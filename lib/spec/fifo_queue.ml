open Nt_base

let contents = function
  | Value.List l -> l
  | s -> invalid_arg ("Fifo_queue: bad state " ^ Value.to_string s)

let apply s (op : Datatype.op) =
  let l = contents s in
  match op with
  | Datatype.Enqueue v -> (Value.List (l @ [ v ]), Value.Ok)
  | Datatype.Dequeue -> (
      match l with
      | [] -> (s, Value.Pair (Value.Bool false, Value.Unit))
      | hd :: tl -> (Value.List tl, Value.Pair (Value.Bool true, hd)))
  | op -> raise (Datatype.Unsupported op)

let commutes (o1, v1) (o2, v2) =
  match (o1, o2) with
  | Datatype.Enqueue a, Datatype.Enqueue b -> Value.equal a b
  | Datatype.Dequeue, Datatype.Dequeue -> Value.equal v1 v2
  | Datatype.Enqueue _, Datatype.Dequeue
  | Datatype.Dequeue, Datatype.Enqueue _ ->
      false
  | (op, _) -> raise (Datatype.Unsupported op)

let sample_ops rng =
  if Rng.int rng 3 = 0 then Datatype.Dequeue
  else Datatype.Enqueue (Value.Int (Rng.int rng 4))

let make ?(init = []) () =
  {
    Datatype.dt_name = "queue";
    init = Value.List init;
    apply;
    commutes;
    sample_ops;
    probe_states =
      [
        Value.List init;
        Value.List [];
        Value.List [ Value.Int 1 ];
        Value.List [ Value.Int 1; Value.Int 2 ];
        Value.List [ Value.Int 2; Value.Int 1 ];
      ];
  }
