open Nt_base
open Nt_spec

type entry = { holder : Txn_id.t; op : Datatype.op; value : Value.t }

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  log : entry list;
}

let initial =
  { created = Txn_id.Set.empty; commit_requested = Txn_id.Set.empty; log = [] }

let create s t = { s with created = Txn_id.Set.add t s.created }

let inform_commit s t =
  if Txn_id.is_root t then s
  else
    let p = Txn_id.parent_exn t in
    {
      s with
      log =
        List.map
          (fun e -> if Txn_id.equal e.holder t then { e with holder = p } else e)
          s.log;
    }

let inform_abort s t =
  { s with log = List.filter (fun e -> not (Txn_id.is_descendant e.holder t)) s.log }

let respondable s t =
  Txn_id.Set.mem t s.created && not (Txn_id.Set.mem t s.commit_requested)

let conflicting_entries (dt : Datatype.t) s t op v =
  List.filter
    (fun e ->
      (not (Txn_id.is_ancestor e.holder t))
      && not (dt.Datatype.commutes (op, v) (e.op, e.value)))
    s.log

let replay_response (dt : Datatype.t) s op =
  Serial_spec.response dt
    (List.map (fun e -> (e.op, e.value)) s.log)
    op

let request_commit (dt : Datatype.t) s t op =
  if not (respondable s t) then None
  else
    match replay_response dt s op with
    | None -> None
    | Some v ->
        if conflicting_entries dt s t op v = [] then
          Some
            ( {
                s with
                commit_requested = Txn_id.Set.add t s.commit_requested;
                log = s.log @ [ { holder = t; op; value = v } ];
              },
              v )
        else None

let blockers dt s t op =
  if not (respondable s t) then []
  else
    match replay_response dt s op with
    | None -> []
    | Some v ->
        List.map (fun e -> e.holder) (conflicting_entries dt s t op v)
        |> List.sort_uniq Txn_id.compare

(* As [blockers], but keeps one representative log entry per holder so
   the kind of the blocking entry can be reported alongside. *)
let blockers_kinded dt s t op =
  if not (respondable s t) then []
  else
    match replay_response dt s op with
    | None -> []
    | Some v ->
        List.fold_left
          (fun acc e ->
            if List.mem_assoc e.holder acc then acc
            else (e.holder, Nt_gobj.Gobj.lock_kind_of_op e.op) :: acc)
          []
          (conflicting_entries dt s t op v)
        |> List.sort (fun (a, _) (b, _) -> Txn_id.compare a b)

let factory : Nt_gobj.Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let state = ref initial in
  {
    Nt_gobj.Gobj.obj = x;
    create = (fun t -> state := create !state t);
    inform_commit = (fun t -> state := inform_commit !state t);
    inform_abort = (fun t -> state := inform_abort !state t);
    try_respond =
      (fun t ->
        match request_commit dt !state t (schema.Schema.op_of t) with
        | Some (s', v) ->
            state := s';
            Some v
        | None -> None);
    waiting_on = (fun t -> blockers_kinded dt !state t (schema.Schema.op_of t));
  }
