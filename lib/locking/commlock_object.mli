(** Commutativity-based locking: the general [M_X] of which [M1_X] is
    the read/write specialization (the paper's footnote 8; the modular
    locking framework of Fekete–Lynch–Merritt–Weihl).

    Where {!Nt_moss.Moss_object} keeps read/write lock sets and a value
    stack, [M_X] keeps a {e log of operations, each owned by a holder
    transaction}: responding to an access appends an entry owned by the
    access itself; an [INFORM_COMMIT] promotes a holder's entries to
    its parent (lock inheritance); an [INFORM_ABORT] discards every
    entry held by a descendant of the aborted transaction.

    An access [T] performing operation [op] may respond when [op]
    (paired with its replay response) commutes backward with every
    entry whose holder is {e not} an ancestor of [T] — the
    lock-conflict rule, with the lock modes induced by the data type's
    commutativity relation.  The response value is the replay of the
    whole log: entries held by non-ancestors commute with [op], so they
    cannot change its return value, and entries held by ancestors are
    exactly the versions [T] is entitled to observe (for registers this
    reduces to Moss' "value of the least write-lockholder").

    Like Moss' algorithm, the serialization order is the completion
    order, so behaviors are certified by the serialization-graph
    theorem (Theorem 19) — asserted in the tests, along with the fact
    that [M_X] strictly refines [M1_X] on registers (everything Moss
    admits, plus same-datum writes). *)

open Nt_base
open Nt_spec

type entry = {
  holder : Txn_id.t;  (** Current lock owner (promoted on commits). *)
  op : Datatype.op;
  value : Value.t;
}

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  log : entry list;  (** Response order, oldest first. *)
}

val initial : state
val create : state -> Txn_id.t -> state

val inform_commit : state -> Txn_id.t -> state
(** Promote the transaction's entries to its parent. *)

val inform_abort : state -> Txn_id.t -> state
(** Discard entries held by descendants. *)

val request_commit :
  Datatype.t -> state -> Txn_id.t -> Datatype.op -> (state * Value.t) option
(** Fire the response if the lock-conflict rule admits it. *)

val blockers : Datatype.t -> state -> Txn_id.t -> Datatype.op -> Txn_id.t list
(** Holders of conflicting entries. *)

val blockers_kinded :
  Datatype.t ->
  state ->
  Txn_id.t ->
  Datatype.op ->
  (Txn_id.t * Nt_gobj.Gobj.lock_kind) list
(** {!blockers} with each holder tagged by the operation kind of one
    of its conflicting log entries. *)

val factory : Nt_gobj.Gobj.factory
(** [M_X] as a generic object, for any data type. *)
