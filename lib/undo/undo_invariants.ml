open Nt_base
open Nt_spec

let project (schema : Schema.t) x trace =
  Trace.filter
    (fun a ->
      match a with
      | Action.Create t | Action.Request_commit (t, _) -> (
          match System_type.object_of schema.Schema.sys t with
          | Some y -> Obj_id.equal x y
          | None -> false)
      | Action.Inform_commit (y, _) | Action.Inform_abort (y, _) ->
          Obj_id.equal x y
      | _ -> false)
    trace

let replay (schema : Schema.t) x trace =
  let dt = schema.Schema.dtype_of x in
  let n = Trace.length trace in
  let rec go s i =
    if i >= n then Ok s
    else
      match Trace.get trace i with
      | Action.Create t -> go (Undo_object.create s t) (i + 1)
      | Action.Inform_commit (_, t) -> go (Undo_object.inform_commit s t) (i + 1)
      | Action.Inform_abort (_, t) -> go (Undo_object.inform_abort s t) (i + 1)
      | Action.Request_commit (t, v) -> (
          match Undo_object.request_commit dt s t (schema.Schema.op_of t) with
          | Some (s', v') when Value.equal v v' -> go s' (i + 1)
          | Some _ ->
              Error
                (Format.asprintf "event %d: wrong return value for %a" i
                   Txn_id.pp t)
          | None ->
              Error
                (Format.asprintf "event %d: REQUEST_COMMIT(%a) not enabled" i
                   Txn_id.pp t))
      | a -> Error (Format.asprintf "event %d: foreign action %a" i Action.pp a)
  in
  go Undo_object.initial 0

let local_orphan x trace t =
  let ancs = Txn_id.ancestors t in
  Array.exists
    (fun a ->
      match a with
      | Action.Inform_abort (y, u) ->
          Obj_id.equal x y && List.exists (Txn_id.equal u) ancs
      | _ -> false)
    trace

let locally_visible_in x trace ~to_ t' =
  let informed u =
    Array.exists
      (fun a ->
        match a with
        | Action.Inform_commit (y, w) -> Obj_id.equal x y && Txn_id.equal w u
        | _ -> false)
      trace
  in
  List.for_all informed (Txn_id.ancestors_upto t' ~upto:to_)

(* Lemma 20: the log is operations(beta) minus entries with a later
   INFORM_ABORT of an ancestor. *)
let lemma20 (schema : Schema.t) x trace =
  match replay schema x trace with
  | Error _ -> true
  | Ok s ->
      let n = Trace.length trace in
      let expected = ref [] in
      for i = 0 to n - 1 do
        match Trace.get trace i with
        | Action.Request_commit (t, v) ->
            let undone = ref false in
            for j = i + 1 to n - 1 do
              match Trace.get trace j with
              | Action.Inform_abort (y, u)
                when Obj_id.equal x y && Txn_id.is_ancestor u t ->
                  undone := true
              | _ -> ()
            done;
            if not !undone then expected := (t, v) :: !expected
        | _ -> ()
      done;
      let expected = List.rev !expected in
      let actual =
        List.map (fun e -> (e.Undo_object.txn, e.Undo_object.value)) s.log
      in
      List.length expected = List.length actual
      && List.for_all2
           (fun (t, v) (t', v') -> Txn_id.equal t t' && Value.equal v v')
           expected actual

let purge log victims =
  List.filter
    (fun e ->
      not
        (List.exists (fun t -> Txn_id.is_descendant e.Undo_object.txn t) victims))
    log

let lemma21 (schema : Schema.t) x trace ~samples =
  match replay schema x trace with
  | Error _ -> true
  | Ok s ->
      let dt = schema.Schema.dtype_of x in
      List.for_all
        (fun victims ->
          (* The lemma requires the victim set disjoint from committed. *)
          let victims =
            List.filter
              (fun t -> not (Txn_id.Set.mem t s.committed))
              victims
          in
          let purged = purge s.log victims in
          Serial_spec.legal dt
            (List.map (fun e -> (e.Undo_object.op, e.Undo_object.value)) purged))
        ([] :: samples)

let lemma22 (schema : Schema.t) x trace =
  let dt = schema.Schema.dtype_of x in
  let n = Trace.length trace in
  let responses = ref [] in
  for i = n - 1 downto 0 do
    match Trace.get trace i with
    | Action.Request_commit (t, v) -> responses := (i, t, v) :: !responses
    | _ -> ()
  done;
  List.for_all
    (fun (i, t, v) ->
      List.for_all
        (fun (j, t', v') ->
          if j <= i then true
          else if
            dt.Datatype.commutes (schema.Schema.op_of t, v)
              (schema.Schema.op_of t', v')
          then true
          else
            let before = Trace.prefix trace j in
            local_orphan x before t || locally_visible_in x before ~to_:t' t)
        !responses)
    !responses
