open Nt_base
open Nt_spec

type entry = { txn : Txn_id.t; op : Datatype.op; value : Value.t }

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  committed : Txn_id.Set.t;
  log : entry list;
}

let initial =
  {
    created = Txn_id.Set.empty;
    commit_requested = Txn_id.Set.empty;
    committed = Txn_id.Set.empty;
    log = [];
  }

let create s t = { s with created = Txn_id.Set.add t s.created }
let inform_commit s t = { s with committed = Txn_id.Set.add t s.committed }

let inform_abort s t =
  { s with log = List.filter (fun e -> not (Txn_id.is_descendant e.txn t)) s.log }

let locally_visible s ~to_ t' =
  List.for_all
    (fun u -> Txn_id.Set.mem u s.committed)
    (Txn_id.ancestors_upto t' ~upto:to_)

let log_ops s = List.map (fun e -> (e.op, e.value)) s.log

let respondable s t =
  Txn_id.Set.mem t s.created && not (Txn_id.Set.mem t s.commit_requested)

let non_commuting_entries (dt : Datatype.t) s t op v =
  List.filter
    (fun e ->
      (not (locally_visible s ~to_:t e.txn))
      && not (dt.Datatype.commutes (op, v) (e.op, e.value)))
    s.log

let request_commit (dt : Datatype.t) s t op =
  if not (respondable s t) then None
  else
    (* The log always replays (invariant from construction), so the
       response is the replay value; then check the commutativity
       precondition against operations not locally visible to [t]. *)
    match Serial_spec.response dt (log_ops s) op with
    | None -> None
    | Some v ->
        if non_commuting_entries dt s t op v = [] then
          Some
            ( {
                s with
                commit_requested = Txn_id.Set.add t s.commit_requested;
                log = s.log @ [ { txn = t; op; value = v } ];
              },
              v )
        else None

let blockers dt s t op =
  if not (respondable s t) then []
  else
    match Serial_spec.response dt (log_ops s) op with
    | None -> []
    | Some v -> List.map (fun e -> e.txn) (non_commuting_entries dt s t op v)

(* As [blockers], tagging each blocking transaction with the kind of
   its non-commuting log entry. *)
let blockers_kinded dt s t op =
  if not (respondable s t) then []
  else
    match Serial_spec.response dt (log_ops s) op with
    | None -> []
    | Some v ->
        List.map
          (fun e -> (e.txn, Nt_gobj.Gobj.lock_kind_of_op e.op))
          (non_commuting_entries dt s t op v)

let factory : Nt_gobj.Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let state = ref initial in
  {
    Nt_gobj.Gobj.obj = x;
    create = (fun t -> state := create !state t);
    inform_commit = (fun t -> state := inform_commit !state t);
    inform_abort = (fun t -> state := inform_abort !state t);
    try_respond =
      (fun t ->
        match request_commit dt !state t (schema.Schema.op_of t) with
        | Some (s', v) ->
            state := s';
            Some v
        | None -> None);
    waiting_on = (fun t -> blockers_kinded dt !state t (schema.Schema.op_of t));
  }
