(** The undo logging object [U_X] (Section 6.2).

    State: the [created], [commit-requested] and [committed] transaction
    sets and an {e operation log} — the sequence of operations that have
    taken place, with entries removed when an ancestor aborts.
    A [REQUEST_COMMIT(T, v)] may fire only when

    {ol
    {- [T] was created and not yet responded to,}
    {- [(T, v)] commutes backward with every logged operation
       [(T', v')] some of whose ancestors up to [lca(T, T')] is not yet
       known committed — i.e. with all operations of transactions not
       {e locally visible} to [T],}
    {- the log extended by [(T, v)] replays in [S_X] — which, the
       specification being deterministic, pins [v] to the replay
       response.}}

    An [INFORM_ABORT] erases the aborted transaction's descendants from
    the log (the "undo"); an [INFORM_COMMIT] merely records the commit
    for the visibility test.  The algorithm works for objects of
    arbitrary data type and is the paper's showcase for the generalized
    serialization-graph theorem (Theorem 19). *)

open Nt_base
open Nt_spec

type entry = { txn : Txn_id.t; op : Datatype.op; value : Value.t }

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  committed : Txn_id.Set.t;
  log : entry list;  (** Oldest first. *)
}

val initial : state
val create : state -> Txn_id.t -> state
val inform_commit : state -> Txn_id.t -> state

val inform_abort : state -> Txn_id.t -> state
(** Remove every log entry of a descendant of the aborted name. *)

val locally_visible : state -> to_:Txn_id.t -> Txn_id.t -> bool
(** [locally_visible s ~to_ t']: every ancestor of [t'] not shared with
    [to_] (i.e. up to, not including, their lca) is in [s.committed] —
    the object's local approximation of visibility (Section 6.3; note:
    no ordering requirement, unlike [lock-visible]). *)

val request_commit :
  Datatype.t -> state -> Txn_id.t -> Datatype.op -> (state * Value.t) option
(** Fire the response if the commutativity precondition holds; the
    returned value is the replay response.  [None] when blocked. *)

val blockers : Datatype.t -> state -> Txn_id.t -> Datatype.op -> Txn_id.t list
(** The logged transactions whose non-visible, non-commuting entries
    block the access. *)

val blockers_kinded :
  Datatype.t ->
  state ->
  Txn_id.t ->
  Datatype.op ->
  (Txn_id.t * Nt_gobj.Gobj.lock_kind) list
(** {!blockers} with each blocker tagged by the operation kind of its
    non-commuting entry. *)

val log_ops : state -> (Datatype.op * Value.t) list
(** The log as replayable operations. *)

val factory : Nt_gobj.Gobj.factory
(** [U_X] as a generic object, for any data type. *)
