(** Executable forms of the [U_X] lemmas (Section 6.3).

    - {b Lemma 20}: after any generic-object-well-formed schedule, the
      log is exactly the trace's operations minus those undone by a
      later [Inform_abort] of an ancestor;
    - {b Lemma 21(2)}: removing the descendants of any set of
      uncommitted transactions from the log leaves a replayable
      sequence;
    - {b Lemma 22}: when two conflicting responses both occur, the
      earlier one's transaction is a local orphan or locally visible to
      the later one's at the response point.

    Traces are the object-projected ones of {!project}. *)

open Nt_base
open Nt_spec

val project : Schema.t -> Obj_id.t -> Trace.t -> Trace.t
(** [beta|U_X]: same projection as for [M1_X]. *)

val replay :
  Schema.t -> Obj_id.t -> Trace.t -> (Undo_object.state, string) result
(** Replay, validating every [Request_commit] precondition. *)

val local_orphan : Obj_id.t -> Trace.t -> Txn_id.t -> bool

val locally_visible_in : Obj_id.t -> Trace.t -> to_:Txn_id.t -> Txn_id.t -> bool
(** [Inform_commit] at the object exists for every ancestor up to the
    lca (in any order — contrast with [lock_visible]). *)

val lemma20 : Schema.t -> Obj_id.t -> Trace.t -> bool
(** The replayed log equals the filtered trace operations. *)

val lemma21 : Schema.t -> Obj_id.t -> Trace.t -> samples:Txn_id.t list list -> bool
(** For each sample set of uncommitted transactions, the purged log
    replays.  (The universally-quantified lemma is sampled; the empty
    set — "the log itself replays" — is always included.) *)

val lemma22 : Schema.t -> Obj_id.t -> Trace.t -> bool
(** The conflicting-responses property, checked over all pairs of
    response events in the projected trace. *)
