open Nt_base
open Nt_spec

type version = { writer : Txn_id.t; datum : Value.t }

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  committed : Txn_id.Set.t;
  versions : version list;
  read_log : (Txn_id.t * Txn_id.t) list;
}

let initial init_value =
  {
    created = Txn_id.Set.empty;
    commit_requested = Txn_id.Set.empty;
    committed = Txn_id.Set.empty;
    versions = [ { writer = Txn_id.root; datum = init_value } ];
    read_log = [];
  }

let create s t = { s with created = Txn_id.Set.add t s.created }
let inform_commit s t = { s with committed = Txn_id.Set.add t s.committed }

let inform_abort s t =
  {
    s with
    versions =
      List.filter (fun v -> not (Txn_id.is_descendant v.writer t)) s.versions;
    read_log =
      List.filter (fun (r, _) -> not (Txn_id.is_descendant r t)) s.read_log;
  }

(* The latest version strictly below [t]'s pseudotime. *)
let select_version s t =
  let below =
    List.filter (fun v -> Txn_id.dfs_compare v.writer t < 0) s.versions
  in
  match
    List.fold_left
      (fun best v ->
        match best with
        | Some b when Txn_id.dfs_compare b.writer v.writer >= 0 -> best
        | _ -> Some v)
      None below
  with
  | Some v -> v
  | None -> invalid_arg "Mvts_object.select_version: initial version missing"

let respondable s t =
  Txn_id.Set.mem t s.created && not (Txn_id.Set.mem t s.commit_requested)

let locally_visible s ~to_ t' =
  List.for_all
    (fun u -> Txn_id.Set.mem u s.committed)
    (Txn_id.ancestors_upto t' ~upto:to_)

(* Readers a write at [t]'s pseudotime would invalidate: those with a
   larger pseudotime whose selected version is older than [t]. *)
let invalidated_readers s t =
  List.filter_map
    (fun (reader, selected) ->
      if Txn_id.dfs_compare t reader < 0 && Txn_id.dfs_compare selected t < 0
      then Some reader
      else None)
    s.read_log

let request_commit s t kind =
  if not (respondable s t) then None
  else
    match kind with
    | `Read ->
        let v = select_version s t in
        if
          Txn_id.is_root v.writer
          || locally_visible s ~to_:t v.writer
        then
          Some
            ( {
                s with
                commit_requested = Txn_id.Set.add t s.commit_requested;
                read_log = (t, v.writer) :: s.read_log;
              },
              v.datum )
        else None
    | `Write datum ->
        if invalidated_readers s t = [] then
          let versions =
            List.sort
              (fun a b -> Txn_id.dfs_compare a.writer b.writer)
              ({ writer = t; datum } :: s.versions)
          in
          Some
            ( {
                s with
                commit_requested = Txn_id.Set.add t s.commit_requested;
                versions;
              },
              Value.Ok )
        else None

let blockers s t kind =
  if not (respondable s t) then []
  else
    match kind with
    | `Read ->
        let v = select_version s t in
        if Txn_id.is_root v.writer || locally_visible s ~to_:t v.writer then []
        else [ v.writer ]
    | `Write _ -> invalidated_readers s t

let kind_of_op = function
  | Datatype.Read -> `Read
  | Datatype.Write v -> `Write v
  | op -> raise (Datatype.Unsupported op)

let factory : Nt_gobj.Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let state = ref (initial dt.Datatype.init) in
  {
    Nt_gobj.Gobj.obj = x;
    create = (fun t -> state := create !state t);
    inform_commit = (fun t -> state := inform_commit !state t);
    inform_abort = (fun t -> state := inform_abort !state t);
    try_respond =
      (fun t ->
        match request_commit !state t (kind_of_op (schema.Schema.op_of t)) with
        | Some (s', v) ->
            state := s';
            Some v
        | None -> None);
    waiting_on =
      (fun t ->
        (* A read waits on the selected version's writer; a write on
           the readers it would invalidate. *)
        let kind = kind_of_op (schema.Schema.op_of t) in
        let tag =
          match kind with
          | `Read -> Nt_gobj.Gobj.Write
          | `Write _ -> Nt_gobj.Gobj.Read
        in
        List.map (fun u -> (u, tag)) (blockers !state t kind));
  }
