(** A multiversion timestamp-ordering object for nested transactions.

    The paper's conclusion points beyond the serialization-graph
    technique: "the classical theory has been extended ... to model
    concurrency control and recovery algorithms that use multiple
    versions", and proving such algorithms for nested transactions is
    left to the companion techniques of Aspnes–Fekete–Lynch–Merritt–
    Weihl.  This module implements such an algorithm — a nested
    adaptation of Reed's multiversion timestamp ordering for read/write
    objects — both as a useful third protocol and as a demonstrated
    {e boundary} of the SG construction: its behaviors are serially
    correct (certified by the Serializability Theorem with the
    pseudotime order, {!Nt_sg.Theorem2}) yet their serialization graphs
    can be cyclic, because the serialization order is pseudotime, not
    completion order (Experiment E9).

    Timestamps are the depth-first order of the naming tree
    ({!Nt_base.Txn_id.dfs_compare}): each access's pseudotime is its
    path, which is consistent with the sibling-index order in which the
    interpreters issue children.

    The object keeps every committed-or-pending {e version} (writer,
    datum) sorted by writer pseudotime, and a read log:

    - a {b read} at pseudotime [ts] selects the version with the
      greatest writer pseudotime below [ts]; it may respond only when
      that writer is locally visible to the reader (same condition as
      undo logging — otherwise the read would be unsafe), recording the
      dependency in the read log;
    - a {b write} at pseudotime [ts] is {e too late} if some logged
      read at pseudotime above [ts] selected a version below [ts] (the
      write would invalidate it); a too-late write stays blocked (the
      runtime's deadlock victim mechanism eventually aborts it, which
      is this implementation's rendering of "abort the late writer");
    - an {b abort} purges the aborted subtree's versions and read-log
      entries. *)

open Nt_base

type version = { writer : Txn_id.t; datum : Value.t }

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  committed : Txn_id.Set.t;
  versions : version list;  (** Sorted by writer pseudotime, oldest first. *)
  read_log : (Txn_id.t * Txn_id.t) list;  (** (reader, selected writer). *)
}

val initial : Value.t -> state
(** The initial version is written by [T0] at the smallest
    pseudotime. *)

val create : state -> Txn_id.t -> state
val inform_commit : state -> Txn_id.t -> state
val inform_abort : state -> Txn_id.t -> state

val select_version : state -> Txn_id.t -> version
(** The version a read at this access's pseudotime would select.  The
    [T0] initial version guarantees existence. *)

val request_commit :
  state -> Txn_id.t -> [ `Read | `Write of Value.t ] -> (state * Value.t) option
(** Fire the response if enabled per the rules above. *)

val blockers : state -> Txn_id.t -> [ `Read | `Write of Value.t ] -> Txn_id.t list
(** For a blocked read, the selected writer; for a too-late write, the
    readers it would invalidate. *)

val factory : Nt_gobj.Gobj.factory
(** The protocol as a generic object (registers only). *)
