open Nt_base
open Nt_spec

let project (schema : Schema.t) x trace =
  Trace.filter
    (fun a ->
      match a with
      | Action.Create t | Action.Request_commit (t, _) -> (
          match System_type.object_of schema.Schema.sys t with
          | Some y -> Obj_id.equal x y
          | None -> false)
      | Action.Inform_commit (y, _) | Action.Inform_abort (y, _) ->
          Obj_id.equal x y
      | _ -> false)
    trace

let kind_of (schema : Schema.t) t =
  match schema.Schema.op_of t with
  | Datatype.Read -> `Read
  | Datatype.Write v -> `Write v
  | op -> raise (Datatype.Unsupported op)

let replay (schema : Schema.t) x trace =
  let dt = schema.Schema.dtype_of x in
  let n = Trace.length trace in
  let rec go s i =
    if i >= n then Ok s
    else
      match Trace.get trace i with
      | Action.Create t -> go (Moss_object.create s t) (i + 1)
      | Action.Inform_commit (_, t) -> go (Moss_object.inform_commit s t) (i + 1)
      | Action.Inform_abort (_, t) -> go (Moss_object.inform_abort s t) (i + 1)
      | Action.Request_commit (t, v) -> (
          match Moss_object.request_commit s t (kind_of schema t) with
          | Some (s', v') when Value.equal v v' -> go s' (i + 1)
          | Some _ ->
              Error
                (Format.asprintf "event %d: wrong return value for %a" i
                   Txn_id.pp t)
          | None ->
              Error
                (Format.asprintf "event %d: REQUEST_COMMIT(%a) not enabled" i
                   Txn_id.pp t))
      | a -> Error (Format.asprintf "event %d: foreign action %a" i Action.pp a)
  in
  go (Moss_object.initial dt.Datatype.init) 0

let local_orphan x trace t =
  let ancs = Txn_id.ancestors t in
  Array.exists
    (fun a ->
      match a with
      | Action.Inform_abort (y, u) ->
          Obj_id.equal x y && List.exists (Txn_id.equal u) ancs
      | _ -> false)
    trace

let lock_visible x trace t t' =
  (* [chain] is ancestors t - ancestors t', leaf-to-root; greedily match
     one INFORM_COMMIT per element in ascending order. *)
  let chain = Txn_id.ancestors_upto t ~upto:t' in
  let n = Trace.length trace in
  let rec go from = function
    | [] -> true
    | u :: rest ->
        let rec find i =
          if i >= n then None
          else
            match Trace.get trace i with
            | Action.Inform_commit (y, w)
              when Obj_id.equal x y && Txn_id.equal w u ->
                Some i
            | _ -> find (i + 1)
        in
        (match find from with
        | Some i -> go (i + 1) rest
        | None -> false)
  in
  go 0 chain

let responded_accesses trace =
  Array.to_list trace
  |> List.filter_map (fun a ->
         match a with Action.Request_commit (t, _) -> Some t | _ -> None)

let lemma9 schema x trace =
  match replay schema x trace with
  | Error _ -> true
  | Ok s -> Moss_object.lock_chain_ok s

let highest_lock_visible x trace t =
  let rec climb best candidate =
    match candidate with
    | None -> best
    | Some c ->
        if lock_visible x trace t c then climb c (Txn_id.parent c) else best
  in
  climb t (Txn_id.parent t)

let lemma10 schema x trace =
  match replay schema x trace with
  | Error _ -> true
  | Ok s ->
      List.for_all
        (fun t ->
          local_orphan x trace t
          ||
          let t' = highest_lock_visible x trace t in
          match kind_of schema t with
          | `Write _ -> Txn_id.Map.mem t' s.Moss_object.write_lockholders
          | `Read -> Txn_id.Set.mem t' s.Moss_object.read_lockholders)
        (responded_accesses trace)

let lemma12_13 schema x trace =
  match replay schema x trace with
  | Error _ -> true
  | Ok s ->
      List.for_all
        (fun t ->
          local_orphan x trace t
          ||
          (* Least ancestor of [t] holding the write lock. *)
          let u =
            List.find_opt
              (fun a -> Txn_id.Map.mem a s.Moss_object.write_lockholders)
              (Txn_id.ancestors t)
          in
          match u with
          | None -> false
          | Some u ->
              let stored = Txn_id.Map.find u s.Moss_object.write_lockholders in
              let gamma =
                Trace.filter
                  (fun a ->
                    match Action.transaction a with
                    | Some w -> lock_visible x trace w t
                    | None -> false)
                  trace
              in
              Value.equal stored (Rw.final_value schema gamma x))
        (responded_accesses trace)
