open Nt_base
open Nt_spec

type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  write_lockholders : Value.t Txn_id.Map.t;
  read_lockholders : Txn_id.Set.t;
}

let initial init_value =
  {
    created = Txn_id.Set.empty;
    commit_requested = Txn_id.Set.empty;
    write_lockholders = Txn_id.Map.singleton Txn_id.root init_value;
    read_lockholders = Txn_id.Set.empty;
  }

let create s t = { s with created = Txn_id.Set.add t s.created }

let inform_commit s t =
  if Txn_id.is_root t then s
  else
    let p = Txn_id.parent_exn t in
    let s =
      match Txn_id.Map.find_opt t s.write_lockholders with
      | Some v ->
          {
            s with
            write_lockholders =
              Txn_id.Map.add p v (Txn_id.Map.remove t s.write_lockholders);
          }
      | None -> s
    in
    if Txn_id.Set.mem t s.read_lockholders then
      {
        s with
        read_lockholders =
          Txn_id.Set.add p (Txn_id.Set.remove t s.read_lockholders);
      }
    else s

let inform_abort s t =
  {
    s with
    write_lockholders =
      Txn_id.Map.filter
        (fun u _ -> not (Txn_id.is_descendant u t))
        s.write_lockholders;
    read_lockholders =
      Txn_id.Set.filter
        (fun u -> not (Txn_id.is_descendant u t))
        s.read_lockholders;
  }

let least_write_lockholder s =
  match
    Txn_id.Map.fold
      (fun t v acc ->
        match acc with
        | Some (t', _) when Txn_id.depth t' >= Txn_id.depth t -> acc
        | _ -> Some (t, v))
      s.write_lockholders None
  with
  | Some (t, _) -> t
  | None -> invalid_arg "Moss_object.least_write_lockholder: no holders"

let respondable s t =
  Txn_id.Set.mem t s.created && not (Txn_id.Set.mem t s.commit_requested)

let write_locks_ancestral s t =
  Txn_id.Map.for_all (fun u _ -> Txn_id.is_ancestor u t) s.write_lockholders

let read_locks_ancestral s t =
  Txn_id.Set.for_all (fun u -> Txn_id.is_ancestor u t) s.read_lockholders

let request_commit s t kind =
  if not (respondable s t) then None
  else
    match kind with
    | `Read ->
        if write_locks_ancestral s t then begin
          let least = least_write_lockholder s in
          let v = Txn_id.Map.find least s.write_lockholders in
          Some
            ( {
                s with
                commit_requested = Txn_id.Set.add t s.commit_requested;
                read_lockholders = Txn_id.Set.add t s.read_lockholders;
              },
              v )
        end
        else None
    | `Write data ->
        if write_locks_ancestral s t && read_locks_ancestral s t then
          Some
            ( {
                s with
                commit_requested = Txn_id.Set.add t s.commit_requested;
                write_lockholders = Txn_id.Map.add t data s.write_lockholders;
              },
              Value.Ok )
        else None

let blockers s t kind =
  let writes =
    Txn_id.Map.fold
      (fun u _ acc -> if Txn_id.is_ancestor u t then acc else u :: acc)
      s.write_lockholders []
  in
  match kind with
  | `Read -> writes
  | `Write _ ->
      Txn_id.Set.fold
        (fun u acc -> if Txn_id.is_ancestor u t then acc else u :: acc)
        s.read_lockholders writes

(* As [blockers], but each holder tagged with the kind of lock it
   holds — the shape [Gobj.waiting_on] (and the lock-wait telemetry)
   wants. *)
let blockers_kinded s t kind =
  let writes =
    Txn_id.Map.fold
      (fun u _ acc ->
        if Txn_id.is_ancestor u t then acc else (u, Nt_gobj.Gobj.Write) :: acc)
      s.write_lockholders []
  in
  match kind with
  | `Read -> writes
  | `Write _ ->
      Txn_id.Set.fold
        (fun u acc ->
          if Txn_id.is_ancestor u t then acc else (u, Nt_gobj.Gobj.Read) :: acc)
        s.read_lockholders writes

let lock_chain_ok s =
  Txn_id.Map.for_all
    (fun t _ ->
      Txn_id.Map.for_all (fun t' _ -> Txn_id.related t t') s.write_lockholders
      && Txn_id.Set.for_all (fun t' -> Txn_id.related t t') s.read_lockholders)
    s.write_lockholders

let kind_of_op = function
  | Datatype.Read -> `Read
  | Datatype.Write v -> `Write v
  | op -> raise (Datatype.Unsupported op)

let factory : Nt_gobj.Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let state = ref (initial dt.Datatype.init) in
  {
    Nt_gobj.Gobj.obj = x;
    create = (fun t -> state := create !state t);
    inform_commit = (fun t -> state := inform_commit !state t);
    inform_abort = (fun t -> state := inform_abort !state t);
    try_respond =
      (fun t ->
        match request_commit !state t (kind_of_op (schema.Schema.op_of t)) with
        | Some (s', v) ->
            state := s';
            Some v
        | None -> None);
    waiting_on =
      (fun t -> blockers_kinded !state t (kind_of_op (schema.Schema.op_of t)));
  }
