(** Moss' read/write locking object [M1_X] (Section 5.2).

    The automaton keeps four components: the [created] and
    [commit-requested] access sets, the [read-lockholders] set, and the
    [write-lockholders] {e with a value per holder} — a stack of
    versions threaded up the transaction tree.  An [INFORM_COMMIT]
    promotes a holder's lock (and stored value) to its parent; an
    [INFORM_ABORT] discards every lock held by a descendant of the
    aborted transaction.  A read may respond only when every write
    lock is held by an ancestor, returning the value of the {e least}
    (deepest) write-lockholder; a write additionally needs every read
    lock ancestral and pushes its datum as its own version.

    The pure transition functions are exposed so the test suite can
    assert the paper's invariants (Lemmas 9–13) on every reachable
    prefix; {!factory} wraps them as a {!Nt_gobj.Gobj.t} for the
    runtime. *)

open Nt_base


type state = {
  created : Txn_id.Set.t;
  commit_requested : Txn_id.Set.t;
  write_lockholders : Value.t Txn_id.Map.t;
      (** Each write-lockholder mapped to its stored value. *)
  read_lockholders : Txn_id.Set.t;
}

val initial : Value.t -> state
(** [T0] holds the write lock with the serial object's initial value. *)

val create : state -> Txn_id.t -> state
(** The [CREATE(T)] input. *)

val inform_commit : state -> Txn_id.t -> state
(** Promote [T]'s locks (and stored value) to [parent T]. *)

val inform_abort : state -> Txn_id.t -> state
(** Discard all locks held by descendants of [T]. *)

val least_write_lockholder : state -> Txn_id.t
(** The deepest write-lockholder (the unique minimal element of the
    lock chain).  Raises [Invalid_argument] on an empty lock set, which
    is unreachable from {!initial} unless [T0] itself is aborted. *)

val request_commit : state -> Txn_id.t -> [ `Read | `Write of Value.t ] ->
  (state * Value.t) option
(** Fire [REQUEST_COMMIT(T, v)] if its precondition holds: [None] when
    [T] is unknown/already responded or a conflicting lock is held by a
    non-ancestor. *)

val blockers : state -> Txn_id.t -> [ `Read | `Write of Value.t ] -> Txn_id.t list
(** The non-ancestral holders of conflicting locks — why a
    [request_commit] would return [None]. *)

val blockers_kinded :
  state ->
  Txn_id.t ->
  [ `Read | `Write of Value.t ] ->
  (Txn_id.t * Nt_gobj.Gobj.lock_kind) list
(** {!blockers} with each holder tagged by the lock it holds
    ([Write] for write-lockholders, [Read] for read-lockholders) —
    the shape [Gobj.waiting_on] reports for wait-for diagnostics. *)

val lock_chain_ok : state -> bool
(** Lemma 9 invariant: any write-lockholder is related (ancestor or
    descendant) to every other lockholder. *)

val factory : Nt_gobj.Gobj.factory
(** [M1_X] as a generic object; the schema's operations must be [Read]
    or [Write _] (raises {!Nt_spec.Datatype.Unsupported} otherwise). *)
