(** Executable forms of the [M1_X] lemmas (Section 5.3).

    The paper proves four facts about schedules of [M1_X]; this module
    decides each of them on concrete traces so the test suite can
    assert them over every reachable prefix of every generated
    execution:

    - {b Lemma 9}: conflicting locks are only ever held by relatives;
    - {b Lemma 10}: after a response by a non-local-orphan access [T],
      the highest ancestor to which [T] is lock-visible holds the
      corresponding lock;
    - {b Lemma 12/13}: the stored value of the least write-lockholder
      above [T] equals [final-value] of the events whose transactions
      are lock-visible to [T].

    It also provides [local orphan] and [lock-visible] themselves
    (Section 5.3's vocabulary) and a validated replay of [M1_X]
    schedules. *)

open Nt_base
open Nt_spec

val project : Schema.t -> Obj_id.t -> Trace.t -> Trace.t
(** [beta|M1_X]: creates and responses of accesses to [X], plus the
    inform actions addressed to [X]. *)

val replay :
  Schema.t -> Obj_id.t -> Trace.t -> (Moss_object.state, string) result
(** Replay a projected trace through the pure transitions, validating
    the precondition of every [Request_commit]; [Error] describes the
    first refused step. *)

val local_orphan : Obj_id.t -> Trace.t -> Txn_id.t -> bool
(** An [Inform_abort] at [X] names an ancestor of [T]. *)

val lock_visible : Obj_id.t -> Trace.t -> Txn_id.t -> Txn_id.t -> bool
(** [lock_visible x beta t t']: [beta] contains
    [INFORM_COMMIT_AT(x)OF(U)] for every [U ∈ ancestors t - ancestors
    t'], arranged in ascending (leaf-to-root) order. *)

val lemma9 : Schema.t -> Obj_id.t -> Trace.t -> bool
(** The lock-chain invariant holds in the state reached by the
    projected trace (vacuously true if replay fails). *)

val lemma10 : Schema.t -> Obj_id.t -> Trace.t -> bool
(** For every responded, non-local-orphan access, the highest
    lock-visible ancestor holds the lock of the right kind. *)

val lemma12_13 : Schema.t -> Obj_id.t -> Trace.t -> bool
(** For every responded, non-local-orphan access [T], the value stored
    at the least write-lockholding ancestor of [T] is [final-value] of
    the lock-visible-to-[T] events. *)
