open Nt_base
open Nt_spec
open Nt_serial

type config = { n_replicas : int; read_quorum : int; write_quorum : int }

let intersecting c = c.read_quorum + c.write_quorum > c.n_replicas

type logical_op = L_read | L_write of int * Value.t

type plan = {
  physical_forest : Program.t list;
  physical_schema : Schema.t;
  logical_of : Txn_id.t -> (Obj_id.t * logical_op) option;
  logical_objects : Obj_id.t list;
}

type violation =
  | Phantom_read of Txn_id.t * Value.t
  | Stale_read of Txn_id.t * Txn_id.t * int * int

let replica_name x i = Obj_id.make (Obj_id.name x ^ "#" ^ string_of_int i)

let replicate config ~objects ?(init = Value.Int 0) forest =
  let { n_replicas; read_quorum; write_quorum } = config in
  if
    n_replicas < 1 || read_quorum < 1 || write_quorum < 1
    || read_quorum > n_replicas || write_quorum > n_replicas
  then invalid_arg "Replication.replicate: quorums out of range";
  let version = ref 0 in
  let rotation = ref 0 in
  let mapping = Txn_id.Tbl.create 64 in
  let is_logical x = List.exists (Obj_id.equal x) objects in
  let quorum start size = List.init size (fun i -> (start + i) mod n_replicas) in
  let rec transform path prog =
    match prog with
    | Program.Access (x, op) when is_logical x -> (
        let node = Txn_id.of_path (List.rev path) in
        match op with
        | Datatype.Read ->
            incr rotation;
            Txn_id.Tbl.replace mapping node (x, L_read);
            Program.par
              (List.map
                 (fun i -> Program.access (replica_name x i) Datatype.Vread)
                 (quorum !rotation read_quorum))
        | Datatype.Write v ->
            incr version;
            let ver = !version in
            Txn_id.Tbl.replace mapping node (x, L_write (ver, v));
            Program.par
              (List.map
                 (fun i ->
                   Program.access (replica_name x i) (Datatype.Vwrite (ver, v)))
                 (quorum ver write_quorum))
        | op ->
            invalid_arg
              ("Replication.replicate: not a read/write access: "
             ^ Datatype.op_to_string op))
    | Program.Access (x, _) ->
        invalid_arg
          ("Replication.replicate: access to undeclared logical object "
         ^ Obj_id.name x)
    | Program.Node (comb, children) ->
        Program.Node
          (comb, List.mapi (fun i c -> transform (i :: path) c) children)
  in
  let physical_forest = List.mapi (fun i p -> transform [ i ] p) forest in
  let replica_objects =
    List.concat_map
      (fun x ->
        List.init config.n_replicas (fun i ->
            (replica_name x i, Vreg.make ~init ())))
      objects
  in
  {
    physical_forest;
    physical_schema = Program.schema_of ~objects:replica_objects physical_forest;
    logical_of = (fun t -> Txn_id.Tbl.find_opt mapping t);
    logical_objects = objects;
  }

(* Index of the first event satisfying [p]. *)
let index_of trace p = Trace.find_first p trace

let committed trace t =
  index_of trace (fun a -> a = Action.Commit t) <> None

let read_result (_plan : plan) trace node =
  (* Committed replica responses of the node's children. *)
  let results =
    Array.to_list trace
    |> List.filter_map (fun a ->
           match a with
           | Action.Request_commit (child, Value.Pair (Value.Int ver, v))
             when (not (Txn_id.is_root child))
                  && Txn_id.equal (Txn_id.parent_exn child) node
                  && committed trace child ->
               Some (ver, v)
           | _ -> None)
  in
  match results with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun (bver, bv) (ver, v) ->
             if ver > bver then (ver, v) else (bver, bv))
           (List.hd results) (List.tl results))

let toplevel t =
  match List.rev (Txn_id.path t) with
  | [] -> invalid_arg "Replication.toplevel: root"
  | _ -> Txn_id.of_path [ List.hd (Txn_id.path t) ]

let check_one_copy (plan : plan) trace =
  (* Collect committed, T0-visible logical nodes. *)
  let comm = Trace.committed trace in
  let visible t =
    List.for_all
      (fun a -> Txn_id.is_root a || Txn_id.Set.mem a comm)
      (Txn_id.ancestors t)
  in
  let nodes =
    Array.to_list trace
    |> List.filter_map (fun a ->
           match a with
           | Action.Commit t -> (
               match plan.logical_of t with
               | Some (x, op) when visible t -> Some (t, x, op)
               | _ -> None)
           | _ -> None)
  in
  let writes =
    List.filter_map
      (fun (t, x, op) ->
        match op with L_write (ver, v) -> Some (t, x, ver, v) | L_read -> None)
      nodes
  in
  let reads =
    List.filter_map
      (fun (t, x, op) -> match op with L_read -> Some (t, x) | _ -> None)
      nodes
  in
  let write_pairs x =
    List.filter_map
      (fun (_, y, ver, v) ->
        if Obj_id.equal x y then Some (ver, v) else None)
      writes
  in
  let initial_pair = (0, Value.Int 0) in
  let find_violation =
    List.find_map
      (fun (r, x) ->
        match read_result plan trace r with
        | None -> None
        | Some (rver, rv) ->
            if
              not
                (List.exists
                   (fun (ver, v) -> ver = rver && Value.equal v rv)
                   (initial_pair :: write_pairs x))
            then Some (Phantom_read (r, Value.Pair (Value.Int rver, rv)))
            else
              (* Regression: a write whose top-level transaction
                 committed before this read's node was created must be
                 covered by the returned version. *)
              let created_r =
                index_of trace (fun a -> a = Action.Create r)
              in
              List.find_map
                (fun (w, y, ver, _) ->
                  if not (Obj_id.equal x y) then None
                  else
                    let top_commit =
                      index_of trace (fun a -> a = Action.Commit (toplevel w))
                    in
                    match (top_commit, created_r) with
                    | Some cw, Some cr when cw < cr && rver < ver ->
                        Some (Stale_read (r, w, rver, ver))
                    | _ -> None)
                writes)
      reads
  in
  match find_violation with Some v -> Error v | None -> Ok ()

let pp_violation fmt = function
  | Phantom_read (r, v) ->
      Format.fprintf fmt "phantom read: %a returned unwritten %a" Txn_id.pp r
        Value.pp v
  | Stale_read (r, w, rver, wver) ->
      Format.fprintf fmt
        "stale read: %a returned version %d though %a (version %d) had \
         committed"
        Txn_id.pp r rver Txn_id.pp w wver
