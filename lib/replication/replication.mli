(** Quorum-replicated read/write objects on top of nested transactions
    — the replicated-data management the paper cites as a companion
    application of its framework ([6], Goldman–Lynch style quorum
    consensus).

    A {e logical} register [X] is realized by [n_replicas] versioned
    registers ({!Nt_spec.Vreg}) named [X#0 .. X#n-1].  The
    {!replicate} transformer rewrites a logical forest:

    - a logical write becomes a subtransaction issuing [Vwrite (ver, v)]
      {e concurrently} to [write_quorum] replicas, with a globally
      unique, generation-ordered version number (the Thomas write rule
      at the replicas makes concurrent installs commute);
    - a logical read becomes a subtransaction issuing [Vread]
      concurrently to [read_quorum] replicas; its logical result is the
      max-version pair among the committed responses.

    Replica-level serializability is inherited from whatever protocol
    runs the physical system (checked by Theorem 19 as usual).  The
    {e one-copy} guarantee is separate and quorum-dependent:
    {!check_one_copy} verifies on a physical trace that every
    committed logical read returns a genuinely written (or initial)
    pair, and that reads never regress — a read whose subtransaction
    started after a logical write's subtransaction committed returns a
    version at least as new.  With [read_quorum + write_quorum >
    n_replicas] the intersection argument makes this hold (asserted by
    the tests); with non-intersecting quorums Experiment E11 shows it
    failing. *)

open Nt_base
open Nt_spec
open Nt_serial

type config = {
  n_replicas : int;
  read_quorum : int;
  write_quorum : int;
}

val intersecting : config -> bool
(** [read_quorum + write_quorum > n_replicas]. *)

type logical_op =
  | L_read  (** Result derived from the replica responses. *)
  | L_write of int * Value.t  (** The assigned version and datum. *)

type plan = {
  physical_forest : Program.t list;
  physical_schema : Schema.t;
  logical_of : Txn_id.t -> (Obj_id.t * logical_op) option;
      (** Maps the transformed subtransaction nodes back to their
          logical accesses. *)
  logical_objects : Obj_id.t list;
}

val replicate :
  config ->
  objects:Obj_id.t list ->
  ?init:Value.t ->
  Program.t list ->
  plan
(** Transform a logical forest whose accesses are [Read]/[Write] on
    the given logical objects.  Replica choice rotates deterministically
    with the version counter so load spreads and quorums vary.
    Raises [Invalid_argument] on foreign operations or quorums out of
    range. *)

type violation =
  | Phantom_read of Txn_id.t * Value.t
      (** A committed logical read returned a pair never written. *)
  | Stale_read of Txn_id.t * Txn_id.t * int * int
      (** [(reader, writer, read_version, written_version)]: the
          writer's subtransaction committed before the reader's was
          created, yet the read returned an older version. *)

val read_result : plan -> Trace.t -> Txn_id.t -> (int * Value.t) option
(** The logical result of a read subtransaction in a trace: the
    max-version pair among its committed replica responses ([None] if
    no replica response committed). *)

val check_one_copy : plan -> Trace.t -> (unit, violation) result
(** Check the one-copy conditions over all committed logical accesses
    of the trace. *)

val pp_violation : Format.formatter -> violation -> unit
