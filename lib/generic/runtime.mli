(** The generic system runtime (Section 5.1).

    Composes the transaction interpreters, the generic objects of a
    chosen protocol, and the generic controller, and interleaves their
    enabled actions under a seeded scheduling policy.  The controller is
    fully permissive, exactly as in the paper: it creates any requested
    transaction, commits anything that requested commit, may abort
    anything requested and incomplete (used for fault injection and
    deadlock victims), reports completions to parents, and informs every
    object of every completion — in any order the policy picks.

    Two policies:
    {ul
    {- [Random_step]: one uniformly random enabled action per step —
       maximal interleaving nondeterminism, ideal for model-checking
       style testing;}
    {- [Bsp_rounds]: each round sweeps all currently enabled actions
       (re-checking enabledness as it fires them).  Rounds approximate
       parallel time: the serial scheduler does one action per round,
       so round counts compare concurrency across protocols.}}

    Blocked accesses (a [try_respond] returning [None]) are retried;
    when {e nothing} in the system can move and blocked accesses
    remain, the runtime declares deadlock and aborts one blocked access
    chosen at random (a behavior the permissive controller allows), so
    executions always terminate. *)

open Nt_base
open Nt_spec
open Nt_serial
open Nt_obs

type policy = Random_step | Bsp_rounds

type inform_policy =
  | Eager  (** Informs compete with every other action (default). *)
  | Lazy
      (** Informs are delivered only when nothing else can move —
          maximal recovery-information latency, an ablation knob for
          how hard each protocol leans on [INFORM_COMMIT]s
          (Experiment E12). *)

type stats = {
  actions : int;  (** Events emitted (= trace length). *)
  rounds : int;  (** Rounds (Bsp) or steps (Random). *)
  blocked_attempts : int;  (** [try_respond] refusals. *)
  deadlock_aborts : int;  (** Victim aborts after a global stall. *)
  deadlock_cycles : int;
      (** How many victims sat on a genuine waits-for cycle (the rest
          were starved by permanent constraints). *)
  injected_aborts : int;  (** Fault-injection aborts. *)
  truncated : bool;  (** Hit [max_steps] before quiescence. *)
}

type result = {
  trace : Trace.t;
  stats : stats;
  committed_top : int;  (** Top-level transactions that committed. *)
  aborted_top : int;  (** Top-level transactions that aborted. *)
}

val run :
  ?policy:policy ->
  ?inform_policy:inform_policy ->
  ?abort_prob:float ->
  ?top_comb:Program.comb ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  seed:int ->
  Schema.t ->
  Nt_gobj.Gobj.factory ->
  Program.t list ->
  result
(** Execute the top-level forest to quiescence.  [abort_prob] is the
    per-step probability of aborting a random live transaction
    (default 0).  [top_comb] is how [T0] issues its children (default
    [Par] — full top-level concurrency).  Defaults: [Random_step]
    policy, [max_steps = 1_000_000].

    [obs] (default {!Nt_obs.Obs.null}) receives the full telemetry of
    the run: a span per transaction ([Create] to [Commit]/[Abort]),
    instants for blocked-access retries, deadlock victims and injected
    aborts, and the [runtime.*]/[txn.*] metrics (rounds, blocked
    attempts and streaks, commit latency in rounds and in ticks). *)
