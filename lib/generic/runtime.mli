(** The generic system runtime (Section 5.1).

    Composes the transaction interpreters, the generic objects of a
    chosen protocol, and the generic controller, and interleaves their
    enabled actions under a seeded scheduling policy.  The controller is
    fully permissive, exactly as in the paper: it creates any requested
    transaction, commits anything that requested commit, may abort
    anything requested and incomplete (used for fault injection and
    deadlock victims), reports completions to parents, and informs every
    object of every completion — in any order the policy picks.

    Two policies:
    {ul
    {- [Random_step]: one uniformly random enabled action per step —
       maximal interleaving nondeterminism, ideal for model-checking
       style testing;}
    {- [Bsp_rounds]: each round sweeps all currently enabled actions
       (re-checking enabledness as it fires them).  Rounds approximate
       parallel time: the serial scheduler does one action per round,
       so round counts compare concurrency across protocols.}}

    Blocked accesses (a [try_respond] returning [None]) are retried;
    when {e nothing} in the system can move and blocked accesses
    remain, the runtime declares deadlock and aborts one blocked access
    chosen at random (a behavior the permissive controller allows), so
    executions always terminate. *)

open Nt_base
open Nt_spec
open Nt_serial
open Nt_obs

type policy = Random_step | Bsp_rounds

type inform_policy =
  | Eager  (** Informs compete with every other action (default). *)
  | Lazy
      (** Informs are delivered only when nothing else can move —
          maximal recovery-information latency, an ablation knob for
          how hard each protocol leans on [INFORM_COMMIT]s
          (Experiment E12). *)

type stats = {
  actions : int;  (** Events emitted (= trace length). *)
  rounds : int;  (** Rounds (Bsp) or steps (Random). *)
  blocked_attempts : int;  (** [try_respond] refusals. *)
  deadlock_aborts : int;  (** Victim aborts after a global stall. *)
  deadlock_cycles : int;
      (** How many victims sat on a genuine waits-for cycle (the rest
          were starved by permanent constraints). *)
  injected_aborts : int;  (** Fault-injection aborts. *)
  truncated : bool;  (** Hit [max_steps] before quiescence. *)
}

type result = {
  trace : Trace.t;
  stats : stats;
  committed_top : int;  (** Top-level transactions that committed. *)
  aborted_top : int;  (** Top-level transactions that aborted. *)
}

(** {2 Open-loop stepping}

    The closed-loop {!run} below is a [make]/[step]-to-quiescence/
    [finish] loop; the pieces are exposed so a server can interleave
    scheduling with arrivals: top-level programs submitted while the
    automaton runs are attached as new children of [T0]
    ({!Txn_interp.append_child}) and stepped under the same policies.
    [`Quiescent] is not termination in that setting — it means nothing
    is enabled {e until the next arrival}. *)

type t
(** A running simulation (mutable). *)

val make :
  ?policy:policy ->
  ?inform_policy:inform_policy ->
  ?abort_prob:float ->
  ?top_comb:Program.comb ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  ?on_action:(Action.t -> unit) ->
  ?commit_gate:(Txn_id.t -> bool) ->
  seed:int ->
  Schema.t ->
  Nt_gobj.Gobj.factory ->
  Program.t list ->
  t
(** Build a simulation over an initial (possibly empty) forest.
    Parameters shared with {!run} mean the same thing.

    [on_action] is invoked at every emitted action, in trace order and
    synchronously within the step that emits it — so a [commit_gate]
    consulted later in the same step observes state that is exactly
    current (the open-loop engine feeds the online {!Nt_sg.Monitor}
    here).

    [commit_gate t] is consulted when the controller is about to
    perform [COMMIT t]; returning [false] vetoes the commit and aborts
    [t] instead (cause [abort.cause.admission]) — a move the fully
    permissive controller allows, so gated executions are still
    behaviors of the generic system. *)

val add_top : t -> Program.t -> Txn_id.t
(** Attach a new top-level program as the next child of [T0] and
    return its name.  The transaction starts unrequested; the
    controller requests and creates it in subsequent {!step}s. *)

val step : t -> [ `Progress | `Quiescent | `Truncated ]
(** One scheduling step (one candidate under [Random_step]; one sweep
    under [Bsp_rounds]).  [`Progress]: an action fired (possibly a
    deadlock-breaking abort).  [`Quiescent]: nothing enabled.
    [`Truncated]: the step budget is exhausted. *)

val abort_txn : t -> ?cause:[ `Orphan | `Injected ] -> Txn_id.t -> bool
(** Abort a transaction from outside the scheduler, if the permissive
    controller currently may (requested and incomplete): emits
    [ABORT], records the cause (default [`Orphan] — the serving-time
    "client vanished" cause) and queues the informs.  Returns [false]
    if the transaction is unknown, not yet requested, or complete. *)

val top_state :
  t -> Txn_id.t -> [ `Unknown | `Running | `Committed of Value.t | `Aborted ]
(** The fate of a transaction as far as the controller knows.
    [`Unknown] also covers a child attached by {!add_top} whose
    [REQUEST_CREATE] has not fired yet. *)

val actions_so_far : t -> int
val steps_so_far : t -> int

val admission_aborts : t -> int
(** Commits vetoed by the [commit_gate] so far. *)

val orphan_aborts : t -> int
(** {!abort_txn} aborts with cause [`Orphan] so far. *)

val finish : t -> result
(** Settle telemetry and package the trace and statistics.  Call once,
    after the last {!step}. *)

val run :
  ?policy:policy ->
  ?inform_policy:inform_policy ->
  ?abort_prob:float ->
  ?top_comb:Program.comb ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  seed:int ->
  Schema.t ->
  Nt_gobj.Gobj.factory ->
  Program.t list ->
  result
(** Execute the top-level forest to quiescence.  [abort_prob] is the
    per-step probability of aborting a random live transaction
    (default 0).  [top_comb] is how [T0] issues its children (default
    [Par] — full top-level concurrency).  Defaults: [Random_step]
    policy, [max_steps = 1_000_000].

    [obs] (default {!Nt_obs.Obs.null}) receives the full telemetry of
    the run: a span per transaction ([Create] to [Commit]/[Abort]),
    instants for blocked-access retries, deadlock victims and injected
    aborts, and the [runtime.*]/[txn.*] metrics (rounds, blocked
    attempts and streaks, commit latency in rounds and in ticks). *)
