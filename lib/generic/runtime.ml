open Nt_base
open Nt_spec
open Nt_serial
open Nt_obs

type policy = Random_step | Bsp_rounds

type inform_policy = Eager | Lazy

type stats = {
  actions : int;
  rounds : int;
  blocked_attempts : int;
  deadlock_aborts : int;
  deadlock_cycles : int;
  injected_aborts : int;
  truncated : bool;
}

type result = {
  trace : Trace.t;
  stats : stats;
  committed_top : int;
  aborted_top : int;
}

type completion = No | Committed | Aborted

type status = {
  mutable requested : bool;
  mutable created : bool;
  mutable commit_value : Value.t option;
  mutable completed : completion;
  mutable reported : bool;
  mutable created_round : int;  (* round of the Create action *)
  mutable created_tick : int;  (* recorder tick of the Create action *)
  mutable blocked_streak : int;  (* consecutive try_respond refusals *)
  mutable blocked_since : int;  (* tick of the streak's first refusal *)
  mutable last_blockers : (Txn_id.t * Nt_gobj.Gobj.lock_kind) list;
      (* holders reported at the latest refusal; event-emitting runs only *)
  mutable refused_c : Metrics.counter option;
      (* the [runtime.refused.<obj>] counter for this access's object,
         resolved on the first refusal and reused: a leaf only ever
         touches one object, so the cache never invalidates *)
  program : Program.t option;  (* None for T0 *)
}

(* The recorder plus its pre-resolved instruments, so the hot path
   never looks instruments up by name. *)
type obs_cache = {
  o : Obs.t;
  c_rounds : Metrics.counter;
  c_blocked : Metrics.counter;
  c_dlk_aborts : Metrics.counter;
  c_dlk_cycles : Metrics.counter;
  c_injected : Metrics.counter;
  c_wf_edges : Metrics.counter;
  c_wf_near : Metrics.counter;
  c_abort_lock : Metrics.counter;
  c_abort_parent : Metrics.counter;
  c_abort_injected : Metrics.counter;
  c_abort_admission : Metrics.counter;
  c_abort_orphan : Metrics.counter;
  h_commit_rounds : Metrics.histogram;
  h_blocked_streak : Metrics.histogram;
  h_wait_ticks : Metrics.histogram;
}

let obs_cache o =
  let m = Obs.metrics o in
  {
    o;
    c_rounds = Metrics.counter m "runtime.rounds";
    c_blocked = Metrics.counter m "runtime.blocked";
    c_dlk_aborts = Metrics.counter m "runtime.deadlock.aborts";
    c_dlk_cycles = Metrics.counter m "runtime.deadlock.cycles";
    c_injected = Metrics.counter m "runtime.injected.aborts";
    c_wf_edges = Metrics.counter m "runtime.waitfor.edges";
    c_wf_near = Metrics.counter m "runtime.waitfor.near_cycles";
    c_abort_lock = Metrics.counter m "abort.cause.lock_conflict";
    c_abort_parent = Metrics.counter m "abort.cause.parent";
    c_abort_injected = Metrics.counter m "abort.cause.injected";
    c_abort_admission = Metrics.counter m "abort.cause.admission";
    c_abort_orphan = Metrics.counter m "abort.cause.orphan";
    h_commit_rounds = Metrics.histogram m "txn.commit.rounds";
    h_blocked_streak = Metrics.histogram m "runtime.blocked.streak";
    h_wait_ticks = Metrics.histogram m "txn.wait.ticks";
  }

(* A controller/runtime action candidate.  [Try_respond] may refuse. *)
type candidate =
  | C_interp_output of Txn_id.t * Txn_interp.output
  | C_create of Txn_id.t
  | C_try_respond of Txn_id.t
  | C_commit of Txn_id.t
  | C_report of Txn_id.t
  | C_inform of Obj_id.t * Txn_id.t * completion

type sim = {
  schema : Schema.t;
  rng : Rng.t;
  statuses : status Txn_id.Tbl.t;
  interps : Txn_interp.t Txn_id.Tbl.t;
  objects : (Obj_id.t * Nt_gobj.Gobj.t) list;
  obs : obs_cache;
  c_refused : Metrics.counter Obj_id.Tbl.t;
      (* one [runtime.refused.<obj>] counter per schema object, resolved
         up front so a refusal costs a table probe plus an increment;
         empty (and untouched) when the recorder is disabled *)
  obs_on : bool;  (* Obs.enabled obs.o, hoisted for the hot path *)
  obs_emit : bool;  (* Obs.emitting obs.o, likewise *)
  obs_emit_waits : bool;  (* Obs.emitting_waits obs.o: blocked-access
                             bookkeeping is maintained exactly when the
                             sink wants Wait events *)
  obs_base : int;  (* recorder clock at run start; ticks = base + n_actions *)
  policy : policy;
  inform_policy : inform_policy;
  abort_prob : float;
  max_steps : int;
  on_action : Action.t -> unit;
      (* invoked at every emit, in trace order — the open-loop engine
         feeds the online monitor here so a commit gate consulted
         mid-step sees a monitor that is exactly current *)
  commit_gate : (Txn_id.t -> bool) option;
      (* admission: a [C_commit t] fires only if the gate allows it;
         a refusal aborts [t] instead (the permissive controller may
         abort anything requested and incomplete) *)
  blocked_now : (int, unit Txn_id.Tbl.t) Hashtbl.t;
      (* accesses whose latest try_respond refused; maintained only on
         event-emitting runs (entries validated against status at use) *)
  mutable informed : (Obj_id.t * Txn_id.t) list;
      (* pending informs, newest first *)
  mutable buf : Action.t list;  (* trace, newest first *)
  mutable n_actions : int;
  mutable round_no : int;
  mutable steps : int;
  mutable truncated : bool;
  mutable blocked_attempts : int;
  mutable deadlock_aborts : int;
  mutable deadlock_cycles : int;
  mutable injected_aborts : int;
  mutable admission_aborts : int;
  mutable orphan_aborts : int;
}

type t = sim

(* The recorder runs the timestamp-passing protocol (span hooks carry
   tick [obs_base + n_actions], totals settled once at the end of the
   run), so actions that neither open nor close a span never touch it
   at all. *)
let emit sim a =
  sim.buf <- a :: sim.buf;
  sim.n_actions <- sim.n_actions + 1;
  sim.on_action a

let status sim t =
  match Txn_id.Tbl.find_opt sim.statuses t with
  | Some s -> s
  | None -> invalid_arg ("Runtime: unknown transaction " ^ Txn_id.to_string t)

let add_status sim t program =
  Txn_id.Tbl.replace sim.statuses t
    {
      requested = false;
      created = false;
      commit_value = None;
      completed = No;
      reported = false;
      created_round = 0;
      created_tick = 0;
      blocked_streak = 0;
      blocked_since = 0;
      last_blockers = [];
      refused_c = None;
      program;
    }

let object_of sim x =
  match List.find_opt (fun (y, _) -> Obj_id.equal x y) sim.objects with
  | Some (_, o) -> o
  | None -> invalid_arg ("Runtime: unknown object " ^ Obj_id.name x)

let is_access sim t = System_type.is_access sim.schema.Schema.sys t

(* Enumerate currently enabled candidates.  Listed in a deterministic
   order; the policy decides what fires. *)
let candidates sim =
  let acc = ref [] in
  let add c = acc := c :: !acc in
  (* Interpreter outputs. *)
  Txn_id.Tbl.iter
    (fun t interp ->
      List.iter (fun o -> add (C_interp_output (t, o))) (Txn_interp.enabled_outputs interp))
    sim.interps;
  (* Controller actions per transaction status. *)
  Txn_id.Tbl.iter
    (fun t s ->
      if s.requested && (not s.created) && s.completed = No then add (C_create t);
      if s.created && s.commit_value = None && is_access sim t && s.completed = No
      then add (C_try_respond t);
      if s.commit_value <> None && s.completed = No then add (C_commit t);
      if s.completed <> No && not s.reported then add (C_report t))
    sim.statuses;
  (* Informs. *)
  List.iter
    (fun (x, t) ->
      let s = status sim t in
      match s.completed with
      | Committed -> add (C_inform (x, t, Committed))
      | Aborted -> add (C_inform (x, t, Aborted))
      | No -> assert false)
    sim.informed;
  !acc

(* Root-cause taxonomy for the metrics registry: an abort whose proper
   ancestor is already aborted is collateral of that ancestor's fate,
   whatever mechanism delivered it; otherwise the trigger (deadlock
   breaking = lock conflict, or fault injection) is the cause. *)
let record_abort_cause sim t cause =
  let ancestor_aborted =
    List.exists
      (fun a ->
        match Txn_id.Tbl.find_opt sim.statuses a with
        | Some sa -> sa.completed = Aborted
        | None -> false)
      (Txn_id.proper_ancestors t)
  in
  if ancestor_aborted then Metrics.incr sim.obs.c_abort_parent
  else
    match cause with
    | `Deadlock -> Metrics.incr sim.obs.c_abort_lock
    | `Injected -> Metrics.incr sim.obs.c_abort_injected
    | `Admission -> Metrics.incr sim.obs.c_abort_admission
    | `Orphan -> Metrics.incr sim.obs.c_abort_orphan

let do_abort sim ~cause t =
  let s = status sim t in
  s.completed <- Aborted;
  emit sim (Action.Abort t);
  (if sim.obs_on then begin
     record_abort_cause sim t cause;
     let ts = sim.obs_base + sim.n_actions in
     (* A transaction can abort before it was ever created; give such a
        span zero duration, as the recorder's generic path does. *)
     let began = if s.created then s.created_tick else ts in
     Obs.span_end sim.obs.o ts ~began t Event.Aborted
   end);
  List.iter (fun (x, _) -> sim.informed <- (x, t) :: sim.informed) sim.objects

(* Blocked accesses, indexed by their top-level transaction so the
   wait-for scan below only visits candidates that can possibly lie
   inside a holder's subtree. *)
let top_component t =
  match Txn_id.path t with [] -> -1 | i :: _ -> i

let blocked_add sim t =
  let top = top_component t in
  let tbl =
    match Hashtbl.find_opt sim.blocked_now top with
    | Some tbl -> tbl
    | None ->
        let tbl = Txn_id.Tbl.create 8 in
        Hashtbl.add sim.blocked_now top tbl;
        tbl
  in
  Txn_id.Tbl.replace tbl t ()

let blocked_remove sim t =
  match Hashtbl.find_opt sim.blocked_now (top_component t) with
  | Some tbl -> Txn_id.Tbl.remove tbl t
  | None -> ()

(* Wait-for accounting (event-emitting runs only): [t] was refused
   because of the non-ancestral [holders].  Every other currently
   blocked access [b] inside a holder's subtree is one [t] now waits
   for (that subtree cannot release its locks while [b] is stuck); if
   [b]'s own latest blockers put [t]'s subtree in the way as well, the
   pair is a near-cycle — the shape {!break_deadlock} would abort. *)
let record_waitfor sim t holders =
  let seen_tops = ref [] in
  List.iter
    (fun (h0, _) ->
      let top = top_component h0 in
      if not (List.mem top !seen_tops) then begin
        seen_tops := top :: !seen_tops;
        match Hashtbl.find_opt sim.blocked_now top with
        | None -> ()
        | Some tbl ->
            (* Entries gone stale without an observed unblock (the
               transaction aborted, or committed straight from a retry)
               are dropped as they are met, keeping the index bounded
               by the currently blocked set. *)
            let stale = ref [] in
            Txn_id.Tbl.iter
              (fun b () ->
                if not (Txn_id.equal t b) then
                  match Txn_id.Tbl.find_opt sim.statuses b with
                  | Some sb
                    when sb.completed = No && sb.commit_value = None
                         && sb.blocked_streak > 0 ->
                      if
                        List.exists
                          (fun (h, _) -> Txn_id.is_descendant b h)
                          holders
                      then begin
                        Metrics.incr sim.obs.c_wf_edges;
                        if
                          List.exists
                            (fun (h', _) -> Txn_id.is_descendant t h')
                            sb.last_blockers
                        then Metrics.incr sim.obs.c_wf_near
                      end
                  | Some _ | None -> stale := b :: !stale)
              tbl;
            List.iter (Txn_id.Tbl.remove tbl) !stale
      end)
    holders

(* Fire a candidate; returns whether an action was emitted. *)
let fire sim c =
  match c with
  | C_interp_output (t, Txn_interp.Request_child (i, prog)) ->
      let child = Txn_id.child t i in
      add_status sim child (Some prog);
      (status sim child).requested <- true;
      Txn_interp.note_child_requested (Txn_id.Tbl.find sim.interps t) i;
      emit sim (Action.Request_create child);
      true
  | C_interp_output (t, Txn_interp.Request_commit v) ->
      let s = status sim t in
      s.commit_value <- Some v;
      Txn_interp.note_commit_requested (Txn_id.Tbl.find sim.interps t);
      emit sim (Action.Request_commit (t, v));
      true
  | C_create t ->
      let s = status sim t in
      s.created <- true;
      s.created_round <- sim.round_no;
      (if is_access sim t then
         (object_of sim (System_type.object_of_exn sim.schema.Schema.sys t)).create
           t
       else
         match s.program with
         | Some (Program.Node (comb, children)) ->
             Txn_id.Tbl.replace sim.interps t (Txn_interp.make t comb children)
         | Some (Program.Access _) | None -> assert false);
      emit sim (Action.Create t);
      if sim.obs_on then begin
        let ts = sim.obs_base + sim.n_actions in
        s.created_tick <- ts;
        Obs.span_begin sim.obs.o ts t
      end;
      true
  | C_try_respond t -> (
      let x = System_type.object_of_exn sim.schema.Schema.sys t in
      let s = status sim t in
      match (object_of sim x).try_respond t with
      | Some v ->
          s.commit_value <- Some v;
          if s.blocked_streak > 0 then begin
            if sim.obs_on then begin
              Metrics.observe sim.obs.h_blocked_streak s.blocked_streak;
              Metrics.observe sim.obs.h_wait_ticks
                (sim.obs_base + sim.n_actions - s.blocked_since);
              if sim.obs_emit_waits then begin
                blocked_remove sim t;
                s.last_blockers <- []
              end
            end;
            s.blocked_streak <- 0
          end;
          emit sim (Action.Request_commit (t, v));
          true
      | None ->
          sim.blocked_attempts <- sim.blocked_attempts + 1;
          s.blocked_streak <- s.blocked_streak + 1;
          (* The [runtime.blocked] counter is settled once at the end of
             the run from [sim.blocked_attempts]; only the event stream
             needs per-attempt work — the wait-for bookkeeping included,
             so a metrics-only recorder pays two field writes here. *)
          (if sim.obs_on then begin
             let ts = sim.obs_base + sim.n_actions in
             if s.blocked_streak = 1 then s.blocked_since <- ts;
             (match s.refused_c with
             | Some c -> Metrics.incr c
             | None -> (
                 match Obj_id.Tbl.find_opt sim.c_refused x with
                 | Some c ->
                     s.refused_c <- Some c;
                     Metrics.incr c
                 | None -> ()));
             if sim.obs_emit_waits then begin
               let holders = (object_of sim x).waiting_on t in
               s.last_blockers <- holders;
               blocked_add sim t;
               record_waitfor sim t holders;
               Obs.instant ~txn:t ~obj:x ~ts sim.obs.o "blocked";
               Obs.wait ~ts sim.obs.o ~txn:t ~obj:x
                 ~holders:
                   (List.map
                      (fun (h, k) -> (h, Nt_gobj.Gobj.lock_kind_string k))
                      holders)
                 ~waited:(ts - s.blocked_since)
             end
           end);
          false)
  | C_commit t
    when (match sim.commit_gate with Some g -> not (g t) | None -> false) ->
      (* Admission veto: performing this commit would close an SG
         cycle.  The permissive controller may abort anything
         requested and incomplete, so the veto is delivered as an
         abort — the resulting behavior is still one the generic
         system allows. *)
      sim.admission_aborts <- sim.admission_aborts + 1;
      if sim.obs_emit then
        Obs.instant ~txn:t
          ~ts:(sim.obs_base + sim.n_actions)
          sim.obs.o "abort.admission";
      do_abort sim ~cause:`Admission t;
      true
  | C_commit t ->
      let s = status sim t in
      s.completed <- Committed;
      emit sim (Action.Commit t);
      if sim.obs_on then begin
        Metrics.observe sim.obs.h_commit_rounds
          (sim.round_no - s.created_round);
        let ts = sim.obs_base + sim.n_actions in
        let began = if s.created then s.created_tick else ts in
        Obs.span_end sim.obs.o ts ~began t Event.Committed
      end;
      List.iter (fun (x, _) -> sim.informed <- (x, t) :: sim.informed) sim.objects;
      true
  | C_report t ->
      let s = status sim t in
      s.reported <- true;
      let parent = Txn_id.parent_exn t in
      let index = Option.get (Txn_id.last_index t) in
      (match Txn_id.Tbl.find_opt sim.interps parent with
      | Some interp -> (
          match s.completed with
          | Committed ->
              Txn_interp.note_child_committed interp index
                (Option.get s.commit_value)
          | Aborted -> Txn_interp.note_child_aborted interp index
          | No -> assert false)
      | None -> assert false);
      (match s.completed with
      | Committed -> emit sim (Action.Report_commit (t, Option.get s.commit_value))
      | Aborted -> emit sim (Action.Report_abort t)
      | No -> assert false);
      true
  | C_inform (x, t, c) ->
      sim.informed <-
        List.filter
          (fun (y, u) -> not (Obj_id.equal x y && Txn_id.equal u t))
          sim.informed;
      (match c with
      | Committed ->
          (object_of sim x).inform_commit t;
          emit sim (Action.Inform_commit (x, t))
      | Aborted ->
          (object_of sim x).inform_abort t;
          emit sim (Action.Inform_abort (x, t))
      | No -> assert false);
      true

(* Maybe inject an abort of a random live, incomplete transaction. *)
let maybe_inject sim abort_prob =
  if abort_prob > 0.0 && Rng.float sim.rng 1.0 < abort_prob then begin
    let victims =
      Txn_id.Tbl.fold
        (fun t s acc ->
          if s.requested && s.completed = No && not (Txn_id.is_root t) then
            t :: acc
          else acc)
        sim.statuses []
    in
    match victims with
    | [] -> ()
    | _ ->
        let t = Rng.pick_list sim.rng victims in
        sim.injected_aborts <- sim.injected_aborts + 1;
        if sim.obs_emit then
          Obs.instant ~txn:t
            ~ts:(sim.obs_base + sim.n_actions)
            sim.obs.o "abort.injected";
        do_abort sim ~cause:`Injected t
  end

(* Break a global stall.  Build the waits-for graph among blocked
   accesses: [a] waits for blocked access [b] when [b] is a descendant
   of one of [a]'s lock/log blockers (that subtree cannot finish, and
   so cannot release, while [b] is stuck).  A cycle is a genuine
   deadlock and its members are the preferred victims; otherwise any
   blocked access is aborted (starvation by an eternal constraint,
   e.g. a too-late multiversion write). *)
let break_deadlock sim =
  let blocked =
    Txn_id.Tbl.fold
      (fun t s acc ->
        if
          s.created && s.commit_value = None && s.completed = No
          && is_access sim t
        then t :: acc
        else acc)
      sim.statuses []
  in
  match blocked with
  | [] -> false
  | _ ->
      let waits_for a =
        let x = System_type.object_of_exn sim.schema.Schema.sys a in
        let blockers = (object_of sim x).waiting_on a in
        List.filter
          (fun b ->
            (not (Txn_id.equal a b))
            && List.exists (fun (u, _) -> Txn_id.is_descendant b u) blockers)
          blocked
      in
      let victim =
        (* DFS for a node on a cycle. *)
        let visiting = Txn_id.Tbl.create 8 and done_ = Txn_id.Tbl.create 8 in
        let found = ref None in
        let rec dfs a =
          if !found = None && not (Txn_id.Tbl.mem done_ a) then
            if Txn_id.Tbl.mem visiting a then found := Some a
            else begin
              Txn_id.Tbl.add visiting a ();
              List.iter dfs (waits_for a);
              Txn_id.Tbl.remove visiting a;
              Txn_id.Tbl.replace done_ a ()
            end
        in
        List.iter dfs blocked;
        !found
      in
      let t =
        match victim with
        | Some v ->
            sim.deadlock_cycles <- sim.deadlock_cycles + 1;
            v
        | None -> Rng.pick_list sim.rng blocked
      in
      sim.deadlock_aborts <- sim.deadlock_aborts + 1;
      if sim.obs_emit then
        Obs.instant ~txn:t
          ~ts:(sim.obs_base + sim.n_actions)
          sim.obs.o "deadlock.victim";
      do_abort sim ~cause:`Deadlock t;
      true


let is_inform = function C_inform _ -> true | _ -> false

let make ?(policy = Random_step) ?(inform_policy = Eager) ?(abort_prob = 0.0)
    ?(top_comb = Program.Par) ?(max_steps = 1_000_000) ?(obs = Obs.null)
    ?(on_action = fun _ -> ()) ?commit_gate ~seed (schema : Schema.t) factory
    forest =
  let sim =
    {
      schema;
      rng = Rng.create seed;
      statuses = Txn_id.Tbl.create 128;
      interps = Txn_id.Tbl.create 64;
      objects = List.map (fun x -> (x, factory schema x)) schema.objects;
      obs = obs_cache obs;
      c_refused =
        (let tbl = Obj_id.Tbl.create 16 in
         if Obs.enabled obs then
           List.iter
             (fun x ->
               Obj_id.Tbl.replace tbl x
                 (Metrics.counter (Obs.metrics obs)
                    ("runtime.refused." ^ Obj_id.name x)))
             schema.objects;
         tbl);
      obs_on = Obs.enabled obs;
      obs_emit = Obs.emitting obs;
      obs_emit_waits = Obs.emitting_waits obs;
      obs_base = Obs.now obs;
      policy;
      inform_policy;
      abort_prob;
      max_steps;
      on_action;
      commit_gate;
      blocked_now = Hashtbl.create 16;
      informed = [];
      buf = [];
      n_actions = 0;
      round_no = 0;
      steps = 0;
      truncated = false;
      blocked_attempts = 0;
      deadlock_aborts = 0;
      deadlock_cycles = 0;
      injected_aborts = 0;
      admission_aborts = 0;
      orphan_aborts = 0;
    }
  in
  (* T0: an always-created interpreter that never commits. *)
  add_status sim Txn_id.root None;
  (status sim Txn_id.root).created <- true;
  Txn_id.Tbl.replace sim.interps Txn_id.root
    (Txn_interp.make ~no_commit:true Txn_id.root top_comb forest);
  sim

let add_top sim prog =
  let root = Txn_id.Tbl.find sim.interps Txn_id.root in
  let i = Txn_interp.append_child root prog in
  Txn_id.child Txn_id.root i

(* One scheduling step: exactly one iteration of the closed-loop run's
   main loop, so [run] (a [step] loop) consumes the RNG identically to
   the pre-stepper implementation and seeded results are preserved.
   [`Quiescent] means nothing is enabled {e now}; an open-loop caller
   may {!add_top} more work and step again. *)
let step sim =
  if sim.steps >= sim.max_steps then begin
    sim.truncated <- true;
    `Truncated
  end
  else begin
    maybe_inject sim sim.abort_prob;
    let all = candidates sim in
    (* Under lazy informs, completion information is delivered only
       when nothing else in the system can move - the worst case for
       protocols that block on visibility or lock inheritance. *)
    let plain, informs =
      match sim.inform_policy with
      | Eager -> (all, [])
      | Lazy -> List.partition (fun c -> not (is_inform c)) all
    in
    let plain = Array.of_list plain and informs = Array.of_list informs in
    if Array.length plain = 0 && Array.length informs = 0 then `Quiescent
    else begin
      sim.round_no <- sim.round_no + 1;
      Rng.shuffle sim.rng plain;
      Rng.shuffle sim.rng informs;
      match sim.policy with
      | Random_step ->
          (* Fire the first candidate that succeeds, informs last. *)
          let fired =
            Array.exists (fun c -> fire sim c) plain
            || Array.exists (fun c -> fire sim c) informs
          in
          sim.steps <- sim.steps + 1;
          if fired then `Progress
          else if break_deadlock sim then `Progress
          else `Quiescent
      | Bsp_rounds ->
          let fired = ref false in
          Array.iter
            (fun c ->
              sim.steps <- sim.steps + 1;
              if fire sim c then fired := true)
            plain;
          if not !fired then
            Array.iter
              (fun c ->
                sim.steps <- sim.steps + 1;
                if fire sim c then fired := true)
              informs;
          if !fired then `Progress
          else if break_deadlock sim then `Progress
          else `Quiescent
    end
  end

let abort_txn sim ?(cause = `Orphan) t =
  match Txn_id.Tbl.find_opt sim.statuses t with
  | Some s when s.requested && s.completed = No ->
      (match cause with
      | `Orphan -> sim.orphan_aborts <- sim.orphan_aborts + 1
      | `Injected -> sim.injected_aborts <- sim.injected_aborts + 1);
      if sim.obs_emit then
        Obs.instant ~txn:t
          ~ts:(sim.obs_base + sim.n_actions)
          sim.obs.o
          (match cause with
          | `Orphan -> "abort.orphan"
          | `Injected -> "abort.injected");
      do_abort sim ~cause:(match cause with `Orphan -> `Orphan | `Injected -> `Injected) t;
      true
  | Some _ | None -> false

let top_state sim t =
  match Txn_id.Tbl.find_opt sim.statuses t with
  | None -> `Unknown
  | Some s -> (
      match s.completed with
      | Committed -> `Committed (Option.get s.commit_value)
      | Aborted -> `Aborted
      | No -> `Running)

let actions_so_far sim = sim.n_actions
let steps_so_far sim = sim.steps
let admission_aborts sim = sim.admission_aborts
let orphan_aborts sim = sim.orphan_aborts

let finish sim =
  (* Counters the simulator already tracks are settled in one batch
     here rather than incremented on the hot path. *)
  if sim.obs_on then begin
    let oc = sim.obs in
    Obs.settle oc.o
      ~clock:(sim.obs_base + sim.n_actions)
      ~actions:sim.n_actions;
    Metrics.incr ~by:sim.round_no oc.c_rounds;
    Metrics.incr ~by:sim.blocked_attempts oc.c_blocked;
    Metrics.incr ~by:sim.deadlock_aborts oc.c_dlk_aborts;
    Metrics.incr ~by:sim.deadlock_cycles oc.c_dlk_cycles;
    Metrics.incr ~by:sim.injected_aborts oc.c_injected
  end;
  let committed_top = ref 0 and aborted_top = ref 0 in
  Txn_id.Tbl.iter
    (fun t s ->
      if Txn_id.depth t = 1 then
        match s.completed with
        | Committed -> incr committed_top
        | Aborted -> incr aborted_top
        | No -> ())
    sim.statuses;
  {
    trace = Trace.of_list (List.rev sim.buf);
    stats =
      {
        actions = sim.n_actions;
        rounds = sim.round_no;
        blocked_attempts = sim.blocked_attempts;
        deadlock_aborts = sim.deadlock_aborts;
        deadlock_cycles = sim.deadlock_cycles;
        injected_aborts = sim.injected_aborts;
        truncated = sim.truncated;
      };
    committed_top = !committed_top;
    aborted_top = !aborted_top;
  }

let run ?policy ?inform_policy ?abort_prob ?top_comb ?max_steps ?obs ~seed
    (schema : Schema.t) factory forest =
  let sim =
    make ?policy ?inform_policy ?abort_prob ?top_comb ?max_steps ?obs ~seed
      schema factory forest
  in
  let rec loop () =
    match step sim with `Progress -> loop () | `Quiescent | `Truncated -> ()
  in
  loop ();
  finish sim
