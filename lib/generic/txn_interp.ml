open Nt_base
open Nt_serial

type t = {
  txn : Txn_id.t;
  comb : Program.comb;
  mutable children : Program.t array;
  mutable summaries : Value.t option array;
  mutable requested : bool array;
  mutable n_children : int;  (* live prefix of the (growable) arrays *)
  mutable awaiting : int;  (* requested but not yet reported *)
  mutable next : int;  (* lowest unrequested child index *)
  mutable commit_requested : bool;
  no_commit : bool;
}

type output = Request_child of int * Program.t | Request_commit of Value.t

let make ?(no_commit = false) txn comb children =
  let children = Array.of_list children in
  let n = Array.length children in
  {
    txn;
    comb;
    children;
    summaries = Array.make n None;
    requested = Array.make n false;
    n_children = n;
    awaiting = 0;
    next = 0;
    commit_requested = false;
    no_commit;
  }

let txn t = t.txn

let append_child t prog =
  if t.commit_requested then
    invalid_arg "Txn_interp.append_child: commit already requested";
  if t.n_children = Array.length t.children then begin
    let cap = max 4 (2 * t.n_children) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 t.n_children;
      b
    in
    t.children <- grow t.children prog;
    t.summaries <- grow t.summaries None;
    t.requested <- grow t.requested false
  end;
  let i = t.n_children in
  t.children.(i) <- prog;
  t.summaries.(i) <- None;
  t.requested.(i) <- false;
  t.n_children <- i + 1;
  i

let enabled_outputs t =
  if t.commit_requested then []
  else
    let n = t.n_children in
    let child_requests =
      match t.comb with
      | Program.Seq ->
          if t.next < n && t.awaiting = 0 then
            [ Request_child (t.next, t.children.(t.next)) ]
          else []
      | Program.Par ->
          if t.next < n then [ Request_child (t.next, t.children.(t.next)) ]
          else []
    in
    if child_requests <> [] then child_requests
    else if t.next >= n && t.awaiting = 0 && not t.no_commit then
      let summaries =
        List.init t.n_children (fun i ->
            match t.summaries.(i) with Some v -> v | None -> assert false)
      in
      [ Request_commit (Value.List summaries) ]
    else []

let note_child_requested t i =
  assert (not t.requested.(i));
  t.requested.(i) <- true;
  t.awaiting <- t.awaiting + 1;
  if i >= t.next then t.next <- i + 1

let note_child_committed t i v =
  assert (t.summaries.(i) = None);
  t.summaries.(i) <- Some (Value.Pair (Value.Bool true, v));
  t.awaiting <- t.awaiting - 1

let note_child_aborted t i =
  assert (t.summaries.(i) = None);
  t.summaries.(i) <- Some (Value.Pair (Value.Bool false, Value.Unit));
  t.awaiting <- t.awaiting - 1

let note_commit_requested t = t.commit_requested <- true
let is_commit_requested t = t.commit_requested
