(** Interpreting transaction automata for {!Nt_serial.Program}s.

    One interpreter per created non-access transaction.  It preserves
    transaction well-formedness by construction: children are requested
    only while the transaction is live and before its own
    [REQUEST_COMMIT]; a [Seq] node requests child [i+1] only after child
    [i] reported; commit is requested only once every requested child
    has reported.  A committed node's value is a [Value.List] of child
    summaries ([Pair (Bool true, v)] / [Pair (Bool false, Unit)]),
    mirroring {!Nt_serial.Serial_exec}. *)

open Nt_base
open Nt_serial

type t

type output =
  | Request_child of int * Program.t
      (** Emit [REQUEST_CREATE] for the child at this index. *)
  | Request_commit of Value.t  (** Emit [REQUEST_COMMIT] with this value. *)

val make : ?no_commit:bool -> Txn_id.t -> Program.comb -> Program.t list -> t
(** [no_commit] suppresses the commit request — used for the [T0]
    interpreter, which models the environment and never completes. *)

val txn : t -> Txn_id.t

val append_child : t -> Program.t -> int
(** Append one more child program, returning its index (= the last
    component of the child's {!Nt_base.Txn_id.t}).  This is how open-loop
    serving attaches a newly submitted top-level transaction to the
    running [T0] interpreter: under [Par] the child is requested like
    any other; under [Seq] it runs after the children before it.
    Raises [Invalid_argument] once the interpreter has requested its
    own commit (never the case for [no_commit] interpreters). *)

val enabled_outputs : t -> output list
(** The outputs currently enabled (zero or more child requests, or the
    commit request). *)

val note_child_requested : t -> int -> unit
val note_child_committed : t -> int -> Value.t -> unit
val note_child_aborted : t -> int -> unit
val note_commit_requested : t -> unit

val is_commit_requested : t -> bool
