open Nt_generic
open Nt_workload

type t = {
  backend : Check.backend;
  scenario : Check.scenario;
  failure_tag : string option;
  crash_seed : int option;
}

let policy_name = function
  | Runtime.Random_step -> "random-step"
  | Runtime.Bsp_rounds -> "bsp-rounds"

let policy_of_name = function
  | "random-step" -> Some Runtime.Random_step
  | "bsp-rounds" -> Some Runtime.Bsp_rounds
  | _ -> None

let inform_name = function Runtime.Eager -> "eager" | Runtime.Lazy -> "lazy"

let inform_of_name = function
  | "eager" -> Some Runtime.Eager
  | "lazy" -> Some Runtime.Lazy
  | _ -> None

let to_string ?failure ?crash_seed backend (sc : Check.scenario) =
  let b = Buffer.create 512 in
  let header k v = Buffer.add_string b (Printf.sprintf "; %s: %s\n" k v) in
  Buffer.add_string b "; ntcheck replay bundle\n";
  header "backend" (Check.backend_name backend);
  header "sched-seed" (string_of_int sc.Check.sched_seed);
  header "policy" (policy_name sc.Check.policy);
  header "inform" (inform_name sc.Check.inform_policy);
  header "abort-prob" (Printf.sprintf "%.17g" sc.Check.abort_prob);
  (match sc.Check.family with
  | Some fam -> header "family" fam
  | None -> ());
  (match crash_seed with
  | Some s -> header "crash-seed" (string_of_int s)
  | None -> ());
  (match failure with
  | Some f ->
      header "failure" (Check.failure_tag f);
      header "failure-detail" (Format.asprintf "%a" Check.pp_failure f)
  | None -> ());
  let objects =
    List.map
      (fun (x, dt) -> (x, Program_io.dtype_decl dt))
      sc.Check.objects
  in
  Buffer.add_string b (Program_io.to_string ~objects sc.Check.forest);
  Buffer.contents b

let headers_of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line = 0 || line.[0] <> ';' then None
         else
           let body = String.trim (String.sub line 1 (String.length line - 1)) in
           match String.index_opt body ':' with
           | None -> None
           | Some i ->
               Some
                 ( String.trim (String.sub body 0 i),
                   String.trim
                     (String.sub body (i + 1) (String.length body - i - 1)) ))

let of_string s =
  let ( let* ) = Result.bind in
  let headers = headers_of_string s in
  let find k = List.assoc_opt k headers in
  let require k =
    match find k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bundle: missing '; %s:' header" k)
  in
  let* backend_s = require "backend" in
  let* backend =
    match Check.backend_of_name backend_s with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "bundle: unknown backend %S" backend_s)
  in
  let* seed_s = require "sched-seed" in
  let* sched_seed =
    match int_of_string_opt seed_s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bundle: bad sched-seed %S" seed_s)
  in
  let* policy =
    match find "policy" with
    | None -> Ok Runtime.Random_step
    | Some p -> (
        match policy_of_name p with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "bundle: unknown policy %S" p))
  in
  let* inform_policy =
    match find "inform" with
    | None -> Ok Runtime.Eager
    | Some p -> (
        match inform_of_name p with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "bundle: unknown inform policy %S" p))
  in
  let* abort_prob =
    match find "abort-prob" with
    | None -> Ok 0.0
    | Some p -> (
        match float_of_string_opt p with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bundle: bad abort-prob %S" p))
  in
  let* crash_seed =
    match find "crash-seed" with
    | None -> Ok None
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok (Some n)
        | None -> Error (Printf.sprintf "bundle: bad crash-seed %S" v))
  in
  let* forest, schema = Program_io.parse s in
  let objects =
    List.map
      (fun x -> (x, schema.Nt_spec.Schema.dtype_of x))
      schema.Nt_spec.Schema.objects
  in
  Ok
    {
      backend;
      scenario =
        {
          Check.forest;
          objects;
          sched_seed;
          policy;
          inform_policy;
          abort_prob;
          family = find "family";
        };
      failure_tag = find "failure";
      crash_seed;
    }

let save ?failure ?crash_seed path backend sc =
  let oc = open_out path in
  output_string oc (to_string ?failure ?crash_seed backend sc);
  close_out oc

let at_path path = function
  | Ok _ as ok -> ok
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let load path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> at_path path (of_string s)
  | exception Sys_error e -> Error e

let load_program path = at_path path (Program_io.load path)
