open Nt_base
open Nt_serial

let n_accesses forest =
  List.fold_left (fun n p -> n + List.length (Program.accesses p)) 0 forest

type shrunk = {
  scenario : Check.scenario;
  failure : Check.failure;
  trace : Trace.t;
  attempts : int;
  deterministic : bool;
}

(* Split [xs] into [n] contiguous chunks (at most [n]; never empty). *)
let chunks n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let hd, tl = take (k - 1) rest in
          (x :: hd, tl)
  in
  let rec go i xs =
    if xs = [] then []
    else
      let k = base + if i < extra then 1 else 0 in
      let c, rest = take (max k 1) xs in
      c :: go (i + 1) rest
  in
  go 0 xs

let complement_of i cs =
  List.concat (List.filteri (fun j _ -> j <> i) cs)

(* Classic ddmin over a list, with [test] deciding whether a sublist
   still fails.  [test] is expected to handle the attempt budget. *)
let ddmin test xs =
  let rec go xs n =
    let len = List.length xs in
    if len < 2 then xs
    else
      let cs = chunks (min n len) xs in
      match List.find_opt test cs with
      | Some c -> go c 2
      | None -> (
          let comps = List.mapi (fun i _ -> complement_of i cs) cs in
          match List.find_opt (fun c -> c <> [] && c <> xs && test c) comps with
          | Some c -> go c (max (n - 1) 2)
          | None -> if n < len then go xs (min len (2 * n)) else xs)
  in
  go xs 2

(* One-step reductions of a program tree, roughly most aggressive
   first: hoist a child over the node, then drop a child, then recurse
   into a child. *)
let rec reductions p =
  match p with
  | Program.Access _ -> []
  | Program.Node (comb, children) ->
      let n = List.length children in
      let hoists = children in
      let drops =
        if n < 2 then []
        else
          List.mapi
            (fun i _ ->
              Program.Node (comb, List.filteri (fun j _ -> j <> i) children))
            children
      in
      let inner =
        List.concat
          (List.mapi
             (fun i c ->
               List.map
                 (fun c' ->
                   Program.Node
                     (comb, List.mapi (fun j x -> if j = i then c' else x) children))
                 (reductions c))
             children)
      in
      hoists @ drops @ inner

(* Candidate forests differing from [forest] in exactly one tree. *)
let forest_reductions forest =
  List.concat
    (List.mapi
       (fun i p ->
         List.map
           (fun p' -> List.mapi (fun j q -> if j = i then p' else q) forest)
           (reductions p))
       forest)

let referenced forest =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc (x, _) -> Obj_id.Set.add x acc)
        acc (Program.accesses p))
    Obj_id.Set.empty forest

let minimize_by ?(max_attempts = 2000) ~run:run_outcome (sc : Check.scenario) =
  let attempts = ref 0 in
  let run s =
    incr attempts;
    (run_outcome s : Check.outcome)
  in
  let fails s =
    if !attempts >= max_attempts then false
    else (run s).Check.failure <> None
  in
  match (run sc).Check.failure with
  | None -> None
  | Some _ ->
      let current = ref sc in
      let improved = ref true in
      while !improved && !attempts < max_attempts do
        improved := false;
        (* 1. ddmin over the top-level transaction list. *)
        let forest' =
          ddmin (fun f -> fails { !current with forest = f }) !current.forest
        in
        if n_accesses forest' < n_accesses !current.forest then begin
          current := { !current with forest = forest' };
          improved := true
        end;
        (* 2. Structural reductions, first acceptable candidate wins;
           loop until none applies. *)
        let continue_struct = ref true in
        while !continue_struct && !attempts < max_attempts do
          match
            List.find_opt
              (fun f -> fails { !current with forest = f })
              (forest_reductions !current.forest)
          with
          | Some f ->
              current := { !current with forest = f };
              improved := true
          | None -> continue_struct := false
        done;
        (* 3. Drop objects no access mentions.  Best-effort: the
           runtime enumerates objects, so a smaller schema can shift
           the interleaving; the candidate is kept only if it still
           fails. *)
        let live = referenced !current.forest in
        let objects' =
          List.filter (fun (x, _) -> Obj_id.Set.mem x live) !current.objects
        in
        if List.length objects' < List.length !current.objects then begin
          let cand = { !current with objects = objects' } in
          if fails cand then begin
            current := cand;
            improved := true
          end
        end;
        (* 4. Simplify the interleaving knobs.  (Compare fields, not
           whole scenarios: [objects] holds closures.) *)
        if !current.Check.abort_prob <> 0.0 then begin
          let cand = { !current with abort_prob = 0.0 } in
          if fails cand then begin
            current := cand;
            improved := true
          end
        end;
        if !current.Check.inform_policy <> Nt_generic.Runtime.Eager then begin
          let cand = { !current with inform_policy = Nt_generic.Runtime.Eager } in
          if fails cand then begin
            current := cand;
            improved := true
          end
        end
      done;
      (* Re-verify determinism of the minimized counterexample. *)
      let o1 = run !current and o2 = run !current in
      let failure =
        match o1.Check.failure with
        | Some f -> f
        | None -> assert false (* [current] only ever holds failing scenarios *)
      in
      let deterministic =
        o1.Check.failure = o2.Check.failure
        && Trace.length o1.Check.trace = Trace.length o2.Check.trace
        &&
        let n = Trace.length o1.Check.trace in
        let rec eq i =
          i >= n
          || Action.equal (Trace.get o1.Check.trace i) (Trace.get o2.Check.trace i)
             && eq (i + 1)
        in
        eq 0
      in
      Some
        {
          scenario = !current;
          failure;
          trace = o1.Check.trace;
          attempts = !attempts;
          deterministic;
        }

let minimize ?max_attempts backend sc =
  minimize_by ?max_attempts ~run:(Check.run_scenario backend) sc

let minimize_crash ?max_attempts ?drop_prob ?snapshot_at backend sc =
  minimize_by ?max_attempts
    ~run:(fun s -> Check.crash_outcome (Check.crash ?drop_prob ?snapshot_at backend s))
    sc
