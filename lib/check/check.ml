open Nt_base
open Nt_spec
open Nt_serial
open Nt_generic
open Nt_workload
open Nt_sg
open Nt_obs

(* ----- backends ----- *)

type backend =
  | Moss
  | Commlock
  | Undo
  | Mvts
  | Replication
  | No_control
  | Unsafe_read
  | No_undo
  | Causal_only
  | Prefix_consistent
  | Snapshot_read

let backend_name = function
  | Moss -> "moss"
  | Commlock -> "commlock"
  | Undo -> "undo"
  | Mvts -> "mvts"
  | Replication -> "replication"
  | No_control -> "no-control"
  | Unsafe_read -> "unsafe-read"
  | No_undo -> "no-undo"
  | Causal_only -> "causal-only"
  | Prefix_consistent -> "prefix-consistent"
  | Snapshot_read -> "snapshot-read"

let correct_backends = [ Moss; Commlock; Undo; Mvts; Replication ]

let broken_backends =
  [ No_control; Unsafe_read; No_undo; Causal_only; Prefix_consistent;
    Snapshot_read ]

let all_backends = correct_backends @ broken_backends
let backend_names = List.map backend_name all_backends

let backend_of_name s =
  List.find_opt (fun b -> backend_name b = s) all_backends

let unknown_backend_message s =
  Printf.sprintf "unknown backend %S (expected %s, or all)" s
    (String.concat ", " backend_names)

(* Moss' locking and the timestamp protocol are stated for read/write
   objects, replication transforms a logical register forest, the
   unsafe-read fault model is Moss' lock stack minus read locks, and
   the weak-isolation session stores only define register staleness. *)
let rw_only = function
  | Moss | Mvts | Replication | Unsafe_read | Causal_only
  | Prefix_consistent | Snapshot_read ->
      true
  | _ -> false

(* The physical protocol running each backend.  Replication has no
   factory of its own: the transformed forest runs under undo logging
   (any verified protocol would do). *)
let factory_of = function
  | Moss -> Nt_moss.Moss_object.factory
  | Commlock -> Nt_locking.Commlock_object.factory
  | Undo | Replication -> Nt_undo.Undo_object.factory
  | Mvts -> Nt_mvts.Mvts_object.factory
  | No_control -> Nt_gobj.Broken.no_control
  | Unsafe_read -> Nt_gobj.Broken.unsafe_read
  | No_undo -> Nt_gobj.Broken.no_undo
  | Causal_only -> Nt_gobj.Broken.causal_only
  | Prefix_consistent -> Nt_gobj.Broken.prefix_consistent
  | Snapshot_read -> Nt_gobj.Broken.snapshot_read

(* ----- scenarios ----- *)

type scenario = {
  forest : Program.t list;
  objects : (Obj_id.t * Datatype.t) list;
  sched_seed : int;
  policy : Runtime.policy;
  inform_policy : Runtime.inform_policy;
  abort_prob : float;
  family : string option;
}

let schema_of_scenario sc = Program.schema_of ~objects:sc.objects sc.forest

type grammar = Rw | Counters | Mixed | Weighted | Smallbank

let grammar_name = function
  | Rw -> "rw"
  | Counters -> "counters"
  | Mixed -> "mixed"
  | Weighted -> "weighted"
  | Smallbank -> "smallbank"

let grammar_of_name = function
  | "rw" -> Some Rw
  | "counters" -> Some Counters
  | "mixed" -> Some Mixed
  | "weighted" -> Some Weighted
  | "smallbank" -> Some Smallbank
  | _ -> None

(* Which grammars a backend's objects can actually run: the rw-only
   protocols (see [rw_only]) are stated for read/write registers, and
   SmallBank is register-encoded, so those two pass everywhere; the
   counter/mixed/weighted grammars draw non-register datatypes. *)
let grammar_allowed backend = function
  | Rw | Smallbank -> true
  | Counters | Mixed | Weighted -> not (rw_only backend)

let grammar_conflict_message backend grammar =
  Printf.sprintf
    "grammar %S cannot run on backend %S: %s are stated for read/write \
     registers only (register-only grammars: rw, smallbank)"
    (grammar_name grammar) (backend_name backend)
    (String.concat ", "
       (List.map backend_name (List.filter rw_only all_backends)))

type shape = Default | Lock_heavy | Deep_nesting | Abort_storm

let profile_of_shape = function
  | Default -> { Gen.default with Gen.n_top = 6; n_objects = 3 }
  | Lock_heavy -> Gen.lock_heavy
  | Deep_nesting -> Gen.deep_nesting
  | Abort_storm -> Gen.abort_storm

let gen_scenario ?grammar ?shape backend rng =
  let shape =
    match shape with
    | Some s -> s
    | None ->
        [| Default; Lock_heavy; Deep_nesting; Abort_storm |].(Rng.int rng 4)
  in
  let grammar =
    match grammar with
    (* SmallBank is register-only, so the rw-only backends admit it. *)
    | Some Smallbank -> Smallbank
    | _ when rw_only backend -> Rw
    | Some g -> g
    | None -> [| Rw; Counters; Mixed; Weighted |].(Rng.int rng 4)
  in
  let profile = profile_of_shape shape in
  let profile =
    match grammar with
    | Smallbank -> { profile with Gen.theta = Gen.smallbank_profile.Gen.theta }
    | _ -> profile
  in
  let weights = if Rng.bool rng then Gen.balanced else Gen.contended in
  (* Splitting isolates the program stream from the scheduling knobs:
     the same (seed, run index) regenerates the same scenario no
     matter how each sub-generator evolves. *)
  let prog_rng = Rng.split rng in
  let forest, objects =
    match grammar with
    | Rw -> Gen.registers prog_rng profile
    | Counters -> Gen.counters prog_rng profile
    | Mixed -> Gen.mixed prog_rng profile
    | Weighted -> Gen.weighted ~weights prog_rng profile
    | Smallbank -> Gen.smallbank prog_rng profile
  in
  let sched_seed =
    Int64.to_int (Int64.logand (Rng.bits64 rng) 0x3FFF_FFFF_FFFF_FFFFL)
  in
  let policy =
    if Rng.bool rng then Runtime.Random_step else Runtime.Bsp_rounds
  in
  let inform_policy =
    if Rng.int rng 3 = 0 then Runtime.Lazy else Runtime.Eager
  in
  let abort_prob =
    match shape with
    | Abort_storm -> 0.12
    | _ -> if Rng.int rng 4 = 0 then 0.05 else 0.0
  in
  { forest; objects; sched_seed; policy; inform_policy; abort_prob;
    family = Some (grammar_name grammar) }

(* ----- oracles ----- *)

type failure =
  | Ill_formed of string
  | Inappropriate of Obj_id.t
  | Sg_cycle of Txn_id.t list
  | Not_correct of string
  | Differential of string
  | One_copy of string
  | Durability of string
  | Essn_rejected of string

let failure_tag = function
  | Ill_formed _ -> "ill-formed"
  | Inappropriate _ -> "returns"
  | Sg_cycle _ -> "sg-cycle"
  | Not_correct _ -> "not-correct"
  | Differential _ -> "differential"
  | One_copy _ -> "one-copy"
  | Durability _ -> "durability"
  | Essn_rejected _ -> "essn"

let pp_failure f fl =
  match fl with
  | Ill_formed s -> Format.fprintf f "ill-formed behavior: %s" s
  | Inappropriate x ->
      Format.fprintf f "inappropriate return values at %s" (Obj_id.name x)
  | Sg_cycle c ->
      Format.fprintf f "serialization-graph cycle: %s"
        (String.concat " -> " (List.map Txn_id.to_string c))
  | Not_correct s -> Format.fprintf f "not serially correct: %s" s
  | Differential s -> Format.fprintf f "differential mismatch: %s" s
  | One_copy s -> Format.fprintf f "one-copy violation: %s" s
  | Durability s -> Format.fprintf f "durability violation: %s" s
  | Essn_rejected s -> Format.fprintf f "essn criterion rejected: %s" s

type outcome = {
  trace : Trace.t;
  truncated : bool;
  failure : failure option;
}

(* The value a transaction committed with in the trace. *)
let committed_value trace t =
  let n = Trace.length trace in
  let rec go i =
    if i >= n then None
    else
      match Trace.get trace i with
      | Action.Request_commit (u, v) when Txn_id.equal u t -> Some v
      | _ -> go (i + 1)
  in
  go 0

(* Differential oracle: replay the committed part of the forest through
   the serial reference semantics, executing [Par] siblings in the
   witness order, and demand (a) every committed top-level transaction
   reports exactly the value the reference computes and (b) final
   object states agree with the run's committed-visible projection.
   Transactions that did not commit in the run are treated as aborted
   before creation (the serial scheduler's one failure mode), which is
   how they look from T0's interface. *)
let differential ?(check_finals = true) (schema : Schema.t) order
    (r : Runtime.result) forest =
  let committed = Trace.committed r.trace in
  let states = Hashtbl.create 8 in
  let state_of x =
    match Hashtbl.find_opt states (Obj_id.name x) with
    | Some s -> s
    | None -> (schema.Schema.dtype_of x).Datatype.init
  in
  let replay_order parent comb children =
    let indexed = List.mapi (fun i p -> (i, p)) children in
    match comb with
    | Program.Seq -> indexed
    | Program.Par ->
        let ranked = Sibling_order.ordered_children order parent in
        let rank t =
          let rec pos k = function
            | [] -> max_int
            | u :: rest -> if Txn_id.equal t u then k else pos (k + 1) rest
          in
          pos 0 ranked
        in
        List.stable_sort
          (fun (i, _) (j, _) ->
            compare
              (rank (Txn_id.child parent i), i)
              (rank (Txn_id.child parent j), j))
          indexed
  in
  let rec replay t prog =
    if not (Txn_id.Set.mem t committed) then
      Value.Pair (Value.Bool false, Value.Unit)
    else
      let v =
        match prog with
        | Program.Access (x, op) ->
            let s', v = (schema.Schema.dtype_of x).Datatype.apply (state_of x) op in
            Hashtbl.replace states (Obj_id.name x) s';
            v
        | Program.Node (comb, children) ->
            let arr = Array.make (List.length children) Value.Unit in
            List.iter
              (fun (i, p) -> arr.(i) <- replay (Txn_id.child t i) p)
              (replay_order t comb children);
            Value.List (Array.to_list arr)
      in
      Value.Pair (Value.Bool true, v)
  in
  (* The runtime roots the forest as [Node (Par, forest)] under T0, so
     the top-level transactions are themselves [Par] siblings ranked by
     the witness order — replay them in that order, not forest order. *)
  let expected = Array.make (List.length forest) Value.Unit in
  List.iter
    (fun (i, p) ->
      expected.(i) <- replay (Txn_id.child Txn_id.root i) p)
    (replay_order Txn_id.root Program.Par forest);
  let mismatch = ref None in
  List.iteri
    (fun i _ ->
      let t = Txn_id.child Txn_id.root i in
      if !mismatch = None && Txn_id.Set.mem t committed then
        match (expected.(i), committed_value r.trace t) with
        | Value.Pair (_, ve), Some vb when not (Value.equal ve vb) ->
            mismatch :=
              Some
                (Differential
                   (Format.sprintf "%s reported %s, serial reference gives %s"
                      (Txn_id.to_string t) (Value.to_string vb)
                      (Value.to_string ve)))
        | _ -> ())
    forest;
  match !mismatch with
  | Some f -> Some f
  | None when not check_finals -> None
  | None -> (
      let run_finals = Serial_exec.final_states schema r.trace in
      match
        List.find_opt
          (fun (x, v) -> not (Value.equal v (state_of x)))
          run_finals
      with
      | Some (x, v) ->
          Some
            (Differential
               (Format.sprintf
                  "final state of %s: run has %s, serial reference %s"
                  (Obj_id.name x) (Value.to_string v)
                  (Value.to_string (state_of x))))
      | None -> None)

let judge backend (schema : Schema.t) (r : Runtime.result) forest =
  match Simple_db.well_formed schema.Schema.sys r.trace with
  | Error v ->
      Some (Ill_formed (Format.asprintf "%a" Simple_db.pp_violation v))
  | Ok () -> (
      match backend with
      | Mvts -> (
          (* Multiversion behaviors serialize by pseudotime; the
             completion-order SG may legitimately be cyclic, so the
             oracle is the ESSN-style refined criterion: certify by
             the pseudotime order or the completion witness, reject
             with a multiversion anomaly classification otherwise. *)
          let v = Essn.check schema r.trace in
          match (v.Essn.essn_ok, v.Essn.order) with
          | true, Some order ->
              (* [Serial_exec.final_states] replays committed writes in
                 completion order, but a multiversion object's final
                 state is the certifying-order replay; the view check
                 already validated every read, so only compare the
                 reported values here. *)
              differential ~check_finals:false schema order r forest
          | true, None -> Some (Not_correct "essn certified without an order")
          | false, _ -> Some (Essn_rejected (Essn.describe v)))
      | _ -> (
          let v = Checker.check schema r.trace in
          if not v.Checker.appropriate then
            match Return_values.violating_object schema (Trace.serial r.trace) with
            | Some x -> Some (Inappropriate x)
            | None -> Some (Not_correct "appropriateness rejected, no witness")
          else if not v.Checker.acyclic then
            Some (Sg_cycle (Option.value ~default:[] v.Checker.cycle))
          else if not v.Checker.serially_correct then
            Some
              (Not_correct
                 (Format.sprintf "witness order suitable=%b views_legal=%b"
                    (Option.value ~default:false v.Checker.suitable)
                    (Option.value ~default:false v.Checker.views_legal)))
          else
            match v.Checker.order with
            | Some order -> differential schema order r forest
            | None -> Some (Not_correct "acyclic but no witness order")))

let replication_config =
  { Nt_replication.Replication.n_replicas = 3; read_quorum = 2; write_quorum = 2 }

let run_scenario ?(obs = Obs.null) ?(max_steps = 200_000) backend sc =
  match backend with
  | Replication ->
      let plan =
        Nt_replication.Replication.replicate replication_config
          ~objects:(List.map fst sc.objects) sc.forest
      in
      let schema = plan.Nt_replication.Replication.physical_schema in
      let forest = plan.Nt_replication.Replication.physical_forest in
      let r =
        Runtime.run ~policy:sc.policy ~inform_policy:sc.inform_policy
          ~abort_prob:sc.abort_prob ~max_steps ~obs ~seed:sc.sched_seed schema
          (factory_of backend) forest
      in
      if r.Runtime.stats.truncated then
        { trace = r.Runtime.trace; truncated = true; failure = None }
      else
        let failure =
          match judge Undo schema r forest with
          | Some f -> Some f
          | None ->
              (* Deadlock victims and injected faults can abort replica
                 subtransactions mid-quorum; the one-copy claim is only
                 made for runs whose quorums completed (as in the E11
                 setup), so those runs are judged on serializability
                 alone. *)
              if
                r.Runtime.stats.deadlock_aborts > 0
                || r.Runtime.stats.injected_aborts > 0
              then None
              else (
                match
                  Nt_replication.Replication.check_one_copy plan r.Runtime.trace
                with
                | Ok () -> None
                | Error v ->
                    Some
                      (One_copy
                         (Format.asprintf "%a"
                            Nt_replication.Replication.pp_violation v)))
        in
        { trace = r.Runtime.trace; truncated = false; failure }
  | _ ->
      let schema = schema_of_scenario sc in
      let r =
        Runtime.run ~policy:sc.policy ~inform_policy:sc.inform_policy
          ~abort_prob:sc.abort_prob ~max_steps ~obs ~seed:sc.sched_seed schema
          (factory_of backend) sc.forest
      in
      if r.Runtime.stats.truncated then
        { trace = r.Runtime.trace; truncated = true; failure = None }
      else
        {
          trace = r.Runtime.trace;
          truncated = false;
          failure = judge backend schema r sc.forest;
        }

(* ----- in-process serving harness ----- *)

type serve_report = {
  s_trace : Trace.t;
  s_submitted : int;
  s_committed : int;
  s_aborted : int;
  s_vetoed : int;
  s_dropped : int;
  s_orphans : int;
  s_alarms : int;
  s_cycle_alarms : int;
  s_truncated : bool;
  s_failure : failure option;
}

(* The physical configuration a backend serves: [Replication]
   replicates the whole logical forest up front (version numbers are
   globally generation-ordered across the forest), then serves the
   physical programs one at a time — submission order preserves forest
   positions, so the plan's [logical_of] maps the served trace back
   exactly. *)
let physical backend sc =
  match backend with
  | Replication ->
      let plan =
        Nt_replication.Replication.replicate replication_config
          ~objects:(List.map fst sc.objects) sc.forest
      in
      let schema = plan.Nt_replication.Replication.physical_schema in
      let objects =
        List.map (fun x -> (x, schema.Schema.dtype_of x)) schema.Schema.objects
      in
      (objects, plan.Nt_replication.Replication.physical_forest, Some plan)
  | _ -> (sc.objects, sc.forest, None)

let policy_name = function
  | Runtime.Random_step -> "random-step"
  | Runtime.Bsp_rounds -> "bsp-rounds"

let inform_name = function Runtime.Eager -> "eager" | Runtime.Lazy -> "lazy"

let meta_of backend sc objects =
  Nt_net.Wal.Meta
    {
      seed = sc.sched_seed;
      backend = backend_name backend;
      policy = policy_name sc.policy;
      inform = inform_name sc.inform_policy;
      abort_prob = sc.abort_prob;
      objects =
        List.map
          (fun (x, dt) -> (Obj_id.name x, Program_io.dtype_decl dt))
          objects;
    }

type recorded = {
  rc_wal : string;
  rc_offsets : int list;
  rc_snapshot : string option;
  rc_report : serve_report;
  rc_closure_len : int;
}

let record ?(obs = Obs.null) ?(max_steps = 200_000) ?(drop_prob = 0.0)
    ?(admission = true) ?(fsync_batch = 0) ?snapshot_at ~seed backend sc =
  let factory = factory_of backend in
  let objects, progs, plan = physical backend sc in
  let buf = Buffer.create 4096 in
  let w =
    Nt_net.Wal.Writer.create ~fsync_batch ~base_seq:0 ~on_sync:ignore
      (Nt_net.Wal.buffer_sink buf)
  in
  Nt_net.Wal.Writer.append w (meta_of backend sc objects);
  (* The outcome hook is installed at engine-creation time, before the
     engine value exists — hence the forward reference. *)
  let eng_ref = ref None in
  let on_top_complete txn oc =
    match !eng_ref with
    | None -> ()
    | Some eng ->
        let outcome =
          match (oc, Nt_net.Engine.state eng txn) with
          | `Committed, Nt_net.Engine.Committed v ->
              Nt_net.Wal.Committed (Value.to_string v)
          | `Aborted, Nt_net.Engine.Aborted veto ->
              Nt_net.Wal.Aborted
                (Option.map (fun v -> v.Nt_net.Admission.witness) veto)
          | `Committed, _ -> Nt_net.Wal.Committed "?"
          | `Aborted, _ -> Nt_net.Wal.Aborted None
        in
        Nt_net.Wal.Writer.note_outcome w ~txn outcome
  in
  let eng =
    Nt_net.Engine.create ~policy:sc.policy ~inform_policy:sc.inform_policy
      ~abort_prob:sc.abort_prob ~max_steps ~obs ~admission ~on_top_complete
      ~seed:sc.sched_seed objects factory
  in
  eng_ref := Some eng;
  let rng = Rng.create seed in
  let pending = ref progs in
  let pending_steps = ref 0 in
  (* Cut before every Submit/Kill record: the covering [Steps] record,
     then any outcomes those steps produced — so every intact log
     prefix reproduces exactly the state its audit records claim. *)
  (* The in-memory replay closure a live server would keep between
     snapshots, maintained incrementally so its growth can be pinned:
     however long the run, it holds at most [2 * (submits + kills) + 1]
     records, not one per idle [Steps] cut. *)
  let closure = Nt_net.Wal.Closure.create () in
  let cut () =
    Nt_net.Wal.Closure.push closure (Nt_net.Wal.Steps !pending_steps);
    Nt_net.Wal.Writer.log_steps w !pending_steps;
    pending_steps := 0
  in
  let snapshot = ref None in
  let maybe_snapshot () =
    match snapshot_at with
    | Some n
      when !snapshot = None && Nt_net.Wal.Writer.appended w >= n ->
        cut ();
        let scanned =
          match
            Nt_net.Wal.scan ~magic:Nt_net.Wal.wal_magic (Buffer.contents buf)
          with
          | Ok s -> s
          | Error e -> invalid_arg ("Check.record: scan of own log: " ^ e)
        in
        let g =
          Monitor.graph (Nt_net.Admission.monitor (Nt_net.Engine.admission eng))
        in
        snapshot :=
          Some
            (Nt_net.Wal.encode_snapshot
               {
                 Nt_net.Wal.sn_next_seq = Nt_net.Wal.Writer.next_seq w;
                 sn_meta = meta_of backend sc objects;
                 sn_events = Nt_net.Wal.compact scanned.Nt_net.Wal.sc_records;
                 sn_sg = Nt_net.Wal.sg_state_of_graph g;
                 sn_counts =
                   Nt_net.Wal.Counts
                     {
                       submitted = Nt_net.Engine.submitted eng;
                       committed = Nt_net.Engine.committed_top eng;
                       aborted = Nt_net.Engine.aborted_top eng;
                       vetoed = Nt_net.Engine.vetoed eng;
                     };
               })
    | _ -> ()
  in
  let drops = ref [] in
  let dropped = ref 0 in
  let last = ref `Progress in
  let continue = ref true in
  while !continue do
    (match !pending with
    | prog :: rest when !last = `Quiescent || Rng.int rng 3 = 0 ->
        pending := rest;
        cut ();
        let r =
          Nt_net.Wal.Submit
            {
              req = None;
              client = "check";
              program = Program_io.program_to_string prog;
            }
        in
        Nt_net.Wal.Closure.push closure r;
        Nt_net.Wal.Writer.append w r;
        (match Nt_net.Engine.submit eng prog with
        | Ok txn ->
            if drop_prob > 0.0 && Rng.float rng 1.0 < drop_prob then
              drops := (txn, ref (1 + Rng.int rng 8)) :: !drops
        | Error e ->
            invalid_arg ("Check.serve: generated program rejected: " ^ e))
    | _ -> ());
    last := Nt_net.Engine.step eng;
    incr pending_steps;
    drops :=
      List.filter
        (fun (txn, left) ->
          decr left;
          if !left <= 0 then begin
            cut ();
            Nt_net.Wal.Closure.push closure (Nt_net.Wal.Kill { txn });
            Nt_net.Wal.Writer.append w (Nt_net.Wal.Kill { txn });
            (match Nt_net.Engine.kill eng txn with
            | `Aborted | `Doomed -> incr dropped
            | `Already_complete | `Unknown -> ());
            false
          end
          else true)
        !drops;
    maybe_snapshot ();
    match !last with
    | `Truncated -> continue := false
    | `Quiescent -> if !pending = [] then continue := false
    | `Progress -> ()
  done;
  cut ();
  Nt_net.Wal.Writer.flush w;
  let r = Nt_net.Engine.finish eng in
  let forest = Nt_net.Engine.forest eng in
  let schema = Nt_net.Engine.schema eng in
  let truncated = r.Runtime.stats.truncated in
  let failure =
    if truncated then None
    else
      let judged_as = match backend with Replication -> Undo | b -> b in
      match judge judged_as schema r forest with
      | Some f -> Some f
      | None -> (
          match plan with
          | Some plan
            when r.Runtime.stats.deadlock_aborts = 0
                 && r.Runtime.stats.injected_aborts = 0
                 && Nt_net.Engine.orphan_aborts eng = 0
                 && Nt_net.Engine.vetoed eng = 0 -> (
              (* As in [run_scenario]: the one-copy claim is only made
                 for runs whose quorums completed, so drops and vetoes
                 (which abort replica subtransactions mid-quorum) judge
                 on serializability alone. *)
              match
                Nt_replication.Replication.check_one_copy plan r.Runtime.trace
              with
              | Ok () -> None
              | Error v ->
                  Some
                    (One_copy
                       (Format.asprintf "%a"
                          Nt_replication.Replication.pp_violation v)))
          | _ -> None)
  in
  let report =
    {
      s_trace = r.Runtime.trace;
      s_submitted = Nt_net.Engine.submitted eng;
      s_committed = r.Runtime.committed_top;
      s_aborted = r.Runtime.aborted_top;
      s_vetoed = Nt_net.Engine.vetoed eng;
      s_dropped = !dropped;
      s_orphans = Nt_net.Engine.orphan_aborts eng;
      s_alarms = Nt_net.Engine.alarms eng;
      s_cycle_alarms =
        (Monitor.counters
           (Nt_net.Admission.monitor (Nt_net.Engine.admission eng)))
          .Monitor.cycle_alarms;
      s_truncated = truncated;
      s_failure = failure;
    }
  in
  let image = Buffer.contents buf in
  let offsets =
    match Nt_net.Wal.scan ~magic:Nt_net.Wal.wal_magic image with
    | Ok s -> s.Nt_net.Wal.sc_offsets
    | Error e -> invalid_arg ("Check.record: scan of own log: " ^ e)
  in
  {
    rc_wal = image;
    rc_offsets = offsets;
    rc_snapshot = !snapshot;
    rc_report = report;
    rc_closure_len = Nt_net.Wal.Closure.length closure;
  }

let serve ?obs ?max_steps ?drop_prob ?admission ~seed backend sc =
  (record ?obs ?max_steps ?drop_prob ?admission ~seed backend sc).rc_report

(* ----- sharded serving harness ----- *)

type sharded_report = {
  sh_report : serve_report;
  sh_shards : int;
  sh_cross : int;
  sh_local : int;
  sh_spine_checks : int;
  sh_spine_vetoes : int;
  sh_spine_edges : int;
}

let serve_sharded ?(max_steps = 200_000) ?(drop_prob = 0.0) ?(gating = true)
    ~shards ~seed backend sc =
  let factory = factory_of backend in
  let objects, progs, plan = physical backend sc in
  (* The default partition key strips replica suffixes, so a logical
     object's replicas are co-sharded: quorum writes stay shard-local
     unless the logical program itself crosses shards. *)
  let cl =
    Nt_shard.Cluster.create ~policy:sc.policy ~inform_policy:sc.inform_policy
      ~abort_prob:sc.abort_prob ~max_steps ~gating ~shards ~seed:sc.sched_seed
      objects factory
  in
  let rt = Nt_shard.Cluster.router cl in
  let rng = Rng.create seed in
  let pending = ref progs in
  let drops = ref [] in
  let dropped = ref 0 in
  let last = ref `Progress in
  let continue = ref true in
  while !continue do
    (match !pending with
    | prog :: rest when !last = `Quiescent || Rng.int rng 3 = 0 ->
        pending := rest;
        (match Nt_shard.Cluster.submit cl prog with
        | Ok g ->
            if drop_prob > 0.0 && Rng.float rng 1.0 < drop_prob then
              drops := (g, ref (1 + Rng.int rng 8)) :: !drops
        | Error e ->
            invalid_arg
              ("Check.serve_sharded: generated program rejected: " ^ e))
    | _ -> ());
    last := Nt_shard.Cluster.step_shard cl (Rng.int rng shards);
    drops :=
      List.filter
        (fun (g, left) ->
          decr left;
          if !left <= 0 then begin
            Nt_shard.Cluster.kill cl g;
            incr dropped;
            false
          end
          else true)
        !drops;
    if Nt_shard.Cluster.truncated cl then continue := false
    else if
      !pending = []
      && Nt_shard.Cluster.quiescent cl
      && Nt_shard.Router.pending rt = []
    then continue := false
  done;
  let r, forest, schema = Nt_shard.Cluster.finish cl in
  let truncated = r.Runtime.stats.truncated in
  let cross = Nt_shard.Router.cross_count rt in
  let engine_of s = Nt_shard.Shard_engine.engine (Nt_shard.Cluster.engine cl s) in
  let sum f =
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      acc := !acc + f (engine_of s)
    done;
    !acc
  in
  let orphans = sum Nt_net.Engine.orphan_aborts in
  let alarms = sum Nt_net.Engine.alarms in
  let cycle_alarms =
    sum (fun eng ->
        (Monitor.counters (Nt_net.Admission.monitor (Nt_net.Engine.admission eng)))
          .Monitor.cycle_alarms)
  in
  let failure =
    if truncated then None
    else
      let judged_as = match backend with Replication -> Undo | b -> b in
      match judge judged_as schema r forest with
      | Some f -> Some f
      | None -> (
          match plan with
          | Some plan
            when cross = 0
                 && r.Runtime.stats.deadlock_aborts = 0
                 && r.Runtime.stats.injected_aborts = 0
                 && orphans = 0
                 && Nt_shard.Cluster.vetoed cl = 0 -> (
              (* One-copy is only claimed when every replicated program
                 stayed whole on one shard: a split program's merged
                 forest node is a [Par] of pieces, so the plan's
                 position map no longer describes it. *)
              match
                Nt_replication.Replication.check_one_copy plan r.Runtime.trace
              with
              | Ok () -> None
              | Error v ->
                  Some
                    (One_copy
                       (Format.asprintf "%a"
                          Nt_replication.Replication.pp_violation v)))
          | _ -> None)
  in
  let sp = Nt_shard.Cluster.spine cl in
  {
    sh_report =
      {
        s_trace = r.Runtime.trace;
        s_submitted = Nt_shard.Router.submitted rt;
        s_committed = r.Runtime.committed_top;
        s_aborted = r.Runtime.aborted_top;
        s_vetoed = Nt_shard.Cluster.vetoed cl;
        s_dropped = !dropped;
        s_orphans = orphans;
        s_alarms = alarms;
        s_cycle_alarms = cycle_alarms;
        s_truncated = truncated;
        s_failure = failure;
      };
    sh_shards = shards;
    sh_cross = cross;
    sh_local = Nt_shard.Router.local_count rt;
    sh_spine_checks = Nt_shard.Spine.checks sp;
    sh_spine_vetoes = Nt_shard.Spine.vetoes sp;
    sh_spine_edges = Nt_shard.Spine.edge_count sp;
  }

(* ----- crash injection ----- *)

type crash_report = {
  c_boundaries : int;
  c_recoveries : int;
  c_outcomes_checked : int;
  c_snapshot_recoveries : int;
  c_trace : Trace.t;
  c_failure : (string * failure) option;
}

let crash_seed_of sc = sc.sched_seed lxor 0x2C5A11

(* Recover one damaged log image into a fresh engine: scan (tolerating
   a torn tail), refuse a foreign [Meta], replay the intact event
   prefix, then demand prefix closure — every audited outcome in the
   prefix reproduced exactly — before resuming (drain) and judging the
   completed behavior with the same four oracles as any served run.
   Returns the replayed engine so callers can compare recoveries. *)
let recover_image ?(max_steps = 200_000) ?(admission = true) ~expect_meta
    ~counts backend sc img =
  let ( let* ) = Result.bind in
  let* scanned = Nt_net.Wal.scan ~magic:Nt_net.Wal.wal_magic img in
  let* rp =
    Nt_net.Wal.replayable_of_records ~base_seq:scanned.Nt_net.Wal.sc_base_seq
      ~skip_below:0 scanned.Nt_net.Wal.sc_records
  in
  let* () =
    match rp.Nt_net.Wal.rp_meta with
    | Some (m, _) ->
        if m = expect_meta then Ok ()
        else Error "meta mismatch: log belongs to a different configuration"
    | None ->
        if rp.Nt_net.Wal.rp_events = [] then Ok ()
        else Error "events without a meta record"
  in
  let objects, _, _ = physical backend sc in
  let eng =
    Nt_net.Engine.create ~policy:sc.policy ~inform_policy:sc.inform_policy
      ~abort_prob:sc.abort_prob ~max_steps ~admission ~seed:sc.sched_seed
      objects (factory_of backend)
  in
  let* _ = Nt_net.Engine.recover eng rp.Nt_net.Wal.rp_events in
  let* checked =
    Nt_net.Wal.check_outcomes (Nt_net.Engine.state eng)
      rp.Nt_net.Wal.rp_outcomes
  in
  counts := !counts + checked;
  Ok (eng, scanned)

(* Recover via snapshot + log tail: replay the snapshot's compacted
   events, cross-check its materialized SG and counters against the
   replayed state, then replay the tail ([skip_below] the snapshot's
   coverage) with the no-freshness-check chunked entry point. *)
let recover_snapshot ?(max_steps = 200_000) ?(admission = true) ~expect_meta
    ~counts backend sc simg img =
  let ( let* ) = Result.bind in
  let* sn = Nt_net.Wal.decode_snapshot simg in
  let* () =
    if sn.Nt_net.Wal.sn_meta = expect_meta then Ok ()
    else Error "snapshot meta mismatch"
  in
  let* rp_snap =
    Nt_net.Wal.replayable_of_records ~base_seq:0 ~skip_below:0
      sn.Nt_net.Wal.sn_events
  in
  let objects, _, _ = physical backend sc in
  let eng =
    Nt_net.Engine.create ~policy:sc.policy ~inform_policy:sc.inform_policy
      ~abort_prob:sc.abort_prob ~max_steps ~admission ~seed:sc.sched_seed
      objects (factory_of backend)
  in
  let* _ = Nt_net.Engine.recover eng rp_snap.Nt_net.Wal.rp_events in
  let g () =
    Monitor.graph (Nt_net.Admission.monitor (Nt_net.Engine.admission eng))
  in
  let* () = Nt_net.Wal.check_sg_state sn.Nt_net.Wal.sn_sg (g ()) in
  let* () =
    match sn.Nt_net.Wal.sn_counts with
    | Nt_net.Wal.Counts { submitted; committed; aborted; vetoed } ->
        if
          submitted = Nt_net.Engine.submitted eng
          && committed = Nt_net.Engine.committed_top eng
          && aborted = Nt_net.Engine.aborted_top eng
          && vetoed = Nt_net.Engine.vetoed eng
        then Ok ()
        else Error "snapshot counters not reproduced by replay"
    | _ -> Error "snapshot without a counts record"
  in
  let* scanned = Nt_net.Wal.scan ~magic:Nt_net.Wal.wal_magic img in
  let* rp_tail =
    Nt_net.Wal.replayable_of_records ~base_seq:scanned.Nt_net.Wal.sc_base_seq
      ~skip_below:sn.Nt_net.Wal.sn_next_seq scanned.Nt_net.Wal.sc_records
  in
  let* _ = Nt_net.Engine.replay eng rp_tail.Nt_net.Wal.rp_events in
  let* checked =
    Nt_net.Wal.check_outcomes (Nt_net.Engine.state eng)
      rp_tail.Nt_net.Wal.rp_outcomes
  in
  counts := !counts + checked;
  Ok eng

(* Two recoveries agree when the engines are observationally equal:
   same submission forest, same call count, same counters, same
   monitor graph. *)
let engines_agree a b =
  let render eng =
    ( List.map Program_io.program_to_string (Nt_net.Engine.forest eng),
      Nt_net.Engine.step_calls eng,
      Nt_net.Engine.submitted eng,
      Nt_net.Engine.committed_top eng,
      Nt_net.Engine.aborted_top eng,
      Nt_net.Engine.vetoed eng )
  in
  if render a <> render b then Error "recovered engines disagree"
  else
    let g eng =
      Monitor.graph (Nt_net.Admission.monitor (Nt_net.Engine.admission eng))
    in
    Nt_net.Wal.check_sg_state (Nt_net.Wal.sg_state_of_graph (g a)) (g b)

let flip_bit img pos =
  let b = Bytes.of_string img in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
  Bytes.to_string b

let crash ?(max_steps = 200_000) ?(drop_prob = 0.15) ?snapshot_at ?seed
    backend sc =
  let seed = match seed with Some s -> s | None -> crash_seed_of sc in
  let rc = record ~max_steps ~drop_prob ?snapshot_at ~seed backend sc in
  let image = rc.rc_wal in
  let len = String.length image in
  let objects, _, _ = physical backend sc in
  let expect_meta = meta_of backend sc objects in
  let recoveries = ref 0 and outcomes = ref 0 and snaps = ref 0 in
  let failure = ref None in
  let fail where f = if !failure = None then failure := Some (where, f) in
  let faild where msg = fail where (Durability msg) in
  (* Judge a recovered engine as a complete run: resume (drain to
     quiescence — the remaining pre-crash submissions never arrive)
     and apply the four oracles.  One-copy is not claimed for
     recovered [Replication] runs: the crash orphans in-flight
     quorums by construction. *)
  let judge_recovered where eng =
    ignore (Nt_net.Engine.drain eng);
    let r = Nt_net.Engine.finish eng in
    if not r.Runtime.stats.truncated then begin
      let judged_as = match backend with Replication -> Undo | b -> b in
      match
        judge judged_as (Nt_net.Engine.schema eng) r (Nt_net.Engine.forest eng)
      with
      | Some f -> fail where f
      | None -> ()
    end
  in
  let recover_and_judge ~where ?expect_valid img =
    incr recoveries;
    match
      recover_image ~max_steps ~expect_meta ~counts:outcomes backend sc img
    with
    | Error e -> faild where e
    | Ok (eng, scanned) -> (
        (match expect_valid with
        | Some v when scanned.Nt_net.Wal.sc_valid <> v ->
            faild where
              (Printf.sprintf "scan kept %d valid bytes, expected %d"
                 scanned.Nt_net.Wal.sc_valid v)
        | _ -> ());
        judge_recovered where eng)
  in
  (match rc.rc_report.s_failure with
  | Some f -> fail "pre-crash run" f
  | None -> ());
  let boundaries = Array.of_list (rc.rc_offsets @ [ len ]) in
  let n = Array.length boundaries in
  (* Pre-header cuts: a crash during file creation. *)
  recover_and_judge ~where:"empty file" "";
  if len >= 8 then
    recover_and_judge ~where:"torn file header" (String.sub image 0 8);
  Array.iteri
    (fun i b ->
      if !failure = None then begin
        (* A kill exactly at a record boundary: the scan must accept
           the whole prefix as clean. *)
        recover_and_judge
          ~where:(Printf.sprintf "clean cut at record %d (byte %d)" i b)
          ~expect_valid:(max b 16)
          (String.sub image 0 b);
        (* A kill mid-record: the torn frame must be diagnosed and
           the prefix up to the boundary kept. *)
        (if b < len then
           let frame = (if i + 1 < n then boundaries.(i + 1) else len) - b in
           let k = 1 + (((i * 7) + 3) mod max 1 (frame - 1)) in
           recover_and_judge
             ~where:
               (Printf.sprintf "torn cut %d bytes into record %d (byte %d)" k
                  i (b + k))
             ~expect_valid:b
             (String.sub image 0 (b + k)));
        (* A corrupted sector: flip a bit mid-record; the checksum
           must stop the scan at the preceding boundary. *)
        if b < len && i mod 3 = 0 then begin
          let frame = (if i + 1 < n then boundaries.(i + 1) else len) - b in
          recover_and_judge
            ~where:
              (Printf.sprintf "bit flip inside record %d (byte %d)" i
                 (b + (frame / 2)))
            ~expect_valid:b
            (flip_bit image (b + (frame / 2)))
        end
      end)
    boundaries;
  (* Snapshot paths: snapshot + tail must agree with the full-log
     replay, and a corrupted snapshot must be detected (recovery then
     falls back to the full log, exercised above). *)
  (match rc.rc_snapshot with
  | Some simg when !failure = None -> (
      (match
         recover_snapshot ~max_steps ~expect_meta ~counts:outcomes backend sc
           simg image
       with
      | Error e -> faild "snapshot + tail recovery" e
      | Ok eng_snap -> (
          incr snaps;
          incr recoveries;
          match
            recover_image ~max_steps ~expect_meta ~counts:outcomes backend sc
              image
          with
          | Error e -> faild "full-log recovery (snapshot comparison)" e
          | Ok (eng_full, _) -> (
              match engines_agree eng_snap eng_full with
              | Error e -> faild "snapshot-vs-full-log" e
              | Ok () -> judge_recovered "snapshot + tail recovery" eng_snap)));
      (* Torn-write injection on the rotation path: the snapshot is
         written tmp + fsync + rename, so a crash mid-rotation leaves
         either a truncated tmp image (the rename never happened) or a
         corrupted sector.  Every damaged image must be rejected by
         [decode_snapshot], after which recovery falls back to the
         previous window — here, the full log, which must still
         recover and pass the four oracles. *)
      let slen = String.length simg in
      let check_damaged where img =
        if !failure = None then
          match Nt_net.Wal.decode_snapshot img with
          | Ok _ -> faild where "damaged snapshot decoded successfully"
          | Error _ -> (
              incr recoveries;
              match
                recover_image ~max_steps ~expect_meta ~counts:outcomes
                  backend sc image
              with
              | Error e -> faild (where ^ ": full-log fallback") e
              | Ok (eng, _) ->
                  judge_recovered (where ^ ": full-log fallback") eng)
      in
      List.iter
        (fun k ->
          if k >= 0 && k < slen then
            check_damaged
              (Printf.sprintf "snapshot torn at byte %d" k)
              (String.sub simg 0 k))
        [ 0; 8; slen / 4; slen / 2; slen - 1 ];
      List.iter
        (fun pos ->
          if pos >= 0 && pos < slen then
            check_damaged
              (Printf.sprintf "snapshot bit flip at byte %d" pos)
              (flip_bit simg pos))
        [ 0; slen / 2; slen - 1 ])
  | _ -> ());
  {
    c_boundaries = n;
    c_recoveries = !recoveries;
    c_outcomes_checked = !outcomes;
    c_snapshot_recoveries = !snaps;
    c_trace = rc.rc_report.s_trace;
    c_failure = !failure;
  }

let crash_outcome rep =
  {
    trace = rep.c_trace;
    truncated = false;
    failure =
      (match rep.c_failure with
      | None -> None
      | Some (_, (Durability _ as f)) -> Some f
      | Some (where, f) ->
          Some (Durability (Format.asprintf "%s: %a" where pp_failure f)));
  }

(* ----- SG oracle equivalence ----- *)

type sg_agreement = {
  checker_acyclic : bool;  (* O(1) incremental verdict on Sg.build *)
  monitor_acyclic : bool;  (* online incremental detector *)
  scratch_acyclic : bool;  (* from-scratch three-color DFS *)
  cycle_alarms : int;
  inappropriate_alarms : int;
}

(* Run the SG acyclicity oracle three ways over one behavior: the
   batch checker (incremental verdict over [Sg.build]), the online
   monitor (incremental detection per feed), and the pre-incremental
   reference ([Graph.find_cycle_scratch]).  The three must agree —
   this is the cross-implementation oracle the differential tests and
   ntcheck sweeps pin. *)
let sg_agreement ?mode (schema : Schema.t) trace =
  let mode = match mode with Some m -> m | None -> Sg.Operation_level in
  let beta = Trace.serial trace in
  let g = Sg.build mode schema beta in
  let m = Nt_sg.Monitor.create ~mode schema in
  let alarms = Nt_sg.Monitor.feed_trace m trace in
  let cycle_alarms, inappropriate_alarms =
    List.fold_left
      (fun (c, i) (_, a) ->
        match a with
        | Nt_sg.Monitor.Cycle _ -> (c + 1, i)
        | Nt_sg.Monitor.Inappropriate _ -> (c, i + 1))
      (0, 0) alarms
  in
  {
    checker_acyclic = Graph.is_acyclic g;
    monitor_acyclic = cycle_alarms = 0;
    scratch_acyclic = Graph.find_cycle_scratch g = None;
    cycle_alarms;
    inappropriate_alarms;
  }

let sg_agrees a =
  a.checker_acyclic = a.monitor_acyclic
  && a.checker_acyclic = a.scratch_acyclic

(* ----- campaigns ----- *)

type report = {
  runs : int;
  passed : int;
  truncations : int;
  failures : (int * scenario * failure) list;
}

let campaign ?(obs = Obs.null) ?max_steps ?grammar ?shape
    ?(stop_at_first = true) backend ~seed ~runs =
  let master = Rng.create seed in
  let bump name =
    if Obs.enabled obs then Metrics.incr (Metrics.counter (Obs.metrics obs) name)
  in
  let passed = ref 0 and truncations = ref 0 and failures = ref [] in
  let executed = ref 0 in
  (try
     for i = 0 to runs - 1 do
       let rng = Rng.split master in
       let sc = gen_scenario ?grammar ?shape backend rng in
       incr executed;
       bump "check.runs";
       let o = run_scenario ~obs ?max_steps backend sc in
       if o.truncated then incr truncations;
       match o.failure with
       | None ->
           incr passed;
           bump "check.pass"
       | Some f ->
           bump "check.fail";
           bump ("check.fail." ^ failure_tag f);
           Obs.instant obs ("check.fail." ^ failure_tag f);
           failures := (i, sc, f) :: !failures;
           if stop_at_first then raise Exit
     done
   with Exit -> ());
  (* Final counter samples so a streamed trace (ntprof) carries the
     campaign totals, not just the in-process registry. *)
  if Obs.enabled obs then begin
    let sample name =
      Obs.counter_sample obs name
        (Metrics.counter_value (Metrics.counter (Obs.metrics obs) name))
    in
    sample "check.runs";
    sample "check.pass";
    if !failures <> [] then sample "check.fail"
  end;
  {
    runs = !executed;
    passed = !passed;
    truncations = !truncations;
    failures = List.rev !failures;
  }

let crash_campaign ?(obs = Obs.null) ?max_steps ?grammar ?shape ?drop_prob
    ?(snapshot_at = 8) ?(stop_at_first = true) backend ~seed ~runs =
  let master = Rng.create seed in
  let bump name =
    if Obs.enabled obs then Metrics.incr (Metrics.counter (Obs.metrics obs) name)
  in
  let passed = ref 0 and truncations = ref 0 and failures = ref [] in
  let executed = ref 0 in
  (try
     for i = 0 to runs - 1 do
       let rng = Rng.split master in
       let sc = gen_scenario ?grammar ?shape backend rng in
       incr executed;
       bump "check.crash.runs";
       let rep = crash ?max_steps ?drop_prob ~snapshot_at backend sc in
       let o = crash_outcome rep in
       if o.truncated then incr truncations;
       match o.failure with
       | None ->
           incr passed;
           bump "check.crash.pass"
       | Some f ->
           bump "check.crash.fail";
           bump ("check.crash.fail." ^ failure_tag f);
           Obs.instant obs ("check.crash.fail." ^ failure_tag f);
           failures := (i, sc, f) :: !failures;
           if stop_at_first then raise Exit
     done
   with Exit -> ());
  {
    runs = !executed;
    passed = !passed;
    truncations = !truncations;
    failures = List.rev !failures;
  }
