(** Counterexample minimization.

    A failing {!Check.scenario} is shrunk by delta debugging: ddmin
    over the top-level transaction list, then structural reductions
    inside each remaining tree (replace a node by one of its children,
    drop one child), then pruning of unreferenced objects and
    simplification of the interleaving knobs (zero the fault-injection
    rate, eager informs) — iterated to a fixpoint.  A candidate is
    accepted iff re-running it under the same backend and scheduling
    seed still fails {e some} oracle (not necessarily the original
    one: a smaller program may surface the same bug through a
    different symptom).

    Because {!Check.run_scenario} is a pure function of the scenario,
    shrinking is deterministic: the same failing seed always reduces
    to the same minimal counterexample.  This is re-verified on every
    shrink — the minimized scenario is executed twice and the
    outcomes compared. *)

open Nt_base

val n_accesses : Nt_serial.Program.t list -> int
(** Total number of leaf accesses in a forest — the size metric
    minimized by {!minimize}. *)

type shrunk = {
  scenario : Check.scenario;  (** The minimized scenario. *)
  failure : Check.failure;  (** The oracle it still fails. *)
  trace : Trace.t;  (** The behavior of the minimized run. *)
  attempts : int;  (** Candidate executions spent shrinking. *)
  deterministic : bool;
      (** Two replays of the minimized scenario produced identical
          traces and failures (always [true] in practice; recorded so
          replay bundles can assert it). *)
}

val minimize :
  ?max_attempts:int -> Check.backend -> Check.scenario -> shrunk option
(** Shrink a failing scenario to a (locally) minimal one.  Returns
    [None] if the scenario does not fail in the first place.
    [max_attempts] (default [2000]) caps candidate executions; the
    best scenario found so far is returned when the budget runs
    out. *)

val minimize_by :
  ?max_attempts:int ->
  run:(Check.scenario -> Check.outcome) ->
  Check.scenario ->
  shrunk option
(** The ddmin engine behind {!minimize}, parameterized over the
    subject: any deterministic scenario-to-outcome function works —
    {!minimize} passes {!Check.run_scenario}, {!minimize_crash} passes
    the crash-injection sweep. *)

val minimize_crash :
  ?max_attempts:int ->
  ?drop_prob:float ->
  ?snapshot_at:int ->
  Check.backend ->
  Check.scenario ->
  shrunk option
(** Shrink a scenario whose {!Check.crash} sweep fails.  The serving
    seed is re-derived per candidate via {!Check.crash_seed_of}, so
    the minimized scenario replays with no extra state; each candidate
    runs a full crash sweep, so attempts are costlier than
    {!minimize}'s. *)
