(** Property-based differential checking of concurrency-control
    backends against the paper's theorems.

    The paper's central claim (Theorem 8 / Theorem 19) is an oracle:
    a behavior whose serialization graph is acyclic and whose return
    values are appropriate is serially correct.  This module turns
    every object implementation in the repository into a continuously
    fuzzed subject of that oracle.  One {e run}:

    + generates a random {!scenario} — a program forest over a
      weighted action grammar ({!Nt_workload.Gen.weighted} and
      friends), plus an adversarial interleaving configuration
      (scheduling policy, inform latency, fault-injection rate) —
      from a {e splittable} {!Nt_base.Rng}, so the whole scenario is
      a pure function of one integer seed;
    + executes it under the chosen {!backend};
    + judges the resulting behavior with four oracles, in order:
      well-formedness ({!Nt_serial.Simple_db}), appropriate return
      values ({!Nt_sg.Return_values}), SG acyclicity / serial
      correctness ({!Nt_sg.Checker}, or Theorem 2 with the pseudotime
      order for the multiversion backend), and {e differential
      agreement}: every committed top-level transaction's reported
      value, and every final object state, must equal what the serial
      reference executor produces when replaying the committed part
      of the forest in the checker's witness order.

    Failures carry the complete scenario, so {!Nt_check.Shrink} can
    minimize them and {!Nt_check.Bundle} can persist them for exact
    replay. *)

open Nt_base
open Nt_spec
open Nt_serial
open Nt_generic

(** {1 Backends} *)

type backend =
  | Moss  (** Read/write locking (Section 5.2); register workloads. *)
  | Commlock  (** Commutativity-based locking. *)
  | Undo  (** Undo logging (Section 7). *)
  | Mvts  (** Multiversion timestamps; register workloads, judged by
              the {!Nt_sg.Essn} refined criterion (pseudotime or
              completion-witness certification). *)
  | Replication
      (** Quorum replication (3 replicas, 2/2 quorums) of a logical
          register forest, physically run under undo logging; adds the
          one-copy oracle. *)
  | No_control  (** {!Nt_gobj.Broken.no_control} — negative control. *)
  | Unsafe_read  (** {!Nt_gobj.Broken.unsafe_read} — negative control. *)
  | No_undo  (** {!Nt_gobj.Broken.no_undo} — negative control. *)
  | Causal_only
      (** {!Nt_gobj.Broken.causal_only} — weak-isolation adversary:
          reads lag the committed-write log by one session access. *)
  | Prefix_consistent
      (** {!Nt_gobj.Broken.prefix_consistent} — weak-isolation
          adversary: a session's read prefix advances only on its own
          writes. *)
  | Snapshot_read
      (** {!Nt_gobj.Broken.snapshot_read} — weak-isolation adversary:
          frozen per-session snapshots, unvalidated writes
          (write-skew-capable). *)

val backend_name : backend -> string
val backend_of_name : string -> backend option

val correct_backends : backend list
(** The five verified backends, expected to never fail an oracle. *)

val broken_backends : backend list
(** The fault-injection subjects the checker must catch: the three
    crude negative controls plus the three weak-isolation session
    stores. *)

val all_backends : backend list
(** [correct_backends @ broken_backends]. *)

val backend_names : string list
(** Every valid [--backend] name, in {!all_backends} order — the
    single source CLI error messages must quote. *)

val unknown_backend_message : string -> string
(** The diagnostic for an unrecognized backend name, listing every
    valid name (kept in sync with {!backend_names} by construction). *)

val rw_only : backend -> bool
(** Backends restricted to read/write (register) schemas. *)

val factory_of : backend -> Nt_gobj.Gobj.factory
(** The generic-object factory physically running the backend
    ([Replication] runs under undo logging). *)

(** {1 Scenarios} *)

type scenario = {
  forest : Program.t list;
  objects : (Obj_id.t * Datatype.t) list;
  sched_seed : int;  (** Seed of the runtime's interleaving RNG. *)
  policy : Runtime.policy;
  inform_policy : Runtime.inform_policy;
  abort_prob : float;
  family : string option;
      (** The workload family (grammar name) the forest was drawn
          from, recorded in bundle headers; [None] for hand-built
          scenarios. *)
}
(** Everything needed to reproduce one execution exactly (together
    with the backend). *)

val schema_of_scenario : scenario -> Schema.t

type grammar = Rw | Counters | Mixed | Weighted | Smallbank

val grammar_name : grammar -> string
val grammar_of_name : string -> grammar option

val grammar_allowed : backend -> grammar -> bool
(** Whether the backend's objects can run programs from the grammar:
    [Rw] and [Smallbank] are register-encoded and pass everywhere;
    [Counters]/[Mixed]/[Weighted] draw non-register datatypes, which
    the {!rw_only} backends cannot run.  Front ends should refuse the
    combination up front (see {!grammar_conflict_message}) rather than
    let {!gen_scenario} silently coerce a pinned grammar to [Rw]. *)

val grammar_conflict_message : backend -> grammar -> string
(** Diagnostic for a [grammar_allowed b g = false] pair, naming the
    register-only backends and the grammars they do admit. *)

type shape = Default | Lock_heavy | Deep_nesting | Abort_storm

val gen_scenario :
  ?grammar:grammar -> ?shape:shape -> backend -> Rng.t -> scenario
(** Draw a scenario from the RNG.  When [grammar]/[shape] are omitted
    they are themselves drawn from the RNG (sweeping the adversarial
    presets).  Backends that only support read/write schemas ([Moss],
    [Mvts], [Replication], [Unsafe_read] and the weak-isolation
    stores) force [Rw] — except [Smallbank], which is register-only
    and so admitted everywhere when pinned explicitly. *)

(** {1 Oracles} *)

type failure =
  | Ill_formed of string  (** The behavior violates well-formedness. *)
  | Inappropriate of Obj_id.t
      (** Some object's visible return values fail to replay. *)
  | Sg_cycle of Txn_id.t list
      (** The serialization graph of the behavior is cyclic. *)
  | Not_correct of string
      (** Serial correctness failed beyond the two named hypotheses
          (suitability or view replay of the witness order, or a
          Theorem 2 failure for [Mvts]). *)
  | Differential of string
      (** Committed top-level results or final states disagree with
          the ordered serial reference execution. *)
  | One_copy of string  (** Replication's one-copy condition failed. *)
  | Durability of string
      (** Crash recovery failed: a damaged log was not diagnosed
          correctly, replay did not reproduce an audited outcome
          (prefix closure), or a snapshot disagreed with the log. *)
  | Essn_rejected of string
      (** The {!Nt_sg.Essn} refined criterion rejected a multiversion
          behavior: neither the pseudotime order nor the completion
          witness certifies it (message carries the per-candidate
          failures and the anomaly classification). *)

val failure_tag : failure -> string
(** A short stable tag (["sg-cycle"], ["returns"], ["differential"],
    ...) used in metrics names and bundle headers. *)

val pp_failure : Format.formatter -> failure -> unit

type outcome = {
  trace : Trace.t;
  truncated : bool;  (** Run hit [max_steps]; oracles were skipped. *)
  failure : failure option;
}

val replication_config : Nt_replication.Replication.config
(** The quorum configuration the [Replication] backend runs under
    (3 replicas, 2/2 intersecting quorums) — exposed so tools can
    rebuild the physical schema of a replicated scenario. *)

val run_scenario :
  ?obs:Nt_obs.Obs.t -> ?max_steps:int -> backend -> scenario -> outcome
(** Execute and judge one scenario.  Fully deterministic: the same
    (backend, scenario) pair always yields the same outcome.
    [max_steps] defaults to 200_000. *)

(** {1 Serving harness}

    The oracles above, pointed at the open-loop serving engine
    ({!Nt_net.Engine}) instead of the closed-loop runtime: the
    scenario's forest arrives as a stream of submissions interleaved
    with scheduling steps, a fraction of clients "disconnect"
    mid-transaction (their transactions are orphan-killed, as
    [ntserved] does on a dropped connection), and the admission
    controller gates commits online.  The final trace is judged by the
    same four oracles — served executions are still generic-system
    behaviors, so everything proved about [run_scenario] outcomes
    applies. *)

type serve_report = {
  s_trace : Trace.t;
  s_submitted : int;
  s_committed : int;  (** Top-level commits. *)
  s_aborted : int;  (** Top-level aborts (all causes). *)
  s_vetoed : int;  (** Admission vetoes. *)
  s_dropped : int;  (** Simulated disconnects that orphaned a txn. *)
  s_orphans : int;  (** Orphan aborts actually performed. *)
  s_alarms : int;  (** Monitor alarms — [0] for correct backends. *)
  s_cycle_alarms : int;
      (** Cycle alarms specifically — [0] whenever admission gating is
          on, for {e any} backend (the zero-false-negative claim). *)
  s_truncated : bool;
  s_failure : failure option;
}

val serve :
  ?obs:Nt_obs.Obs.t ->
  ?max_steps:int ->
  ?drop_prob:float ->
  ?admission:bool ->
  seed:int ->
  backend ->
  scenario ->
  serve_report
(** Serve the scenario's forest through an {!Nt_net.Engine} under the
    given backend.  [seed] drives the arrival interleaving and the
    disconnect injection ([drop_prob], default [0.] — per-submission
    probability of a mid-flight disconnect); the scenario's own
    [sched_seed] drives the runtime exactly as in {!run_scenario}.
    Deterministic: same arguments, same report.  [Replication]
    scenarios are physically transformed up front and served as
    physical programs (judged as [Undo], plus one-copy when no abort
    interfered — mirroring {!run_scenario}). *)

(** {1 Sharded serving}

    The same oracles pointed at the multicore ensemble: the scenario's
    forest streams into a {!Nt_shard.Cluster} — one {!Nt_net.Engine}
    per shard behind a {!Nt_shard.Router}, cross-shard commits gated by
    the {!Nt_shard.Spine} — stepped deterministically, one shard at a
    time, by a single splittable [Rng].  The merged history (stamp-
    sorted union of the shards' traces plus the router's synthetic
    cross-program nodes) is judged offline by the same four oracles,
    which is the differential claim of [doc/sharding.mld]: for the
    verified backends the sharded gate must fail exactly when the
    single-shard gate does, at failure-tag granularity. *)

type sharded_report = {
  sh_report : serve_report;
      (** Exactly {!serve}'s shape, for the merged run: summed alarms
          and orphan counts, merged top-level commit/abort counts, and
          the merged trace. *)
  sh_shards : int;
  sh_cross : int;  (** Submissions split across shards. *)
  sh_local : int;  (** Submissions dispatched whole to one shard. *)
  sh_spine_checks : int;  (** Cross-shard gate decisions taken. *)
  sh_spine_vetoes : int;  (** Commits vetoed by the cross-shard gate. *)
  sh_spine_edges : int;  (** Explicit conflict edges installed. *)
}

val serve_sharded :
  ?max_steps:int ->
  ?drop_prob:float ->
  ?gating:bool ->
  shards:int ->
  seed:int ->
  backend ->
  scenario ->
  sharded_report
(** Serve the scenario's forest through a [shards]-way
    {!Nt_shard.Cluster}.  [seed] drives arrivals, shard-step
    interleaving and disconnect injection; the scenario's [sched_seed]
    seeds the shard engines (shard [s] on [sched_seed + s * 1000003]).
    Deterministic: same arguments, same report.  [Replication]
    scenarios are physically transformed up front with replicas
    co-sharded by the default partition key; the one-copy oracle runs
    only when every replicated program stayed single-shard (a split
    program's merged node is a [Par] of pieces, outside the plan's
    position map).  [gating:false] disables both the local and the
    cross-shard commit gates — the negative-control configuration whose
    admitted cross-shard cycles the SG oracle must catch. *)

(** {1 Durability: recorded serves and crash injection}

    {!record} is {!serve} with a write-ahead log attached: the same
    loop, the same report, plus a complete {!Nt_net.Wal} image of the
    run — every submission, orphan kill and coalesced step count, with
    the commit-gate outcome of every completed top-level transaction
    appended {e after} the step record that produced it, so each
    intact log prefix reproduces exactly the state its audit records
    claim.  {!crash} then simulates a [kill -9] at every log boundary
    (plus torn and bit-flipped variants) and proves each recovery: the
    scan diagnoses the damage, {!Nt_net.Engine.recover} replays the
    intact prefix, every audited outcome is reproduced, and the
    resumed run still passes all four oracles. *)

type recorded = {
  rc_wal : string;  (** The complete log image (header included). *)
  rc_offsets : int list;  (** Frame offset of every record. *)
  rc_snapshot : string option;
      (** Encoded snapshot, when [snapshot_at] fired mid-run. *)
  rc_report : serve_report;  (** Exactly {!serve}'s report. *)
  rc_closure_len : int;
      (** Final length of the incrementally-maintained in-memory
          replay closure ({!Nt_net.Wal.Closure}) — bounded by
          [2 * (submits + kills) + 1] however long the run, which is
          what keeps a live server's between-snapshot memory flat. *)
}

val record :
  ?obs:Nt_obs.Obs.t ->
  ?max_steps:int ->
  ?drop_prob:float ->
  ?admission:bool ->
  ?fsync_batch:int ->
  ?snapshot_at:int ->
  seed:int ->
  backend ->
  scenario ->
  recorded
(** {!serve} while writing the WAL (into memory; [fsync_batch]
    defaults to [0] — no syncing — since a buffer sink has nothing to
    make durable).  [snapshot_at] takes one snapshot once that many
    records have been appended.  Deterministic, and [rc_report] is
    byte-for-byte the {!serve} report for the same arguments. *)

type crash_report = {
  c_boundaries : int;  (** Record boundaries in the log. *)
  c_recoveries : int;  (** Damaged images recovered and judged. *)
  c_outcomes_checked : int;  (** Audited outcomes verified in total. *)
  c_snapshot_recoveries : int;
  c_trace : Trace.t;  (** The pre-crash run's behavior. *)
  c_failure : (string * failure) option;
      (** First failing kill point: (description, failure). *)
}

val crash_seed_of : scenario -> int
(** The serving seed {!crash} derives from a scenario when none is
    given — a pure function of [sched_seed], so a crash failure is
    replayable from the scenario alone (bundles need no extra
    state). *)

val crash :
  ?max_steps:int ->
  ?drop_prob:float ->
  ?snapshot_at:int ->
  ?seed:int ->
  backend ->
  scenario ->
  crash_report
(** Record one serve run ([drop_prob] defaults to [0.15] so orphan
    kills appear in the log), then sweep simulated crashes: a clean
    cut at {e every} record boundary, a torn cut inside every record,
    a bit flip inside every third record, a cut before and inside the
    file header — each followed by a full recovery (scan, replay,
    prefix-closure outcome check, drain, four oracles).  When a
    snapshot was taken, also recovers snapshot + tail, demands it
    agree with the full-log replay, and verifies a corrupted snapshot
    is rejected.  Stops at the first failing kill point.
    Deterministic from [(backend, scenario, seed)]. *)

val crash_outcome : crash_report -> outcome
(** The report folded into the common {!outcome} shape (kill-point
    description folded into a {!Durability} failure), so shrinking and
    bundle tooling treat crash failures like any other. *)

(** {1 SG oracle equivalence} *)

type sg_agreement = {
  checker_acyclic : bool;
      (** The batch checker's verdict: O(1) acyclicity of
          {!Nt_sg.Sg.build} via the incremental detector. *)
  monitor_acyclic : bool;
      (** The online monitor raised no cycle alarm over the trace. *)
  scratch_acyclic : bool;
      (** The pre-incremental reference:
          {!Nt_sg.Graph.find_cycle_scratch} over the built graph. *)
  cycle_alarms : int;  (** Monitor cycle alarms (deterministic). *)
  inappropriate_alarms : int;  (** Monitor return-value alarms. *)
}

val sg_agreement : ?mode:Nt_sg.Sg.conflict_mode -> Schema.t -> Trace.t -> sg_agreement
(** Decide SG acyclicity of one behavior three independent ways —
    incremental batch, incremental online, from-scratch DFS — for the
    differential oracle-equivalence tests and ntcheck sweeps.  The
    default mode is [Operation_level], matching {!Nt_sg.Checker}. *)

val sg_agrees : sg_agreement -> bool
(** All three verdicts coincide. *)

(** {1 Campaigns} *)

type report = {
  runs : int;  (** Runs executed (≤ requested when failing fast). *)
  passed : int;
  truncations : int;
  failures : (int * scenario * failure) list;
      (** [(run index, scenario, failure)], in discovery order. *)
}

val campaign :
  ?obs:Nt_obs.Obs.t ->
  ?max_steps:int ->
  ?grammar:grammar ->
  ?shape:shape ->
  ?stop_at_first:bool ->
  backend ->
  seed:int ->
  runs:int ->
  report
(** Run [runs] independent scenarios derived from [seed] by RNG
    splitting (run [i]'s generator does not depend on how earlier
    runs consumed entropy).  [stop_at_first] (default [true]) stops
    at the first oracle failure.  When [obs] is given, each run bumps
    [check.runs] and [check.pass] / [check.fail] (plus
    [check.fail.<tag>]) counters and failures emit a
    [check.fail.<tag>] instant event, so campaign telemetry flows
    through the usual {!Nt_obs} pipeline into [ntprof]. *)

val crash_campaign :
  ?obs:Nt_obs.Obs.t ->
  ?max_steps:int ->
  ?grammar:grammar ->
  ?shape:shape ->
  ?drop_prob:float ->
  ?snapshot_at:int ->
  ?stop_at_first:bool ->
  backend ->
  seed:int ->
  runs:int ->
  report
(** {!campaign} with {!crash} as the subject: each generated scenario
    is recorded, crash-swept at every log boundary and re-judged after
    every recovery ([snapshot_at] defaults to [8], so snapshot paths
    are exercised whenever runs grow long enough).  Counters use the
    [check.crash.*] prefix. *)
