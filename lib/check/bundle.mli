(** Replay bundles: a failing (or interesting) scenario persisted as
    one self-describing text file.

    The body is the {!Nt_workload.Program_io} workload format, so a
    bundle can also be fed directly to [ntsim --program].  Everything
    the workload syntax cannot carry — backend, scheduling seed,
    policy, inform latency, fault-injection rate, the failed oracle —
    rides in [; key: value] comment headers, which the workload
    parser skips:

    {v
    ; ntcheck replay bundle
    ; backend: commlock
    ; sched-seed: 724623118
    ; policy: random-step
    ; inform: eager
    ; abort-prob: 0
    ; failure: sg-cycle
    (objects (w0 (register 0)))
    (txn (par (access w0 read) (access w0 (write 3))))
    v} *)

type t = {
  backend : Check.backend;
  scenario : Check.scenario;
  failure_tag : string option;
      (** The [failure_tag] recorded when the bundle was written, if
          any; replay re-derives the actual failure. *)
  crash_seed : int option;
      (** For crash bundles ([; crash-seed:]): the serving seed the
          {!Check.crash} sweep used.  Absent on ordinary bundles, and
          redundant when it equals {!Check.crash_seed_of} of the
          scenario — recorded anyway so a bundle is self-contained
          even if the derivation changes. *)
}

val to_string :
  ?failure:Check.failure ->
  ?crash_seed:int ->
  Check.backend ->
  Check.scenario ->
  string

val of_string : string -> (t, string) result

val save :
  ?failure:Check.failure ->
  ?crash_seed:int ->
  string ->
  Check.backend ->
  Check.scenario ->
  unit
(** [save path backend scenario] writes {!to_string} to [path]. *)

val load : string -> (t, string) result
(** Errors (including the body's line-numbered parse errors) are
    prefixed with the path. *)

val load_program :
  string -> (Nt_serial.Program.t list * Nt_spec.Schema.t, string) result
(** The shared workload-file loader behind [ntsim --program] and the
    bundle body: {!Nt_workload.Program_io.load} with the path prefixed
    onto its line-numbered errors. *)
