(** The umbrella API of [nested-sg].

    One import gives the whole system, grouped as in DESIGN.md:

    {ul
    {- naming and traces: {!Txn_id}, {!Obj_id}, {!Value},
       {!System_type}, {!Action}, {!Trace}, {!Rng};}
    {- serial specifications: {!Datatype} and the five shipped types,
       {!Schema}, {!Serial_spec}, {!Rw};}
    {- systems: {!Program}, {!Serial_exec}, {!Simple_db}, {!Runtime},
       {!Txn_interp}, {!Gobj};}
    {- protocols: {!Moss_object}, {!Undo_object} (plus their invariant
       checkers) and {!Broken};}
    {- the serialization-graph construction: {!Sg}, {!Conflict},
       {!Precedes}, {!Sibling_order}, {!Suitability}, {!View},
       {!Return_values}, {!Graph} and the Theorem 8/19 {!Checker};}
    {- the classical baseline: {!History}, {!Flat_sg};}
    {- workloads and measurement: {!Gen}, {!Scenario}, {!Stats},
       {!Table};}
    {- observability: {!Obs}, {!Metrics}, {!Obs_window},
       {!Obs_snapshot}, {!Obs_event}, {!Obs_sink}, {!Chrome_trace},
       {!Obs_json}, {!Stage}, {!Gcmon}, {!Profile}, {!Flight};}
    {- property-based checking: {!Check}, {!Shrink}, {!Bundle};}
    {- serving and durability: {!Wire}, {!Admission}, {!Engine},
       {!Wal}, {!Telemetry} (plus {!Version});}
    {- multicore sharding: {!Partition}, {!Footprint}, {!Split},
       {!Spine}, {!Shard_engine}, {!Shard_router}, {!Shard_cluster},
       {!Shard_service}.}} *)

module Txn_id = Nt_base.Txn_id
module Obj_id = Nt_base.Obj_id
module Value = Nt_base.Value
module System_type = Nt_base.System_type
module Action = Nt_base.Action
module Trace = Nt_base.Trace
module Trace_io = Nt_base.Trace_io
module Trace_stats = Nt_base.Trace_stats
module Rng = Nt_base.Rng
module Datatype = Nt_spec.Datatype
module Register = Nt_spec.Register
module Counter = Nt_spec.Counter
module Bank_account = Nt_spec.Bank_account
module Rset = Nt_spec.Rset
module Fifo_queue = Nt_spec.Fifo_queue
module Keyed_store = Nt_spec.Keyed_store
module Vreg = Nt_spec.Vreg
module Schema = Nt_spec.Schema
module Serial_spec = Nt_spec.Serial_spec
module Rw = Nt_spec.Rw
module Program = Nt_serial.Program
module Serial_exec = Nt_serial.Serial_exec
module Simple_db = Nt_serial.Simple_db
module Serial_system = Nt_serial.Serial_system
module Serial_search = Nt_serial.Serial_search
module Automaton = Nt_iosim.Automaton
module Executor = Nt_iosim.Executor
module Gobj = Nt_gobj.Gobj
module Broken = Nt_gobj.Broken
module Moss_object = Nt_moss.Moss_object
module Moss_invariants = Nt_moss.Moss_invariants
module Undo_object = Nt_undo.Undo_object
module Undo_invariants = Nt_undo.Undo_invariants
module Mvts_object = Nt_mvts.Mvts_object
module Commlock_object = Nt_locking.Commlock_object
module Replication = Nt_replication.Replication
module Runtime = Nt_generic.Runtime
module Txn_interp = Nt_generic.Txn_interp
module Graph = Nt_sg.Graph
module Sibling_order = Nt_sg.Sibling_order
module Conflict = Nt_sg.Conflict
module Precedes = Nt_sg.Precedes
module Sg = Nt_sg.Sg
module Suitability = Nt_sg.Suitability
module View = Nt_sg.View
module Return_values = Nt_sg.Return_values
module Theorem2 = Nt_sg.Theorem2
module Essn = Nt_sg.Essn
module Checker = Nt_sg.Checker
module Dot = Nt_sg.Dot
module Monitor = Nt_sg.Monitor
module History = Nt_classical.History
module Flat_sg = Nt_classical.Flat_sg
module View_serial = Nt_classical.View_serial
module Gen = Nt_workload.Gen
module Scenario = Nt_workload.Scenario
module Program_io = Nt_workload.Program_io
module Stats = Nt_stats.Stats
module Table = Nt_stats.Table
module Obs = Nt_obs.Obs
module Metrics = Nt_obs.Metrics
module Obs_window = Nt_obs.Window
module Obs_snapshot = Nt_obs.Snapshot
module Obs_event = Nt_obs.Event
module Obs_sink = Nt_obs.Sink
module Chrome_trace = Nt_obs.Chrome
module Obs_json = Nt_obs.Json
module Stage = Nt_obs.Stage
module Gcmon = Nt_obs.Gcmon
module Profile = Nt_prof.Profile
module Flight = Nt_prof.Flight
module Check = Nt_check.Check
module Shrink = Nt_check.Shrink
module Bundle = Nt_check.Bundle
module Version = Nt_base.Version
module Wire = Nt_net.Wire
module Admission = Nt_net.Admission
module Engine = Nt_net.Engine
module Wal = Nt_net.Wal
module Telemetry = Nt_net.Telemetry
module Partition = Nt_shard.Partition
module Footprint = Nt_shard.Footprint
module Split = Nt_shard.Split
module Spine = Nt_shard.Spine
module Shard_engine = Nt_shard.Shard_engine
module Shard_router = Nt_shard.Router
module Shard_cluster = Nt_shard.Cluster
module Shard_service = Nt_shard.Service
module Domain_compat = Nt_shard.Domain_compat
