open Nt_base
open Nt_sg
open Nt_obs

type veto = { node : Txn_id.t; cycle : Txn_id.t list; witness : string }

type t = {
  monitor : Monitor.t;
  obs : Obs.t;
  gating : bool;
  mutable admitted : int;
  mutable vetoed : int;
  vetoes : veto Txn_id.Tbl.t;  (* keyed by top-level ancestor *)
}

let create ?mode ?(obs = Obs.null) ?(gating = true) schema =
  {
    monitor = Monitor.create ?mode schema;
    obs;
    gating;
    admitted = 0;
    vetoed = 0;
    vetoes = Txn_id.Tbl.create 64;
  }

let monitor t = t.monitor
let gating t = t.gating
let admitted t = t.admitted
let vetoed t = t.vetoed

let alarms t =
  let c = Monitor.counters t.monitor in
  c.Monitor.cycle_alarms + c.Monitor.inappropriate_alarms

let cycle_alarms t = (Monitor.counters t.monitor).Monitor.cycle_alarms

let on_action t a = ignore (Monitor.feed ~obs:t.obs t.monitor a)

let top_of u =
  match Txn_id.path u with
  | [] -> u
  | i :: _ -> Txn_id.child Txn_id.root i

let gate t u =
  if not t.gating then true
  else
    match Monitor.commit_would_cycle t.monitor u with
    | None ->
        t.admitted <- t.admitted + 1;
        true
    | Some (cycle, edges) ->
        t.vetoed <- t.vetoed + 1;
        let witness = Monitor.explain_cycle_with t.monitor edges cycle in
        Txn_id.Tbl.replace t.vetoes (top_of u) { node = u; cycle; witness };
        if Obs.enabled t.obs then
          Metrics.incr (Metrics.counter (Obs.metrics t.obs) "admission.vetoed");
        false

let record_veto t u ~cycle ~witness =
  t.vetoed <- t.vetoed + 1;
  Txn_id.Tbl.replace t.vetoes (top_of u) { node = u; cycle; witness };
  if Obs.enabled t.obs then
    Metrics.incr (Metrics.counter (Obs.metrics t.obs) "admission.vetoed")

let veto_of t u = Txn_id.Tbl.find_opt t.vetoes (top_of u)
