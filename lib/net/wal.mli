(** The write-ahead log and snapshot store behind a durable [ntserved].

    The engine ({!Engine}) is deterministic: its state is a pure
    function of the seed and the exact interleaving of
    {!Engine.submit} / {!Engine.kill} / {!Engine.step} calls.  The log
    therefore records that interleaving — submissions (as
    {!Nt_workload.Program_io} text), orphan kills, and coalesced
    engine-step counts — plus, for audit and recovery validation, the
    commit-gate outcome of every completed top-level transaction.
    Recovery replays the event prefix into a fresh engine
    ({!Engine.recover}) and cross-checks the recorded outcomes against
    the replayed state; the admission {!Nt_sg.Monitor} is rebuilt as a
    byproduct of the same replay.

    {2 On-disk format}

    A log file is a 16-byte header — an 8-byte magic, then the
    big-endian sequence number of its first record — followed by
    length-prefixed, CRC32-checksummed records:

    {v
      +--------------+---------------+-------------------+
      | len : u32 BE | crc32 : u32 BE| payload (len bytes)|
      +--------------+---------------+-------------------+
    v}

    The decoder ({!scan}) never throws on a damaged file: a torn final
    record, a truncated length prefix, a checksum mismatch or a
    mid-header cut all stop the scan at the last intact record and
    report a {!tail} diagnosis carrying the valid byte length, so the
    writer can truncate the wreckage and append from a clean boundary.

    A snapshot is the same container under a different magic, holding
    the compacted replay closure (merged step runs, no outcomes) plus
    the monitor's serialization graph in dense-interned form and the
    engine counters — both re-verified against the replayed state at
    recovery, so a corrupt or foreign snapshot is detected rather than
    trusted.

    This module performs no I/O of its own and links no [unix]: byte
    sinks and [fsync] are injected (see {!sink}), exactly as the
    engine's clock is. *)

open Nt_base

(** {1 Records} *)

type outcome =
  | Committed of string  (** Rendered commit value ({!Nt_base.Value.to_string}). *)
  | Aborted of string option  (** Veto rendering when admission caused it. *)

type record =
  | Meta of {
      seed : int;
      backend : string;
      policy : string;
      inform : string;
      abort_prob : float;  (** Fault-injection rate — replay-relevant. *)
      objects : (string * string) list;  (** (name, dtype decl) pairs. *)
    }
      (** First record of every log generation; recovery refuses a log
          whose configuration does not match the server's. *)
  | Submit of { req : string option; client : string; program : string }
      (** One accepted submission, in engine order ([T0]-child order). *)
  | Kill of { txn : Txn_id.t }  (** An orphan kill ({!Engine.kill}). *)
  | Steps of int  (** [n] {!Engine.step} calls since the last record. *)
  | Outcome of { txn : Txn_id.t; outcome : outcome }
      (** Audit: a top-level completion.  Never replayed — checked. *)
  | Sg_state of { nodes : string array; edges : (int * int) list }
      (** Snapshot only: the monitor's graph, nodes interned densely
          (edge endpoints index [nodes]). *)
  | Counts of { submitted : int; committed : int; aborted : int; vetoed : int }
      (** Snapshot only: engine counters at the covered prefix. *)

val record_name : record -> string
(** ["meta"], ["submit"], ["kill"], ["steps"], ["outcome"],
    ["sg-state"], ["counts"] — stable tags for dumps and metrics. *)

val encode_record : record -> string
(** The framed bytes (length + checksum + payload) of one record. *)

val decode_payload : string -> (record, string) result
(** Decode one record payload (no frame).  Total: damaged input is an
    [Error], never an exception. *)

(** {1 Scanning (recovery-side decode)} *)

type tail =
  | Clean  (** The file ends exactly at a record boundary. *)
  | Torn of { valid : int; why : string }
      (** Bytes past [valid] are damage: a cut mid-record, a length
          prefix pointing past the end, or a checksum mismatch.  [why]
          says which.  Recovery keeps the prefix and truncates here. *)

type scanned = {
  sc_base_seq : int;  (** Sequence number of the first record. *)
  sc_records : record list;  (** Intact records, in order. *)
  sc_offsets : int list;
      (** Byte offset of each record's frame, parallel to
          [sc_records]; the crash harness cuts at these boundaries. *)
  sc_valid : int;  (** Byte length of the intact prefix. *)
  sc_tail : tail;
}

val scan : magic:string -> string -> (scanned, string) result
(** Scan a whole file image.  [Error] only for a wrong or damaged
    magic (the file is not ours — refuse, do not truncate); an empty
    image is a fresh log ([sc_base_seq = 0], no records, [Clean]). *)

val wal_magic : string
val snap_magic : string

val header : magic:string -> base_seq:int -> string
(** The 16-byte file header. *)

(** {1 Writer} *)

type sink = {
  write : string -> unit;  (** Append bytes (buffered is fine). *)
  sync : unit -> unit;  (** Make everything written so far durable. *)
}
(** Byte-sink injection: [ntserved] supplies an [out_channel] +
    [Unix.fsync]; tests supply a {!Buffer} and a counter. *)

val buffer_sink : Buffer.t -> sink
(** A sink appending to a buffer with a no-op [sync]. *)

module Writer : sig
  (** Appends records with group-commit [fsync] batching.

      Durability policy: [sync] runs once [fsync_batch] records have
      been appended since the last sync (1 = sync every record, the
      unbatched baseline), or when [fsync_interval_s] has elapsed with
      dirty records ({!tick}), or on {!flush} — whichever comes first.
      Batching bounds the window of acknowledged-but-volatile records
      by [fsync_batch] records / [fsync_interval_s] seconds; see
      [doc/durability.mld].

      The writer also owns an ordering invariant the validator relies
      on: completions observed while stepping ({!note_outcome}) are
      buffered and appended only after the {!log_steps} record
      covering those steps, so an [Outcome] in any intact prefix is
      always reproducible by replaying that prefix. *)

  type t

  val create :
    ?fsync_batch:int ->
    ?fsync_interval_s:float ->
    ?clock:(unit -> float) ->
    ?fresh:bool ->
    base_seq:int ->
    on_sync:(unit -> unit) ->
    sink ->
    t
  (** [fresh] (default [true]) writes the file header first; pass
      [false] when appending to a scanned log.  [on_sync] fires after
      every [sync] (telemetry hook; pass [ignore] when unused). *)

  val append : t -> record -> unit
  val note_outcome : t -> txn:Txn_id.t -> outcome -> unit
  val log_steps : t -> int -> unit
  (** Append [Steps n] (if [n > 0]), then any buffered outcomes. *)

  val tick : t -> unit
  (** Time-based sync check; needs [clock]. *)

  val flush : t -> unit
  (** Flush buffered outcomes and force a sync if dirty. *)

  val next_seq : t -> int

  val appended : t -> int
  (** Records appended (header excluded). *)

  val syncs : t -> int
  val bytes_written : t -> int
end

(** {1 Snapshots} *)

type snapshot = {
  sn_next_seq : int;
      (** The snapshot covers log records with seq < [sn_next_seq]. *)
  sn_meta : record;  (** The [Meta] of the covered generation. *)
  sn_events : record list;  (** Compacted replay events. *)
  sn_sg : record;  (** [Sg_state] at the covered prefix. *)
  sn_counts : record;  (** [Counts] at the covered prefix. *)
}

val encode_snapshot : snapshot -> string
val decode_snapshot : string -> (snapshot, string) result
(** Total; any damage (including a torn tail — snapshots are written
    whole and renamed into place, so a tail is corruption) is an
    [Error]. *)

val compact : record list -> record list
(** The replay closure of an event sequence: drop [Outcome]s, merge
    adjacent [Steps], keep [Submit]/[Kill] order — the event list a
    snapshot stores.  [compact] is idempotent and replay-equivalent to
    its input. *)

module Closure : sig
  (** An incrementally-maintained replay closure: {!push} is
      {!compact} applied one record at a time, so memory between
      snapshots is bounded by the retained [Submit]/[Kill] records —
      with [events t = e] the closure holds at most [2*e + 1] records,
      however many raw records (idle [Steps] cuts included) were
      pushed. *)

  type t

  val create : unit -> t

  val of_records : record list -> t
  (** [of_records rs] pushes [rs] (oldest first) into a fresh closure. *)

  val push : t -> record -> unit
  (** Append one record: merges into a trailing [Steps] run, drops
      [Steps 0] and non-replay records ([Outcome]/[Meta]/[Sg_state]/
      [Counts]). *)

  val records : t -> record list
  (** The closure, oldest first; equal to [compact] of everything
      pushed. *)

  val length : t -> int
  (** Records currently retained. *)

  val events : t -> int
  (** Retained [Submit]/[Kill] records; [length t <= 2 * events t + 1]. *)
end

(** {1 Replay} *)

type replayable = {
  rp_events : Engine.replay_event list;
  rp_outcomes : (Txn_id.t * outcome) list;  (** Audit prefix, in order. *)
  rp_meta : (record * int) option;  (** First [Meta] and its seq. *)
}

val replayable_of_records :
  base_seq:int -> skip_below:int -> record list -> (replayable, string) result
(** Parse records into engine replay events, skipping records with
    seq < [skip_below] (those are covered by the snapshot).  [Error]
    on an unparsable program text — the checksum passed, so that is a
    writer bug, not corruption, and recovery must not guess. *)

val check_outcomes :
  (Txn_id.t -> Engine.state) -> (Txn_id.t * outcome) list -> (int, string) result
(** Prefix-closure check: every audited outcome must be reproduced
    exactly by the replayed engine.  [Ok n] counts outcomes checked. *)

val sg_state_of_graph : Nt_sg.Graph.t -> record
(** Dense-intern a monitor graph into an [Sg_state] record. *)

val check_sg_state :
  record -> Nt_sg.Graph.t -> (unit, string) result
(** The snapshot's graph must equal the replayed monitor's graph
    (same node set, same edge set). *)
