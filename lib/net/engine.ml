open Nt_base
open Nt_spec
open Nt_serial
open Nt_generic
open Nt_obs

type state =
  | Unknown
  | Pending
  | Running
  | Committed of Value.t
  | Aborted of Admission.veto option

type stage_times = {
  st_submit : float;
  mutable st_start : float;
  mutable st_gate : float;
  mutable st_gates : int;
  mutable st_complete : float;
}

type t = {
  objects : (Obj_id.t * Datatype.t) list;
  schema : Schema.t;
  progs : Program.t array ref;
  n_progs : int ref;
  rt : Runtime.t;
  adm : Admission.t;
  doomed : unit Txn_id.Tbl.t;
  committed_top : int ref;
  aborted_top : int ref;
  mutable submitted : int;
  mutable step_calls : int;
  mutable truncated : bool;
  max_program : int;
  clock : (unit -> float) option;
  times : stage_times Txn_id.Tbl.t;
}

let subprogram progs n_progs txn =
  let rec walk prog = function
    | [] -> Some prog
    | i :: rest -> (
        match prog with
        | Program.Node (_, children) -> (
            match List.nth_opt children i with
            | Some p -> walk p rest
            | None -> None)
        | Program.Access _ -> None)
  in
  match Txn_id.path txn with
  | [] -> None
  | i :: rest -> if i < !n_progs then walk !progs.(i) rest else None

let create ?policy ?inform_policy ?abort_prob ?max_steps ?(obs = Obs.null)
    ?mode ?(admission = true) ?(max_program = 10_000)
    ?(on_top_complete = fun _ _ -> ()) ?(on_action = fun _ -> ())
    ?(extra_gate = fun _ -> true) ?clock ~seed objects factory =
  let dtypes = Obj_id.Tbl.create 16 in
  List.iter (fun (x, dt) -> Obj_id.Tbl.replace dtypes x dt) objects;
  let progs = ref [||] and n_progs = ref 0 in
  let sub = subprogram progs n_progs in
  let classify txn =
    match sub txn with
    | Some (Program.Access (x, _)) -> System_type.Access x
    | _ -> System_type.Inner
  in
  let dtype_of x =
    match Obj_id.Tbl.find_opt dtypes x with
    | Some dt -> dt
    | None -> invalid_arg ("Engine: undeclared object " ^ Obj_id.name x)
  in
  let op_of txn =
    match sub txn with
    | Some (Program.Access (_, op)) -> op
    | _ -> invalid_arg ("Engine: " ^ Txn_id.to_string txn ^ " is not an access")
  in
  let schema =
    {
      Schema.sys = System_type.make classify;
      objects = List.map fst objects;
      dtype_of;
      op_of;
    }
  in
  let adm = Admission.create ?mode ~obs ~gating:admission schema in
  let committed_top = ref 0 and aborted_top = ref 0 in
  let times = Txn_id.Tbl.create 64 in
  (* Stage bookkeeping is entirely clock-gated: with no [clock] the
     engine does exactly what it did before (one [match] per action). *)
  let stamp u f =
    match clock with
    | None -> ()
    | Some c -> (
        match Txn_id.Tbl.find_opt times u with
        | Some st -> f st (c ())
        | None -> ())
  in
  let caller_tap = on_action in
  let on_action a =
    caller_tap a;
    (match a with
    | Action.Create u when Txn_id.depth u = 1 ->
        stamp u (fun st now -> st.st_start <- now)
    | Action.Commit u when Txn_id.depth u = 1 ->
        stamp u (fun st now -> st.st_complete <- now);
        incr committed_top;
        on_top_complete u `Committed;
        Txn_id.Tbl.remove times u
    | Action.Abort u when Txn_id.depth u = 1 ->
        stamp u (fun st now -> st.st_complete <- now);
        incr aborted_top;
        on_top_complete u `Aborted;
        Txn_id.Tbl.remove times u
    | _ -> ());
    Admission.on_action adm a
  in
  (* The local verdict first: a commit the local monitor already
     refuses never reaches [extra_gate], so the cross-shard spine only
     ever sees locally-consistent candidates. *)
  let gate u = Admission.gate adm u && extra_gate u in
  let commit_gate =
    match clock with
    | None -> gate
    | Some c ->
        (* Attribute gate time to the top-level ancestor: inner commits
           consult the gate too, and the request is the unit of
           reporting. *)
        fun u ->
          let t0 = c () in
          let r = gate u in
          let dt = c () -. t0 in
          (match Txn_id.path u with
          | i :: _ -> (
              match
                Txn_id.Tbl.find_opt times (Txn_id.child Txn_id.root i)
              with
              | Some st ->
                  st.st_gate <- st.st_gate +. dt;
                  st.st_gates <- st.st_gates + 1
              | None -> ())
          | [] -> ());
          r
  in
  let rt =
    Runtime.make ?policy ?inform_policy ?abort_prob ?max_steps ~obs ~on_action
      ~commit_gate ~seed schema factory []
  in
  {
    objects;
    schema;
    progs;
    n_progs;
    rt;
    adm;
    doomed = Txn_id.Tbl.create 16;
    committed_top;
    aborted_top;
    submitted = 0;
    step_calls = 0;
    truncated = false;
    max_program;
    clock;
    times;
  }

let validate t prog =
  if Program.size prog > t.max_program then
    Error
      (Printf.sprintf "program too large (%d names; limit %d)"
         (Program.size prog) t.max_program)
  else
    let rec check = function
      | Program.Access (x, op) -> (
          match
            List.find_opt (fun (x', _) -> Obj_id.equal x x') t.objects
          with
          | None -> Error ("undeclared object " ^ Obj_id.name x)
          | Some (_, dt) -> (
              match dt.Datatype.apply dt.Datatype.init op with
              | _ -> Ok ()
              | exception Datatype.Unsupported _ ->
                  Error
                    (Printf.sprintf "operation %s not offered by %s (%s)"
                       (Datatype.op_to_string op) (Obj_id.name x)
                       dt.Datatype.dt_name)))
      | Program.Node (_, children) ->
          List.fold_left
            (fun acc c -> Result.bind acc (fun () -> check c))
            (Ok ()) children
    in
    check prog

let submit t prog =
  match validate t prog with
  | Error _ as e -> e
  | Ok () ->
      let i = !(t.n_progs) in
      if i = Array.length !(t.progs) then begin
        let cap = max 4 (2 * i) in
        let grown = Array.make cap prog in
        Array.blit !(t.progs) 0 grown 0 i;
        t.progs := grown
      end;
      !(t.progs).(i) <- prog;
      t.n_progs := i + 1;
      let txn = Runtime.add_top t.rt prog in
      assert (Txn_id.last_index txn = Some i);
      t.submitted <- t.submitted + 1;
      (match t.clock with
      | Some c ->
          let now = c () in
          Txn_id.Tbl.replace t.times txn
            {
              st_submit = now;
              st_start = now;
              st_gate = 0.;
              st_gates = 0;
              st_complete = 0.;
            }
      | None -> ());
      Ok txn

let sweep_doomed t =
  if Txn_id.Tbl.length t.doomed > 0 then begin
    let pending = Txn_id.Tbl.fold (fun u () acc -> u :: acc) t.doomed [] in
    List.iter
      (fun u ->
        if Runtime.abort_txn t.rt ~cause:`Orphan u then
          Txn_id.Tbl.remove t.doomed u
        else
          match Runtime.top_state t.rt u with
          | `Committed _ | `Aborted -> Txn_id.Tbl.remove t.doomed u
          | `Unknown | `Running -> ())
      pending
  end

let step t =
  t.step_calls <- t.step_calls + 1;
  let r = Runtime.step t.rt in
  (match r with `Truncated -> t.truncated <- true | `Progress | `Quiescent -> ());
  sweep_doomed t;
  r

let drain ?(burst = max_int) t =
  let rec go budget =
    if budget <= 0 then `Progress
    else
      match step t with
      | `Progress -> go (budget - 1)
      | (`Quiescent | `Truncated) as r -> r
  in
  go burst

let known_top t txn =
  Txn_id.depth txn = 1
  && match Txn_id.last_index txn with
     | Some i -> i < !(t.n_progs)
     | None -> false

let kill t txn =
  if not (known_top t txn) then `Unknown
  else if Runtime.abort_txn t.rt ~cause:`Orphan txn then begin
    sweep_doomed t;
    `Aborted
  end
  else
    match Runtime.top_state t.rt txn with
    | `Committed _ | `Aborted -> `Already_complete
    | `Unknown | `Running ->
        (* Submitted but not yet abortable (REQUEST_CREATE pending, or a
           commit already requested and in flight); doom it so the sweep
           after each step retires it at the first legal moment. *)
        Txn_id.Tbl.replace t.doomed txn ();
        `Doomed

let state t txn =
  if not (known_top t txn) then Unknown
  else
    match Runtime.top_state t.rt txn with
    | `Unknown -> Pending
    | `Running -> Running
    | `Committed v -> Committed v
    | `Aborted -> Aborted (Admission.veto_of t.adm txn)

let finish t = Runtime.finish t.rt

let forest t = List.init !(t.n_progs) (fun i -> !(t.progs).(i))
let schema t = t.schema
let objects t = t.objects
let admission t = t.adm
let submitted t = t.submitted
let committed_top t = !(t.committed_top)
let aborted_top t = !(t.aborted_top)
let live_top t = t.submitted - !(t.committed_top) - !(t.aborted_top)
let vetoed t = Admission.vetoed t.adm
let alarms t = Admission.alarms t.adm
let cycle_alarms t = Admission.cycle_alarms t.adm
let truncated t = t.truncated
let doomed_count t = Txn_id.Tbl.length t.doomed
let actions_so_far t = Runtime.actions_so_far t.rt
let steps_so_far t = Runtime.steps_so_far t.rt
let step_calls t = t.step_calls
let orphan_aborts t = Runtime.orphan_aborts t.rt
let stage_times t txn = Txn_id.Tbl.find_opt t.times txn

(* ----- recovery ----- *)

type replay_event =
  [ `Submit of Program.t | `Kill of Txn_id.t | `Steps of int ]

let replay t events =
  let rec go n = function
    | [] -> Ok n
    | ev :: rest -> (
        match ev with
        | `Submit prog -> (
            match submit t prog with
            | Ok _ -> go (n + 1) rest
            | Error e ->
                Error
                  (Printf.sprintf
                     "Engine.recover: logged submission %d rejected: %s"
                     (t.submitted + 1) e))
        | `Kill txn ->
            ignore (kill t txn);
            go (n + 1) rest
        | `Steps k ->
            for _ = 1 to k do
              ignore (step t)
            done;
            go (n + 1) rest)
  in
  go 0 events

let recover t events =
  (* The engine's evolution is a pure function of the seed and the
     submit/kill/step call sequence ([Runtime.step] draws from a seeded
     RNG and nothing else), so replaying the logged sequence into a
     fresh engine reproduces the pre-crash run exactly — including
     every admission verdict and commit-gate outcome.  Replay only
     makes sense from a pristine engine: any prior call has already
     advanced the RNG stream. *)
  if t.submitted > 0 || t.step_calls > 0 then
    Error "Engine.recover: engine is not fresh"
  else replay t events
