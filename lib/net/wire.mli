(** The [ntserved] wire protocol.

    Frames are an ASCII decimal byte count, a newline, then that many
    bytes of JSON payload ([{!frame}]).  Payloads are single JSON
    objects tagged by a ["type"] field; programs travel as
    {!Nt_workload.Program_io} text and values as their rendered
    strings, so the protocol needs no schema negotiation beyond the
    object declarations in {!constructor:Welcome}.

    {b Trace propagation.}  A client may attach an opaque request id
    to {!constructor:Submit} (["req"], omitted from the JSON when
    absent); the server stores it with the submission and echoes it in
    the {!constructor:Accepted}/{!constructor:Rejected} answer, in
    every {!constructor:State} about that transaction, and in the
    audit-log entry if the transaction is vetoed or slow — so a client
    span, the server-side transaction span and the audit record all
    link into one trace without the server interpreting the id.

    {b Telemetry streaming.}  {!constructor:Subscribe} registers the
    connection for server-push {!constructor:Telemetry} frames: one
    immediately, then one per server telemetry interval, each carrying
    a sequence number, monotonic server time, the closing interval's
    windowed counters and latency histogram, engine occupancy,
    cumulative totals, serialization-graph size and the top-K
    lock-contended objects.  Subscribers are read-only observers — the
    submit path is not perturbed beyond buffering their frames.

    The codec is symmetric — both directions are exposed so the server,
    the clients ([ntload], [nttop]) and the in-process harness
    ([Nt_check.Check.serve]) share one definition. *)

open Nt_base
open Nt_obs

val protocol_version : int

val max_frame : int
(** Upper bound on payload bytes; oversized frames are a protocol
    error (the reader reports it rather than buffering without
    bound). *)

val frame : string -> string
(** ["<len>\n<payload>"]. *)

(** Incremental frame extraction for a [select] loop: {!Reader.feed}
    whatever bytes arrived, then {!Reader.next} until it returns
    [Ok None].  A reader that returned [Error] is poisoned — the
    connection should be dropped.  Errors carry the offending size or
    a bounded prefix of the offending bytes, so a protocol log names
    what poisoned the stream. *)
module Reader : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit

  val next : t -> (string option, string) result
  (** [Ok (Some payload)] — one complete frame; [Ok None] — need more
      bytes; [Error] — malformed or oversized header (the message
      reports the claimed size and the limit, or the first bytes of
      the bad header). *)

  val buffered : t -> int
  (** Bytes currently buffered (for backpressure accounting). *)

  type eof = Clean | Torn of { buffered : int; expected : int option }
  (** What a stream's end means, judged by the reader's buffer: [Clean]
      — the peer closed at a frame boundary; [Torn] — it closed
      mid-frame, with [buffered] bytes held and [expected] the declared
      payload length when the header had already arrived.  Distinct
      from {!next}'s poisoning errors (malformed bytes): a torn end is
      well-formed-so-far but incomplete, which is exactly the signature
      of a crashed writer — the crash tests assert on the
      distinction. *)

  val eof : t -> eof
  (** Judge the stream's end.  Call when a read returns end-of-file;
      meaningful any time no further bytes are coming. *)

  val describe_eof : eof -> string
end

type request =
  | Hello of { client : string }
  | Submit of { program : string; req : string option }
      (** One {!Nt_serial.Program} as text, with an optional opaque
          client request id echoed in every answer about it. *)
  | Status of Txn_id.t
  | Metrics
  | Subscribe  (** Register for server-push {!constructor:Telemetry}. *)
  | Ping
      (** Liveness probe: answered immediately with
          {!constructor:Pong} (server mono-time + engine occupancy),
          used by [ntload] before a campaign. *)
  | Dump
      (** Dump the flight recorder to disk now; answered with
          {!constructor:Dumped} naming the artifacts (or
          {!constructor:Error_msg} when the recorder is off). *)
  | Quiesce  (** Drain: answer once nothing is enabled. *)
  | Shutdown

type txn_state =
  | Pending  (** Accepted, [REQUEST_CREATE] not yet fired. *)
  | Running
  | Committed of string  (** The rendered commit value. *)
  | Aborted of string option
      (** With the admission veto witness, when that was the cause. *)

type server_status =
  | Fresh  (** Started with no (or an empty) write-ahead log. *)
  | Recovering of { replayed : int; total : int }
      (** Replaying the log: submissions are rejected, probes answered.
          [replayed]/[total] count replay events. *)
  | Recovered of { replayed : int; torn : bool }
      (** Replay complete and validated; [torn] records whether the log
          ended mid-record (the truncated tail was discarded).  Absent
          on the wire from pre-durability servers — decoders default to
          [Fresh]. *)

type hist = {
  h_count : int;
  h_sum : int;
  h_min : int;  (** Exact raw extremes. *)
  h_max : int;
  h_p50 : int;  (** Bucket-upper-bound approximations (see
                    {!Nt_obs.Metrics.hstats}). *)
  h_p99 : int;
  h_p999 : int;
  h_buckets : (int * int) list;
      (** Non-empty power-of-two buckets as [(index, count)] pairs,
          ascending — enough for a consumer to re-aggregate across
          frames without re-bucketing error. *)
}
(** A histogram as it travels on the wire. *)

val empty_hist : hist

type shard_row = {
  r_shard : int;
  r_submitted : int;
  r_committed : int;
  r_aborted : int;
  r_vetoed : int;
  r_live : int;
}
(** One shard's counters, carried in {!type:telemetry} and
    [Quiesced] answers when the server runs sharded ([shards > 1] in
    its [Welcome]); empty on single-engine servers and pre-v5
    peers. *)

type telemetry = {
  seq : int;  (** Monotonically increasing per server. *)
  t_mono : float;  (** Monotonic server clock, seconds. *)
  interval_s : float;  (** Configured telemetry interval. *)
  w_requests : int;  (** Window: wire requests handled. *)
  w_submitted : int;
  w_committed : int;
  w_aborted : int;
  w_vetoed : int;
  w_orphans : int;
  w_alarms : int;
  w_latency : hist;  (** Window: submit-to-completion latency, µs. *)
  o_live : int;  (** Occupancy: submitted, not yet complete. *)
  o_doomed : int;
  o_conns : int;
  o_subscribers : int;
  c_submitted : int;  (** Cumulative totals since server start. *)
  c_committed : int;
  c_aborted : int;
  c_vetoed : int;
  c_alarms : int;
  sg_nodes : int;  (** Serialization-graph size (monitor). *)
  sg_edges : int;
  sg_reorders : int;
  hot : (string * int) list;
      (** Top-K objects by refused accesses (lock waits) this interval,
          from the delta of the runtime's per-object [runtime.refused.*]
          counters. *)
  stages : (string * hist) list;
      (** Window: per-stage latency histograms, µs, in
          {!Nt_obs.Stage.stages} order (stages with no samples this
          interval are included empty; absent from old servers'
          frames). *)
  gc_pause : hist;  (** Window: GC pause durations, µs. *)
  gc_pct : float;
      (** Percentage of the closing interval's wall time spent in GC
          pauses (0 when the monitor is imprecise or off). *)
  per_shard : shard_row list;
      (** Per-shard breakdown on sharded servers; [[]] otherwise. *)
}
(** One server-push telemetry frame. *)

type response =
  | Welcome of {
      server : string;
      version : string;
      backend : string;
      status : server_status;
      objects : (string * string) list;
          (** Name and {!Nt_workload.Program_io.dtype_decl} of every
              servable object — enough for a client to generate
              well-typed programs. *)
      shards : int;
          (** Worker domains serving the object table; 1 on
              single-engine servers (and assumed 1 when absent from a
              pre-v5 peer's welcome). *)
    }
  | Accepted of { txn : Txn_id.t; req : string option }
      (** The name under which the program runs, echoing the
          submission's request id. *)
  | Rejected of { why : string; req : string option }
      (** Parse/validation failure; nothing ran. *)
  | State of { txn : Txn_id.t; state : txn_state; req : string option }
      (** [req] echoes the id given at submission (an un-submitted or
          foreign transaction has none). *)
  | Metrics_dump of Json.t  (** {!Nt_obs.Metrics.to_json} of the server. *)
  | Telemetry of telemetry
  | Pong of {
      t_mono : float;
      live : int;
      doomed : int;
      conns : int;
      status : server_status;
    }
      (** Liveness answer: monotonic server clock plus engine
          occupancy (live/doomed transactions, open connections) and
          the durability status (recovery progress is observable over
          a plain {!constructor:Ping}). *)
  | Dumped of { spans : int; dropped : int; jsonl : string; chrome : string }
      (** Flight-recorder dump written: span count, ring drops, and
          the server-side paths of the JSONL and Chrome-trace
          artifacts. *)
  | Quiesced of {
      committed : int;
      aborted : int;
      vetoed : int;
      alarms : int;
      per_shard : shard_row list;
    }
  | Goodbye
  | Error_msg of string  (** Protocol-level error; connection closes. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val hist_to_json : hist -> Json.t
val hist_of_json : Json.t -> (hist, string) result

val hist_of_view : Window.view -> hist
(** Lift a windowed histogram readout onto the wire. *)

val encode_request : request -> string
(** Framed and ready to write. *)

val decode_request : string -> (request, string) result
(** From one {!Reader.next} payload. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
