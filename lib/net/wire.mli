(** The [ntserved] wire protocol.

    Frames are an ASCII decimal byte count, a newline, then that many
    bytes of JSON payload ([{!frame}]).  Payloads are single JSON
    objects tagged by a ["type"] field; programs travel as
    {!Nt_workload.Program_io} text and values as their rendered
    strings, so the protocol needs no schema negotiation beyond the
    object declarations in {!constructor:Welcome}.

    The codec is symmetric — both directions are exposed so the server,
    the client ([ntload]) and the in-process harness
    ([Nt_check.Check.serve]) share one definition. *)

open Nt_base
open Nt_obs

val protocol_version : int

val max_frame : int
(** Upper bound on payload bytes; oversized frames are a protocol
    error (the reader reports it rather than buffering without
    bound). *)

val frame : string -> string
(** ["<len>\n<payload>"]. *)

(** Incremental frame extraction for a [select] loop: {!Reader.feed}
    whatever bytes arrived, then {!Reader.next} until it returns
    [Ok None].  A reader that returned [Error] is poisoned — the
    connection should be dropped. *)
module Reader : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit

  val next : t -> (string option, string) result
  (** [Ok (Some payload)] — one complete frame; [Ok None] — need more
      bytes; [Error] — malformed or oversized header. *)

  val buffered : t -> int
  (** Bytes currently buffered (for backpressure accounting). *)
end

type request =
  | Hello of { client : string }
  | Submit of { program : string }  (** One {!Nt_serial.Program} as text. *)
  | Status of Txn_id.t
  | Metrics
  | Quiesce  (** Drain: answer once nothing is enabled. *)
  | Shutdown

type txn_state =
  | Pending  (** Accepted, [REQUEST_CREATE] not yet fired. *)
  | Running
  | Committed of string  (** The rendered commit value. *)
  | Aborted of string option
      (** With the admission veto witness, when that was the cause. *)

type response =
  | Welcome of {
      server : string;
      version : string;
      backend : string;
      objects : (string * string) list;
          (** Name and {!Nt_workload.Program_io.dtype_decl} of every
              servable object — enough for a client to generate
              well-typed programs. *)
    }
  | Accepted of Txn_id.t  (** The name under which the program runs. *)
  | Rejected of string  (** Parse/validation failure; nothing ran. *)
  | State of Txn_id.t * txn_state
  | Metrics_dump of Json.t  (** {!Nt_obs.Metrics.to_json} of the server. *)
  | Quiesced of { committed : int; aborted : int; vetoed : int; alarms : int }
  | Goodbye
  | Error_msg of string  (** Protocol-level error; connection closes. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val encode_request : request -> string
(** Framed and ready to write. *)

val decode_request : string -> (request, string) result
(** From one {!Reader.next} payload. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
