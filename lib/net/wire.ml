open Nt_base
open Nt_obs

let protocol_version = 1
let max_frame = 4 * 1024 * 1024
let max_header = 20

let frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

module Reader = struct
  type t = { mutable acc : string }

  let create () = { acc = "" }
  let feed t s = if s <> "" then t.acc <- t.acc ^ s
  let buffered t = String.length t.acc

  let digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

  let next t =
    match String.index_opt t.acc '\n' with
    | None ->
        if String.length t.acc > max_header then
          Error "frame header too long (no newline)"
        else Ok None
    | Some i -> (
        let hdr = String.sub t.acc 0 i in
        if not (digits hdr) then
          Error (Printf.sprintf "bad frame header %S" hdr)
        else
          match int_of_string_opt hdr with
          | None -> Error (Printf.sprintf "bad frame header %S" hdr)
          | Some len when len > max_frame ->
              Error (Printf.sprintf "frame of %d bytes exceeds max_frame" len)
          | Some len ->
              let start = i + 1 in
              if String.length t.acc - start < len then Ok None
              else begin
                let payload = String.sub t.acc start len in
                t.acc <-
                  String.sub t.acc (start + len)
                    (String.length t.acc - start - len);
                Ok (Some payload)
              end)
end

type request =
  | Hello of { client : string }
  | Submit of { program : string }
  | Status of Txn_id.t
  | Metrics
  | Quiesce
  | Shutdown

type txn_state =
  | Pending
  | Running
  | Committed of string
  | Aborted of string option

type response =
  | Welcome of {
      server : string;
      version : string;
      backend : string;
      objects : (string * string) list;
    }
  | Accepted of Txn_id.t
  | Rejected of string
  | State of Txn_id.t * txn_state
  | Metrics_dump of Json.t
  | Quiesced of { committed : int; aborted : int; vetoed : int; alarms : int }
  | Goodbye
  | Error_msg of string

(* --- encoding --- *)

let obj fields = Json.Obj fields
let str s = Json.Str s
let int n = Json.Int n
let txn t = str (Txn_id.to_string t)

let request_to_json = function
  | Hello { client } -> obj [ ("type", str "hello"); ("client", str client) ]
  | Submit { program } ->
      obj [ ("type", str "submit"); ("program", str program) ]
  | Status t -> obj [ ("type", str "status"); ("txn", txn t) ]
  | Metrics -> obj [ ("type", str "metrics") ]
  | Quiesce -> obj [ ("type", str "quiesce") ]
  | Shutdown -> obj [ ("type", str "shutdown") ]

let state_fields = function
  | Pending -> [ ("state", str "pending") ]
  | Running -> [ ("state", str "running") ]
  | Committed v -> [ ("state", str "committed"); ("value", str v) ]
  | Aborted None -> [ ("state", str "aborted") ]
  | Aborted (Some why) -> [ ("state", str "aborted"); ("veto", str why) ]

let response_to_json = function
  | Welcome { server; version; backend; objects } ->
      obj
        [
          ("type", str "welcome");
          ("server", str server);
          ("version", str version);
          ("protocol", int protocol_version);
          ("backend", str backend);
          ( "objects",
            Json.Arr
              (List.map
                 (fun (name, decl) ->
                   obj [ ("name", str name); ("decl", str decl) ])
                 objects) );
        ]
  | Accepted t -> obj [ ("type", str "accepted"); ("txn", txn t) ]
  | Rejected why -> obj [ ("type", str "rejected"); ("why", str why) ]
  | State (t, st) -> obj (("type", str "state") :: ("txn", txn t) :: state_fields st)
  | Metrics_dump j -> obj [ ("type", str "metrics"); ("metrics", j) ]
  | Quiesced { committed; aborted; vetoed; alarms } ->
      obj
        [
          ("type", str "quiesced");
          ("committed", int committed);
          ("aborted", int aborted);
          ("vetoed", int vetoed);
          ("alarms", int alarms);
        ]
  | Goodbye -> obj [ ("type", str "goodbye") ]
  | Error_msg why -> obj [ ("type", str "error"); ("why", str why) ]

(* --- decoding --- *)

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match Json.to_str_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let int_field name j =
  let* v = field name j in
  match Json.to_int_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let txn_field name j =
  let* s = str_field name j in
  match Txn_id.of_string s with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "field %S: bad transaction name %S" name s)

let request_of_json j =
  let* ty = str_field "type" j in
  match ty with
  | "hello" ->
      let* client = str_field "client" j in
      Ok (Hello { client })
  | "submit" ->
      let* program = str_field "program" j in
      Ok (Submit { program })
  | "status" ->
      let* t = txn_field "txn" j in
      Ok (Status t)
  | "metrics" -> Ok Metrics
  | "quiesce" -> Ok Quiesce
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown request type %S" other)

let state_of_json j =
  let* st = str_field "state" j in
  match st with
  | "pending" -> Ok Pending
  | "running" -> Ok Running
  | "committed" ->
      let* v = str_field "value" j in
      Ok (Committed v)
  | "aborted" -> (
      match Json.member "veto" j with
      | Some v -> (
          match Json.to_str_opt v with
          | Some why -> Ok (Aborted (Some why))
          | None -> Error "field \"veto\": expected a string")
      | None -> Ok (Aborted None))
  | other -> Error (Printf.sprintf "unknown transaction state %S" other)

let response_of_json j =
  let* ty = str_field "type" j in
  match ty with
  | "welcome" ->
      let* server = str_field "server" j in
      let* version = str_field "version" j in
      let* backend = str_field "backend" j in
      let* objects =
        match Json.member "objects" j with
        | Some (Json.Arr items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* name = str_field "name" item in
                let* decl = str_field "decl" item in
                Ok ((name, decl) :: acc))
              (Ok []) items
            |> Result.map List.rev
        | Some _ -> Error "field \"objects\": expected an array"
        | None -> Error "missing field \"objects\""
      in
      Ok (Welcome { server; version; backend; objects })
  | "accepted" ->
      let* t = txn_field "txn" j in
      Ok (Accepted t)
  | "rejected" ->
      let* why = str_field "why" j in
      Ok (Rejected why)
  | "state" ->
      let* t = txn_field "txn" j in
      let* st = state_of_json j in
      Ok (State (t, st))
  | "metrics" ->
      let* m = field "metrics" j in
      Ok (Metrics_dump m)
  | "quiesced" ->
      let* committed = int_field "committed" j in
      let* aborted = int_field "aborted" j in
      let* vetoed = int_field "vetoed" j in
      let* alarms = int_field "alarms" j in
      Ok (Quiesced { committed; aborted; vetoed; alarms })
  | "goodbye" -> Ok Goodbye
  | "error" ->
      let* why = str_field "why" j in
      Ok (Error_msg why)
  | other -> Error (Printf.sprintf "unknown response type %S" other)

let decode_with of_json payload =
  let* j = Json.parse payload in
  of_json j

let encode_request r = frame (Json.to_string (request_to_json r))
let decode_request payload = decode_with request_of_json payload
let encode_response r = frame (Json.to_string (response_to_json r))
let decode_response payload = decode_with response_of_json payload

let pp_request ppf r =
  Format.pp_print_string ppf (Json.to_string (request_to_json r))

let pp_response ppf r =
  Format.pp_print_string ppf (Json.to_string (response_to_json r))
